#include "cluster/ring.h"

#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/membership.h"

namespace lightor::cluster {
namespace {

std::vector<std::string> FleetOf(size_t n) {
  std::vector<std::string> members;
  members.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    members.push_back("10.0.0." + std::to_string(i + 1) + ":8080");
  }
  return members;
}

std::vector<std::string> VideoIds(size_t n) {
  std::vector<std::string> ids;
  ids.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    ids.push_back("video-" + std::to_string(i));
  }
  return ids;
}

TEST(HashRingTest, EmptyRingFailsClosed) {
  HashRing ring;
  EXPECT_TRUE(ring.empty());
  auto owner = ring.Owner("video-1");
  ASSERT_FALSE(owner.ok());
  EXPECT_TRUE(owner.status().IsUnavailable());
  EXPECT_TRUE(ring.Candidates("video-1", 3).empty());

  // Emptying a populated ring fails closed too.
  ring.SetMembers(FleetOf(3));
  ASSERT_TRUE(ring.Owner("video-1").ok());
  ring.SetMembers({});
  EXPECT_FALSE(ring.Owner("video-1").ok());
}

TEST(HashRingTest, OwnershipIsDeterministicAcrossInstances) {
  // Two independently built rings (simulating a router restart, or two
  // routers fronting the same fleet) must agree on every key — and the
  // input order of the membership list must not matter.
  HashRing a, b;
  a.SetMembers(FleetOf(5));
  std::vector<std::string> reversed = FleetOf(5);
  std::reverse(reversed.begin(), reversed.end());
  reversed.push_back(reversed.front());  // duplicates are deduplicated
  b.SetMembers(reversed);

  ASSERT_EQ(a.num_members(), 5u);
  ASSERT_EQ(b.num_members(), 5u);
  for (const auto& id : VideoIds(1000)) {
    ASSERT_EQ(a.Owner(id).value(), b.Owner(id).value()) << id;
  }
}

TEST(HashRingTest, AllMembersOwnSomeKeys) {
  HashRing ring;
  ring.SetMembers(FleetOf(4));
  std::unordered_map<std::string, size_t> per_member;
  const auto ids = VideoIds(10000);
  for (const auto& id : ids) {
    ++per_member[ring.Owner(id).value()];
  }
  ASSERT_EQ(per_member.size(), 4u);
  // With 64 vnodes the split is coarse but every member must carry a
  // real share — a degenerate ring (one member owning ~everything)
  // would defeat the scale-out entirely.
  for (const auto& [member, count] : per_member) {
    EXPECT_GT(count, ids.size() / 20) << member;  // > 5% each
  }
}

TEST(HashRingTest, AddingOneMemberRemapsAboutOneNth) {
  // The consistent-hashing contract: going from N to N+1 members moves
  // only the keys the new member takes over — about 1/(N+1) of the
  // keyspace — and every moved key moves TO the new member.
  const size_t kIds = 10000;
  const auto ids = VideoIds(kIds);

  HashRing before, after;
  before.SetMembers(FleetOf(4));
  after.SetMembers(FleetOf(5));
  const std::string added = FleetOf(5).back();

  size_t moved = 0;
  for (const auto& id : ids) {
    const std::string old_owner = before.Owner(id).value();
    const std::string new_owner = after.Owner(id).value();
    if (old_owner != new_owner) {
      ++moved;
      EXPECT_EQ(new_owner, added) << id << " moved between survivors";
    }
  }
  // Expect ~1/5 = 2000 moved; allow a wide band for vnode placement
  // noise, but well under the ~8000 a modulo-hash rebuild would move.
  EXPECT_GT(moved, kIds / 10);      // > 10%
  EXPECT_LT(moved, kIds * 35 / 100);  // < 35%
}

TEST(HashRingTest, RemovingOneMemberOnlyRemapsItsKeys) {
  const auto ids = VideoIds(10000);
  HashRing before, after;
  before.SetMembers(FleetOf(5));
  std::vector<std::string> survivors = FleetOf(5);
  const std::string removed = survivors.back();
  survivors.pop_back();
  after.SetMembers(survivors);

  for (const auto& id : ids) {
    const std::string old_owner = before.Owner(id).value();
    if (old_owner != removed) {
      // Keys not owned by the departed member must not move at all.
      ASSERT_EQ(after.Owner(id).value(), old_owner) << id;
    }
  }
}

TEST(HashRingTest, CandidatesAreDistinctAndStartAtOwner) {
  HashRing ring;
  ring.SetMembers(FleetOf(4));
  for (const auto& id : VideoIds(100)) {
    const auto candidates = ring.Candidates(id, 4);
    ASSERT_EQ(candidates.size(), 4u);
    EXPECT_EQ(candidates.front(), ring.Owner(id).value());
    std::set<std::string> distinct(candidates.begin(), candidates.end());
    EXPECT_EQ(distinct.size(), 4u) << id;
  }
  // Asking for more candidates than members caps at the membership.
  EXPECT_EQ(ring.Candidates("video-1", 99).size(), 4u);
}

TEST(HashRingTest, HashIsStableFnv1a) {
  // Pin the hash function: these constants are the FNV-1a test vectors.
  // If they change, every deployed router disagrees about ownership
  // after a rolling restart — treat this as an ABI break.
  EXPECT_EQ(HashRing::Hash(""), 14695981039346656037ull);
  EXPECT_EQ(HashRing::Hash("a"), 12638187200555641996ull);
  EXPECT_EQ(HashRing::Hash("foobar"), 9625390261332436968ull);
}

TEST(FleetTest, UpdatePreservesSurvivorHealthAndBumpsVersion) {
  Fleet fleet(/*vnodes=*/8);
  ASSERT_TRUE(fleet.Update(FleetOf(3)).ok());
  const uint64_t v1 = fleet.Version();
  fleet.SetHealth("10.0.0.1:8080", BackendHealth::kDown);
  fleet.SetHealth("10.0.0.2:8080", BackendHealth::kHealthy);

  // Drop .3, add .4: survivors keep their health, the newcomer is
  // unknown, and the version moves so observers can detect the change.
  ASSERT_TRUE(
      fleet
          .Update({"10.0.0.1:8080", "10.0.0.2:8080", "10.0.0.4:8080"})
          .ok());
  EXPECT_GT(fleet.Version(), v1);
  EXPECT_EQ(fleet.HealthOf("10.0.0.1:8080"), BackendHealth::kDown);
  EXPECT_EQ(fleet.HealthOf("10.0.0.2:8080"), BackendHealth::kHealthy);
  EXPECT_EQ(fleet.HealthOf("10.0.0.4:8080"), BackendHealth::kUnknown);
  // Departed members are unknown and SetHealth on them is a no-op.
  fleet.SetHealth("10.0.0.3:8080", BackendHealth::kHealthy);
  EXPECT_EQ(fleet.HealthOf("10.0.0.3:8080"), BackendHealth::kUnknown);
}

TEST(FleetTest, UpdateRejectsBadAddressesAtomically) {
  Fleet fleet;
  ASSERT_TRUE(fleet.Update(FleetOf(2)).ok());
  const uint64_t version = fleet.Version();
  EXPECT_FALSE(fleet.Update({"10.0.0.9:8080", "no-port"}).ok());
  // A rejected update must not half-apply.
  EXPECT_EQ(fleet.Version(), version);
  EXPECT_EQ(fleet.NumMembers(), 2u);
}

TEST(MembershipTest, ParseAndSplit) {
  auto parsed =
      ParseMembership(R"({"backends":["a:1","b:65535"]})");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().size(), 2u);

  EXPECT_TRUE(ParseMembership(R"({"backends":[]})").ok());
  EXPECT_FALSE(ParseMembership(R"({"backends":["a"]})").ok());
  EXPECT_FALSE(ParseMembership(R"({"backends":["a:0"]})").ok());
  EXPECT_FALSE(ParseMembership(R"({"backends":["a:65536"]})").ok());
  EXPECT_FALSE(ParseMembership(R"({"backends":[":80"]})").ok());
  EXPECT_FALSE(ParseMembership(R"({"nodes":[]})").ok());
  EXPECT_FALSE(ParseMembership("[]").ok());

  auto split = SplitAddress("host:8080");
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split.value().first, "host");
  EXPECT_EQ(split.value().second, 8080);
  // IPv6-ish / multi-colon: the last colon wins.
  auto v6 = SplitAddress("::1:9090");
  ASSERT_TRUE(v6.ok());
  EXPECT_EQ(v6.value().first, "::1");
  EXPECT_EQ(v6.value().second, 9090);
}

}  // namespace
}  // namespace lightor::cluster
