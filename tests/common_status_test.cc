#include <gtest/gtest.h>

#include <string>

#include "common/result.h"
#include "common/status.h"

namespace lightor::common {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  const Status st = Status::NotFound("missing thing");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.message(), "missing thing");
  EXPECT_EQ(st.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, EveryFactoryMatchesItsPredicate) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_TRUE(Status::DeadlineExceeded("x").IsDeadlineExceeded());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kCorruption), "Corruption");
  EXPECT_EQ(StatusCodeName(StatusCode::kIoError), "IoError");
  EXPECT_EQ(StatusCodeName(StatusCode::kUnavailable), "Unavailable");
  EXPECT_EQ(StatusCodeName(StatusCode::kDeadlineExceeded), "DeadlineExceeded");
}

TEST(StatusTest, RetryableCoversTransientPeerFailures) {
  EXPECT_TRUE(IsRetryable(Status::IoError("disk full")));
  EXPECT_TRUE(IsRetryable(Status::Unavailable("refused")));
  EXPECT_TRUE(IsRetryable(Status::DeadlineExceeded("timeout")));
  EXPECT_FALSE(IsRetryable(Status::Corruption("bad record")));
  EXPECT_FALSE(IsRetryable(Status::InvalidArgument("bad arg")));
  EXPECT_FALSE(IsRetryable(Status::OK()));
}

Status FailIfNegative(int x) {
  LIGHTOR_RETURN_IF_ERROR(x < 0 ? Status::InvalidArgument("negative")
                                : Status::OK());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  EXPECT_TRUE(FailIfNegative(3).ok());
  EXPECT_TRUE(FailIfNegative(-1).IsInvalidArgument());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("no");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(-7), -7);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r.value_or("fallback"), "hello");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string(1000, 'x');
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved.size(), 1000u);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseAssignOrReturn(int x, int* out) {
  LIGHTOR_ASSIGN_OR_RETURN(*out, HalveEven(x));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(8, &out).ok());
  EXPECT_EQ(out, 4);
  EXPECT_TRUE(UseAssignOrReturn(7, &out).IsInvalidArgument());
}

}  // namespace
}  // namespace lightor::common
