#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/stats.h"

namespace lightor::common {
namespace {

TEST(StatsTest, MeanBasics) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({5.0}), 5.0);
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(StatsTest, VarianceUnbiased) {
  EXPECT_DOUBLE_EQ(Variance({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({4.0}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({1.0, 3.0}), 2.0);  // ((1-2)^2+(3-2)^2)/1
  EXPECT_DOUBLE_EQ(StdDev({1.0, 3.0}), std::sqrt(2.0));
}

TEST(StatsTest, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(Median({}), 0.0);
  EXPECT_DOUBLE_EQ(Median({7.0}), 7.0);
  EXPECT_DOUBLE_EQ(Median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(StatsTest, MedianIsRobustToOutliers) {
  EXPECT_DOUBLE_EQ(Median({1.0, 2.0, 3.0, 1e9}), 2.5);
}

TEST(StatsTest, QuantileInterpolates) {
  const std::vector<double> xs = {0.0, 10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5), 20.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.25), 10.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.125), 5.0);
}

TEST(StatsTest, MinMax) {
  EXPECT_DOUBLE_EQ(Min({3.0, -1.0, 2.0}), -1.0);
  EXPECT_DOUBLE_EQ(Max({3.0, -1.0, 2.0}), 3.0);
  EXPECT_DOUBLE_EQ(Min({}), 0.0);
}

TEST(StatsTest, PearsonCorrelation) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  const std::vector<double> ys = {2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(xs, ys), 1.0, 1e-12);
  const std::vector<double> neg = {10, 8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(xs, neg), -1.0, 1e-12);
  const std::vector<double> flat = {3, 3, 3, 3, 3};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(xs, flat), 0.0);
}

TEST(StatsTest, MovingAveragePreservesConstant) {
  const std::vector<double> xs(10, 4.0);
  for (double v : MovingAverage(xs, 3)) EXPECT_DOUBLE_EQ(v, 4.0);
}

TEST(StatsTest, MovingAverageSmoothsSpike) {
  std::vector<double> xs(11, 0.0);
  xs[5] = 10.0;
  const auto smooth = MovingAverage(xs, 1);
  EXPECT_NEAR(smooth[4], 10.0 / 3.0, 1e-12);
  EXPECT_NEAR(smooth[5], 10.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(smooth[0], 0.0);
}

TEST(StatsTest, MovingAverageZeroRadiusIsIdentity) {
  const std::vector<double> xs = {1.0, 5.0, 2.0};
  EXPECT_EQ(MovingAverage(xs, 0), xs);
}

TEST(StatsTest, GaussianSmoothPreservesMassShape) {
  std::vector<double> xs(21, 0.0);
  xs[10] = 1.0;
  const auto smooth = GaussianSmooth(xs, 2.0);
  // The peak stays at the center and decays monotonically outwards.
  for (size_t i = 0; i < 10; ++i) EXPECT_LE(smooth[i], smooth[i + 1]);
  for (size_t i = 10; i + 1 < smooth.size(); ++i) {
    EXPECT_GE(smooth[i], smooth[i + 1]);
  }
}

TEST(StatsTest, LocalMaximaFindsInteriorPeaks) {
  const std::vector<double> xs = {0, 1, 3, 1, 0, 2, 5, 2, 0};
  const auto peaks = LocalMaxima(xs);
  ASSERT_EQ(peaks.size(), 2u);
  EXPECT_EQ(peaks[0], 2u);
  EXPECT_EQ(peaks[1], 6u);
}

TEST(StatsTest, LocalMaximaHandlesPlateaus) {
  const std::vector<double> xs = {0, 2, 2, 2, 0};
  const auto peaks = LocalMaxima(xs);
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_EQ(peaks[0], 1u);
}

TEST(StatsTest, LocalMaximaRespectsMinHeight) {
  const std::vector<double> xs = {0, 1, 0, 5, 0};
  const auto peaks = LocalMaxima(xs, 2.0);
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_EQ(peaks[0], 3u);
}

TEST(StatsTest, LocalMaximaEndpoints) {
  const std::vector<double> xs = {5, 1, 0, 1, 7};
  const auto peaks = LocalMaxima(xs);
  ASSERT_EQ(peaks.size(), 2u);
  EXPECT_EQ(peaks[0], 0u);
  EXPECT_EQ(peaks[1], 4u);
}

TEST(HistogramTest, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.BinWidth(), 2.0);
  h.Add(1.0);    // bin 0
  h.Add(9.9);    // bin 4
  h.Add(-50.0);  // clamped to bin 0
  h.Add(99.0);   // clamped to bin 4
  EXPECT_DOUBLE_EQ(h.counts()[0], 2.0);
  EXPECT_DOUBLE_EQ(h.counts()[4], 2.0);
  EXPECT_DOUBLE_EQ(h.total_weight(), 4.0);
}

TEST(HistogramTest, WeightsAndNormalization) {
  Histogram h(0.0, 4.0, 4);
  h.Add(0.5, 3.0);
  h.Add(3.5, 1.0);
  const auto norm = h.Normalized();
  EXPECT_DOUBLE_EQ(norm[0], 0.75);
  EXPECT_DOUBLE_EQ(norm[3], 0.25);
}

TEST(HistogramTest, BinCenters) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.BinCenter(0), 1.0);
  EXPECT_DOUBLE_EQ(h.BinCenter(4), 9.0);
}

TEST(EmpiricalCdfTest, EvaluateAndQuantile) {
  EmpiricalCdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.Evaluate(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.Evaluate(2.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf.Evaluate(10.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.5), 2.5);
}

TEST(RunningStatsTest, MatchesBatchStats) {
  RunningStats rs;
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (double x : xs) rs.Add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), Mean(xs), 1e-12);
  EXPECT_NEAR(rs.variance(), Variance(xs), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats rs;
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

}  // namespace
}  // namespace lightor::common
