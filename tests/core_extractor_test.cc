#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "core/extractor.h"
#include "sim/bridge.h"
#include "sim/viewer_simulator.h"

namespace lightor::core {
namespace {

Play P(double s, double e) { return Play("u", s, e); }

TEST(PlayFeaturesTest, NormalizedFractions) {
  PlayFeatures f;
  f.plays_after = 6.0;
  f.plays_before = 2.0;
  f.plays_across = 2.0;
  const auto n = f.Normalized();
  EXPECT_DOUBLE_EQ(n[0], 0.6);
  EXPECT_DOUBLE_EQ(n[1], 0.2);
  EXPECT_DOUBLE_EQ(n[2], 0.2);
  PlayFeatures zero;
  EXPECT_EQ(zero.Normalized(), (std::vector<double>{0.0, 0.0, 0.0}));
}

TEST(FilterTest, DistanceFilterDropsFarPlays) {
  HighlightExtractor extractor;
  const double dot = 1000.0;
  const auto filtered = extractor.FilterPlays(
      {P(990, 1010), P(1200, 1220), P(700, 720)}, dot);
  ASSERT_EQ(filtered.size(), 1u);
  EXPECT_DOUBLE_EQ(filtered[0].span.start, 990.0);
}

TEST(FilterTest, DurationFilterDropsProbesAndMarathons) {
  ExtractorOptions opts;
  opts.graph_outlier_removal = false;
  HighlightExtractor extractor(opts);
  const auto filtered = extractor.FilterPlays(
      {P(1000, 1003),      // too short (probe)
       P(1000, 1500),      // too long (marathon)
       P(1000, 1020)},     // just right
      1000.0);
  ASSERT_EQ(filtered.size(), 1u);
  EXPECT_DOUBLE_EQ(filtered[0].span.end, 1020.0);
}

TEST(FilterTest, InvalidPlaysDropped) {
  ExtractorOptions opts;
  opts.graph_outlier_removal = false;
  HighlightExtractor extractor(opts);
  EXPECT_TRUE(extractor.FilterPlays({P(1010, 990)}, 1000.0).empty());
}

TEST(GraphOutlierTest, KeepsOverlappingClusterDropsIsolated) {
  // Cluster of 3 mutually overlapping plays + 1 isolated far play (still
  // within the distance window).
  const std::vector<Play> plays = {P(995, 1015), P(1000, 1020),
                                   P(1005, 1018), P(1040, 1055)};
  const auto kept = HighlightExtractor::RemoveGraphOutliers(plays);
  ASSERT_EQ(kept.size(), 3u);
  for (const auto& play : kept) EXPECT_LT(play.span.start, 1030.0);
}

TEST(GraphOutlierTest, SmallInputsPassThrough) {
  EXPECT_EQ(HighlightExtractor::RemoveGraphOutliers({}).size(), 0u);
  EXPECT_EQ(HighlightExtractor::RemoveGraphOutliers({P(0, 10)}).size(), 1u);
  EXPECT_EQ(
      HighlightExtractor::RemoveGraphOutliers({P(0, 10), P(100, 110)}).size(),
      2u);
}

TEST(FeaturesTest, CountsRelativeToDot) {
  HighlightExtractor extractor;
  const double dot = 1000.0;
  const auto f = extractor.ComputeFeatures(
      {P(1000, 1020), P(1010, 1030), P(980, 990), P(995, 1005)}, dot);
  EXPECT_DOUBLE_EQ(f.plays_after, 2.0);   // start >= dot
  EXPECT_DOUBLE_EQ(f.plays_before, 1.0);  // end < dot
  EXPECT_DOUBLE_EQ(f.plays_across, 1.0);  // start < dot <= end
}

TEST(TypeClassifierTest, RuleFallbackMatchesFig4) {
  TypeClassifier classifier;
  EXPECT_FALSE(classifier.trained());
  PlayFeatures type2;
  type2.plays_after = 9.0;
  type2.plays_across = 1.0;
  EXPECT_EQ(classifier.Classify(type2), DotType::kTypeII);
  PlayFeatures type1;
  type1.plays_after = 2.0;
  type1.plays_before = 5.0;
  type1.plays_across = 3.0;
  EXPECT_EQ(classifier.Classify(type1), DotType::kTypeI);
}

TEST(TypeClassifierTest, TrainedModelOverridesRule) {
  // Train on synthetic feature rows: label 1 (Type I) when the
  // before+across fraction is high.
  ml::Dataset data;
  common::Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    const double backward = rng.Uniform(0.0, 1.0);
    PlayFeatures f;
    f.plays_before = backward * 10.0;
    f.plays_after = (1.0 - backward) * 10.0;
    data.Add(f.Normalized(), backward > 0.5 ? 1 : 0);
  }
  TypeClassifier classifier;
  ASSERT_TRUE(classifier.Train(data).ok());
  EXPECT_TRUE(classifier.trained());
  PlayFeatures mostly_backward;
  mostly_backward.plays_before = 8.0;
  mostly_backward.plays_after = 2.0;
  EXPECT_EQ(classifier.Classify(mostly_backward), DotType::kTypeI);
  PlayFeatures mostly_forward;
  mostly_forward.plays_before = 1.0;
  mostly_forward.plays_after = 9.0;
  EXPECT_EQ(classifier.Classify(mostly_forward), DotType::kTypeII);
}

TEST(RefineOnceTest, TypeIIAggregatesMedians) {
  HighlightExtractor extractor;
  const double dot = 1000.0;
  // Engaged crowd: all plays start at/after the dot and overlap.
  const std::vector<Play> plays = {P(1005, 1030), P(1007, 1031),
                                   P(1006, 1029), P(1008, 1032),
                                   P(1004, 1028)};
  const auto result = extractor.RefineOnce(plays, dot);
  EXPECT_EQ(result.type, DotType::kTypeII);
  EXPECT_TRUE(result.enough_plays);
  EXPECT_DOUBLE_EQ(result.boundary.start, 1006.0);
  EXPECT_DOUBLE_EQ(result.boundary.end, 1030.0);
  EXPECT_DOUBLE_EQ(result.new_dot, 1006.0);
}

TEST(RefineOnceTest, TypeIIDropsPlaysEndingBeforeDot) {
  ExtractorOptions opts;
  opts.graph_outlier_removal = false;
  HighlightExtractor extractor(opts);
  const double dot = 1000.0;
  // 3 engaged plays after the dot + 2 plays fully before it (ends < dot,
  // not enough to flip the rule to Type I: backward fraction 2/5 < 0.45).
  const std::vector<Play> plays = {P(1001, 1020), P(1002, 1021),
                                   P(1003, 1022), P(980, 992), P(981, 993)};
  const auto result = extractor.RefineOnce(plays, dot);
  ASSERT_EQ(result.type, DotType::kTypeII);
  // Medians computed over the 3 surviving plays only.
  EXPECT_DOUBLE_EQ(result.boundary.start, 1002.0);
  EXPECT_DOUBLE_EQ(result.boundary.end, 1021.0);
}

TEST(RefineOnceTest, TypeIMovesDotBack) {
  HighlightExtractor extractor;
  const double dot = 1000.0;
  // Backward-search crowd: plays before/across the dot dominate.
  const std::vector<Play> plays = {P(960, 975), P(965, 980), P(970, 985),
                                   P(950, 1010), P(955, 1005)};
  const auto result = extractor.RefineOnce(plays, dot);
  EXPECT_EQ(result.type, DotType::kTypeI);
  EXPECT_DOUBLE_EQ(result.new_dot, 1000.0 - extractor.options().type1_move);
}

TEST(RefineOnceTest, TooFewPlaysTreatedAsTypeI) {
  HighlightExtractor extractor;
  const auto result = extractor.RefineOnce({P(1000, 1020)}, 1000.0);
  EXPECT_FALSE(result.enough_plays);
  EXPECT_EQ(result.type, DotType::kTypeI);
  EXPECT_LT(result.new_dot, 1000.0);
}

TEST(RefineOnceTest, NewDotClampedAtZero) {
  HighlightExtractor extractor;
  const auto result = extractor.RefineOnce({}, 5.0);
  EXPECT_GE(result.new_dot, 0.0);
}

/// Trains a Type I/II classifier the way a deployment would: labelled
/// dots around a training video's highlights, crowd plays, features.
TypeClassifier TrainedClassifier(const HighlightExtractor& extractor) {
  sim::GroundTruthVideo video;
  video.meta.id = "train";
  video.meta.length = 3600.0;
  for (int i = 0; i < 10; ++i) {
    const double start = 200.0 + i * 320.0;
    video.highlights.push_back(
        {common::Interval(start, start + 10.0 + 3.0 * i), 0.8});
  }
  sim::ViewerSimulator viewers;
  common::Rng rng(4242);
  ml::Dataset data;
  for (const auto& h : video.highlights) {
    for (int rep = 0; rep < 6; ++rep) {
      const bool type1 = rng.Bernoulli(0.5);
      const double dot = type1
                             ? h.span.end + rng.Uniform(1.0, 25.0)
                             : h.span.start + rng.Uniform(-10.0,
                                                          h.span.Length());
      const auto plays =
          sim::ToCorePlays(viewers.CollectPlays(video, dot, 20, rng));
      const auto filtered = extractor.FilterPlays(plays, dot);
      if (filtered.size() < 2) continue;
      data.Add(extractor.ComputeFeatures(filtered, dot).Normalized(),
               type1 ? 1 : 0);
    }
  }
  TypeClassifier classifier;
  EXPECT_TRUE(classifier.Train(data).ok());
  return classifier;
}

/// A scripted provider for deterministic Run() tests.
class ScriptedProvider : public PlayProvider {
 public:
  explicit ScriptedProvider(sim::GroundTruthVideo video)
      : video_(std::move(video)), sim_(), rng_(77) {}

  std::vector<Play> Collect(common::Seconds red_dot) override {
    ++calls_;
    return sim::ToCorePlays(sim_.CollectPlays(video_, red_dot, 12, rng_));
  }

  int calls() const { return calls_; }

 private:
  sim::GroundTruthVideo video_;
  sim::ViewerSimulator sim_;
  common::Rng rng_;
  int calls_ = 0;
};

sim::GroundTruthVideo OneHighlight(double start, double len) {
  sim::GroundTruthVideo video;
  video.meta.id = "v";
  video.meta.length = 3600.0;
  video.highlights.push_back({common::Interval(start, start + len), 0.9});
  return video;
}

TEST(RunTest, ConvergesFromGoodDot) {
  HighlightExtractor extractor;
  extractor.set_classifier(TrainedClassifier(extractor));
  ScriptedProvider provider(OneHighlight(1000.0, 25.0));
  const auto result = extractor.Run(provider, 998.0);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.final_type, DotType::kTypeII);
  // Boundary start lands a few seconds into the highlight (Fig. 3(b)'s
  // tolerable error); end lands near the highlight end.
  EXPECT_NEAR(result.boundary.start, 1007.0, 8.0);
  EXPECT_NEAR(result.boundary.end, 1025.0 + 8.0, 10.0);
}

TEST(RunTest, TypeIDotWalksBackAndConverges) {
  HighlightExtractor extractor;
  extractor.set_classifier(TrainedClassifier(extractor));
  ScriptedProvider provider(OneHighlight(1000.0, 20.0));
  // The dot starts past the highlight end: first iterations must move it
  // backwards, then converge as Type II.
  const auto result = extractor.Run(provider, 1045.0);
  EXPECT_GE(result.iterations, 2);
  ASSERT_GE(result.dot_history.size(), 2u);
  EXPECT_LT(result.dot_history[1], result.dot_history[0]);
  EXPECT_NEAR(result.boundary.start, 1005.0, 14.0);
}

TEST(RunTest, RespectsMaxIterations) {
  ExtractorOptions opts;
  opts.max_iterations = 2;
  HighlightExtractor extractor(opts);
  // No highlight anywhere near: the crowd only probes, so the loop
  // exhausts its iterations without converging.
  ScriptedProvider provider(OneHighlight(100.0, 20.0));
  const auto result = extractor.Run(provider, 3000.0);
  EXPECT_LE(result.iterations, 2);
  EXPECT_EQ(provider.calls(), result.iterations);
}

/// A provider whose crowd never produces any plays.
class SilentProvider : public PlayProvider {
 public:
  std::vector<Play> Collect(common::Seconds) override { return {}; }
};

TEST(RunTest, FallbackBoundaryWhenNoTypeII) {
  ExtractorOptions opts;
  opts.max_iterations = 3;
  HighlightExtractor extractor(opts);
  SilentProvider provider;
  const auto result = extractor.Run(provider, 3000.0);
  EXPECT_FALSE(result.converged);
  // Fallback boundary has the configured provisional extent and the dot
  // walked backwards by m per iteration.
  EXPECT_NEAR(result.boundary.Length(), opts.fallback_length, 1e-9);
  EXPECT_NEAR(result.boundary.start,
              3000.0 - opts.type1_move * opts.max_iterations, 1e-9);
}

}  // namespace
}  // namespace lightor::core
