#include <gtest/gtest.h>

#include "baselines/chat_lstm.h"
#include "baselines/joint_lstm.h"
#include "baselines/video_features.h"
#include "sim/bridge.h"
#include "sim/corpus.h"

namespace lightor::baselines {
namespace {

ChatLstmOptions TinyChatLstm() {
  ChatLstmOptions opts;
  opts.frame_stride = 10.0;
  opts.lstm.hidden_size = 8;
  opts.lstm.num_layers = 1;
  opts.lstm.max_sequence_length = 48;
  opts.lstm.epochs = 2;
  return opts;
}

core::TrainingVideo ToTraining(const sim::LabeledVideo& video) {
  core::TrainingVideo tv;
  tv.messages = sim::ToCoreMessages(video.chat);
  tv.video_length = video.truth.meta.length;
  for (const auto& h : video.truth.highlights) tv.highlights.push_back(h.span);
  return tv;
}

TEST(ChatLstmTest, FrameTextCollectsWindowMessages) {
  std::vector<core::Message> messages(3);
  messages[0].timestamp = 10.0;
  messages[0].text = "one";
  messages[1].timestamp = 12.0;
  messages[1].text = "two";
  messages[2].timestamp = 30.0;
  messages[2].text = "three";
  EXPECT_EQ(ChatLstm::FrameText(messages, 9.0, 7.0), "one\ntwo");
  EXPECT_EQ(ChatLstm::FrameText(messages, 28.0, 7.0), "three");
  EXPECT_EQ(ChatLstm::FrameText(messages, 100.0, 7.0), "");
}

TEST(ChatLstmTest, RejectsEmptyTraining) {
  ChatLstm model(TinyChatLstm());
  EXPECT_TRUE(model.Train({}).IsInvalidArgument());
  EXPECT_FALSE(model.trained());
}

TEST(ChatLstmTest, TrainsAndScores) {
  const auto corpus = sim::MakeCorpus(sim::GameType::kDota2, 1, 81);
  ChatLstm model(TinyChatLstm());
  ASSERT_TRUE(model.Train({ToTraining(corpus[0])}).ok());
  EXPECT_TRUE(model.trained());

  std::vector<common::Seconds> positions;
  const auto scores = model.ScoreFrames(
      sim::ToCoreMessages(corpus[0].chat), corpus[0].truth.meta.length,
      &positions);
  ASSERT_EQ(scores.size(), positions.size());
  ASSERT_FALSE(scores.empty());
  for (double s : scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(ChatLstmTest, DetectTopKRespectsSeparation) {
  const auto corpus = sim::MakeCorpus(sim::GameType::kDota2, 1, 82);
  ChatLstm model(TinyChatLstm());
  ASSERT_TRUE(model.Train({ToTraining(corpus[0])}).ok());
  const auto detections = model.DetectTopK(
      sim::ToCoreMessages(corpus[0].chat), corpus[0].truth.meta.length, 5);
  EXPECT_LE(detections.size(), 5u);
  for (size_t i = 0; i < detections.size(); ++i) {
    for (size_t j = i + 1; j < detections.size(); ++j) {
      EXPECT_GT(std::abs(detections[i] - detections[j]), 120.0);
    }
  }
}

TEST(VideoFeaturesTest, DeterministicPerFrame) {
  const auto corpus = sim::MakeCorpus(sim::GameType::kDota2, 1, 83);
  SimulatedVideoFeatures features;
  const auto a = features.FrameFeatures(corpus[0].truth, 100.0);
  const auto b = features.FrameFeatures(corpus[0].truth, 100.0);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), features.dims());
}

TEST(VideoFeaturesTest, HighlightFramesCarrySignal) {
  const auto corpus = sim::MakeCorpus(sim::GameType::kDota2, 1, 84);
  const auto& truth = corpus[0].truth;
  SimulatedVideoFeatures features;
  // Mean norm of highlight frames should exceed background frames.
  double hi_norm = 0.0, bg_norm = 0.0;
  int hi_n = 0, bg_n = 0;
  for (double t = 0.0; t < truth.meta.length; t += 5.0) {
    const auto f = features.FrameFeatures(truth, t);
    double norm = 0.0;
    for (double x : f) norm += x * x;
    if (truth.HighlightAt(t) >= 0) {
      hi_norm += norm;
      ++hi_n;
    } else {
      bg_norm += norm;
      ++bg_n;
    }
  }
  ASSERT_GT(hi_n, 0);
  ASSERT_GT(bg_n, 0);
  EXPECT_GT(hi_norm / hi_n, bg_norm / bg_n);
}

TEST(VideoFeaturesTest, GameDirectionsDiffer) {
  // The same "action" reads differently across games: feature vectors of
  // highlight frames in Dota2 and LoL videos point along different axes.
  SimulatedVideoFeatures features;
  sim::GroundTruthVideo dota;
  dota.meta.id = "d";
  dota.meta.game = sim::GameType::kDota2;
  dota.meta.length = 100.0;
  dota.highlights.push_back({common::Interval(0.0, 100.0), 1.0});
  sim::GroundTruthVideo lol = dota;
  lol.meta.id = "l";
  lol.meta.game = sim::GameType::kLol;

  auto mean_features = [&](const sim::GroundTruthVideo& v) {
    std::vector<double> acc(features.dims(), 0.0);
    for (double t = 0.0; t < 100.0; t += 1.0) {
      const auto f = features.FrameFeatures(v, t);
      for (size_t i = 0; i < acc.size(); ++i) acc[i] += f[i];
    }
    return acc;
  };
  const auto mean_dota = mean_features(dota);
  const auto mean_lol = mean_features(lol);
  double dot = 0.0, norm_d = 0.0, norm_l = 0.0;
  for (size_t i = 0; i < mean_dota.size(); ++i) {
    dot += mean_dota[i] * mean_lol[i];
    norm_d += mean_dota[i] * mean_dota[i];
    norm_l += mean_lol[i] * mean_lol[i];
  }
  const double cosine = dot / std::sqrt(norm_d * norm_l);
  EXPECT_LT(cosine, 0.9);  // not the same direction
}

TEST(JointLstmTest, TrainsAndDetects) {
  JointLstmOptions opts;
  opts.chat = TinyChatLstm();
  JointLstm model(opts);
  const auto corpus = sim::MakeCorpus(sim::GameType::kLol, 2, 85);
  ASSERT_TRUE(model.Train({corpus[0]}).ok());
  EXPECT_TRUE(model.trained());
  const auto detections = model.DetectTopK(corpus[1], 5);
  EXPECT_LE(detections.size(), 5u);
  std::vector<common::Seconds> positions;
  const auto scores = model.ScoreFrames(corpus[1], &positions);
  ASSERT_EQ(scores.size(), positions.size());
  for (double s : scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(JointLstmTest, RejectsEmptyCorpus) {
  JointLstm model;
  EXPECT_TRUE(model.Train({}).IsInvalidArgument());
}

}  // namespace
}  // namespace lightor::baselines
