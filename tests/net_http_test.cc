#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "net/client.h"
#include "net/codec.h"
#include "net/http.h"
#include "net/json.h"
#include "net/server.h"
#include "net/service.h"
#include "test_stack.h"

namespace lightor::net {
namespace {

constexpr std::string_view kPostVisit =
    "POST /visit HTTP/1.1\r\n"
    "Host: localhost\r\n"
    "Content-Type: application/json\r\n"
    "Content-Length: 20\r\n"
    "\r\n"
    "{\"video_id\":\"vid-1\"}";

/// Owns the parser for the lifetime of the parsed request: the request's
/// string_view fields borrow from the parser's buffer (the zero-copy
/// contract), so handing the request out by value would dangle.
class MustParse {
 public:
  explicit MustParse(std::string_view wire) {
    parser_.Append(wire);
    EXPECT_EQ(parser_.Parse(), RequestParser::State::kReady);
  }
  const HttpRequest* operator->() const { return &parser_.request(); }
  const HttpRequest& operator*() const { return parser_.request(); }

 private:
  RequestParser parser_;
};

TEST(RequestParserTest, CompleteRequestInOneRead) {
  const MustParse req(kPostVisit);
  EXPECT_EQ(req->method, "POST");
  EXPECT_EQ(req->path, "/visit");
  EXPECT_EQ(req->version_minor, 1);
  EXPECT_EQ(req->body, "{\"video_id\":\"vid-1\"}");
  ASSERT_NE(req->FindHeader("content-type"), nullptr);
  EXPECT_EQ(*req->FindHeader("Content-Type"), "application/json");
}

// Satellite requirement: the parser must produce the identical request
// no matter where the kernel tears the read — split at EVERY byte
// boundary and compare against the one-shot parse.
TEST(RequestParserTest, SplitAtEveryByteBoundary) {
  const MustParse reference(kPostVisit);
  for (size_t split = 0; split <= kPostVisit.size(); ++split) {
    RequestParser parser;
    parser.Append(kPostVisit.substr(0, split));
    const auto first = parser.Parse();
    if (split < kPostVisit.size()) {
      ASSERT_EQ(first, RequestParser::State::kNeedMore) << "split " << split;
      parser.Append(kPostVisit.substr(split));
      ASSERT_EQ(parser.Parse(), RequestParser::State::kReady)
          << "split " << split;
    } else {
      ASSERT_EQ(first, RequestParser::State::kReady) << "split " << split;
    }
    const HttpRequest& req = parser.request();
    EXPECT_EQ(req.method, reference->method) << "split " << split;
    EXPECT_EQ(req.target, reference->target) << "split " << split;
    EXPECT_EQ(req.headers, reference->headers) << "split " << split;
    EXPECT_EQ(req.body, reference->body) << "split " << split;
    EXPECT_EQ(parser.buffered_bytes(), 0u) << "split " << split;
  }
}

TEST(RequestParserTest, OneByteAtATime) {
  RequestParser parser;
  for (size_t i = 0; i < kPostVisit.size(); ++i) {
    parser.Append(kPostVisit.substr(i, 1));
    const auto state = parser.Parse();
    if (i + 1 < kPostVisit.size()) {
      ASSERT_EQ(state, RequestParser::State::kNeedMore) << "byte " << i;
    } else {
      ASSERT_EQ(state, RequestParser::State::kReady);
    }
  }
  EXPECT_EQ(parser.request().body, "{\"video_id\":\"vid-1\"}");
}

TEST(RequestParserTest, TwoPipelinedRequestsInOneRead) {
  RequestParser parser;
  parser.Append(
      "GET /healthz HTTP/1.1\r\n\r\n"
      "POST /refine HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}");
  ASSERT_EQ(parser.Parse(), RequestParser::State::kReady);
  EXPECT_EQ(parser.request().method, "GET");
  EXPECT_EQ(parser.request().path, "/healthz");
  EXPECT_GT(parser.buffered_bytes(), 0u);  // second request still queued
  ASSERT_EQ(parser.Parse(), RequestParser::State::kReady);
  EXPECT_EQ(parser.request().method, "POST");
  EXPECT_EQ(parser.request().path, "/refine");
  EXPECT_EQ(parser.request().body, "{}");
  EXPECT_EQ(parser.buffered_bytes(), 0u);
  EXPECT_EQ(parser.Parse(), RequestParser::State::kNeedMore);
}

TEST(RequestParserTest, MissingContentLengthMeansEmptyBody) {
  EXPECT_EQ(MustParse("GET /metrics HTTP/1.1\r\n\r\n")->body, "");
}

TEST(RequestParserTest, ConnectionClosedMidBodyStaysNeedMore) {
  RequestParser parser;
  parser.Append(
      "POST /visit HTTP/1.1\r\nContent-Length: 100\r\n\r\npartial body");
  // There is no more data coming; the parser simply never reaches kReady.
  EXPECT_EQ(parser.Parse(), RequestParser::State::kNeedMore);
  EXPECT_EQ(parser.Parse(), RequestParser::State::kNeedMore);
  EXPECT_GT(parser.buffered_bytes(), 0u);
}

TEST(RequestParserTest, HeaderBlockOverCapIs431) {
  RequestParser parser(RequestParser::Limits{.max_header_bytes = 64,
                                             .max_body_bytes = 1024});
  parser.Append("GET / HTTP/1.1\r\nX-Big: " + std::string(100, 'a') +
                "\r\n\r\n");
  EXPECT_EQ(parser.Parse(), RequestParser::State::kError);
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(RequestParserTest, HeaderOverCapDetectedBeforeTerminator) {
  // The cap must fire even when the terminating blank line never arrives,
  // or a slow-loris peer could grow the buffer forever.
  RequestParser parser(RequestParser::Limits{.max_header_bytes = 64,
                                             .max_body_bytes = 1024});
  parser.Append("GET / HTTP/1.1\r\nX-Drip: " + std::string(200, 'b'));
  EXPECT_EQ(parser.Parse(), RequestParser::State::kError);
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(RequestParserTest, ContentLengthOverCapIs413) {
  RequestParser parser(RequestParser::Limits{.max_header_bytes = 8192,
                                             .max_body_bytes = 16});
  parser.Append("POST /visit HTTP/1.1\r\nContent-Length: 17\r\n\r\n");
  EXPECT_EQ(parser.Parse(), RequestParser::State::kError);
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(RequestParserTest, MalformedContentLengthIs400) {
  for (const char* bad : {"abc", "-1", "1x", "", " 5 5"}) {
    RequestParser parser;
    parser.Append(std::string("POST / HTTP/1.1\r\nContent-Length: ") + bad +
                  "\r\n\r\n");
    EXPECT_EQ(parser.Parse(), RequestParser::State::kError) << bad;
    EXPECT_EQ(parser.error_status(), 400) << bad;
  }
}

TEST(RequestParserTest, OverlongContentLengthIs413) {
  RequestParser parser;
  parser.Append(
      "POST / HTTP/1.1\r\nContent-Length: 99999999999999999999999\r\n\r\n");
  EXPECT_EQ(parser.Parse(), RequestParser::State::kError);
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(RequestParserTest, ConflictingContentLengthsIs400) {
  RequestParser parser;
  parser.Append(
      "POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\n");
  EXPECT_EQ(parser.Parse(), RequestParser::State::kError);
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(RequestParserTest, TransferEncodingIs501) {
  RequestParser parser;
  parser.Append("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
  EXPECT_EQ(parser.Parse(), RequestParser::State::kError);
  EXPECT_EQ(parser.error_status(), 501);
}

TEST(RequestParserTest, MalformedRequestLineIs400) {
  for (const char* bad :
       {"GET\r\n\r\n", "GET /\r\n\r\n", "GET / HTTP/1.1 extra\r\n\r\n",
        "get / HTTP/1.1\r\n\r\n", "/ GET HTTP/1.1\r\n\r\n"}) {
    RequestParser parser;
    parser.Append(bad);
    EXPECT_EQ(parser.Parse(), RequestParser::State::kError) << bad;
    EXPECT_EQ(parser.error_status(), 400) << bad;
  }
}

TEST(RequestParserTest, UnsupportedVersionIs505) {
  RequestParser parser;
  parser.Append("GET / HTTP/2.0\r\n\r\n");
  EXPECT_EQ(parser.Parse(), RequestParser::State::kError);
  EXPECT_EQ(parser.error_status(), 505);
}

TEST(RequestParserTest, ObsoleteLineFoldingIs400) {
  RequestParser parser;
  parser.Append("GET / HTTP/1.1\r\nX-A: one\r\n two\r\n\r\n");
  EXPECT_EQ(parser.Parse(), RequestParser::State::kError);
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(RequestParserTest, SpaceBeforeColonIs400) {
  RequestParser parser;
  parser.Append("GET / HTTP/1.1\r\nX-A : v\r\n\r\n");
  EXPECT_EQ(parser.Parse(), RequestParser::State::kError);
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(RequestParserTest, ErrorStateIsTerminal) {
  RequestParser parser;
  parser.Append("BOGUS\r\n\r\n");
  ASSERT_EQ(parser.Parse(), RequestParser::State::kError);
  // A valid request appended afterwards must not resurrect the parser.
  parser.Append("GET / HTTP/1.1\r\n\r\n");
  EXPECT_EQ(parser.Parse(), RequestParser::State::kError);
}

TEST(RequestParserTest, QueryParsing) {
  const MustParse req("GET /metrics?format=json&video_id=v-1 HTTP/1.1\r\n\r\n");
  EXPECT_EQ(req->path, "/metrics");
  EXPECT_EQ(req->query, "format=json&video_id=v-1");
  EXPECT_EQ(req->QueryParam("format"), "json");
  EXPECT_EQ(req->QueryParam("video_id"), "v-1");
  EXPECT_EQ(req->QueryParam("missing"), "");
}

TEST(RequestParserTest, KeepAliveSemantics) {
  EXPECT_TRUE(MustParse("GET / HTTP/1.1\r\n\r\n")->keep_alive());
  EXPECT_FALSE(
      MustParse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n")->keep_alive());
  EXPECT_FALSE(
      MustParse("GET / HTTP/1.1\r\nConnection: CLOSE\r\n\r\n")->keep_alive());
  EXPECT_FALSE(MustParse("GET / HTTP/1.0\r\n\r\n")->keep_alive());
  EXPECT_TRUE(
      MustParse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
          ->keep_alive());
}

TEST(HttpResponseTest, SerializeAppendsFramingHeaders) {
  HttpResponse resp = JsonResponse(200, "{\"ok\":true}");
  const std::string wire = resp.Serialize(/*keep_alive=*/true);
  EXPECT_NE(wire.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(wire.find("content-length: 11\r\n"), std::string::npos);
  EXPECT_NE(wire.find("connection: keep-alive\r\n"), std::string::npos);
  EXPECT_EQ(wire.substr(wire.size() - 11), "{\"ok\":true}");

  const std::string closed = resp.Serialize(/*keep_alive=*/false);
  EXPECT_NE(closed.find("connection: close\r\n"), std::string::npos);
}

TEST(HttpResponseTest, ErrorResponseCarriesJsonBody) {
  const HttpResponse resp = ErrorResponse(404, "unknown video");
  EXPECT_EQ(resp.status, 404);
  EXPECT_EQ(resp.body, "{\"error\":\"unknown video\"}");
}

TEST(ResponseParserTest, ParsesAcrossSplitsAndReportsClose) {
  const std::string wire =
      "HTTP/1.1 503 Service Unavailable\r\n"
      "retry-after: 1\r\n"
      "content-length: 5\r\n"
      "connection: close\r\n"
      "\r\n"
      "busy!";
  for (size_t split = 0; split <= wire.size(); ++split) {
    ResponseParser parser;
    parser.Append(wire.substr(0, split));
    auto state = parser.Parse();
    if (split < wire.size()) {
      ASSERT_EQ(state, ResponseParser::State::kNeedMore) << split;
      parser.Append(wire.substr(split));
      state = parser.Parse();
    }
    ASSERT_EQ(state, ResponseParser::State::kReady) << split;
    EXPECT_EQ(parser.response().status, 503);
    EXPECT_EQ(parser.response().body, "busy!");
    ASSERT_NE(parser.response().FindHeader("Retry-After"), nullptr);
    EXPECT_EQ(*parser.response().FindHeader("retry-after"), "1");
  }
}

TEST(ResponseParserTest, LengthlessBodyCompletesOnEof) {
  ResponseParser parser;
  parser.Append("HTTP/1.0 200 OK\r\n\r\npartial strea");
  EXPECT_EQ(parser.Parse(), ResponseParser::State::kNeedMore);
  parser.Append("m");
  EXPECT_EQ(parser.Parse(), ResponseParser::State::kNeedMore);
  EXPECT_EQ(parser.OnEof(), ResponseParser::State::kReady);
  EXPECT_EQ(parser.response().body, "partial stream");
}

TEST(ResponseParserTest, EofMidSizedBodyIsError) {
  ResponseParser parser;
  parser.Append("HTTP/1.1 200 OK\r\ncontent-length: 10\r\n\r\nhalf");
  EXPECT_EQ(parser.Parse(), ResponseParser::State::kNeedMore);
  EXPECT_EQ(parser.OnEof(), ResponseParser::State::kError);
}

// ---------------------------------------------------------------------------
// Chunked multi-message ingest frames: the batch wire format is a
// top-level JSON array, so these exercise the parser and the /ingest
// route with `[`-sniffed bodies.

/// A realistic two-channel batch frame body (nested brackets, escaped
/// quotes) — content the parser must treat as opaque bytes.
constexpr std::string_view kBatchBody =
    "[{\"video_id\":\"chan-a\",\"messages\":["
    "{\"timestamp\":1.5,\"user\":\"u1\",\"text\":\"gg wp\"},"
    "{\"timestamp\":2.0,\"user\":\"u2\",\"text\":\"[clip] \\\"nice\\\"\"}]},"
    "{\"video_id\":\"chan-b\",\"messages\":["
    "{\"timestamp\":3.25,\"user\":\"u3\",\"text\":\"pog\"}]}]";

std::string IngestWire(std::string_view body) {
  std::string wire =
      "POST /ingest HTTP/1.1\r\n"
      "Content-Type: application/json\r\n"
      "Content-Length: " +
      std::to_string(body.size()) + "\r\n\r\n";
  wire.append(body);
  return wire;
}

TEST(RequestParserTest, SplitAtEveryByteBatchIngestFrame) {
  const std::string wire = IngestWire(kBatchBody);
  const MustParse reference(wire);
  for (size_t split = 0; split <= wire.size(); ++split) {
    RequestParser parser;
    parser.Append(std::string_view(wire).substr(0, split));
    const auto first = parser.Parse();
    if (split < wire.size()) {
      ASSERT_EQ(first, RequestParser::State::kNeedMore) << "split " << split;
      parser.Append(std::string_view(wire).substr(split));
      ASSERT_EQ(parser.Parse(), RequestParser::State::kReady)
          << "split " << split;
    } else {
      ASSERT_EQ(first, RequestParser::State::kReady) << "split " << split;
    }
    const HttpRequest& req = parser.request();
    EXPECT_EQ(req.method, reference->method) << "split " << split;
    EXPECT_EQ(req.target, reference->target) << "split " << split;
    EXPECT_EQ(req.headers, reference->headers) << "split " << split;
    EXPECT_EQ(req.body, reference->body) << "split " << split;
    EXPECT_EQ(parser.buffered_bytes(), 0u) << "split " << split;
  }
}

TEST(RequestParserTest, PipelinedSingleThenBatchIngestFrames) {
  const std::string single_body =
      "{\"video_id\":\"chan-a\",\"messages\":["
      "{\"timestamp\":1.0,\"user\":\"u\",\"text\":\"hi\"}]}";
  const std::string wire = IngestWire(single_body) + IngestWire(kBatchBody);
  RequestParser parser;
  parser.Append(wire);
  ASSERT_EQ(parser.Parse(), RequestParser::State::kReady);
  EXPECT_EQ(parser.request().path, "/ingest");
  EXPECT_EQ(parser.request().body, single_body);
  EXPECT_GT(parser.buffered_bytes(), 0u);  // batch frame still queued
  ASSERT_EQ(parser.Parse(), RequestParser::State::kReady);
  EXPECT_EQ(parser.request().path, "/ingest");
  EXPECT_EQ(parser.request().body, kBatchBody);
  EXPECT_EQ(parser.buffered_bytes(), 0u);
  EXPECT_EQ(parser.Parse(), RequestParser::State::kNeedMore);
}

// ---------------------------------------------------------------------------
// Route-level batch/throttle behaviour over a real server.

std::string FreshDir(const std::string& name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / name).string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

serving::IngestChatRequest MakeIngestBatch(const std::string& video_id,
                                           size_t count, double start_ts) {
  serving::IngestChatRequest req;
  req.video_id = video_id;
  for (size_t i = 0; i < count; ++i) {
    core::Message m;
    m.timestamp = start_ts + static_cast<double>(i);
    m.user = "user-" + std::to_string(i);
    m.text = "message " + std::to_string(i);
    req.messages.push_back(std::move(m));
  }
  return req;
}

TEST(IngestRouteTest, OversizedBatchAnswers413) {
  const std::string dir = FreshDir("lightor_http_batch_caps");
  auto stack = testutil::MakeServingStack(dir + "/db");
  RouteOptions ropts;
  ropts.max_batch_channels = 2;
  ropts.max_batch_messages = 4;
  auto server =
      HttpServer::Create(NetOptions{}, BuildRoutes(stack.server.get(), ropts));
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  HttpClient client("127.0.0.1", server.value()->port());

  // Three channels exceed the channel cap.
  auto wide = client.Post(
      "/ingest", EncodeIngestBatchRequest({MakeIngestBatch("cap-a", 1, 1.0),
                                           MakeIngestBatch("cap-b", 1, 1.0),
                                           MakeIngestBatch("cap-c", 1, 1.0)}));
  ASSERT_TRUE(wide.ok()) << wide.status().ToString();
  EXPECT_EQ(wide.value().status, 413);

  // Five messages in one frame exceed the message cap.
  auto deep =
      client.Post("/ingest",
                  EncodeIngestBatchRequest({MakeIngestBatch("cap-a", 5, 1.0)}));
  ASSERT_TRUE(deep.ok()) << deep.status().ToString();
  EXPECT_EQ(deep.value().status, 413);

  // A refused frame leaves no trace: the in-cap retry lands whole.
  auto good = client.Post(
      "/ingest", EncodeIngestBatchRequest({MakeIngestBatch("cap-a", 2, 1.0),
                                           MakeIngestBatch("cap-b", 2, 1.0)}));
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  ASSERT_EQ(good.value().status, 200);
  auto entries = DecodeIngestBatchResponse(good.value().body);
  ASSERT_TRUE(entries.ok()) << entries.status().ToString();
  ASSERT_EQ(entries.value().size(), 2u);
  for (const auto& entry : entries.value()) {
    EXPECT_EQ(entry.status, 200) << entry.video_id;
    EXPECT_EQ(entry.response.accepted, 2u) << entry.video_id;
  }
  server.value()->Shutdown();
}

TEST(IngestRouteTest, ThrottledSingleFrameCarries429AndRetryAfter) {
  const std::string dir = FreshDir("lightor_http_throttle");
  auto stack =
      testutil::MakeServingStack(dir + "/db", [](serving::ServerOptions& o) {
        o.ingest_rate_messages_per_sec = 10.0;
        o.ingest_burst_messages = 20.0;
        o.ingest_clock = [] { return 0.0; };  // bucket never refills
      });
  auto server =
      HttpServer::Create(NetOptions{}, BuildRoutes(stack.server.get()));
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  HttpClient client("127.0.0.1", server.value()->port());

  // The burst admits the first 20 messages...
  auto first = client.Post(
      "/ingest", EncodeJson(MakeIngestBatch("hot", 20, 1.0)));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_EQ(first.value().status, 200) << first.value().body;
  auto accepted = DecodeIngestChatResponse(first.value().body);
  ASSERT_TRUE(accepted.ok()) << accepted.status().ToString();
  EXPECT_EQ(accepted.value().accepted, 20u);
  EXPECT_FALSE(accepted.value().throttled);

  // ...then the bucket is dry: 5 more need 0.5s of refill, rounded up
  // to a whole-second Retry-After (never under-estimated).
  auto throttled = client.Post(
      "/ingest", EncodeJson(MakeIngestBatch("hot", 5, 100.0)));
  ASSERT_TRUE(throttled.ok()) << throttled.status().ToString();
  ASSERT_EQ(throttled.value().status, 429) << throttled.value().body;
  const std::string* retry_after =
      throttled.value().FindHeader("retry-after");
  ASSERT_NE(retry_after, nullptr);
  EXPECT_EQ(*retry_after, "1");
  EXPECT_DOUBLE_EQ(HttpClient::RetryAfterSeconds(throttled.value(), 9.0), 1.0);
  auto body = DecodeIngestChatResponse(throttled.value().body);
  ASSERT_TRUE(body.ok()) << body.status().ToString();
  EXPECT_TRUE(body.value().throttled);
  EXPECT_EQ(body.value().accepted, 0u);
  EXPECT_EQ(body.value().rejected, 0u);
  EXPECT_NEAR(body.value().retry_after_seconds, 0.5, 1e-9);

  // Budgets are per-channel: a cold neighbour is untouched.
  auto cold = client.Post(
      "/ingest", EncodeJson(MakeIngestBatch("cold", 5, 1.0)));
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_EQ(cold.value().status, 200) << cold.value().body;

  // The client-side retry taxonomy the router and loadgen rely on.
  EXPECT_TRUE(HttpClient::IsRetryableAfterDelay(429));
  EXPECT_TRUE(HttpClient::IsRetryableAfterDelay(503));
  EXPECT_FALSE(HttpClient::IsRetryableAfterDelay(200));
  EXPECT_FALSE(HttpClient::IsRetryableAfterDelay(400));
  EXPECT_FALSE(HttpClient::IsRetryableAfterDelay(409));
  server.value()->Shutdown();
}

TEST(IngestRouteTest, BatchFrameIsolatesThrottledEntries) {
  const std::string dir = FreshDir("lightor_http_batch_throttle");
  auto stack =
      testutil::MakeServingStack(dir + "/db", [](serving::ServerOptions& o) {
        o.ingest_rate_messages_per_sec = 10.0;
        o.ingest_burst_messages = 20.0;
        o.ingest_clock = [] { return 0.0; };
      });
  auto server =
      HttpServer::Create(NetOptions{}, BuildRoutes(stack.server.get()));
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  HttpClient client("127.0.0.1", server.value()->port());

  // Drain the hot channel's burst, then send a mixed frame: the hot
  // entry throttles, the cold entry lands, and the frame stays 200.
  auto drain = client.Post(
      "/ingest", EncodeJson(MakeIngestBatch("mixed-hot", 20, 1.0)));
  ASSERT_TRUE(drain.ok()) << drain.status().ToString();
  ASSERT_EQ(drain.value().status, 200);

  auto mixed = client.Post(
      "/ingest",
      EncodeIngestBatchRequest({MakeIngestBatch("mixed-hot", 5, 100.0),
                                MakeIngestBatch("mixed-cold", 5, 1.0)}));
  ASSERT_TRUE(mixed.ok()) << mixed.status().ToString();
  ASSERT_EQ(mixed.value().status, 200) << mixed.value().body;
  auto entries = DecodeIngestBatchResponse(mixed.value().body);
  ASSERT_TRUE(entries.ok()) << entries.status().ToString();
  ASSERT_EQ(entries.value().size(), 2u);
  EXPECT_EQ(entries.value()[0].video_id, "mixed-hot");
  EXPECT_EQ(entries.value()[0].status, 429);
  EXPECT_TRUE(entries.value()[0].response.throttled);
  EXPECT_NEAR(entries.value()[0].response.retry_after_seconds, 0.5, 1e-9);
  EXPECT_EQ(entries.value()[1].video_id, "mixed-cold");
  EXPECT_EQ(entries.value()[1].status, 200);
  EXPECT_EQ(entries.value()[1].response.accepted, 5u);

  // The frame-level header advertises the worst throttled entry.
  const std::string* retry_after = mixed.value().FindHeader("retry-after");
  ASSERT_NE(retry_after, nullptr);
  EXPECT_EQ(*retry_after, "1");
  server.value()->Shutdown();
}

TEST(IngestRouteTest, DebugChannelsReportsAccounting) {
  const std::string dir = FreshDir("lightor_http_debug_channels");
  auto stack = testutil::MakeServingStack(dir + "/db");
  auto server =
      HttpServer::Create(NetOptions{}, BuildRoutes(stack.server.get()));
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  HttpClient client("127.0.0.1", server.value()->port());

  auto ingest = client.Post(
      "/ingest", EncodeJson(MakeIngestBatch("chan-dbg", 3, 1.0)));
  ASSERT_TRUE(ingest.ok()) << ingest.status().ToString();
  ASSERT_EQ(ingest.value().status, 200);

  auto debug = client.Get("/debug/channels");
  ASSERT_TRUE(debug.ok()) << debug.status().ToString();
  ASSERT_EQ(debug.value().status, 200);
  auto doc = Json::Parse(debug.value().body);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const Json* channels = doc.value().Find("channels");
  ASSERT_NE(channels, nullptr);
  ASSERT_TRUE(channels->is_array());
  const Json* found = nullptr;
  for (const Json& channel : channels->AsArray()) {
    const Json* id = channel.Find("video_id");
    ASSERT_NE(id, nullptr);
    if (id->AsString() == "chan-dbg") found = &channel;
  }
  ASSERT_NE(found, nullptr) << debug.value().body;
  EXPECT_EQ(found->Find("admitted_messages")->AsNumber(), 3.0);
  EXPECT_EQ(found->Find("queued_messages")->AsNumber(), 0.0);
  EXPECT_EQ(found->Find("rejected_messages")->AsNumber(), 0.0);
  EXPECT_FALSE(found->Find("closed")->AsBool());
  server.value()->Shutdown();
}

}  // namespace
}  // namespace lightor::net
