#include <gtest/gtest.h>

#include <string>

#include "net/http.h"

namespace lightor::net {
namespace {

constexpr std::string_view kPostVisit =
    "POST /visit HTTP/1.1\r\n"
    "Host: localhost\r\n"
    "Content-Type: application/json\r\n"
    "Content-Length: 20\r\n"
    "\r\n"
    "{\"video_id\":\"vid-1\"}";

/// Owns the parser for the lifetime of the parsed request: the request's
/// string_view fields borrow from the parser's buffer (the zero-copy
/// contract), so handing the request out by value would dangle.
class MustParse {
 public:
  explicit MustParse(std::string_view wire) {
    parser_.Append(wire);
    EXPECT_EQ(parser_.Parse(), RequestParser::State::kReady);
  }
  const HttpRequest* operator->() const { return &parser_.request(); }
  const HttpRequest& operator*() const { return parser_.request(); }

 private:
  RequestParser parser_;
};

TEST(RequestParserTest, CompleteRequestInOneRead) {
  const MustParse req(kPostVisit);
  EXPECT_EQ(req->method, "POST");
  EXPECT_EQ(req->path, "/visit");
  EXPECT_EQ(req->version_minor, 1);
  EXPECT_EQ(req->body, "{\"video_id\":\"vid-1\"}");
  ASSERT_NE(req->FindHeader("content-type"), nullptr);
  EXPECT_EQ(*req->FindHeader("Content-Type"), "application/json");
}

// Satellite requirement: the parser must produce the identical request
// no matter where the kernel tears the read — split at EVERY byte
// boundary and compare against the one-shot parse.
TEST(RequestParserTest, SplitAtEveryByteBoundary) {
  const MustParse reference(kPostVisit);
  for (size_t split = 0; split <= kPostVisit.size(); ++split) {
    RequestParser parser;
    parser.Append(kPostVisit.substr(0, split));
    const auto first = parser.Parse();
    if (split < kPostVisit.size()) {
      ASSERT_EQ(first, RequestParser::State::kNeedMore) << "split " << split;
      parser.Append(kPostVisit.substr(split));
      ASSERT_EQ(parser.Parse(), RequestParser::State::kReady)
          << "split " << split;
    } else {
      ASSERT_EQ(first, RequestParser::State::kReady) << "split " << split;
    }
    const HttpRequest& req = parser.request();
    EXPECT_EQ(req.method, reference->method) << "split " << split;
    EXPECT_EQ(req.target, reference->target) << "split " << split;
    EXPECT_EQ(req.headers, reference->headers) << "split " << split;
    EXPECT_EQ(req.body, reference->body) << "split " << split;
    EXPECT_EQ(parser.buffered_bytes(), 0u) << "split " << split;
  }
}

TEST(RequestParserTest, OneByteAtATime) {
  RequestParser parser;
  for (size_t i = 0; i < kPostVisit.size(); ++i) {
    parser.Append(kPostVisit.substr(i, 1));
    const auto state = parser.Parse();
    if (i + 1 < kPostVisit.size()) {
      ASSERT_EQ(state, RequestParser::State::kNeedMore) << "byte " << i;
    } else {
      ASSERT_EQ(state, RequestParser::State::kReady);
    }
  }
  EXPECT_EQ(parser.request().body, "{\"video_id\":\"vid-1\"}");
}

TEST(RequestParserTest, TwoPipelinedRequestsInOneRead) {
  RequestParser parser;
  parser.Append(
      "GET /healthz HTTP/1.1\r\n\r\n"
      "POST /refine HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}");
  ASSERT_EQ(parser.Parse(), RequestParser::State::kReady);
  EXPECT_EQ(parser.request().method, "GET");
  EXPECT_EQ(parser.request().path, "/healthz");
  EXPECT_GT(parser.buffered_bytes(), 0u);  // second request still queued
  ASSERT_EQ(parser.Parse(), RequestParser::State::kReady);
  EXPECT_EQ(parser.request().method, "POST");
  EXPECT_EQ(parser.request().path, "/refine");
  EXPECT_EQ(parser.request().body, "{}");
  EXPECT_EQ(parser.buffered_bytes(), 0u);
  EXPECT_EQ(parser.Parse(), RequestParser::State::kNeedMore);
}

TEST(RequestParserTest, MissingContentLengthMeansEmptyBody) {
  EXPECT_EQ(MustParse("GET /metrics HTTP/1.1\r\n\r\n")->body, "");
}

TEST(RequestParserTest, ConnectionClosedMidBodyStaysNeedMore) {
  RequestParser parser;
  parser.Append(
      "POST /visit HTTP/1.1\r\nContent-Length: 100\r\n\r\npartial body");
  // There is no more data coming; the parser simply never reaches kReady.
  EXPECT_EQ(parser.Parse(), RequestParser::State::kNeedMore);
  EXPECT_EQ(parser.Parse(), RequestParser::State::kNeedMore);
  EXPECT_GT(parser.buffered_bytes(), 0u);
}

TEST(RequestParserTest, HeaderBlockOverCapIs431) {
  RequestParser parser(RequestParser::Limits{.max_header_bytes = 64,
                                             .max_body_bytes = 1024});
  parser.Append("GET / HTTP/1.1\r\nX-Big: " + std::string(100, 'a') +
                "\r\n\r\n");
  EXPECT_EQ(parser.Parse(), RequestParser::State::kError);
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(RequestParserTest, HeaderOverCapDetectedBeforeTerminator) {
  // The cap must fire even when the terminating blank line never arrives,
  // or a slow-loris peer could grow the buffer forever.
  RequestParser parser(RequestParser::Limits{.max_header_bytes = 64,
                                             .max_body_bytes = 1024});
  parser.Append("GET / HTTP/1.1\r\nX-Drip: " + std::string(200, 'b'));
  EXPECT_EQ(parser.Parse(), RequestParser::State::kError);
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(RequestParserTest, ContentLengthOverCapIs413) {
  RequestParser parser(RequestParser::Limits{.max_header_bytes = 8192,
                                             .max_body_bytes = 16});
  parser.Append("POST /visit HTTP/1.1\r\nContent-Length: 17\r\n\r\n");
  EXPECT_EQ(parser.Parse(), RequestParser::State::kError);
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(RequestParserTest, MalformedContentLengthIs400) {
  for (const char* bad : {"abc", "-1", "1x", "", " 5 5"}) {
    RequestParser parser;
    parser.Append(std::string("POST / HTTP/1.1\r\nContent-Length: ") + bad +
                  "\r\n\r\n");
    EXPECT_EQ(parser.Parse(), RequestParser::State::kError) << bad;
    EXPECT_EQ(parser.error_status(), 400) << bad;
  }
}

TEST(RequestParserTest, OverlongContentLengthIs413) {
  RequestParser parser;
  parser.Append(
      "POST / HTTP/1.1\r\nContent-Length: 99999999999999999999999\r\n\r\n");
  EXPECT_EQ(parser.Parse(), RequestParser::State::kError);
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(RequestParserTest, ConflictingContentLengthsIs400) {
  RequestParser parser;
  parser.Append(
      "POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\n");
  EXPECT_EQ(parser.Parse(), RequestParser::State::kError);
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(RequestParserTest, TransferEncodingIs501) {
  RequestParser parser;
  parser.Append("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
  EXPECT_EQ(parser.Parse(), RequestParser::State::kError);
  EXPECT_EQ(parser.error_status(), 501);
}

TEST(RequestParserTest, MalformedRequestLineIs400) {
  for (const char* bad :
       {"GET\r\n\r\n", "GET /\r\n\r\n", "GET / HTTP/1.1 extra\r\n\r\n",
        "get / HTTP/1.1\r\n\r\n", "/ GET HTTP/1.1\r\n\r\n"}) {
    RequestParser parser;
    parser.Append(bad);
    EXPECT_EQ(parser.Parse(), RequestParser::State::kError) << bad;
    EXPECT_EQ(parser.error_status(), 400) << bad;
  }
}

TEST(RequestParserTest, UnsupportedVersionIs505) {
  RequestParser parser;
  parser.Append("GET / HTTP/2.0\r\n\r\n");
  EXPECT_EQ(parser.Parse(), RequestParser::State::kError);
  EXPECT_EQ(parser.error_status(), 505);
}

TEST(RequestParserTest, ObsoleteLineFoldingIs400) {
  RequestParser parser;
  parser.Append("GET / HTTP/1.1\r\nX-A: one\r\n two\r\n\r\n");
  EXPECT_EQ(parser.Parse(), RequestParser::State::kError);
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(RequestParserTest, SpaceBeforeColonIs400) {
  RequestParser parser;
  parser.Append("GET / HTTP/1.1\r\nX-A : v\r\n\r\n");
  EXPECT_EQ(parser.Parse(), RequestParser::State::kError);
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(RequestParserTest, ErrorStateIsTerminal) {
  RequestParser parser;
  parser.Append("BOGUS\r\n\r\n");
  ASSERT_EQ(parser.Parse(), RequestParser::State::kError);
  // A valid request appended afterwards must not resurrect the parser.
  parser.Append("GET / HTTP/1.1\r\n\r\n");
  EXPECT_EQ(parser.Parse(), RequestParser::State::kError);
}

TEST(RequestParserTest, QueryParsing) {
  const MustParse req("GET /metrics?format=json&video_id=v-1 HTTP/1.1\r\n\r\n");
  EXPECT_EQ(req->path, "/metrics");
  EXPECT_EQ(req->query, "format=json&video_id=v-1");
  EXPECT_EQ(req->QueryParam("format"), "json");
  EXPECT_EQ(req->QueryParam("video_id"), "v-1");
  EXPECT_EQ(req->QueryParam("missing"), "");
}

TEST(RequestParserTest, KeepAliveSemantics) {
  EXPECT_TRUE(MustParse("GET / HTTP/1.1\r\n\r\n")->keep_alive());
  EXPECT_FALSE(
      MustParse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n")->keep_alive());
  EXPECT_FALSE(
      MustParse("GET / HTTP/1.1\r\nConnection: CLOSE\r\n\r\n")->keep_alive());
  EXPECT_FALSE(MustParse("GET / HTTP/1.0\r\n\r\n")->keep_alive());
  EXPECT_TRUE(
      MustParse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
          ->keep_alive());
}

TEST(HttpResponseTest, SerializeAppendsFramingHeaders) {
  HttpResponse resp = JsonResponse(200, "{\"ok\":true}");
  const std::string wire = resp.Serialize(/*keep_alive=*/true);
  EXPECT_NE(wire.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(wire.find("content-length: 11\r\n"), std::string::npos);
  EXPECT_NE(wire.find("connection: keep-alive\r\n"), std::string::npos);
  EXPECT_EQ(wire.substr(wire.size() - 11), "{\"ok\":true}");

  const std::string closed = resp.Serialize(/*keep_alive=*/false);
  EXPECT_NE(closed.find("connection: close\r\n"), std::string::npos);
}

TEST(HttpResponseTest, ErrorResponseCarriesJsonBody) {
  const HttpResponse resp = ErrorResponse(404, "unknown video");
  EXPECT_EQ(resp.status, 404);
  EXPECT_EQ(resp.body, "{\"error\":\"unknown video\"}");
}

TEST(ResponseParserTest, ParsesAcrossSplitsAndReportsClose) {
  const std::string wire =
      "HTTP/1.1 503 Service Unavailable\r\n"
      "retry-after: 1\r\n"
      "content-length: 5\r\n"
      "connection: close\r\n"
      "\r\n"
      "busy!";
  for (size_t split = 0; split <= wire.size(); ++split) {
    ResponseParser parser;
    parser.Append(wire.substr(0, split));
    auto state = parser.Parse();
    if (split < wire.size()) {
      ASSERT_EQ(state, ResponseParser::State::kNeedMore) << split;
      parser.Append(wire.substr(split));
      state = parser.Parse();
    }
    ASSERT_EQ(state, ResponseParser::State::kReady) << split;
    EXPECT_EQ(parser.response().status, 503);
    EXPECT_EQ(parser.response().body, "busy!");
    ASSERT_NE(parser.response().FindHeader("Retry-After"), nullptr);
    EXPECT_EQ(*parser.response().FindHeader("retry-after"), "1");
  }
}

TEST(ResponseParserTest, LengthlessBodyCompletesOnEof) {
  ResponseParser parser;
  parser.Append("HTTP/1.0 200 OK\r\n\r\npartial strea");
  EXPECT_EQ(parser.Parse(), ResponseParser::State::kNeedMore);
  parser.Append("m");
  EXPECT_EQ(parser.Parse(), ResponseParser::State::kNeedMore);
  EXPECT_EQ(parser.OnEof(), ResponseParser::State::kReady);
  EXPECT_EQ(parser.response().body, "partial stream");
}

TEST(ResponseParserTest, EofMidSizedBodyIsError) {
  ResponseParser parser;
  parser.Append("HTTP/1.1 200 OK\r\ncontent-length: 10\r\n\r\nhalf");
  EXPECT_EQ(parser.Parse(), ResponseParser::State::kNeedMore);
  EXPECT_EQ(parser.OnEof(), ResponseParser::State::kError);
}

}  // namespace
}  // namespace lightor::net
