#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "storage/database.h"

namespace lightor::storage {
namespace {

class DatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("lightor_db_test_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Opens via the redesigned entry point and unwraps the database,
  /// asserting success (most tests here don't care about the stats).
  std::unique_ptr<Database> MustOpen() {
    auto opened = DB::Open(OpenOptions(dir_));
    EXPECT_TRUE(opened.ok()) << opened.status().ToString();
    return std::move(opened.value().db);
  }

  std::string dir_;
};

ChatRecord Chat(double t) {
  ChatRecord rec;
  rec.video_id = "v";
  rec.timestamp = t;
  rec.user = "u";
  rec.text = "msg";
  return rec;
}

TEST_F(DatabaseTest, OpenCreatesDirectory) {
  auto opened = DB::Open(OpenOptions(dir_));
  ASSERT_TRUE(opened.ok());
  EXPECT_TRUE(std::filesystem::exists(dir_));
  EXPECT_EQ(opened.value().db->directory(), dir_);
  // A fresh directory recovers nothing.
  EXPECT_EQ(opened.value().stats.checkpoint_gen, 0u);
  EXPECT_EQ(opened.value().stats.records_replayed, 0u);
  EXPECT_EQ(opened.value().stats.torn_bytes_truncated, 0u);
}

TEST_F(DatabaseTest, PutsVisibleInMemory) {
  auto db = MustOpen();
  ASSERT_TRUE(db->PutChat(Chat(1.0)).ok());
  ASSERT_TRUE(db->PutChat(Chat(2.0)).ok());
  EXPECT_EQ(db->chat().GetByVideo("v").size(), 2u);
  EXPECT_EQ(db->lsn(), 2u);
}

TEST_F(DatabaseTest, StateSurvivesReopen) {
  {
    auto db = MustOpen();
    ASSERT_TRUE(db->PutChat(Chat(1.0)).ok());

    InteractionRecord ir;
    ir.video_id = "v";
    ir.user = "u";
    ir.session_id = 1;
    ir.event = StoredInteraction::kPlay;
    ir.position = 100.0;
    ASSERT_TRUE(db->PutInteraction(ir).ok());

    HighlightRecord hr;
    hr.video_id = "v";
    hr.dot_index = 0;
    hr.start = 100.0;
    hr.end = 120.0;
    ASSERT_TRUE(db->PutHighlight(hr).ok());
  }
  auto opened = DB::Open(OpenOptions(dir_));
  ASSERT_TRUE(opened.ok());
  auto& db = opened.value().db;
  EXPECT_EQ(opened.value().stats.records_replayed, 3u);
  EXPECT_EQ(db->lsn(), 3u);
  EXPECT_EQ(db->chat().GetByVideo("v").size(), 1u);
  EXPECT_EQ(db->interactions().SessionsForVideo("v").size(), 1u);
  const auto dots = db->highlights().GetLatest("v");
  ASSERT_EQ(dots.size(), 1u);
  EXPECT_DOUBLE_EQ(dots[0].end, 120.0);
}

TEST_F(DatabaseTest, RecoversFromTornChatLog) {
  {
    auto db = MustOpen();
    ASSERT_TRUE(db->PutChat(Chat(1.0)).ok());
  }
  {
    std::ofstream out(dir_ + "/chat.log", std::ios::binary | std::ios::app);
    out.write("\x99\x00\x00\x00torn", 8);  // bogus frame
  }
  auto opened = DB::Open(OpenOptions(dir_));
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened.value().stats.torn_bytes_truncated, 8u);
  auto db = std::move(opened.value().db);
  EXPECT_EQ(db->chat().GetByVideo("v").size(), 1u);
  // The database is writable again after recovery.
  ASSERT_TRUE(db->PutChat(Chat(2.0)).ok());
  auto reopened = MustOpen();
  EXPECT_EQ(reopened->chat().GetByVideo("v").size(), 2u);
}

TEST_F(DatabaseTest, HighlightHistoryAccumulatesAcrossReopens) {
  HighlightRecord hr;
  hr.video_id = "v";
  hr.dot_index = 0;
  {
    auto db = MustOpen();
    hr.iteration = 0;
    ASSERT_TRUE(db->PutHighlight(hr).ok());
    hr.iteration = 1;
    ASSERT_TRUE(db->PutHighlight(hr).ok());
  }
  auto db = MustOpen();
  EXPECT_EQ(db->highlights().GetHistory("v", 0).size(), 2u);
  EXPECT_EQ(db->highlights().GetLatest("v")[0].iteration, 1);
}

}  // namespace
}  // namespace lightor::storage
