#include <gtest/gtest.h>

#include <filesystem>

#include "storage/database.h"

namespace lightor::storage {
namespace {

class CompactionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("lightor_compact_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  static HighlightRecord Dot(const std::string& video, int32_t index,
                             int32_t iter) {
    HighlightRecord rec;
    rec.video_id = video;
    rec.dot_index = index;
    rec.iteration = iter;
    rec.start = 100.0 + iter;
    rec.end = 130.0 + iter;
    rec.dot_position = rec.start;
    return rec;
  }

  /// Opens via the redesigned entry point and unwraps the database.
  std::unique_ptr<Database> MustOpen() {
    auto opened = DB::Open(OpenOptions(dir_));
    EXPECT_TRUE(opened.ok()) << opened.status().ToString();
    return std::move(opened.value().db);
  }

  std::string dir_;
};

TEST_F(CompactionTest, KeepsOnlyLatestVersions) {
  auto db = MustOpen();
  for (int iter = 0; iter < 5; ++iter) {
    ASSERT_TRUE(db->PutHighlight(Dot("v", 0, iter)).ok());
    ASSERT_TRUE(db->PutHighlight(Dot("v", 1, iter)).ok());
  }
  EXPECT_EQ(db->highlights().TotalRecords(), 10u);
  const auto before_bytes = db->GetStats().highlight_log_bytes;

  auto kept = db->CompactHighlights();
  ASSERT_TRUE(kept.ok());
  EXPECT_EQ(kept.value(), 2u);
  EXPECT_EQ(db->highlights().TotalRecords(), 2u);
  EXPECT_LT(db->GetStats().highlight_log_bytes, before_bytes);

  // Latest state preserved.
  const auto latest = db->highlights().GetLatest("v");
  ASSERT_EQ(latest.size(), 2u);
  EXPECT_EQ(latest[0].iteration, 4);
  EXPECT_EQ(latest[1].iteration, 4);
}

TEST_F(CompactionTest, StateSurvivesReopenAfterCompaction) {
  {
    auto db = MustOpen();
    for (int iter = 0; iter < 3; ++iter) {
      ASSERT_TRUE(db->PutHighlight(Dot("v", 0, iter)).ok());
    }
    ASSERT_TRUE(db->CompactHighlights().ok());
    // Writable after compaction.
    ASSERT_TRUE(db->PutHighlight(Dot("v", 0, 3)).ok());
  }
  auto db = MustOpen();
  const auto latest = db->highlights().GetLatest("v");
  ASSERT_EQ(latest.size(), 1u);
  EXPECT_EQ(latest[0].iteration, 3);
  // History: compacted record + post-compaction append.
  EXPECT_EQ(db->highlights().GetHistory("v", 0).size(), 2u);
}

TEST_F(CompactionTest, EmptyDatabaseCompactsToZero) {
  auto db = MustOpen();
  auto kept = db->CompactHighlights();
  ASSERT_TRUE(kept.ok());
  EXPECT_EQ(kept.value(), 0u);
}

TEST_F(CompactionTest, StatsReflectStores) {
  auto db = MustOpen();
  ChatRecord chat;
  chat.video_id = "v";
  chat.timestamp = 1.0;
  chat.user = "u";
  chat.text = "hi";
  ASSERT_TRUE(db->PutChat(chat).ok());
  ASSERT_TRUE(db->PutHighlight(Dot("v", 0, 0)).ok());
  const auto stats = db->GetStats();
  EXPECT_EQ(stats.chat_records, 1u);
  EXPECT_EQ(stats.highlight_records, 1u);
  EXPECT_EQ(stats.highlight_dots, 1u);
  EXPECT_GT(stats.chat_log_bytes, 0u);
  EXPECT_GT(stats.highlight_log_bytes, 0u);
  EXPECT_EQ(stats.interaction_records, 0u);
}

}  // namespace
}  // namespace lightor::storage
