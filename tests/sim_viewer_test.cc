#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "common/stats.h"
#include "sim/viewer_simulator.h"

namespace lightor::sim {
namespace {

GroundTruthVideo OneHighlightVideo(double start = 1000.0, double len = 25.0) {
  GroundTruthVideo video;
  video.meta.id = "v";
  video.meta.length = 3600.0;
  video.highlights.push_back({common::Interval(start, start + len), 0.8});
  return video;
}

TEST(EventsPlaysRoundTripTest, PlaysSurviveEventConversion) {
  std::vector<PlayRecord> plays = {
      {"u", 100.0, 130.0}, {"u", 90.0, 120.0}, {"u", 200.0, 220.0}};
  const auto events = EventsFromPlays(plays);
  const auto rebuilt = PlaysFromEvents("u", events);
  ASSERT_EQ(rebuilt.size(), plays.size());
  for (size_t i = 0; i < plays.size(); ++i) {
    EXPECT_DOUBLE_EQ(rebuilt[i].span.start, plays[i].span.start);
    EXPECT_DOUBLE_EQ(rebuilt[i].span.end, plays[i].span.end);
    EXPECT_EQ(rebuilt[i].user, "u");
  }
}

TEST(EventsPlaysRoundTripTest, EmptySession) {
  EXPECT_TRUE(EventsFromPlays({}).empty());
  EXPECT_TRUE(PlaysFromEvents("u", {}).empty());
}

TEST(EventsPlaysRoundTripTest, SeekWhilePlayingSplitsPlay) {
  std::vector<InteractionEvent> events;
  InteractionEvent play;
  play.type = InteractionType::kPlay;
  play.position = 10.0;
  events.push_back(play);
  InteractionEvent seek;
  seek.type = InteractionType::kSeekForward;
  seek.wall_time = 5.0;
  seek.position = 15.0;
  seek.target = 50.0;
  events.push_back(seek);
  InteractionEvent pause;
  pause.type = InteractionType::kPause;
  pause.wall_time = 10.0;
  pause.position = 55.0;
  events.push_back(pause);
  const auto plays = PlaysFromEvents("u", events);
  ASSERT_EQ(plays.size(), 2u);
  EXPECT_DOUBLE_EQ(plays[0].span.start, 10.0);
  EXPECT_DOUBLE_EQ(plays[0].span.end, 15.0);
  EXPECT_DOUBLE_EQ(plays[1].span.start, 50.0);
  EXPECT_DOUBLE_EQ(plays[1].span.end, 55.0);
}

TEST(ViewerSimulatorTest, SessionsProducePlays) {
  const auto video = OneHighlightVideo();
  ViewerSimulator sim;
  common::Rng rng(1);
  int with_plays = 0;
  for (int i = 0; i < 50; ++i) {
    const auto session = sim.SimulateSession(video, 1000.0, rng, "u");
    if (!session.plays.empty()) ++with_plays;
    for (const auto& play : session.plays) {
      EXPECT_GE(play.span.start, 0.0);
      EXPECT_LE(play.span.end, video.meta.length);
      EXPECT_TRUE(play.span.Valid());
    }
  }
  EXPECT_GT(with_plays, 40);
}

// Fig. 3(b): for a Type II dot (before the highlight end), engaged
// viewers' main-play start offsets concentrate a few seconds after the
// highlight start, median in roughly [3, 12].
TEST(ViewerSimulatorTest, TypeIIStartOffsetsAreNormalish) {
  const auto video = OneHighlightVideo(1000.0, 30.0);
  ViewerSimulator sim;
  common::Rng rng(2);
  const double dot = 998.0;  // just before the highlight start
  std::vector<double> offsets;
  for (const auto& play : sim.CollectPlays(video, dot, 400, rng)) {
    const double len = play.span.Length();
    if (len < 6.5 || len > 120.0) continue;  // the extractor's filter
    offsets.push_back(play.span.start - 1000.0);
  }
  ASSERT_GT(offsets.size(), 100u);
  const double median = common::Median(offsets);
  EXPECT_GT(median, 2.0);
  EXPECT_LT(median, 12.0);
  // Concentration: the IQR is tight relative to Type I's uniform spread.
  const double iqr = common::Quantile(offsets, 0.75) -
                     common::Quantile(offsets, 0.25);
  EXPECT_LT(iqr, 15.0);
}

// Fig. 3(a): for a Type I dot (after the highlight end), rewinding
// viewers land roughly uniformly spread around the highlight start.
TEST(ViewerSimulatorTest, TypeIStartOffsetsAreSpread) {
  const auto video = OneHighlightVideo(1000.0, 20.0);
  ViewerSimulator sim;
  common::Rng rng(3);
  const double dot = 1035.0;  // after the highlight end (1020)
  std::vector<double> offsets;
  for (const auto& play : sim.CollectPlays(video, dot, 600, rng)) {
    const double len = play.span.Length();
    if (len < 6.5 || len > 120.0) continue;
    offsets.push_back(play.span.start - 1000.0);
  }
  ASSERT_GT(offsets.size(), 50u);
  const double spread = common::Quantile(offsets, 0.9) -
                        common::Quantile(offsets, 0.1);
  EXPECT_GT(spread, 12.0);  // much wider than the Type II concentration
}

// Fig. 4's separation signal: the backward-play fraction of a Type I dot
// is clearly higher than a Type II dot's (even though a noisy crowd emits
// some of both everywhere).
TEST(ViewerSimulatorTest, TypeIHasHigherBackwardFractionThanTypeII) {
  const auto video = OneHighlightVideo(1000.0, 20.0);
  ViewerSimulator sim;
  common::Rng rng(4);
  auto backward_fraction = [&](double dot) {
    int backward = 0, total = 0;
    for (const auto& play : sim.CollectPlays(video, dot, 400, rng)) {
      const double len = play.span.Length();
      if (len < 6.5 || len > 120.0) continue;
      ++total;
      if (play.span.start < dot) ++backward;
    }
    return total > 0 ? static_cast<double>(backward) / total : 0.0;
  };
  const double type1 = backward_fraction(1040.0);  // after the end
  const double type2 = backward_fraction(997.0);   // before the start
  EXPECT_GT(type1, type2 + 0.2);
}

TEST(ViewerSimulatorTest, TypeIIProducesMostlyAfterDotPlays) {
  const auto video = OneHighlightVideo(1000.0, 30.0);
  ViewerSimulator sim;
  common::Rng rng(5);
  const double dot = 995.0;
  int before_or_across = 0, after = 0;
  for (const auto& play : sim.CollectPlays(video, dot, 300, rng)) {
    const double len = play.span.Length();
    if (len < 6.5 || len > 120.0) continue;
    if (play.span.start < dot) ++before_or_across;
    else ++after;
  }
  EXPECT_GT(after, before_or_across * 2);
}

TEST(ViewerSimulatorTest, DotWithNoNearbyHighlightYieldsOnlyProbes) {
  const auto video = OneHighlightVideo(1000.0, 20.0);
  ViewerSimulator sim;
  common::Rng rng(6);
  // 2000 s is far from the only highlight.
  const auto plays = sim.CollectPlays(video, 2000.0, 200, rng);
  int long_plays = 0;
  for (const auto& play : plays) {
    if (play.span.Length() > 15.0 && play.span.Length() < 120.0) {
      ++long_plays;
    }
  }
  // Nobody settles into a highlight watch; long plays only come from the
  // rare marathon archetype.
  EXPECT_LT(long_plays, 20);
}

TEST(ViewerSimulatorTest, SessionEventsAreChronological) {
  const auto video = OneHighlightVideo();
  ViewerSimulator sim;
  common::Rng rng(7);
  const auto session = sim.SimulateSession(video, 1000.0, rng, "alice");
  for (size_t i = 1; i < session.events.size(); ++i) {
    EXPECT_GE(session.events[i].wall_time, session.events[i - 1].wall_time);
  }
  EXPECT_EQ(session.user, "alice");
}

TEST(ViewerSimulatorTest, NoiseArchetypesAppear) {
  ViewerBehaviorOptions opts;
  opts.p_checker = 1.0;  // force the checker archetype
  const auto video = OneHighlightVideo();
  ViewerSimulator sim(opts);
  common::Rng rng(8);
  const auto session = sim.SimulateSession(video, 1000.0, rng, "u");
  ASSERT_GE(session.plays.size(), 2u);
  for (const auto& play : session.plays) {
    EXPECT_LT(play.span.Length(), 12.5);  // probes only
  }
}

}  // namespace
}  // namespace lightor::sim
