/// Differential property tests for the zero-copy hot path: the interned
/// token-id representation (Tokenizer::TokenizeToIds + Vocabulary +
/// StreamingSetSimilarity + WindowFeaturizer::ComputeFromIds) must be
/// bit-exact with the legacy string path it replaced, on randomized
/// inputs, across every similarity backend and adjustment mode. These are
/// the tests the hot-path benchmarks lean on: the bench only times the id
/// path because this file proves it computes the same doubles.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "core/features.h"
#include "core/initializer.h"
#include "core/window.h"
#include "sim/bridge.h"
#include "sim/corpus.h"
#include "text/streaming_similarity.h"
#include "text/token_ids.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace lightor {
namespace {

/// Random chat-like text designed to hit the tokenizer's edge paths:
/// mixed case (lowercase folding), punctuation wrapping (strip path),
/// sub-minimum-length leftovers, repeated words (interning hits), the
/// occasional >128-byte token (the heap fallback in TokenizeToIds), and
/// messages that tokenize to nothing.
std::string RandomMessage(common::Rng& rng) {
  static const char* const kWords[] = {
      "gg",     "WOW",   "Kreygasm", "nice",  "clip",  "IT",
      "lol",    "POG",   "that",     "was",   "SICK",  "?!",
      "...",    "x",     "CLUTCH",   "team",  "fight", "no",
      "way",    "omg!!", "(huh)",    "[ok]",  "a",     "B",
  };
  const int words = static_cast<int>(rng.UniformInt(0, 8));
  std::string out;
  for (int w = 0; w < words; ++w) {
    if (w > 0) out += rng.Bernoulli(0.1) ? "\t" : " ";
    if (rng.Bernoulli(0.02)) {
      // Long-token fallback: spam past the 128-byte stack buffer.
      out.append(static_cast<size_t>(rng.UniformInt(129, 200)),
                 rng.Bernoulli(0.5) ? 'A' : 'z');
    } else {
      out += kWords[rng.UniformInt(0, 23)];
    }
  }
  if (rng.Bernoulli(0.1)) out += "   ";
  return out;
}

class SeededHotpathTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SeededHotpathTest,
                         ::testing::Values(11, 22, 33, 44, 55));

// Property: TokenizeToIds emits exactly the token sequence Tokenize
// emits (resolved through the vocabulary arena), and its word count
// equals CountWords — for every tokenizer option combination.
TEST_P(SeededHotpathTest, TokenizeToIdsMatchesStringTokenizer) {
  common::Rng rng(GetParam());
  for (const bool lowercase : {true, false}) {
    for (const bool strip : {true, false}) {
      text::TokenizerOptions options;
      options.lowercase = lowercase;
      options.strip_punctuation = strip;
      const text::Tokenizer tokenizer(options);
      text::Vocabulary vocabulary;
      std::vector<text::TokenId> ids;
      for (int m = 0; m < 200; ++m) {
        const std::string message = RandomMessage(rng);
        const auto tokens = tokenizer.Tokenize(message);
        ids.clear();
        const size_t words =
            tokenizer.TokenizeToIds(message, vocabulary, ids);
        EXPECT_EQ(words, tokenizer.CountWords(message)) << message;
        ASSERT_EQ(ids.size(), tokens.size()) << message;
        for (size_t k = 0; k < ids.size(); ++k) {
          EXPECT_EQ(vocabulary.TokenOf(static_cast<int32_t>(ids[k])),
                    tokens[k])
              << message;
        }
      }
    }
  }
}

// Property: the vocabulary arena behaves like a first-seen-order map —
// same token, same id; Lookup agrees with AddToken; TokenOf round-trips.
TEST_P(SeededHotpathTest, VocabularyInterningIsStable) {
  common::Rng rng(GetParam() * 7919 + 3);
  text::Vocabulary vocabulary;
  std::vector<std::string> by_id;
  for (int i = 0; i < 5000; ++i) {
    std::string token;
    const int len = static_cast<int>(rng.UniformInt(1, 12));
    for (int k = 0; k < len; ++k) {
      token += static_cast<char>('a' + rng.UniformInt(0, 25));
    }
    const int32_t id = vocabulary.AddToken(token);
    ASSERT_GE(id, 0);
    if (static_cast<size_t>(id) == by_id.size()) {
      by_id.push_back(token);  // fresh id: first sighting
    }
    EXPECT_EQ(by_id[static_cast<size_t>(id)], token);
    EXPECT_EQ(vocabulary.Lookup(token), id);
    EXPECT_EQ(vocabulary.TokenOf(id), token);
  }
  EXPECT_EQ(vocabulary.size(), by_id.size());
}

// Property: StreamingSetSimilarity over globally interned ids returns the
// same doubles as the frozen string-path StringSetSimilarity, including
// clipped prefixes, and across Reset-reuse (the epoch remap must not leak
// state between windows).
TEST_P(SeededHotpathTest, StreamingSimilarityBitExactWithLegacy) {
  common::Rng rng(GetParam() * 104729 + 17);
  const text::Tokenizer tokenizer{text::TokenizerOptions{}};
  text::Vocabulary vocabulary;  // per-video: shared across windows
  text::StreamingSetSimilarity streaming;  // reused via Reset
  std::vector<text::TokenId> ids;
  for (int window = 0; window < 20; ++window) {
    streaming.Reset();
    text::StringSetSimilarity legacy;  // window-local, like the old code
    const int messages = static_cast<int>(rng.UniformInt(0, 40));
    for (int m = 0; m < messages; ++m) {
      const std::string message = RandomMessage(rng);
      ids.clear();
      tokenizer.TokenizeToIds(message, vocabulary, ids);
      streaming.AddMessage(text::TokenSpan(ids));
      legacy.AddMessage(tokenizer.Tokenize(message));
      // Bit-exact at every step, not just at the end.
      EXPECT_EQ(streaming.Value(), legacy.Value());
    }
    ASSERT_EQ(streaming.message_count(), legacy.message_count());
    for (int probe = 0; probe < 4; ++probe) {
      const size_t n =
          static_cast<size_t>(rng.UniformInt(0, messages + 2));
      EXPECT_EQ(streaming.PrefixValue(n), legacy.PrefixValue(n));
    }
  }
}

// Property: ComputeFromIds over a once-tokenized video equals the legacy
// per-window Compute bit for bit, and ComputeAll (which picks the id path
// for bag-of-words and the string path otherwise) equals the per-window
// reference for every similarity backend.
TEST_P(SeededHotpathTest, FeaturizerIdPathMatchesLegacyAllBackends) {
  common::Rng rng(GetParam() * 65537 + 29);
  std::vector<core::Message> messages;
  double t = 0.0;
  const int count = static_cast<int>(rng.UniformInt(30, 120));
  for (int m = 0; m < count; ++m) {
    t += rng.Uniform(0.0, 4.0);
    core::Message message;
    message.timestamp = t;
    message.text = RandomMessage(rng);
    messages.push_back(std::move(message));
  }
  const double video_length = t + 5.0;
  const auto windows =
      core::GenerateWindows(messages, video_length, core::WindowOptions{});
  ASSERT_FALSE(windows.empty());
  for (const auto backend :
       {core::SimilarityBackend::kBagOfWords, core::SimilarityBackend::kTfIdf,
        core::SimilarityBackend::kEmbedding,
        core::SimilarityBackend::kJaccard}) {
    const core::WindowFeaturizer featurizer({}, backend);
    const auto all = featurizer.ComputeAll(messages, windows);
    ASSERT_EQ(all.size(), windows.size());
    const auto tokenized = featurizer.TokenizeAll(messages);
    for (size_t w = 0; w < windows.size(); ++w) {
      const auto reference = featurizer.Compute(messages, windows[w]);
      EXPECT_EQ(all[w].message_number, reference.message_number);
      EXPECT_EQ(all[w].message_length, reference.message_length);
      EXPECT_EQ(all[w].message_similarity, reference.message_similarity);
      if (backend == core::SimilarityBackend::kBagOfWords) {
        const auto from_ids = featurizer.ComputeFromIds(tokenized, windows[w]);
        EXPECT_EQ(from_ids.message_number, reference.message_number);
        EXPECT_EQ(from_ids.message_length, reference.message_length);
        EXPECT_EQ(from_ids.message_similarity, reference.message_similarity);
      }
    }
  }
}

/// End-to-end: the streaming engine (which now rides the id path) must
/// produce the exact red dots of the batch detector for every similarity
/// backend crossed with every adjustment mode.
class HotpathPipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus_ = new sim::Corpus(sim::MakeCorpus(sim::GameType::kDota2, 3, 77));
  }
  static void TearDownTestSuite() {
    delete corpus_;
    corpus_ = nullptr;
  }
  static sim::Corpus* corpus_;
};

sim::Corpus* HotpathPipelineTest::corpus_ = nullptr;

TEST_F(HotpathPipelineTest, DetectMatchesBatchAcrossBackendsAndAdjustments) {
  core::TrainingVideo training;
  training.messages = sim::ToCoreMessages((*corpus_)[0].chat);
  training.video_length = (*corpus_)[0].truth.meta.length;
  for (const auto& h : (*corpus_)[0].truth.highlights) {
    training.highlights.push_back(h.span);
  }
  for (const auto backend :
       {core::SimilarityBackend::kBagOfWords, core::SimilarityBackend::kTfIdf,
        core::SimilarityBackend::kEmbedding,
        core::SimilarityBackend::kJaccard}) {
    for (const auto adjustment :
         {core::AdjustmentKind::kConstant, core::AdjustmentKind::kRegression}) {
      core::InitializerOptions options;
      options.similarity_backend = backend;
      options.adjustment_kind = adjustment;
      core::HighlightInitializer initializer(options);
      ASSERT_TRUE(initializer.Train({training}).ok());
      for (size_t v = 1; v < corpus_->size(); ++v) {
        const auto messages = sim::ToCoreMessages((*corpus_)[v].chat);
        const double length = (*corpus_)[v].truth.meta.length;
        const auto streaming = initializer.Detect(messages, length, 5);
        const auto batch = initializer.DetectBatch(messages, length, 5);
        ASSERT_EQ(streaming.size(), batch.size());
        for (size_t i = 0; i < streaming.size(); ++i) {
          EXPECT_EQ(streaming[i].position, batch[i].position);
          EXPECT_EQ(streaming[i].score, batch[i].score);
          EXPECT_EQ(streaming[i].peak, batch[i].peak);
          EXPECT_EQ(streaming[i].window.start, batch[i].window.start);
          EXPECT_EQ(streaming[i].window.end, batch[i].window.end);
        }
      }
    }
  }
}

}  // namespace
}  // namespace lightor
