#include <gtest/gtest.h>

#include "storage/record.h"
#include "storage/serialize.h"

namespace lightor::storage {
namespace {

TEST(EncoderDecoderTest, RoundTripScalars) {
  Encoder enc;
  enc.PutU8(0xAB);
  enc.PutU32(0xDEADBEEF);
  enc.PutU64(0x0123456789ABCDEFULL);
  enc.PutDouble(3.14159);
  enc.PutString("hello");
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.GetU8().value(), 0xAB);
  EXPECT_EQ(dec.GetU32().value(), 0xDEADBEEFu);
  EXPECT_EQ(dec.GetU64().value(), 0x0123456789ABCDEFULL);
  EXPECT_DOUBLE_EQ(dec.GetDouble().value(), 3.14159);
  EXPECT_EQ(dec.GetString().value(), "hello");
  EXPECT_TRUE(dec.exhausted());
}

TEST(EncoderDecoderTest, EmptyStringAndSpecialDoubles) {
  Encoder enc;
  enc.PutString("");
  enc.PutDouble(-0.0);
  enc.PutDouble(1e308);
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.GetString().value(), "");
  EXPECT_DOUBLE_EQ(dec.GetDouble().value(), -0.0);
  EXPECT_DOUBLE_EQ(dec.GetDouble().value(), 1e308);
}

TEST(DecoderTest, UnderrunReportsCorruption) {
  Encoder enc;
  enc.PutU8(1);
  Decoder dec(enc.bytes());
  EXPECT_TRUE(dec.GetU32().status().IsCorruption());
  Decoder dec2(enc.bytes());
  ASSERT_TRUE(dec2.GetU8().ok());
  EXPECT_TRUE(dec2.GetU8().status().IsCorruption());
}

TEST(DecoderTest, StringLengthOverrun) {
  Encoder enc;
  enc.PutU32(100);  // claims 100 bytes, provides none
  Decoder dec(enc.bytes());
  EXPECT_TRUE(dec.GetString().status().IsCorruption());
}

TEST(Crc32Test, KnownValueAndSensitivity) {
  const uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  // The canonical CRC-32 check value.
  EXPECT_EQ(Crc32(data, sizeof(data)), 0xCBF43926u);
  uint8_t tweaked[sizeof(data)];
  memcpy(tweaked, data, sizeof(data));
  tweaked[0] = '0';
  EXPECT_NE(Crc32(tweaked, sizeof(data)), 0xCBF43926u);
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
}

TEST(ChatRecordTest, RoundTrip) {
  ChatRecord rec;
  rec.video_id = "dota2_channel0_v1";
  rec.timestamp = 1234.5;
  rec.user = "viewer42";
  rec.text = "PogChamp what a play!!";
  const auto decoded = ChatRecord::Decode(rec.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), rec);
}

TEST(InteractionRecordTest, RoundTripAllEventTypes) {
  for (const auto event :
       {StoredInteraction::kPlay, StoredInteraction::kPause,
        StoredInteraction::kSeekForward, StoredInteraction::kSeekBackward}) {
    InteractionRecord rec;
    rec.video_id = "v";
    rec.user = "u";
    rec.session_id = 77;
    rec.event = event;
    rec.wall_time = 5.5;
    rec.position = 100.0;
    rec.target = 80.0;
    const auto decoded = InteractionRecord::Decode(rec.Encode());
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value(), rec);
  }
}

TEST(InteractionRecordTest, RejectsBadEventType) {
  InteractionRecord rec;
  rec.video_id = "v";
  auto bytes = rec.Encode();
  // The event byte follows video_id (4+1), user (4), session (8).
  bytes[4 + 1 + 4 + 8] = 99;
  EXPECT_TRUE(InteractionRecord::Decode(bytes).status().IsCorruption());
}

TEST(HighlightRecordTest, RoundTrip) {
  HighlightRecord rec;
  rec.video_id = "v";
  rec.dot_index = 3;
  rec.dot_position = 1000.0;
  rec.start = 995.0;
  rec.end = 1020.0;
  rec.score = 0.93;
  rec.iteration = 4;
  rec.converged = true;
  const auto decoded = HighlightRecord::Decode(rec.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), rec);
}

TEST(RecordTest, TruncatedPayloadIsCorruption) {
  ChatRecord rec;
  rec.video_id = "video";
  rec.text = "message text";
  auto bytes = rec.Encode();
  bytes.resize(bytes.size() / 2);
  EXPECT_TRUE(ChatRecord::Decode(bytes).status().IsCorruption());
}

}  // namespace
}  // namespace lightor::storage
