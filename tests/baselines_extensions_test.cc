#include <gtest/gtest.h>

#include "baselines/bootstrapped_lstm.h"
#include "baselines/naive_top_count.h"
#include "core/evaluation.h"
#include "sim/bridge.h"
#include "sim/corpus.h"

namespace lightor::baselines {
namespace {

TEST(NaiveTopCountTest, FindsTheBiggestBurst) {
  std::vector<core::Message> messages;
  auto add = [&](double at, int n) {
    for (int i = 0; i < n; ++i) {
      core::Message m;
      m.timestamp = at + 0.05 * i;
      m.text = "x";
      messages.push_back(m);
    }
  };
  add(100.0, 5);
  add(500.0, 60);
  add(900.0, 10);
  std::sort(messages.begin(), messages.end(),
            [](const core::Message& a, const core::Message& b) {
              return a.timestamp < b.timestamp;
            });
  NaiveTopCount naive;
  const auto dots = naive.Detect(messages, 1200.0, 1);
  ASSERT_EQ(dots.size(), 1u);
  EXPECT_NEAR(dots[0], 500.0, 30.0);
}

TEST(NaiveTopCountTest, RespectsSeparationAndK) {
  std::vector<core::Message> messages;
  for (int burst = 0; burst < 4; ++burst) {
    for (int i = 0; i < 30; ++i) {
      core::Message m;
      m.timestamp = 200.0 * burst + 100.0 + 0.1 * i;
      m.text = "x";
      messages.push_back(m);
    }
  }
  NaiveTopCount naive;
  const auto dots = naive.Detect(messages, 1000.0, 3);
  EXPECT_EQ(dots.size(), 3u);
  for (size_t i = 0; i < dots.size(); ++i) {
    for (size_t j = i + 1; j < dots.size(); ++j) {
      EXPECT_GT(std::abs(dots[i] - dots[j]), 120.0);
    }
  }
}

TEST(NaiveTopCountTest, EmptyChat) {
  NaiveTopCount naive;
  EXPECT_TRUE(naive.Detect({}, 1000.0, 5).empty());
}

// The paper's Section IV-C1 analysis: the naive method is fooled by the
// comment delay, so LIGHTOR's adjusted dots must beat it.
TEST(NaiveTopCountTest, LightorBeatsNaive) {
  const auto corpus = sim::MakeCorpus(sim::GameType::kDota2, 9, 125);
  core::HighlightInitializer init;
  core::TrainingVideo tv;
  tv.messages = sim::ToCoreMessages(corpus[0].chat);
  tv.video_length = corpus[0].truth.meta.length;
  for (const auto& h : corpus[0].truth.highlights) {
    tv.highlights.push_back(h.span);
  }
  ASSERT_TRUE(init.Train({tv}).ok());
  NaiveTopCount naive;
  double ours = 0.0, theirs = 0.0;
  for (size_t v = 1; v < corpus.size(); ++v) {
    std::vector<common::Interval> truth;
    for (const auto& h : corpus[v].truth.highlights) truth.push_back(h.span);
    const auto messages = sim::ToCoreMessages(corpus[v].chat);
    const double length = corpus[v].truth.meta.length;
    ours += core::VideoPrecisionStart(
        core::DotPositions(init.Detect(messages, length, 5)), truth);
    theirs += core::VideoPrecisionStart(naive.Detect(messages, length, 5),
                                        truth);
  }
  // A decisive average margin (the naive method pays the comment delay
  // on every dot; LIGHTOR does not).
  EXPECT_GT(ours / 8.0, theirs / 8.0 + 0.15);
}

baselines::BootstrappedLstmOptions TinyBootstrap() {
  BootstrappedLstmOptions opts;
  opts.lstm.frame_stride = 10.0;
  opts.lstm.lstm.hidden_size = 8;
  opts.lstm.lstm.num_layers = 1;
  opts.lstm.lstm.max_sequence_length = 48;
  opts.lstm.lstm.epochs = 2;
  opts.dots_per_video = 4;
  return opts;
}

TEST(BootstrappedLstmTest, RequiresTrainedInitializer) {
  core::HighlightInitializer untrained;
  BootstrappedLstm model(TinyBootstrap());
  const auto corpus = sim::MakeCorpus(sim::GameType::kDota2, 1, 122);
  EXPECT_TRUE(model.Train(untrained, corpus).IsFailedPrecondition());
  EXPECT_TRUE(
      model
          .Train(untrained, {})
          .IsFailedPrecondition());
}

TEST(BootstrappedLstmTest, TrainsOnPseudoLabelsOnly) {
  const auto corpus = sim::MakeCorpus(sim::GameType::kDota2, 3, 123);
  core::HighlightInitializer init;
  core::TrainingVideo tv;
  tv.messages = sim::ToCoreMessages(corpus[0].chat);
  tv.video_length = corpus[0].truth.meta.length;
  for (const auto& h : corpus[0].truth.highlights) {
    tv.highlights.push_back(h.span);
  }
  ASSERT_TRUE(init.Train({tv}).ok());

  BootstrappedLstm model(TinyBootstrap());
  // Train on the other two videos WITHOUT their labels.
  sim::Corpus unlabelled = {corpus[1], corpus[2]};
  ASSERT_TRUE(model.Train(init, unlabelled).ok());
  EXPECT_TRUE(model.trained());
  EXPECT_GT(model.pseudo_labels_generated(), 4u);

  // It produces sane detections on a fresh video.
  const auto detections = model.DetectTopK(
      sim::ToCoreMessages(corpus[1].chat), corpus[1].truth.meta.length, 5);
  EXPECT_LE(detections.size(), 5u);
  for (double t : detections) {
    EXPECT_GE(t, 0.0);
    EXPECT_LE(t, corpus[1].truth.meta.length);
  }
}

TEST(BootstrappedLstmTest, EmptyCorpusRejected) {
  const auto corpus = sim::MakeCorpus(sim::GameType::kDota2, 1, 124);
  core::HighlightInitializer init;
  core::TrainingVideo tv;
  tv.messages = sim::ToCoreMessages(corpus[0].chat);
  tv.video_length = corpus[0].truth.meta.length;
  for (const auto& h : corpus[0].truth.highlights) {
    tv.highlights.push_back(h.span);
  }
  ASSERT_TRUE(init.Train({tv}).ok());
  BootstrappedLstm model(TinyBootstrap());
  EXPECT_TRUE(model.Train(init, {}).IsInvalidArgument());
}

}  // namespace
}  // namespace lightor::baselines
