/// Cross-module integration and property tests: the full LIGHTOR workflow
/// against the simulated platform, swept over seeds and games.

#include <gtest/gtest.h>

#include <memory>

#include "core/evaluation.h"
#include "core/lightor.h"
#include "sim/bridge.h"
#include "sim/corpus.h"

namespace lightor {
namespace {

core::TrainingVideo ToTraining(const sim::LabeledVideo& video) {
  core::TrainingVideo tv;
  tv.messages = sim::ToCoreMessages(video.chat);
  tv.video_length = video.truth.meta.length;
  for (const auto& h : video.truth.highlights) tv.highlights.push_back(h.span);
  return tv;
}

std::vector<common::Interval> Truth(const sim::LabeledVideo& video) {
  std::vector<common::Interval> out;
  for (const auto& h : video.truth.highlights) out.push_back(h.span);
  return out;
}

struct EndToEndParam {
  sim::GameType game;
  uint64_t seed;
};

class EndToEndTest : public ::testing::TestWithParam<EndToEndParam> {};

// Property: across games and seeds, training on a single video yields an
// initializer whose top-5 dots are mostly good on unseen videos, and the
// extractor's crowd refinement does not degrade them.
TEST_P(EndToEndTest, OneVideoTrainingGeneralizes) {
  const auto param = GetParam();
  const auto corpus = sim::MakeCorpus(param.game, 4, param.seed);
  core::Lightor lightor;
  ASSERT_TRUE(lightor.TrainInitializer({ToTraining(corpus[0])}).ok());

  common::Rng rng(param.seed ^ 0xF00D);
  double init_precision = 0.0;
  double refined_precision = 0.0;
  int n = 0;
  for (size_t vi = 1; vi < corpus.size(); ++vi) {
    const auto& video = corpus[vi];
    const auto truth = Truth(video);
    auto result = lightor.Process(
        sim::ToCoreMessages(video.chat), video.truth.meta.length,
        [&](const core::RedDot&) -> std::unique_ptr<core::PlayProvider> {
          return std::make_unique<sim::SimulatedCrowdProvider>(
              video.truth, sim::ViewerSimulator(), 10, rng.Fork());
        });
    ASSERT_TRUE(result.ok());
    std::vector<common::Seconds> dot_positions, starts;
    for (const auto& item : result.value()) {
      dot_positions.push_back(item.dot.position);
      starts.push_back(item.refined.boundary.start);
    }
    init_precision += core::VideoPrecisionStart(dot_positions, truth);
    refined_precision += core::VideoPrecisionStart(starts, truth);
    ++n;
  }
  EXPECT_GT(init_precision / n, 0.55) << "initializer below paper band";
  EXPECT_GT(refined_precision / n, 0.55) << "extractor degraded the dots";
}

INSTANTIATE_TEST_SUITE_P(
    GamesAndSeeds, EndToEndTest,
    ::testing::Values(EndToEndParam{sim::GameType::kDota2, 101},
                      EndToEndParam{sim::GameType::kDota2, 202},
                      EndToEndParam{sim::GameType::kLol, 303},
                      EndToEndParam{sim::GameType::kLol, 404}));

// Cross-game transfer (Fig. 11a): a LoL-trained model must stay accurate
// on Dota2 because the features are general.
TEST(CrossGameTest, LolModelWorksOnDota) {
  const auto lol = sim::MakeCorpus(sim::GameType::kLol, 1, 555);
  const auto dota = sim::MakeCorpus(sim::GameType::kDota2, 3, 556);
  core::Lightor lightor;
  ASSERT_TRUE(lightor.TrainInitializer({ToTraining(lol[0])}).ok());
  double precision = 0.0;
  for (const auto& video : dota) {
    const auto dots = lightor.Initialize(sim::ToCoreMessages(video.chat),
                                         video.truth.meta.length, 5);
    ASSERT_TRUE(dots.ok());
    precision +=
        core::VideoPrecisionStart(core::DotPositions(dots.value()),
                                  Truth(video));
  }
  EXPECT_GT(precision / static_cast<double>(dota.size()), 0.5);
}

// Property: the extractor's boundary starts never precede the red dot by
// more than delta + one Type-I walk budget, and always lie inside the
// video.
TEST(ExtractorPropertyTest, BoundariesStayLocal) {
  const auto corpus = sim::MakeCorpus(sim::GameType::kDota2, 2, 777);
  core::Lightor lightor;
  ASSERT_TRUE(lightor.TrainInitializer({ToTraining(corpus[0])}).ok());
  const auto& video = corpus[1];
  common::Rng rng(778);
  auto result = lightor.Process(
      sim::ToCoreMessages(video.chat), video.truth.meta.length,
      [&](const core::RedDot&) -> std::unique_ptr<core::PlayProvider> {
        return std::make_unique<sim::SimulatedCrowdProvider>(
            video.truth, sim::ViewerSimulator(), 10, rng.Fork());
      });
  ASSERT_TRUE(result.ok());
  const auto& opts = lightor.options().extractor;
  const double walk_budget =
      opts.delta + opts.type1_move * opts.max_iterations;
  for (const auto& item : result.value()) {
    EXPECT_GE(item.refined.boundary.start, 0.0);
    EXPECT_LE(item.refined.boundary.end, video.truth.meta.length + 60.0);
    EXPECT_GT(item.refined.boundary.start,
              item.dot.position - walk_budget - 1.0);
    EXPECT_LT(item.refined.boundary.start, item.dot.position + opts.delta);
  }
}

// More crowd data should not hurt: precision with 20 viewers/iteration is
// at least roughly that with 4 viewers/iteration.
TEST(CrowdSizeTest, MoreViewersDoNotHurt) {
  const auto corpus = sim::MakeCorpus(sim::GameType::kDota2, 3, 888);
  core::Lightor lightor;
  ASSERT_TRUE(lightor.TrainInitializer({ToTraining(corpus[0])}).ok());

  auto run = [&](int viewers, uint64_t seed) {
    common::Rng rng(seed);
    double total = 0.0;
    int n = 0;
    for (size_t vi = 1; vi < corpus.size(); ++vi) {
      const auto& video = corpus[vi];
      auto result = lightor.Process(
          sim::ToCoreMessages(video.chat), video.truth.meta.length,
          [&](const core::RedDot&) -> std::unique_ptr<core::PlayProvider> {
            return std::make_unique<sim::SimulatedCrowdProvider>(
                video.truth, sim::ViewerSimulator(), viewers, rng.Fork());
          });
      std::vector<common::Seconds> starts;
      for (const auto& item : result.value()) {
        starts.push_back(item.refined.boundary.start);
      }
      total += core::VideoPrecisionStart(starts, Truth(video));
      ++n;
    }
    return total / n;
  };
  const double small_crowd = run(4, 1);
  const double big_crowd = run(20, 2);
  EXPECT_GE(big_crowd + 0.21, small_crowd);  // allow one-dot noise
}

}  // namespace
}  // namespace lightor
