#include "cluster/router.h"

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/metrics.h"
#include "cluster/ring.h"
#include "common/rng.h"
#include "net/client.h"
#include "net/codec.h"
#include "net/service.h"
#include "sim/viewer.h"
#include "test_stack.h"

namespace lightor::cluster {
namespace {

/// One in-process HighlightServer behind its own HTTP front-end — a
/// cluster backend. All backends share the deterministic test platform
/// (same seed, same corpus-trained model), so per-video state is the
/// only thing that distinguishes them; exactly the production picture
/// the ring's sticky ownership relies on.
struct Backend {
  testutil::ServingStack stack;
  std::unique_ptr<net::HttpServer> http;

  std::string address() const {
    return "127.0.0.1:" + std::to_string(http->port());
  }
};

Backend MakeBackend(
    const std::string& db_dir,
    const std::function<void(serving::ServerOptions&)>& tweak = nullptr) {
  Backend backend;
  backend.stack = testutil::MakeServingStack(db_dir, tweak);
  auto http = net::HttpServer::Create(
      net::NetOptions{}, net::BuildRoutes(backend.stack.server.get()));
  EXPECT_TRUE(http.ok()) << http.status().ToString();
  backend.http = std::move(http).value();
  return backend;
}

class ClusterRouterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("lightor_cluster_router_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  RouterOptions FastRetryOptions(std::vector<std::string> backends) {
    RouterOptions options;
    options.backends = std::move(backends);
    options.health_check_interval_seconds = 0;  // health driven by hand
    options.upstream_timeout_seconds = 2.0;
    options.retry_budget_seconds = 0.25;
    options.retry_backoff_seconds = 0.02;
    options.retry_backoff_max_seconds = 0.1;
    return options;
  }

  std::string dir_;
};

serving::LogSessionRequest MakeLog(const std::string& video_id,
                                   const sim::ViewerSession& session,
                                   uint64_t session_id) {
  serving::LogSessionRequest req;
  req.video_id = video_id;
  req.user = session.user;
  req.session_id = session_id;
  req.events = session.events;
  return req;
}

TEST_F(ClusterRouterTest, ClusterMatchesSingleProcessReference) {
  // The tentpole differential: a 3-node cluster behind the router must
  // answer every route byte-identically to one process holding all the
  // state. Identical request bytes go to both sides; every response —
  // including the final /highlights — must match exactly.
  Backend reference = MakeBackend(dir_ + "/ref");
  std::vector<Backend> fleet;
  std::vector<std::string> addresses;
  for (int i = 0; i < 3; ++i) {
    fleet.push_back(MakeBackend(dir_ + "/b" + std::to_string(i)));
    addresses.push_back(fleet.back().address());
  }
  RouterOptions options = FastRetryOptions(addresses);
  options.retry_budget_seconds = 2.0;
  auto router = HighlightRouter::Create(std::move(options));
  ASSERT_TRUE(router.ok()) << router.status().ToString();

  net::HttpClient via_router("127.0.0.1", router.value()->port());
  net::HttpClient direct("127.0.0.1", reference.http->port());
  const auto send_both = [&](std::string_view method, std::string_view target,
                             const std::string& body) {
    auto clustered = via_router.Request(method, target, body);
    auto single = direct.Request(method, target, body);
    EXPECT_TRUE(clustered.ok()) << clustered.status().ToString();
    EXPECT_TRUE(single.ok()) << single.status().ToString();
    EXPECT_EQ(clustered.value().status, single.value().status) << target;
    EXPECT_EQ(clustered.value().body, single.value().body) << target;
    return single.value().body;
  };

  sim::ViewerSimulator viewers;
  common::Rng rng(74);
  uint64_t session_id = 0;
  const auto video_ids = reference.stack.platform->AllVideoIds();
  ASSERT_GE(video_ids.size(), 3u);  // enough keys to spread over the ring
  for (const auto& video_id : video_ids) {
    send_both("POST", "/visit",
              "{\"video_id\":\"" + video_id + "\",\"user\":\"u1\"}");
    // Deterministic viewer sessions built once, sent to both sides.
    const auto video =
        reference.stack.platform->GetVideo(video_id).value();
    const auto dots =
        reference.stack.server->GetHighlights(video_id).value();
    for (const auto& dot : dots.highlights) {
      for (int u = 0; u < 4; ++u) {
        const auto session = viewers.SimulateSession(
            video.truth, dot.dot_position, rng, "w" + std::to_string(u));
        send_both("POST", "/session",
                  net::EncodeJson(MakeLog(video_id, session, ++session_id)));
      }
    }
    send_both("POST", "/refine", "{\"video_id\":\"" + video_id + "\"}");
  }
  for (const auto& video_id : video_ids) {
    send_both("GET", "/highlights?video_id=" + video_id, "");
  }

  // The ring actually spread the videos: with 4+ keys over 3 backends at
  // least two backends must own something (all-on-one would mean the
  // differential never exercised the partitioning).
  size_t backends_used = 0;
  for (const auto& backend : fleet) {
    if (backend.stack.db->interactions().TotalRecords() > 0) {
      ++backends_used;
    }
  }
  EXPECT_GE(backends_used, 2u);

  router.value()->Shutdown();
  for (auto& backend : fleet) backend.http->Shutdown();
  reference.http->Shutdown();
}

TEST_F(ClusterRouterTest, MissingVideoIdIsBadRequest) {
  Backend backend = MakeBackend(dir_ + "/b0");
  auto router =
      HighlightRouter::Create(FastRetryOptions({backend.address()}));
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  net::HttpClient client("127.0.0.1", router.value()->port());

  auto no_field = client.Post("/session", "{\"user\":\"u\"}");
  ASSERT_TRUE(no_field.ok());
  EXPECT_EQ(no_field.value().status, 400);
  auto bad_json = client.Post("/visit", "not json");
  ASSERT_TRUE(bad_json.ok());
  EXPECT_EQ(bad_json.value().status, 400);
  auto no_param = client.Get("/highlights");
  ASSERT_TRUE(no_param.ok());
  EXPECT_EQ(no_param.value().status, 400);

  router.value()->Shutdown();
  backend.http->Shutdown();
}

TEST_F(ClusterRouterTest, EmptyRingFailsClosed) {
  RouterOptions options = FastRetryOptions({});
  auto router = HighlightRouter::Create(std::move(options));
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  net::HttpClient client("127.0.0.1", router.value()->port());

  auto resp = client.Post("/visit", "{\"video_id\":\"v\"}");
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp.value().status, 503);
  ASSERT_NE(resp.value().FindHeader("retry-after"), nullptr);

  // The router itself is still alive and says so.
  auto healthz = client.Get("/healthz");
  ASSERT_TRUE(healthz.ok());
  EXPECT_EQ(healthz.value().status, 200);
  EXPECT_NE(healthz.value().body.find("\"ring_size\":0"), std::string::npos)
      << healthz.value().body;
  router.value()->Shutdown();
}

TEST_F(ClusterRouterTest, DeadOwnerWithoutFailoverIs503AfterRetries) {
  Backend backend = MakeBackend(dir_ + "/b0");
  RouterOptions options = FastRetryOptions({backend.address()});
  options.failover = false;
  auto router = HighlightRouter::Create(std::move(options));
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  const uint64_t retries_before =
      RouterRetriesCounter(backend.address()).value();

  backend.http->Shutdown();  // connections now refused
  net::HttpClient client("127.0.0.1", router.value()->port());
  auto resp = client.Post("/visit", "{\"video_id\":\"v\"}");
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp.value().status, 503);
  ASSERT_NE(resp.value().FindHeader("retry-after"), nullptr);
  // The budget was spent retrying the owner, visibly.
  EXPECT_GT(RouterRetriesCounter(backend.address()).value(), retries_before);
  router.value()->Shutdown();
}

TEST_F(ClusterRouterTest, FailoverServesWhenOwnerStaysDead) {
  Backend a = MakeBackend(dir_ + "/a");
  Backend b = MakeBackend(dir_ + "/b");
  auto router = HighlightRouter::Create(
      FastRetryOptions({a.address(), b.address()}));
  ASSERT_TRUE(router.ok()) << router.status().ToString();

  // Find a video owned by `a`, then kill `a`: after the owner-first
  // budget is exhausted the request must land on `b` and succeed (every
  // backend can serve any video of the shared platform).
  std::string victim_video;
  for (const auto& video_id : a.stack.platform->AllVideoIds()) {
    if (router.value()->fleet().Owner(video_id).value() == a.address()) {
      victim_video = video_id;
      break;
    }
  }
  if (victim_video.empty()) GTEST_SKIP() << "ring put every video on b";

  const uint64_t failovers_before = RouterFailoversCounter().value();
  a.http->Shutdown();
  net::HttpClient client("127.0.0.1", router.value()->port());
  auto resp = client.Post(
      "/visit", "{\"video_id\":\"" + victim_video + "\",\"user\":\"u\"}");
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp.value().status, 200) << resp.value().body;
  EXPECT_GT(RouterFailoversCounter().value(), failovers_before);

  router.value()->Shutdown();
  b.http->Shutdown();
}

TEST_F(ClusterRouterTest, MembershipReloadRehashesDeterministically) {
  Backend a = MakeBackend(dir_ + "/a");
  Backend b = MakeBackend(dir_ + "/b");
  auto router = HighlightRouter::Create(FastRetryOptions({a.address()}));
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  net::HttpClient client("127.0.0.1", router.value()->port());
  const uint64_t version_before = router.value()->fleet().Version();

  auto update = client.Post("/admin/membership",
                            "{\"backends\":[\"" + a.address() + "\",\"" +
                                b.address() + "\"]}");
  ASSERT_TRUE(update.ok()) << update.status().ToString();
  ASSERT_EQ(update.value().status, 200) << update.value().body;
  EXPECT_GT(router.value()->fleet().Version(), version_before);

  auto get = client.Get("/admin/membership");
  ASSERT_TRUE(get.ok());
  EXPECT_NE(get.value().body.find(a.address()), std::string::npos);
  EXPECT_NE(get.value().body.find(b.address()), std::string::npos);

  // Deterministic re-hash: the updated fleet must agree key-for-key with
  // a ring built from scratch over the same membership — what lets every
  // router (and a restarted one) route identically after a reload.
  HashRing fresh(router.value()->options().vnodes);
  fresh.SetMembers({a.address(), b.address()});
  for (int i = 0; i < 200; ++i) {
    const std::string key = "video-" + std::to_string(i);
    EXPECT_EQ(router.value()->fleet().Owner(key).value(),
              fresh.Owner(key).value())
        << key;
  }

  // Bad updates change nothing, atomically.
  const uint64_t version = router.value()->fleet().Version();
  auto bad = client.Post("/admin/membership",
                         "{\"backends\":[\"no-port\"]}");
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad.value().status, 400);
  EXPECT_EQ(router.value()->fleet().Version(), version);

  router.value()->Shutdown();
  a.http->Shutdown();
  b.http->Shutdown();
}

TEST_F(ClusterRouterTest, MetricsAggregateFleetSeries) {
  Backend a = MakeBackend(dir_ + "/a");
  Backend b = MakeBackend(dir_ + "/b");
  auto router = HighlightRouter::Create(
      FastRetryOptions({a.address(), b.address()}));
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  net::HttpClient client("127.0.0.1", router.value()->port());
  const std::string video_id = a.stack.platform->AllVideoIds()[0];
  ASSERT_EQ(client
                .Post("/visit",
                      "{\"video_id\":\"" + video_id + "\",\"user\":\"u\"}")
                .value()
                .status,
            200);

  // JSON export round-trips through the fleet parser (structure only:
  // in-process backends share this test binary's global registry, so
  // exact values double-count — a real multi-process fleet does not).
  auto json = client.Get("/metrics?format=json");
  ASSERT_TRUE(json.ok()) << json.status().ToString();
  ASSERT_EQ(json.value().status, 200);
  auto parsed = ParseMetricsJson(json.value().body);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  bool saw_router_series = false, saw_backend_series = false;
  for (const auto& counter : parsed.value().counters) {
    if (counter.name == "lightor_cluster_requests_total") {
      saw_router_series = true;
    }
    if (counter.name.rfind("lightor_web_", 0) == 0) {
      saw_backend_series = true;
    }
  }
  EXPECT_TRUE(saw_router_series);
  EXPECT_TRUE(saw_backend_series);

  // Prometheus rendering of the same aggregate.
  auto prom = client.Get("/metrics");
  ASSERT_TRUE(prom.ok());
  EXPECT_NE(prom.value().body.find("lightor_cluster_requests_total"),
            std::string::npos);
  EXPECT_NE(prom.value().body.find("lightor_cluster_ring_size"),
            std::string::npos);

  router.value()->Shutdown();
  a.http->Shutdown();
  b.http->Shutdown();
}

TEST_F(ClusterRouterTest, HealthCheckerTracksBackendStates) {
  Backend a = MakeBackend(dir_ + "/a");
  Backend b = MakeBackend(dir_ + "/b");
  RouterOptions options = FastRetryOptions({a.address(), b.address()});
  options.health_check_interval_seconds = 0.05;
  auto router = HighlightRouter::Create(std::move(options));
  ASSERT_TRUE(router.ok()) << router.status().ToString();

  const auto wait_for = [&](const std::string& address,
                            BackendHealth want) {
    for (int i = 0; i < 100; ++i) {
      if (router.value()->fleet().HealthOf(address) == want) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    return false;
  };
  EXPECT_TRUE(wait_for(a.address(), BackendHealth::kHealthy));
  EXPECT_TRUE(wait_for(b.address(), BackendHealth::kHealthy));

  // Lame duck: the backend announces draining; the checker must see it.
  a.stack.server->BeginDrain();
  EXPECT_TRUE(wait_for(a.address(), BackendHealth::kDraining));

  // A dead backend goes down.
  b.http->Shutdown();
  EXPECT_TRUE(wait_for(b.address(), BackendHealth::kDown));

  router.value()->Shutdown();
  a.http->Shutdown();
}

TEST_F(ClusterRouterTest, ValidateRejectsBadOptions) {
  RouterOptions bad_backend;
  bad_backend.backends = {"nope"};
  EXPECT_FALSE(bad_backend.Validate().ok());

  RouterOptions zero_pool;
  zero_pool.upstream_pool_size = 0;
  EXPECT_FALSE(zero_pool.Validate().ok());

  RouterOptions bad_backoff;
  bad_backoff.retry_backoff_seconds = 0.5;
  bad_backoff.retry_backoff_max_seconds = 0.1;
  EXPECT_FALSE(bad_backoff.Validate().ok());

  EXPECT_FALSE(
      HighlightRouter::Create(RouterOptions{.backends = {"nope"}}).ok());
  RouterOptions missing_file;
  missing_file.membership_file = "/nonexistent/members.json";
  EXPECT_FALSE(HighlightRouter::Create(std::move(missing_file)).ok());
}

TEST_F(ClusterRouterTest, ThrottledIngestPassesThrough429ByteExact) {
  // Admission backpressure must survive the router untouched: a 429
  // from the owning backend reaches the client byte-identical to a
  // direct hit (same body, same Retry-After), and the router must not
  // burn its retry budget on it — throttling is the channel telling the
  // client to slow down, not a transient backend failure.
  const auto rate_limited = [](serving::ServerOptions& o) {
    o.ingest_rate_messages_per_sec = 10.0;
    o.ingest_burst_messages = 20.0;
    o.ingest_clock = [] { return 0.0; };  // bucket never refills
  };
  Backend reference = MakeBackend(dir_ + "/ref", rate_limited);
  std::vector<Backend> fleet;
  std::vector<std::string> addresses;
  for (int i = 0; i < 2; ++i) {
    fleet.push_back(MakeBackend(dir_ + "/b" + std::to_string(i),
                                rate_limited));
    addresses.push_back(fleet.back().address());
  }
  auto router = HighlightRouter::Create(FastRetryOptions(addresses));
  ASSERT_TRUE(router.ok()) << router.status().ToString();

  net::HttpClient via_router("127.0.0.1", router.value()->port());
  net::HttpClient direct("127.0.0.1", reference.http->port());
  const auto ingest_body = [](size_t count, double start_ts) {
    serving::IngestChatRequest req;
    req.video_id = "hot-stream";
    for (size_t i = 0; i < count; ++i) {
      core::Message m;
      m.timestamp = start_ts + static_cast<double>(i);
      m.user = "u";
      m.text = "spam " + std::to_string(i);
      req.messages.push_back(std::move(m));
    }
    return net::EncodeJson(req);
  };

  // Drain the burst on both sides, then force a throttle.
  const std::string drain = ingest_body(20, 1.0);
  auto drained = via_router.Post("/ingest", drain);
  ASSERT_TRUE(drained.ok()) << drained.status().ToString();
  ASSERT_EQ(drained.value().status, 200) << drained.value().body;
  auto drained_direct = direct.Post("/ingest", drain);
  ASSERT_TRUE(drained_direct.ok()) << drained_direct.status().ToString();
  EXPECT_EQ(drained.value().body, drained_direct.value().body);

  const std::string over = ingest_body(5, 100.0);
  auto throttled = via_router.Post("/ingest", over);
  ASSERT_TRUE(throttled.ok()) << throttled.status().ToString();
  auto throttled_direct = direct.Post("/ingest", over);
  ASSERT_TRUE(throttled_direct.ok()) << throttled_direct.status().ToString();
  EXPECT_EQ(throttled.value().status, 429);
  EXPECT_EQ(throttled_direct.value().status, 429);
  EXPECT_EQ(throttled.value().body, throttled_direct.value().body);
  const std::string* routed_retry =
      throttled.value().FindHeader("retry-after");
  const std::string* direct_retry =
      throttled_direct.value().FindHeader("retry-after");
  ASSERT_NE(routed_retry, nullptr);
  ASSERT_NE(direct_retry, nullptr);
  EXPECT_EQ(*routed_retry, *direct_retry);
  EXPECT_TRUE(net::HttpClient::IsRetryableAfterDelay(throttled.value().status));
  EXPECT_DOUBLE_EQ(net::HttpClient::RetryAfterSeconds(throttled.value(), 9.0),
                   1.0);

  // Exactly one backend saw exactly one throttled batch: the router
  // attempted the owner once and did not retry the 429 anywhere.
  size_t fleet_throttled = 0;
  for (const auto& backend : fleet) {
    for (const auto& channel : backend.stack.server->ChannelsSnapshot()) {
      fleet_throttled += channel.throttled_batches;
    }
  }
  EXPECT_EQ(fleet_throttled, 1u);
}

}  // namespace
}  // namespace lightor::cluster
