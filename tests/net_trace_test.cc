#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <utility>

#include "core/lightor.h"
#include "net/client.h"
#include "net/codec.h"
#include "net/server.h"
#include "net/service.h"
#include "obs/request_log.h"
#include "obs/trace.h"
#include "obs/trace_context.h"
#include "serving/highlight_server.h"
#include "sim/bridge.h"
#include "sim/corpus.h"
#include "sim/platform.h"
#include "storage/database.h"

namespace lightor::net {
namespace {

/// Served HighlightServer behind the HTTP front-end, with per-append WAL
/// flushes (batched_session_flush off) so /session exercises the
/// storage-flush span path end to end.
struct Stack {
  std::unique_ptr<sim::Platform> platform;
  std::unique_ptr<storage::Database> db;
  std::unique_ptr<core::Lightor> lightor;
  std::unique_ptr<serving::HighlightServer> server;
};

Stack MakeStack(const std::string& db_dir) {
  Stack stack;
  sim::Platform::Options popts;
  popts.num_channels = 2;
  popts.videos_per_channel = 2;
  popts.seed = 7;
  stack.platform = std::make_unique<sim::Platform>(popts);
  auto db = storage::DB::Open(storage::OpenOptions(db_dir));
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  stack.db = std::move(db.value().db);

  const auto corpus = sim::MakeCorpus(sim::GameType::kDota2, 1, 1007);
  core::TrainingVideo tv;
  tv.messages = sim::ToCoreMessages(corpus[0].chat);
  tv.video_length = corpus[0].truth.meta.length;
  for (const auto& h : corpus[0].truth.highlights) {
    tv.highlights.push_back(h.span);
  }
  stack.lightor = std::make_unique<core::Lightor>(core::LightorOptions{});
  EXPECT_TRUE(stack.lightor->TrainInitializer({tv}).ok());

  serving::ServerOptions sopts;
  sopts.platform = serving::Borrow(
      static_cast<const sim::Platform*>(stack.platform.get()));
  sopts.db = serving::Borrow(stack.db.get());
  sopts.lightor = serving::Borrow(
      static_cast<const core::Lightor*>(stack.lightor.get()));
  sopts.num_workers = 2;
  sopts.refine_batch_sessions = 0;
  sopts.batched_session_flush = false;
  auto server = serving::HighlightServer::Create(sopts);
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  stack.server = std::move(server).value();
  return stack;
}

class NetTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("lightor_net_trace_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

std::string SessionBody(const Stack& stack) {
  serving::LogSessionRequest req;
  req.video_id = stack.platform->AllVideoIds()[0];
  req.user = "tracer";
  req.session_id = 42;
  sim::InteractionEvent play;
  play.wall_time = 0.0;
  play.type = sim::InteractionType::kPlay;
  play.position = 10.0;
  req.events.push_back(play);
  sim::InteractionEvent pause;
  pause.wall_time = 5.0;
  pause.type = sim::InteractionType::kPause;
  pause.position = 15.0;
  req.events.push_back(pause);
  return EncodeJson(req);
}

// The ISSUE's acceptance path: a traced POST /session must surface the
// caller's trace id in the wide-event log, yield >= 4 distinct spans
// (storage flush included) via /debug/trace, and feed the per-stage and
// per-route histogram families visible in /metrics.
TEST_F(NetTraceTest, TraceparentPropagatesEndToEnd) {
  Stack stack = MakeStack((dir_ / "db").string());
  auto http = HttpServer::Create(NetOptions{}, BuildRoutes(stack.server.get()));
  ASSERT_TRUE(http.ok()) << http.status().ToString();
  HttpClient client("127.0.0.1", http.value()->port());

  // sampled=01: tail sampling must keep this trace unconditionally.
  const std::string trace_id = "4bf92f3577b34da6a3ce929d0e0e4736";
  client.set_header("traceparent",
                    "00-" + trace_id + "-00f067aa0ba902b7-01");
  auto response = client.Post("/session", SessionBody(stack));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_EQ(response.value().status, 200) << response.value().body;
  client.set_header("traceparent", "");

  // Wide event: same trace id, the /session route, handler time charged.
  auto requests = client.Get("/debug/requests?route=/session");
  ASSERT_TRUE(requests.ok());
  ASSERT_EQ(requests.value().status, 200);
  const std::string& rows = requests.value().body;
  EXPECT_NE(rows.find("\"trace_id\":\"" + trace_id + "\""), std::string::npos)
      << rows;
  EXPECT_NE(rows.find("\"route\":\"/session\""), std::string::npos);
  EXPECT_NE(rows.find("\"keep_reason\":\"flag\""), std::string::npos);
  EXPECT_NE(rows.find("\"parent_span_id\":\"00f067aa0ba902b7\""),
            std::string::npos)
      << rows;

  // Span tree: root + handler/serialize/storage_flush stage spans + the
  // WAL flush span — >= 4 distinct names including the storage flush.
  auto trace = client.Get("/debug/trace?trace_id=" + trace_id);
  ASSERT_TRUE(trace.ok());
  ASSERT_EQ(trace.value().status, 200) << trace.value().body;
  const std::string& spans = trace.value().body;
  size_t distinct = 0;
  for (const char* name :
       {"request /session", "stage.handler", "stage.serialize",
        "stage.storage_flush", "storage.AppendLog.Flush"}) {
    if (spans.find(name) != std::string::npos) ++distinct;
    EXPECT_NE(spans.find(name), std::string::npos)
        << "missing span " << name << " in " << spans;
  }
  EXPECT_GE(distinct, 4u);
  EXPECT_NE(spans.find(trace_id), std::string::npos);

  // /metrics: per-stage family, per-route x status-class wire latency,
  // trace-ring health series, wide-event counter.
  auto metrics = client.Get("/metrics");
  ASSERT_TRUE(metrics.ok());
  const std::string& text = metrics.value().body;
  EXPECT_NE(text.find("lightor_obs_request_stage_seconds"),
            std::string::npos);
  EXPECT_NE(text.find("stage=\"handler\""), std::string::npos);
  EXPECT_NE(text.find("stage=\"storage_flush\""), std::string::npos);
  EXPECT_NE(text.find("lightor_net_request_seconds"), std::string::npos);
  EXPECT_NE(text.find("route=\"/session\""), std::string::npos);
  EXPECT_NE(text.find("class=\"2xx\""), std::string::npos);
  EXPECT_NE(text.find("lightor_obs_trace_events_total"), std::string::npos);
  EXPECT_NE(text.find("lightor_obs_trace_ring_capacity"), std::string::npos);
  EXPECT_NE(text.find("lightor_obs_wide_events_total"), std::string::npos);

  http.value()->Shutdown();
  stack.server->Shutdown();
}

TEST_F(NetTraceTest, GeneratesContextWhenHeaderMissingOrInvalid) {
  Stack stack = MakeStack((dir_ / "db").string());
  auto http = HttpServer::Create(NetOptions{}, BuildRoutes(stack.server.get()));
  ASSERT_TRUE(http.ok()) << http.status().ToString();
  HttpClient client("127.0.0.1", http.value()->port());

  auto response = client.Get("/healthz");
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response.value().status, 200);
  auto requests = client.Get("/debug/requests?route=/healthz&limit=1");
  ASSERT_TRUE(requests.ok());
  std::string rows = requests.value().body;
  // A trace id was generated: non-zero, and no parent (no caller span).
  EXPECT_EQ(rows.find("\"trace_id\":\"00000000000000000000000000000000\""),
            std::string::npos)
      << rows;
  EXPECT_NE(rows.find("\"parent_span_id\":\"0000000000000000\""),
            std::string::npos)
      << rows;

  // A malformed traceparent is ignored, not an error.
  client.set_header("traceparent", "00-garbage-bad-01");
  response = client.Get("/healthz");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status, 200);

  http.value()->Shutdown();
  stack.server->Shutdown();
}

TEST_F(NetTraceTest, TraceparentHeaderNameIsCaseInsensitive) {
  Stack stack = MakeStack((dir_ / "db").string());
  auto http = HttpServer::Create(NetOptions{}, BuildRoutes(stack.server.get()));
  ASSERT_TRUE(http.ok()) << http.status().ToString();
  HttpClient client("127.0.0.1", http.value()->port());

  const std::string trace_id = "aaaabbbbccccdddd0123456789abcdef";
  client.set_header("TrAcEpArEnT", "00-" + trace_id + "-00f067aa0ba902b7-01");
  auto response = client.Get("/healthz");
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response.value().status, 200);
  auto requests = client.Get("/debug/requests?route=/healthz");
  ASSERT_TRUE(requests.ok());
  EXPECT_NE(requests.value().body.find(trace_id), std::string::npos)
      << requests.value().body;

  http.value()->Shutdown();
  stack.server->Shutdown();
}

TEST_F(NetTraceTest, DebugTraceRejectsBadAndUnknownIds) {
  Stack stack = MakeStack((dir_ / "db").string());
  auto http = HttpServer::Create(NetOptions{}, BuildRoutes(stack.server.get()));
  ASSERT_TRUE(http.ok()) << http.status().ToString();
  HttpClient client("127.0.0.1", http.value()->port());

  auto bad = client.Get("/debug/trace?trace_id=nothex");
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad.value().status, 400);

  auto unknown =
      client.Get("/debug/trace?trace_id=ffffffffffffffffffffffffffffffff");
  ASSERT_TRUE(unknown.ok());
  EXPECT_EQ(unknown.value().status, 404);

  http.value()->Shutdown();
  stack.server->Shutdown();
}

TEST_F(NetTraceTest, DebugRequestsFiltersByStatusClass) {
  Stack stack = MakeStack((dir_ / "db").string());
  auto http = HttpServer::Create(NetOptions{}, BuildRoutes(stack.server.get()));
  ASSERT_TRUE(http.ok()) << http.status().ToString();
  HttpClient client("127.0.0.1", http.value()->port());

  // One 2xx and one 4xx on distinct routes.
  ASSERT_TRUE(client.Get("/healthz").ok());
  auto missing = client.Get("/highlights?video_id=no_such_video");
  ASSERT_TRUE(missing.ok());
  ASSERT_EQ(missing.value().status, 404);

  auto only_4xx = client.Get("/debug/requests?status=4xx");
  ASSERT_TRUE(only_4xx.ok());
  EXPECT_NE(only_4xx.value().body.find("\"status\":404"), std::string::npos);
  EXPECT_EQ(only_4xx.value().body.find("\"status\":200"), std::string::npos);

  auto exact = client.Get("/debug/requests?status=404&route=/highlights");
  ASSERT_TRUE(exact.ok());
  EXPECT_NE(exact.value().body.find("\"route\":\"/highlights\""),
            std::string::npos);

  http.value()->Shutdown();
  stack.server->Shutdown();
}

}  // namespace
}  // namespace lightor::net
