#include <gtest/gtest.h>

#include <cmath>

#include "ml/metrics.h"

namespace lightor::ml {
namespace {

TEST(ConfusionTest, CountsAtThreshold) {
  const std::vector<double> p = {0.9, 0.8, 0.3, 0.2};
  const std::vector<int> y = {1, 0, 1, 0};
  const auto cm = Confusion(p, y, 0.5);
  EXPECT_EQ(cm.true_positive, 1u);
  EXPECT_EQ(cm.false_positive, 1u);
  EXPECT_EQ(cm.false_negative, 1u);
  EXPECT_EQ(cm.true_negative, 1u);
  EXPECT_DOUBLE_EQ(cm.Accuracy(), 0.5);
  EXPECT_DOUBLE_EQ(cm.Precision(), 0.5);
  EXPECT_DOUBLE_EQ(cm.Recall(), 0.5);
  EXPECT_DOUBLE_EQ(cm.F1(), 0.5);
}

TEST(ConfusionTest, DegenerateCases) {
  ConfusionMatrix empty;
  EXPECT_DOUBLE_EQ(empty.Accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(empty.Precision(), 0.0);
  EXPECT_DOUBLE_EQ(empty.Recall(), 0.0);
  EXPECT_DOUBLE_EQ(empty.F1(), 0.0);
}

TEST(ConfusionTest, ThresholdBoundaryInclusive) {
  const auto cm = Confusion({0.5}, {1}, 0.5);
  EXPECT_EQ(cm.true_positive, 1u);
}

TEST(LogLossTest, PerfectAndWrongPredictions) {
  EXPECT_NEAR(LogLoss({1.0, 0.0}, {1, 0}), 0.0, 1e-9);
  EXPECT_GT(LogLoss({0.0, 1.0}, {1, 0}), 10.0);  // confidently wrong
  EXPECT_NEAR(LogLoss({0.5}, {1}), std::log(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(LogLoss({}, {}), 0.0);
}

TEST(PrecisionAtKTest, TopKSelection) {
  const std::vector<double> scores = {0.9, 0.1, 0.8, 0.2};
  const std::vector<int> labels = {1, 1, 0, 0};
  // top-2 by score: indices 0 (label 1) and 2 (label 0).
  EXPECT_DOUBLE_EQ(PrecisionAtK(scores, labels, 2), 0.5);
  EXPECT_DOUBLE_EQ(PrecisionAtK(scores, labels, 1), 1.0);
  // k=4 covers everything: 2/4.
  EXPECT_DOUBLE_EQ(PrecisionAtK(scores, labels, 4), 0.5);
}

TEST(PrecisionAtKTest, KClampedAndEdge) {
  EXPECT_DOUBLE_EQ(PrecisionAtK({0.5}, {1}, 100), 1.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK({}, {}, 5), 0.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK({0.5}, {1}, 0), 0.0);
}

TEST(PrecisionAtKTest, TieBrokenByIndex) {
  const std::vector<double> scores = {0.5, 0.5};
  EXPECT_DOUBLE_EQ(PrecisionAtK(scores, {1, 0}, 1), 1.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK(scores, {0, 1}, 1), 0.0);
}

TEST(RocAucTest, PerfectSeparation) {
  EXPECT_DOUBLE_EQ(RocAuc({0.1, 0.2, 0.8, 0.9}, {0, 0, 1, 1}), 1.0);
  EXPECT_DOUBLE_EQ(RocAuc({0.9, 0.8, 0.2, 0.1}, {0, 0, 1, 1}), 0.0);
}

TEST(RocAucTest, RandomIsHalf) {
  EXPECT_DOUBLE_EQ(RocAuc({0.5, 0.5, 0.5, 0.5}, {0, 1, 0, 1}), 0.5);
}

TEST(RocAucTest, SingleClassIsHalf) {
  EXPECT_DOUBLE_EQ(RocAuc({0.1, 0.9}, {1, 1}), 0.5);
  EXPECT_DOUBLE_EQ(RocAuc({0.1, 0.9}, {0, 0}), 0.5);
}

}  // namespace
}  // namespace lightor::ml
