#include <gtest/gtest.h>

#include "core/evaluation.h"
#include "core/initializer.h"
#include "sim/bridge.h"
#include "sim/corpus.h"

namespace lightor::core {
namespace {

TEST(GoodRedDotTest, DefinitionFromSectionIVA) {
  const common::Interval h(1990.0, 2005.0);
  EXPECT_TRUE(IsGoodRedDot(2000.0, h));   // inside
  EXPECT_TRUE(IsGoodRedDot(1990.0, h));   // at start
  EXPECT_TRUE(IsGoodRedDot(2005.0, h));   // at end
  EXPECT_TRUE(IsGoodRedDot(1980.0, h));   // exactly 10 s early
  EXPECT_FALSE(IsGoodRedDot(1979.9, h));  // too early
  EXPECT_FALSE(IsGoodRedDot(2005.1, h));  // after the end
  EXPECT_FALSE(IsGoodRedDot(2100.0, h));  // the paper's bad example
}

TEST(GoodRedDotTest, AnyOverMultipleHighlights) {
  const std::vector<common::Interval> hs = {{100, 120}, {500, 520}};
  EXPECT_TRUE(IsGoodRedDotForAny(110.0, hs));
  EXPECT_TRUE(IsGoodRedDotForAny(495.0, hs));
  EXPECT_FALSE(IsGoodRedDotForAny(300.0, hs));
}

TrainingVideo ToTraining(const sim::LabeledVideo& video) {
  TrainingVideo tv;
  tv.messages = sim::ToCoreMessages(video.chat);
  tv.video_length = video.truth.meta.length;
  for (const auto& h : video.truth.highlights) tv.highlights.push_back(h.span);
  return tv;
}

class TrainedInitializerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus_ = new sim::Corpus(sim::MakeCorpus(sim::GameType::kDota2, 6, 31));
    initializer_ = new HighlightInitializer();
    ASSERT_TRUE(initializer_->Train({ToTraining((*corpus_)[0])}).ok());
  }
  static void TearDownTestSuite() {
    delete corpus_;
    delete initializer_;
    corpus_ = nullptr;
    initializer_ = nullptr;
  }
  static sim::Corpus* corpus_;
  static HighlightInitializer* initializer_;
};

sim::Corpus* TrainedInitializerTest::corpus_ = nullptr;
HighlightInitializer* TrainedInitializerTest::initializer_ = nullptr;

TEST_F(TrainedInitializerTest, TrainsFromOneVideo) {
  EXPECT_TRUE(initializer_->trained());
  // Fig. 7(b): the learned constant is a stable viewer "reaction time"
  // (paper: 23–27 s); allow the simulator's wider single-video band.
  EXPECT_GE(initializer_->adjustment_c(), 10.0);
  EXPECT_LE(initializer_->adjustment_c(), 35.0);
}

TEST_F(TrainedInitializerTest, ModelWeightsFollowFig2Observations) {
  // More messages => more likely a highlight: positive weight.
  // Longer messages => less likely: negative weight.
  const auto& w = initializer_->model().weights();
  ASSERT_EQ(w.size(), 3u);
  EXPECT_GT(w[0], 0.0);
  EXPECT_LT(w[1], 0.0);
}

TEST_F(TrainedInitializerTest, ScoreWindowsAssignsProbabilities) {
  const auto& video = (*corpus_)[1];
  const auto windows = initializer_->ScoreWindows(
      sim::ToCoreMessages(video.chat), video.truth.meta.length);
  ASSERT_FALSE(windows.empty());
  for (const auto& w : windows) {
    EXPECT_GE(w.probability, 0.0);
    EXPECT_LE(w.probability, 1.0);
  }
}

TEST_F(TrainedInitializerTest, DetectFindsGoodDotsOnUnseenVideos) {
  double total = 0.0;
  int n = 0;
  for (size_t vi = 1; vi < corpus_->size(); ++vi) {
    const auto& video = (*corpus_)[vi];
    std::vector<common::Interval> truth;
    for (const auto& h : video.truth.highlights) truth.push_back(h.span);
    const auto dots = initializer_->Detect(
        sim::ToCoreMessages(video.chat), video.truth.meta.length, 5);
    EXPECT_LE(dots.size(), 5u);
    total += VideoPrecisionStart(DotPositions(dots), truth);
    ++n;
  }
  // The paper's headline: 70–90% precision. Demand well above chance.
  EXPECT_GT(total / n, 0.6);
}

TEST_F(TrainedInitializerTest, TopKRespectsMinSeparation) {
  const auto& video = (*corpus_)[1];
  const auto dots = initializer_->Detect(
      sim::ToCoreMessages(video.chat), video.truth.meta.length, 10);
  for (size_t i = 0; i < dots.size(); ++i) {
    for (size_t j = i + 1; j < dots.size(); ++j) {
      EXPECT_GT(std::abs(dots[i].window.start - dots[j].window.start),
                initializer_->options().min_separation);
    }
  }
}

TEST_F(TrainedInitializerTest, DotsOrderedByScoreAndAdjusted) {
  const auto& video = (*corpus_)[2];
  const auto dots = initializer_->Detect(
      sim::ToCoreMessages(video.chat), video.truth.meta.length, 5);
  ASSERT_GE(dots.size(), 2u);
  for (size_t i = 1; i < dots.size(); ++i) {
    EXPECT_GE(dots[i - 1].score, dots[i].score);
  }
  for (const auto& dot : dots) {
    EXPECT_NEAR(dot.position, dot.peak - initializer_->adjustment_c(), 1e-9);
    EXPECT_GE(dot.position, 0.0);
  }
}

TEST_F(TrainedInitializerTest, LabelWindowsOverlapRule) {
  std::vector<SlidingWindow> windows(3);
  // Window 0 overlaps the discussion period and has messages: positive.
  windows[0].span = common::Interval(100.0, 125.0);
  windows[0].first_message = 0;
  windows[0].last_message = 10;
  // Window 1 overlaps but is (nearly) message-free: negative.
  windows[1].span = common::Interval(125.0, 150.0);
  windows[1].first_message = 10;
  windows[1].last_message = 11;
  // Window 2 is far away: negative.
  windows[2].span = common::Interval(300.0, 325.0);
  windows[2].first_message = 11;
  windows[2].last_message = 40;
  const std::vector<common::Interval> highlights = {{90.0, 110.0}};
  const auto labels = initializer_->LabelWindows(windows, highlights);
  EXPECT_EQ(labels[0], 1);
  EXPECT_EQ(labels[1], 0);
  EXPECT_EQ(labels[2], 0);
}

TEST(InitializerErrorsTest, RejectsEmptyAndUnsortedTraining) {
  HighlightInitializer init;
  EXPECT_TRUE(init.Train({}).IsInvalidArgument());

  TrainingVideo unsorted;
  Message m1;
  m1.timestamp = 5.0;
  Message m2;
  m2.timestamp = 1.0;
  unsorted.messages = {m1, m2};
  unsorted.video_length = 100.0;
  unsorted.highlights = {{10.0, 20.0}};
  EXPECT_TRUE(init.Train({unsorted}).IsInvalidArgument());
}

TEST(InitializerErrorsTest, RejectsAllNegativeTraining) {
  // A video whose highlights lie outside every window produces no
  // positive labels.
  TrainingVideo tv;
  for (int i = 0; i < 50; ++i) {
    Message m;
    m.timestamp = static_cast<double>(i);
    m.text = "hello there friend";
    tv.messages.push_back(m);
  }
  tv.video_length = 50.0;
  tv.highlights = {};  // no highlights at all
  HighlightInitializer init;
  EXPECT_TRUE(init.Train({tv}).IsInvalidArgument());
}

TEST(InitializerOptionsTest, FeatureSetNumOnlyStillTrains) {
  const auto corpus = sim::MakeCorpus(sim::GameType::kDota2, 2, 41);
  InitializerOptions opts;
  opts.feature_set = FeatureSet::kNum;
  HighlightInitializer init(opts);
  ASSERT_TRUE(init.Train({ToTraining(corpus[0])}).ok());
  const auto dots = init.Detect(sim::ToCoreMessages(corpus[1].chat),
                                corpus[1].truth.meta.length, 3);
  EXPECT_FALSE(dots.empty());
}

TEST(InitializerOptionsTest, SetAdjustmentOverrides) {
  HighlightInitializer init;
  init.SetAdjustment(42.0);
  EXPECT_DOUBLE_EQ(init.adjustment_c(), 42.0);
}

}  // namespace
}  // namespace lightor::core
