#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"

namespace lightor::common {
namespace {

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(SplitMix64Test, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.Next(), b.Next());
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(99), b(99);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.Uniform(-5.0, 3.0);
    EXPECT_GE(x, -5.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusively) {
  Rng rng(3);
  std::set<int64_t> seen;
  for (int i = 0; i < 10000; ++i) seen.insert(rng.UniformInt(0, 9));
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 9);
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(4);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.UniformInt(7, 7), 7);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequencyApproximatesP) {
  Rng rng(6);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(7);
  std::vector<double> xs;
  for (int i = 0; i < 100000; ++i) xs.push_back(rng.Normal(2.0, 3.0));
  EXPECT_NEAR(Mean(xs), 2.0, 0.05);
  EXPECT_NEAR(StdDev(xs), 3.0, 0.05);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(8);
  std::vector<double> xs;
  for (int i = 0; i < 100000; ++i) xs.push_back(rng.Exponential(2.0));
  EXPECT_NEAR(Mean(xs), 0.5, 0.02);
  EXPECT_GE(Min(xs), 0.0);
}

class PoissonMeanTest : public ::testing::TestWithParam<double> {};

TEST_P(PoissonMeanTest, MeanAndVarianceMatch) {
  const double mean = GetParam();
  Rng rng(static_cast<uint64_t>(mean * 1000) + 9);
  std::vector<double> xs;
  for (int i = 0; i < 50000; ++i) {
    xs.push_back(static_cast<double>(rng.Poisson(mean)));
  }
  EXPECT_NEAR(Mean(xs), mean, std::max(0.05, 0.05 * mean));
  EXPECT_NEAR(Variance(xs), mean, std::max(0.15, 0.08 * mean));
}

INSTANTIATE_TEST_SUITE_P(Sweep, PoissonMeanTest,
                         ::testing::Values(0.1, 0.5, 1.0, 4.0, 20.0, 100.0));

TEST(RngTest, PoissonZeroMeanIsZero) {
  Rng rng(10);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Poisson(0.0), 0);
}

TEST(RngTest, ZipfRanksWithinRangeAndHeadHeavy) {
  Rng rng(11);
  std::vector<int> counts(11, 0);
  for (int i = 0; i < 20000; ++i) {
    const int r = rng.Zipf(10, 1.0);
    ASSERT_GE(r, 1);
    ASSERT_LE(r, 10);
    ++counts[static_cast<size_t>(r)];
  }
  EXPECT_GT(counts[1], counts[5]);
  EXPECT_GT(counts[1], counts[10]);
}

TEST(RngTest, WeightedIndexFollowsWeights) {
  Rng rng(12);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 40000; ++i) ++counts[rng.WeightedIndex(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.25);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(13);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, SampleIndicesDistinctAndBounded) {
  Rng rng(14);
  const auto sample = rng.SampleIndices(100, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (size_t idx : sample) EXPECT_LT(idx, 100u);
}

TEST(RngTest, SampleIndicesClampsToN) {
  Rng rng(15);
  EXPECT_EQ(rng.SampleIndices(5, 50).size(), 5u);
}

TEST(RngTest, ForkProducesIndependentStreams) {
  Rng parent(16);
  Rng child1 = parent.Fork();
  Rng child2 = parent.Fork();
  // The two children and the parent should all disagree.
  EXPECT_NE(child1.Next64(), child2.Next64());
  EXPECT_NE(child1.Next64(), parent.Next64());
}

TEST(RngTest, LogNormalIsPositive) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.LogNormal(0.0, 1.0), 0.0);
}

}  // namespace
}  // namespace lightor::common
