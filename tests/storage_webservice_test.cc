#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "core/evaluation.h"
#include "sim/bridge.h"
#include "sim/corpus.h"
#include "storage/web_service.h"

namespace lightor::storage {
namespace {

class WebServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("lightor_ws_test_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    std::filesystem::remove_all(dir_);

    sim::Platform::Options popts;
    popts.num_channels = 2;
    popts.videos_per_channel = 2;
    popts.seed = 61;
    platform_ = std::make_unique<sim::Platform>(popts);

    auto db = Database::Open(dir_);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();

    // Train the pipeline on an out-of-platform corpus video.
    const auto corpus = sim::MakeCorpus(sim::GameType::kDota2, 1, 62);
    core::TrainingVideo tv;
    tv.messages = sim::ToCoreMessages(corpus[0].chat);
    tv.video_length = corpus[0].truth.meta.length;
    for (const auto& h : corpus[0].truth.highlights) {
      tv.highlights.push_back(h.span);
    }
    lightor_ = std::make_unique<core::Lightor>();
    ASSERT_TRUE(lightor_->TrainInitializer({tv}).ok());

    service_ = std::make_unique<WebService>(platform_.get(), db_.get(),
                                            lightor_.get(), 5);
    video_id_ = platform_->AllVideoIds()[0];
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
  std::unique_ptr<sim::Platform> platform_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<core::Lightor> lightor_;
  std::unique_ptr<WebService> service_;
  std::string video_id_;
};

TEST_F(WebServiceTest, FirstVisitCrawlsAndInitializes) {
  EXPECT_FALSE(db_->chat().HasVideo(video_id_));
  auto dots = service_->OnPageVisit(video_id_);
  ASSERT_TRUE(dots.ok());
  EXPECT_FALSE(dots.value().empty());
  EXPECT_LE(dots.value().size(), 5u);
  EXPECT_TRUE(db_->chat().HasVideo(video_id_));
  EXPECT_TRUE(db_->highlights().HasVideo(video_id_));
}

TEST_F(WebServiceTest, SecondVisitServedFromStore) {
  auto first = service_->OnPageVisit(video_id_);
  ASSERT_TRUE(first.ok());
  const size_t chat_records = db_->chat().TotalRecords();
  auto second = service_->OnPageVisit(video_id_);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(db_->chat().TotalRecords(), chat_records);  // no re-crawl
  ASSERT_EQ(second.value().size(), first.value().size());
  EXPECT_DOUBLE_EQ(second.value()[0].dot_position,
                   first.value()[0].dot_position);
}

TEST_F(WebServiceTest, MetricsPageReflectsTraffic) {
  ASSERT_TRUE(service_->OnPageVisit(video_id_).ok());
  const std::string page = service_->MetricsPage();
  EXPECT_NE(page.find("# TYPE lightor_web_page_visits_total counter"),
            std::string::npos);
  EXPECT_NE(page.find("lightor_web_dot_cache_total{outcome=\"miss\"}"),
            std::string::npos);
  EXPECT_NE(page.find("lightor_storage_chat_cache_total"), std::string::npos);
}

TEST_F(WebServiceTest, UnknownVideoIsNotFound) {
  EXPECT_TRUE(service_->OnPageVisit("missing").status().IsNotFound());
  EXPECT_TRUE(service_->GetHighlights("missing").status().IsNotFound());
  EXPECT_TRUE(service_->Refine("missing").status().IsNotFound());
}

TEST_F(WebServiceTest, FullDeploymentLoopRefinesDots) {
  auto dots = service_->OnPageVisit(video_id_);
  ASSERT_TRUE(dots.ok());
  const auto video = platform_->GetVideo(video_id_).value();

  sim::ViewerSimulator viewers;
  common::Rng rng(63);
  uint64_t session_id = 0;
  // Three rounds of: viewers interact around the published dots -> the
  // service refines.
  for (int round = 0; round < 3; ++round) {
    const auto current = service_->GetHighlights(video_id_).value();
    for (const auto& dot : current) {
      for (int u = 0; u < 10; ++u) {
        const auto session = viewers.SimulateSession(
            video.truth, dot.dot_position, rng,
            "w" + std::to_string(session_id));
        ASSERT_TRUE(service_
                        ->LogSession(video_id_, session.user, ++session_id,
                                     session.events)
                        .ok());
      }
    }
    auto updated = service_->Refine(video_id_);
    ASSERT_TRUE(updated.ok());
    EXPECT_GT(updated.value(), 0);
  }

  const auto refined = service_->GetHighlights(video_id_).value();
  std::vector<common::Interval> truth;
  for (const auto& h : video.truth.highlights) truth.push_back(h.span);
  std::vector<double> starts;
  int iterations_advanced = 0;
  for (const auto& dot : refined) {
    starts.push_back(dot.start);
    if (dot.iteration > 0) ++iterations_advanced;
  }
  EXPECT_GT(iterations_advanced, 0);
  EXPECT_GT(core::VideoPrecisionStart(starts, truth), 0.4);
}

TEST_F(WebServiceTest, RefineConsumesWatermarkedInteractionsOnly) {
  ASSERT_TRUE(service_->OnPageVisit(video_id_).ok());
  const auto video = platform_->GetVideo(video_id_).value();
  sim::ViewerSimulator viewers;
  common::Rng rng(64);
  const auto dots = service_->GetHighlights(video_id_).value();
  for (int u = 0; u < 8; ++u) {
    const auto session = viewers.SimulateSession(
        video.truth, dots[0].dot_position, rng, "w");
    ASSERT_TRUE(service_->LogSession(video_id_, "w", 1000 + u,
                                     session.events)
                    .ok());
  }
  ASSERT_TRUE(service_->Refine(video_id_).ok());
  // Immediately refining again sees no new interactions: nothing updates.
  auto second = service_->Refine(video_id_);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value(), 0);
}

}  // namespace
}  // namespace lightor::storage
