#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "core/evaluation.h"
#include "serving/web_service.h"
#include "sim/bridge.h"
#include "sim/corpus.h"
#include "storage/database.h"

namespace lightor::serving {
namespace {

class WebServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("lightor_ws_test_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    std::filesystem::remove_all(dir_);

    sim::Platform::Options popts;
    popts.num_channels = 2;
    popts.videos_per_channel = 2;
    popts.seed = 61;
    platform_ = std::make_unique<sim::Platform>(popts);

    auto db = storage::DB::Open(storage::OpenOptions(dir_));
    ASSERT_TRUE(db.ok());
    db_ = std::move(db.value().db);

    // Train the pipeline on an out-of-platform corpus video.
    const auto corpus = sim::MakeCorpus(sim::GameType::kDota2, 1, 62);
    core::TrainingVideo tv;
    tv.messages = sim::ToCoreMessages(corpus[0].chat);
    tv.video_length = corpus[0].truth.meta.length;
    for (const auto& h : corpus[0].truth.highlights) {
      tv.highlights.push_back(h.span);
    }
    lightor_ = std::make_unique<core::Lightor>();
    ASSERT_TRUE(lightor_->TrainInitializer({tv}).ok());

    ServerOptions opts;
    opts.platform = Borrow<const sim::Platform>(platform_.get());
    opts.db = Borrow(db_.get());
    opts.lightor = Borrow<const core::Lightor>(lightor_.get());
    opts.top_k = 5;
    service_ = std::make_unique<WebService>(opts);
    video_id_ = platform_->AllVideoIds()[0];
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  common::Status LogSessionFor(const std::string& user, uint64_t session_id,
                               std::vector<sim::InteractionEvent> events) {
    LogSessionRequest req;
    req.video_id = video_id_;
    req.user = user;
    req.session_id = session_id;
    req.events = std::move(events);
    return service_->LogSession(req);
  }

  std::string dir_;
  std::unique_ptr<sim::Platform> platform_;
  std::unique_ptr<storage::Database> db_;
  std::unique_ptr<core::Lightor> lightor_;
  std::unique_ptr<WebService> service_;
  std::string video_id_;
};

TEST_F(WebServiceTest, OptionsAreValidated) {
  ServerOptions opts;
  EXPECT_TRUE(opts.Validate().IsInvalidArgument());  // null deps
  opts.platform = Borrow<const sim::Platform>(platform_.get());
  opts.db = Borrow(db_.get());
  opts.lightor = Borrow<const core::Lightor>(lightor_.get());
  EXPECT_TRUE(opts.Validate().ok());
  opts.top_k = 0;
  EXPECT_TRUE(opts.Validate().IsInvalidArgument());
}

TEST_F(WebServiceTest, FirstVisitCrawlsAndInitializes) {
  EXPECT_FALSE(db_->chat().HasVideo(video_id_));
  auto visit = service_->OnPageVisit({video_id_, "u"});
  ASSERT_TRUE(visit.ok());
  EXPECT_TRUE(visit.value().first_visit);
  EXPECT_FALSE(visit.value().highlights.empty());
  EXPECT_LE(visit.value().highlights.size(), 5u);
  EXPECT_TRUE(db_->chat().HasVideo(video_id_));
  EXPECT_TRUE(db_->highlights().HasVideo(video_id_));
}

TEST_F(WebServiceTest, SecondVisitServedFromStore) {
  auto first = service_->OnPageVisit({video_id_, "u"});
  ASSERT_TRUE(first.ok());
  const size_t chat_records = db_->chat().TotalRecords();
  auto second = service_->OnPageVisit({video_id_, "u"});
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second.value().first_visit);
  EXPECT_EQ(db_->chat().TotalRecords(), chat_records);  // no re-crawl
  ASSERT_EQ(second.value().highlights.size(), first.value().highlights.size());
  EXPECT_DOUBLE_EQ(second.value().highlights[0].dot_position,
                   first.value().highlights[0].dot_position);
}

TEST_F(WebServiceTest, MetricsPageReflectsTraffic) {
  ASSERT_TRUE(service_->OnPageVisit({video_id_, "u"}).ok());
  const std::string page = service_->MetricsPage();
  EXPECT_NE(page.find("# TYPE lightor_web_page_visits_total counter"),
            std::string::npos);
  EXPECT_NE(page.find("lightor_web_dot_cache_total{outcome=\"miss\","
                      "server=\"reference\"}"),
            std::string::npos);
  EXPECT_NE(page.find("lightor_storage_chat_cache_total"), std::string::npos);
}

TEST_F(WebServiceTest, UnknownVideoIsNotFound) {
  EXPECT_TRUE(service_->OnPageVisit({"missing", "u"}).status().IsNotFound());
  EXPECT_TRUE(service_->GetHighlights("missing").status().IsNotFound());
  EXPECT_TRUE(service_->Refine("missing").status().IsNotFound());
}

TEST_F(WebServiceTest, FullDeploymentLoopRefinesDots) {
  auto visit = service_->OnPageVisit({video_id_, "u"});
  ASSERT_TRUE(visit.ok());
  const auto video = platform_->GetVideo(video_id_).value();

  sim::ViewerSimulator viewers;
  common::Rng rng(63);
  uint64_t session_id = 0;
  // Three rounds of: viewers interact around the published dots -> the
  // service refines.
  for (int round = 0; round < 3; ++round) {
    const auto current = service_->GetHighlights(video_id_).value();
    for (const auto& dot : current.highlights) {
      for (int u = 0; u < 10; ++u) {
        const auto session = viewers.SimulateSession(
            video.truth, dot.dot_position, rng,
            "w" + std::to_string(session_id));
        ASSERT_TRUE(
            LogSessionFor(session.user, ++session_id, session.events).ok());
      }
    }
    auto report = service_->Refine(video_id_);
    ASSERT_TRUE(report.ok());
    EXPECT_GT(report.value().dots_updated, 0);
    EXPECT_GT(report.value().sessions_consumed, 0u);
    // The per-dot outcomes line up with the updated count.
    int updated = 0;
    for (const auto& dot : report.value().dots) {
      EXPECT_TRUE(dot.status.ok());
      if (dot.updated) ++updated;
    }
    EXPECT_EQ(updated, report.value().dots_updated);
  }

  const auto refined = service_->GetHighlights(video_id_).value();
  std::vector<common::Interval> truth;
  for (const auto& h : video.truth.highlights) truth.push_back(h.span);
  std::vector<double> starts;
  int iterations_advanced = 0;
  for (const auto& dot : refined.highlights) {
    starts.push_back(dot.start);
    if (dot.iteration > 0) ++iterations_advanced;
  }
  EXPECT_GT(iterations_advanced, 0);
  EXPECT_GT(core::VideoPrecisionStart(starts, truth), 0.4);
}

TEST_F(WebServiceTest, RefineConsumesWatermarkedInteractionsOnly) {
  ASSERT_TRUE(service_->OnPageVisit({video_id_, "u"}).ok());
  const auto video = platform_->GetVideo(video_id_).value();
  sim::ViewerSimulator viewers;
  common::Rng rng(64);
  const auto dots = service_->GetHighlights(video_id_).value();
  for (int u = 0; u < 8; ++u) {
    const auto session = viewers.SimulateSession(
        video.truth, dots.highlights[0].dot_position, rng, "w");
    ASSERT_TRUE(LogSessionFor("w", 1000 + u, session.events).ok());
  }
  ASSERT_TRUE(service_->Refine(video_id_).ok());
  // Immediately refining again sees no new interactions: nothing updates.
  auto second = service_->Refine(video_id_);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().dots_updated, 0);
  EXPECT_EQ(second.value().sessions_consumed, 0u);
}

TEST_F(WebServiceTest, RestartSeedsWatermarkFromDb) {
  ASSERT_TRUE(service_->OnPageVisit({video_id_, "u"}).ok());
  const auto video = platform_->GetVideo(video_id_).value();
  sim::ViewerSimulator viewers;
  common::Rng rng(65);
  const auto dots = service_->GetHighlights(video_id_).value();
  for (int u = 0; u < 8; ++u) {
    const auto session = viewers.SimulateSession(
        video.truth, dots.highlights[0].dot_position, rng, "w");
    ASSERT_TRUE(LogSessionFor("w", 2000 + u, session.events).ok());
  }
  ASSERT_TRUE(service_->Refine(video_id_).ok());

  // A "restarted" service over the same database must not re-consume the
  // sessions the first instance already refined on.
  ServerOptions opts;
  opts.platform = Borrow<const sim::Platform>(platform_.get());
  opts.db = Borrow(db_.get());
  opts.lightor = Borrow<const core::Lightor>(lightor_.get());
  WebService restarted(opts);
  auto report = restarted.Refine(video_id_);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().sessions_consumed, 0u);
  EXPECT_EQ(report.value().dots_updated, 0);

  // New sessions logged after the restart are still picked up.
  for (int u = 0; u < 8; ++u) {
    const auto session = viewers.SimulateSession(
        video.truth, dots.highlights[0].dot_position, rng, "w2");
    LogSessionRequest req;
    req.video_id = video_id_;
    req.user = "w2";
    req.session_id = 3000 + u;
    req.events = session.events;
    ASSERT_TRUE(restarted.LogSession(req).ok());
  }
  auto next = restarted.Refine(video_id_);
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next.value().sessions_consumed, 8u);
}

}  // namespace
}  // namespace lightor::serving
