#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/trace.h"

namespace lightor::obs {
namespace {

// Tests use a private recorder instance so they don't race the global one.

TEST(ObsTraceTest, SpansRecordWithNesting) {
  TraceRecorder recorder(16);
  {
    ScopedSpan outer("outer", "test", &recorder);
    {
      ScopedSpan inner("inner", "test", &recorder);
    }
  }
  const std::vector<TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 2u);
  // Children complete (and therefore record) before their parent.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_EQ(events[0].depth, 1u);
  EXPECT_EQ(events[1].depth, 0u);
  EXPECT_EQ(events[0].thread_id, events[1].thread_id);
  // The child's interval nests inside the parent's.
  EXPECT_GE(events[0].start_us, events[1].start_us);
  EXPECT_LE(events[0].start_us + events[0].duration_us,
            events[1].start_us + events[1].duration_us);
}

TEST(ObsTraceTest, SequenceIsCompletionOrder) {
  TraceRecorder recorder(8);
  { ScopedSpan a("a", "test", &recorder); }
  { ScopedSpan b("b", "test", &recorder); }
  const auto events = recorder.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_LT(events[0].sequence, events[1].sequence);
  EXPECT_EQ(events[0].name, "a");
}

TEST(ObsTraceTest, RingWrapsOldestFirstAndCountsDropped) {
  TraceRecorder recorder(4);
  for (int i = 0; i < 10; ++i) {
    ScopedSpan span("span" + std::to_string(i), "test", &recorder);
  }
  EXPECT_EQ(recorder.size(), 4u);
  EXPECT_EQ(recorder.total_recorded(), 10u);
  EXPECT_EQ(recorder.dropped(), 6u);
  const auto events = recorder.Events();
  ASSERT_EQ(events.size(), 4u);
  // The four youngest, oldest-first.
  EXPECT_EQ(events[0].name, "span6");
  EXPECT_EQ(events[3].name, "span9");
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].sequence, events[i].sequence);
  }
}

// The invariant the ring must preserve across wrap: for any two retained
// same-thread events that overlap in time, the deeper one lies inside the
// shallower one. Because children always record before parents, the
// oldest-first overwrite drops ancestors before descendants and can never
// leave a dangling child-outside-parent pair.
TEST(ObsTraceTest, WrapPreservesNestingInvariant) {
  TraceRecorder recorder(6);
  for (int i = 0; i < 5; ++i) {
    ScopedSpan a("a" + std::to_string(i), "test", &recorder);
    {
      ScopedSpan b("b" + std::to_string(i), "test", &recorder);
      { ScopedSpan c("c" + std::to_string(i), "test", &recorder); }
    }
  }
  const auto events = recorder.Events();
  ASSERT_EQ(events.size(), 6u);
  for (const auto& x : events) {
    for (const auto& y : events) {
      if (&x == &y || x.thread_id != y.thread_id) continue;
      if (x.depth <= y.depth) continue;
      const uint64_t x_end = x.start_us + x.duration_us;
      const uint64_t y_end = y.start_us + y.duration_us;
      const bool overlap = x.start_us < y_end && y.start_us < x_end;
      if (!overlap) continue;
      // x is deeper and overlaps y: x must be fully inside y.
      EXPECT_GE(x.start_us, y.start_us);
      EXPECT_LE(x_end, y_end);
    }
  }
}

TEST(ObsTraceTest, SetCapacityClears) {
  TraceRecorder recorder(4);
  { ScopedSpan a("a", "test", &recorder); }
  recorder.SetCapacity(2);
  EXPECT_EQ(recorder.size(), 0u);
  EXPECT_EQ(recorder.capacity(), 2u);
  { ScopedSpan b("b", "test", &recorder); }
  { ScopedSpan c("c", "test", &recorder); }
  { ScopedSpan d("d", "test", &recorder); }
  EXPECT_EQ(recorder.size(), 2u);
  EXPECT_EQ(recorder.Events()[1].name, "d");
}

TEST(ObsTraceTest, DisabledRecorderRecordsNothing) {
  TraceRecorder recorder(4);
  recorder.set_enabled(false);
  { ScopedSpan a("a", "test", &recorder); }
  EXPECT_EQ(recorder.size(), 0u);
  recorder.set_enabled(true);
  { ScopedSpan b("b", "test", &recorder); }
  EXPECT_EQ(recorder.size(), 1u);
}

TEST(ObsTraceTest, ChromeDumpIsWellFormed) {
  TraceRecorder recorder(8);
  {
    ScopedSpan outer("outer \"quoted\"", "test", &recorder);
    { ScopedSpan inner("inner", "test", &recorder); }
  }
  const std::string json = recorder.DumpChromeTrace();
  // The JSON-array form: complete events with the required keys.
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"inner\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"outer \\\"quoted\\\"\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":"), std::string::npos);
  // Balanced structure.
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char ch = json[i];
    if (in_string) {
      if (ch == '\\') ++i;
      else if (ch == '"') in_string = false;
      continue;
    }
    if (ch == '"') in_string = true;
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST(ObsTraceTest, TimerObservesIntoHistogram) {
  Histogram h({0.5, 1.0});
  { ScopedTimer timer(&h); }
  EXPECT_EQ(h.count(), 1u);
  { ScopedTimer timer(nullptr); }  // must be a safe no-op
}

TEST(ObsTraceTest, ThreadIdsAreDense) {
  const uint32_t here = TraceThreadId();
  EXPECT_EQ(TraceThreadId(), here);  // stable per thread
}

}  // namespace
}  // namespace lightor::obs
