#include <gtest/gtest.h>

#include "core/window.h"

namespace lightor::core {
namespace {

std::vector<Message> MessagesAt(const std::vector<double>& times) {
  std::vector<Message> out;
  for (double t : times) {
    Message m;
    m.timestamp = t;
    m.user = "u";
    m.text = "hi";
    out.push_back(m);
  }
  return out;
}

TEST(WindowTest, MessagesSortedCheck) {
  EXPECT_TRUE(MessagesSorted(MessagesAt({1, 2, 3})));
  EXPECT_FALSE(MessagesSorted(MessagesAt({3, 2})));
  EXPECT_TRUE(MessagesSorted({}));
}

TEST(WindowTest, CandidateWindowsCoverMessages) {
  const auto messages = MessagesAt({5, 6, 30, 31, 32, 90});
  WindowOptions opts;
  opts.size = 25.0;
  opts.stride = 25.0;
  const auto windows = GenerateCandidateWindows(messages, 100.0, opts);
  // Non-overlapping stride: [0,25) holds 2, [25,50) holds 3, [75,100) 1.
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_EQ(windows[0].message_count(), 2u);
  EXPECT_EQ(windows[1].message_count(), 3u);
  EXPECT_EQ(windows[2].message_count(), 1u);
}

TEST(WindowTest, EmptyWindowsDropped) {
  const auto messages = MessagesAt({5.0});
  WindowOptions opts;
  opts.size = 10.0;
  opts.stride = 10.0;
  const auto windows = GenerateCandidateWindows(messages, 100.0, opts);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_DOUBLE_EQ(windows[0].span.start, 0.0);
}

TEST(WindowTest, LastWindowClampedToVideoLength) {
  const auto messages = MessagesAt({98.0});
  WindowOptions opts;
  opts.size = 25.0;
  opts.stride = 25.0;
  const auto windows = GenerateCandidateWindows(messages, 100.0, opts);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_LE(windows[0].span.end, 100.0);
}

TEST(WindowTest, DeduplicateKeepsDenserWindow) {
  // Overlapping candidates at stride < size: the densest must win.
  const auto messages = MessagesAt({10, 11, 12, 13, 20, 21});
  WindowOptions opts;
  opts.size = 20.0;
  opts.stride = 10.0;
  auto candidates = GenerateCandidateWindows(messages, 60.0, opts);
  const auto kept = DeduplicateOverlapping(candidates);
  // Kept windows must be mutually non-overlapping (touching at a
  // boundary point is allowed).
  for (size_t i = 1; i < kept.size(); ++i) {
    EXPECT_DOUBLE_EQ(kept[i].span.OverlapLength(kept[i - 1].span), 0.0);
  }
  // The window containing 4 messages ([0,20) or [10,30)) must survive.
  size_t max_count = 0;
  for (const auto& w : kept) max_count = std::max(max_count, w.message_count());
  EXPECT_GE(max_count, 4u);
}

TEST(WindowTest, DeduplicateReturnsSortedByStart) {
  const auto messages = MessagesAt({10, 50, 90, 91, 92});
  WindowOptions opts;
  opts.size = 20.0;
  opts.stride = 10.0;
  const auto kept =
      DeduplicateOverlapping(GenerateCandidateWindows(messages, 120.0, opts));
  for (size_t i = 1; i < kept.size(); ++i) {
    EXPECT_LT(kept[i - 1].span.start, kept[i].span.start);
  }
}

TEST(WindowTest, GenerateWindowsComposes) {
  const auto messages = MessagesAt({10, 11, 40, 41, 42});
  WindowOptions opts;
  const auto windows = GenerateWindows(messages, 100.0, opts);
  EXPECT_FALSE(windows.empty());
  for (size_t i = 1; i < windows.size(); ++i) {
    EXPECT_DOUBLE_EQ(windows[i].span.OverlapLength(windows[i - 1].span), 0.0);
  }
}

TEST(FindMessagePeakTest, FindsDensestSecond) {
  // Cluster at ~42 s, sparse elsewhere.
  const auto messages =
      MessagesAt({10, 20, 41.2, 41.5, 41.9, 42.1, 42.4, 42.8, 60});
  const double peak = FindMessagePeak(messages, common::Interval(0, 80));
  EXPECT_NEAR(peak, 42.0, 3.0);
}

TEST(FindMessagePeakTest, EmptyRangeFallsBackToCenter) {
  const auto messages = MessagesAt({10.0});
  const double peak = FindMessagePeak(messages, common::Interval(50, 70));
  EXPECT_DOUBLE_EQ(peak, 60.0);
}

TEST(FindMessagePeakTest, DegenerateSpan) {
  const auto messages = MessagesAt({10.0});
  EXPECT_DOUBLE_EQ(FindMessagePeak(messages, common::Interval(5, 5)), 5.0);
}

TEST(FindMessagePeakTest, PeakInsideSpanBounds) {
  const auto messages = MessagesAt({10, 10.1, 10.2, 30, 30.1, 30.2, 30.3});
  const common::Interval span(25.0, 35.0);
  const double peak = FindMessagePeak(messages, span);
  EXPECT_GE(peak, span.start);
  EXPECT_LE(peak, span.end);
  EXPECT_NEAR(peak, 30.3, 2.5);
}

}  // namespace
}  // namespace lightor::core
