/// Multi-threaded stress test of the concurrent HighlightServer: 8 client
/// threads drive mixed traffic (page visits, session uploads, snapshot
/// reads, explicit refines) over 16 videos. Checks afterwards:
///
///   * no lost sessions — every interaction event accepted by LogSession
///     is in the database;
///   * snapshot-consistent reads — every response is a coherent
///     highlight set (one video, unique dot indices) with per-video
///     monotonically non-decreasing versions per client;
///   * the drain consumes every pending batch before shutdown.
///
/// ci.sh also runs this binary under ThreadSanitizer
/// (-DLIGHTOR_SANITIZE=thread); keep the workload modest so that build
/// stays fast on small machines.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "serving/highlight_server.h"
#include "sim/bridge.h"
#include "sim/corpus.h"
#include "sim/viewer_simulator.h"
#include "storage/database.h"

namespace lightor::serving {
namespace {

constexpr int kThreads = 8;
constexpr int kRoundsPerThread = 6;

TEST(ServingStressTest, ConcurrentMixedTrafficIsLossless) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "lightor_serving_stress")
          .string();
  std::filesystem::remove_all(dir);

  // 4 channels x 4 videos = 16 videos spread over the shards.
  sim::Platform::Options popts;
  popts.num_channels = 4;
  popts.videos_per_channel = 4;
  popts.seed = 81;
  const sim::Platform platform(popts);

  const auto corpus = sim::MakeCorpus(sim::GameType::kDota2, 1, 82);
  core::TrainingVideo tv;
  tv.messages = sim::ToCoreMessages(corpus[0].chat);
  tv.video_length = corpus[0].truth.meta.length;
  for (const auto& h : corpus[0].truth.highlights) {
    tv.highlights.push_back(h.span);
  }
  core::Lightor lightor;
  ASSERT_TRUE(lightor.TrainInitializer({tv}).ok());

  auto opened = storage::DB::Open(storage::OpenOptions(dir));
  ASSERT_TRUE(opened.ok());
  auto db = std::move(opened.value().db);

  ServerOptions opts;
  opts.platform = Borrow(&platform);
  opts.db = Borrow(db.get());
  opts.lightor = Borrow<const core::Lightor>(&lightor);
  opts.num_shards = 8;
  opts.num_workers = 2;
  opts.refine_batch_sessions = 4;
  opts.max_queue_depth = 32;
  auto created = HighlightServer::Create(opts);
  ASSERT_TRUE(created.ok());
  HighlightServer& server = *created.value();

  const auto ids = platform.AllVideoIds();
  ASSERT_GE(ids.size(), 16u);

  std::atomic<uint64_t> next_session_id{0};
  std::atomic<uint64_t> events_logged{0};
  std::atomic<int> failures{0};

  auto client = [&](int thread_index) {
    sim::ViewerSimulator viewers;
    common::Rng rng(1000 + static_cast<uint64_t>(thread_index));
    // Per-video last-seen snapshot version; reads must never go back.
    std::unordered_map<std::string, uint64_t> last_version;
    for (int round = 0; round < kRoundsPerThread; ++round) {
      const auto& video_id =
          ids[static_cast<size_t>((thread_index + round * 3)) % ids.size()];
      const auto visit = server.OnPageVisit({video_id, "stress"});
      if (!visit.ok()) {
        ++failures;
        continue;
      }
      const auto video = platform.GetVideo(video_id);
      if (!video.ok()) {
        ++failures;
        continue;
      }

      // Snapshot consistency of the visit response.
      std::unordered_set<int32_t> indices;
      for (const auto& rec : visit.value().highlights) {
        if (rec.video_id != video_id) ++failures;
        if (!indices.insert(rec.dot_index).second) ++failures;
      }

      // Upload a few sessions around the published dots.
      for (const auto& rec : visit.value().highlights) {
        const auto session = viewers.SimulateSession(
            video.value().truth, rec.dot_position, rng,
            "t" + std::to_string(thread_index));
        LogSessionRequest log;
        log.video_id = video_id;
        log.user = session.user;
        log.session_id = 1 + next_session_id.fetch_add(1);
        log.events = session.events;
        if (server.LogSession(log).ok()) {
          events_logged.fetch_add(log.events.size());
        } else {
          ++failures;
        }
      }

      // Mixed read/refine traffic on top of the background workers.
      if (round % 3 == 2) {
        if (!server.Refine(video_id).ok()) ++failures;
      }
      const auto read = server.GetHighlights(video_id);
      if (!read.ok()) {
        ++failures;
        continue;
      }
      indices.clear();
      for (const auto& rec : read.value().highlights) {
        if (rec.video_id != video_id) ++failures;
        if (!indices.insert(rec.dot_index).second) ++failures;
      }
      uint64_t& seen = last_version[video_id];
      if (read.value().snapshot_version < seen) ++failures;
      seen = read.value().snapshot_version;
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(client, t);
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(failures.load(), 0);

  // Drain everything that is still pending, then stop the workers.
  server.Shutdown();

  // No lost sessions: every accepted interaction event is in the store.
  EXPECT_EQ(db->interactions().TotalRecords(), events_logged.load());

  // Every visited video ends with a coherent persisted highlight set.
  for (const auto& video_id : ids) {
    const auto read = server.GetHighlights(video_id);
    if (!read.ok()) continue;  // never visited by any thread
    std::unordered_set<int32_t> indices;
    for (const auto& rec : read.value().highlights) {
      EXPECT_EQ(rec.video_id, video_id);
      EXPECT_TRUE(indices.insert(rec.dot_index).second);
    }
    EXPECT_EQ(db->highlights().GetLatest(video_id).size(),
              read.value().highlights.size());
  }

  std::filesystem::remove_all(dir);
}

/// Shutdown while clients are still sending: late requests are rejected
/// with FailedPrecondition, nothing crashes, and accepted sessions are
/// still never lost.
TEST(ServingStressTest, ShutdownRacesWithClients) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       "lightor_serving_stress_shutdown")
          .string();
  std::filesystem::remove_all(dir);

  sim::Platform::Options popts;
  popts.num_channels = 2;
  popts.videos_per_channel = 2;
  popts.seed = 91;
  const sim::Platform platform(popts);

  const auto corpus = sim::MakeCorpus(sim::GameType::kDota2, 1, 92);
  core::TrainingVideo tv;
  tv.messages = sim::ToCoreMessages(corpus[0].chat);
  tv.video_length = corpus[0].truth.meta.length;
  for (const auto& h : corpus[0].truth.highlights) {
    tv.highlights.push_back(h.span);
  }
  core::Lightor lightor;
  ASSERT_TRUE(lightor.TrainInitializer({tv}).ok());

  auto opened = storage::DB::Open(storage::OpenOptions(dir));
  ASSERT_TRUE(opened.ok());
  auto db = std::move(opened.value().db);

  ServerOptions opts;
  opts.platform = Borrow(&platform);
  opts.db = Borrow(db.get());
  opts.lightor = Borrow<const core::Lightor>(&lightor);
  opts.refine_batch_sessions = 2;
  auto created = HighlightServer::Create(opts);
  ASSERT_TRUE(created.ok());
  HighlightServer& server = *created.value();

  const auto ids = platform.AllVideoIds();
  for (const auto& video_id : ids) {
    ASSERT_TRUE(server.OnPageVisit({video_id, "warm"}).ok());
  }

  std::atomic<uint64_t> events_accepted{0};
  std::atomic<bool> saw_rejection{false};
  auto client = [&](int thread_index) {
    sim::ViewerSimulator viewers;
    common::Rng rng(2000 + static_cast<uint64_t>(thread_index));
    for (int i = 0; i < 40; ++i) {
      const auto& video_id =
          ids[static_cast<size_t>(thread_index + i) % ids.size()];
      const auto video = platform.GetVideo(video_id).value();
      const auto dots = server.GetHighlights(video_id);
      if (!dots.ok() || dots.value().highlights.empty()) continue;
      const auto session = viewers.SimulateSession(
          video.truth, dots.value().highlights[0].dot_position, rng, "x");
      LogSessionRequest log;
      log.video_id = video_id;
      log.user = session.user;
      log.session_id = static_cast<uint64_t>(thread_index) * 1000 +
                       static_cast<uint64_t>(i) + 1;
      log.events = session.events;
      const auto status = server.LogSession(log);
      if (status.ok()) {
        events_accepted.fetch_add(log.events.size());
      } else if (status.IsFailedPrecondition()) {
        saw_rejection.store(true);
        break;  // server is shutting down; a real client would too
      }
    }
  };

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) threads.emplace_back(client, t);
  server.Shutdown();  // races with the clients above
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(db->interactions().TotalRecords(),
            events_accepted.load());
  (void)saw_rejection;  // timing-dependent; either outcome is valid

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace lightor::serving
