#ifndef LIGHTOR_TESTS_TEST_STACK_H_
#define LIGHTOR_TESTS_TEST_STACK_H_

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>

#include "core/lightor.h"
#include "serving/highlight_server.h"
#include "sim/bridge.h"
#include "sim/corpus.h"
#include "sim/platform.h"
#include "storage/database.h"

namespace lightor::testutil {

/// A self-contained HighlightServer stack for HTTP-level tests: small
/// deterministic platform (2 channels x 2 videos, seed 7), fresh
/// database in `db_dir`, corpus-trained Lightor, per-append WAL flushes
/// (batched_session_flush off) so every /session is durable on ack —
/// the property cluster crash tests rely on.
struct ServingStack {
  std::unique_ptr<sim::Platform> platform;
  std::unique_ptr<storage::Database> db;
  std::unique_ptr<core::Lightor> lightor;
  std::unique_ptr<serving::HighlightServer> server;
};

/// `tweak`, when non-null, runs over the assembled ServerOptions before
/// Create — the hook HTTP-level tests use to turn on live-ingest
/// admission budgets, scheduler workers, or an injectable clock.
inline ServingStack MakeServingStack(
    const std::string& db_dir,
    const std::function<void(serving::ServerOptions&)>& tweak) {
  ServingStack stack;
  sim::Platform::Options popts;
  popts.num_channels = 2;
  popts.videos_per_channel = 2;
  popts.seed = 7;
  stack.platform = std::make_unique<sim::Platform>(popts);
  auto db = storage::DB::Open(storage::OpenOptions(db_dir));
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  stack.db = std::move(db.value().db);

  const auto corpus = sim::MakeCorpus(sim::GameType::kDota2, 1, 1007);
  core::TrainingVideo tv;
  tv.messages = sim::ToCoreMessages(corpus[0].chat);
  tv.video_length = corpus[0].truth.meta.length;
  for (const auto& h : corpus[0].truth.highlights) {
    tv.highlights.push_back(h.span);
  }
  stack.lightor = std::make_unique<core::Lightor>(core::LightorOptions{});
  EXPECT_TRUE(stack.lightor->TrainInitializer({tv}).ok());

  serving::ServerOptions sopts;
  sopts.platform = serving::Borrow(
      static_cast<const sim::Platform*>(stack.platform.get()));
  sopts.db = serving::Borrow(stack.db.get());
  sopts.lightor = serving::Borrow(
      static_cast<const core::Lightor*>(stack.lightor.get()));
  sopts.num_workers = 2;
  sopts.refine_batch_sessions = 0;
  sopts.batched_session_flush = false;
  if (tweak) tweak(sopts);
  auto server = serving::HighlightServer::Create(sopts);
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  stack.server = std::move(server).value();
  return stack;
}

inline ServingStack MakeServingStack(const std::string& db_dir) {
  return MakeServingStack(db_dir, nullptr);
}

}  // namespace lightor::testutil

#endif  // LIGHTOR_TESTS_TEST_STACK_H_
