#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "storage/checkpoint.h"
#include "storage/database.h"
#include "testing/fault_env.h"

namespace lightor::storage {
namespace {

namespace ft = lightor::testing;

ChatRecord MakeChat(int i) {
  ChatRecord rec;
  rec.video_id = "v" + std::to_string(i % 2);
  rec.timestamp = static_cast<double>(i);
  rec.user = "chatter";
  rec.text = "msg " + std::to_string(i);
  return rec;
}

InteractionRecord MakeInteraction(const std::string& video, uint64_t id) {
  InteractionRecord rec;
  rec.video_id = video;
  rec.user = "u" + std::to_string(id);
  rec.session_id = id;
  rec.event = StoredInteraction::kPlay;
  rec.wall_time = static_cast<double>(id);
  rec.position = 10.0 * static_cast<double>(id);
  rec.target = 5.0;
  return rec;
}

HighlightRecord MakeHighlight(const std::string& video, int dot,
                              int32_t iteration) {
  HighlightRecord rec;
  rec.video_id = video;
  rec.dot_index = dot;
  rec.iteration = iteration;
  rec.dot_position = 7.0 * dot + iteration;
  rec.start = rec.dot_position - 1.0;
  rec.end = rec.dot_position + 1.0;
  rec.score = 0.5;
  return rec;
}

/// Normalized full-state dump: every chat record, every interaction with
/// its generation, every latest highlight, plus the LSN and generation
/// counter. Byte-equal dumps mean byte-equal served state.
std::string Dump(Database& db) {
  std::string out;
  db.chat().ForEach([&](const ChatRecord& rec) {
    const auto bytes = rec.Encode();
    out += "C:" + std::string(bytes.begin(), bytes.end()) + "\n";
  });
  db.interactions().ForEach(
      [&](const InteractionRecord& rec, uint64_t generation) {
        const auto bytes = rec.Encode();
        out += "I:" + std::to_string(generation) + ":" +
               std::string(bytes.begin(), bytes.end()) + "\n";
      });
  for (const auto& rec : db.highlights().AllLatest()) {
    const auto bytes = rec.Encode();
    out += "H:" + std::string(bytes.begin(), bytes.end()) + "\n";
  }
  out += "lsn:" + std::to_string(db.lsn()) + "\n";
  out += "igen:" + std::to_string(db.interactions().current_generation()) +
         "\n";
  return out;
}

TEST(Manifest, RoundTripsThroughEnv) {
  ft::FaultEnv env;
  ASSERT_TRUE(env.CreateDirs("db").ok());
  Manifest manifest;
  manifest.log_gen = 3;
  manifest.checkpoint_gen = 3;
  manifest.checkpoint_lsn = 12345;
  ASSERT_TRUE(WriteManifest(&env, "db", manifest).ok());

  auto read = ReadManifest(&env, "db");
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  ASSERT_TRUE(read.value().has_value());
  EXPECT_EQ(read.value()->log_gen, 3u);
  EXPECT_EQ(read.value()->checkpoint_gen, 3u);
  EXPECT_EQ(read.value()->checkpoint_lsn, 12345u);

  // Re-install over the old one: last write wins.
  manifest.log_gen = 4;
  manifest.checkpoint_gen = 4;
  ASSERT_TRUE(WriteManifest(&env, "db", manifest).ok());
  EXPECT_EQ(ReadManifest(&env, "db").value()->log_gen, 4u);
}

TEST(Manifest, AbsentMeansLegacyLayout) {
  ft::FaultEnv env;
  auto read = ReadManifest(&env, "db");
  ASSERT_TRUE(read.ok());
  EXPECT_FALSE(read.value().has_value());
}

TEST(Manifest, GarbageTailIsCorruption) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "lightor_manifest_torn")
          .string();
  std::filesystem::remove_all(dir);
  Env* env = Env::Default();
  ASSERT_TRUE(env->CreateDirs(dir).ok());
  ASSERT_TRUE(WriteManifest(env, dir, Manifest{1, 1, 10}).ok());
  {
    std::ofstream out(ManifestPath(dir), std::ios::binary | std::ios::app);
    out.write("junk", 4);
  }
  auto read = ReadManifest(env, dir);
  EXPECT_TRUE(read.status().IsCorruption()) << read.status().ToString();
  std::filesystem::remove_all(dir);
}

TEST(Manifest, PathHelpersNameGenerations) {
  EXPECT_EQ(ManifestPath("d"), "d/MANIFEST");
  EXPECT_EQ(CheckpointFilePath("d", 2), "d/ckpt.2");
  EXPECT_EQ(LogFilePath("d", "chat", 0), "d/chat.log");
  EXPECT_EQ(LogFilePath("d", "chat", 3), "d/chat.3.log");
}

class CheckpointTest : public ::testing::Test {
 protected:
  /// Opens "db" over the fault env; `drop_consumed` sets the policy.
  Database::OpenResult MustOpen(bool drop_consumed = false) {
    OpenOptions options;
    options.directory = "db";
    options.env = &env_;
    options.checkpoint.drop_consumed_interactions = drop_consumed;
    auto opened = DB::Open(options);
    EXPECT_TRUE(opened.ok()) << opened.status().ToString();
    return std::move(opened).value();
  }

  /// Interleaved writes across all three logs; returns records written.
  size_t Populate(Database* db, int n_interactions) {
    size_t written = 0;
    for (int i = 1; i <= n_interactions; ++i) {
      EXPECT_TRUE(db->PutInteraction(MakeInteraction("v0", i)).ok());
      ++written;
      if (i % 2 == 0) {
        EXPECT_TRUE(db->PutChat(MakeChat(i)).ok());
        EXPECT_TRUE(db->PutHighlight(MakeHighlight("v0", i / 2, 0)).ok());
        written += 2;
      }
    }
    return written;
  }

  ft::FaultEnv env_;
};

TEST_F(CheckpointTest, RoundTripRestoresStateAndTruncatesLogs) {
  std::string pre_dump;
  uint64_t pre_lsn = 0;
  {
    auto opened = MustOpen();
    auto& db = opened.db;
    const size_t written = Populate(db.get(), 6);
    pre_dump = Dump(*db);
    pre_lsn = db->lsn();
    EXPECT_EQ(pre_lsn, written);

    auto stats = db->Checkpoint();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats.value().gen, 1u);
    EXPECT_EQ(stats.value().lsn, pre_lsn);
    EXPECT_EQ(stats.value().records_written, written);
    EXPECT_GT(stats.value().checkpoint_bytes, 0u);
    EXPECT_GT(stats.value().log_bytes_truncated, 0u);

    // The rotation installed generation-1 files and dropped generation 0.
    EXPECT_TRUE(env_.FileExists("db/MANIFEST"));
    EXPECT_TRUE(env_.FileExists("db/ckpt.1"));
    EXPECT_FALSE(env_.FileExists("db/chat.log"));
    EXPECT_TRUE(env_.FileExists("db/chat.1.log"));

    // Checkpointing is invisible to the live state.
    EXPECT_EQ(Dump(*db), pre_dump);
    // The rotated database keeps accepting writes.
    ASSERT_TRUE(db->PutChat(MakeChat(100)).ok());
  }

  auto opened = MustOpen();
  EXPECT_EQ(opened.stats.checkpoint_gen, 1u);
  EXPECT_EQ(opened.stats.checkpoint_lsn, pre_lsn);
  EXPECT_EQ(opened.stats.log_gen, 1u);
  EXPECT_EQ(opened.stats.records_replayed, 1u);  // the post-checkpoint chat
  EXPECT_EQ(opened.db->lsn(), pre_lsn + 1);
}

TEST_F(CheckpointTest, SuffixReplayEqualsFullReplay) {
  std::string full_dump;
  {
    auto opened = MustOpen();
    Populate(opened.db.get(), 4);
    ASSERT_TRUE(opened.db->Checkpoint().ok());
    // Post-checkpoint suffix, including a refinement of dot 1.
    ASSERT_TRUE(opened.db->PutInteraction(MakeInteraction("v0", 50)).ok());
    ASSERT_TRUE(opened.db->PutHighlight(MakeHighlight("v0", 1, 1)).ok());
    full_dump = Dump(*opened.db);
  }
  auto opened = MustOpen();
  EXPECT_EQ(opened.stats.records_replayed, 2u);
  EXPECT_EQ(Dump(*opened.db), full_dump);
}

TEST_F(CheckpointTest, SecondCheckpointSupersedesFirst) {
  auto opened = MustOpen();
  auto& db = opened.db;
  Populate(db.get(), 4);
  ASSERT_TRUE(db->Checkpoint().ok());
  ASSERT_TRUE(db->PutChat(MakeChat(7)).ok());
  auto stats = db->Checkpoint();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().gen, 2u);
  EXPECT_TRUE(env_.FileExists("db/ckpt.2"));
  EXPECT_FALSE(env_.FileExists("db/ckpt.1"));
  EXPECT_FALSE(env_.FileExists("db/chat.1.log"));
  const std::string dump = Dump(*db);

  db.reset();
  auto reopened = MustOpen();
  EXPECT_EQ(reopened.stats.checkpoint_gen, 2u);
  EXPECT_EQ(reopened.stats.records_replayed, 0u);
  EXPECT_EQ(Dump(*reopened.db), dump);
}

TEST_F(CheckpointTest, CheckpointCollapsesHighlightHistory) {
  auto opened = MustOpen();
  auto& db = opened.db;
  for (int32_t iter = 0; iter < 5; ++iter) {
    ASSERT_TRUE(db->PutHighlight(MakeHighlight("v0", 0, iter)).ok());
  }
  EXPECT_EQ(db->highlights().TotalRecords(), 5u);
  auto stats = db->Checkpoint();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().records_written, 1u);  // latest only
  EXPECT_EQ(db->highlights().TotalRecords(), 1u);
  EXPECT_EQ(db->highlights().GetLatest("v0")[0].iteration, 4);
  // LSN is an ordering token, not a record count: compaction leaves it.
  EXPECT_EQ(db->lsn(), 5u);
}

TEST_F(CheckpointTest, DropConsumedPolicyDropsOnlyRefinedVideos) {
  {
    auto opened = MustOpen(/*drop_consumed=*/true);
    auto& db = opened.db;
    // v0 has a refined dot (iteration 1): its interactions are consumed.
    ASSERT_TRUE(db->PutHighlight(MakeHighlight("v0", 0, 1)).ok());
    ASSERT_TRUE(db->PutInteraction(MakeInteraction("v0", 1)).ok());
    ASSERT_TRUE(db->PutInteraction(MakeInteraction("v0", 2)).ok());
    // v1 is still on its initial dots (iteration 0): sessions must stay.
    ASSERT_TRUE(db->PutHighlight(MakeHighlight("v1", 0, 0)).ok());
    ASSERT_TRUE(db->PutInteraction(MakeInteraction("v1", 3)).ok());
    const uint64_t generation_before =
        db->interactions().current_generation();
    ASSERT_TRUE(db->Checkpoint().ok());
    // Dropping consumed records must not disturb the generation counter
    // (serving watermarks are generations; a reset would double-consume).
    EXPECT_EQ(db->interactions().current_generation(), generation_before);
  }
  auto opened = MustOpen(/*drop_consumed=*/true);
  EXPECT_TRUE(opened.db->interactions().SessionsForVideo("v0").empty());
  EXPECT_EQ(opened.db->interactions().SessionsForVideo("v1").size(), 1u);
  // The kept record's generation survived verbatim.
  opened.db->interactions().ForEach(
      [&](const InteractionRecord& rec, uint64_t generation) {
        EXPECT_EQ(rec.video_id, "v1");
        EXPECT_EQ(generation, 3u);
      });
}

TEST_F(CheckpointTest, KeepConsumedPolicyKeepsEverything) {
  {
    auto opened = MustOpen(/*drop_consumed=*/false);
    ASSERT_TRUE(opened.db->PutHighlight(MakeHighlight("v0", 0, 1)).ok());
    ASSERT_TRUE(opened.db->PutInteraction(MakeInteraction("v0", 1)).ok());
    ASSERT_TRUE(opened.db->Checkpoint().ok());
  }
  auto opened = MustOpen(/*drop_consumed=*/false);
  EXPECT_EQ(opened.db->interactions().TotalRecords(), 1u);
}

TEST_F(CheckpointTest, CheckpointRescuesWedgedLog) {
  auto opened = MustOpen();
  auto& db = opened.db;
  Populate(db.get(), 2);
  // Wedge the chat log with an ENOSPC mid-frame.
  env_.InjectAt(env_.io_points() + 1, ft::FaultKind::kEnospc);
  EXPECT_FALSE(db->PutChat(MakeChat(9)).ok());
  EXPECT_FALSE(db->PutChat(MakeChat(10)).ok());  // wedged: fails fast

  // The checkpoint rotates to fresh files: service resumes.
  ASSERT_TRUE(db->Checkpoint().ok());
  EXPECT_TRUE(db->PutChat(MakeChat(11)).ok());

  const std::string dump = Dump(*db);
  db.reset();
  EXPECT_EQ(Dump(*MustOpen().db), dump);
}

// ---------------------------------------------------------------------------
// Crash-point enumeration: the ISSUE's core safety claim. Crashing at
// EVERY mutating I/O point of populate + checkpoint + post-writes must
// recover to a database whose full-state dump equals what a crash-free
// run had acked at that point — pre- or post-checkpoint state, never a
// torn hybrid. Keep-consumed policy, single highlight iteration per dot:
// the dump is insensitive to whether the checkpoint committed.
// ---------------------------------------------------------------------------

/// Runs the workload; appends after every *acked* write (and after the
/// checkpoint call) the current dump, so `dumps` holds every state a
/// crash may legally recover to.
void RunCheckpointWorkload(Database* db, std::vector<std::string>* dumps) {
  auto note = [&] { dumps->push_back(Dump(*db)); };
  note();
  for (int i = 1; i <= 4; ++i) {
    if (db->PutInteraction(MakeInteraction("v0", i)).ok()) note();
    if (i % 2 == 0) {
      if (db->PutChat(MakeChat(i)).ok()) note();
      if (db->PutHighlight(MakeHighlight("v0", i / 2, 0)).ok()) note();
    }
  }
  (void)db->Checkpoint();
  note();
  for (int i = 5; i <= 6; ++i) {
    if (db->PutInteraction(MakeInteraction("v0", i)).ok()) note();
  }
}

void EnumerateCheckpointCrashPoints(ft::CrashModel model) {
  const bool power_loss = model == ft::CrashModel::kPowerLoss;
  uint64_t total_points = 0;
  {
    ft::FaultEnv env;
    OpenOptions options;
    options.directory = "db";
    options.env = &env;
    options.sync_on_flush = power_loss;
    auto opened = DB::Open(options);
    ASSERT_TRUE(opened.ok());
    std::vector<std::string> dumps;
    RunCheckpointWorkload(opened.value().db.get(), &dumps);
    opened.value().db.reset();
    total_points = env.io_points();
  }
  ASSERT_GT(total_points, 30u);  // the checkpoint protocol is in range

  for (uint64_t k = 0; k < total_points; ++k) {
    ft::FaultEnv env;
    env.CrashAt(k);
    OpenOptions options;
    options.directory = "db";
    options.env = &env;
    options.sync_on_flush = power_loss;
    std::vector<std::string> dumps;
    // A crash during Open itself legally recovers to the fresh empty state.
    dumps.push_back("lsn:0\nigen:0\n");
    {
      auto db = DB::Open(options);
      if (db.ok()) RunCheckpointWorkload(db.value().db.get(), &dumps);
    }
    ASSERT_TRUE(env.crashed()) << "point " << k << " was never reached";

    env.RecoverAfterCrash(model);
    auto reopened = DB::Open(options);
    ASSERT_TRUE(reopened.ok())
        << "crash@" << k << ": " << reopened.status().ToString();
    const std::string recovered = Dump(*reopened.value().db);
    // Under kProcess with per-record flush every acked state is durable,
    // so the recovered dump must BE the last acked one; under power loss
    // any acked state (a prefix) is legal. Either way it must be one of
    // the acked dumps — never a state the workload did not pass through.
    bool matched = false;
    for (auto it = dumps.rbegin(); it != dumps.rend(); ++it) {
      if (*it == recovered) {
        matched = true;
        break;
      }
      if (!power_loss) break;  // kProcess: only the newest dump is legal
    }
    EXPECT_TRUE(matched) << "crash@" << k
                         << " recovered to a state the workload never acked:\n"
                         << recovered;

    // And the recovered database still takes writes + checkpoints.
    ASSERT_TRUE(reopened.value().db->PutChat(MakeChat(99)).ok())
        << "crash@" << k;
    ASSERT_TRUE(reopened.value().db->Checkpoint().ok()) << "crash@" << k;
  }
}

TEST(CheckpointCrashEnumeration, ProcessCrashAtEveryPointRecoversAckedState) {
  EnumerateCheckpointCrashPoints(ft::CrashModel::kProcess);
}

TEST(CheckpointCrashEnumeration, PowerLossAtEveryPointRecoversAckedState) {
  EnumerateCheckpointCrashPoints(ft::CrashModel::kPowerLoss);
}

}  // namespace
}  // namespace lightor::storage
