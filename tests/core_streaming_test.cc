#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/initializer.h"
#include "core/streaming.h"
#include "sim/bridge.h"
#include "sim/corpus.h"
#include "text/similarity.h"
#include "text/tfidf.h"

namespace lightor::core {
namespace {

TrainingVideo ToTraining(const sim::LabeledVideo& video) {
  TrainingVideo tv;
  tv.messages = sim::ToCoreMessages(video.chat);
  tv.video_length = video.truth.meta.length;
  for (const auto& h : video.truth.highlights) tv.highlights.push_back(h.span);
  return tv;
}

/// Exact (bitwise) red-dot equality — the differential contract is that
/// the streaming replay produces the very doubles the batch path does.
void ExpectSameDots(const std::vector<RedDot>& streaming,
                    const std::vector<RedDot>& batch) {
  ASSERT_EQ(streaming.size(), batch.size());
  for (size_t i = 0; i < streaming.size(); ++i) {
    EXPECT_EQ(streaming[i].position, batch[i].position) << "dot " << i;
    EXPECT_EQ(streaming[i].score, batch[i].score) << "dot " << i;
    EXPECT_EQ(streaming[i].peak, batch[i].peak) << "dot " << i;
    EXPECT_EQ(streaming[i].window.start, batch[i].window.start) << "dot " << i;
    EXPECT_EQ(streaming[i].window.end, batch[i].window.end) << "dot " << i;
  }
}

class StreamingDifferentialTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus_ = new sim::Corpus(sim::MakeCorpus(sim::GameType::kDota2, 5, 31));
  }
  static void TearDownTestSuite() {
    delete corpus_;
    corpus_ = nullptr;
  }

  static HighlightInitializer Trained(InitializerOptions options) {
    HighlightInitializer initializer(options);
    EXPECT_TRUE(initializer.Train({ToTraining((*corpus_)[0])}).ok());
    return initializer;
  }

  static sim::Corpus* corpus_;
};

sim::Corpus* StreamingDifferentialTest::corpus_ = nullptr;

TEST_F(StreamingDifferentialTest, DetectReplayMatchesBatchExactly) {
  const auto initializer = Trained({});
  for (size_t v = 1; v < corpus_->size(); ++v) {
    const auto& video = (*corpus_)[v];
    const auto messages = sim::ToCoreMessages(video.chat);
    const double length = video.truth.meta.length;
    ExpectSameDots(initializer.Detect(messages, length, 5),
                   initializer.DetectBatch(messages, length, 5));
  }
}

TEST_F(StreamingDifferentialTest, MatchesBatchForEverySimilarityBackend) {
  for (const auto backend :
       {SimilarityBackend::kBagOfWords, SimilarityBackend::kTfIdf,
        SimilarityBackend::kEmbedding, SimilarityBackend::kJaccard}) {
    InitializerOptions options;
    options.similarity_backend = backend;
    const auto initializer = Trained(options);
    const auto& video = (*corpus_)[2];
    const auto messages = sim::ToCoreMessages(video.chat);
    const double length = video.truth.meta.length;
    ExpectSameDots(initializer.Detect(messages, length, 5),
                   initializer.DetectBatch(messages, length, 5));
  }
}

TEST_F(StreamingDifferentialTest, MatchesBatchWithRegressionAdjustment) {
  InitializerOptions options;
  options.adjustment_kind = AdjustmentKind::kRegression;
  const auto initializer = Trained(options);
  const auto& video = (*corpus_)[3];
  const auto messages = sim::ToCoreMessages(video.chat);
  const double length = video.truth.meta.length;
  ExpectSameDots(initializer.Detect(messages, length, 5),
                 initializer.DetectBatch(messages, length, 5));
}

TEST_F(StreamingDifferentialTest, MatchesBatchWhenChatRunsPastVideoEnd) {
  // Chat occasionally trails past the declared video length; the batch
  // path clips windows at the end but still reads the trailing timestamps
  // for burst features. The replay must agree.
  const auto initializer = Trained({});
  const auto& video = (*corpus_)[1];
  const auto messages = sim::ToCoreMessages(video.chat);
  ASSERT_FALSE(messages.empty());
  const double truncated = messages.back().timestamp * 0.8;
  ExpectSameDots(initializer.Detect(messages, truncated, 5),
                 initializer.DetectBatch(messages, truncated, 5));
}

TEST_F(StreamingDifferentialTest, ManualIngestFinalizeMatchesBatch) {
  const auto initializer = Trained({});
  const auto& video = (*corpus_)[4];
  const auto messages = sim::ToCoreMessages(video.chat);
  const double length = video.truth.meta.length;
  StreamingInitializer engine(&initializer);
  ASSERT_TRUE(engine.IngestAll(messages).ok());
  EXPECT_EQ(engine.stats().messages_ingested, messages.size());
  auto dots = engine.Finalize(length, 5);
  ASSERT_TRUE(dots.ok()) << dots.status().ToString();
  ExpectSameDots(dots.value(), initializer.DetectBatch(messages, length, 5));
  EXPECT_TRUE(engine.finalized());
}

TEST_F(StreamingDifferentialTest, ProvisionalDotsAvailableMidStream) {
  const auto initializer = Trained({});
  const auto& video = (*corpus_)[1];
  const auto messages = sim::ToCoreMessages(video.chat);
  StreamingInitializer engine(&initializer);
  size_t with_dots = 0;
  for (size_t i = 0; i < messages.size(); ++i) {
    ASSERT_TRUE(engine.Ingest(messages[i]).ok());
    if (i % 500 == 499 && !engine.Provisional(5).empty()) ++with_dots;
  }
  EXPECT_GT(with_dots, 0u);
  for (const auto& dot : engine.Provisional(5)) {
    EXPECT_GE(dot.position, 0.0);
    EXPECT_LE(dot.position, engine.stats().watermark);
  }
}

TEST_F(StreamingDifferentialTest, EmptyChatYieldsNoDots) {
  const auto initializer = Trained({});
  StreamingInitializer engine(&initializer);
  auto dots = engine.Finalize(1000.0, 5);
  ASSERT_TRUE(dots.ok());
  EXPECT_TRUE(dots.value().empty());
  ExpectSameDots(dots.value(), initializer.DetectBatch({}, 1000.0, 5));
}

TEST_F(StreamingDifferentialTest, SingleMessageMatchesBatch) {
  const auto initializer = Trained({});
  Message m;
  m.timestamp = 42.0;
  m.user = "solo";
  m.text = "first blood";
  StreamingInitializer engine(&initializer);
  ASSERT_TRUE(engine.Ingest(m).ok());
  auto dots = engine.Finalize(1000.0, 5);
  ASSERT_TRUE(dots.ok());
  ExpectSameDots(dots.value(), initializer.DetectBatch({m}, 1000.0, 5));
}

TEST_F(StreamingDifferentialTest, RejectsOutOfOrderTimestampAndContinues) {
  const auto initializer = Trained({});
  StreamingInitializer engine(&initializer);
  Message m;
  m.text = "gg";
  m.timestamp = 100.0;
  ASSERT_TRUE(engine.Ingest(m).ok());
  m.timestamp = 50.0;  // goes backwards
  EXPECT_TRUE(engine.Ingest(m).IsInvalidArgument());
  EXPECT_EQ(engine.stats().messages_rejected, 1u);
  EXPECT_EQ(engine.stats().messages_ingested, 1u);
  m.timestamp = 100.0;  // equal timestamps are fine
  EXPECT_TRUE(engine.Ingest(m).ok());
  m.timestamp = 130.0;
  EXPECT_TRUE(engine.Ingest(m).ok());
  EXPECT_EQ(engine.stats().messages_ingested, 3u);
  EXPECT_EQ(engine.stats().watermark, 130.0);
}

TEST_F(StreamingDifferentialTest, FinalizeIsOneShotAndStopsIngest) {
  const auto initializer = Trained({});
  StreamingInitializer engine(&initializer);
  Message m;
  m.text = "gg";
  m.timestamp = 10.0;
  ASSERT_TRUE(engine.Ingest(m).ok());
  ASSERT_TRUE(engine.Finalize(100.0, 5).ok());
  EXPECT_TRUE(engine.Finalize(100.0, 5).status().IsFailedPrecondition());
  EXPECT_TRUE(engine.Ingest(m).IsFailedPrecondition());
}

TEST_F(StreamingDifferentialTest, FinalizeRejectsLengthBehindWatermark) {
  const auto initializer = Trained({});
  StreamingInitializer engine(&initializer);
  Message m;
  m.text = "gg";
  for (double t = 0.0; t < 500.0; t += 1.0) {
    m.timestamp = t;
    ASSERT_TRUE(engine.Ingest(m).ok());
  }
  // 100 s cuts into windows that already closed with their full spans.
  EXPECT_TRUE(engine.Finalize(100.0, 5).status().IsInvalidArgument());
  EXPECT_FALSE(engine.finalized());
  auto dots = engine.Finalize(500.0, 5);
  EXPECT_TRUE(dots.ok());
}

TEST(StreamingSimilarityTest, MatchesBatchBitForBit) {
  const std::vector<std::string> messages = {
      "gg wp",       "GG easy clap",   "what a play", "gg",
      "POGGERS",     "that was insane", "",            "gg wp wp",
      "nice one gg", "clap clap clap"};
  text::StreamingSetSimilarity streaming;
  const text::Tokenizer tokenizer{text::TokenizerOptions{}};
  text::Vocabulary vocabulary;
  std::vector<text::TokenId> ids;
  for (size_t n = 0; n < messages.size(); ++n) {
    ids.clear();
    tokenizer.TokenizeToIds(messages[n], vocabulary, ids);
    streaming.AddMessage(text::TokenSpan(ids));
    const std::vector<std::string> prefix(messages.begin(),
                                          messages.begin() + n + 1);
    EXPECT_EQ(streaming.Value(), text::MessageSetSimilarity(prefix))
        << "prefix " << n + 1;
  }
  // Clipping removes a suffix: PrefixValue must equal a batch run over
  // just the prefix even though the vocabulary has seen later messages.
  for (size_t n = 1; n <= messages.size(); ++n) {
    const std::vector<std::string> prefix(messages.begin(),
                                          messages.begin() + n);
    EXPECT_EQ(streaming.PrefixValue(n), text::MessageSetSimilarity(prefix))
        << "clipped prefix " << n;
  }
}

TEST(TopKWindowsTest, PartialSelectionMatchesFullSortReference) {
  InitializerOptions options;
  // Deterministic pseudo-random probabilities over many unique starts.
  std::vector<SlidingWindow> scored;
  uint64_t state = 12345;
  for (size_t i = 0; i < 4000; ++i) {
    SlidingWindow w;
    w.span = common::Interval(static_cast<double>(i) * 12.5,
                              static_cast<double>(i) * 12.5 + 25.0);
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    w.probability = static_cast<double>(state >> 11) / 9007199254740992.0;
    scored.push_back(w);
  }
  // Adversarial case for the prefix heuristic: the top windows cluster
  // within min_separation, forcing the scan deep into the sorted order.
  for (size_t i = 100; i < 120; ++i) scored[i].probability = 0.99;

  // Reference: full sort + greedy δ-separation scan.
  auto reference = scored;
  std::sort(reference.begin(), reference.end(),
            [](const SlidingWindow& a, const SlidingWindow& b) {
              if (a.probability != b.probability) {
                return a.probability > b.probability;
              }
              return a.span.start < b.span.start;
            });
  std::vector<SlidingWindow> expected;
  for (const auto& w : reference) {
    if (expected.size() >= 5) break;
    const bool too_close = std::any_of(
        expected.begin(), expected.end(), [&](const SlidingWindow& p) {
          return std::abs(p.span.start - w.span.start) <=
                 options.min_separation;
        });
    if (!too_close) expected.push_back(w);
  }

  HighlightInitializer initializer(options);
  const auto picked = initializer.TopKWindows(scored, 5);
  ASSERT_EQ(picked.size(), expected.size());
  for (size_t i = 0; i < picked.size(); ++i) {
    EXPECT_EQ(picked[i].span.start, expected[i].span.start);
    EXPECT_EQ(picked[i].probability, expected[i].probability);
  }
}

TEST(JaccardCapTest, SmallSetsUnchangedAndLargeSetsDeterministic) {
  const std::vector<std::string> small = {"gg wp", "gg wp", "nice play"};
  // Below the cap: plain mean over all 3 pairs. Two identical messages
  // give 1.0; "gg wp" vs "nice play" gives 0.
  EXPECT_NEAR(text::JaccardSetSimilarity(small), 1.0 / 3.0, 1e-12);

  std::vector<std::string> storm;
  for (size_t i = 0; i < 600; ++i) {
    storm.push_back(i % 2 == 0 ? "gg gg gg" : "clap clap");
  }
  const double a = text::JaccardSetSimilarity(storm);
  const double b = text::JaccardSetSimilarity(storm);
  EXPECT_EQ(a, b);  // deterministic sampling
  EXPECT_GE(a, 0.0);
  EXPECT_LE(a, 1.0);
}

}  // namespace
}  // namespace lightor::core
