#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/http.h"
#include "net/server.h"
#include "net/service.h"
#include "test_stack.h"

namespace lightor::net {
namespace {

void SleepMs(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/// Routes exercising the server mechanics without a serving backend.
Router TestRoutes() {
  Router router;
  router.Handle("GET", "/ping", [](const HttpRequest&) {
    return JsonResponse(200, "{\"pong\":true}");
  });
  router.Handle("POST", "/echo", [](const HttpRequest& req) {
    return JsonResponse(200, std::string(req.body));
  });
  router.Handle("GET", "/slow", [](const HttpRequest& req) {
    const std::string ms = req.QueryParam("ms");
    SleepMs(ms.empty() ? 300 : std::stoi(ms));
    return JsonResponse(200, "{\"slow\":true}");
  });
  router.Handle("GET", "/throw", [](const HttpRequest&) -> HttpResponse {
    throw std::runtime_error("handler exploded");
  });
  return router;
}

std::unique_ptr<HttpServer> MustStart(NetOptions options) {
  auto server = HttpServer::Create(std::move(options), TestRoutes());
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  return std::move(server).value();
}

/// Raw TCP connection for wire-level assertions the HttpClient's
/// conveniences (transparent reconnect) would hide.
class RawConn {
 public:
  explicit RawConn(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    timeval tv{5, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0);
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }

  void Send(std::string_view bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off, 0);
      ASSERT_GT(n, 0);
      off += static_cast<size_t>(n);
    }
  }

  /// Reads until the peer closes (or the 5s socket timeout trips).
  std::string RecvUntilClose() {
    std::string out;
    char buf[4096];
    while (true) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) break;
      out.append(buf, static_cast<size_t>(n));
    }
    return out;
  }

 private:
  int fd_ = -1;
};

TEST(HttpServerTest, RoundTripAndKeepAlive) {
  auto server = MustStart(NetOptions{});
  HttpClient client("127.0.0.1", server->port());

  auto ping = client.Get("/ping");
  ASSERT_TRUE(ping.ok()) << ping.status().ToString();
  EXPECT_EQ(ping.value().status, 200);
  EXPECT_EQ(ping.value().body, "{\"pong\":true}");

  // Second request reuses the same keep-alive connection.
  auto echo = client.Post("/echo", "{\"n\":42}");
  ASSERT_TRUE(echo.ok()) << echo.status().ToString();
  EXPECT_EQ(echo.value().status, 200);
  EXPECT_EQ(echo.value().body, "{\"n\":42}");

  server->Shutdown();
}

TEST(HttpServerTest, PollBackendRoundTrip) {
  NetOptions options;
  options.use_epoll = false;
  auto server = MustStart(std::move(options));
  HttpClient client("127.0.0.1", server->port());
  auto resp = client.Get("/ping");
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp.value().status, 200);
  server->Shutdown();
}

TEST(HttpServerTest, RouteMisses404And405) {
  auto server = MustStart(NetOptions{});
  HttpClient client("127.0.0.1", server->port());

  auto missing = client.Get("/no-such-route");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing.value().status, 404);

  auto wrong_method = client.Post("/ping", "{}");
  ASSERT_TRUE(wrong_method.ok());
  EXPECT_EQ(wrong_method.value().status, 405);

  // A miss does not poison the connection.
  auto ping = client.Get("/ping");
  ASSERT_TRUE(ping.ok());
  EXPECT_EQ(ping.value().status, 200);
  server->Shutdown();
}

TEST(HttpServerTest, HandlerExceptionAnswers500) {
  auto server = MustStart(NetOptions{});
  HttpClient client("127.0.0.1", server->port());
  auto resp = client.Get("/throw");
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp.value().status, 500);
  server->Shutdown();
}

TEST(HttpServerTest, ParseErrorAnswers400AndCloses) {
  auto server = MustStart(NetOptions{});
  RawConn conn(server->port());
  conn.Send("BOGUS\r\n\r\n");
  const std::string wire = conn.RecvUntilClose();
  EXPECT_NE(wire.find("HTTP/1.1 400"), std::string::npos) << wire;
  EXPECT_NE(wire.find("connection: close"), std::string::npos) << wire;
  server->Shutdown();
}

TEST(HttpServerTest, OversizedBodyAnswers413) {
  NetOptions options;
  options.max_body_bytes = 16;
  auto server = MustStart(std::move(options));
  HttpClient client("127.0.0.1", server->port());
  auto resp = client.Post("/echo", std::string(64, 'x'));
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp.value().status, 413);
  server->Shutdown();
}

TEST(HttpServerTest, PipelinedRequestsAnsweredInOrder) {
  auto server = MustStart(NetOptions{});
  RawConn conn(server->port());
  conn.Send(
      "POST /echo HTTP/1.1\r\ncontent-length: 9\r\n\r\n{\"id\":1}\n"
      "POST /echo HTTP/1.1\r\ncontent-length: 9\r\nconnection: close\r\n"
      "\r\n{\"id\":2}\n");
  const std::string wire = conn.RecvUntilClose();
  const size_t first = wire.find("{\"id\":1}");
  const size_t second = wire.find("{\"id\":2}");
  ASSERT_NE(first, std::string::npos) << wire;
  ASSERT_NE(second, std::string::npos) << wire;
  EXPECT_LT(first, second);
  server->Shutdown();
}

TEST(HttpServerTest, DeadlineExpiryAnswers504AndCloses) {
  NetOptions options;
  options.request_deadline_seconds = 0.2;
  auto server = MustStart(std::move(options));
  HttpClient client("127.0.0.1", server->port());

  auto resp = client.Get("/slow?ms=1000");
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp.value().status, 504);
  ASSERT_NE(resp.value().FindHeader("connection"), nullptr);
  EXPECT_EQ(*resp.value().FindHeader("connection"), "close");
  server->Shutdown();  // waits out the stranded handler before joining
}

TEST(HttpServerTest, SaturationAnswers503WithRetryAfter) {
  NetOptions options;
  options.max_in_flight = 1;
  options.retry_after_seconds = 1.0;
  auto server = MustStart(std::move(options));

  std::thread occupant([&] {
    HttpClient slow("127.0.0.1", server->port());
    auto resp = slow.Get("/slow?ms=600");
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    EXPECT_EQ(resp.value().status, 200);
  });
  SleepMs(150);  // let the slow request occupy the single slot

  HttpClient client("127.0.0.1", server->port());
  auto rejected = client.Get("/ping");
  ASSERT_TRUE(rejected.ok()) << rejected.status().ToString();
  EXPECT_EQ(rejected.value().status, 503);
  ASSERT_NE(rejected.value().FindHeader("retry-after"), nullptr);
  EXPECT_EQ(*rejected.value().FindHeader("retry-after"), "1");
  // The rejected connection stays open: retrying after the slot frees
  // succeeds on the same client.
  occupant.join();
  auto retried = client.Get("/ping");
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_EQ(retried.value().status, 200);
  server->Shutdown();
}

TEST(HttpServerTest, GracefulDrainFlushesInFlightWork) {
  auto server = MustStart(NetOptions{});
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::atomic<int> ok_count{0};
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      HttpClient client("127.0.0.1", server->port());
      auto resp = client.Get("/slow?ms=400");
      if (resp.ok() && resp.value().status == 200) ++ok_count;
    });
  }
  SleepMs(150);  // all four are dispatched and sleeping in handlers
  const auto drain_start = std::chrono::steady_clock::now();
  server->Shutdown();
  const double drain_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    drain_start)
          .count();
  for (auto& t : threads) t.join();
  // Drain must wait for the in-flight handlers and flush their
  // responses, not cut the connections.
  EXPECT_EQ(ok_count.load(), kThreads);
  EXPECT_LT(drain_seconds, server->options().drain_timeout_seconds);

  // After shutdown the port no longer accepts.
  HttpClient late("127.0.0.1", server->port());
  late.set_timeout_seconds(2.0);
  EXPECT_FALSE(late.Get("/ping").ok());
}

TEST(HttpServerTest, ShutdownIsIdempotent) {
  auto server = MustStart(NetOptions{});
  server->Shutdown();
  server->Shutdown();  // second call is a no-op
}

TEST(HttpServerTest, IdleConnectionsAreReaped) {
  NetOptions options;
  options.idle_timeout_seconds = 0.2;
  auto server = MustStart(std::move(options));
  RawConn conn(server->port());
  // Send nothing: a half-open (slowloris) connection must be cut once
  // the idle timeout elapses — RecvUntilClose returns on the reap, well
  // before its own 5s socket timeout.
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(conn.RecvUntilClose(), "");
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(waited, 3.0);
  server->Shutdown();
}

TEST(HttpServerTest, HealthzReportsDrainingDuringLameDuck) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("lightor_net_server_drain_" + std::to_string(::getpid())))
          .string();
  std::filesystem::create_directories(dir);
  auto stack = testutil::MakeServingStack(dir + "/db");
  auto http = HttpServer::Create(NetOptions{}, BuildRoutes(stack.server.get()));
  ASSERT_TRUE(http.ok()) << http.status().ToString();
  HttpClient client("127.0.0.1", http.value()->port());

  auto before = client.Get("/healthz");
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  ASSERT_EQ(before.value().status, 200);
  EXPECT_NE(before.value().body.find("\"state\":\"ok\""), std::string::npos)
      << before.value().body;

  // Lame duck: announced as draining while requests still succeed.
  stack.server->BeginDrain();
  auto during = client.Get("/healthz");
  ASSERT_TRUE(during.ok()) << during.status().ToString();
  ASSERT_EQ(during.value().status, 200);
  EXPECT_NE(during.value().body.find("\"state\":\"draining\""),
            std::string::npos)
      << during.value().body;
  const std::string video_id = stack.platform->AllVideoIds()[0];
  auto visit = client.Post("/visit", "{\"video_id\":\"" + video_id +
                                         "\",\"user\":\"u1\"}");
  ASSERT_TRUE(visit.ok()) << visit.status().ToString();
  EXPECT_EQ(visit.value().status, 200) << visit.value().body;

  http.value()->Shutdown();
  stack.server->Shutdown();
  std::filesystem::remove_all(dir);
}

TEST(HttpClientTest, ConnectRefusedIsUnavailable) {
  // Grab a port that was just listening and no longer is: connecting to
  // it gets a deterministic ECONNREFUSED rather than a hang.
  auto server = MustStart(NetOptions{});
  const uint16_t dead_port = server->port();
  server->Shutdown();
  server.reset();

  HttpClient client("127.0.0.1", dead_port);
  client.set_timeout_seconds(2.0);
  auto resp = client.Get("/ping");
  ASSERT_FALSE(resp.ok());
  EXPECT_TRUE(resp.status().IsUnavailable()) << resp.status().ToString();
}

TEST(HttpClientTest, ReadTimeoutIsDeadlineExceeded) {
  // The server-side request deadline must not fire first, so give the
  // server a long deadline and the client a short socket timeout.
  NetOptions options;
  options.request_deadline_seconds = 10.0;
  auto server = MustStart(std::move(options));

  HttpClient client("127.0.0.1", server->port());
  client.set_timeout_seconds(0.3);
  auto resp = client.Get("/slow?ms=2000");
  ASSERT_FALSE(resp.ok());
  EXPECT_TRUE(resp.status().IsDeadlineExceeded()) << resp.status().ToString();
  server->Shutdown();
}

TEST(HttpServerTest, InvalidOptionsAreRejected) {
  NetOptions zero_workers;
  zero_workers.num_workers = 0;
  EXPECT_FALSE(HttpServer::Create(zero_workers, Router()).ok());

  NetOptions zero_in_flight;
  zero_in_flight.max_in_flight = 0;
  EXPECT_FALSE(HttpServer::Create(zero_in_flight, Router()).ok());
}

}  // namespace
}  // namespace lightor::net
