#include <gtest/gtest.h>

#include <sstream>

#include <atomic>
#include <numeric>

#include "common/csv.h"
#include "common/interval.h"
#include "common/parallel.h"
#include "common/strings.h"

namespace lightor::common {
namespace {

TEST(IntervalTest, LengthAndValidity) {
  EXPECT_DOUBLE_EQ(Interval(1.0, 4.0).Length(), 3.0);
  EXPECT_DOUBLE_EQ(Interval(4.0, 1.0).Length(), 0.0);
  EXPECT_TRUE(Interval(1.0, 1.0).Valid());
  EXPECT_FALSE(Interval(2.0, 1.0).Valid());
}

TEST(IntervalTest, ContainsPointAndInterval) {
  const Interval iv(10.0, 20.0);
  EXPECT_TRUE(iv.Contains(10.0));
  EXPECT_TRUE(iv.Contains(20.0));
  EXPECT_FALSE(iv.Contains(9.999));
  EXPECT_TRUE(iv.Contains(Interval(12.0, 18.0)));
  EXPECT_FALSE(iv.Contains(Interval(12.0, 21.0)));
}

TEST(IntervalTest, OverlapSemantics) {
  const Interval a(0.0, 10.0);
  EXPECT_TRUE(a.Overlaps(Interval(10.0, 20.0)));  // closed intervals touch
  EXPECT_FALSE(a.Overlaps(Interval(10.1, 20.0)));
  EXPECT_DOUBLE_EQ(a.OverlapLength(Interval(5.0, 20.0)), 5.0);
  EXPECT_DOUBLE_EQ(a.OverlapLength(Interval(20.0, 30.0)), 0.0);
}

TEST(IntervalTest, Iou) {
  EXPECT_DOUBLE_EQ(Interval(0, 10).Iou(Interval(0, 10)), 1.0);
  EXPECT_DOUBLE_EQ(Interval(0, 10).Iou(Interval(5, 15)), 5.0 / 15.0);
  EXPECT_DOUBLE_EQ(Interval(0, 10).Iou(Interval(20, 30)), 0.0);
}

TEST(IntervalTest, ShiftAndClamp) {
  EXPECT_EQ(Interval(1, 2).Shifted(10.0), Interval(11, 12));
  EXPECT_EQ(Interval(-5, 50).Clamped(0.0, 10.0), Interval(0, 10));
  EXPECT_DOUBLE_EQ(Interval(3, 7).Center(), 5.0);
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  const auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(StringsTest, SplitWhitespaceDropsEmpties) {
  const auto parts = SplitWhitespace("  foo \t bar\nbaz  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "foo");
  EXPECT_EQ(parts[2], "baz");
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringsTest, JoinRoundTrip) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t\n "), "");
  EXPECT_EQ(Trim("no-trim"), "no-trim");
}

TEST(StringsTest, ToLowerAndAffixes) {
  EXPECT_EQ(ToLower("PogChamp"), "pogchamp");
  EXPECT_TRUE(StartsWith("dota2_channel3_v1", "dota2"));
  EXPECT_FALSE(StartsWith("x", "xyz"));
  EXPECT_TRUE(EndsWith("chat.log", ".log"));
  EXPECT_FALSE(EndsWith(".log", "chat.log"));
}

TEST(StringsTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
}

TEST(StringsTest, FormatTimestamp) {
  EXPECT_EQ(FormatTimestamp(0.0), "0:00:00");
  EXPECT_EQ(FormatTimestamp(3661.0), "1:01:01");
  EXPECT_EQ(FormatTimestamp(-5.0), "0:00:00");
  EXPECT_EQ(FormatTimestamp(7325.4), "2:02:05");
}

TEST(CsvWriterTest, EscapesSpecialCells) {
  std::ostringstream out;
  CsvWriter writer(&out);
  writer.WriteHeader({"a", "b"});
  writer.WriteRow({"plain", "with,comma"});
  writer.WriteRow({"with\"quote", "with\nnewline"});
  EXPECT_EQ(out.str(),
            "a,b\nplain,\"with,comma\"\n\"with\"\"quote\",\"with\nnewline\"\n");
  EXPECT_EQ(writer.rows_written(), 3u);
}

TEST(TextTableTest, AlignsColumns) {
  TextTable table({"name", "value"});
  table.AddRow({"x", "1"});
  table.AddRow({"longer-name", "2.5"});
  std::ostringstream out;
  table.Print(out);
  const std::string rendered = out.str();
  EXPECT_NE(rendered.find("| name"), std::string::npos);
  EXPECT_NE(rendered.find("| longer-name"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> visits(500);
  ParallelFor(500, [&](size_t i) { visits[i].fetch_add(1); });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelForTest, DeterministicPerIndexResults) {
  std::vector<double> out(1000, 0.0);
  ParallelFor(1000, [&](size_t i) { out[i] = static_cast<double>(i) * 2.0; });
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], static_cast<double>(i) * 2.0);
  }
}

TEST(ParallelForTest, EdgeCases) {
  int calls = 0;
  ParallelFor(0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(1, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
  // Explicit single thread degrades to a plain loop.
  std::vector<int> order;
  ParallelFor(5, [&](size_t i) { order.push_back(static_cast<int>(i)); }, 1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, MoreThreadsThanWork) {
  std::vector<std::atomic<int>> visits(3);
  ParallelFor(3, [&](size_t i) { visits[i].fetch_add(1); }, 64);
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

}  // namespace
}  // namespace lightor::common
