#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/metrics.h"
#include "common/parallel.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "text/vocabulary.h"

namespace lightor::obs {
namespace {

// The registry is process-global; every test uses unique metric names so
// tests stay independent even though they share the instance.

TEST(ObsMetricsTest, CounterBasics) {
  Counter* c = Registry::Global().GetCounter("lightor_test_basic_total");
  EXPECT_EQ(c->value(), 0u);
  c->Increment();
  c->Increment(4);
  EXPECT_EQ(c->value(), 5u);
  c->Reset();
  EXPECT_EQ(c->value(), 0u);
}

TEST(ObsMetricsTest, RegistryInternsByNameAndLabels) {
  Counter* a = Registry::Global().GetCounter("lightor_test_intern_total",
                                             {{"k", "1"}});
  Counter* b = Registry::Global().GetCounter("lightor_test_intern_total",
                                             {{"k", "1"}});
  Counter* c = Registry::Global().GetCounter("lightor_test_intern_total",
                                             {{"k", "2"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(ObsMetricsTest, LabelOrderDoesNotSplitSeries) {
  Counter* a = Registry::Global().GetCounter(
      "lightor_test_label_order_total", {{"a", "1"}, {"b", "2"}});
  Counter* b = Registry::Global().GetCounter(
      "lightor_test_label_order_total", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(a, b);
}

TEST(ObsMetricsTest, KindMismatchReturnsDummyNotCrash) {
  Counter* c = Registry::Global().GetCounter("lightor_test_mismatch_total");
  c->Increment();
  // Re-registering the same series as a gauge is a programming error; it
  // must not crash and must not clobber the real counter.
  Gauge* g = Registry::Global().GetGauge("lightor_test_mismatch_total");
  ASSERT_NE(g, nullptr);
  g->Set(42.0);
  EXPECT_EQ(c->value(), 1u);
}

TEST(ObsMetricsTest, ConcurrentCounterIncrementsSumExactly) {
  Counter* c = Registry::Global().GetCounter("lightor_test_concurrent_total");
  constexpr size_t kWorkers = 64;
  constexpr uint64_t kPerWorker = 10000;
  common::ParallelFor(kWorkers, [&](size_t) {
    for (uint64_t i = 0; i < kPerWorker; ++i) c->Increment();
  });
  EXPECT_EQ(c->value(), kWorkers * kPerWorker);
}

TEST(ObsMetricsTest, ConcurrentHistogramObservationsSumExactly) {
  Histogram* h = Registry::Global().GetHistogram(
      "lightor_test_concurrent_seconds", {1.0, 2.0, 4.0});
  constexpr size_t kWorkers = 32;
  constexpr uint64_t kPerWorker = 5000;
  common::ParallelFor(kWorkers, [&](size_t w) {
    for (uint64_t i = 0; i < kPerWorker; ++i) {
      h->Observe(static_cast<double>(w % 5));  // 0,1,2,3,4 across workers
    }
  });
  EXPECT_EQ(h->count(), kWorkers * kPerWorker);
  uint64_t bucket_total = 0;
  for (uint64_t n : h->BucketCounts()) bucket_total += n;
  EXPECT_EQ(bucket_total, h->count());
}

TEST(ObsMetricsTest, HistogramBucketBoundariesAreInclusive) {
  Histogram* h = Registry::Global().GetHistogram(
      "lightor_test_bounds_seconds", {1.0, 2.0, 4.0});
  h->Observe(0.5);   // -> le=1
  h->Observe(1.0);   // boundary is inclusive -> le=1
  h->Observe(1.001); // -> le=2
  h->Observe(4.0);   // -> le=4
  h->Observe(9.0);   // -> +Inf
  const std::vector<uint64_t> counts = h->BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h->count(), 5u);
  EXPECT_DOUBLE_EQ(h->sum(), 0.5 + 1.0 + 1.001 + 4.0 + 9.0);
}

TEST(ObsMetricsTest, HistogramSortsAndDedupsBounds) {
  Histogram h({4.0, 1.0, 2.0, 2.0});
  EXPECT_EQ(h.bounds(), (std::vector<double>{1.0, 2.0, 4.0}));
}

TEST(ObsMetricsTest, GaugeSetAndAdd) {
  Gauge* g = Registry::Global().GetGauge("lightor_test_gauge");
  g->Set(2.5);
  g->Add(1.0);
  g->Add(-0.5);
  EXPECT_DOUBLE_EQ(g->value(), 3.0);
}

TEST(ObsMetricsTest, DisabledRegistryDropsMutations) {
  Counter* c = Registry::Global().GetCounter("lightor_test_disabled_total");
  Histogram* h = Registry::Global().GetHistogram(
      "lightor_test_disabled_seconds", Histogram::LatencyBounds());
  SetMetricsEnabled(false);
  c->Increment();
  h->Observe(1.0);
  SetMetricsEnabled(true);
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(h->count(), 0u);
  c->Increment();
  EXPECT_EQ(c->value(), 1u);
}

// ---- exporters -----------------------------------------------------------

RegistrySnapshot ExporterFixture() {
  RegistrySnapshot snap;
  snap.counters.push_back({"lightor_test_export_total",
                           {{"stage", "one"}},
                           7});
  snap.gauges.push_back({"lightor_test_export_ratio", {}, 0.5});
  HistogramSnapshot h;
  h.name = "lightor_test_export_seconds";
  h.bounds = {1.0, 2.0};
  h.bucket_counts = {3, 1, 2};  // non-cumulative, +Inf last
  h.count = 6;
  h.sum = 12.5;
  snap.histograms.push_back(h);
  return snap;
}

TEST(ObsExportTest, PrometheusLineFormatParses) {
  const std::string text = ExportPrometheus(ExporterFixture());
  std::istringstream in(text);
  std::string line;
  int samples = 0;
  std::map<std::string, double> values;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      // "# TYPE <name> <counter|gauge|histogram>"
      std::istringstream meta(line.substr(7));
      std::string name, kind;
      ASSERT_TRUE(meta >> name >> kind) << line;
      EXPECT_TRUE(kind == "counter" || kind == "gauge" || kind == "histogram")
          << line;
      continue;
    }
    // Sample line: "<series> <value>" with the value after the last space.
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string series = line.substr(0, space);
    size_t parsed = 0;
    const double value = std::stod(line.substr(space + 1), &parsed);
    EXPECT_EQ(parsed, line.size() - space - 1) << line;
    values[series] = value;
    ++samples;
  }
  // counter + gauge + (2 finite buckets + +Inf + sum + count) = 7 samples.
  EXPECT_EQ(samples, 7);
  EXPECT_DOUBLE_EQ(values.at("lightor_test_export_total{stage=\"one\"}"), 7);
  EXPECT_DOUBLE_EQ(values.at("lightor_test_export_ratio"), 0.5);
  // Buckets are cumulative in the exposition format.
  EXPECT_DOUBLE_EQ(
      values.at("lightor_test_export_seconds_bucket{le=\"1\"}"), 3);
  EXPECT_DOUBLE_EQ(
      values.at("lightor_test_export_seconds_bucket{le=\"2\"}"), 4);
  EXPECT_DOUBLE_EQ(
      values.at("lightor_test_export_seconds_bucket{le=\"+Inf\"}"), 6);
  EXPECT_DOUBLE_EQ(values.at("lightor_test_export_seconds_sum"), 12.5);
  EXPECT_DOUBLE_EQ(values.at("lightor_test_export_seconds_count"), 6);
}

TEST(ObsExportTest, PrometheusEscapesLabelValues) {
  RegistrySnapshot snap;
  snap.counters.push_back({"lightor_test_escape_total",
                           {{"q", "a\"b\\c\nd"}},
                           1});
  const std::string text = ExportPrometheus(snap);
  EXPECT_NE(text.find("q=\"a\\\"b\\\\c\\nd\""), std::string::npos) << text;
}

TEST(ObsExportTest, JsonRoundTripsValues) {
  const std::string json = ExportJson(ExporterFixture());
  // Spot-check the exact value fragments; the format is stable.
  EXPECT_NE(json.find("\"name\":\"lightor_test_export_total\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"value\":7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"stage\":\"one\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"sum\":12.5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\":6"), std::string::npos) << json;
  // Balanced braces/brackets (cheap structural sanity check).
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char ch = json[i];
    if (in_string) {
      if (ch == '\\') ++i;
      else if (ch == '"') in_string = false;
      continue;
    }
    if (ch == '"') in_string = true;
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST(ObsExportTest, PrometheusAndJsonAgreeOnLiveRegistry) {
  Counter* c = Registry::Global().GetCounter("lightor_test_agree_total");
  c->Increment(123);
  const RegistrySnapshot snap = Registry::Global().Snapshot();
  const std::string prom = ExportPrometheus(snap);
  const std::string json = ExportJson(snap);
  EXPECT_NE(prom.find("lightor_test_agree_total 123"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"lightor_test_agree_total\",\"labels\":{},"
                      "\"value\":123"),
            std::string::npos)
      << json;
}

TEST(ObsMetricsTest, VocabularyInterningRegistersArenaCounters) {
  // The text layer registers its interning counters lazily on first use;
  // interning two distinct tokens (one of them twice) must bump the
  // intern count by exactly 2 and the arena bytes by exactly the distinct
  // token bytes — repeat lookups are free.
  Counter* interned = Registry::Global().GetCounter(
      "lightor_text_vocab_tokens_interned_total");
  Counter* arena_bytes = Registry::Global().GetCounter(
      "lightor_text_vocab_arena_bytes_total");
  const uint64_t interned_before = interned->value();
  const uint64_t arena_before = arena_bytes->value();
  text::Vocabulary vocabulary;
  EXPECT_EQ(vocabulary.AddToken("pogchamp"), 0);
  EXPECT_EQ(vocabulary.AddToken("gg"), 1);
  EXPECT_EQ(vocabulary.AddToken("pogchamp"), 0);  // hit: no new interning
  EXPECT_EQ(interned->value(), interned_before + 2);
  EXPECT_EQ(arena_bytes->value(), arena_before + 10);  // "pogchamp"+"gg"
}

// ---- fleet aggregation ---------------------------------------------------

TEST(ObsExportTest, MergeSnapshotSumsMatchingSeries) {
  RegistrySnapshot into = ExporterFixture();
  RegistrySnapshot from = ExporterFixture();
  MergeSnapshotInto(&into, from);
  // Same (name, labels) → values sum; histograms merge bucket-wise.
  ASSERT_EQ(into.counters.size(), 1u);
  EXPECT_EQ(into.counters[0].value, 14u);
  ASSERT_EQ(into.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(into.gauges[0].value, 1.0);
  ASSERT_EQ(into.histograms.size(), 1u);
  EXPECT_EQ(into.histograms[0].count, 12u);
  EXPECT_DOUBLE_EQ(into.histograms[0].sum, 25.0);
  EXPECT_EQ(into.histograms[0].bucket_counts,
            (std::vector<uint64_t>{6, 2, 4}));
}

TEST(ObsExportTest, MergeSnapshotAppendsUnmatchedSeries) {
  RegistrySnapshot into = ExporterFixture();
  RegistrySnapshot from;
  from.counters.push_back({"lightor_test_export_total",
                           {{"stage", "two"}},  // different labels
                           5});
  from.counters.push_back({"lightor_test_other_total", {}, 3});
  MergeSnapshotInto(&into, from);
  ASSERT_EQ(into.counters.size(), 3u);
  EXPECT_EQ(into.counters[0].value, 7u);  // original untouched
  EXPECT_EQ(into.counters[1].value, 5u);
  EXPECT_EQ(into.counters[2].value, 3u);
}

TEST(ObsExportTest, MergeSnapshotSkipsBoundMismatchedHistograms) {
  RegistrySnapshot into = ExporterFixture();
  RegistrySnapshot from = ExporterFixture();
  from.histograms[0].bounds = {1.0, 4.0};  // incompatible buckets
  MergeSnapshotInto(&into, from);
  // The mismatched histogram must neither sum nor duplicate — a merge
  // of incompatible buckets would fabricate latencies.
  ASSERT_EQ(into.histograms.size(), 1u);
  EXPECT_EQ(into.histograms[0].count, 6u);
}

TEST(ObsMetricsTest, ClusterSeriesFollowNamingConvention) {
  // The router's fleet series (registered in cluster/metrics.cc) must
  // land in the shared registry under lightor_cluster_* names — the
  // contract check_metrics_names.sh lints and dashboards key on.
  cluster::RouterRequestsCounter("127.0.0.1:1").Increment();
  cluster::RouterRetriesCounter("127.0.0.1:1").Increment();
  cluster::RouterFailoversCounter().Increment();
  cluster::RouterRejectedCounter().Increment();
  cluster::RingSizeGauge().Set(3);
  cluster::BackendHealthGauge("127.0.0.1:1").Set(1.0);
  cluster::ScrapesCounter(true).Increment();
  cluster::UpstreamLatency("127.0.0.1:1").Observe(0.01);

  const std::vector<std::string> names = Registry::Global().SeriesNames();
  for (const char* want :
       {"lightor_cluster_requests_total", "lightor_cluster_retries_total",
        "lightor_cluster_failovers_total", "lightor_cluster_rejected_total",
        "lightor_cluster_ring_size", "lightor_cluster_backend_health",
        "lightor_cluster_scrapes_total", "lightor_cluster_upstream_seconds"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), want), names.end())
        << want;
  }
}

TEST(ObsMetricsTest, SnapshotCoversEveryRegisteredSeries) {
  Registry::Global().GetCounter("lightor_test_snapshot_total");
  const RegistrySnapshot snap = Registry::Global().Snapshot();
  bool found = false;
  for (const auto& c : snap.counters) {
    if (c.name == "lightor_test_snapshot_total") found = true;
  }
  EXPECT_TRUE(found);
  const std::vector<std::string> names = Registry::Global().SeriesNames();
  EXPECT_NE(std::find(names.begin(), names.end(),
                      "lightor_test_snapshot_total"),
            names.end());
}

}  // namespace
}  // namespace lightor::obs
