#include <gtest/gtest.h>

#include "core/evaluation.h"

namespace lightor::core {
namespace {

TEST(ChatPrecisionTest, FractionOfPositiveLabels) {
  EXPECT_DOUBLE_EQ(ChatPrecisionAtK({1, 1, 0, 1}), 0.75);
  EXPECT_DOUBLE_EQ(ChatPrecisionAtK({0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(ChatPrecisionAtK({}), 0.0);
  EXPECT_DOUBLE_EQ(ChatPrecisionAtK({1}), 1.0);
}

TEST(VideoPrecisionStartTest, SlackWindow) {
  const std::vector<common::Interval> hs = {{100.0, 120.0}};
  // Correct iff x in [s-10, e].
  EXPECT_DOUBLE_EQ(VideoPrecisionStart({110.0}, hs), 1.0);
  EXPECT_DOUBLE_EQ(VideoPrecisionStart({90.0}, hs), 1.0);
  EXPECT_DOUBLE_EQ(VideoPrecisionStart({89.9}, hs), 0.0);
  EXPECT_DOUBLE_EQ(VideoPrecisionStart({120.0}, hs), 1.0);
  EXPECT_DOUBLE_EQ(VideoPrecisionStart({120.1}, hs), 0.0);
}

TEST(VideoPrecisionStartTest, AveragesOverPositions) {
  const std::vector<common::Interval> hs = {{100.0, 120.0}, {500.0, 520.0}};
  EXPECT_DOUBLE_EQ(VideoPrecisionStart({110.0, 510.0, 300.0, 95.0}, hs),
                   0.75);
  EXPECT_DOUBLE_EQ(VideoPrecisionStart({}, hs), 0.0);
}

TEST(VideoPrecisionEndTest, SlackWindow) {
  const std::vector<common::Interval> hs = {{100.0, 120.0}};
  // Correct iff y in [s, e+10].
  EXPECT_DOUBLE_EQ(VideoPrecisionEnd({110.0}, hs), 1.0);
  EXPECT_DOUBLE_EQ(VideoPrecisionEnd({100.0}, hs), 1.0);
  EXPECT_DOUBLE_EQ(VideoPrecisionEnd({99.9}, hs), 0.0);
  EXPECT_DOUBLE_EQ(VideoPrecisionEnd({130.0}, hs), 1.0);
  EXPECT_DOUBLE_EQ(VideoPrecisionEnd({130.1}, hs), 0.0);
}

TEST(VideoPrecisionTest, CustomSlack) {
  const std::vector<common::Interval> hs = {{100.0, 120.0}};
  EXPECT_DOUBLE_EQ(VideoPrecisionStart({85.0}, hs, 20.0), 1.0);
  EXPECT_DOUBLE_EQ(VideoPrecisionEnd({135.0}, hs, 20.0), 1.0);
}

TEST(DotPositionsTest, ExtractsPositions) {
  std::vector<RedDot> dots(2);
  dots[0].position = 5.0;
  dots[1].position = 9.0;
  EXPECT_EQ(DotPositions(dots), (std::vector<common::Seconds>{5.0, 9.0}));
  EXPECT_TRUE(DotPositions({}).empty());
}

}  // namespace
}  // namespace lightor::core
