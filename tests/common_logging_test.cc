#include <gtest/gtest.h>

#include <string>

#include "common/logging.h"

namespace lightor::common {
namespace {

/// Restores the global logging configuration around each test.
class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_level_ = GetLogLevel(); }
  void TearDown() override {
    SetLogLevel(saved_level_);
    ClearComponentLogLevels();
    EnableStderrLogging(true);
  }

 private:
  LogLevel saved_level_ = LogLevel::kInfo;
};

TEST_F(LoggingTest, ParseLogLevel) {
  LogLevel level = LogLevel::kError;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("INFO", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(ParseLogLevel("warn", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("Warning", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("error", &level));
  EXPECT_EQ(level, LogLevel::kError);
  level = LogLevel::kDebug;
  EXPECT_FALSE(ParseLogLevel("loud", &level));
  EXPECT_EQ(level, LogLevel::kDebug);  // untouched on failure
  EXPECT_FALSE(ParseLogLevel("", &level));
}

TEST_F(LoggingTest, SetLogLevelFromString) {
  EXPECT_TRUE(SetLogLevelFromString("error"));
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  EXPECT_FALSE(SetLogLevelFromString("nope"));
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);  // unchanged
}

TEST_F(LoggingTest, CaptureLogsSeesEmittedStatements) {
  SetLogLevel(LogLevel::kInfo);
  CaptureLogs capture;
  LIGHTOR_LOG(Info) << "hello " << 42;
  LIGHTOR_LOG(Warning) << "watch out";
  ASSERT_EQ(capture.entries().size(), 2u);
  EXPECT_EQ(capture.entries()[0].message, "hello 42");
  EXPECT_EQ(capture.entries()[0].level, LogLevel::kInfo);
  EXPECT_TRUE(capture.Contains("watch out"));
  EXPECT_FALSE(capture.Contains("absent"));
}

TEST_F(LoggingTest, BelowThresholdStatementsAreDropped) {
  SetLogLevel(LogLevel::kWarning);
  CaptureLogs capture;
  LIGHTOR_LOG(Debug) << "quiet";
  LIGHTOR_LOG(Info) << "also quiet";
  LIGHTOR_LOG(Error) << "loud";
  ASSERT_EQ(capture.entries().size(), 1u);
  EXPECT_EQ(capture.entries()[0].level, LogLevel::kError);
}

// The satellite fix: a below-threshold LIGHTOR_LOG must short-circuit
// before evaluating its streamed operands.
TEST_F(LoggingTest, BelowThresholdOperandsAreNeverEvaluated) {
  SetLogLevel(LogLevel::kWarning);
  CaptureLogs capture;
  int evaluations = 0;
  auto expensive = [&evaluations]() {
    ++evaluations;
    return std::string("costly");
  };
  LIGHTOR_LOG(Debug) << expensive();
  LIGHTOR_LOG(Info) << expensive();
  EXPECT_EQ(evaluations, 0);
  LIGHTOR_LOG(Error) << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LoggingTest, LogComponentFromPath) {
  EXPECT_EQ(LogComponentFromPath("/root/repo/src/storage/web_service.cc"),
            "storage");
  EXPECT_EQ(LogComponentFromPath("src/core/initializer.cc"), "core");
  EXPECT_EQ(LogComponentFromPath("/root/repo/tools/obs_dump.cc"), "tools");
  EXPECT_EQ(LogComponentFromPath("bench/microbench.cc"), "bench");
}

TEST_F(LoggingTest, ComponentOverrideLowersThreshold) {
  SetLogLevel(LogLevel::kError);
  // This file's component is "tests".
  SetComponentLogLevel("tests", LogLevel::kDebug);
  CaptureLogs capture;
  LIGHTOR_LOG(Debug) << "component debug";
  EXPECT_TRUE(capture.Contains("component debug"));
}

TEST_F(LoggingTest, ComponentOverrideRaisesThreshold) {
  SetLogLevel(LogLevel::kDebug);
  SetComponentLogLevel("tests", LogLevel::kError);
  CaptureLogs capture;
  LIGHTOR_LOG(Info) << "suppressed here";
  EXPECT_FALSE(capture.Contains("suppressed here"));
  LIGHTOR_LOG(Error) << "still loud";
  EXPECT_TRUE(capture.Contains("still loud"));
  ClearComponentLogLevels();
  LIGHTOR_LOG(Info) << "back to normal";
  EXPECT_TRUE(capture.Contains("back to normal"));
}

TEST_F(LoggingTest, EntriesCarrySourceLocation) {
  SetLogLevel(LogLevel::kInfo);
  CaptureLogs capture;
  LIGHTOR_LOG(Info) << "locate me";
  ASSERT_EQ(capture.entries().size(), 1u);
  const LogEntry& entry = capture.entries()[0];
  EXPECT_NE(std::string(entry.file).find("common_logging_test.cc"),
            std::string::npos);
  EXPECT_GT(entry.line, 0);
  EXPECT_EQ(entry.component, "tests");
}

TEST_F(LoggingTest, MacroIsStatementSafe) {
  SetLogLevel(LogLevel::kInfo);
  CaptureLogs capture;
  // A dangling-else-prone context must compile and behave.
  if (true)
    LIGHTOR_LOG(Info) << "then-branch";
  else
    LIGHTOR_LOG(Info) << "else-branch";
  EXPECT_TRUE(capture.Contains("then-branch"));
  EXPECT_FALSE(capture.Contains("else-branch"));
}

TEST_F(LoggingTest, LogLevelNames) {
  EXPECT_STREQ(LogLevelName(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(LogLevelName(LogLevel::kInfo), "INFO");
  EXPECT_STREQ(LogLevelName(LogLevel::kWarning), "WARN");
  EXPECT_STREQ(LogLevelName(LogLevel::kError), "ERROR");
}

}  // namespace
}  // namespace lightor::common
