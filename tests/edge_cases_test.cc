/// Cross-module edge cases that the per-module suites don't reach.

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "core/evaluation.h"
#include "core/extractor.h"
#include "core/initializer.h"
#include "sim/bridge.h"
#include "sim/corpus.h"
#include "sim/viewer_simulator.h"

namespace lightor {
namespace {

TEST(TypeClassifierEdgeTest, NoPlaysIsCoinFlipProbability) {
  core::TypeClassifier classifier;
  core::PlayFeatures empty;
  EXPECT_DOUBLE_EQ(classifier.TypeIProbability(empty), 0.5);
}

TEST(ExtractorEdgeTest, AllPlaysFilteredYieldsTypeIStep) {
  core::HighlightExtractor extractor;
  // Every play is a sub-second probe: all filtered.
  std::vector<core::Play> plays;
  for (int i = 0; i < 10; ++i) {
    plays.emplace_back("u", 1000.0 + i, 1000.5 + i);
  }
  const auto step = extractor.RefineOnce(plays, 1000.0);
  EXPECT_FALSE(step.enough_plays);
  EXPECT_EQ(step.type, core::DotType::kTypeI);
}

TEST(ExtractorEdgeTest, DotAtVideoStartNeverGoesNegative) {
  core::HighlightExtractor extractor;
  const auto step = extractor.RefineOnce({}, 0.0);
  EXPECT_DOUBLE_EQ(step.new_dot, 0.0);
}

TEST(InitializerEdgeTest, DetectWithZeroKReturnsEmpty) {
  const auto corpus = sim::MakeCorpus(sim::GameType::kDota2, 1, 171);
  core::HighlightInitializer init;
  core::TrainingVideo tv;
  tv.messages = sim::ToCoreMessages(corpus[0].chat);
  tv.video_length = corpus[0].truth.meta.length;
  for (const auto& h : corpus[0].truth.highlights) {
    tv.highlights.push_back(h.span);
  }
  ASSERT_TRUE(init.Train({tv}).ok());
  EXPECT_TRUE(init.Detect(tv.messages, tv.video_length, 0).empty());
}

TEST(InitializerEdgeTest, DetectWithHugeKReturnsAllSeparatedWindows) {
  const auto corpus = sim::MakeCorpus(sim::GameType::kDota2, 1, 172);
  core::HighlightInitializer init;
  core::TrainingVideo tv;
  tv.messages = sim::ToCoreMessages(corpus[0].chat);
  tv.video_length = corpus[0].truth.meta.length;
  for (const auto& h : corpus[0].truth.highlights) {
    tv.highlights.push_back(h.span);
  }
  ASSERT_TRUE(init.Train({tv}).ok());
  const auto dots = init.Detect(tv.messages, tv.video_length, 100000);
  // Bounded by the δ-separation packing of the timeline.
  EXPECT_LE(static_cast<double>(dots.size()),
            tv.video_length / init.options().min_separation + 1.0);
  EXPECT_GT(dots.size(), 3u);
}

TEST(InitializerEdgeTest, ConcurrentDetectIsSafe) {
  // Detection is const and pure; many threads may serve queries against
  // one trained model (the web-service deployment pattern).
  const auto corpus = sim::MakeCorpus(sim::GameType::kDota2, 3, 173);
  core::HighlightInitializer init;
  core::TrainingVideo tv;
  tv.messages = sim::ToCoreMessages(corpus[0].chat);
  tv.video_length = corpus[0].truth.meta.length;
  for (const auto& h : corpus[0].truth.highlights) {
    tv.highlights.push_back(h.span);
  }
  ASSERT_TRUE(init.Train({tv}).ok());

  const auto messages = sim::ToCoreMessages(corpus[1].chat);
  const double length = corpus[1].truth.meta.length;
  const auto reference = init.Detect(messages, length, 5);

  std::vector<std::vector<core::RedDot>> results(16);
  common::ParallelFor(16, [&](size_t i) {
    results[i] = init.Detect(messages, length, 5);
  });
  for (const auto& dots : results) {
    ASSERT_EQ(dots.size(), reference.size());
    for (size_t d = 0; d < dots.size(); ++d) {
      EXPECT_DOUBLE_EQ(dots[d].position, reference[d].position);
    }
  }
}

TEST(EvaluationEdgeTest, OverlappingHighlightsCountOnce) {
  // A position inside two overlapping spans is still one correct hit.
  const std::vector<common::Interval> hs = {{100.0, 130.0}, {120.0, 150.0}};
  EXPECT_DOUBLE_EQ(core::VideoPrecisionStart({125.0}, hs), 1.0);
}

TEST(EvaluationEdgeTest, EmptyTruthMeansZeroPrecision) {
  EXPECT_DOUBLE_EQ(core::VideoPrecisionStart({10.0}, {}), 0.0);
  EXPECT_DOUBLE_EQ(core::VideoPrecisionEnd({10.0}, {}), 0.0);
}

TEST(ViewerEdgeTest, DotBeyondVideoEndStillSafe) {
  sim::GroundTruthVideo video;
  video.meta.id = "v";
  video.meta.length = 100.0;
  video.highlights.push_back({common::Interval(40.0, 60.0), 0.8});
  sim::ViewerSimulator sim;
  common::Rng rng(5);
  // A (buggy upstream) dot placed past the end: plays must stay in range.
  const auto plays = sim.CollectPlays(video, 150.0, 50, rng);
  for (const auto& play : plays) {
    EXPECT_GE(play.span.start, 0.0);
    EXPECT_LE(play.span.end, video.meta.length);
  }
}

TEST(ViewerEdgeTest, VideoWithNoHighlightsOnlyProbes) {
  sim::GroundTruthVideo video;
  video.meta.id = "v";
  video.meta.length = 1000.0;
  sim::ViewerSimulator sim;
  common::Rng rng(6);
  const auto plays = sim.CollectPlays(video, 500.0, 100, rng);
  int engaged = 0;
  for (const auto& play : plays) {
    if (play.span.Length() > 20.0 && play.span.Length() < 120.0) ++engaged;
  }
  EXPECT_LT(engaged, 10);  // nothing to engage with
}

TEST(BridgeEdgeTest, EmptyChatConverts) {
  EXPECT_TRUE(sim::ToCoreMessages({}).empty());
  EXPECT_TRUE(sim::ToCorePlays({}).empty());
}

}  // namespace
}  // namespace lightor
