#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "ml/gru.h"

namespace lightor::ml {
namespace {

LstmOptions TinyOptions() {
  LstmOptions opts;
  opts.hidden_size = 4;
  opts.num_layers = 2;
  opts.max_sequence_length = 16;
  opts.epochs = 30;
  opts.learning_rate = 0.02;
  opts.seed = 7;
  return opts;
}

TEST(CharGruTest, UntrainedOutputsValidProbability) {
  CharGruClassifier model(TinyOptions());
  const double p = model.PredictProbability("hello world");
  EXPECT_GT(p, 0.0);
  EXPECT_LT(p, 1.0);
}

TEST(CharGruTest, DeterministicGivenSeed) {
  CharGruClassifier a(TinyOptions());
  CharGruClassifier b(TinyOptions());
  EXPECT_DOUBLE_EQ(a.PredictProbability("xyz"), b.PredictProbability("xyz"));
}

TEST(CharGruTest, RejectsBadInput) {
  CharGruClassifier model(TinyOptions());
  EXPECT_TRUE(model.Train({}, {}).IsInvalidArgument());
  EXPECT_TRUE(model.Train({"a"}, {1, 0}).IsInvalidArgument());
  EXPECT_TRUE(model.Train({"a"}, {7}).IsInvalidArgument());
}

TEST(CharGruTest, GradientMatchesNumericDifference) {
  LstmOptions opts = TinyOptions();
  opts.hidden_size = 3;
  opts.num_layers = 2;
  CharGruClassifier model(opts);
  const std::string text = "ab!cd";
  const int label = 1;

  const std::vector<double> analytic = model.Gradients(text, label);
  auto& params = model.mutable_parameters();
  ASSERT_EQ(analytic.size(), params.size());

  const double eps = 1e-6;
  for (size_t idx = 0; idx < params.size();
       idx += std::max<size_t>(1, params.size() / 60)) {
    const double saved = params[idx];
    params[idx] = saved + eps;
    const double up = model.Loss(text, label);
    params[idx] = saved - eps;
    const double down = model.Loss(text, label);
    params[idx] = saved;
    const double numeric = (up - down) / (2.0 * eps);
    EXPECT_NEAR(analytic[idx], numeric,
                1e-4 * std::max(1.0, std::abs(numeric)))
        << "param index " << idx;
  }
}

TEST(CharGruTest, TrainingReducesLossAndLearnsPattern) {
  CharGruClassifier model(TinyOptions());
  std::vector<std::string> texts;
  std::vector<int> labels;
  for (int i = 0; i < 8; ++i) {
    texts.push_back(std::string(4 + i % 3, 'x'));
    labels.push_back(1);
    texts.push_back(std::string(4 + i % 3, 'o'));
    labels.push_back(0);
  }
  ASSERT_TRUE(model.Train(texts, labels).ok());
  ASSERT_GE(model.epoch_losses().size(), 2u);
  EXPECT_LT(model.epoch_losses().back(), model.epoch_losses().front());
  EXPECT_GT(model.PredictProbability("xxxxx"), 0.7);
  EXPECT_LT(model.PredictProbability("ooooo"), 0.3);
}

TEST(CharGruTest, ParameterCountMatchesArchitecture) {
  LstmOptions opts = TinyOptions();
  CharGruClassifier model(opts);
  const size_t h = opts.hidden_size;
  const size_t in = CharVocab::kInputDim;
  const size_t expected = (3 * h * in + 3 * h * h + 3 * h) +
                          (3 * h * h + 3 * h * h + 3 * h) + h + 1;
  EXPECT_EQ(model.num_parameters(), expected);
}

TEST(CharGruTest, FewerParametersThanLstm) {
  // The classic GRU selling point: ~3/4 of the LSTM's parameters at the
  // same hidden size.
  LstmOptions opts = TinyOptions();
  CharGruClassifier gru(opts);
  CharLstmClassifier lstm(opts);
  EXPECT_LT(gru.num_parameters(), lstm.num_parameters());
}

}  // namespace
}  // namespace lightor::ml
