#include <gtest/gtest.h>

#include "sim/bridge.h"
#include "sim/corpus.h"
#include "sim/platform.h"

namespace lightor::sim {
namespace {

Platform::Options SmallPlatform() {
  Platform::Options opts;
  opts.num_channels = 4;
  opts.videos_per_channel = 3;
  opts.seed = 21;
  return opts;
}

TEST(PlatformTest, ChannelsSortedByPopularity) {
  Platform platform(SmallPlatform());
  const auto& channels = platform.channels();
  ASSERT_EQ(channels.size(), 4u);
  for (size_t i = 1; i < channels.size(); ++i) {
    EXPECT_GE(channels[i - 1].popularity, channels[i].popularity);
  }
}

TEST(PlatformTest, ListRecentVideoIds) {
  Platform platform(SmallPlatform());
  const auto& channel = platform.channels()[0].name;
  auto ids = platform.ListRecentVideoIds(channel, 2);
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(ids.value().size(), 2u);
  auto all = platform.ListRecentVideoIds(channel, -1);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value().size(), 3u);
  EXPECT_TRUE(platform.ListRecentVideoIds("nope", 1).status().IsNotFound());
}

TEST(PlatformTest, GetVideoAndChat) {
  Platform platform(SmallPlatform());
  const auto ids = platform.AllVideoIds();
  ASSERT_EQ(ids.size(), 12u);
  auto video = platform.GetVideo(ids[0]);
  ASSERT_TRUE(video.ok());
  EXPECT_GT(video.value().num_viewers, 0);
  EXPECT_FALSE(video.value().chat.empty());
  auto chat = platform.FetchChat(ids[0]);
  ASSERT_TRUE(chat.ok());
  EXPECT_EQ(chat.value().size(), video.value().chat.size());
  EXPECT_TRUE(platform.GetVideo("missing").status().IsNotFound());
  EXPECT_TRUE(platform.FetchChat("missing").status().IsNotFound());
}

TEST(PlatformTest, PopularChannelsHaveDenserChat) {
  Platform::Options opts;
  opts.num_channels = 8;
  opts.videos_per_channel = 4;
  opts.seed = 3;
  Platform platform(opts);
  auto mean_rate = [&](const std::string& channel) {
    auto ids = platform.ListRecentVideoIds(channel, -1);
    double total = 0.0;
    for (const auto& id : ids.value()) {
      const auto video = platform.GetVideo(id).value();
      total += static_cast<double>(video.chat.size()) /
               (video.truth.meta.length / 3600.0);
    }
    return total / static_cast<double>(ids.value().size());
  };
  const double top = mean_rate(platform.channels().front().name);
  const double bottom = mean_rate(platform.channels().back().name);
  EXPECT_GT(top, bottom);
}

TEST(PlatformTest, AllVideosHaveViewersAboveFloor) {
  Platform platform(SmallPlatform());
  for (const auto& id : platform.AllVideoIds()) {
    EXPECT_GT(platform.GetVideo(id).value().num_viewers, 100);
  }
}

TEST(CorpusTest, MakeCorpusSizesAndGame) {
  const Corpus corpus = MakeCorpus(GameType::kLol, 5, 77);
  ASSERT_EQ(corpus.size(), 5u);
  for (const auto& video : corpus) {
    EXPECT_EQ(video.truth.meta.game, GameType::kLol);
    EXPECT_FALSE(video.chat.empty());
    EXPECT_FALSE(video.truth.highlights.empty());
  }
}

TEST(CorpusTest, DeterministicPerSeed) {
  const Corpus a = MakeCorpus(GameType::kDota2, 2, 5);
  const Corpus b = MakeCorpus(GameType::kDota2, 2, 5);
  EXPECT_EQ(a[0].chat.size(), b[0].chat.size());
  EXPECT_DOUBLE_EQ(a[1].truth.meta.length, b[1].truth.meta.length);
}

TEST(CorpusTest, SplitCorpusSlices) {
  const Corpus corpus = MakeCorpus(GameType::kDota2, 6, 9);
  const auto split = SplitCorpus(corpus, 2, 3);
  EXPECT_EQ(split.train.size(), 2u);
  EXPECT_EQ(split.test.size(), 3u);
  EXPECT_EQ(split.train[0].truth.meta.id, corpus[0].truth.meta.id);
  EXPECT_EQ(split.test[0].truth.meta.id, corpus[2].truth.meta.id);
  // Out-of-range requests clamp.
  const auto clamped = SplitCorpus(corpus, 5, 10);
  EXPECT_EQ(clamped.test.size(), 1u);
}

TEST(BridgeTest, ToCoreMessagesStripsAnnotations) {
  const Corpus corpus = MakeCorpus(GameType::kDota2, 1, 13);
  const auto messages = ToCoreMessages(corpus[0].chat);
  ASSERT_EQ(messages.size(), corpus[0].chat.size());
  for (size_t i = 0; i < messages.size(); i += 53) {
    EXPECT_DOUBLE_EQ(messages[i].timestamp, corpus[0].chat[i].timestamp);
    EXPECT_EQ(messages[i].text, corpus[0].chat[i].text);
  }
}

TEST(BridgeTest, SimulatedCrowdProviderCollects) {
  const Corpus corpus = MakeCorpus(GameType::kDota2, 1, 14);
  const auto& truth = corpus[0].truth;
  SimulatedCrowdProvider provider(truth, ViewerSimulator(), 10,
                                  common::Rng(5));
  const auto plays =
      provider.Collect(truth.highlights[0].span.start - 2.0);
  EXPECT_FALSE(plays.empty());
  EXPECT_EQ(provider.total_sessions(), 10);
  provider.Collect(truth.highlights[0].span.start);
  EXPECT_EQ(provider.total_sessions(), 20);
}

}  // namespace
}  // namespace lightor::sim
