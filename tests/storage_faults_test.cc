#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "storage/database.h"
#include "storage/log.h"
#include "storage/record.h"
#include "testing/fault_env.h"

namespace lightor::storage {
namespace {

namespace ft = lightor::testing;

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

// ---------------------------------------------------------------------------
// AppendLog over FaultEnv: the crash model in isolation.
// ---------------------------------------------------------------------------

/// Replays `path` and returns the record payloads.
std::vector<std::vector<uint8_t>> Replay(const std::string& path,
                                         ft::FaultEnv* env) {
  std::vector<std::vector<uint8_t>> records;
  auto st = AppendLog::ReplayFile(
      path, [&](const std::vector<uint8_t>& p) { records.push_back(p); },
      nullptr, env);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return records;
}

// Flush() pushes a record to the kernel, not the platter: it survives a
// process crash (SIGKILL) but not a power failure. This is the documented
// crash model of the default per-record-flush mode.
TEST(LogCrashModel, FlushReachesKernelButNotPlatter) {
  ft::FaultEnv env;
  AppendLog log;
  ASSERT_TRUE(log.Open("wal", &env).ok());
  ASSERT_TRUE(log.Append(Bytes("rec")).ok());  // per-record flush

  // SIGKILL right now: the kernel view survives.
  env.RecoverAfterCrash(ft::CrashModel::kProcess);
  EXPECT_EQ(Replay("wal", &env).size(), 1u);

  // Power failure: nothing was ever fsynced, so the record is gone.
  env.RecoverAfterCrash(ft::CrashModel::kPowerLoss);
  EXPECT_EQ(Replay("wal", &env).size(), 0u);
}

// The opt-in fsync mode upgrades the same workload to power-loss-safe.
TEST(LogCrashModel, SyncOnFlushSurvivesPowerLoss) {
  ft::FaultEnv env;
  AppendLog log;
  log.set_sync_on_flush(true);
  ASSERT_TRUE(log.Open("wal", &env).ok());
  ASSERT_TRUE(log.Append(Bytes("rec")).ok());

  env.RecoverAfterCrash(ft::CrashModel::kPowerLoss);
  EXPECT_EQ(Replay("wal", &env).size(), 1u);
}

// An fsync failure is the interesting in-between: the flush half succeeded
// (bytes reached the kernel) but the platter was never guaranteed. The
// caller sees an error; the record survives a process crash and is lost to
// power failure — FaultEnv must keep the two tiers distinguishable.
TEST(LogCrashModel, SyncFailureLeavesKernelTierOnly) {
  ft::FaultEnv env;
  AppendLog log;
  log.set_sync_on_flush(true);
  ASSERT_TRUE(log.Open("wal", &env).ok());
  // Points: 0 = open, 1 = header append, 2 = payload append, 3 = sync.
  env.InjectAt(3, ft::FaultKind::kSyncFail);

  auto st = log.Append(Bytes("rec"));
  EXPECT_TRUE(st.IsIoError()) << st.ToString();
  EXPECT_TRUE(log.wedged());
  EXPECT_EQ(env.stats().sync_fails, 1u);

  env.RecoverAfterCrash(ft::CrashModel::kProcess);
  EXPECT_EQ(Replay("wal", &env).size(), 1u);  // kernel tier survived
  env.RecoverAfterCrash(ft::CrashModel::kPowerLoss);
  EXPECT_EQ(Replay("wal", &env).size(), 0u);  // platter tier never had it
}

// ENOSPC partway through a flush wedges the log: the file ends in a torn
// frame, so appending more records would bury them behind garbage. Only
// Recover + reopen resumes service, with the torn tail truncated.
TEST(LogFaults, EnospcWedgesUntilRecoverAndReopen) {
  ft::FaultEnv env;
  AppendLog log;
  ASSERT_TRUE(log.Open("wal", &env).ok());
  ASSERT_TRUE(log.Append(Bytes("one")).ok());  // points 1..3
  env.InjectAt(6, ft::FaultKind::kEnospc);     // rec two's flush point

  EXPECT_TRUE(log.Append(Bytes("two")).IsIoError());
  EXPECT_TRUE(log.wedged());

  // Wedged: every operation fails fast, without touching the file.
  const uint64_t points_when_wedged = env.io_points();
  EXPECT_TRUE(log.Append(Bytes("three")).IsIoError());
  EXPECT_TRUE(log.Flush().IsIoError());
  EXPECT_EQ(env.io_points(), points_when_wedged);

  // The kernel has record one plus half of record two's frame.
  auto recovered = AppendLog::Recover("wal", &env);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered.value(), 1u);

  ASSERT_TRUE(log.Open("wal", &env).ok());
  EXPECT_FALSE(log.wedged());
  ASSERT_TRUE(log.Append(Bytes("three")).ok());
  const auto records = Replay("wal", &env);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0], Bytes("one"));
  EXPECT_EQ(records[1], Bytes("three"));
}

// Short writes and EINTR are absorbed by the Env write loops: with a heavy
// transient-fault schedule, every append still succeeds and every record
// replays intact.
TEST(LogFaults, TransientFaultsAreInvisibleToCallers) {
  ft::FaultEnv env;
  env.SeedRandomFaults(/*seed=*/9, /*p_transient=*/0.35, /*p_error=*/0.0);
  AppendLog log;
  ASSERT_TRUE(log.Open("wal", &env).ok());
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(log.Append(Bytes("record-" + std::to_string(i))).ok()) << i;
  }
  const auto stats = env.stats();
  EXPECT_GT(stats.short_writes + stats.eintrs, 0u);
  EXPECT_EQ(stats.enospcs + stats.flush_fails + stats.crashes, 0u);

  const auto records = Replay("wal", &env);
  ASSERT_EQ(records.size(), 40u);
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(records[i], Bytes("record-" + std::to_string(i)));
  }
}

// The whole point of the seeded schedule: one integer reproduces the exact
// same faults, ack pattern, and final bytes.
TEST(LogFaults, SeededScheduleIsReproducible) {
  auto run = [](ft::FaultEnv* env, std::vector<bool>* acks) {
    AppendLog log;
    log.set_flush_each_append(false);
    acks->push_back(log.Open("wal", env).ok());
    for (int i = 0; i < 30; ++i) {
      if (!log.is_open() || log.wedged()) {
        // Recovery itself can draw injected faults too; record, don't
        // assert — the point is that both runs fail the same way.
        acks->push_back(AppendLog::Recover("wal", env).ok());
        acks->push_back(log.Open("wal", env).ok());
      }
      acks->push_back(log.Append(Bytes("r" + std::to_string(i))).ok());
      if (i % 5 == 4) acks->push_back(log.Flush().ok());
    }
    log.Close();
  };

  ft::FaultEnv env_a;
  ft::FaultEnv env_b;
  env_a.SeedRandomFaults(42, 0.15, 0.2);
  env_b.SeedRandomFaults(42, 0.15, 0.2);
  std::vector<bool> acks_a;
  std::vector<bool> acks_b;
  run(&env_a, &acks_a);
  run(&env_b, &acks_b);

  EXPECT_EQ(acks_a, acks_b);
  EXPECT_EQ(env_a.io_points(), env_b.io_points());
  EXPECT_EQ(env_a.ReadFileBytes("wal"), env_b.ReadFileBytes("wal"));
  EXPECT_FALSE(acks_a.empty());
  // The schedule actually injected something (else the test is vacuous).
  const auto stats = env_a.stats();
  EXPECT_GT(stats.enospcs + stats.flush_fails, 0u);
}

// ---------------------------------------------------------------------------
// Crash-point enumeration over the full Database.
// ---------------------------------------------------------------------------

/// What the workload believes it accomplished: the records each Put acked,
/// and how many of them were covered by the last successful flush (the
/// durable lower bound under a process crash).
struct Tracker {
  std::vector<InteractionRecord> interactions;
  size_t interactions_flushed = 0;
  std::vector<ChatRecord> chats;
  std::vector<HighlightRecord> highlights;
};

InteractionRecord MakeInteraction(uint64_t id) {
  InteractionRecord rec;
  rec.video_id = "v";
  rec.user = "u" + std::to_string(id);
  rec.session_id = id;
  rec.event = StoredInteraction::kPlay;
  rec.wall_time = static_cast<double>(id);
  rec.position = 10.0 * static_cast<double>(id);
  rec.target = 5.0;
  return rec;
}

ChatRecord MakeChat(int i) {
  ChatRecord rec;
  rec.video_id = "v";
  rec.timestamp = static_cast<double>(i);
  rec.user = "chatter";
  rec.text = "msg " + std::to_string(i);
  return rec;
}

HighlightRecord MakeHighlight(int dot) {
  HighlightRecord rec;
  rec.video_id = "v";
  rec.dot_index = dot;
  rec.dot_position = 7.0 * dot;
  rec.start = rec.dot_position - 1.0;
  rec.end = rec.dot_position + 1.0;
  rec.score = 0.5;
  return rec;
}

/// The deterministic workload under test: interleaved puts on all three
/// logs; keeps going after errors the way a real server would. Each acked
/// record is recorded; in batched mode the flushed watermark advances only
/// on a successful FlushInteractions().
void RunWorkload(Database* db, bool batched, Tracker* t) {
  db->SetInteractionFlushEachAppend(!batched);
  for (int i = 1; i <= 6; ++i) {
    const auto rec = MakeInteraction(static_cast<uint64_t>(i));
    if (db->PutInteraction(rec).ok()) {
      t->interactions.push_back(rec);
      if (!batched) t->interactions_flushed = t->interactions.size();
    }
    if (i % 2 == 0) {
      const auto chat = MakeChat(i);
      if (db->PutChat(chat).ok()) t->chats.push_back(chat);
      const auto dot = MakeHighlight(i / 2);
      if (db->PutHighlight(dot).ok()) t->highlights.push_back(dot);
    }
    if (batched && i % 3 == 0 && db->FlushInteractions().ok()) {
      t->interactions_flushed = t->interactions.size();
    }
  }
}

/// The durability contract after crash + recovery: for every log, the
/// surviving records are an exact prefix of the acked sequence, at least
/// as long as the flushed watermark (per-record logs flush every append,
/// so chat and highlights must survive completely).
void CheckContract(Database* db, const Tracker& t, uint64_t crash_point) {
  // Interactions: prefix of acked, bounded below by the last flush.
  std::vector<InteractionRecord> present;
  for (const auto& [sid, recs] : db->interactions().SessionsForVideo("v")) {
    ASSERT_EQ(recs.size(), 1u) << "crash@" << crash_point;
    present.push_back(recs.front());
  }
  ASSERT_LE(present.size(), t.interactions.size()) << "crash@" << crash_point;
  EXPECT_GE(present.size(), t.interactions_flushed) << "crash@" << crash_point;
  for (size_t i = 0; i < present.size(); ++i) {
    EXPECT_EQ(present[i], t.interactions[i]) << "crash@" << crash_point;
  }

  // Chat (always per-record flush): every acked message survives.
  if (!t.chats.empty() || db->chat().HasVideo("v")) {
    const auto& chats = db->chat().GetByVideo("v");
    ASSERT_EQ(chats.size(), t.chats.size()) << "crash@" << crash_point;
    for (size_t i = 0; i < chats.size(); ++i) {
      EXPECT_EQ(chats[i], t.chats[i]) << "crash@" << crash_point;
    }
  }

  // Highlights (always per-record flush, unique dot indices).
  const auto dots = db->highlights().GetLatest("v");
  ASSERT_EQ(dots.size(), t.highlights.size()) << "crash@" << crash_point;
  for (size_t i = 0; i < dots.size(); ++i) {
    EXPECT_EQ(dots[i], t.highlights[i]) << "crash@" << crash_point;
  }
}

/// Pass 1: run the workload fault-free to learn the I/O point count N.
/// Pass 2: for every k in [0, N), crash at point k, simulate the restart,
/// and assert the reopened database honors the durability contract. Every
/// injected point must actually fire (100% coverage), and each failure is
/// reproducible from the single integer k.
void EnumerateCrashPoints(bool batched) {
  uint64_t total_points = 0;
  {
    ft::FaultEnv env;
    OpenOptions options;
    options.directory = "db";
    options.env = &env;
    auto db = DB::Open(options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    Tracker t;
    RunWorkload(db.value().db.get(), batched, &t);
    db.value().db.reset();  // clean shutdown consumes the close points too
    total_points = env.io_points();
    ASSERT_EQ(t.interactions.size(), 6u);  // fault-free run acks everything
  }
  ASSERT_GT(total_points, 20u);

  for (uint64_t k = 0; k < total_points; ++k) {
    ft::FaultEnv env;
    env.CrashAt(k);
    OpenOptions options;
    options.directory = "db";
    options.env = &env;
    Tracker t;
    {
      auto db = DB::Open(options);
      if (db.ok()) RunWorkload(db.value().db.get(), batched, &t);
      // A crash mid-open leaves nothing acked; the contract still holds.
    }
    ASSERT_TRUE(env.crashed()) << "point " << k << " was never reached";

    env.RecoverAfterCrash(ft::CrashModel::kProcess);
    auto reopened = DB::Open(options);
    ASSERT_TRUE(reopened.ok())
        << "crash@" << k << ": " << reopened.status().ToString();
    CheckContract(reopened.value().db.get(), t, k);
  }
}

TEST(CrashPointEnumeration, PerRecordFlushLosesNothingAcked) {
  EnumerateCrashPoints(/*batched=*/false);
}

TEST(CrashPointEnumeration, BatchedFlushBoundsLossToLastFlush) {
  EnumerateCrashPoints(/*batched=*/true);
}

// Power-loss enumeration for the sync_on_flush database: with fsync at
// every flush point, even pulling the plug loses nothing acked on the
// per-record logs.
TEST(CrashPointEnumeration, SyncOnFlushSurvivesPowerLossAtEveryPoint) {
  OpenOptions options;
  options.directory = "db";
  options.sync_on_flush = true;

  uint64_t total_points = 0;
  {
    ft::FaultEnv env;
    options.env = &env;
    auto db = DB::Open(options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    Tracker t;
    RunWorkload(db.value().db.get(), /*batched=*/false, &t);
    db.value().db.reset();
    total_points = env.io_points();
  }

  for (uint64_t k = 0; k < total_points; ++k) {
    ft::FaultEnv env;
    env.CrashAt(k);
    options.env = &env;
    Tracker t;
    {
      auto db = DB::Open(options);
      if (db.ok()) RunWorkload(db.value().db.get(), /*batched=*/false, &t);
    }
    ASSERT_TRUE(env.crashed()) << "point " << k << " was never reached";

    env.RecoverAfterCrash(ft::CrashModel::kPowerLoss);
    auto reopened = DB::Open(options);
    ASSERT_TRUE(reopened.ok())
        << "crash@" << k << ": " << reopened.status().ToString();
    CheckContract(reopened.value().db.get(), t, k);
  }
}

// ---------------------------------------------------------------------------
// Graceful degradation: a failed Put surfaces the error and counts it.
// ---------------------------------------------------------------------------

TEST(DatabaseFaults, FailedPutSurfacesErrorAndCountsMetric) {
  auto* counter = obs::Registry::Global().GetCounter(
      "lightor_storage_write_errors_total", {{"log", "interactions"}});
  const uint64_t before = counter->value();

  ft::FaultEnv env;
  OpenOptions options;
  options.directory = "db";
  options.env = &env;
  auto opened = DB::Open(options);
  ASSERT_TRUE(opened.ok());
  auto db = std::move(opened.value().db);

  ASSERT_TRUE(db->PutInteraction(MakeInteraction(1)).ok());
  // Next interaction append fails at its header-append point.
  env.InjectAt(env.io_points(), ft::FaultKind::kEnospc);
  auto st = db->PutInteraction(MakeInteraction(2));
  EXPECT_TRUE(st.IsIoError()) << st.ToString();
  EXPECT_EQ(counter->value(), before + 1);

  // The store was not polluted with the rejected record.
  EXPECT_EQ(db->interactions().SessionsForVideo("v").size(), 1u);
}

}  // namespace
}  // namespace lightor::storage
