#include "obs/trace_context.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "obs/request_log.h"
#include "obs/trace.h"

namespace lightor::obs {
namespace {

constexpr char kTraceparent[] =
    "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01";

TEST(ParseTraceparentTest, ParsesCanonicalHeader) {
  TraceContext ctx;
  ASSERT_TRUE(ParseTraceparent(kTraceparent, &ctx));
  EXPECT_EQ(ctx.trace_hi, 0x4bf92f3577b34da6u);
  EXPECT_EQ(ctx.trace_lo, 0xa3ce929d0e0e4736u);
  EXPECT_EQ(ctx.span_id, 0x00f067aa0ba902b7u);
  EXPECT_TRUE(ctx.sampled);
  EXPECT_TRUE(ctx.valid());
}

TEST(ParseTraceparentTest, SampledFlagIsBitZero) {
  TraceContext ctx;
  ASSERT_TRUE(ParseTraceparent(
      "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00", &ctx));
  EXPECT_FALSE(ctx.sampled);
  ASSERT_TRUE(ParseTraceparent(
      "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-ff", &ctx));
  EXPECT_TRUE(ctx.sampled);
  // Bit 0 clear in an otherwise-set byte: not sampled.
  ASSERT_TRUE(ParseTraceparent(
      "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-fe", &ctx));
  EXPECT_FALSE(ctx.sampled);
}

TEST(ParseTraceparentTest, HexCaseInsensitive) {
  TraceContext ctx;
  ASSERT_TRUE(ParseTraceparent(
      "00-4BF92F3577B34DA6A3CE929D0E0E4736-00F067AA0BA902B7-01", &ctx));
  EXPECT_EQ(ctx.trace_hi, 0x4bf92f3577b34da6u);
  EXPECT_EQ(ctx.span_id, 0x00f067aa0ba902b7u);
}

TEST(ParseTraceparentTest, RejectsBadVersion) {
  TraceContext ctx;
  EXPECT_FALSE(ParseTraceparent(
      "01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", &ctx));
  EXPECT_FALSE(ParseTraceparent(
      "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", &ctx));
  EXPECT_FALSE(ParseTraceparent(
      "zz-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", &ctx));
}

TEST(ParseTraceparentTest, RejectsWrongWidthsAndShapes) {
  TraceContext ctx;
  EXPECT_FALSE(ParseTraceparent("", &ctx));
  EXPECT_FALSE(ParseTraceparent("00", &ctx));
  // Short trace id.
  EXPECT_FALSE(ParseTraceparent(
      "00-4bf92f3577b34da6a3ce929d0e0e47-00f067aa0ba902b7-01", &ctx));
  // Short span id.
  EXPECT_FALSE(ParseTraceparent(
      "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902-01", &ctx));
  // Dashes in the wrong places (right length, shifted fields).
  EXPECT_FALSE(ParseTraceparent(
      "00-4bf92f3577b34da6a3ce929d0e0e47361-0f067aa0ba902b7-01", &ctx));
  // Trailing garbage.
  EXPECT_FALSE(ParseTraceparent(
      "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01x", &ctx));
  // Non-hex byte inside the trace id.
  EXPECT_FALSE(ParseTraceparent(
      "00-4bf92g3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", &ctx));
}

TEST(ParseTraceparentTest, RejectsReservedAllZeroIds) {
  TraceContext ctx;
  EXPECT_FALSE(ParseTraceparent(
      "00-00000000000000000000000000000000-00f067aa0ba902b7-01", &ctx));
  EXPECT_FALSE(ParseTraceparent(
      "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", &ctx));
}

TEST(ParseTraceparentTest, RejectsGarbageFlags) {
  TraceContext ctx;
  EXPECT_FALSE(ParseTraceparent(
      "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-zz", &ctx));
  EXPECT_FALSE(ParseTraceparent(
      "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0", &ctx));
}

TEST(ParseTraceparentTest, FailureLeavesOutputUntouched) {
  TraceContext ctx;
  ctx.trace_hi = 1;
  ctx.trace_lo = 2;
  ctx.span_id = 3;
  ctx.sampled = true;
  EXPECT_FALSE(ParseTraceparent("garbage", &ctx));
  EXPECT_EQ(ctx.trace_hi, 1u);
  EXPECT_EQ(ctx.trace_lo, 2u);
  EXPECT_EQ(ctx.span_id, 3u);
  EXPECT_TRUE(ctx.sampled);
}

TEST(ParseTraceparentTest, FormatRoundTrips) {
  TraceContext ctx;
  ctx.trace_hi = 0x4bf92f3577b34da6u;
  ctx.trace_lo = 0xa3ce929d0e0e4736u;
  ctx.span_id = 0x00f067aa0ba902b7u;
  ctx.sampled = true;
  EXPECT_EQ(FormatTraceparent(ctx), kTraceparent);
  TraceContext parsed;
  ASSERT_TRUE(ParseTraceparent(FormatTraceparent(ctx), &parsed));
  EXPECT_EQ(parsed.trace_hi, ctx.trace_hi);
  EXPECT_EQ(parsed.trace_lo, ctx.trace_lo);
  EXPECT_EQ(parsed.span_id, ctx.span_id);
  EXPECT_EQ(parsed.sampled, ctx.sampled);
}

TEST(TraceIdTest, FormatAndParseRoundTrip) {
  const std::string text = FormatTraceId(0x4bf92f3577b34da6u,
                                         0xa3ce929d0e0e4736u);
  EXPECT_EQ(text, "4bf92f3577b34da6a3ce929d0e0e4736");
  uint64_t hi = 0, lo = 0;
  ASSERT_TRUE(ParseTraceId(text, &hi, &lo));
  EXPECT_EQ(hi, 0x4bf92f3577b34da6u);
  EXPECT_EQ(lo, 0xa3ce929d0e0e4736u);
  EXPECT_FALSE(ParseTraceId("deadbeef", &hi, &lo));           // short
  EXPECT_FALSE(ParseTraceId(std::string(32, '0'), &hi, &lo));  // reserved
  EXPECT_FALSE(ParseTraceId(std::string(32, 'g'), &hi, &lo));  // non-hex
}

TEST(TraceIdTest, GeneratedIdsAreNonZeroAndDistinct) {
  std::set<uint64_t> seen;
  for (int i = 0; i < 64; ++i) {
    const uint64_t id = GenerateSpanId();
    EXPECT_NE(id, 0u);
    seen.insert(id);
  }
  EXPECT_EQ(seen.size(), 64u);
  const TraceContext ctx = GenerateTraceContext(/*sampled=*/true);
  EXPECT_TRUE(ctx.valid());
  EXPECT_NE(ctx.span_id, 0u);
  EXPECT_TRUE(ctx.sampled);
}

TEST(ScopedTraceContextTest, InstallsAndRestores) {
  EXPECT_FALSE(CurrentTraceContext().valid());
  EXPECT_EQ(CurrentSpanCollector(), nullptr);
  SpanCollector collector;
  {
    TraceContext ctx;
    ctx.trace_hi = 7;
    ctx.trace_lo = 9;
    ctx.span_id = 11;
    ScopedTraceContext guard(ctx, &collector);
    EXPECT_EQ(CurrentTraceContext().trace_hi, 7u);
    EXPECT_EQ(CurrentSpanCollector(), &collector);
    {
      ScopedTraceContext inner(GenerateTraceContext());
      EXPECT_NE(CurrentTraceContext().trace_hi, 7u);
      EXPECT_EQ(CurrentSpanCollector(), nullptr);
    }
    EXPECT_EQ(CurrentTraceContext().trace_hi, 7u);
    EXPECT_EQ(CurrentSpanCollector(), &collector);
  }
  EXPECT_FALSE(CurrentTraceContext().valid());
  EXPECT_EQ(CurrentSpanCollector(), nullptr);
}

TEST(SpanCollectorTest, SealedAfterTakeAndClose) {
  SpanCollector collector;
  TraceEvent event;
  event.name = "a";
  collector.Add(event);
  collector.AddStageMicros(Stage::kHandler, 10);
  collector.AddStageMicros(Stage::kHandler, 5);
  EXPECT_EQ(collector.StageMicros(Stage::kHandler), 15u);
  const auto spans = collector.TakeAndClose();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "a");
  // Late spans (stranded handler past its deadline) are dropped.
  collector.Add(event);
  EXPECT_TRUE(collector.TakeAndClose().empty());
}

TEST(ScopedStageTest, ChargesCollectorAndRecordsSpan) {
  SpanCollector collector;
  TraceContext ctx = GenerateTraceContext();
  {
    ScopedTraceContext guard(ctx, &collector);
    ScopedStage stage(Stage::kStorageFlush);
  }
  auto spans = collector.TakeAndClose();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "stage.storage_flush");
  EXPECT_EQ(spans[0].trace_hi, ctx.trace_hi);
  EXPECT_NE(spans[0].span_id, 0u);
}

TEST(ScopedStageTest, NoOpWithoutCollector) {
  ScopedStage stage(Stage::kHandler);  // must not crash or leak anywhere
}

WideEvent MakeEvent(uint64_t trace_lo, int status, uint64_t total_us) {
  WideEvent event;
  event.trace_hi = 0x1111111111111111u;
  event.trace_lo = trace_lo;
  event.span_id = 0x2222u;
  event.route = "session";
  event.method = "POST";
  event.status = status;
  event.total_us = total_us;
  return event;
}

TEST(RequestLogTest, TailSamplingKeepOrder) {
  RequestLog log(/*capacity=*/16);
  TailSamplingOptions options;
  options.slow_threshold_us = 1000;
  options.probabilistic_denominator = 0;  // isolate the rule tiers
  log.set_options(options);
  TraceRecorder recorder(64);

  // Errors always kept.
  EXPECT_TRUE(log.Emit(MakeEvent(1, 500, 10), nullptr, &recorder));
  // Slow requests always kept.
  EXPECT_TRUE(log.Emit(MakeEvent(2, 200, 5000), nullptr, &recorder));
  // Fast 2xx with no flag and no probabilistic tier: dropped.
  EXPECT_FALSE(log.Emit(MakeEvent(3, 200, 10), nullptr, &recorder));
  // The sampled flag forces a keep even for a fast 2xx.
  WideEvent flagged = MakeEvent(4, 200, 10);
  flagged.sampled_in = true;
  EXPECT_TRUE(log.Emit(std::move(flagged), nullptr, &recorder));

  const auto recent = log.Recent();
  ASSERT_EQ(recent.size(), 4u);  // every event rides the ring, kept or not
  EXPECT_EQ(recent[0].keep_reason, "flag");
  EXPECT_EQ(recent[1].keep_reason, "");
  EXPECT_FALSE(recent[1].kept);
  EXPECT_EQ(recent[2].keep_reason, "slow");
  EXPECT_EQ(recent[3].keep_reason, "error");

  // Kept traces have a root span in the recorder; dropped ones do not.
  EXPECT_FALSE(recorder.EventsForTrace(0x1111111111111111u, 1).empty());
  EXPECT_TRUE(recorder.EventsForTrace(0x1111111111111111u, 3).empty());
}

TEST(RequestLogTest, ProbabilisticTierIsDeterministicPerTraceId) {
  RequestLog log(/*capacity=*/16);
  TailSamplingOptions options;
  options.slow_threshold_us = 1'000'000;
  options.keep_errors = true;
  options.probabilistic_denominator = 1;  // keep everything
  log.set_options(options);
  TraceRecorder recorder(64);
  EXPECT_TRUE(log.Emit(MakeEvent(5, 200, 10), nullptr, &recorder));
  EXPECT_EQ(log.Recent()[0].keep_reason, "random");
}

TEST(RequestLogTest, RingWrapKeepsNewestAndRetentionInvariants) {
  RequestLog log(/*capacity=*/8);
  TailSamplingOptions options;
  options.slow_threshold_us = 1'000'000;
  options.probabilistic_denominator = 0;
  log.set_options(options);
  TraceRecorder recorder(1024);

  // 3x capacity: every 5th request errors (and is therefore kept).
  for (uint64_t i = 1; i <= 24; ++i) {
    log.Emit(MakeEvent(i, i % 5 == 0 ? 503 : 200, 10), nullptr, &recorder);
  }
  EXPECT_EQ(log.size(), 8u);
  EXPECT_EQ(log.total_emitted(), 24u);

  // Newest first, exactly the last `capacity` events.
  const auto recent = log.Recent();
  ASSERT_EQ(recent.size(), 8u);
  for (size_t i = 0; i < recent.size(); ++i) {
    EXPECT_EQ(recent[i].trace_lo, 24u - i);
  }
  const auto limited = log.Recent(/*limit=*/3);
  ASSERT_EQ(limited.size(), 3u);
  EXPECT_EQ(limited[0].trace_lo, 24u);

  // Retention invariant under wrap: every error's span tree survives in
  // the recorder even after its wide event fell off the ring.
  for (uint64_t i = 5; i <= 20; i += 5) {
    EXPECT_FALSE(recorder.EventsForTrace(0x1111111111111111u, i).empty())
        << "error trace " << i << " lost";
  }
}

TEST(RequestLogTest, EmitCopiesStagesAndShardFromCollector) {
  RequestLog log(/*capacity=*/4);
  TailSamplingOptions options;
  options.probabilistic_denominator = 0;
  log.set_options(options);
  TraceRecorder recorder(64);

  SpanCollector collector;
  collector.AddStageMicros(Stage::kHandler, 123);
  collector.AddStageMicros(Stage::kStorageFlush, 45);
  collector.set_shard(3);
  log.Emit(MakeEvent(9, 500, 10), &collector, &recorder);

  const auto recent = log.Recent();
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_EQ(recent[0].StageUs(Stage::kHandler), 123u);
  EXPECT_EQ(recent[0].StageUs(Stage::kStorageFlush), 45u);
  EXPECT_EQ(recent[0].shard, 3);
  // Emit sealed the collector: the stranded-worker contract.
  TraceEvent late;
  late.name = "late";
  collector.Add(late);
  EXPECT_TRUE(collector.TakeAndClose().empty());
}

TEST(RequestLogTest, SinkSeesEveryEventAndJsonIsFlat) {
  RequestLog log(/*capacity=*/4);
  std::vector<std::string> routes;
  log.SetSink([&](const WideEvent& event) { routes.push_back(event.route); });
  log.Emit(MakeEvent(1, 200, 10), nullptr, nullptr);
  log.Emit(MakeEvent(2, 503, 10), nullptr, nullptr);
  ASSERT_EQ(routes.size(), 2u);
  EXPECT_EQ(routes[0], "session");

  const std::string json = EncodeWideEventJson(log.Recent()[0]);
  EXPECT_NE(json.find("\"trace_id\":\""), std::string::npos);
  EXPECT_NE(json.find("\"route\":\"session\""), std::string::npos);
  EXPECT_NE(json.find("\"status\":503"), std::string::npos);

  const std::string csv = EncodeWideEventCsv(log.Recent()[0]);
  // Header and row have the same number of fields.
  const auto count = [](const std::string& s) {
    size_t n = 1;
    for (char c : s) n += c == ',';
    return n;
  };
  EXPECT_EQ(count(WideEventCsvHeader()), count(csv));
}

}  // namespace
}  // namespace lightor::obs
