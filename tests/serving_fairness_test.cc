/// Fair-share live ingest: per-channel token-bucket admission (429 +
/// Retry-After semantics), deficit-round-robin draining that keeps cold
/// channels fresh under a hot channel's 100x spike, and the no-ack-drop
/// guarantee — a throttled batch leaves no trace, so the finalized
/// stream equals a reference fed exactly the acked batches.

#include <gtest/gtest.h>

#include <algorithm>
#include <condition_variable>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serving/channel_scheduler.h"
#include "serving/highlight_server.h"
#include "sim/bridge.h"
#include "sim/corpus.h"
#include "sim/platform.h"
#include "storage/database.h"

namespace lightor::serving {
namespace {

std::vector<core::Message> MakeMessages(size_t count, double start_ts) {
  std::vector<core::Message> messages;
  messages.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    core::Message msg;
    msg.timestamp = start_ts + static_cast<double>(i);
    msg.user = "viewer" + std::to_string(i % 7);
    msg.text = i % 3 == 0 ? "what a goal gg" : "lol nice play";
    messages.push_back(std::move(msg));
  }
  return messages;
}

// ---------------------------------------------------------------------
// ChannelScheduler unit tests (fixed injectable clock).

TEST(ChannelSchedulerTest, RetryAfterComesFromBucketRefillTime) {
  double now = 0.0;
  ChannelScheduler::Options opts;
  opts.num_workers = 0;
  opts.rate_messages_per_sec = 10.0;
  opts.burst_messages = 20.0;
  opts.clock = [&now] { return now; };
  auto sched = ChannelScheduler::Create(opts, nullptr);
  ASSERT_TRUE(sched.ok()) << sched.status().ToString();

  // The bucket starts full: exactly `burst` messages are admitted.
  auto a = sched.value()->Admit("ch", 20);
  EXPECT_TRUE(a.admitted);
  EXPECT_EQ(a.retry_after_seconds, 0.0);

  // Empty bucket: 5 messages need 5/rate = 0.5 s of refill.
  a = sched.value()->Admit("ch", 5);
  EXPECT_FALSE(a.admitted);
  EXPECT_FALSE(a.closed);
  EXPECT_NEAR(a.retry_after_seconds, 0.5, 1e-9);

  // Advancing the clock by exactly the advertised delay admits it —
  // Retry-After is never an under-estimate.
  now = 0.5;
  a = sched.value()->Admit("ch", 5);
  EXPECT_TRUE(a.admitted);

  // Budgets are per-channel: a different channel is untouched.
  EXPECT_TRUE(sched.value()->Admit("other", 20).admitted);
}

TEST(ChannelSchedulerTest, ZeroRateDisablesAdmissionControl) {
  ChannelScheduler::Options opts;
  opts.num_workers = 0;
  opts.rate_messages_per_sec = 0.0;
  auto sched = ChannelScheduler::Create(opts, nullptr);
  ASSERT_TRUE(sched.ok());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(sched.value()->Admit("ch", 100000).admitted);
  }
}

TEST(ChannelSchedulerTest, ClosedChannelRefusesOffersUntilReopened) {
  ChannelScheduler::Options opts;
  opts.num_workers = 0;
  auto sched = ChannelScheduler::Create(opts, nullptr);
  ASSERT_TRUE(sched.ok());
  EXPECT_TRUE(sched.value()->Admit("ch", 1).admitted);
  sched.value()->CloseChannel("ch");
  auto a = sched.value()->Admit("ch", 1);
  EXPECT_FALSE(a.admitted);
  EXPECT_TRUE(a.closed);
  sched.value()->ReopenChannel("ch");
  EXPECT_TRUE(sched.value()->Admit("ch", 1).admitted);
}

TEST(ChannelSchedulerTest, DeficitRoundRobinServesColdAheadOfHotBacklog) {
  // Gate the drain callback so the whole offered load is queued before
  // any draining happens — the recorded drain order is then a pure
  // function of the DRR policy, not of offer/drain races.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::vector<std::string> order;

  ChannelScheduler::Options opts;
  opts.num_workers = 1;
  opts.quantum_messages = 8;
  opts.max_queue_messages = 100000;
  auto sched = ChannelScheduler::Create(
      opts, [&](const std::string& id, std::vector<ChannelScheduler::Batch>) {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return release; });
        order.push_back(id);
      });
  ASSERT_TRUE(sched.ok()) << sched.status().ToString();

  // Hot backlog: 50 batches x 4 messages, far past the quantum. Cold:
  // one 4-message batch each.
  for (int b = 0; b < 50; ++b) {
    ASSERT_TRUE(sched.value()
                    ->Offer("hot", MakeMessages(4, b * 4.0), 4)
                    .admitted);
  }
  const int kCold = 8;
  for (int c = 0; c < kCold; ++c) {
    ASSERT_TRUE(sched.value()
                    ->Offer("cold-" + std::to_string(c), MakeMessages(4, 0.0),
                            4)
                    .admitted);
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  sched.value()->FlushAll();

  // Every cold channel must be served before the hot backlog finishes:
  // DRR bounds a cold channel's wait by (active channels x quantum),
  // independent of the hot queue depth.
  size_t hot_last = 0;
  size_t hot_visits = 0;
  for (size_t i = 0; i < order.size(); ++i) {
    if (order[i] == "hot") {
      hot_last = i;
      ++hot_visits;
    }
  }
  ASSERT_GE(hot_visits, 10u) << "quantum should split the hot backlog";
  for (int c = 0; c < kCold; ++c) {
    const auto it = std::find(order.begin(), order.end(),
                              "cold-" + std::to_string(c));
    ASSERT_NE(it, order.end());
    const size_t pos = static_cast<size_t>(it - order.begin());
    EXPECT_LT(pos, hot_last)
        << "cold-" << c << " waited behind the whole hot backlog";
    // The cold visit must land within the first few DRR rounds, not
    // merely before the very last hot visit.
    EXPECT_LT(pos, static_cast<size_t>(2 * kCold + 8));
  }
}

// ---------------------------------------------------------------------
// Server-level tests.

class ServingFairnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("lightor_fairness_test_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    std::filesystem::remove_all(dir_);
    std::filesystem::remove_all(dir_ + "_ref");

    sim::Platform::Options popts;
    popts.num_channels = 2;
    popts.videos_per_channel = 2;
    popts.seed = 91;
    platform_ = std::make_unique<sim::Platform>(popts);

    const auto corpus = sim::MakeCorpus(sim::GameType::kDota2, 1, 92);
    core::TrainingVideo tv;
    tv.messages = sim::ToCoreMessages(corpus[0].chat);
    tv.video_length = corpus[0].truth.meta.length;
    for (const auto& h : corpus[0].truth.highlights) {
      tv.highlights.push_back(h.span);
    }
    lightor_ = std::make_unique<core::Lightor>();
    ASSERT_TRUE(lightor_->TrainInitializer({tv}).ok());
  }
  void TearDown() override {
    std::filesystem::remove_all(dir_);
    std::filesystem::remove_all(dir_ + "_ref");
  }

  std::unique_ptr<storage::Database> OpenDb(const std::string& dir) {
    auto db = storage::DB::Open(storage::OpenOptions(dir));
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    return std::move(db.value().db);
  }

  ServerOptions BaseOptions(storage::Database* db) {
    ServerOptions opts;
    opts.platform = Borrow<const sim::Platform>(platform_.get());
    opts.db = Borrow(db);
    opts.lightor = Borrow<const core::Lightor>(lightor_.get());
    opts.refine_batch_sessions = 0;
    return opts;
  }

  std::string dir_;
  std::unique_ptr<sim::Platform> platform_;
  std::unique_ptr<core::Lightor> lightor_;
};

TEST_F(ServingFairnessTest, ColdChannelStalenessBoundedUnderHotSpike) {
  auto db = OpenDb(dir_);
  ServerOptions opts = BaseOptions(db.get());
  opts.ingest_workers = 2;
  opts.ingest_quantum_messages = 64;
  opts.ingest_queue_messages = 200000;
  opts.stream_refresh_messages = 16;
  opts.stream_publish_max_delay_seconds = 0.05;
  auto server = HighlightServer::Create(opts);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  // Hot channel first: a backlog ~100x a cold channel's batch. Then N
  // cold channels, one batch each — they arrive while the hot backlog
  // is still queued and must not wait behind it.
  const int kCold = 16;
  const size_t kColdBatch = 32;
  for (int b = 0; b < 100; ++b) {
    IngestChatRequest req;
    req.video_id = "hot";
    req.messages = MakeMessages(kColdBatch, b * 1000.0);
    auto resp = server.value()->IngestChat(req);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    ASSERT_FALSE(resp.value().throttled);
  }
  for (int c = 0; c < kCold; ++c) {
    IngestChatRequest req;
    req.video_id = "cold-" + std::to_string(c);
    req.messages = MakeMessages(kColdBatch, 0.0);
    auto resp = server.value()->IngestChat(req);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    ASSERT_FALSE(resp.value().throttled);
    ASSERT_EQ(resp.value().accepted, kColdBatch);
  }
  server.value()->FlushIngest();

  // Every cold channel published a provisional snapshot and its worst
  // enqueue->publish staleness stayed under a generous wall-clock bound
  // (the whole offered load drains in well under a second; the bound
  // only has to catch "cold channel starved behind hot").
  const auto channels = server.value()->ChannelsSnapshot();
  int cold_seen = 0;
  for (const auto& ch : channels) {
    if (ch.video_id.rfind("cold-", 0) != 0) continue;
    ++cold_seen;
    EXPECT_EQ(ch.queued_messages, 0u) << ch.video_id;
    EXPECT_EQ(ch.admitted_messages, kColdBatch) << ch.video_id;
    EXPECT_GE(ch.publishes, 1u) << ch.video_id;
    EXPECT_LT(ch.max_staleness_seconds, 3.0) << ch.video_id;
  }
  EXPECT_EQ(cold_seen, kCold);
  server.value()->Shutdown();
}

TEST_F(ServingFairnessTest, ThrottleNeverDropsAckedMessages) {
  // Fixed clock: the bucket never refills, so with burst=100 and
  // 20-message batches exactly the first 5 batches are acked and every
  // later batch is throttled — deterministically.
  auto db = OpenDb(dir_);
  ServerOptions opts = BaseOptions(db.get());
  opts.ingest_workers = 1;
  opts.ingest_rate_messages_per_sec = 50.0;
  opts.ingest_burst_messages = 100.0;
  opts.ingest_clock = [] { return 0.0; };
  auto server = HighlightServer::Create(opts);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  const std::string video_id = "live-throttle";
  std::vector<IngestChatRequest> acked;
  size_t throttles = 0;
  for (int b = 0; b < 12; ++b) {
    IngestChatRequest req;
    req.video_id = video_id;
    req.messages = MakeMessages(20, b * 20.0);
    auto resp = server.value()->IngestChat(req);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    if (resp.value().throttled) {
      ++throttles;
      // Refused whole: nothing ingested, nothing queued, and the retry
      // delay names the bucket's refill time for this batch size.
      EXPECT_EQ(resp.value().accepted, 0u);
      EXPECT_EQ(resp.value().rejected, 0u);
      EXPECT_NEAR(resp.value().retry_after_seconds, 20.0 / 50.0, 1e-9);
    } else {
      EXPECT_EQ(resp.value().accepted, 20u);
      acked.push_back(std::move(req));
    }
  }
  EXPECT_EQ(acked.size(), 5u);
  EXPECT_EQ(throttles, 7u);

  FinalizeStreamRequest fin;
  fin.video_id = video_id;
  fin.video_length = 600.0;
  auto finalized = server.value()->FinalizeStream(fin);
  ASSERT_TRUE(finalized.ok()) << finalized.status().ToString();
  server.value()->Shutdown();

  // Reference: a plain synchronous server fed exactly the acked batches
  // must finalize to the identical highlight set — i.e. the throttled
  // batches left no trace and the acked ones all landed.
  auto ref_db = OpenDb(dir_ + "_ref");
  ServerOptions ref_opts = BaseOptions(ref_db.get());
  auto reference = HighlightServer::Create(ref_opts);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  for (const auto& req : acked) {
    auto resp = reference.value()->IngestChat(req);
    ASSERT_TRUE(resp.ok());
    ASSERT_EQ(resp.value().accepted, 20u);
  }
  auto ref_finalized = reference.value()->FinalizeStream(fin);
  ASSERT_TRUE(ref_finalized.ok()) << ref_finalized.status().ToString();
  reference.value()->Shutdown();

  EXPECT_EQ(finalized.value().video_length, ref_finalized.value().video_length);
  ASSERT_EQ(finalized.value().highlights.size(),
            ref_finalized.value().highlights.size());
  for (size_t i = 0; i < finalized.value().highlights.size(); ++i) {
    EXPECT_EQ(finalized.value().highlights[i],
              ref_finalized.value().highlights[i])
        << "highlight " << i;
  }
}

TEST_F(ServingFairnessTest, FinalizeClosesTheChannel) {
  auto db = OpenDb(dir_);
  ServerOptions opts = BaseOptions(db.get());
  opts.ingest_workers = 1;
  auto server = HighlightServer::Create(opts);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  IngestChatRequest req;
  req.video_id = "live-close";
  req.messages = MakeMessages(10, 0.0);
  ASSERT_TRUE(server.value()->IngestChat(req).ok());
  FinalizeStreamRequest fin;
  fin.video_id = "live-close";
  fin.video_length = 300.0;
  ASSERT_TRUE(server.value()->FinalizeStream(fin).ok());

  // Post-finalize ingest is a conflict, not a silent drop.
  req.messages = MakeMessages(10, 100.0);
  auto resp = server.value()->IngestChat(req);
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(resp.status().code(), common::StatusCode::kFailedPrecondition);
  server.value()->Shutdown();
}

TEST_F(ServingFairnessTest, FailedFinalizeReopensTheChannel) {
  auto db = OpenDb(dir_);
  ServerOptions opts = BaseOptions(db.get());
  opts.ingest_workers = 1;
  auto server = HighlightServer::Create(opts);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  // Finalizing a video with no active stream fails — and must not leave
  // the channel closed, or the id could never stream afterwards.
  FinalizeStreamRequest fin;
  fin.video_id = "never-streamed";
  ASSERT_FALSE(server.value()->FinalizeStream(fin).ok());

  IngestChatRequest req;
  req.video_id = "never-streamed";
  req.messages = MakeMessages(5, 0.0);
  auto resp = server.value()->IngestChat(req);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp.value().accepted, 5u);
  server.value()->Shutdown();
}

}  // namespace
}  // namespace lightor::serving
