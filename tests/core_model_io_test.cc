#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/model_io.h"
#include "sim/bridge.h"
#include "sim/corpus.h"

namespace lightor::core {
namespace {

class ModelIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("lightor_modelio_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  HighlightInitializer TrainInitializer(InitializerOptions opts = {}) {
    const auto corpus = sim::MakeCorpus(sim::GameType::kDota2, 1, 95);
    TrainingVideo tv;
    tv.messages = sim::ToCoreMessages(corpus[0].chat);
    tv.video_length = corpus[0].truth.meta.length;
    for (const auto& h : corpus[0].truth.highlights) {
      tv.highlights.push_back(h.span);
    }
    HighlightInitializer init(opts);
    EXPECT_TRUE(init.Train({tv}).ok());
    return init;
  }

  std::string dir_;
};

TEST_F(ModelIoTest, InitializerRoundTrip) {
  const auto original = TrainInitializer();
  const std::string path = dir_ + "/model.txt";
  ASSERT_TRUE(SaveInitializer(original, path).ok());

  auto loaded = LoadInitializer(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().trained());
  EXPECT_DOUBLE_EQ(loaded.value().adjustment_c(), original.adjustment_c());
  ASSERT_EQ(loaded.value().model().weights().size(),
            original.model().weights().size());
  for (size_t i = 0; i < original.model().weights().size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded.value().model().weights()[i],
                     original.model().weights()[i]);
  }
  EXPECT_DOUBLE_EQ(loaded.value().model().bias(), original.model().bias());

  // The loaded model must make identical predictions.
  const auto corpus = sim::MakeCorpus(sim::GameType::kDota2, 1, 96);
  const auto messages = sim::ToCoreMessages(corpus[0].chat);
  const auto a = original.Detect(messages, corpus[0].truth.meta.length, 5);
  const auto b =
      loaded.value().Detect(messages, corpus[0].truth.meta.length, 5);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].position, b[i].position);
    EXPECT_DOUBLE_EQ(a[i].score, b[i].score);
  }
}

TEST_F(ModelIoTest, OptionsSurviveRoundTrip) {
  InitializerOptions opts;
  opts.feature_set = FeatureSet::kNumLen;
  opts.window.size = 30.0;
  opts.min_separation = 90.0;
  const auto original = TrainInitializer(opts);
  const std::string path = dir_ + "/model.txt";
  ASSERT_TRUE(SaveInitializer(original, path).ok());
  auto loaded = LoadInitializer(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().options().feature_set, FeatureSet::kNumLen);
  EXPECT_DOUBLE_EQ(loaded.value().options().window.size, 30.0);
  EXPECT_DOUBLE_EQ(loaded.value().options().min_separation, 90.0);
}

TEST_F(ModelIoTest, SaveUntrainedFails) {
  HighlightInitializer untrained;
  EXPECT_TRUE(SaveInitializer(untrained, dir_ + "/x.txt")
                  .IsFailedPrecondition());
}

TEST_F(ModelIoTest, SaveRegressionVariantUnsupported) {
  InitializerOptions opts;
  opts.adjustment_kind = AdjustmentKind::kRegression;
  const auto init = TrainInitializer(opts);
  EXPECT_TRUE(SaveInitializer(init, dir_ + "/x.txt").IsNotSupported());
}

TEST_F(ModelIoTest, LoadMissingFileFails) {
  EXPECT_TRUE(LoadInitializer(dir_ + "/nope.txt").status().IsIoError());
}

TEST_F(ModelIoTest, LoadRejectsBadHeader) {
  const std::string path = dir_ + "/bad.txt";
  std::ofstream(path) << "not-a-model\n";
  EXPECT_TRUE(LoadInitializer(path).status().IsCorruption());
}

TEST_F(ModelIoTest, LoadRejectsTruncatedFile) {
  const auto original = TrainInitializer();
  const std::string path = dir_ + "/model.txt";
  ASSERT_TRUE(SaveInitializer(original, path).ok());
  // Truncate to half.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  EXPECT_FALSE(LoadInitializer(path).ok());
}

TEST_F(ModelIoTest, ClassifierRoundTrip) {
  TypeClassifier classifier;
  ml::Dataset data;
  for (int i = 0; i < 30; ++i) {
    data.Add({1.0, 0.0, 0.0}, 0);
    data.Add({0.0, 1.0, 0.0}, 1);
  }
  ASSERT_TRUE(classifier.Train(data).ok());
  const std::string path = dir_ + "/classifier.txt";
  ASSERT_TRUE(SaveTypeClassifier(classifier, path).ok());
  auto loaded = LoadTypeClassifier(path);
  ASSERT_TRUE(loaded.ok());
  PlayFeatures f;
  f.plays_before = 8.0;
  f.plays_after = 2.0;
  EXPECT_EQ(loaded.value().Classify(f), classifier.Classify(f));
  EXPECT_NEAR(loaded.value().TypeIProbability(f),
              classifier.TypeIProbability(f), 1e-12);
}

TEST_F(ModelIoTest, ClassifierSaveUntrainedFails) {
  TypeClassifier untrained;
  EXPECT_TRUE(SaveTypeClassifier(untrained, dir_ + "/c.txt")
                  .IsFailedPrecondition());
}

TEST_F(ModelIoTest, ClassifierWrongHeaderRejected) {
  // An initializer file must not load as a classifier.
  const auto init = TrainInitializer();
  const std::string path = dir_ + "/model.txt";
  ASSERT_TRUE(SaveInitializer(init, path).ok());
  EXPECT_TRUE(LoadTypeClassifier(path).status().IsCorruption());
}

}  // namespace
}  // namespace lightor::core
