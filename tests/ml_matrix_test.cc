#include <gtest/gtest.h>

#include "ml/matrix.h"

namespace lightor::ml {
namespace {

TEST(MatrixTest, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = 7.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 7.0);
}

TEST(MatrixTest, Fill) {
  Matrix m(2, 2);
  m.Fill(3.0);
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 2; ++c) EXPECT_DOUBLE_EQ(m(r, c), 3.0);
  }
}

TEST(MatrixTest, MatVecAccumulate) {
  Matrix m(2, 3);
  // m = [1 2 3; 4 5 6]
  int v = 1;
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) m(r, c) = v++;
  }
  std::vector<double> x = {1.0, 0.0, -1.0};
  std::vector<double> y = {10.0, 20.0};
  m.MatVecAccumulate(x, y);
  EXPECT_DOUBLE_EQ(y[0], 10.0 + (1.0 - 3.0));
  EXPECT_DOUBLE_EQ(y[1], 20.0 + (4.0 - 6.0));
}

TEST(MatrixTest, MatTVecAccumulate) {
  Matrix m(2, 2);
  m(0, 0) = 1.0;
  m(0, 1) = 2.0;
  m(1, 0) = 3.0;
  m(1, 1) = 4.0;
  std::vector<double> x = {1.0, 1.0};
  std::vector<double> y(2, 0.0);
  m.MatTVecAccumulate(x, y);
  EXPECT_DOUBLE_EQ(y[0], 4.0);  // 1+3
  EXPECT_DOUBLE_EQ(y[1], 6.0);  // 2+4
}

TEST(MatrixTest, AddOuterProduct) {
  Matrix m(2, 2);
  m.AddOuterProduct({1.0, 2.0}, {3.0, 4.0}, 2.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 6.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 8.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 12.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 16.0);
}

TEST(MatrixTest, AddScaledAndNorm) {
  Matrix a(1, 2);
  a(0, 0) = 3.0;
  a(0, 1) = 4.0;
  Matrix b(1, 2, 1.0);
  a.AddScaled(b, 2.0);
  EXPECT_DOUBLE_EQ(a(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(a(0, 1), 6.0);
  EXPECT_DOUBLE_EQ(b.SquaredNorm(), 2.0);
}

}  // namespace
}  // namespace lightor::ml
