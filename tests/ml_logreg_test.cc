#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "ml/logistic_regression.h"
#include "ml/metrics.h"

namespace lightor::ml {
namespace {

TEST(SigmoidTest, KnownValuesAndStability) {
  EXPECT_DOUBLE_EQ(Sigmoid(0.0), 0.5);
  EXPECT_NEAR(Sigmoid(2.0), 1.0 / (1.0 + std::exp(-2.0)), 1e-12);
  EXPECT_NEAR(Sigmoid(-800.0), 0.0, 1e-12);  // no overflow
  EXPECT_NEAR(Sigmoid(800.0), 1.0, 1e-12);
  EXPECT_NEAR(Sigmoid(5.0) + Sigmoid(-5.0), 1.0, 1e-12);
}

Dataset LinearlySeparable(common::Rng& rng, int n_per_class) {
  Dataset d;
  for (int i = 0; i < n_per_class; ++i) {
    d.Add({rng.Uniform(0.0, 0.4), rng.Uniform(0.0, 1.0)}, 0);
    d.Add({rng.Uniform(0.6, 1.0), rng.Uniform(0.0, 1.0)}, 1);
  }
  return d;
}

TEST(LogisticRegressionTest, LearnsSeparableData) {
  common::Rng rng(1);
  const Dataset d = LinearlySeparable(rng, 100);
  LogisticRegression lr;
  ASSERT_TRUE(lr.Fit(d).ok());
  EXPECT_TRUE(lr.fitted());
  int correct = 0;
  for (size_t i = 0; i < d.size(); ++i) {
    correct += lr.Predict(d.features[i]) == d.labels[i] ? 1 : 0;
  }
  EXPECT_GT(static_cast<double>(correct) / d.size(), 0.97);
  // The separating feature gets a positive weight.
  EXPECT_GT(lr.weights()[0], 0.0);
  EXPECT_LT(std::abs(lr.weights()[1]), std::abs(lr.weights()[0]));
}

TEST(LogisticRegressionTest, ProbabilitiesAreCalibratedDirectionally) {
  common::Rng rng(2);
  const Dataset d = LinearlySeparable(rng, 200);
  LogisticRegression lr;
  ASSERT_TRUE(lr.Fit(d).ok());
  EXPECT_GT(lr.PredictProbability({0.9, 0.5}), 0.9);
  EXPECT_LT(lr.PredictProbability({0.1, 0.5}), 0.1);
}

TEST(LogisticRegressionTest, RejectsBadInput) {
  LogisticRegression lr;
  EXPECT_TRUE(lr.Fit(Dataset{}).IsInvalidArgument());
  Dataset ragged;
  ragged.Add({1.0}, 0);
  ragged.Add({1.0, 2.0}, 1);
  EXPECT_TRUE(lr.Fit(ragged).IsInvalidArgument());
  Dataset zerowidth;
  zerowidth.Add({}, 0);
  EXPECT_TRUE(lr.Fit(zerowidth).IsInvalidArgument());
}

TEST(LogisticRegressionTest, ClassImbalanceHandledWithBalancing) {
  // 1:20 imbalance; balanced training should still recall positives.
  common::Rng rng(3);
  Dataset d;
  for (int i = 0; i < 400; ++i) {
    d.Add({rng.Uniform(0.0, 0.45)}, 0);
  }
  for (int i = 0; i < 20; ++i) {
    d.Add({rng.Uniform(0.55, 1.0)}, 1);
  }
  LogisticRegression lr;
  ASSERT_TRUE(lr.Fit(d).ok());
  std::vector<double> probs;
  for (const auto& row : d.features) {
    probs.push_back(lr.PredictProbability(row));
  }
  const auto cm = Confusion(probs, d.labels, 0.5);
  EXPECT_GT(cm.Recall(), 0.9);
}

TEST(LogisticRegressionTest, L2ShrinksWeights) {
  common::Rng rng(4);
  const Dataset d = LinearlySeparable(rng, 100);
  LogisticRegressionOptions weak;
  weak.l2_lambda = 1e-6;
  LogisticRegressionOptions strong;
  strong.l2_lambda = 10.0;
  LogisticRegression lr_weak(weak), lr_strong(strong);
  ASSERT_TRUE(lr_weak.Fit(d).ok());
  ASSERT_TRUE(lr_strong.Fit(d).ok());
  EXPECT_GT(std::abs(lr_weak.weights()[0]),
            std::abs(lr_strong.weights()[0]));
}

TEST(LogisticRegressionTest, ConvergenceStopsEarly) {
  Dataset d;
  d.Add({0.0}, 0);
  d.Add({1.0}, 1);
  LogisticRegressionOptions opts;
  opts.max_iterations = 100000;
  opts.tolerance = 1e-4;
  LogisticRegression lr(opts);
  ASSERT_TRUE(lr.Fit(d).ok());
  EXPECT_LT(lr.iterations_run(), 100000u);
}

TEST(LogisticRegressionTest, SetParametersBypassesTraining) {
  LogisticRegression lr;
  lr.SetParameters({2.0, -1.0}, 0.5);
  EXPECT_TRUE(lr.fitted());
  const double z = 2.0 * 1.0 - 1.0 * 2.0 + 0.5;
  EXPECT_NEAR(lr.PredictProbability({1.0, 2.0}), Sigmoid(z), 1e-12);
}

TEST(LogisticRegressionTest, BatchPredictMatchesSingle) {
  LogisticRegression lr;
  lr.SetParameters({1.0}, 0.0);
  const auto probs = lr.PredictProbabilities({{0.0}, {1.0}, {-1.0}});
  ASSERT_EQ(probs.size(), 3u);
  EXPECT_DOUBLE_EQ(probs[0], lr.PredictProbability({0.0}));
  EXPECT_DOUBLE_EQ(probs[1], lr.PredictProbability({1.0}));
}

}  // namespace
}  // namespace lightor::ml
