#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/adjustment.h"
#include "core/evaluation.h"
#include "sim/bridge.h"
#include "sim/corpus.h"

namespace lightor::core {
namespace {

std::vector<Message> MessagesAt(const std::vector<double>& times) {
  std::vector<Message> out;
  for (double t : times) {
    Message m;
    m.timestamp = t;
    m.text = "x";
    out.push_back(m);
  }
  return out;
}

TEST(BurstFeaturesTest, CountSpreadAndPeak) {
  const auto messages = MessagesAt({10, 11, 12, 13, 14});
  const auto f = ComputeBurstFeatures(messages, common::Interval(0, 25));
  EXPECT_DOUBLE_EQ(f.message_count, 5.0);
  EXPECT_GT(f.burst_spread, 0.5);
  EXPECT_LT(f.burst_spread, 5.0);
  EXPECT_GT(f.peak_offset, 5.0);
  EXPECT_LT(f.peak_offset, 20.0);
}

TEST(BurstFeaturesTest, EmptyIntervalIsZeros) {
  const auto messages = MessagesAt({10.0});
  const auto f = ComputeBurstFeatures(messages, common::Interval(50, 60));
  EXPECT_DOUBLE_EQ(f.message_count, 0.0);
  EXPECT_DOUBLE_EQ(f.burst_spread, 0.0);
}

std::vector<AdjustmentObservation> SyntheticObservations(
    common::Rng& rng, int n, double delay_mean, double delay_slope = 0.0) {
  // Delay depends (optionally) linearly on the burst spread.
  std::vector<AdjustmentObservation> obs;
  for (int i = 0; i < n; ++i) {
    AdjustmentObservation o;
    const double start = rng.Uniform(100.0, 3000.0);
    o.highlight = common::Interval(start, start + rng.Uniform(10.0, 40.0));
    o.features.message_count = rng.Uniform(20.0, 60.0);
    o.features.burst_spread = rng.Uniform(4.0, 12.0);
    o.features.peak_offset = rng.Uniform(15.0, 35.0);
    const double delay = delay_mean +
                         delay_slope * (o.features.burst_spread - 8.0) +
                         rng.Normal(0.0, 1.0);
    o.peak = start + delay;
    obs.push_back(o);
  }
  return obs;
}

TEST(AdjustmentModelTest, ConstantRecoversDelay) {
  common::Rng rng(1);
  const auto obs = SyntheticObservations(rng, 60, 22.0);
  AdjustmentModel model;
  ASSERT_TRUE(model.Train(obs).ok());
  EXPECT_TRUE(model.trained());
  EXPECT_NEAR(model.constant(), 22.0, 8.0);
  // Predicted starts are good dots for most observations.
  int good = 0;
  for (const auto& o : obs) {
    if (IsGoodRedDot(model.PredictStart(o.peak, o.features), o.highlight)) {
      ++good;
    }
  }
  EXPECT_GT(good, 50);
}

TEST(AdjustmentModelTest, RegressionBeatsConstantOnFeatureDependentDelay) {
  common::Rng rng(2);
  // Strong dependence of the delay on burst spread.
  const auto train = SyntheticObservations(rng, 120, 25.0, 3.0);
  const auto test = SyntheticObservations(rng, 120, 25.0, 3.0);

  AdjustmentOptions const_opts;
  const_opts.kind = AdjustmentKind::kConstant;
  AdjustmentModel constant(const_opts);
  ASSERT_TRUE(constant.Train(train).ok());

  AdjustmentOptions reg_opts;
  reg_opts.kind = AdjustmentKind::kRegression;
  AdjustmentModel regression(reg_opts);
  ASSERT_TRUE(regression.Train(train).ok());

  auto mean_abs_error = [&](const AdjustmentModel& model) {
    double acc = 0.0;
    for (const auto& o : test) {
      acc += std::abs(model.PredictStart(o.peak, o.features) -
                      o.highlight.start);
    }
    return acc / static_cast<double>(test.size());
  };
  EXPECT_LT(mean_abs_error(regression), mean_abs_error(constant));
}

TEST(AdjustmentModelTest, RegressionDelayClampedToSearchBand) {
  common::Rng rng(3);
  const auto train = SyntheticObservations(rng, 60, 25.0, 3.0);
  AdjustmentOptions opts;
  opts.kind = AdjustmentKind::kRegression;
  AdjustmentModel model(opts);
  ASSERT_TRUE(model.Train(train).ok());
  // Wildly out-of-range features must not produce absurd delays.
  BurstFeatures crazy;
  crazy.message_count = 1e6;
  crazy.burst_spread = 1e4;
  crazy.peak_offset = -1e4;
  const double delay = model.PredictedDelay(crazy);
  EXPECT_GE(delay, opts.search_min);
  EXPECT_LE(delay, opts.search_max);
}

TEST(AdjustmentModelTest, EmptyTrainingFails) {
  AdjustmentModel model;
  EXPECT_TRUE(model.Train({}).IsInvalidArgument());
}

TEST(InitializerRegressionAdjustmentTest, WorksEndToEnd) {
  const auto corpus = sim::MakeCorpus(sim::GameType::kDota2, 4, 91);
  InitializerOptions opts;
  opts.adjustment_kind = AdjustmentKind::kRegression;
  HighlightInitializer init(opts);

  TrainingVideo tv;
  tv.messages = sim::ToCoreMessages(corpus[0].chat);
  tv.video_length = corpus[0].truth.meta.length;
  for (const auto& h : corpus[0].truth.highlights) {
    tv.highlights.push_back(h.span);
  }
  ASSERT_TRUE(init.Train({tv}).ok());
  EXPECT_EQ(init.adjustment_model().kind(), AdjustmentKind::kRegression);

  double precision = 0.0;
  for (size_t i = 1; i < corpus.size(); ++i) {
    std::vector<common::Interval> truth;
    for (const auto& h : corpus[i].truth.highlights) truth.push_back(h.span);
    const auto dots = init.Detect(sim::ToCoreMessages(corpus[i].chat),
                                  corpus[i].truth.meta.length, 5);
    precision += VideoPrecisionStart(DotPositions(dots), truth);
  }
  EXPECT_GT(precision / 3.0, 0.5);
}

}  // namespace
}  // namespace lightor::core
