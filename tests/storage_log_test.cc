#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "storage/log.h"

namespace lightor::storage {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("lightor_log_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
    path_ = (dir_ / "test.log").string();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  static std::vector<uint8_t> Bytes(const std::string& s) {
    return {s.begin(), s.end()};
  }

  std::filesystem::path dir_;
  std::string path_;
};

TEST_F(LogTest, AppendAndReplay) {
  AppendLog log;
  ASSERT_TRUE(log.Open(path_).ok());
  ASSERT_TRUE(log.Append(Bytes("alpha")).ok());
  ASSERT_TRUE(log.Append(Bytes("beta")).ok());
  ASSERT_TRUE(log.Append(Bytes("")).ok());  // empty payload is legal
  log.Close();

  std::vector<std::string> seen;
  ASSERT_TRUE(AppendLog::ReplayFile(path_, [&](const std::vector<uint8_t>& p) {
                seen.emplace_back(p.begin(), p.end());
              }).ok());
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], "alpha");
  EXPECT_EQ(seen[1], "beta");
  EXPECT_EQ(seen[2], "");
}

TEST_F(LogTest, ReplayMissingFileIsEmpty) {
  int count = 0;
  ASSERT_TRUE(AppendLog::ReplayFile(path_, [&](const std::vector<uint8_t>&) {
                ++count;
              }).ok());
  EXPECT_EQ(count, 0);
}

TEST_F(LogTest, AppendWithoutOpenFails) {
  AppendLog log;
  EXPECT_TRUE(log.Append(Bytes("x")).IsFailedPrecondition());
}

TEST_F(LogTest, ReopenAppendsAfterExistingRecords) {
  {
    AppendLog log;
    ASSERT_TRUE(log.Open(path_).ok());
    ASSERT_TRUE(log.Append(Bytes("one")).ok());
  }
  {
    AppendLog log;
    ASSERT_TRUE(log.Open(path_).ok());
    ASSERT_TRUE(log.Append(Bytes("two")).ok());
  }
  int count = 0;
  ASSERT_TRUE(AppendLog::ReplayFile(path_, [&](const std::vector<uint8_t>&) {
                ++count;
              }).ok());
  EXPECT_EQ(count, 2);
}

TEST_F(LogTest, TornTailStopsReplayCleanly) {
  {
    AppendLog log;
    ASSERT_TRUE(log.Open(path_).ok());
    ASSERT_TRUE(log.Append(Bytes("good")).ok());
  }
  // Simulate a torn write: append half a frame.
  {
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    out.write("\x40\x00\x00", 3);
  }
  std::vector<std::string> seen;
  ASSERT_TRUE(AppendLog::ReplayFile(path_, [&](const std::vector<uint8_t>& p) {
                seen.emplace_back(p.begin(), p.end());
              }).ok());
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "good");
}

TEST_F(LogTest, CorruptedPayloadStopsReplay) {
  {
    AppendLog log;
    ASSERT_TRUE(log.Open(path_).ok());
    ASSERT_TRUE(log.Append(Bytes("first")).ok());
    ASSERT_TRUE(log.Append(Bytes("second")).ok());
  }
  // Flip a byte inside the second record's payload.
  {
    std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(-2, std::ios::end);
    f.put('X');
  }
  std::vector<std::string> seen;
  ASSERT_TRUE(AppendLog::ReplayFile(path_, [&](const std::vector<uint8_t>& p) {
                seen.emplace_back(p.begin(), p.end());
              }).ok());
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "first");
}

TEST_F(LogTest, RecoverTruncatesCorruptTail) {
  {
    AppendLog log;
    ASSERT_TRUE(log.Open(path_).ok());
    ASSERT_TRUE(log.Append(Bytes("keep-me")).ok());
  }
  const auto clean_size = std::filesystem::file_size(path_);
  {
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    out.write("garbage-not-a-frame-header-at-all", 33);
  }
  auto recovered = AppendLog::Recover(path_);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered.value(), 1u);
  EXPECT_EQ(std::filesystem::file_size(path_), clean_size);

  // After recovery the log accepts new appends and replays fully.
  AppendLog log;
  ASSERT_TRUE(log.Open(path_).ok());
  ASSERT_TRUE(log.Append(Bytes("fresh")).ok());
  log.Close();
  int count = 0;
  ASSERT_TRUE(AppendLog::ReplayFile(path_, [&](const std::vector<uint8_t>&) {
                ++count;
              }).ok());
  EXPECT_EQ(count, 2);
}

TEST_F(LogTest, RecoverMissingFileIsZero) {
  auto recovered = AppendLog::Recover(path_);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered.value(), 0u);
}

TEST_F(LogTest, BatchedFlushModeReplaysEverythingAfterFlush) {
  AppendLog log;
  ASSERT_TRUE(log.Open(path_).ok());
  EXPECT_TRUE(log.flush_each_append());
  log.set_flush_each_append(false);
  EXPECT_FALSE(log.flush_each_append());
  ASSERT_TRUE(log.Append(Bytes("one")).ok());
  ASSERT_TRUE(log.Append(Bytes("two")).ok());
  ASSERT_TRUE(log.Flush().ok());

  // The log is still open (no Close), yet a concurrent reader of the
  // file must see both records — Flush is the durability point.
  std::vector<std::string> seen;
  ASSERT_TRUE(AppendLog::ReplayFile(path_, [&](const std::vector<uint8_t>& p) {
                seen.emplace_back(p.begin(), p.end());
              }).ok());
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], "one");
  EXPECT_EQ(seen[1], "two");
  log.Close();
}

TEST_F(LogTest, FlushWithoutOpenFails) {
  AppendLog log;
  EXPECT_TRUE(log.Flush().IsFailedPrecondition());
}

TEST_F(LogTest, CloseFlushesBatchedAppends) {
  {
    AppendLog log;
    ASSERT_TRUE(log.Open(path_).ok());
    log.set_flush_each_append(false);
    ASSERT_TRUE(log.Append(Bytes("buffered")).ok());
    log.Close();  // close must not lose the unflushed tail
  }
  int count = 0;
  ASSERT_TRUE(AppendLog::ReplayFile(path_, [&](const std::vector<uint8_t>&) {
                ++count;
              }).ok());
  EXPECT_EQ(count, 1);
}

TEST_F(LogTest, LargePayloadRoundTrip) {
  std::vector<uint8_t> big(1 << 20);
  for (size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<uint8_t>(i * 31);
  }
  {
    AppendLog log;
    ASSERT_TRUE(log.Open(path_).ok());
    ASSERT_TRUE(log.Append(big).ok());
  }
  std::vector<uint8_t> read;
  ASSERT_TRUE(AppendLog::ReplayFile(path_, [&](const std::vector<uint8_t>& p) {
                read = p;
              }).ok());
  EXPECT_EQ(read, big);
}

}  // namespace
}  // namespace lightor::storage

namespace lightor::storage {
namespace {

// Failure injection: truncating the log at EVERY byte offset must never
// break recovery — replay yields a prefix of the original records and the
// recovered file accepts new appends.
TEST(LogFuzzTest, TruncationAtEveryOffsetRecovers) {
  const auto dir = std::filesystem::temp_directory_path() / "lightor_fuzz";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "fuzz.log").string();

  std::vector<std::vector<uint8_t>> records;
  for (int i = 0; i < 4; ++i) {
    records.push_back(std::vector<uint8_t>(
        static_cast<size_t>(5 + 11 * i), static_cast<uint8_t>('a' + i)));
  }
  // Reference file.
  const std::string ref_path = (dir / "ref.log").string();
  std::filesystem::remove(ref_path);
  {
    AppendLog log;
    ASSERT_TRUE(log.Open(ref_path).ok());
    for (const auto& rec : records) ASSERT_TRUE(log.Append(rec).ok());
  }
  const auto full = std::filesystem::file_size(ref_path);

  for (uintmax_t cut = 0; cut <= full; cut += 7) {
    std::filesystem::remove(path);
    std::filesystem::copy_file(ref_path, path);
    std::filesystem::resize_file(path, cut);

    auto recovered = AppendLog::Recover(path);
    ASSERT_TRUE(recovered.ok()) << "cut at " << cut;

    std::vector<std::vector<uint8_t>> read;
    ASSERT_TRUE(AppendLog::ReplayFile(path,
                                      [&](const std::vector<uint8_t>& p) {
                                        read.push_back(p);
                                      })
                    .ok());
    // Replay yields a strict prefix of the original records.
    ASSERT_LE(read.size(), records.size());
    for (size_t i = 0; i < read.size(); ++i) {
      EXPECT_EQ(read[i], records[i]) << "cut at " << cut;
    }
    // And the file accepts new appends afterwards.
    AppendLog log;
    ASSERT_TRUE(log.Open(path).ok());
    ASSERT_TRUE(log.Append({0xFF, 0x00}).ok());
    log.Close();
    size_t count = 0;
    ASSERT_TRUE(AppendLog::ReplayFile(path,
                                      [&](const std::vector<uint8_t>&) {
                                        ++count;
                                      })
                    .ok());
    EXPECT_EQ(count, read.size() + 1) << "cut at " << cut;
  }
  std::filesystem::remove_all(dir);
}

// Bit-flip injection: corrupting any single byte of the payload region
// must drop that record (and its suffix) without crashing or producing a
// phantom record.
TEST(LogFuzzTest, BitFlipsNeverCrashRecovery) {
  const auto dir = std::filesystem::temp_directory_path() / "lightor_fuzz2";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "flip.log").string();
  std::filesystem::remove(path);
  {
    AppendLog log;
    ASSERT_TRUE(log.Open(path).ok());
    ASSERT_TRUE(log.Append({1, 2, 3, 4, 5, 6, 7, 8}).ok());
    ASSERT_TRUE(log.Append({9, 10, 11, 12}).ok());
  }
  const auto size = std::filesystem::file_size(path);
  for (uintmax_t offset = 0; offset < size; offset += 3) {
    // Restore, then flip one byte.
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(static_cast<std::streamoff>(offset));
    const int original = f.get();
    f.seekp(static_cast<std::streamoff>(offset));
    f.put(static_cast<char>(original ^ 0x5A));
    f.close();

    size_t count = 0;
    ASSERT_TRUE(AppendLog::ReplayFile(path,
                                      [&](const std::vector<uint8_t>&) {
                                        ++count;
                                      })
                    .ok());
    EXPECT_LE(count, 2u);

    // Undo the flip.
    std::fstream g(path, std::ios::binary | std::ios::in | std::ios::out);
    g.seekp(static_cast<std::streamoff>(offset));
    g.put(static_cast<char>(original));
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace lightor::storage
