#!/bin/sh
# End-to-end exercise of the lightor CLI: gen -> train -> detect -> eval
# -> extract. $1 is the path to the lightor binary.
set -e
LIGHTOR="$1"
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

"$LIGHTOR" gen --game=lol --videos=3 --seed=9 --out="$TMP/corpus"
test -f "$TMP/corpus/corpus.index"

"$LIGHTOR" train --corpus="$TMP/corpus" --train-videos=1 \
    --model="$TMP/m.model"
test -f "$TMP/m.model"

VIDEO=$(sed -n '2p' "$TMP/corpus/corpus.index")
"$LIGHTOR" detect --corpus="$TMP/corpus" --model="$TMP/m.model" \
    --video="$VIDEO" --k=3 | grep -q "red dot"
"$LIGHTOR" eval --corpus="$TMP/corpus" --model="$TMP/m.model" --k=5 \
    --skip=1 | grep -q "mean over 2 videos"
"$LIGHTOR" extract --corpus="$TMP/corpus" --model="$TMP/m.model" \
    --video="$VIDEO" --k=2 --viewers=8 | grep -q "converged"

# Storage maintenance subcommands: a fresh directory reports the legacy
# layout, a checkpoint rotates it to generation 1, and inspect-manifest
# reads the MANIFEST back without opening the database.
"$LIGHTOR" inspect-manifest --db="$TMP/db" | grep -q "no MANIFEST"
"$LIGHTOR" checkpoint --db="$TMP/db" | grep -q "checkpoint gen 1"
"$LIGHTOR" inspect-manifest --db="$TMP/db" | grep -q "log_gen        1"

# Error paths exit non-zero.
if "$LIGHTOR" detect --corpus="$TMP/corpus" --model="$TMP/m.model" \
    --video=does-not-exist 2>/dev/null; then
  echo "expected failure for unknown video" >&2
  exit 1
fi
if "$LIGHTOR" bogus-command 2>/dev/null; then
  echo "expected failure for unknown command" >&2
  exit 1
fi
echo "cli ok"
