#include <gtest/gtest.h>

#include <memory>

#include "core/evaluation.h"
#include "core/lightor.h"
#include "sim/bridge.h"
#include "sim/corpus.h"

namespace lightor::core {
namespace {

TrainingVideo ToTraining(const sim::LabeledVideo& video) {
  TrainingVideo tv;
  tv.messages = sim::ToCoreMessages(video.chat);
  tv.video_length = video.truth.meta.length;
  for (const auto& h : video.truth.highlights) tv.highlights.push_back(h.span);
  return tv;
}

TEST(LightorTest, InitializeRequiresTraining) {
  Lightor lightor;
  const auto result = lightor.Initialize({}, 100.0, 5);
  EXPECT_TRUE(result.status().IsFailedPrecondition());
}

TEST(LightorTest, InitializeValidatesInput) {
  const auto corpus = sim::MakeCorpus(sim::GameType::kDota2, 1, 51);
  Lightor lightor;
  ASSERT_TRUE(lightor.TrainInitializer({ToTraining(corpus[0])}).ok());

  // Unsorted messages.
  std::vector<Message> unsorted(2);
  unsorted[0].timestamp = 10.0;
  unsorted[1].timestamp = 5.0;
  EXPECT_TRUE(
      lightor.Initialize(unsorted, 100.0, 5).status().IsInvalidArgument());

  // Bad video length.
  EXPECT_TRUE(lightor.Initialize({}, 0.0, 5).status().IsInvalidArgument());
}

TEST(LightorTest, EndToEndProcessExtractsHighlights) {
  const auto corpus = sim::MakeCorpus(sim::GameType::kDota2, 3, 52);
  Lightor lightor;
  ASSERT_TRUE(lightor.TrainInitializer({ToTraining(corpus[0])}).ok());

  const auto& test_video = corpus[1];
  common::Rng rng(9);
  auto factory = [&](const RedDot&) -> std::unique_ptr<PlayProvider> {
    return std::make_unique<sim::SimulatedCrowdProvider>(
        test_video.truth, sim::ViewerSimulator(), 10, rng.Fork());
  };
  const auto result = lightor.Process(
      sim::ToCoreMessages(test_video.chat), test_video.truth.meta.length,
      factory);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result.value().empty());
  EXPECT_LE(result.value().size(), lightor.options().top_k);

  std::vector<common::Interval> truth;
  for (const auto& h : test_video.truth.highlights) truth.push_back(h.span);
  std::vector<common::Seconds> starts, ends;
  for (const auto& item : result.value()) {
    starts.push_back(item.refined.boundary.start);
    ends.push_back(item.refined.boundary.end);
    EXPECT_GE(item.refined.iterations, 1);
  }
  EXPECT_GT(VideoPrecisionStart(starts, truth), 0.5);
  EXPECT_GT(VideoPrecisionEnd(ends, truth), 0.5);
}

TEST(LightorTest, ProcessRejectsNullProvider) {
  const auto corpus = sim::MakeCorpus(sim::GameType::kDota2, 1, 53);
  Lightor lightor;
  ASSERT_TRUE(lightor.TrainInitializer({ToTraining(corpus[0])}).ok());
  const auto result = lightor.Process(
      sim::ToCoreMessages(corpus[0].chat), corpus[0].truth.meta.length,
      [](const RedDot&) { return std::unique_ptr<PlayProvider>(); });
  // A failing provider no longer fails the batch: every dot is reported
  // with a per-dot Internal status instead.
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result.value().empty());
  for (const auto& item : result.value()) {
    EXPECT_TRUE(item.status.IsInternal());
    EXPECT_EQ(item.refined.iterations, 0);
  }
}

TEST(LightorTest, ProcessReportsPerDotFailures) {
  const auto corpus = sim::MakeCorpus(sim::GameType::kDota2, 2, 53);
  Lightor lightor;
  ASSERT_TRUE(lightor.TrainInitializer({ToTraining(corpus[0])}).ok());
  const auto& test_video = corpus[1];
  common::Rng rng(11);
  // Fail every other dot's provider; the rest refine normally.
  int calls = 0;
  const auto result = lightor.Process(
      sim::ToCoreMessages(test_video.chat), test_video.truth.meta.length,
      [&](const RedDot&) -> std::unique_ptr<PlayProvider> {
        if (++calls % 2 == 0) return nullptr;
        return std::make_unique<sim::SimulatedCrowdProvider>(
            test_video.truth, sim::ViewerSimulator(), 10, rng.Fork());
      });
  ASSERT_TRUE(result.ok());
  int failed = 0, refined = 0;
  for (const auto& item : result.value()) {
    if (item.status.ok()) {
      ++refined;
      EXPECT_GE(item.refined.iterations, 1);
    } else {
      ++failed;
      EXPECT_TRUE(item.status.IsInternal());
    }
  }
  EXPECT_GT(refined, 0);
  EXPECT_GT(failed, 0);
}

TEST(LightorTest, SetTypeClassifierInstallsModel) {
  Lightor lightor;
  TypeClassifier classifier;
  ml::Dataset data;
  for (int i = 0; i < 20; ++i) {
    data.Add({1.0, 0.0, 0.0}, 0);
    data.Add({0.0, 1.0, 0.0}, 1);
  }
  ASSERT_TRUE(classifier.Train(data).ok());
  lightor.SetTypeClassifier(classifier);
  EXPECT_TRUE(lightor.extractor().classifier().trained());
}

TEST(LightorTest, OptionsArePropagated) {
  LightorOptions opts;
  opts.top_k = 7;
  opts.initializer.min_separation = 90.0;
  opts.extractor.delta = 45.0;
  Lightor lightor(opts);
  EXPECT_EQ(lightor.options().top_k, 7u);
  EXPECT_DOUBLE_EQ(lightor.initializer().options().min_separation, 90.0);
  EXPECT_DOUBLE_EQ(lightor.extractor().options().delta, 45.0);
}

}  // namespace
}  // namespace lightor::core
