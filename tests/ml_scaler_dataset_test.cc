#include <gtest/gtest.h>

#include "common/rng.h"
#include "ml/dataset.h"
#include "ml/scaler.h"

namespace lightor::ml {
namespace {

TEST(MinMaxScalerTest, ScalesToUnitRange) {
  MinMaxScaler scaler;
  std::vector<std::vector<double>> rows = {{0.0, 10.0}, {5.0, 20.0},
                                           {10.0, 30.0}};
  ASSERT_TRUE(scaler.Fit(rows).ok());
  const auto t = scaler.Transform({5.0, 20.0});
  EXPECT_DOUBLE_EQ(t[0], 0.5);
  EXPECT_DOUBLE_EQ(t[1], 0.5);
  EXPECT_DOUBLE_EQ(scaler.Transform({0.0, 10.0})[0], 0.0);
  EXPECT_DOUBLE_EQ(scaler.Transform({10.0, 30.0})[1], 1.0);
}

TEST(MinMaxScalerTest, ClampsOutOfRange) {
  MinMaxScaler scaler;
  ASSERT_TRUE(scaler.Fit({{0.0}, {10.0}}).ok());
  EXPECT_DOUBLE_EQ(scaler.Transform({-100.0})[0], 0.0);
  EXPECT_DOUBLE_EQ(scaler.Transform({100.0})[0], 1.0);
}

TEST(MinMaxScalerTest, ConstantFeatureMapsToZero) {
  MinMaxScaler scaler;
  ASSERT_TRUE(scaler.Fit({{3.0}, {3.0}}).ok());
  EXPECT_DOUBLE_EQ(scaler.Transform({3.0})[0], 0.0);
}

TEST(MinMaxScalerTest, RejectsEmptyAndRagged) {
  MinMaxScaler scaler;
  EXPECT_TRUE(scaler.Fit({}).IsInvalidArgument());
  EXPECT_TRUE(scaler.Fit({{1.0}, {1.0, 2.0}}).IsInvalidArgument());
  EXPECT_FALSE(scaler.fitted());
}

TEST(MinMaxScalerTest, FitTransformInPlace) {
  MinMaxScaler scaler;
  std::vector<std::vector<double>> rows = {{0.0}, {4.0}};
  ASSERT_TRUE(scaler.FitTransform(rows).ok());
  EXPECT_DOUBLE_EQ(rows[0][0], 0.0);
  EXPECT_DOUBLE_EQ(rows[1][0], 1.0);
}

TEST(DatasetTest, AddAndCounts) {
  Dataset d;
  d.Add({1.0}, 1);
  d.Add({2.0}, 0);
  d.Add({3.0}, 1);
  EXPECT_EQ(d.size(), 3u);
  EXPECT_EQ(d.NumPositive(), 2u);
  EXPECT_TRUE(d.Validate().ok());
}

TEST(DatasetTest, ValidateCatchesProblems) {
  Dataset d;
  d.Add({1.0}, 1);
  d.labels.push_back(0);  // mismatched sizes
  EXPECT_TRUE(d.Validate().IsInvalidArgument());

  Dataset ragged;
  ragged.Add({1.0}, 0);
  ragged.Add({1.0, 2.0}, 1);
  EXPECT_TRUE(ragged.Validate().IsInvalidArgument());

  Dataset badlabel;
  badlabel.Add({1.0}, 2);
  EXPECT_TRUE(badlabel.Validate().IsInvalidArgument());
}

TEST(DatasetTest, AppendConcatenates) {
  Dataset a, b;
  a.Add({1.0}, 0);
  b.Add({2.0}, 1);
  b.Add({3.0}, 1);
  a.Append(b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a.NumPositive(), 2u);
}

TEST(DatasetTest, ShufflePreservesPairs) {
  Dataset d;
  for (int i = 0; i < 100; ++i) {
    d.Add({static_cast<double>(i)}, i % 2);
  }
  common::Rng rng(42);
  ShuffleDataset(d, rng);
  EXPECT_EQ(d.size(), 100u);
  for (size_t i = 0; i < d.size(); ++i) {
    // Pair invariant: label == feature parity.
    EXPECT_EQ(d.labels[i], static_cast<int>(d.features[i][0]) % 2);
  }
}

TEST(DatasetTest, SplitSizes) {
  Dataset d;
  for (int i = 0; i < 10; ++i) d.Add({static_cast<double>(i)}, 0);
  common::Rng rng(1);
  const auto split = SplitDataset(d, 0.7, rng);
  EXPECT_EQ(split.train.size(), 7u);
  EXPECT_EQ(split.test.size(), 3u);
}

TEST(DatasetTest, KFoldCoversAllOnce) {
  Dataset d;
  for (int i = 0; i < 20; ++i) d.Add({static_cast<double>(i)}, 0);
  common::Rng rng(2);
  const auto folds = KFoldSplits(d, 4, rng);
  ASSERT_EQ(folds.size(), 4u);
  size_t total_test = 0;
  for (const auto& fold : folds) {
    EXPECT_EQ(fold.train.size() + fold.test.size(), 20u);
    total_test += fold.test.size();
  }
  EXPECT_EQ(total_test, 20u);
}

}  // namespace
}  // namespace lightor::ml
