#include <gtest/gtest.h>

#include "common/flags.h"

namespace lightor::common {
namespace {

Flags ParseArgs(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags::Parse(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, EqualsForm) {
  const Flags flags = ParseArgs({"--videos=10", "--seed=42"});
  EXPECT_TRUE(flags.Has("videos"));
  EXPECT_EQ(flags.GetInt("videos", 0), 10);
  EXPECT_EQ(flags.GetInt("seed", 0), 42);
}

TEST(FlagsTest, SpaceForm) {
  const Flags flags = ParseArgs({"--name", "value", "--n", "7"});
  EXPECT_EQ(flags.GetString("name"), "value");
  EXPECT_EQ(flags.GetInt("n", 0), 7);
}

TEST(FlagsTest, BareBooleanFlag) {
  const Flags flags = ParseArgs({"--verbose", "--count=3"});
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_FALSE(flags.GetBool("quiet", false));
  EXPECT_TRUE(flags.GetBool("quiet", true));
}

TEST(FlagsTest, BooleanValues) {
  EXPECT_TRUE(ParseArgs({"--x=true"}).GetBool("x", false));
  EXPECT_TRUE(ParseArgs({"--x=1"}).GetBool("x", false));
  EXPECT_TRUE(ParseArgs({"--x=YES"}).GetBool("x", false));
  EXPECT_FALSE(ParseArgs({"--x=false"}).GetBool("x", true));
  EXPECT_FALSE(ParseArgs({"--x=0"}).GetBool("x", true));
  EXPECT_FALSE(ParseArgs({"--x=no"}).GetBool("x", true));
}

TEST(FlagsTest, PositionalArguments) {
  const Flags flags = ParseArgs({"input.txt", "--k=5", "output.txt"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "input.txt");
  EXPECT_EQ(flags.positional()[1], "output.txt");
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  const Flags flags = ParseArgs({});
  EXPECT_EQ(flags.GetInt("missing", -3), -3);
  EXPECT_DOUBLE_EQ(flags.GetDouble("missing", 2.5), 2.5);
  EXPECT_EQ(flags.GetString("missing", "d"), "d");
}

TEST(FlagsTest, MalformedNumbersReportFailure) {
  const Flags flags = ParseArgs({"--n=abc", "--x=1.5zz"});
  bool ok = true;
  EXPECT_EQ(flags.GetInt("n", 9, &ok), 9);
  EXPECT_FALSE(ok);
  ok = true;
  EXPECT_DOUBLE_EQ(flags.GetDouble("x", 0.5, &ok), 0.5);
  EXPECT_FALSE(ok);
}

TEST(FlagsTest, DoubleParsing) {
  const Flags flags = ParseArgs({"--rate=0.25", "--neg=-3.5"});
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate", 0.0), 0.25);
  EXPECT_DOUBLE_EQ(flags.GetDouble("neg", 0.0), -3.5);
}

TEST(FlagsTest, FlagNames) {
  const Flags flags = ParseArgs({"--b=1", "--a=2"});
  const auto names = flags.FlagNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");  // map-ordered
  EXPECT_EQ(names[1], "b");
}

TEST(FlagsTest, LastValueWins) {
  const Flags flags = ParseArgs({"--k=1", "--k=2"});
  EXPECT_EQ(flags.GetInt("k", 0), 2);
}

}  // namespace
}  // namespace lightor::common
