/// Concurrency stress for the live-ingest path, designed to run under
/// ThreadSanitizer (ci.sh builds it with -DLIGHTOR_SANITIZE=thread): one
/// ingester streams chat into a live video while reader threads hammer
/// the snapshot path and ordinary recorded-video traffic runs alongside;
/// afterwards the finalized result must still match the batch path.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serving/highlight_server.h"
#include "sim/bridge.h"
#include "sim/corpus.h"
#include "sim/viewer_simulator.h"
#include "storage/database.h"

namespace lightor::serving {
namespace {

TEST(ServingStreamStressTest, ConcurrentIngestReadersAndRecordedTraffic) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "lightor_stream_stress")
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::remove_all(dir + "_ref");

  sim::Platform::Options popts;
  popts.num_channels = 2;
  popts.videos_per_channel = 1;
  popts.seed = 131;
  const sim::Platform platform(popts);

  const auto corpus = sim::MakeCorpus(sim::GameType::kDota2, 1, 132);
  core::TrainingVideo tv;
  tv.messages = sim::ToCoreMessages(corpus[0].chat);
  tv.video_length = corpus[0].truth.meta.length;
  for (const auto& h : corpus[0].truth.highlights) {
    tv.highlights.push_back(h.span);
  }
  core::Lightor lightor;
  ASSERT_TRUE(lightor.TrainInitializer({tv}).ok());

  auto opened = storage::DB::Open(storage::OpenOptions(dir));
  ASSERT_TRUE(opened.ok());
  auto db = std::move(opened.value().db);
  ServerOptions opts;
  opts.platform = Borrow(&platform);
  opts.db = Borrow(db.get());
  opts.lightor = Borrow<const core::Lightor>(&lightor);
  opts.num_shards = 4;
  opts.stream_refresh_messages = 16;  // publish often: maximize swaps
  auto server = HighlightServer::Create(opts);
  ASSERT_TRUE(server.ok());
  HighlightServer& service = *server.value();

  const auto ids = platform.AllVideoIds();
  ASSERT_GE(ids.size(), 2u);
  const std::string live_id = ids[0];
  const std::string recorded_id = ids[1];
  const auto live_chat =
      sim::ToCoreMessages(platform.GetVideo(live_id).value().chat);
  ASSERT_GT(live_chat.size(), 100u);

  std::atomic<bool> ingest_done{false};
  std::atomic<bool> ingest_ok{true};

  // Bootstrap the live stream before any reader runs: a reader's first
  // OnPageVisit must not beat the first IngestChat, or the server would
  // bootstrap the video as recorded and every later ingest would fail.
  {
    IngestChatRequest req;
    req.video_id = live_id;
    req.messages.assign(live_chat.begin(), live_chat.begin() + 8);
    auto resp = service.IngestChat(req);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    ASSERT_EQ(resp.value().rejected, 0u);
  }

  // One ingester: the engine itself is single-writer by design; the
  // server's shard lock is what the readers race against. On failure it
  // records the error and still sets ingest_done — an early return that
  // skipped the store would leave the readers spinning forever.
  std::thread ingester([&] {
    for (size_t i = 8; i < live_chat.size(); i += 8) {
      IngestChatRequest req;
      req.video_id = live_id;
      const size_t end = std::min(i + 8, live_chat.size());
      req.messages.assign(live_chat.begin() + static_cast<ptrdiff_t>(i),
                          live_chat.begin() + static_cast<ptrdiff_t>(end));
      auto resp = service.IngestChat(req);
      if (!resp.ok() || resp.value().rejected != 0) {
        ADD_FAILURE() << "IngestChat failed at message " << i << ": "
                      << resp.status().ToString();
        ingest_ok.store(false, std::memory_order_relaxed);
        break;
      }
    }
    ingest_done.store(true, std::memory_order_release);
  });

  // Readers on the live video: snapshots must always be coherent
  // (version monotone per reader, records readable without tearing).
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      uint64_t last_version = 0;
      while (!ingest_done.load(std::memory_order_acquire)) {
        if (r % 2 == 0) {
          auto got = service.GetHighlights(live_id);
          if (!got.ok()) continue;  // not ingested yet
          EXPECT_GE(got.value().snapshot_version, last_version);
          last_version = got.value().snapshot_version;
          for (const auto& rec : got.value().highlights) {
            EXPECT_EQ(rec.video_id, live_id);
          }
        } else {
          auto visit = service.OnPageVisit({live_id, "reader"});
          ASSERT_TRUE(visit.ok());
          EXPECT_FALSE(visit.value().first_visit);
          EXPECT_TRUE(visit.value().provisional);
        }
      }
    });
  }

  // Ordinary recorded-video traffic on another shard keeps the batch
  // initializer, session log, and background refinement in the race.
  std::thread recorded([&] {
    auto visit = service.OnPageVisit({recorded_id, "viewer"});
    ASSERT_TRUE(visit.ok());
    sim::ViewerSimulator viewer_sim;
    common::Rng rng(7);
    const auto truth = platform.GetVideo(recorded_id).value().truth;
    uint64_t session_id = 0;
    while (!ingest_done.load(std::memory_order_acquire)) {
      for (const auto& dot : visit.value().highlights) {
        const auto session = viewer_sim.SimulateSession(
            truth, dot.dot_position, rng, "v" + std::to_string(session_id));
        LogSessionRequest log;
        log.video_id = recorded_id;
        log.user = session.user;
        log.session_id = ++session_id;
        log.events = session.events;
        ASSERT_TRUE(service.LogSession(log).ok());
      }
    }
  });

  ingester.join();
  for (auto& t : readers) t.join();
  recorded.join();
  ASSERT_TRUE(ingest_ok.load(std::memory_order_relaxed));

  FinalizeStreamRequest freq;
  freq.video_id = live_id;
  auto fin = service.FinalizeStream(freq);
  ASSERT_TRUE(fin.ok()) << fin.status().ToString();
  auto after = service.GetHighlights(live_id);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after.value().provisional);
  service.Shutdown();

  // Differential: the finalized stream equals the batch path on a fresh
  // server over the same platform chat.
  auto ref_opened = storage::DB::Open(storage::OpenOptions(dir + "_ref"));
  ASSERT_TRUE(ref_opened.ok());
  auto ref_db = std::move(ref_opened.value().db);
  ServerOptions ref_opts = opts;
  ref_opts.db = Borrow(ref_db.get());
  auto ref = HighlightServer::Create(ref_opts);
  ASSERT_TRUE(ref.ok());
  auto batch = ref.value()->OnPageVisit({live_id, "u"});
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(fin.value().highlights.size(), batch.value().highlights.size());
  for (size_t i = 0; i < batch.value().highlights.size(); ++i) {
    EXPECT_EQ(fin.value().highlights[i].dot_position,
              batch.value().highlights[i].dot_position);
    EXPECT_EQ(fin.value().highlights[i].score,
              batch.value().highlights[i].score);
    EXPECT_EQ(fin.value().highlights[i].start,
              batch.value().highlights[i].start);
    EXPECT_EQ(fin.value().highlights[i].end, batch.value().highlights[i].end);
  }

  std::filesystem::remove_all(dir);
  std::filesystem::remove_all(dir + "_ref");
}

}  // namespace
}  // namespace lightor::serving
