#include <gtest/gtest.h>

#include "text/emotes.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace lightor::text {
namespace {

TEST(TokenizerTest, BasicSplit) {
  Tokenizer tok;
  const auto tokens = tok.Tokenize("what a play");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "what");
  EXPECT_EQ(tokens[2], "play");
}

TEST(TokenizerTest, LowercasesByDefault) {
  Tokenizer tok;
  EXPECT_EQ(tok.Tokenize("PogChamp")[0], "pogchamp");
}

TEST(TokenizerTest, CaseSensitiveOption) {
  TokenizerOptions opts;
  opts.lowercase = false;
  Tokenizer tok(opts);
  EXPECT_EQ(tok.Tokenize("PogChamp")[0], "PogChamp");
}

TEST(TokenizerTest, StripsSurroundingPunctuation) {
  Tokenizer tok;
  const auto tokens = tok.Tokenize("gg!! ...wow?? (nice)");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "gg");
  EXPECT_EQ(tokens[1], "wow");
  EXPECT_EQ(tokens[2], "nice");
}

TEST(TokenizerTest, DropsPurePunctuationTokens) {
  Tokenizer tok;
  EXPECT_TRUE(tok.Tokenize("!!! ??? ...").empty());
}

TEST(TokenizerTest, KeepsInnerPunctuation) {
  Tokenizer tok;
  EXPECT_EQ(tok.Tokenize("don't")[0], "don't");
}

TEST(TokenizerTest, MinTokenLength) {
  TokenizerOptions opts;
  opts.min_token_length = 3;
  Tokenizer tok(opts);
  const auto tokens = tok.Tokenize("a bb ccc dddd");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "ccc");
}

TEST(TokenizerTest, CountWordsIsWhitespaceBased) {
  Tokenizer tok;
  EXPECT_EQ(tok.CountWords("one two three"), 3u);
  EXPECT_EQ(tok.CountWords(""), 0u);
  EXPECT_EQ(tok.CountWords("  padded   words "), 2u);
}

TEST(TokenizerTest, EmptyInput) {
  Tokenizer tok;
  EXPECT_TRUE(tok.Tokenize("").empty());
}

TEST(VocabularyTest, AssignsDenseIdsInOrder) {
  Vocabulary vocab;
  EXPECT_EQ(vocab.AddToken("gg"), 0);
  EXPECT_EQ(vocab.AddToken("wow"), 1);
  EXPECT_EQ(vocab.AddToken("gg"), 0);
  EXPECT_EQ(vocab.size(), 2u);
}

TEST(VocabularyTest, LookupMissReturnsUnknown) {
  Vocabulary vocab;
  vocab.AddToken("x");
  EXPECT_EQ(vocab.Lookup("x"), 0);
  EXPECT_EQ(vocab.Lookup("y"), Vocabulary::kUnknown);
}

TEST(VocabularyTest, TokenOfRoundTrips) {
  Vocabulary vocab;
  const int32_t id = vocab.AddToken("baron");
  EXPECT_EQ(vocab.TokenOf(id), "baron");
}

TEST(VocabularyTest, CountsTrackOccurrences) {
  Vocabulary vocab;
  vocab.AddToken("a");
  vocab.AddToken("b");
  vocab.AddToken("a");
  vocab.AddToken("a");
  EXPECT_EQ(vocab.CountOf(vocab.Lookup("a")), 3);
  EXPECT_EQ(vocab.CountOf(vocab.Lookup("b")), 1);
  EXPECT_EQ(vocab.CountOf(Vocabulary::kUnknown), 0);
}

TEST(VocabularyTest, TopKByFrequency) {
  Vocabulary vocab;
  for (int i = 0; i < 5; ++i) vocab.AddToken("common");
  for (int i = 0; i < 2; ++i) vocab.AddToken("medium");
  vocab.AddToken("rare");
  const auto top = vocab.TopKByFrequency(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(vocab.TokenOf(top[0]), "common");
  EXPECT_EQ(vocab.TokenOf(top[1]), "medium");
}

TEST(EmoteLexiconTest, DomainLexiconsAreDisjointish) {
  const auto dota = EmoteLexicon::ForDomain(EmoteDomain::kDota2);
  const auto lol = EmoteLexicon::ForDomain(EmoteDomain::kLol);
  EXPECT_GT(dota.size(), 0u);
  EXPECT_GT(lol.size(), 0u);
  for (const auto& e : dota.emotes()) EXPECT_FALSE(lol.Contains(e));
}

TEST(EmoteLexiconTest, ChannelMergesGlobal) {
  const auto global = EmoteLexicon::ForDomain(EmoteDomain::kGlobal);
  const auto channel = EmoteLexicon::ForChannel(EmoteDomain::kDota2);
  for (const auto& e : global.emotes()) EXPECT_TRUE(channel.Contains(e));
  EXPECT_GT(channel.size(), global.size());
}

TEST(EmoteLexiconTest, ContainsIsCaseSensitive) {
  const auto lexicon = EmoteLexicon::ForDomain(EmoteDomain::kGlobal);
  EXPECT_TRUE(lexicon.Contains("PogChamp"));
  EXPECT_FALSE(lexicon.Contains("pogchamp"));
}

TEST(EmoteLexiconTest, EmoteFraction) {
  const auto lexicon = EmoteLexicon::ForDomain(EmoteDomain::kGlobal);
  EXPECT_DOUBLE_EQ(lexicon.EmoteFraction({"PogChamp", "hello"}), 0.5);
  EXPECT_DOUBLE_EQ(lexicon.EmoteFraction({}), 0.0);
}

TEST(EmoteLexiconTest, DeduplicatesInput) {
  EmoteLexicon lexicon({"A", "A", "B"});
  EXPECT_EQ(lexicon.size(), 2u);
}

}  // namespace
}  // namespace lightor::text
