#!/bin/sh
# Cluster smoke test: boots a real 3-backend cluster behind the router
# (separate processes via tools/cluster_up), drives it with the cluster
# loadgen in differential mode, SIGKILLs one backend mid-burst and
# restarts it, and asserts that
#   (a) the run's /highlights output is byte-identical to a
#       single-process reference server replaying the accepted traffic,
#   (b) the router absorbed the crash with retries (metric > 0), and
#   (c) the killed backend is healthy again after restart.
# $1 is the path to the lightor binary; $2 (optional) is a loadgen
# --slo spec like "all:2500" gating the burst's p99 — generous enough to
# absorb the requests that stall (and are ridden out by router retries)
# while the killed backend is down.
set -e
LIGHTOR="$1"
SLO="${2:-}"
TMP=$(mktemp -d)
export CLUSTER_DIR="$TMP/cluster"
export LIGHTOR_BIN="$LIGHTOR"
HARNESS="$(dirname "$0")/../tools/cluster_up"

cleanup() {
  sh "$HARNESS" stop >/dev/null 2>&1 || true
  rm -rf "$TMP"
}
trap cleanup EXIT

ROUTER_PORT=$(sh "$HARNESS" start 3)

# A burst long enough that the mid-burst SIGKILL lands while requests
# are still flowing. --live=0 keeps the mix to idempotent ops (visit /
# session), which the loadgen may retry across the crash; --retry-503
# absorbs both 503s and wire errors within its budget. The differential
# reference is built under $TMP and replays the accepted traffic.
"$LIGHTOR" loadgen --threads=4 --requests=600 --live=0 --retry-503 \
    --check --db="$TMP/check" --port="$ROUTER_PORT" \
    ${SLO:+--slo="$SLO"} \
    > "$TMP/loadgen.json" 2> "$TMP/loadgen.log" &
LOADGEN_PID=$!

sleep 0.3
# Kill the busiest backend: with few videos the ring can leave a backend
# owning no keys, and SIGKILLing that one would prove nothing. The
# per-backend router counters say who is actually serving traffic; wait
# until the burst has visibly started before choosing.
VICTIM_ADDR=""
for _ in $(seq 1 50); do
  "$LIGHTOR" curl --port="$ROUTER_PORT" --target=/metrics > "$TMP/mid.txt"
  VICTIM_ADDR=$(awk '/^lightor_cluster_requests_total\{backend=/ {
    addr = $0; sub(/.*backend="/, "", addr); sub(/".*/, "", addr)
    if ($NF + 0 > best) { best = $NF + 0; victim = addr }
  } END { print victim }' "$TMP/mid.txt")
  [ -n "$VICTIM_ADDR" ] && break
  sleep 0.1
done
VICTIM=""
for i in 1 2 3; do
  [ "127.0.0.1:$(cat "$CLUSTER_DIR/backend$i.port")" = "$VICTIM_ADDR" ] \
      && VICTIM=$i
done
if [ -z "$VICTIM" ]; then
  echo "could not map victim address '$VICTIM_ADDR' to a backend" >&2
  exit 1
fi
sh "$HARNESS" kill "$VICTIM"
# Hold the restart until the router provably retried the dead owner (its
# retry budget rides out a much longer outage than this), so the
# retries-metric assertion below cannot race the burst.
for _ in $(seq 1 50); do
  "$LIGHTOR" curl --port="$ROUTER_PORT" --target=/metrics > "$TMP/mid.txt"
  RETRIES=$(awk '/^lightor_cluster_retries_total/ { sum += $NF } END { print sum + 0 }' \
      "$TMP/mid.txt")
  [ "$RETRIES" -gt 0 ] && break
  sleep 0.1
done
sh "$HARNESS" restart "$VICTIM"

if ! wait "$LOADGEN_PID"; then
  echo "cluster loadgen failed:" >&2
  cat "$TMP/loadgen.log" >&2
  exit 1
fi
grep -q "differential check: OK" "$TMP/loadgen.json"

# The router must have spent retries riding out the dead owner.
"$LIGHTOR" curl --port="$ROUTER_PORT" --target=/metrics > "$TMP/metrics.txt"
RETRIES=$(awk '/^lightor_cluster_retries_total/ { sum += $NF } END { print sum + 0 }' \
    "$TMP/metrics.txt")
if [ "$RETRIES" -le 0 ]; then
  echo "expected router retries > 0 across the SIGKILL, got $RETRIES" >&2
  exit 1
fi
# ... and never failed over: the restart landed well inside the retry
# budget, so every request stuck to its owner. A failover here would
# scatter a video's sessions across backends (which is exactly what the
# differential above would catch as a mismatch).
FAILOVERS=$(awk '/^lightor_cluster_failovers_total/ { sum += $NF } END { print sum + 0 }' \
    "$TMP/metrics.txt")
if [ "$FAILOVERS" -ne 0 ]; then
  echo "expected no failovers across a fast restart, got $FAILOVERS" >&2
  exit 1
fi

# Restarted backend is back in rotation (give the health checker one
# more probe interval to observe it).
sleep 0.7
sh "$HARNESS" status | grep -q '"health":"down"' && {
  echo "expected every backend healthy after restart" >&2
  exit 1
}
sh "$HARNESS" status | grep -q '"ring_size":3'

echo "cluster smoke: OK (router retries=$RETRIES)"
