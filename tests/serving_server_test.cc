#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <thread>

#include "serving/highlight_server.h"
#include "serving/web_service.h"
#include "sim/bridge.h"
#include "sim/corpus.h"
#include "sim/viewer_simulator.h"
#include "storage/database.h"

namespace lightor::serving {
namespace {

/// Shared fixture: one simulated platform and trained pipeline; each test
/// opens its own database directory (and a second one for differential
/// runs).
class HighlightServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("lightor_serving_test_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    std::filesystem::remove_all(dir_);

    sim::Platform::Options popts;
    popts.num_channels = 2;
    popts.videos_per_channel = 2;
    popts.seed = 71;
    platform_ = std::make_unique<sim::Platform>(popts);

    const auto corpus = sim::MakeCorpus(sim::GameType::kDota2, 1, 72);
    core::TrainingVideo tv;
    tv.messages = sim::ToCoreMessages(corpus[0].chat);
    tv.video_length = corpus[0].truth.meta.length;
    for (const auto& h : corpus[0].truth.highlights) {
      tv.highlights.push_back(h.span);
    }
    lightor_ = std::make_unique<core::Lightor>();
    ASSERT_TRUE(lightor_->TrainInitializer({tv}).ok());

    video_id_ = platform_->AllVideoIds()[0];
  }
  void TearDown() override {
    std::filesystem::remove_all(dir_);
    std::filesystem::remove_all(dir_ + "_ref");
  }

  std::unique_ptr<storage::Database> OpenDb(const std::string& dir) {
    auto db = storage::DB::Open(storage::OpenOptions(dir));
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    return std::move(db.value().db);
  }

  ServerOptions BaseOptions(storage::Database* db) {
    ServerOptions opts;
    opts.platform = Borrow<const sim::Platform>(platform_.get());
    opts.db = Borrow(db);
    opts.lightor = Borrow<const core::Lightor>(lightor_.get());
    return opts;
  }

  LogSessionRequest MakeLog(const std::string& video_id,
                            const sim::ViewerSession& session,
                            uint64_t session_id) {
    LogSessionRequest req;
    req.video_id = video_id;
    req.user = session.user;
    req.session_id = session_id;
    req.events = session.events;
    return req;
  }

  std::string dir_;
  std::unique_ptr<sim::Platform> platform_;
  std::unique_ptr<core::Lightor> lightor_;
  std::string video_id_;
};

TEST_F(HighlightServerTest, CreateValidatesOptions) {
  auto db = OpenDb(dir_);
  ServerOptions opts;  // null deps
  EXPECT_TRUE(HighlightServer::Create(opts).status().IsInvalidArgument());
  opts = BaseOptions(db.get());
  opts.num_shards = 0;
  EXPECT_TRUE(HighlightServer::Create(opts).status().IsInvalidArgument());
}

TEST_F(HighlightServerTest, FirstVisitPublishesSnapshotV1) {
  auto db = OpenDb(dir_);
  auto server = HighlightServer::Create(BaseOptions(db.get()));
  ASSERT_TRUE(server.ok());
  auto visit = server.value()->OnPageVisit({video_id_, "u"});
  ASSERT_TRUE(visit.ok());
  EXPECT_TRUE(visit.value().first_visit);
  EXPECT_EQ(visit.value().snapshot_version, 1u);
  EXPECT_FALSE(visit.value().highlights.empty());
  EXPECT_TRUE(db->highlights().HasVideo(video_id_));

  auto again = server.value()->OnPageVisit({video_id_, "u"});
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again.value().first_visit);
  EXPECT_EQ(again.value().snapshot_version, 1u);

  EXPECT_TRUE(
      server.value()->GetHighlights("missing").status().IsNotFound());
  EXPECT_TRUE(server.value()->Refine("missing").status().IsNotFound());
}

TEST_F(HighlightServerTest, ExplicitRefineAdvancesSnapshotVersion) {
  auto db = OpenDb(dir_);
  ServerOptions opts = BaseOptions(db.get());
  opts.refine_batch_sessions = 0;  // explicit refinement only
  auto server = HighlightServer::Create(opts);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(server.value()->OnPageVisit({video_id_, "u"}).ok());

  const auto video = platform_->GetVideo(video_id_).value();
  sim::ViewerSimulator viewers;
  common::Rng rng(73);
  const auto dots = server.value()->GetHighlights(video_id_).value();
  uint64_t session_id = 0;
  for (const auto& dot : dots.highlights) {
    for (int u = 0; u < 10; ++u) {
      const auto session = viewers.SimulateSession(
          video.truth, dot.dot_position, rng, "w" + std::to_string(u));
      ASSERT_TRUE(server.value()
                      ->LogSession(MakeLog(video_id_, session, ++session_id))
                      .ok());
    }
  }
  auto report = server.value()->Refine(video_id_);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report.value().dots_updated, 0);
  EXPECT_EQ(report.value().sessions_consumed, session_id);
  for (const auto& dot : report.value().dots) {
    EXPECT_TRUE(dot.status.ok());
    EXPECT_TRUE(dot.updated);
  }

  const auto refined = server.value()->GetHighlights(video_id_).value();
  EXPECT_EQ(refined.snapshot_version, 2u);
  int advanced = 0;
  for (const auto& rec : refined.highlights) {
    if (rec.iteration > 0) ++advanced;
  }
  EXPECT_EQ(advanced, report.value().dots_updated);

  // Nothing new to consume: the pass is a no-op but still versions.
  auto empty = server.value()->Refine(video_id_);
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty.value().sessions_consumed, 0u);
  EXPECT_EQ(empty.value().dots_updated, 0);
}

TEST_F(HighlightServerTest, LogSessionIsIdempotentPerSessionId) {
  auto db = OpenDb(dir_);
  ServerOptions opts = BaseOptions(db.get());
  opts.refine_batch_sessions = 0;
  auto server = HighlightServer::Create(opts);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(server.value()->OnPageVisit({video_id_, "u"}).ok());

  const auto video = platform_->GetVideo(video_id_).value();
  sim::ViewerSimulator viewers;
  common::Rng rng(74);
  const auto dots = server.value()->GetHighlights(video_id_).value();
  const auto session = viewers.SimulateSession(
      video.truth, dots.highlights[0].dot_position, rng, "w0");
  const LogSessionRequest req = MakeLog(video_id_, session, 7);
  ASSERT_TRUE(server.value()->LogSession(req).ok());
  const size_t logged_once = db->interactions().TotalRecords();
  EXPECT_GT(logged_once, 0u);

  // A router retry resends the identical session after a lost ack: it
  // must be acked OK without double-logging any event.
  ASSERT_TRUE(server.value()->LogSession(req).ok());
  EXPECT_EQ(db->interactions().TotalRecords(), logged_once);

  // A different session id from the same user still lands.
  ASSERT_TRUE(server.value()->LogSession(MakeLog(video_id_, session, 8)).ok());
  EXPECT_EQ(db->interactions().TotalRecords(), 2 * logged_once);
}

TEST_F(HighlightServerTest, BackgroundWorkersRefineOnBatchThreshold) {
  auto db = OpenDb(dir_);
  ServerOptions opts = BaseOptions(db.get());
  opts.refine_batch_sessions = 4;
  opts.num_workers = 1;
  auto server = HighlightServer::Create(opts);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(server.value()->OnPageVisit({video_id_, "u"}).ok());

  const auto video = platform_->GetVideo(video_id_).value();
  sim::ViewerSimulator viewers;
  common::Rng rng(74);
  const auto dots = server.value()->GetHighlights(video_id_).value();
  for (int u = 0; u < 8; ++u) {
    const auto session = viewers.SimulateSession(
        video.truth, dots.highlights[0].dot_position, rng,
        "w" + std::to_string(u));
    ASSERT_TRUE(
        server.value()
            ->LogSession(MakeLog(video_id_, session,
                                 static_cast<uint64_t>(u) + 1))
            .ok());
  }
  // No explicit Refine: a worker must pick the batch up on its own.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  uint64_t version = 1;
  while (std::chrono::steady_clock::now() < deadline) {
    version = server.value()->GetHighlights(video_id_).value().snapshot_version;
    if (version > 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GT(version, 1u);
}

TEST_F(HighlightServerTest, ShutdownDrainsAndRejects) {
  auto db = OpenDb(dir_);
  ServerOptions opts = BaseOptions(db.get());
  opts.refine_batch_sessions = 1000;  // batches never fire on their own
  auto server = HighlightServer::Create(opts);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(server.value()->OnPageVisit({video_id_, "u"}).ok());

  const auto video = platform_->GetVideo(video_id_).value();
  sim::ViewerSimulator viewers;
  common::Rng rng(75);
  const auto dots = server.value()->GetHighlights(video_id_).value();
  for (int u = 0; u < 6; ++u) {
    const auto session = viewers.SimulateSession(
        video.truth, dots.highlights[0].dot_position, rng,
        "w" + std::to_string(u));
    ASSERT_TRUE(
        server.value()
            ->LogSession(MakeLog(video_id_, session,
                                 static_cast<uint64_t>(u) + 1))
            .ok());
  }
  server.value()->Shutdown();
  // The drain consumed the pending sessions into one last pass.
  EXPECT_GT(server.value()->GetHighlights(video_id_).value().snapshot_version,
            1u);
  // New work is rejected, reads still succeed; Shutdown is idempotent.
  EXPECT_TRUE(server.value()
                  ->OnPageVisit({video_id_, "u"})
                  .status()
                  .IsFailedPrecondition());
  EXPECT_TRUE(server.value()
                  ->LogSession(MakeLog(video_id_, {}, 99))
                  .IsFailedPrecondition());
  EXPECT_TRUE(server.value()->Refine(video_id_).status().IsFailedPrecondition());
  EXPECT_TRUE(server.value()->GetHighlights(video_id_).ok());
  server.value()->Shutdown();
}

TEST_F(HighlightServerTest, RestartDoesNotReconsumeSessions) {
  auto db = OpenDb(dir_);
  {
    ServerOptions opts = BaseOptions(db.get());
    opts.refine_batch_sessions = 0;
    auto server = HighlightServer::Create(opts);
    ASSERT_TRUE(server.ok());
    ASSERT_TRUE(server.value()->OnPageVisit({video_id_, "u"}).ok());
    const auto video = platform_->GetVideo(video_id_).value();
    sim::ViewerSimulator viewers;
    common::Rng rng(76);
    const auto dots = server.value()->GetHighlights(video_id_).value();
    for (int u = 0; u < 8; ++u) {
      const auto session = viewers.SimulateSession(
          video.truth, dots.highlights[0].dot_position, rng,
          "w" + std::to_string(u));
      ASSERT_TRUE(
          server.value()
              ->LogSession(MakeLog(video_id_, session,
                                   static_cast<uint64_t>(u) + 1))
              .ok());
    }
    ASSERT_TRUE(server.value()->Refine(video_id_).ok());
  }
  // Same database, new server: the seeded watermark marks the refined
  // video's interactions as already consumed.
  auto restarted = HighlightServer::Create(BaseOptions(db.get()));
  ASSERT_TRUE(restarted.ok());
  auto report = restarted.value()->Refine(video_id_);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().sessions_consumed, 0u);
  EXPECT_EQ(report.value().dots_updated, 0);
}

/// The differential test of the redesign: the concurrent server and the
/// single-threaded reference implementation run the identical refinement
/// core, so identical traffic into separate databases must yield
/// identical highlights.
TEST_F(HighlightServerTest, MatchesReferenceWebServiceOnIdenticalTraffic) {
  auto db_new = OpenDb(dir_);
  auto db_ref = OpenDb(dir_ + "_ref");

  ServerOptions new_opts = BaseOptions(db_new.get());
  new_opts.refine_batch_sessions = 0;  // refinement at explicit points only
  auto server = HighlightServer::Create(new_opts);
  ASSERT_TRUE(server.ok());
  WebService reference(BaseOptions(db_ref.get()));

  const auto ids = platform_->AllVideoIds();
  sim::ViewerSimulator viewers;
  uint64_t session_id = 0;
  for (const auto& video_id : ids) {
    auto new_visit = server.value()->OnPageVisit({video_id, "u"});
    auto ref_visit = reference.OnPageVisit({video_id, "u"});
    ASSERT_TRUE(new_visit.ok());
    ASSERT_TRUE(ref_visit.ok());
    ASSERT_EQ(new_visit.value().highlights.size(),
              ref_visit.value().highlights.size());

    const auto video = platform_->GetVideo(video_id).value();
    // Identical sessions into both services (fresh Rng per video, forked
    // identically for each service).
    common::Rng rng(700 + session_id);
    for (const auto& dot : new_visit.value().highlights) {
      for (int u = 0; u < 6; ++u) {
        auto fork = rng.Fork();
        auto fork_copy = fork;
        const auto session = viewers.SimulateSession(
            video.truth, dot.dot_position, fork,
            "w" + std::to_string(session_id));
        const auto session_ref = viewers.SimulateSession(
            video.truth, dot.dot_position, fork_copy,
            "w" + std::to_string(session_id));
        ++session_id;
        ASSERT_TRUE(
            server.value()
                ->LogSession(MakeLog(video_id, session, session_id))
                .ok());
        ASSERT_TRUE(
            reference.LogSession(MakeLog(video_id, session_ref, session_id))
                .ok());
      }
    }
    auto new_report = server.value()->Refine(video_id);
    auto ref_report = reference.Refine(video_id);
    ASSERT_TRUE(new_report.ok());
    ASSERT_TRUE(ref_report.ok());
    EXPECT_EQ(new_report.value().dots_updated, ref_report.value().dots_updated);
    EXPECT_EQ(new_report.value().sessions_consumed,
              ref_report.value().sessions_consumed);
  }

  // Every video's final highlights agree field by field.
  for (const auto& video_id : ids) {
    const auto got = server.value()->GetHighlights(video_id).value();
    const auto want = reference.GetHighlights(video_id).value();
    ASSERT_EQ(got.highlights.size(), want.highlights.size());
    for (size_t i = 0; i < got.highlights.size(); ++i) {
      const auto& g = got.highlights[i];
      const auto& w = want.highlights[i];
      EXPECT_EQ(g.dot_index, w.dot_index);
      EXPECT_DOUBLE_EQ(g.dot_position, w.dot_position);
      EXPECT_DOUBLE_EQ(g.start, w.start);
      EXPECT_DOUBLE_EQ(g.end, w.end);
      EXPECT_EQ(g.iteration, w.iteration);
      EXPECT_EQ(g.converged, w.converged);
    }
  }
}

TEST_F(HighlightServerTest, MetricsPageCarriesServerLabel) {
  auto db = OpenDb(dir_);
  auto server = HighlightServer::Create(BaseOptions(db.get()));
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(server.value()->OnPageVisit({video_id_, "u"}).ok());
  const std::string page = server.value()->MetricsPage();
  EXPECT_NE(page.find("lightor_web_page_visits_total{"
                      "server=\"concurrent\"}"),
            std::string::npos);
  EXPECT_NE(page.find("lightor_serving_queue_depth"), std::string::npos);
}

}  // namespace
}  // namespace lightor::serving
