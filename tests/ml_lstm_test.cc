#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "ml/lstm.h"

namespace lightor::ml {
namespace {

LstmOptions TinyOptions() {
  LstmOptions opts;
  opts.hidden_size = 4;
  opts.num_layers = 2;
  opts.max_sequence_length = 16;
  opts.epochs = 30;
  opts.learning_rate = 0.02;
  opts.seed = 7;
  return opts;
}

TEST(CharVocabTest, EncodesPrintableAsciiDensely) {
  EXPECT_EQ(CharVocab::Encode(' '), 0);
  EXPECT_EQ(CharVocab::Encode('!'), 1);
  EXPECT_EQ(CharVocab::Encode('~'), 94);
  EXPECT_EQ(CharVocab::Encode('\n'), CharVocab::kInputDim - 1);
  EXPECT_EQ(CharVocab::Encode(static_cast<char>(200)),
            CharVocab::kInputDim - 1);
}

TEST(CharLstmTest, UntrainedOutputsValidProbability) {
  CharLstmClassifier model(TinyOptions());
  const double p = model.PredictProbability("hello");
  EXPECT_GT(p, 0.0);
  EXPECT_LT(p, 1.0);
}

TEST(CharLstmTest, DeterministicGivenSeed) {
  CharLstmClassifier a(TinyOptions());
  CharLstmClassifier b(TinyOptions());
  EXPECT_DOUBLE_EQ(a.PredictProbability("xyz"), b.PredictProbability("xyz"));
}

TEST(CharLstmTest, RejectsBadTrainingInput) {
  CharLstmClassifier model(TinyOptions());
  EXPECT_TRUE(model.Train({}, {}).IsInvalidArgument());
  EXPECT_TRUE(model.Train({"a"}, {1, 0}).IsInvalidArgument());
  EXPECT_TRUE(model.Train({"a"}, {2}).IsInvalidArgument());
}

TEST(CharLstmTest, GradientMatchesNumericDifference) {
  LstmOptions opts = TinyOptions();
  opts.hidden_size = 3;
  opts.num_layers = 2;
  CharLstmClassifier model(opts);
  const std::string text = "abc!x";
  const int label = 1;

  const std::vector<double> analytic = model.Gradients(text, label);
  auto& params = model.mutable_parameters();
  ASSERT_EQ(analytic.size(), params.size());

  const double eps = 1e-6;
  // Spot-check a spread of parameter indices (full check is O(P^2)).
  for (size_t idx = 0; idx < params.size();
       idx += std::max<size_t>(1, params.size() / 60)) {
    const double saved = params[idx];
    params[idx] = saved + eps;
    const double up = model.Loss(text, label);
    params[idx] = saved - eps;
    const double down = model.Loss(text, label);
    params[idx] = saved;
    const double numeric = (up - down) / (2.0 * eps);
    EXPECT_NEAR(analytic[idx], numeric,
                1e-4 * std::max(1.0, std::abs(numeric)))
        << "param index " << idx;
  }
}

TEST(CharLstmTest, TrainingReducesLoss) {
  CharLstmClassifier model(TinyOptions());
  const std::vector<std::string> texts = {"aaaa", "bbbb", "aaab", "bbba",
                                          "aaaa", "bbbb"};
  const std::vector<int> labels = {1, 0, 1, 0, 1, 0};
  ASSERT_TRUE(model.Train(texts, labels).ok());
  ASSERT_GE(model.epoch_losses().size(), 2u);
  EXPECT_LT(model.epoch_losses().back(), model.epoch_losses().front());
}

TEST(CharLstmTest, LearnsCharacterPattern) {
  CharLstmClassifier model(TinyOptions());
  std::vector<std::string> texts;
  std::vector<int> labels;
  // Positive: strings of 'x'; negative: strings of 'o'.
  for (int i = 0; i < 8; ++i) {
    texts.push_back(std::string(4 + i % 3, 'x'));
    labels.push_back(1);
    texts.push_back(std::string(4 + i % 3, 'o'));
    labels.push_back(0);
  }
  ASSERT_TRUE(model.Train(texts, labels).ok());
  EXPECT_GT(model.PredictProbability("xxxxx"), 0.7);
  EXPECT_LT(model.PredictProbability("ooooo"), 0.3);
}

TEST(CharLstmTest, EmptyTextHandled) {
  CharLstmClassifier model(TinyOptions());
  const double p = model.PredictProbability("");
  EXPECT_GT(p, 0.0);
  EXPECT_LT(p, 1.0);
}

TEST(CharLstmTest, LongInputTruncatedSafely) {
  CharLstmClassifier model(TinyOptions());
  const std::string longtext(10000, 'z');
  const double p = model.PredictProbability(longtext);
  EXPECT_GT(p, 0.0);
  EXPECT_LT(p, 1.0);
  // Truncation means the first max_sequence_length chars decide.
  const std::string prefix(TinyOptions().max_sequence_length, 'z');
  EXPECT_DOUBLE_EQ(p, model.PredictProbability(prefix));
}

TEST(CharLstmTest, ParameterCountMatchesArchitecture) {
  LstmOptions opts = TinyOptions();
  CharLstmClassifier model(opts);
  const size_t h = opts.hidden_size;
  const size_t in = CharVocab::kInputDim;
  // Layer 0: Wx(4h x in) + Wh(4h x h) + b(4h); layer 1: Wx(4h x h) + ...
  const size_t expected = (4 * h * in + 4 * h * h + 4 * h) +
                          (4 * h * h + 4 * h * h + 4 * h) + h + 1;
  EXPECT_EQ(model.num_parameters(), expected);
}

TEST(CharLstmTest, BatchPredictMatchesSingle) {
  CharLstmClassifier model(TinyOptions());
  const auto probs = model.PredictProbabilities({"ab", "cd"});
  ASSERT_EQ(probs.size(), 2u);
  EXPECT_DOUBLE_EQ(probs[0], model.PredictProbability("ab"));
  EXPECT_DOUBLE_EQ(probs[1], model.PredictProbability("cd"));
}

}  // namespace
}  // namespace lightor::ml
