#include <gtest/gtest.h>

#include "common/rng.h"
#include "ml/linear_regression.h"

namespace lightor::ml {
namespace {

TEST(SolveLinearSystemTest, Solves2x2) {
  // 2x + y = 5; x - y = 1  =>  x = 2, y = 1.
  auto x = SolveLinearSystem({2, 1, 1, -1}, {5, 1}, 2);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(x.value()[0], 2.0, 1e-12);
  EXPECT_NEAR(x.value()[1], 1.0, 1e-12);
}

TEST(SolveLinearSystemTest, NeedsPivoting) {
  // First pivot is zero: 0x + y = 1; x + 0y = 2.
  auto x = SolveLinearSystem({0, 1, 1, 0}, {1, 2}, 2);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(x.value()[0], 2.0, 1e-12);
  EXPECT_NEAR(x.value()[1], 1.0, 1e-12);
}

TEST(SolveLinearSystemTest, SingularFails) {
  auto x = SolveLinearSystem({1, 2, 2, 4}, {1, 2}, 2);
  EXPECT_FALSE(x.ok());
  EXPECT_TRUE(x.status().IsFailedPrecondition());
}

TEST(SolveLinearSystemTest, DimensionMismatch) {
  auto x = SolveLinearSystem({1, 2, 3}, {1, 2}, 2);
  EXPECT_TRUE(x.status().IsInvalidArgument());
}

TEST(LinearRegressionTest, RecoversExactLinearModel) {
  // y = 3 x0 - 2 x1 + 5.
  std::vector<std::vector<double>> rows;
  std::vector<double> targets;
  common::Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const double x0 = rng.Uniform(-2, 2);
    const double x1 = rng.Uniform(-2, 2);
    rows.push_back({x0, x1});
    targets.push_back(3.0 * x0 - 2.0 * x1 + 5.0);
  }
  LinearRegression lr;
  ASSERT_TRUE(lr.Fit(rows, targets).ok());
  EXPECT_NEAR(lr.weights()[0], 3.0, 1e-6);
  EXPECT_NEAR(lr.weights()[1], -2.0, 1e-6);
  EXPECT_NEAR(lr.intercept(), 5.0, 1e-6);
  EXPECT_NEAR(lr.Predict({1.0, 1.0}), 6.0, 1e-6);
}

TEST(LinearRegressionTest, NoisyFitIsClose) {
  std::vector<std::vector<double>> rows;
  std::vector<double> targets;
  common::Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.Uniform(0, 10);
    rows.push_back({x});
    targets.push_back(2.0 * x + 1.0 + rng.Normal(0.0, 0.5));
  }
  LinearRegression lr;
  ASSERT_TRUE(lr.Fit(rows, targets).ok());
  EXPECT_NEAR(lr.weights()[0], 2.0, 0.05);
  EXPECT_NEAR(lr.intercept(), 1.0, 0.2);
}

TEST(LinearRegressionTest, RidgeShrinksWeights) {
  std::vector<std::vector<double>> rows;
  std::vector<double> targets;
  common::Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const double x = rng.Uniform(-1, 1);
    rows.push_back({x});
    targets.push_back(4.0 * x);
  }
  LinearRegressionOptions strong;
  strong.l2_lambda = 100.0;
  LinearRegression lr_strong(strong), lr_weak;
  ASSERT_TRUE(lr_strong.Fit(rows, targets).ok());
  ASSERT_TRUE(lr_weak.Fit(rows, targets).ok());
  EXPECT_LT(std::abs(lr_strong.weights()[0]),
            std::abs(lr_weak.weights()[0]));
}

TEST(LinearRegressionTest, RejectsBadInput) {
  LinearRegression lr;
  EXPECT_TRUE(lr.Fit({}, {}).IsInvalidArgument());
  EXPECT_TRUE(lr.Fit({{1.0}}, {1.0, 2.0}).IsInvalidArgument());
  EXPECT_TRUE(lr.Fit({{1.0}, {1.0, 2.0}}, {1.0, 2.0}).IsInvalidArgument());
}

TEST(LinearRegressionTest, ConstantTargetGivesInterceptOnly) {
  LinearRegression lr;
  ASSERT_TRUE(lr.Fit({{1.0}, {2.0}, {3.0}}, {7.0, 7.0, 7.0}).ok());
  EXPECT_NEAR(lr.Predict({10.0}), 7.0, 1e-6);
}

TEST(LinearRegressionTest, SetParameters) {
  LinearRegression lr;
  lr.SetParameters({1.5}, -0.5);
  EXPECT_TRUE(lr.fitted());
  EXPECT_DOUBLE_EQ(lr.Predict({2.0}), 2.5);
}

}  // namespace
}  // namespace lightor::ml
