#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/lightor.h"
#include "net/client.h"
#include "net/loadgen.h"
#include "net/server.h"
#include "net/service.h"
#include "serving/highlight_server.h"
#include "sim/bridge.h"
#include "sim/corpus.h"
#include "sim/platform.h"
#include "storage/database.h"

namespace lightor::net {
namespace {

/// In-process replica of the CLI's `loadgen --check` stack: a served
/// HighlightServer behind the HTTP front-end plus an independent
/// reference server the recorded traffic is replayed into.
struct Stack {
  std::unique_ptr<sim::Platform> platform;
  std::unique_ptr<storage::Database> db;
  std::unique_ptr<core::Lightor> lightor;
  std::unique_ptr<serving::HighlightServer> server;
};

Stack MakeStack(const sim::Platform::Options& popts,
                const std::string& db_dir, bool batched_flush) {
  Stack stack;
  stack.platform = std::make_unique<sim::Platform>(popts);
  auto db = storage::DB::Open(storage::OpenOptions(db_dir));
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  stack.db = std::move(db.value().db);

  const auto corpus = sim::MakeCorpus(sim::GameType::kDota2, 1, 1007);
  core::TrainingVideo tv;
  tv.messages = sim::ToCoreMessages(corpus[0].chat);
  tv.video_length = corpus[0].truth.meta.length;
  for (const auto& h : corpus[0].truth.highlights) {
    tv.highlights.push_back(h.span);
  }
  stack.lightor = std::make_unique<core::Lightor>(core::LightorOptions{});
  EXPECT_TRUE(stack.lightor->TrainInitializer({tv}).ok());

  serving::ServerOptions sopts;
  sopts.platform = serving::Borrow(
      static_cast<const sim::Platform*>(stack.platform.get()));
  sopts.db = serving::Borrow(stack.db.get());
  sopts.lightor = serving::Borrow(
      static_cast<const core::Lightor*>(stack.lightor.get()));
  sopts.num_workers = 2;
  // Background refinement off: the differential check requires served
  // state to be a pure function of the accepted traffic.
  sopts.refine_batch_sessions = 0;
  sopts.batched_session_flush = batched_flush;
  auto server = serving::HighlightServer::Create(sopts);
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  stack.server = std::move(server).value();
  return stack;
}

class LoadGenTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("lightor_loadgen_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

LoadGenOptions MixOptions(const sim::Platform& platform, uint16_t port) {
  LoadGenOptions options;
  options.port = port;
  options.platform = &platform;
  options.refine_weight = 0;  // differential-check contract
  const auto ids = platform.AllVideoIds();
  options.recorded_ids.assign(ids.begin(), ids.begin() + 2);
  options.live_ids.assign(ids.begin() + 2, ids.begin() + 4);
  return options;
}

// The ISSUE's acceptance run: >= 1k mixed requests across >= 8 threads
// with zero wire-level errors, and the state the HTTP server ends up
// serving is byte-identical to an in-process reference HighlightServer
// fed the same accepted traffic.
TEST_F(LoadGenTest, ThousandMixedRequestsAndDifferentialCheck) {
  sim::Platform::Options popts;
  popts.num_channels = 2;
  popts.videos_per_channel = 2;
  popts.seed = 7;

  Stack served = MakeStack(popts, (dir_ / "served").string(),
                           /*batched_flush=*/true);
  Stack reference = MakeStack(popts, (dir_ / "reference").string(),
                              /*batched_flush=*/false);
  auto http =
      HttpServer::Create(NetOptions{}, BuildRoutes(served.server.get()));
  ASSERT_TRUE(http.ok()) << http.status().ToString();

  LoadGenOptions options = MixOptions(*served.platform, http.value()->port());
  options.num_threads = 8;
  options.requests_per_thread = 128;
  // Generous targets: the run must pass them and report the verdicts.
  options.slo_targets.push_back({"all", 60'000.0});
  options.slo_targets.push_back({"visit", 60'000.0});

  RecordedTraffic recorded;
  auto report = RunLoadGen(options, &recorded);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GE(report.value().requests, 1024u);
  EXPECT_EQ(report.value().wire_errors, 0u);
  EXPECT_GT(report.value().status_2xx, 0u);
  EXPECT_GT(report.value().visits, 0u);
  EXPECT_GT(report.value().sessions, 0u);
  EXPECT_GT(report.value().ingests, 0u);
  EXPECT_GT(report.value().throughput_rps, 0.0);
  EXPECT_GT(report.value().p50_ms, 0.0);
  EXPECT_LE(report.value().p50_ms, report.value().p95_ms);
  EXPECT_LE(report.value().p95_ms, report.value().p99_ms);
  EXPECT_LE(report.value().p99_ms, report.value().max_ms);

  // Slowest-N table: descending latency, every entry traceable.
  ASSERT_FALSE(report.value().slowest.empty());
  EXPECT_LE(report.value().slowest.size(), options.slowest_n);
  for (size_t i = 0; i < report.value().slowest.size(); ++i) {
    const SlowRequest& slow = report.value().slowest[i];
    EXPECT_EQ(slow.trace_id.size(), 32u) << slow.trace_id;
    EXPECT_EQ(slow.trace_id.find_first_not_of("0123456789abcdef"),
              std::string::npos)
        << slow.trace_id;
    EXPECT_FALSE(slow.op.empty());
    if (i > 0) {
      EXPECT_LE(slow.ms, report.value().slowest[i - 1].ms);
    }
  }

  // Per-op latency rows exist for every op the mix exercised.
  ASSERT_FALSE(report.value().op_latency.empty());
  for (const OpLatency& op : report.value().op_latency) {
    EXPECT_GT(op.count, 0u);
    EXPECT_LE(op.p50_ms, op.p99_ms);
  }

  // Both SLO targets were generous: the run passes them.
  EXPECT_TRUE(report.value().slo_ok);
  ASSERT_EQ(report.value().slo.size(), 2u);
  for (const SloResult& verdict : report.value().slo) {
    EXPECT_TRUE(verdict.ok) << verdict.op;
  }

  HttpClient client("127.0.0.1", http.value()->port());
  EXPECT_TRUE(
      RunDifferentialCheck(recorded, client, reference.server.get()).ok());

  http.value()->Shutdown();
  served.server->Shutdown();
  reference.server->Shutdown();
}

// At in-flight capacity 1 a closed loop of 8 clients must trip
// admission control: the report counts well-formed 503s, not wire
// errors.
TEST_F(LoadGenTest, SaturationSurfacesAdmission503s) {
  sim::Platform::Options popts;
  popts.num_channels = 2;
  popts.videos_per_channel = 2;
  popts.seed = 7;
  Stack served = MakeStack(popts, (dir_ / "served").string(),
                           /*batched_flush=*/true);

  NetOptions nopts;
  nopts.max_in_flight = 1;
  auto http =
      HttpServer::Create(std::move(nopts), BuildRoutes(served.server.get()));
  ASSERT_TRUE(http.ok()) << http.status().ToString();

  LoadGenOptions options = MixOptions(*served.platform, http.value()->port());
  options.num_threads = 8;
  options.requests_per_thread = 32;
  // Unmeetable target: the verdict must flag the violation, while the
  // run itself still completes.
  options.slo_targets.push_back({"all", 0.0001});

  auto report = RunLoadGen(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().wire_errors, 0u);
  EXPECT_GE(report.value().rejected_503, 1u);
  EXPECT_EQ(report.value().status_5xx, report.value().rejected_503);
  EXPECT_FALSE(report.value().slo_ok);
  ASSERT_EQ(report.value().slo.size(), 1u);
  EXPECT_FALSE(report.value().slo[0].ok);
  EXPECT_GT(report.value().slo[0].actual_p99_ms,
            report.value().slo[0].target_p99_ms);

  http.value()->Shutdown();
  served.server->Shutdown();
}

TEST(LoadGenOptionsTest, ValidateRejectsBadConfigs) {
  sim::Platform::Options popts;
  const sim::Platform platform(popts);

  LoadGenOptions no_platform;
  no_platform.recorded_ids = {"v"};
  EXPECT_FALSE(no_platform.Validate().ok());

  LoadGenOptions no_videos;
  no_videos.platform = &platform;
  EXPECT_FALSE(no_videos.Validate().ok());

  LoadGenOptions no_threads;
  no_threads.platform = &platform;
  no_threads.recorded_ids = {"v"};
  no_threads.num_threads = 0;
  EXPECT_FALSE(no_threads.Validate().ok());

  LoadGenOptions zero_mix;
  zero_mix.platform = &platform;
  zero_mix.recorded_ids = {"v"};
  zero_mix.visit_weight = 0;
  zero_mix.session_weight = 0;
  zero_mix.refine_weight = 0;
  zero_mix.ingest_weight = 0;
  EXPECT_FALSE(zero_mix.Validate().ok());

  LoadGenOptions unknown_slo_op;
  unknown_slo_op.platform = &platform;
  unknown_slo_op.recorded_ids = {"v"};
  unknown_slo_op.slo_targets = {{"bogus", 5.0}};
  EXPECT_FALSE(unknown_slo_op.Validate().ok());

  LoadGenOptions zero_slo_target;
  zero_slo_target.platform = &platform;
  zero_slo_target.recorded_ids = {"v"};
  zero_slo_target.slo_targets = {{"visit", 0.0}};
  EXPECT_FALSE(zero_slo_target.Validate().ok());
}

}  // namespace
}  // namespace lightor::net
