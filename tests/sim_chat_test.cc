#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "common/stats.h"
#include <set>

#include "text/similarity.h"
#include "text/tokenizer.h"
#include "sim/chat_simulator.h"
#include "sim/video_generator.h"
#include "text/tokenizer.h"

namespace lightor::sim {
namespace {

struct ChatFixture {
  GroundTruthVideo video;
  ChatLog chat;

  explicit ChatFixture(uint64_t seed, GameType game = GameType::kDota2,
                       double rate_scale = 1.0) {
    const GameProfile profile = GameProfile::ForGame(game);
    VideoGenerator vgen(profile);
    ChatSimulator cgen(profile);
    common::Rng rng(seed);
    video = vgen.Generate("test", rng);
    chat = cgen.Generate(video, rng, rate_scale);
  }
};

TEST(ChatSimulatorTest, MessagesSortedAndInRange) {
  const ChatFixture fx(1);
  ASSERT_FALSE(fx.chat.empty());
  for (size_t i = 0; i < fx.chat.size(); ++i) {
    EXPECT_GE(fx.chat[i].timestamp, 0.0);
    EXPECT_LE(fx.chat[i].timestamp, fx.video.meta.length + 1.0);
    EXPECT_FALSE(fx.chat[i].text.empty());
    EXPECT_FALSE(fx.chat[i].user.empty());
    if (i > 0) {
      EXPECT_GE(fx.chat[i].timestamp, fx.chat[i - 1].timestamp);
    }
  }
}

TEST(ChatSimulatorTest, VolumeMatchesPaperRange) {
  // The paper's crawled videos have 800–4300 messages; at rate_scale 1 a
  // video should land in (or near) that band.
  const ChatFixture fx(2);
  const double hours = fx.video.meta.length / 3600.0;
  const double per_hour = static_cast<double>(fx.chat.size()) / hours;
  EXPECT_GT(per_hour, 500.0);   // the applicability threshold (Fig. 9)
  EXPECT_LT(per_hour, 6000.0);
}

TEST(ChatSimulatorTest, RateScaleScalesVolume) {
  const ChatFixture low(3, GameType::kDota2, 0.5);
  const ChatFixture high(3, GameType::kDota2, 2.0);
  EXPECT_GT(high.chat.size(), low.chat.size() * 2);
}

TEST(ChatSimulatorTest, EveryHighlightProducesBurst) {
  const ChatFixture fx(4);
  for (size_t hi = 0; hi < fx.video.highlights.size(); ++hi) {
    const int count = static_cast<int>(std::count_if(
        fx.chat.begin(), fx.chat.end(), [&](const ChatMessage& m) {
          return m.source == MessageSource::kHighlightBurst &&
                 m.highlight_index == static_cast<int>(hi);
        }));
    EXPECT_GT(count, 3) << "highlight " << hi;
  }
}

TEST(ChatSimulatorTest, BurstPeakLagsHighlightStart) {
  const ChatFixture fx(5);
  const auto& profile = GameProfile::Dota2();
  std::vector<double> lags;
  for (size_t hi = 0; hi < fx.video.highlights.size(); ++hi) {
    std::vector<double> times;
    for (const auto& m : fx.chat) {
      if (m.source == MessageSource::kHighlightBurst &&
          m.highlight_index == static_cast<int>(hi)) {
        times.push_back(m.timestamp);
      }
    }
    if (times.size() < 5) continue;
    lags.push_back(common::Median(times) -
                   fx.video.highlights[hi].span.start);
  }
  ASSERT_GT(lags.size(), 3u);
  const double median_lag = common::Median(lags);
  EXPECT_GT(median_lag, profile.reaction_delay_mean - 8.0);
  EXPECT_LT(median_lag, profile.reaction_delay_mean + 8.0);
}

TEST(ChatSimulatorTest, BurstMessagesAreShorterThanBackground) {
  const ChatFixture fx(6);
  text::Tokenizer tok;
  common::RunningStats burst_len, background_len;
  for (const auto& m : fx.chat) {
    const double words = static_cast<double>(tok.CountWords(m.text));
    if (m.source == MessageSource::kHighlightBurst) burst_len.Add(words);
    if (m.source == MessageSource::kBackground) background_len.Add(words);
  }
  EXPECT_LT(burst_len.mean(), background_len.mean() * 0.6);
}

TEST(ChatSimulatorTest, BotMessagesAreLongAndNearIdentical) {
  // Bots must exist at some seed; scan a few.
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const ChatFixture fx(seed);
    std::vector<const ChatMessage*> bots;
    for (const auto& m : fx.chat) {
      if (m.source == MessageSource::kBotSpam) bots.push_back(&m);
    }
    if (bots.size() < 5) continue;
    text::Tokenizer tok;
    for (const auto* m : bots) {
      EXPECT_GT(tok.CountWords(m->text), 10u);
    }
    return;  // found and verified a bot episode
  }
  FAIL() << "no bot episode generated across seeds 1..8";
}

TEST(ChatSimulatorTest, NoiseSourcesKeepDistanceFromHighlights) {
  const ChatFixture fx(7);
  for (const auto& m : fx.chat) {
    if (m.source != MessageSource::kBotSpam) continue;
    // Bot episodes are placed >120 s from highlight spans (when feasible);
    // allow slack for the episode duration itself.
    double min_dist = 1e18;
    for (const auto& h : fx.video.highlights) {
      double d = 0.0;
      if (m.timestamp < h.span.start) d = h.span.start - m.timestamp;
      else if (m.timestamp > h.span.end) d = m.timestamp - h.span.end;
      min_dist = std::min(min_dist, d);
    }
    EXPECT_GT(min_dist, 60.0);
  }
}

TEST(ChatSimulatorTest, DeterministicPerSeed) {
  const ChatFixture a(8), b(8);
  ASSERT_EQ(a.chat.size(), b.chat.size());
  for (size_t i = 0; i < a.chat.size(); i += 97) {
    EXPECT_EQ(a.chat[i].text, b.chat[i].text);
    EXPECT_DOUBLE_EQ(a.chat[i].timestamp, b.chat[i].timestamp);
  }
}

TEST(ChatSimulatorTest, LolChatIsDenser) {
  const ChatFixture dota(9, GameType::kDota2);
  const ChatFixture lol(9, GameType::kLol);
  const double dota_rate =
      static_cast<double>(dota.chat.size()) / dota.video.meta.length;
  const double lol_rate =
      static_cast<double>(lol.chat.size()) / lol.video.meta.length;
  EXPECT_GT(lol_rate, dota_rate);
}

TEST(ChatSimulatorTest, ShortStormsAreShortAndDiverse) {
  // Scan seeds until a storm episode appears, then verify its signature:
  // short messages with low mutual similarity (vs a reaction burst).
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const ChatFixture fx(seed);
    std::vector<std::string> storm_texts, burst_texts;
    for (const auto& m : fx.chat) {
      if (m.source == MessageSource::kShortStorm) {
        storm_texts.push_back(m.text);
      }
      if (m.source == MessageSource::kHighlightBurst &&
          m.highlight_index == 0) {
        burst_texts.push_back(m.text);
      }
    }
    if (storm_texts.size() < 15 || burst_texts.size() < 10) continue;
    text::Tokenizer tok;
    for (const auto& t : storm_texts) EXPECT_LE(tok.CountWords(t), 3u);
    const double storm_sim = text::MessageSetSimilarity(storm_texts);
    const double burst_sim = text::MessageSetSimilarity(burst_texts);
    EXPECT_LT(storm_sim, burst_sim * 0.8)
        << "storm messages should be far more diverse than a burst";
    return;
  }
  FAIL() << "no storm episode generated across seeds 1..8";
}

TEST(ChatSimulatorTest, BurstsRepeatAMemeSet) {
  // A single highlight's reaction burst draws from a small token set.
  const ChatFixture fx(4);
  text::Tokenizer tok;
  std::set<std::string> vocabulary;
  size_t tokens = 0;
  for (const auto& m : fx.chat) {
    if (m.source != MessageSource::kHighlightBurst || m.highlight_index != 0) {
      continue;
    }
    for (auto& t : tok.Tokenize(m.text)) {
      vocabulary.insert(std::move(t));
      ++tokens;
    }
  }
  ASSERT_GT(tokens, 10u);
  // The meme set has ~7 distinct tokens; allow a little slack for casing.
  EXPECT_LE(vocabulary.size(), 10u);
}

}  // namespace
}  // namespace lightor::sim
