#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "net/codec.h"
#include "net/service.h"
#include "obs/metrics.h"
#include "serving/highlight_server.h"
#include "sim/bridge.h"
#include "sim/corpus.h"
#include "sim/viewer_simulator.h"
#include "storage/database.h"
#include "testing/fault_env.h"

namespace lightor::serving {
namespace {

namespace ft = lightor::testing;

/// Shared fixture: one simulated platform and trained pipeline over a
/// memory-backed FaultEnv, so "the machine dies" is one call and restarts
/// reopen the surviving bytes. Mirrors the serving_server_test setup.
class ServingRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim::Platform::Options popts;
    popts.num_channels = 2;
    popts.videos_per_channel = 2;
    popts.seed = 71;
    platform_ = std::make_unique<sim::Platform>(popts);

    const auto corpus = sim::MakeCorpus(sim::GameType::kDota2, 1, 72);
    core::TrainingVideo tv;
    tv.messages = sim::ToCoreMessages(corpus[0].chat);
    tv.video_length = corpus[0].truth.meta.length;
    for (const auto& h : corpus[0].truth.highlights) {
      tv.highlights.push_back(h.span);
    }
    lightor_ = std::make_unique<core::Lightor>();
    ASSERT_TRUE(lightor_->TrainInitializer({tv}).ok());

    video_id_ = platform_->AllVideoIds()[0];
  }

  std::unique_ptr<storage::Database> OpenDb() {
    storage::OpenOptions options;
    options.directory = "db";
    options.env = &env_;
    auto db = storage::DB::Open(options);
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    return std::move(db.value().db);
  }

  std::unique_ptr<HighlightServer> MakeServer(storage::Database* db,
                                              ServerOptions opts = {}) {
    opts.platform = Borrow<const sim::Platform>(platform_.get());
    opts.db = Borrow(db);
    opts.lightor = Borrow<const core::Lightor>(lightor_.get());
    opts.refine_batch_sessions = 0;  // explicit refinement: deterministic
    auto server = HighlightServer::Create(opts);
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    return std::move(server).value();
  }

  /// Logs `per_dot` simulated viewer sessions around every current dot.
  /// Returns the number of sessions whose LogSession was acked.
  uint64_t LogSessions(HighlightServer* server, int per_dot,
                       uint64_t rng_seed) {
    const auto video = platform_->GetVideo(video_id_).value();
    const auto dots = server->GetHighlights(video_id_).value();
    sim::ViewerSimulator viewers;
    common::Rng rng(rng_seed);
    uint64_t acked = 0;
    for (const auto& dot : dots.highlights) {
      for (int u = 0; u < per_dot; ++u) {
        const auto session = viewers.SimulateSession(
            video.truth, dot.dot_position, rng, "w" + std::to_string(u));
        LogSessionRequest req;
        req.video_id = video_id_;
        req.user = session.user;
        req.session_id = ++next_session_id_;
        req.events = session.events;
        if (server->LogSession(req).ok()) ++acked;
      }
    }
    return acked;
  }

  /// The /highlights payload with the snapshot version normalized away
  /// (restarts reset the version counter; the dots must not change).
  static std::string ContentBytes(GetHighlightsResponse response) {
    response.snapshot_version = 0;
    return net::EncodeJson(response);
  }

  ft::FaultEnv env_;
  std::unique_ptr<sim::Platform> platform_;
  std::unique_ptr<core::Lightor> lightor_;
  std::string video_id_;
  uint64_t next_session_id_ = 0;
};

// The cold-restart differential: initialize, refine, SIGKILL, reopen.
// Two independent recovered servers must serve byte-identical /highlights
// payloads, the recovered dots must equal the pre-crash refined dots, and
// refinement must keep working after the restart.
TEST_F(ServingRecoveryTest, ColdRestartServesByteIdenticalHighlights) {
  std::string pre_crash_content;
  {
    auto db = OpenDb();
    auto server = MakeServer(db.get());
    ASSERT_TRUE(server->OnPageVisit({video_id_, "u"}).ok());
    const uint64_t acked = LogSessions(server.get(), 10, 73);
    ASSERT_GT(acked, 0u);
    auto report = server->Refine(video_id_);
    ASSERT_TRUE(report.ok());
    ASSERT_GT(report.value().dots_updated, 0);
    pre_crash_content = ContentBytes(server->GetHighlights(video_id_).value());

    // SIGKILL: no destructor gets to save anything. The zombie teardown
    // below runs against dead file handles.
    env_.RecoverAfterCrash(ft::CrashModel::kProcess);
  }

  // Restart twice from the same surviving bytes: the responses must match
  // byte for byte (including the snapshot version both reset to 1).
  std::string restarted_bytes;
  std::string restarted_content;
  {
    auto db = OpenDb();
    auto server = MakeServer(db.get());
    auto got = server->GetHighlights(video_id_);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got.value().snapshot_version, 1u);
    restarted_bytes = net::EncodeJson(got.value());
    restarted_content = ContentBytes(got.value());
  }
  {
    auto db = OpenDb();
    auto server = MakeServer(db.get());
    auto got = server->GetHighlights(video_id_);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(net::EncodeJson(got.value()), restarted_bytes);
  }
  EXPECT_EQ(restarted_content, pre_crash_content);

  // The recovered server is not read-only: new sessions refine further.
  auto db = OpenDb();
  auto server = MakeServer(db.get());
  const uint64_t acked = LogSessions(server.get(), 10, 74);
  ASSERT_GT(acked, 0u);
  auto report = server->Refine(video_id_);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().sessions_consumed, acked);
  EXPECT_GT(report.value().dots_updated, 0);
  EXPECT_GT(server->GetHighlights(video_id_).value().snapshot_version, 1u);
}

// Sessions logged but never refined before the crash replay from the log
// and feed the first post-restart refinement pass: implicit crowdsourcing
// signals survive the restart.
TEST_F(ServingRecoveryTest, ReplayedSessionsFeedPostRestartRefinement) {
  uint64_t acked = 0;
  {
    auto db = OpenDb();
    auto server = MakeServer(db.get());
    ASSERT_TRUE(server->OnPageVisit({video_id_, "u"}).ok());
    acked = LogSessions(server.get(), 10, 75);
    ASSERT_GT(acked, 0u);
    env_.RecoverAfterCrash(ft::CrashModel::kProcess);  // SIGKILL, no refine
  }

  auto db = OpenDb();
  // Per-record flush: every acked session must have been replayed.
  uint64_t replayed_sessions =
      db->interactions().SessionsForVideo(video_id_).size();
  EXPECT_EQ(replayed_sessions, acked);

  auto server = MakeServer(db.get());
  auto report = server->Refine(video_id_);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().sessions_consumed, acked);
  EXPECT_GT(report.value().dots_updated, 0);
}

// Batched session flushes trade the zero-loss guarantee for throughput: a
// crash mid-burst loses at most the sessions since the last flush (the
// refinement pass flushes), never anything older, and never corrupts the
// database.
TEST_F(ServingRecoveryTest, BatchedFlushCrashMidBurstKeepsFlushedPrefix) {
  uint64_t flushed_sessions = 0;
  {
    auto db = OpenDb();
    ServerOptions opts;
    opts.batched_session_flush = true;
    auto server = MakeServer(db.get(), opts);
    ASSERT_TRUE(server->OnPageVisit({video_id_, "u"}).ok());

    flushed_sessions = LogSessions(server.get(), 3, 76);
    ASSERT_TRUE(server->Refine(video_id_).ok());  // flushes the batch

    // Crash partway through the next burst.
    env_.CrashAt(env_.io_points() + 7);
    LogSessions(server.get(), 3, 77);  // some acked, then the crash
    EXPECT_TRUE(env_.crashed());
    env_.RecoverAfterCrash(ft::CrashModel::kProcess);
  }

  auto db = OpenDb();  // recovery must succeed, torn tail or not
  const auto sessions = db->interactions().SessionsForVideo(video_id_);
  // Everything flushed before the crash survived; the unflushed burst is
  // allowed to be (partially) gone.
  EXPECT_GE(sessions.size(), flushed_sessions);

  auto server = MakeServer(db.get());
  EXPECT_TRUE(server->GetHighlights(video_id_).ok());
  EXPECT_TRUE(server->Refine(video_id_).ok());
}

// Graceful degradation end to end: when the interaction log cannot accept
// a write, /session answers 503 + Retry-After (the record was NOT taken,
// the client should retry) and the write-error metric counts it.
TEST_F(ServingRecoveryTest, SessionLoggingFailureMaps503OnTheWire) {
  auto* counter = obs::Registry::Global().GetCounter(
      "lightor_storage_write_errors_total", {{"log", "interactions"}});

  auto db = OpenDb();
  auto server = MakeServer(db.get());
  ASSERT_TRUE(server->OnPageVisit({video_id_, "u"}).ok());
  net::Router routes = net::BuildRoutes(server.get());
  int error_status = 0;
  const net::HttpHandler* handler =
      routes.Find("POST", "/session", &error_status);
  ASSERT_NE(handler, nullptr);

  const auto video = platform_->GetVideo(video_id_).value();
  const auto dots = server->GetHighlights(video_id_).value();
  sim::ViewerSimulator viewers;
  common::Rng rng(78);
  const auto session = viewers.SimulateSession(
      video.truth, dots.highlights[0].dot_position, rng, "w0");
  LogSessionRequest req;
  req.video_id = video_id_;
  req.user = session.user;
  req.session_id = 1;
  req.events = session.events;

  // The request's fields are views; the encoded body must outlive it.
  const std::string body = net::EncodeJson(req);
  net::HttpRequest wire;
  wire.method = "POST";
  wire.path = "/session";
  wire.body = body;

  // Healthy path first: 200.
  EXPECT_EQ((*handler)(wire).status, 200);

  // A resend of the same session id is deduplicated — acked 200 without
  // touching storage, even with every subsequent write poisoned. This is
  // what makes a router retry after a lost ack exactly-once.
  env_.InjectAt(env_.io_points(), ft::FaultKind::kEnospc);
  wire.body = body;
  EXPECT_EQ((*handler)(wire).status, 200);

  const uint64_t errors_before = counter->value();
  req.session_id = 2;  // a fresh session must reach the poisoned log
  const std::string body2 = net::EncodeJson(req);
  wire.body = body2;
  net::HttpResponse response = (*handler)(wire);
  EXPECT_EQ(response.status, 503);
  const std::string* retry = response.FindHeader("retry-after");
  ASSERT_NE(retry, nullptr);
  EXPECT_EQ(*retry, "1");
  EXPECT_GT(counter->value(), errors_before);
}

// Checkpointed restart: after refine + checkpoint + a post-checkpoint
// burst, a SIGKILL restart loads the checkpoint, replays only the log
// suffix, serves byte-identical /highlights, and the first refinement
// pass consumes exactly the replayed suffix sessions (the checkpoint
// dropped the already-consumed ones; nothing is double-counted).
TEST_F(ServingRecoveryTest, CheckpointedRestartReplaysOnlySuffix) {
  std::string pre_crash_content;
  uint64_t suffix_acked = 0;
  size_t checkpoint_records = 0;
  {
    auto db = OpenDb();
    auto server = MakeServer(db.get());
    ASSERT_TRUE(server->OnPageVisit({video_id_, "u"}).ok());
    ASSERT_GT(LogSessions(server.get(), 10, 81), 0u);
    ASSERT_TRUE(server->Refine(video_id_).ok());

    auto stats = server->Checkpoint();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats.value().gen, 1u);
    EXPECT_GT(stats.value().records_written, 0u);
    EXPECT_GT(stats.value().log_bytes_truncated, 0u);
    checkpoint_records = stats.value().records_written;

    suffix_acked = LogSessions(server.get(), 2, 82);
    ASSERT_GT(suffix_acked, 0u);
    pre_crash_content = ContentBytes(server->GetHighlights(video_id_).value());

    env_.RecoverAfterCrash(ft::CrashModel::kProcess);  // SIGKILL
  }

  storage::OpenOptions options;
  options.directory = "db";
  options.env = &env_;
  auto opened = storage::DB::Open(options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(opened.value().stats.checkpoint_gen, 1u);
  EXPECT_EQ(opened.value().stats.checkpoint_records, checkpoint_records);
  EXPECT_GT(opened.value().stats.records_replayed, 0u);

  auto server = MakeServer(opened.value().db.get());
  server->Bootstrap(opened.value().stats);
  const auto info = server->recovery_info();
  EXPECT_TRUE(info.bootstrapped);
  EXPECT_EQ(info.stats.checkpoint_gen, 1u);

  EXPECT_EQ(ContentBytes(server->GetHighlights(video_id_).value()),
            pre_crash_content);

  // At-most-once across the restart: the video was refined pre-crash, so
  // the seeded watermark treats every replayed interaction as consumed
  // (the coarse restart-dedupe trade-off documented in api.h) — nothing
  // is double-counted into a second refinement.
  auto report = server->Refine(video_id_);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().sessions_consumed, 0u);

  // Refinement stays live after the checkpointed restart: sessions logged
  // by THIS process are consumed normally.
  const uint64_t fresh = LogSessions(server.get(), 3, 83);
  ASSERT_GT(fresh, 0u);
  report = server->Refine(video_id_);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().sessions_consumed, fresh);
  (void)suffix_acked;
}

// A clean shutdown with the checkpoint machinery enabled leaves a
// checkpoint behind exactly once: an explicit checkpoint right before
// Shutdown() makes the final shutdown pass a clean no-op, and the next
// open replays nothing.
TEST_F(ServingRecoveryTest, CleanShutdownSkipsCheckpointWhenNothingNew) {
  {
    auto db = OpenDb();
    ServerOptions opts;
    opts.checkpoint_interval_seconds = 3600.0;  // thread on, timer idle
    auto server = MakeServer(db.get(), opts);
    ASSERT_TRUE(server->OnPageVisit({video_id_, "u"}).ok());
    ASSERT_GT(LogSessions(server.get(), 3, 84), 0u);
    ASSERT_TRUE(server->Refine(video_id_).ok());  // drain pending sessions
    auto stats = server->Checkpoint();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats.value().gen, 1u);
    server->Shutdown();  // final pass sees a clean database and skips
  }
  storage::OpenOptions options;
  options.directory = "db";
  options.env = &env_;
  auto opened = storage::DB::Open(options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(opened.value().stats.checkpoint_gen, 1u);
  EXPECT_EQ(opened.value().stats.records_replayed, 0u);
}

// The session-count trigger: every N acked sessions the background thread
// runs a checkpoint, observable through the trigger metric and the
// MANIFEST it installs.
TEST_F(ServingRecoveryTest, SessionCountTriggersBackgroundCheckpoint) {
  auto* counter = obs::Registry::Global().GetCounter(
      "lightor_serving_checkpoint_trigger_total", {{"trigger", "sessions"}});
  const uint64_t before = counter->value();

  auto db = OpenDb();
  ServerOptions opts;
  opts.checkpoint_every_sessions = 2;
  auto server = MakeServer(db.get(), opts);
  ASSERT_TRUE(server->OnPageVisit({video_id_, "u"}).ok());
  ASSERT_GE(LogSessions(server.get(), 3, 85), 2u);

  for (int i = 0; i < 500 && counter->value() == before; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GT(counter->value(), before);
  EXPECT_TRUE(env_.FileExists("db/MANIFEST"));
  server->Shutdown();

  storage::OpenOptions options;
  options.directory = "db";
  options.env = &env_;
  auto opened = storage::DB::Open(options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_GE(opened.value().stats.checkpoint_gen, 1u);
}

// /healthz surfaces the Bootstrap()-recorded RecoveryStats and
// POST /debug/checkpoint runs one on demand, both over the wire.
TEST_F(ServingRecoveryTest, HealthzAndDebugCheckpointOnTheWire) {
  auto db = OpenDb();
  auto server = MakeServer(db.get());

  storage::RecoveryStats stats;
  stats.checkpoint_gen = 3;
  stats.checkpoint_lsn = 42;
  stats.log_gen = 3;
  stats.checkpoint_records = 40;
  stats.records_replayed = 7;
  server->Bootstrap(stats);

  net::Router routes = net::BuildRoutes(server.get());
  int error_status = 0;
  const net::HttpHandler* health =
      routes.Find("GET", "/healthz", &error_status);
  ASSERT_NE(health, nullptr);
  net::HttpRequest wire;
  wire.method = "GET";
  wire.path = "/healthz";
  net::HttpResponse response = (*health)(wire);
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"bootstrapped\":true"), std::string::npos)
      << response.body;
  EXPECT_NE(response.body.find("\"checkpoint_gen\":3"), std::string::npos);
  EXPECT_NE(response.body.find("\"records_replayed\":7"), std::string::npos);

  // Give the checkpoint something to persist, then trigger it remotely.
  ASSERT_TRUE(server->OnPageVisit({video_id_, "u"}).ok());
  ASSERT_GT(LogSessions(server.get(), 2, 86), 0u);
  const net::HttpHandler* ckpt =
      routes.Find("POST", "/debug/checkpoint", &error_status);
  ASSERT_NE(ckpt, nullptr);
  wire.method = "POST";
  wire.path = "/debug/checkpoint";
  response = (*ckpt)(wire);
  EXPECT_EQ(response.status, 200) << response.body;
  EXPECT_NE(response.body.find("\"gen\":1"), std::string::npos)
      << response.body;
  EXPECT_TRUE(env_.FileExists("db/MANIFEST"));
}

}  // namespace
}  // namespace lightor::serving
