#include <gtest/gtest.h>

#include <string>

#include "net/codec.h"
#include "net/json.h"
#include "sim/viewer.h"

namespace lightor::net {
namespace {

// ---------------------------------------------------------------------------
// Json parser strictness

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(Json::Parse("null").value().is_null());
  EXPECT_TRUE(Json::Parse("true").value().AsBool());
  EXPECT_FALSE(Json::Parse("false").value().AsBool());
  EXPECT_DOUBLE_EQ(Json::Parse("123").value().AsNumber(), 123.0);
  EXPECT_DOUBLE_EQ(Json::Parse("-0.5").value().AsNumber(), -0.5);
  EXPECT_DOUBLE_EQ(Json::Parse("1e3").value().AsNumber(), 1000.0);
  EXPECT_DOUBLE_EQ(Json::Parse("2.5E-1").value().AsNumber(), 0.25);
  EXPECT_EQ(Json::Parse("\"hi\"").value().AsString(), "hi");
}

TEST(JsonParseTest, WholeInputRequired) {
  EXPECT_FALSE(Json::Parse("1 2").ok());
  EXPECT_FALSE(Json::Parse("{} extra").ok());
  EXPECT_FALSE(Json::Parse("[1,2]]").ok());
  EXPECT_FALSE(Json::Parse("").ok());
  EXPECT_TRUE(Json::Parse("  [1]  ").ok());  // surrounding ws is fine
}

TEST(JsonParseTest, StrictNumbers) {
  EXPECT_FALSE(Json::Parse("012").ok());   // leading zero
  EXPECT_FALSE(Json::Parse("+1").ok());    // explicit plus
  EXPECT_FALSE(Json::Parse("1.").ok());    // bare decimal point
  EXPECT_FALSE(Json::Parse(".5").ok());
  EXPECT_FALSE(Json::Parse("NaN").ok());
  EXPECT_FALSE(Json::Parse("Infinity").ok());
  EXPECT_FALSE(Json::Parse("1e999").ok());  // overflows to inf
  EXPECT_TRUE(Json::Parse("0").ok());
  EXPECT_TRUE(Json::Parse("-0").ok());
  EXPECT_TRUE(Json::Parse("0.125").ok());
}

TEST(JsonParseTest, DuplicateObjectKeysRejected) {
  EXPECT_FALSE(Json::Parse("{\"a\":1,\"a\":2}").ok());
  EXPECT_TRUE(Json::Parse("{\"a\":1,\"b\":2}").ok());
}

TEST(JsonParseTest, StringEscapes) {
  EXPECT_EQ(Json::Parse("\"a\\nb\"").value().AsString(), "a\nb");
  EXPECT_EQ(Json::Parse("\"\\\"\\\\\\/\"").value().AsString(), "\"\\/");
  EXPECT_EQ(Json::Parse("\"\\u0041\"").value().AsString(), "A");
  // Surrogate pair: U+1F600 -> 4-byte UTF-8.
  EXPECT_EQ(Json::Parse("\"\\uD83D\\uDE00\"").value().AsString(),
            "\xF0\x9F\x98\x80");
  EXPECT_FALSE(Json::Parse("\"\\uD83D\"").ok());   // lone high surrogate
  EXPECT_FALSE(Json::Parse("\"\\x41\"").ok());     // unknown escape
  EXPECT_FALSE(Json::Parse("\"unterminated").ok());
  EXPECT_FALSE(Json::Parse("\"raw\x01control\"").ok());
}

TEST(JsonParseTest, DepthCapped) {
  std::string deep_ok, deep_bad;
  for (int i = 0; i < 30; ++i) deep_ok += '[';
  deep_ok += "1";
  for (int i = 0; i < 30; ++i) deep_ok += ']';
  for (int i = 0; i < 80; ++i) deep_bad += '[';
  deep_bad += "1";
  for (int i = 0; i < 80; ++i) deep_bad += ']';
  EXPECT_TRUE(Json::Parse(deep_ok).ok());
  EXPECT_FALSE(Json::Parse(deep_bad).ok());
}

TEST(JsonDumpTest, RoundTripPreservesOrderAndIntegers) {
  Json obj = Json::MakeObject();
  obj.Set("zeta", Json::Int(5));
  obj.Set("alpha", Json::Number(0.5));
  Json arr = Json::MakeArray();
  arr.Append(Json::Bool(true));
  arr.Append(Json::Null());
  arr.Append(Json::Str("x\"y"));
  obj.Set("list", std::move(arr));
  const std::string dumped = obj.Dump();
  // Insertion order kept; integral doubles print without a decimal point.
  EXPECT_EQ(dumped, "{\"zeta\":5,\"alpha\":0.5,\"list\":[true,null,\"x\\\"y\"]}");
  auto back = Json::Parse(dumped);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().Dump(), dumped);
}

TEST(JsonDumpTest, FindOnObjects) {
  auto parsed = Json::Parse("{\"a\":1,\"b\":\"two\"}");
  ASSERT_TRUE(parsed.ok());
  ASSERT_NE(parsed.value().Find("b"), nullptr);
  EXPECT_EQ(parsed.value().Find("b")->AsString(), "two");
  EXPECT_EQ(parsed.value().Find("missing"), nullptr);
  EXPECT_EQ(Json::Int(3).Find("a"), nullptr);  // non-object
}

TEST(JsonDumpTest, AppendJsonStringEscapesControls) {
  std::string out;
  AppendJsonString(std::string("a\"b\\c\n\t\x01z", 9), out);
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\n\\t\\u0001z\"");
}

// ---------------------------------------------------------------------------
// Wire codec round trips

storage::HighlightRecord MakeRecord(int index) {
  storage::HighlightRecord rec;
  rec.video_id = "vid-1";
  rec.dot_index = index;
  rec.dot_position = 10.5 * (index + 1);
  rec.start = rec.dot_position - 5.0;
  rec.end = rec.dot_position + 5.0;
  rec.score = 0.25 * (index + 1);
  rec.iteration = index;
  rec.converged = index % 2 == 0;
  return rec;
}

TEST(CodecTest, PageVisitRoundTrip) {
  serving::PageVisitRequest req;
  req.video_id = "vid-1";
  req.user = "alice";
  auto req_back = DecodePageVisitRequest(EncodeJson(req));
  ASSERT_TRUE(req_back.ok());
  EXPECT_EQ(req_back.value().video_id, "vid-1");
  EXPECT_EQ(req_back.value().user, "alice");

  serving::PageVisitResponse resp;
  resp.highlights = {MakeRecord(0), MakeRecord(1)};
  resp.first_visit = true;
  resp.snapshot_version = 7;
  resp.provisional = false;
  auto resp_back = DecodePageVisitResponse(EncodeJson(resp));
  ASSERT_TRUE(resp_back.ok());
  EXPECT_EQ(resp_back.value().highlights, resp.highlights);
  EXPECT_TRUE(resp_back.value().first_visit);
  EXPECT_EQ(resp_back.value().snapshot_version, 7u);
}

TEST(CodecTest, LogSessionRoundTripAllEventTypes) {
  serving::LogSessionRequest req;
  req.video_id = "vid-2";
  req.user = "bob";
  req.session_id = (uint64_t{3} << 32) | 9;
  const sim::InteractionType types[] = {
      sim::InteractionType::kPlay, sim::InteractionType::kPause,
      sim::InteractionType::kSeekForward, sim::InteractionType::kSeekBackward};
  double t = 0.0;
  for (const auto type : types) {
    sim::InteractionEvent event;
    event.wall_time = (t += 1.5);
    event.type = type;
    event.position = t * 10;
    event.target = t * 20;
    req.events.push_back(event);
  }
  auto back = DecodeLogSessionRequest(EncodeJson(req));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().video_id, "vid-2");
  EXPECT_EQ(back.value().session_id, req.session_id);
  ASSERT_EQ(back.value().events.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(back.value().events[i].type, req.events[i].type) << i;
    EXPECT_DOUBLE_EQ(back.value().events[i].wall_time,
                     req.events[i].wall_time);
    EXPECT_DOUBLE_EQ(back.value().events[i].position, req.events[i].position);
    EXPECT_DOUBLE_EQ(back.value().events[i].target, req.events[i].target);
  }
}

TEST(CodecTest, IngestAndFinalizeRoundTrip) {
  serving::IngestChatRequest req;
  req.video_id = "live-1";
  core::Message m;
  m.timestamp = 12.25;
  m.user = "chatter";
  m.text = "gg \"wp\"";
  req.messages.push_back(m);
  auto req_back = DecodeIngestChatRequest(EncodeJson(req));
  ASSERT_TRUE(req_back.ok());
  ASSERT_EQ(req_back.value().messages.size(), 1u);
  EXPECT_EQ(req_back.value().messages[0].text, "gg \"wp\"");
  EXPECT_DOUBLE_EQ(req_back.value().messages[0].timestamp, 12.25);

  serving::IngestChatResponse resp;
  resp.accepted = 31;
  resp.rejected = 1;
  resp.provisional_published = true;
  resp.snapshot_version = 2;
  auto resp_back = DecodeIngestChatResponse(EncodeJson(resp));
  ASSERT_TRUE(resp_back.ok());
  EXPECT_EQ(resp_back.value().accepted, 31u);
  EXPECT_EQ(resp_back.value().rejected, 1u);
  EXPECT_TRUE(resp_back.value().provisional_published);

  serving::FinalizeStreamRequest freq;
  freq.video_id = "live-1";
  freq.video_length = 600.0;
  auto freq_back = DecodeFinalizeStreamRequest(EncodeJson(freq));
  ASSERT_TRUE(freq_back.ok());
  EXPECT_DOUBLE_EQ(freq_back.value().video_length, 600.0);

  serving::FinalizeStreamResponse fresp;
  fresp.highlights = {MakeRecord(2)};
  fresp.snapshot_version = 4;
  fresp.video_length = 601.5;
  auto fresp_back = DecodeFinalizeStreamResponse(EncodeJson(fresp));
  ASSERT_TRUE(fresp_back.ok());
  EXPECT_EQ(fresp_back.value().highlights, fresp.highlights);
  EXPECT_DOUBLE_EQ(fresp_back.value().video_length, 601.5);
}

TEST(CodecTest, GetHighlightsRoundTrip) {
  serving::GetHighlightsResponse resp;
  resp.highlights = {MakeRecord(0)};
  resp.snapshot_version = 9;
  resp.provisional = true;
  auto back = DecodeGetHighlightsResponse(EncodeJson(resp));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().highlights, resp.highlights);
  EXPECT_TRUE(back.value().provisional);
}

TEST(CodecTest, StrictDecodeErrors) {
  // Malformed JSON, missing required field, wrong type: all errors.
  EXPECT_FALSE(DecodePageVisitRequest("not json").ok());
  EXPECT_FALSE(DecodePageVisitRequest("{}").ok());
  EXPECT_FALSE(DecodePageVisitRequest("{\"video_id\":7}").ok());
  EXPECT_FALSE(DecodeLogSessionRequest(
                   "{\"video_id\":\"v\",\"user\":\"u\",\"session_id\":1,"
                   "\"events\":[{\"wall_time\":0,\"type\":\"warp\","
                   "\"position\":0,\"target\":0}]}")
                   .ok());  // unknown event type
  // Unknown top-level fields are tolerated.
  EXPECT_TRUE(DecodePageVisitRequest(
                  "{\"video_id\":\"v\",\"future_field\":true}")
                  .ok());
}

TEST(CodecTest, ThrottleFieldsRoundTripAndTolerateOldServers) {
  serving::IngestChatResponse resp;
  resp.throttled = true;
  resp.retry_after_seconds = 2.5;
  auto back = DecodeIngestChatResponse(EncodeJson(resp));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value().throttled);
  EXPECT_DOUBLE_EQ(back.value().retry_after_seconds, 2.5);

  // A pre-admission server's body has no throttle fields; the decoder
  // must default them, not reject the frame.
  auto old = DecodeIngestChatResponse(
      "{\"accepted\":3,\"rejected\":0,\"provisional_published\":false,"
      "\"snapshot_version\":0}");
  ASSERT_TRUE(old.ok());
  EXPECT_FALSE(old.value().throttled);
  EXPECT_DOUBLE_EQ(old.value().retry_after_seconds, 0.0);
}

std::vector<serving::IngestChatRequest> MakeBatchFrame() {
  std::vector<serving::IngestChatRequest> batches;
  for (int c = 0; c < 3; ++c) {
    serving::IngestChatRequest req;
    req.video_id = "chan-" + std::to_string(c);
    for (int m = 0; m < 2 + c; ++m) {
      core::Message msg;
      msg.timestamp = c * 100.0 + m * 0.5;
      msg.user = "u" + std::to_string(m);
      msg.text = "line \"" + std::to_string(m) + "\" é";
      req.messages.push_back(std::move(msg));
    }
    batches.push_back(std::move(req));
  }
  return batches;
}

TEST(CodecTest, BatchIngestFrameRoundTrip) {
  const auto batches = MakeBatchFrame();
  auto back = DecodeIngestBatchRequest(EncodeIngestBatchRequest(batches));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back.value().size(), batches.size());
  for (size_t c = 0; c < batches.size(); ++c) {
    EXPECT_EQ(back.value()[c].video_id, batches[c].video_id);
    ASSERT_EQ(back.value()[c].messages.size(), batches[c].messages.size());
    for (size_t m = 0; m < batches[c].messages.size(); ++m) {
      EXPECT_DOUBLE_EQ(back.value()[c].messages[m].timestamp,
                       batches[c].messages[m].timestamp);
      EXPECT_EQ(back.value()[c].messages[m].user, batches[c].messages[m].user);
      EXPECT_EQ(back.value()[c].messages[m].text, batches[c].messages[m].text);
    }
  }

  std::vector<IngestBatchEntry> entries;
  IngestBatchEntry ok_entry;
  ok_entry.video_id = "chan-0";
  ok_entry.status = 200;
  ok_entry.response.accepted = 2;
  ok_entry.response.snapshot_version = 5;
  entries.push_back(ok_entry);
  IngestBatchEntry throttled;
  throttled.video_id = "chan-1";
  throttled.status = 429;
  throttled.response.throttled = true;
  throttled.response.retry_after_seconds = 1.25;
  entries.push_back(throttled);
  IngestBatchEntry conflict;
  conflict.video_id = "chan-2";
  conflict.status = 409;
  conflict.error = "recorded video";
  entries.push_back(conflict);

  auto entries_back = DecodeIngestBatchResponse(
      EncodeIngestBatchResponse(entries));
  ASSERT_TRUE(entries_back.ok()) << entries_back.status().ToString();
  ASSERT_EQ(entries_back.value().size(), 3u);
  EXPECT_EQ(entries_back.value()[0].status, 200);
  EXPECT_EQ(entries_back.value()[0].response.accepted, 2u);
  EXPECT_EQ(entries_back.value()[0].response.snapshot_version, 5u);
  EXPECT_EQ(entries_back.value()[1].status, 429);
  EXPECT_TRUE(entries_back.value()[1].response.throttled);
  EXPECT_DOUBLE_EQ(entries_back.value()[1].response.retry_after_seconds,
                   1.25);
  EXPECT_EQ(entries_back.value()[2].status, 409);
  EXPECT_EQ(entries_back.value()[2].error, "recorded video");
}

TEST(CodecTest, BatchDecodeMatchesJsonParseReference) {
  // The batch decoder runs over the arena JsonDoc parser; walk the same
  // wire bytes with the independent Json::Parse tree and require field-
  // for-field agreement.
  const std::string wire = EncodeIngestBatchRequest(MakeBatchFrame());
  auto arena = DecodeIngestBatchRequest(wire);
  ASSERT_TRUE(arena.ok()) << arena.status().ToString();
  auto tree = Json::Parse(wire);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  ASSERT_TRUE(tree.value().is_array());
  const auto& ref_batches = tree.value().AsArray();
  ASSERT_EQ(arena.value().size(), ref_batches.size());
  for (size_t c = 0; c < ref_batches.size(); ++c) {
    const Json* video_id = ref_batches[c].Find("video_id");
    ASSERT_NE(video_id, nullptr);
    EXPECT_EQ(arena.value()[c].video_id, video_id->AsString());
    const Json* messages = ref_batches[c].Find("messages");
    ASSERT_NE(messages, nullptr);
    ASSERT_TRUE(messages->is_array());
    ASSERT_EQ(arena.value()[c].messages.size(), messages->AsArray().size());
    for (size_t m = 0; m < messages->AsArray().size(); ++m) {
      const Json& ref = messages->AsArray()[m];
      EXPECT_DOUBLE_EQ(arena.value()[c].messages[m].timestamp,
                       ref.Find("timestamp")->AsNumber());
      EXPECT_EQ(arena.value()[c].messages[m].user,
                ref.Find("user")->AsString());
      EXPECT_EQ(arena.value()[c].messages[m].text,
                ref.Find("text")->AsString());
    }
  }
}

TEST(CodecTest, BatchStrictDecodeErrors) {
  // A batch frame must be a top-level array of single-frame objects.
  EXPECT_FALSE(DecodeIngestBatchRequest("{}").ok());
  EXPECT_FALSE(DecodeIngestBatchRequest("{\"video_id\":\"v\"}").ok());
  EXPECT_FALSE(DecodeIngestBatchRequest("[1]").ok());
  EXPECT_FALSE(DecodeIngestBatchRequest("[{\"messages\":[]}]").ok());
  EXPECT_FALSE(
      DecodeIngestBatchRequest("[{\"video_id\":\"v\",\"messages\":3}]").ok());
  EXPECT_FALSE(DecodeIngestBatchRequest("[").ok());
  // The empty frame is well-formed (zero channels).
  auto empty = DecodeIngestBatchRequest("[]");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().empty());
}

TEST(CodecTest, EncodingIsCanonical) {
  // The differential check depends on stable byte-for-byte encodings.
  serving::GetHighlightsResponse resp;
  resp.highlights = {MakeRecord(0)};
  resp.snapshot_version = 1;
  EXPECT_EQ(EncodeJson(resp), EncodeJson(resp));
  EXPECT_EQ(
      EncodeJson(resp),
      "{\"highlights\":[{\"video_id\":\"vid-1\",\"dot_index\":0,"
      "\"dot_position\":10.5,\"start\":5.5,\"end\":15.5,\"score\":0.25,"
      "\"iteration\":0,\"converged\":true}],\"snapshot_version\":1,"
      "\"provisional\":false}");
}

}  // namespace
}  // namespace lightor::net
