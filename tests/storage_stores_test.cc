#include <gtest/gtest.h>

#include "storage/stores.h"

namespace lightor::storage {
namespace {

ChatRecord Chat(const std::string& video, double t,
                const std::string& text = "hi") {
  ChatRecord rec;
  rec.video_id = video;
  rec.timestamp = t;
  rec.user = "u";
  rec.text = text;
  return rec;
}

TEST(ChatStoreTest, PutAndGetSorted) {
  ChatStore store;
  store.Put(Chat("v1", 30.0));
  store.Put(Chat("v1", 10.0));  // out of order on purpose
  store.Put(Chat("v1", 20.0));
  store.Put(Chat("v2", 5.0));
  const auto& msgs = store.GetByVideo("v1");
  ASSERT_EQ(msgs.size(), 3u);
  EXPECT_DOUBLE_EQ(msgs[0].timestamp, 10.0);
  EXPECT_DOUBLE_EQ(msgs[2].timestamp, 30.0);
  EXPECT_EQ(store.TotalRecords(), 4u);
}

TEST(ChatStoreTest, HasVideoAndMissingVideo) {
  ChatStore store;
  store.Put(Chat("v1", 1.0));
  EXPECT_TRUE(store.HasVideo("v1"));
  EXPECT_FALSE(store.HasVideo("v2"));
  EXPECT_TRUE(store.GetByVideo("v2").empty());
}

TEST(ChatStoreTest, GetRangeHalfOpen) {
  ChatStore store;
  for (double t : {5.0, 10.0, 15.0, 20.0}) store.Put(Chat("v", t));
  const auto range = store.GetRange("v", 10.0, 20.0);
  ASSERT_EQ(range.size(), 2u);
  EXPECT_DOUBLE_EQ(range[0].timestamp, 10.0);
  EXPECT_DOUBLE_EQ(range[1].timestamp, 15.0);
  EXPECT_TRUE(store.GetRange("v", 100.0, 200.0).empty());
}

TEST(ChatStoreTest, VideoIdsSorted) {
  ChatStore store;
  store.Put(Chat("zz", 1.0));
  store.Put(Chat("aa", 1.0));
  EXPECT_EQ(store.VideoIds(), (std::vector<std::string>{"aa", "zz"}));
}

InteractionRecord Interaction(const std::string& video, uint64_t session,
                              double wall, StoredInteraction event) {
  InteractionRecord rec;
  rec.video_id = video;
  rec.user = "u";
  rec.session_id = session;
  rec.event = event;
  rec.wall_time = wall;
  return rec;
}

TEST(InteractionStoreTest, GroupsBySession) {
  InteractionStore store;
  store.Put(Interaction("v", 1, 0.0, StoredInteraction::kPlay));
  store.Put(Interaction("v", 2, 0.0, StoredInteraction::kPlay));
  store.Put(Interaction("v", 1, 5.0, StoredInteraction::kPause));
  const auto sessions = store.SessionsForVideo("v");
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_EQ(sessions.at(1).size(), 2u);
  EXPECT_EQ(sessions.at(2).size(), 1u);
}

TEST(InteractionStoreTest, SessionsSortedByWallTime) {
  InteractionStore store;
  store.Put(Interaction("v", 1, 9.0, StoredInteraction::kPause));
  store.Put(Interaction("v", 1, 1.0, StoredInteraction::kPlay));
  const auto sessions = store.SessionsForVideo("v");
  const auto& events = sessions.at(1);
  EXPECT_DOUBLE_EQ(events[0].wall_time, 1.0);
  EXPECT_DOUBLE_EQ(events[1].wall_time, 9.0);
}

TEST(InteractionStoreTest, GenerationWatermark) {
  InteractionStore store;
  store.Put(Interaction("v", 1, 0.0, StoredInteraction::kPlay));
  const uint64_t mark = store.current_generation() + 1;
  store.Put(Interaction("v", 2, 0.0, StoredInteraction::kPlay));
  const auto fresh = store.SessionsSince("v", mark);
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh.begin()->first, 2u);
}

TEST(InteractionStoreTest, UnknownVideoEmpty) {
  InteractionStore store;
  EXPECT_TRUE(store.SessionsForVideo("none").empty());
}

TEST(InteractionStoreTest, HasSessionTracksPutAndRestore) {
  InteractionStore store;
  EXPECT_FALSE(store.HasSession("v", 1));
  store.Put(Interaction("v", 1, 0.0, StoredInteraction::kPlay));
  EXPECT_TRUE(store.HasSession("v", 1));
  EXPECT_FALSE(store.HasSession("v", 2));
  EXPECT_FALSE(store.HasSession("other", 1));  // scoped per video
  // Checkpoint load path must keep the index dedup-correct after a
  // restart.
  store.RestoreEntry(Interaction("w", 9, 0.0, StoredInteraction::kPlay), 5);
  EXPECT_TRUE(store.HasSession("w", 9));
}

TEST(InteractionStoreTest, SessionEventCountIsPerEvent) {
  // A crash can persist a strict prefix of a session's events, so the
  // dedup index counts events, not just session presence — the serving
  // layer resumes a torn session by appending from this count.
  InteractionStore store;
  EXPECT_EQ(store.SessionEventCount("v", 1), 0u);
  store.Put(Interaction("v", 1, 0.0, StoredInteraction::kPlay));
  store.Put(Interaction("v", 1, 1.0, StoredInteraction::kPause));
  EXPECT_EQ(store.SessionEventCount("v", 1), 2u);
  EXPECT_EQ(store.SessionEventCount("v", 2), 0u);
  EXPECT_EQ(store.SessionEventCount("other", 1), 0u);  // scoped per video
  // Checkpoint load accumulates the same counts as the original Puts.
  store.RestoreEntry(Interaction("v", 1, 2.0, StoredInteraction::kPlay), 7);
  EXPECT_EQ(store.SessionEventCount("v", 1), 3u);
}

HighlightRecord Dot(const std::string& video, int32_t index, int32_t iter,
                    double start = 100.0) {
  HighlightRecord rec;
  rec.video_id = video;
  rec.dot_index = index;
  rec.iteration = iter;
  rec.start = start;
  rec.end = start + 20.0;
  rec.dot_position = start;
  return rec;
}

TEST(HighlightStoreTest, LatestPerDot) {
  HighlightStore store;
  store.Put(Dot("v", 0, 0, 100.0));
  store.Put(Dot("v", 0, 1, 95.0));
  store.Put(Dot("v", 1, 0, 500.0));
  const auto latest = store.GetLatest("v");
  ASSERT_EQ(latest.size(), 2u);
  EXPECT_EQ(latest[0].iteration, 1);
  EXPECT_DOUBLE_EQ(latest[0].start, 95.0);
  EXPECT_EQ(latest[1].dot_index, 1);
}

TEST(HighlightStoreTest, HistoryOldestFirst) {
  HighlightStore store;
  store.Put(Dot("v", 0, 0));
  store.Put(Dot("v", 0, 1));
  store.Put(Dot("v", 0, 2));
  const auto history = store.GetHistory("v", 0);
  ASSERT_EQ(history.size(), 3u);
  EXPECT_EQ(history.front().iteration, 0);
  EXPECT_EQ(history.back().iteration, 2);
  EXPECT_TRUE(store.GetHistory("v", 9).empty());
}

TEST(HighlightStoreTest, GetDotAndMisses) {
  HighlightStore store;
  store.Put(Dot("v", 2, 0));
  auto dot = store.GetDot("v", 2);
  ASSERT_TRUE(dot.ok());
  EXPECT_EQ(dot.value().dot_index, 2);
  EXPECT_TRUE(store.GetDot("v", 0).status().IsNotFound());
  EXPECT_TRUE(store.GetDot("w", 2).status().IsNotFound());
}

TEST(HighlightStoreTest, HasVideoScansPrefix) {
  HighlightStore store;
  EXPECT_FALSE(store.HasVideo("v"));
  store.Put(Dot("v", 5, 0));
  EXPECT_TRUE(store.HasVideo("v"));
  EXPECT_FALSE(store.HasVideo("u"));
  // "v" must not match a video named "va" via prefix confusion.
  EXPECT_FALSE(store.HasVideo("va"));
}

}  // namespace
}  // namespace lightor::storage
