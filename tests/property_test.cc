/// Cross-cutting property tests: randomized inputs, invariant checks.

#include <gtest/gtest.h>

#include <filesystem>

#include "common/rng.h"
#include "common/stats.h"
#include "core/extractor.h"
#include "core/initializer.h"
#include "ml/metrics.h"
#include "sim/bridge.h"
#include "sim/corpus.h"
#include "storage/database.h"
#include "storage/log.h"
#include "storage/stores.h"
#include "testing/fault_env.h"

namespace lightor {
namespace {

class SeededPropertyTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SeededPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55));

// Property: the append log round-trips arbitrary payload sequences.
TEST_P(SeededPropertyTest, AppendLogRoundTripsRandomPayloads) {
  common::Rng rng(GetParam());
  const auto path =
      (std::filesystem::temp_directory_path() /
       ("lightor_prop_log_" + std::to_string(GetParam()) + ".log"))
          .string();
  std::filesystem::remove(path);
  std::vector<std::vector<uint8_t>> payloads;
  {
    storage::AppendLog log;
    ASSERT_TRUE(log.Open(path).ok());
    const int n = static_cast<int>(rng.UniformInt(1, 40));
    for (int i = 0; i < n; ++i) {
      std::vector<uint8_t> payload(
          static_cast<size_t>(rng.UniformInt(0, 2000)));
      for (auto& b : payload) {
        b = static_cast<uint8_t>(rng.UniformInt(0, 255));
      }
      ASSERT_TRUE(log.Append(payload).ok());
      payloads.push_back(std::move(payload));
    }
  }
  std::vector<std::vector<uint8_t>> read;
  ASSERT_TRUE(storage::AppendLog::ReplayFile(
                  path,
                  [&](const std::vector<uint8_t>& p) { read.push_back(p); })
                  .ok());
  EXPECT_EQ(read, payloads);
  std::filesystem::remove(path);
}

// Property: under a seeded random schedule of faults, crashes, and power
// failures, the append log never violates its durability model. The
// reference model tracks three watermarks over the acked records — all
// acked, flushed-to-kernel, synced-to-platter — and after every simulated
// failure the surviving records must be an exact prefix of the acked
// sequence, no shorter than the tier the crash model guarantees.
TEST_P(SeededPropertyTest, FaultyLogObeysDurabilityModel) {
  const uint64_t seed = GetParam();
  testing::FaultEnv env;
  env.SeedRandomFaults(seed * 7919 + 1, /*p_transient=*/0.10,
                       /*p_error=*/0.15);
  common::Rng rng(seed);

  storage::AppendLog log;
  log.set_flush_each_append(false);  // batched: the interesting mode
  (void)log.Open("wal", &env);       // may itself draw an injected fault

  std::vector<std::vector<uint8_t>> acked;
  size_t kernel = 0;  // records guaranteed flushed to the kernel tier
  size_t synced = 0;  // records guaranteed on the platter tier

  auto replay = [&] {
    std::vector<std::vector<uint8_t>> out;
    EXPECT_TRUE(storage::AppendLog::ReplayFile(
                    "wal",
                    [&](const std::vector<uint8_t>& p) { out.push_back(p); },
                    nullptr, &env)
                    .ok());
    return out;
  };
  // What the application does after a wedge or a restart: recover the
  // log, learn which records survived, and fold that back into its view
  // of the world. `lower` is the tier the failure mode guarantees.
  auto reconcile = [&](size_t lower, int step) {
    (void)storage::AppendLog::Recover("wal", &env);
    const auto surviving = replay();
    ASSERT_GE(surviving.size(), lower) << "seed " << seed << " step " << step;
    ASSERT_LE(surviving.size(), acked.size())
        << "seed " << seed << " step " << step;
    for (size_t i = 0; i < surviving.size(); ++i) {
      ASSERT_EQ(surviving[i], acked[i])
          << "seed " << seed << " step " << step << " record " << i;
    }
    acked.resize(surviving.size());
    kernel = surviving.size();
    if (synced > surviving.size()) synced = surviving.size();
    (void)log.Open("wal", &env);  // reopen may fail; healed next round
  };

  for (int step = 0; step < 200; ++step) {
    if (!log.is_open() || log.wedged()) {
      // A wedge discards the unflushed tail by design: only the kernel
      // tier is promised across it.
      reconcile(kernel, step);
      if (!log.is_open()) continue;
    }
    const double u = rng.NextDouble();
    if (u < 0.60) {
      std::vector<uint8_t> payload(
          static_cast<size_t>(rng.UniformInt(0, 64)));
      for (auto& b : payload) {
        b = static_cast<uint8_t>(rng.UniformInt(0, 255));
      }
      if (log.Append(payload).ok()) acked.push_back(std::move(payload));
    } else if (u < 0.75) {
      if (log.Flush().ok()) kernel = acked.size();
    } else if (u < 0.82) {
      if (log.Sync().ok()) {
        kernel = acked.size();
        synced = acked.size();
      }
    } else {
      const bool power_loss = rng.Bernoulli(0.3);
      env.RecoverAfterCrash(power_loss
                                ? testing::CrashModel::kPowerLoss
                                : testing::CrashModel::kProcess);
      reconcile(power_loss ? synced : kernel, step);
    }
  }

  // One last kill: whatever the workload ended in, the contract holds.
  env.RecoverAfterCrash(testing::CrashModel::kProcess);
  reconcile(kernel, 200);
}

// Property: a checkpoint plus suffix replay recovers the exact same state
// as a full-log replay, for any random operation sequence and any
// checkpoint position. Two databases receive identical writes; one
// checkpoints mid-stream (keep-consumed policy, so no records are
// intentionally dropped); after a restart their full-state dumps must be
// byte-identical — records, interaction generations, and LSN included.
TEST_P(SeededPropertyTest, CheckpointPlusSuffixEqualsFullReplay) {
  common::Rng rng(GetParam() ^ 0xC4E5);
  testing::FaultEnv env;

  auto open = [&](const std::string& dir) {
    storage::OpenOptions options;
    options.directory = dir;
    options.env = &env;
    options.checkpoint.drop_consumed_interactions = false;
    auto opened = storage::DB::Open(options);
    EXPECT_TRUE(opened.ok()) << opened.status().ToString();
    return std::move(opened.value().db);
  };
  auto dump = [](storage::Database& db) {
    std::string out;
    db.chat().ForEach([&](const storage::ChatRecord& rec) {
      const auto bytes = rec.Encode();
      out += "C:" + std::string(bytes.begin(), bytes.end()) + "\n";
    });
    db.interactions().ForEach(
        [&](const storage::InteractionRecord& rec, uint64_t generation) {
          const auto bytes = rec.Encode();
          out += "I:" + std::to_string(generation) + ":" +
                 std::string(bytes.begin(), bytes.end()) + "\n";
        });
    for (const auto& rec : db.highlights().AllLatest()) {
      const auto bytes = rec.Encode();
      out += "H:" + std::string(bytes.begin(), bytes.end()) + "\n";
    }
    out += "lsn:" + std::to_string(db.lsn()) + "\n";
    out += "igen:" + std::to_string(db.interactions().current_generation());
    return out;
  };
  // One random write applied identically to both databases.
  auto apply = [&](storage::Database* db, uint64_t op_rng_state) {
    common::Rng op_rng(op_rng_state);
    const std::string video = op_rng.Bernoulli(0.5) ? "va" : "vb";
    const double u = op_rng.NextDouble();
    if (u < 0.4) {
      storage::ChatRecord rec;
      rec.video_id = video;
      rec.timestamp = op_rng.Uniform(0.0, 600.0);
      rec.user = "u" + std::to_string(op_rng.UniformInt(0, 9));
      rec.text = "m" + std::to_string(op_rng.UniformInt(0, 9999));
      ASSERT_TRUE(db->PutChat(rec).ok());
    } else if (u < 0.8) {
      storage::InteractionRecord rec;
      rec.video_id = video;
      rec.user = "w" + std::to_string(op_rng.UniformInt(0, 9));
      rec.session_id = op_rng.UniformInt(1, 50);
      rec.event = op_rng.Bernoulli(0.5) ? storage::StoredInteraction::kPlay
                                        : storage::StoredInteraction::kPause;
      rec.wall_time = op_rng.Uniform(0.0, 600.0);
      rec.position = op_rng.Uniform(0.0, 600.0);
      rec.target = op_rng.Uniform(0.0, 600.0);
      ASSERT_TRUE(db->PutInteraction(rec).ok());
    } else {
      storage::HighlightRecord rec;
      rec.video_id = video;
      rec.dot_index = static_cast<int32_t>(op_rng.UniformInt(0, 4));
      rec.iteration = static_cast<int32_t>(op_rng.UniformInt(0, 3));
      rec.dot_position = op_rng.Uniform(0.0, 600.0);
      rec.start = rec.dot_position - 5.0;
      rec.end = rec.dot_position + 5.0;
      rec.score = op_rng.NextDouble();
      ASSERT_TRUE(db->PutHighlight(rec).ok());
    }
  };

  auto ckpt_db = open("a");
  auto full_db = open("b");
  const int n_ops = static_cast<int>(rng.UniformInt(5, 120));
  const int ckpt_at = static_cast<int>(rng.UniformInt(0, n_ops));
  for (int i = 0; i < n_ops; ++i) {
    if (i == ckpt_at) {
      auto stats = ckpt_db->Checkpoint();
      ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    }
    const auto op_seed = static_cast<uint64_t>(rng.UniformInt(1, 1 << 30));
    apply(ckpt_db.get(), op_seed);
    apply(full_db.get(), op_seed);
  }
  // Highlight history collapses to latest-per-dot at checkpoint time, so
  // only the served state (AllLatest) is comparable — and the dump only
  // looks at that.
  ASSERT_EQ(dump(*ckpt_db), dump(*full_db));

  // SIGKILL both, restart, compare the recovered states byte for byte.
  ckpt_db.reset();
  full_db.reset();
  env.RecoverAfterCrash(testing::CrashModel::kProcess);
  auto ckpt_reopened = open("a");
  auto full_reopened = open("b");
  EXPECT_EQ(dump(*ckpt_reopened), dump(*full_reopened))
      << "seed " << GetParam() << " n_ops " << n_ops << " ckpt_at "
      << ckpt_at;
  // And the checkpointed side replayed only the suffix.
  EXPECT_LE(ckpt_reopened->recovery_stats().records_replayed,
            static_cast<size_t>(n_ops));
}

// Property: ChatStore returns time-sorted messages for any insert order.
TEST_P(SeededPropertyTest, ChatStoreAlwaysSorted) {
  common::Rng rng(GetParam() ^ 0xC0FFEE);
  storage::ChatStore store;
  const int n = static_cast<int>(rng.UniformInt(1, 200));
  for (int i = 0; i < n; ++i) {
    storage::ChatRecord rec;
    rec.video_id = rng.Bernoulli(0.5) ? "a" : "b";
    rec.timestamp = rng.Uniform(0.0, 1000.0);
    rec.user = "u";
    rec.text = "t";
    store.Put(std::move(rec));
  }
  for (const auto* id : {"a", "b"}) {
    const auto& msgs = store.GetByVideo(id);
    for (size_t i = 1; i < msgs.size(); ++i) {
      EXPECT_LE(msgs[i - 1].timestamp, msgs[i].timestamp);
    }
  }
}

// Property: FilterPlays output is a subset satisfying every constraint.
TEST_P(SeededPropertyTest, FilterPlaysEnforcesConstraints) {
  common::Rng rng(GetParam() ^ 0xF11735);
  core::HighlightExtractor extractor;
  const double dot = rng.Uniform(200.0, 3000.0);
  std::vector<core::Play> plays;
  const int n = static_cast<int>(rng.UniformInt(0, 80));
  for (int i = 0; i < n; ++i) {
    const double s = dot + rng.Uniform(-150.0, 150.0);
    plays.emplace_back("u", s, s + rng.Uniform(-5.0, 400.0));
  }
  const auto& opts = extractor.options();
  const auto filtered = extractor.FilterPlays(plays, dot);
  EXPECT_LE(filtered.size(), plays.size());
  for (const auto& play : filtered) {
    EXPECT_TRUE(play.span.Valid());
    EXPECT_GE(play.span.start, dot - opts.delta);
    EXPECT_LE(play.span.start, dot + opts.delta);
    EXPECT_GE(play.span.Length(), opts.min_play_length);
    EXPECT_LE(play.span.Length(), opts.max_play_length);
  }
}

// Property: PrecisionAtK is within [0,1] and monotone in label flips.
TEST_P(SeededPropertyTest, PrecisionAtKBounds) {
  common::Rng rng(GetParam() ^ 0xAB);
  const size_t n = static_cast<size_t>(rng.UniformInt(1, 50));
  std::vector<double> scores;
  std::vector<int> labels;
  for (size_t i = 0; i < n; ++i) {
    scores.push_back(rng.NextDouble());
    labels.push_back(rng.Bernoulli(0.3) ? 1 : 0);
  }
  for (size_t k = 1; k <= n; ++k) {
    const double p = ml::PrecisionAtK(scores, labels, k);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
  // All-positive labels => precision 1 at every k.
  std::vector<int> ones(n, 1);
  EXPECT_DOUBLE_EQ(ml::PrecisionAtK(scores, ones, n), 1.0);
}

// Property: Gaussian smoothing preserves the total mass of an interior
// spike (within truncation tolerance).
TEST_P(SeededPropertyTest, GaussianSmoothPreservesInteriorMass) {
  common::Rng rng(GetParam() ^ 0x60);
  std::vector<double> xs(200, 0.0);
  const size_t spike =
      static_cast<size_t>(rng.UniformInt(50, 150));
  xs[spike] = rng.Uniform(1.0, 10.0);
  const auto smooth = common::GaussianSmooth(xs, 3.0);
  double mass = 0.0;
  for (double v : smooth) mass += v;
  EXPECT_NEAR(mass, xs[spike], xs[spike] * 0.02);
}

// Property: detection is deterministic — same corpus, same model, same
// dots, across repeated invocations.
TEST(DeterminismTest, DetectIsPure) {
  const auto corpus = sim::MakeCorpus(sim::GameType::kDota2, 2, 909);
  core::HighlightInitializer init;
  core::TrainingVideo tv;
  tv.messages = sim::ToCoreMessages(corpus[0].chat);
  tv.video_length = corpus[0].truth.meta.length;
  for (const auto& h : corpus[0].truth.highlights) {
    tv.highlights.push_back(h.span);
  }
  ASSERT_TRUE(init.Train({tv}).ok());
  const auto messages = sim::ToCoreMessages(corpus[1].chat);
  const auto a = init.Detect(messages, corpus[1].truth.meta.length, 5);
  const auto b = init.Detect(messages, corpus[1].truth.meta.length, 5);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].position, b[i].position);
    EXPECT_DOUBLE_EQ(a[i].score, b[i].score);
    EXPECT_DOUBLE_EQ(a[i].peak, b[i].peak);
  }
}

// Property: two independently constructed corpora from the same seed are
// byte-identical in their chat text.
TEST(DeterminismTest, CorpusGenerationIsReproducible) {
  const auto a = sim::MakeCorpus(sim::GameType::kLol, 2, 4242);
  const auto b = sim::MakeCorpus(sim::GameType::kLol, 2, 4242);
  ASSERT_EQ(a.size(), b.size());
  for (size_t v = 0; v < a.size(); ++v) {
    ASSERT_EQ(a[v].chat.size(), b[v].chat.size());
    for (size_t m = 0; m < a[v].chat.size(); m += 211) {
      EXPECT_EQ(a[v].chat[m].text, b[v].chat[m].text);
    }
  }
}

// Property: a window's probability is invariant to messages outside it.
TEST(InvarianceTest, WindowFeaturesIgnoreOutsideMessages) {
  core::WindowFeaturizer featurizer;
  std::vector<core::Message> messages;
  for (int i = 0; i < 10; ++i) {
    core::Message m;
    m.timestamp = 100.0 + i;
    m.text = "inside words";
    messages.push_back(m);
  }
  core::SlidingWindow w;
  w.span = common::Interval(100.0, 110.0);
  w.first_message = 0;
  w.last_message = messages.size();
  const auto base = featurizer.Compute(messages, w);

  // Prepend unrelated messages; shift the index range accordingly.
  std::vector<core::Message> extended;
  for (int i = 0; i < 5; ++i) {
    core::Message m;
    m.timestamp = 1.0 + i;
    m.text = "outside noise words everywhere";
    extended.push_back(m);
  }
  extended.insert(extended.end(), messages.begin(), messages.end());
  w.first_message = 5;
  w.last_message = extended.size();
  const auto shifted = featurizer.Compute(extended, w);
  EXPECT_DOUBLE_EQ(base.message_number, shifted.message_number);
  EXPECT_DOUBLE_EQ(base.message_length, shifted.message_length);
  EXPECT_DOUBLE_EQ(base.message_similarity, shifted.message_similarity);
}

}  // namespace
}  // namespace lightor
