#include <gtest/gtest.h>

#include <cmath>

#include "text/embedding.h"
#include "text/similarity.h"
#include "text/vectorizer.h"

namespace lightor::text {
namespace {

TEST(SparseVectorTest, NormAndDot) {
  SparseVector a{{0, 2}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(a.Norm(), 5.0);
  SparseVector b{{1, 2}, {1.0, 2.0}};
  EXPECT_DOUBLE_EQ(a.Dot(b), 8.0);  // only index 2 overlaps: 4*2
  EXPECT_DOUBLE_EQ(a.Dot(a), 25.0);
}

TEST(SparseVectorTest, DotWithDense) {
  SparseVector a{{0, 3}, {2.0, 5.0}};
  const std::vector<double> dense = {1.0, 0.0, 0.0, 2.0};
  EXPECT_DOUBLE_EQ(a.Dot(dense), 12.0);
  // Out-of-range sparse indices contribute nothing.
  SparseVector big{{10}, {7.0}};
  EXPECT_DOUBLE_EQ(big.Dot(dense), 0.0);
}

TEST(CosineSimilarityTest, IdenticalOrthogonalEmpty) {
  SparseVector a{{0, 1}, {1.0, 1.0}};
  SparseVector b{{2, 3}, {1.0, 1.0}};
  EXPECT_NEAR(CosineSimilarity(a, a), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, b), 0.0);
  SparseVector empty;
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, empty), 0.0);
}

TEST(BowVectorizerTest, BinaryVectorsDedupTokens) {
  BowVectorizer vec;
  const auto v = vec.FitTransform("gg gg gg wow");
  EXPECT_EQ(v.nnz(), 2u);  // "gg" and "wow"
  for (double x : v.values) EXPECT_DOUBLE_EQ(x, 1.0);
}

TEST(BowVectorizerTest, TransformIgnoresUnseenTokens) {
  BowVectorizer vec;
  vec.FitTransform("alpha beta");
  const auto v = vec.Transform("alpha gamma");
  EXPECT_EQ(v.nnz(), 1u);
  EXPECT_EQ(vec.vocabulary().size(), 2u);  // gamma not added
}

TEST(BowVectorizerTest, IndicesSortedUnique) {
  BowVectorizer vec;
  const auto v = vec.FitTransform("z y x z y");
  ASSERT_EQ(v.nnz(), 3u);
  EXPECT_LT(v.indices[0], v.indices[1]);
  EXPECT_LT(v.indices[1], v.indices[2]);
}

TEST(BowVectorizerTest, BatchGrowsVocabulary) {
  BowVectorizer vec;
  const auto batch = vec.FitTransformBatch({"a b", "b c", "c d"});
  EXPECT_EQ(batch.size(), 3u);
  EXPECT_EQ(vec.vocabulary().size(), 4u);
}

TEST(OneClusterKMeansTest, CenterIsMean) {
  // Two identical binary vectors: center equals them.
  SparseVector a{{0, 1}, {1.0, 1.0}};
  const auto center = OneClusterKMeansCenter({a, a});
  ASSERT_EQ(center.size(), 2u);
  EXPECT_DOUBLE_EQ(center[0], 1.0);
  EXPECT_DOUBLE_EQ(center[1], 1.0);
}

TEST(OneClusterKMeansTest, PartialMembership) {
  SparseVector a{{0}, {1.0}};
  SparseVector b{{1}, {1.0}};
  const auto center = OneClusterKMeansCenter({a, b});
  ASSERT_EQ(center.size(), 2u);
  EXPECT_DOUBLE_EQ(center[0], 0.5);
  EXPECT_DOUBLE_EQ(center[1], 0.5);
}

TEST(OneClusterKMeansTest, EmptyInput) {
  EXPECT_TRUE(OneClusterKMeansCenter({}).empty());
}

TEST(MessageSetSimilarityTest, IdenticalMessagesScoreOne) {
  EXPECT_NEAR(MessageSetSimilarity({"gg wp", "gg wp", "gg wp"}), 1.0, 1e-9);
}

TEST(MessageSetSimilarityTest, DisjointMessagesScoreLow) {
  const double sim =
      MessageSetSimilarity({"aa bb", "cc dd", "ee ff", "gg hh"});
  EXPECT_LT(sim, 0.6);
  EXPECT_GT(sim, 0.0);  // every vector still projects onto the center
}

TEST(MessageSetSimilarityTest, SimilarBeatsDissimilar) {
  const double similar =
      MessageSetSimilarity({"baron steal", "baron wow", "omg baron"});
  const double dissimilar =
      MessageSetSimilarity({"what song is this", "lag again today",
                            "anyone know the score"});
  EXPECT_GT(similar, dissimilar);
}

TEST(MessageSetSimilarityTest, EdgeCases) {
  EXPECT_DOUBLE_EQ(MessageSetSimilarity(std::vector<std::string>{}), 0.0);
  EXPECT_DOUBLE_EQ(MessageSetSimilarity({"", "", ""}), 0.0);
  EXPECT_NEAR(MessageSetSimilarity({"solo"}), 1.0, 1e-12);
}

TEST(MeanPairwiseSimilarityTest, MatchesIntuition) {
  BowVectorizer vec;
  const auto batch = vec.FitTransformBatch({"a b", "a b", "c d"});
  const double sim = MeanPairwiseSimilarity(batch);
  // pairs: (1.0, 0.0, 0.0) / 3
  EXPECT_NEAR(sim, 1.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(MeanPairwiseSimilarity({}), 0.0);
}

TEST(HashingEmbedderTest, DeterministicUnitTokens) {
  HashingEmbedder emb(16, 7);
  const auto v1 = emb.EmbedToken("baron");
  const auto v2 = emb.EmbedToken("baron");
  EXPECT_EQ(v1, v2);
  double norm = 0.0;
  for (double x : v1) norm += x * x;
  EXPECT_NEAR(std::sqrt(norm), 1.0, 1e-9);
}

TEST(HashingEmbedderTest, DifferentTokensDiffer) {
  HashingEmbedder emb(16, 7);
  EXPECT_NE(emb.EmbedToken("baron"), emb.EmbedToken("dragon"));
}

TEST(HashingEmbedderTest, MessageIsMeanOfTokens) {
  HashingEmbedder emb(8, 3);
  const auto a = emb.EmbedToken("x");
  const auto b = emb.EmbedToken("y");
  const auto msg = emb.EmbedMessage("x y");
  for (size_t i = 0; i < emb.dims(); ++i) {
    EXPECT_NEAR(msg[i], 0.5 * (a[i] + b[i]), 1e-12);
  }
}

TEST(HashingEmbedderTest, EmptyMessageIsZero) {
  HashingEmbedder emb(8, 3);
  for (double x : emb.EmbedMessage("")) EXPECT_DOUBLE_EQ(x, 0.0);
}

TEST(DenseCosineTest, Basics) {
  EXPECT_NEAR(DenseCosineSimilarity({1, 0}, {1, 0}), 1.0, 1e-12);
  EXPECT_NEAR(DenseCosineSimilarity({1, 0}, {0, 1}), 0.0, 1e-12);
  EXPECT_NEAR(DenseCosineSimilarity({1, 0}, {-1, 0}), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(DenseCosineSimilarity({0, 0}, {1, 1}), 0.0);
}

TEST(EmbeddingSetSimilarityTest, IdenticalHigh) {
  HashingEmbedder emb(16, 5);
  const double sim = EmbeddingSetSimilarity({"gg wp", "gg wp"}, emb);
  EXPECT_NEAR(sim, 1.0, 1e-9);
}

}  // namespace
}  // namespace lightor::text
