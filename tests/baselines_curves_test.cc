#include <gtest/gtest.h>

#include "baselines/moocer.h"
#include "baselines/socialskip.h"
#include "baselines/toretter.h"
#include "core/evaluation.h"
#include "sim/bridge.h"
#include "sim/corpus.h"
#include "sim/viewer_simulator.h"

namespace lightor::baselines {
namespace {

TEST(ToretterTest, DetectsObviousBurst) {
  // Synthetic chat: sparse background + a dense burst at 500 s.
  std::vector<core::Message> messages;
  for (int t = 0; t < 1000; t += 10) {
    core::Message m;
    m.timestamp = static_cast<double>(t);
    m.text = "bg";
    messages.push_back(m);
  }
  for (int i = 0; i < 60; ++i) {
    core::Message m;
    m.timestamp = 498.0 + 0.1 * i;
    m.text = "burst";
    messages.push_back(m);
  }
  std::sort(messages.begin(), messages.end(),
            [](const core::Message& a, const core::Message& b) {
              return a.timestamp < b.timestamp;
            });
  Toretter toretter;
  const auto events = toretter.DetectEvents(messages, 1000.0, 3);
  ASSERT_FALSE(events.empty());
  EXPECT_NEAR(events[0], 501.0, 10.0);
}

TEST(ToretterTest, RespectsMinSeparationAndK) {
  std::vector<core::Message> messages;
  auto add_burst = [&](double at) {
    for (int i = 0; i < 50; ++i) {
      core::Message m;
      m.timestamp = at + 0.1 * i;
      m.text = "x";
      messages.push_back(m);
    }
  };
  add_burst(200.0);
  add_burst(250.0);  // within 120 s of the first: must be suppressed
  add_burst(600.0);
  std::sort(messages.begin(), messages.end(),
            [](const core::Message& a, const core::Message& b) {
              return a.timestamp < b.timestamp;
            });
  Toretter toretter;
  const auto events = toretter.DetectEvents(messages, 1000.0, 10);
  ASSERT_GE(events.size(), 2u);
  for (size_t i = 0; i < events.size(); ++i) {
    for (size_t j = i + 1; j < events.size(); ++j) {
      EXPECT_GT(std::abs(events[i] - events[j]), 120.0);
    }
  }
}

TEST(ToretterTest, EmptyChatYieldsNothing) {
  Toretter toretter;
  EXPECT_TRUE(toretter.DetectEvents({}, 1000.0, 5).empty());
}

// The paper's core observation (Fig. 7a): Toretter reports burst peaks,
// which lag highlight starts by the comment delay, so its start precision
// is far below LIGHTOR's adjusted dots.
TEST(ToretterTest, PeaksLagHighlightStarts) {
  const auto corpus = sim::MakeCorpus(sim::GameType::kDota2, 3, 71);
  double lag_sum = 0.0;
  int lag_count = 0;
  for (const auto& video : corpus) {
    const auto events = Toretter().DetectEvents(
        sim::ToCoreMessages(video.chat), video.truth.meta.length, 5);
    for (double e : events) {
      // Find the nearest highlight start.
      double best = 1e18;
      for (const auto& h : video.truth.highlights) {
        if (std::abs(e - h.span.start) < std::abs(best)) {
          best = e - h.span.start;
        }
      }
      if (std::abs(best) < 60.0) {
        lag_sum += best;
        ++lag_count;
      }
    }
  }
  ASSERT_GT(lag_count, 5);
  // Mean lag is positive (events fire after the start), near the
  // simulated reaction delay.
  EXPECT_GT(lag_sum / lag_count, 10.0);
}

sim::GroundTruthVideo OneHighlight(double start, double len) {
  sim::GroundTruthVideo video;
  video.meta.id = "v";
  video.meta.length = 2000.0;
  video.highlights.push_back({common::Interval(start, start + len), 0.9});
  return video;
}

TEST(SocialSkipTest, BackwardSeeksMarkInterest) {
  std::vector<sim::InteractionEvent> events;
  sim::InteractionEvent seek;
  seek.type = sim::InteractionType::kSeekBackward;
  seek.position = 520.0;
  seek.target = 500.0;
  for (int i = 0; i < 5; ++i) events.push_back(seek);
  SocialSkip skip;
  const auto detected = skip.Detect(events, 2000.0, 1);
  ASSERT_EQ(detected.size(), 1u);
  EXPECT_GT(detected[0].start, 480.0);
  EXPECT_LT(detected[0].end, 540.0);
}

TEST(SocialSkipTest, ForwardSeeksSuppress) {
  std::vector<sim::InteractionEvent> events;
  sim::InteractionEvent back;
  back.type = sim::InteractionType::kSeekBackward;
  back.position = 520.0;
  back.target = 500.0;
  events.push_back(back);
  // Heavier forward-skipping over the same range drives it negative.
  sim::InteractionEvent fwd;
  fwd.type = sim::InteractionType::kSeekForward;
  fwd.position = 495.0;
  fwd.target = 525.0;
  for (int i = 0; i < 4; ++i) events.push_back(fwd);
  SocialSkip skip;
  const auto curve = skip.InterestCurve(events, 2000.0);
  EXPECT_LT(curve[510], 0.0);
}

TEST(SocialSkipTest, BoundaryIsPeakPlusMinusMargin) {
  std::vector<sim::InteractionEvent> events;
  sim::InteractionEvent seek;
  seek.type = sim::InteractionType::kSeekBackward;
  seek.position = 1010.0;
  seek.target = 990.0;
  for (int i = 0; i < 3; ++i) events.push_back(seek);
  SocialSkipOptions opts;
  const auto detected = SocialSkip(opts).Detect(events, 2000.0, 1);
  ASSERT_EQ(detected.size(), 1u);
  EXPECT_NEAR(detected[0].Length(), 2.0 * opts.boundary_margin, 2.0);
}

TEST(MoocerTest, WatchCurveCountsPlays) {
  Moocer moocer;
  const std::vector<core::Play> plays = {{"u", 100.0, 120.0},
                                         {"u", 105.0, 125.0}};
  const auto curve = moocer.WatchCurve(plays, 300.0);
  EXPECT_GT(curve[110], curve[200]);
  EXPECT_GT(curve[110], curve[50]);
}

TEST(MoocerTest, DetectFindsWatchedRegion) {
  const auto video = OneHighlight(800.0, 25.0);
  sim::ViewerSimulator viewers;
  common::Rng rng(72);
  const auto plays =
      sim::ToCorePlays(viewers.CollectPlays(video, 798.0, 120, rng));
  Moocer moocer;
  const auto detected = moocer.Detect(plays, video.meta.length, 1);
  ASSERT_EQ(detected.size(), 1u);
  // The detected interval must overlap the true highlight.
  EXPECT_TRUE(detected[0].Overlaps(video.highlights[0].span));
}

TEST(MoocerTest, EmptyPlaysYieldNothing) {
  Moocer moocer;
  EXPECT_TRUE(moocer.Detect({}, 1000.0, 3).empty());
}

TEST(MoocerTest, TurningPointsBoundThePeak) {
  // Plays concentrated on [500, 520]: boundaries should not wander far.
  std::vector<core::Play> plays;
  for (int i = 0; i < 30; ++i) {
    plays.emplace_back("u", 500.0 + (i % 5), 520.0 - (i % 3));
  }
  Moocer moocer;
  const auto detected = moocer.Detect(plays, 1000.0, 1);
  ASSERT_EQ(detected.size(), 1u);
  EXPECT_GT(detected[0].start, 500.0 - 65.0);
  EXPECT_LT(detected[0].end, 520.0 + 65.0);
}

}  // namespace
}  // namespace lightor::baselines
