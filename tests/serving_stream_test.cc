/// Live-ingest serving path: provisional snapshots mid-broadcast, the
/// finalize swap, and the differential guarantee that a finalized stream
/// serves exactly what the batch path computes over the same chat.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "serving/highlight_server.h"
#include "sim/bridge.h"
#include "sim/corpus.h"
#include "sim/replay.h"
#include "storage/database.h"

namespace lightor::serving {
namespace {

class ServingStreamTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("lightor_stream_test_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    std::filesystem::remove_all(dir_);
    std::filesystem::remove_all(dir_ + "_ref");

    sim::Platform::Options popts;
    popts.num_channels = 2;
    popts.videos_per_channel = 2;
    popts.seed = 91;
    platform_ = std::make_unique<sim::Platform>(popts);

    const auto corpus = sim::MakeCorpus(sim::GameType::kDota2, 1, 92);
    core::TrainingVideo tv;
    tv.messages = sim::ToCoreMessages(corpus[0].chat);
    tv.video_length = corpus[0].truth.meta.length;
    for (const auto& h : corpus[0].truth.highlights) {
      tv.highlights.push_back(h.span);
    }
    lightor_ = std::make_unique<core::Lightor>();
    ASSERT_TRUE(lightor_->TrainInitializer({tv}).ok());

    video_id_ = platform_->AllVideoIds()[0];
  }
  void TearDown() override {
    std::filesystem::remove_all(dir_);
    std::filesystem::remove_all(dir_ + "_ref");
  }

  std::unique_ptr<storage::Database> OpenDb(const std::string& dir) {
    auto db = storage::DB::Open(storage::OpenOptions(dir));
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    return std::move(db.value().db);
  }

  ServerOptions BaseOptions(storage::Database* db) {
    ServerOptions opts;
    opts.platform = Borrow<const sim::Platform>(platform_.get());
    opts.db = Borrow(db);
    opts.lightor = Borrow<const core::Lightor>(lightor_.get());
    return opts;
  }

  std::vector<core::Message> ChatOf(const std::string& video_id) {
    auto video = platform_->GetVideo(video_id);
    EXPECT_TRUE(video.ok());
    return sim::ToCoreMessages(video.value().chat);
  }

  /// Streams a whole chat log through IngestChat in fixed-size batches.
  IngestChatResponse StreamAll(HighlightServer& server,
                               const std::string& video_id,
                               const std::vector<core::Message>& messages,
                               size_t batch_size = 37) {
    IngestChatResponse total;
    for (size_t i = 0; i < messages.size(); i += batch_size) {
      IngestChatRequest req;
      req.video_id = video_id;
      req.messages.assign(
          messages.begin() + static_cast<ptrdiff_t>(i),
          messages.begin() +
              static_cast<ptrdiff_t>(std::min(i + batch_size, messages.size())));
      auto resp = server.IngestChat(req);
      EXPECT_TRUE(resp.ok()) << resp.status().ToString();
      total.accepted += resp.value().accepted;
      total.rejected += resp.value().rejected;
      total.provisional_published |= resp.value().provisional_published;
      total.snapshot_version = resp.value().snapshot_version;
    }
    return total;
  }

  std::string dir_;
  std::unique_ptr<sim::Platform> platform_;
  std::unique_ptr<core::Lightor> lightor_;
  std::string video_id_;
};

void ExpectSameRecords(const std::vector<storage::HighlightRecord>& a,
                       const std::vector<storage::HighlightRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].video_id, b[i].video_id) << "record " << i;
    EXPECT_EQ(a[i].dot_index, b[i].dot_index) << "record " << i;
    EXPECT_EQ(a[i].dot_position, b[i].dot_position) << "record " << i;
    EXPECT_EQ(a[i].start, b[i].start) << "record " << i;
    EXPECT_EQ(a[i].end, b[i].end) << "record " << i;
    EXPECT_EQ(a[i].score, b[i].score) << "record " << i;
    EXPECT_EQ(a[i].iteration, b[i].iteration) << "record " << i;
    EXPECT_EQ(a[i].converged, b[i].converged) << "record " << i;
  }
}

// The acceptance criterion: a live-ingested video, once finalized, serves
// exactly the records a fresh server computes through the batch
// first-visit path over the same platform chat.
TEST_F(ServingStreamTest, FinalizedStreamMatchesBatchServedHighlights) {
  auto live_db = OpenDb(dir_);
  auto live = HighlightServer::Create(BaseOptions(live_db.get()));
  ASSERT_TRUE(live.ok());

  const auto messages = ChatOf(video_id_);
  const auto total = StreamAll(*live.value(), video_id_, messages);
  EXPECT_EQ(total.accepted, messages.size());
  EXPECT_EQ(total.rejected, 0u);

  FinalizeStreamRequest freq;
  freq.video_id = video_id_;  // length <= 0: resolve from the platform
  auto fin = live.value()->FinalizeStream(freq);
  ASSERT_TRUE(fin.ok()) << fin.status().ToString();
  EXPECT_EQ(fin.value().video_length,
            platform_->GetVideo(video_id_).value().truth.meta.length);
  EXPECT_FALSE(fin.value().highlights.empty());

  // Batch reference on its own database.
  auto batch_db = OpenDb(dir_ + "_ref");
  auto batch = HighlightServer::Create(BaseOptions(batch_db.get()));
  ASSERT_TRUE(batch.ok());
  auto visit = batch.value()->OnPageVisit({video_id_, "u"});
  ASSERT_TRUE(visit.ok());
  EXPECT_TRUE(visit.value().first_visit);

  ExpectSameRecords(fin.value().highlights, visit.value().highlights);

  // The finalized snapshot is served as non-provisional and persisted.
  auto got = live.value()->GetHighlights(video_id_);
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(got.value().provisional);
  ExpectSameRecords(got.value().highlights, visit.value().highlights);
  ExpectSameRecords(live_db->highlights().GetLatest(video_id_),
                    batch_db->highlights().GetLatest(video_id_));
}

TEST_F(ServingStreamTest, ProvisionalSnapshotServedMidBroadcast) {
  auto db = OpenDb(dir_);
  auto opts = BaseOptions(db.get());
  opts.stream_refresh_messages = 50;
  auto server = HighlightServer::Create(opts);
  ASSERT_TRUE(server.ok());

  const auto messages = ChatOf(video_id_);
  ASSERT_GT(messages.size(), 200u);

  // Before the first publish: visible as live, nothing to render yet.
  IngestChatRequest req;
  req.video_id = video_id_;
  req.messages.assign(messages.begin(), messages.begin() + 10);
  auto first = server.value()->IngestChat(req);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.value().provisional_published);
  EXPECT_EQ(first.value().snapshot_version, 0u);
  auto visit = server.value()->OnPageVisit({video_id_, "u"});
  ASSERT_TRUE(visit.ok());
  EXPECT_TRUE(visit.value().provisional);
  EXPECT_FALSE(visit.value().first_visit);  // must not batch-initialize
  EXPECT_TRUE(visit.value().highlights.empty());
  auto got = server.value()->GetHighlights(video_id_);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got.value().provisional);
  EXPECT_TRUE(got.value().highlights.empty());

  // Crossing the refresh threshold publishes a provisional snapshot.
  req.messages.assign(messages.begin() + 10, messages.begin() + 200);
  auto second = server.value()->IngestChat(req);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().provisional_published);
  EXPECT_GE(second.value().snapshot_version, 1u);
  got = server.value()->GetHighlights(video_id_);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got.value().provisional);
  EXPECT_EQ(got.value().snapshot_version, second.value().snapshot_version);
  visit = server.value()->OnPageVisit({video_id_, "u"});
  ASSERT_TRUE(visit.ok());
  EXPECT_TRUE(visit.value().provisional);

  // Nothing provisional ever touches the database.
  EXPECT_FALSE(db->highlights().HasVideo(video_id_));
}

TEST_F(ServingStreamTest, IngestRejectedOnceVideoHasRecordedHighlights) {
  auto db = OpenDb(dir_);
  auto server = HighlightServer::Create(BaseOptions(db.get()));
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(server.value()->OnPageVisit({video_id_, "u"}).ok());

  IngestChatRequest req;
  req.video_id = video_id_;
  req.messages = ChatOf(video_id_);
  EXPECT_TRUE(
      server.value()->IngestChat(req).status().IsFailedPrecondition());
}

TEST_F(ServingStreamTest, FinalizeRequiresAnActiveStream) {
  auto db = OpenDb(dir_);
  auto server = HighlightServer::Create(BaseOptions(db.get()));
  ASSERT_TRUE(server.ok());

  FinalizeStreamRequest freq;
  freq.video_id = video_id_;
  EXPECT_TRUE(
      server.value()->FinalizeStream(freq).status().IsFailedPrecondition());

  const auto messages = ChatOf(video_id_);
  StreamAll(*server.value(), video_id_, messages);
  ASSERT_TRUE(server.value()->FinalizeStream(freq).ok());
  // The swap is one-shot: the engine is consumed.
  EXPECT_TRUE(
      server.value()->FinalizeStream(freq).status().IsFailedPrecondition());
}

TEST_F(ServingStreamTest, FinalizeWithBadLengthHandsTheStreamBack) {
  auto db = OpenDb(dir_);
  auto server = HighlightServer::Create(BaseOptions(db.get()));
  ASSERT_TRUE(server.ok());
  StreamAll(*server.value(), video_id_, ChatOf(video_id_));

  FinalizeStreamRequest freq;
  freq.video_id = video_id_;
  freq.video_length = 30.0;  // far behind the watermark
  EXPECT_TRUE(
      server.value()->FinalizeStream(freq).status().IsInvalidArgument());

  freq.video_length = 0.0;  // retry with auto-resolution succeeds
  EXPECT_TRUE(server.value()->FinalizeStream(freq).ok());
}

TEST_F(ServingStreamTest, RefineRejectedWhileVideoIsLive) {
  auto db = OpenDb(dir_);
  auto opts = BaseOptions(db.get());
  opts.stream_refresh_messages = 20;
  auto server = HighlightServer::Create(opts);
  ASSERT_TRUE(server.ok());
  StreamAll(*server.value(), video_id_, ChatOf(video_id_));

  EXPECT_TRUE(
      server.value()->Refine(video_id_).status().IsFailedPrecondition());

  FinalizeStreamRequest freq;
  freq.video_id = video_id_;
  ASSERT_TRUE(server.value()->FinalizeStream(freq).ok());
  // Finalized videos re-enter the ordinary refinement lifecycle (no
  // sessions logged yet, so the pass simply consumes an empty batch).
  EXPECT_TRUE(server.value()->Refine(video_id_).ok());
}

TEST_F(ServingStreamTest, OutOfOrderMessagesAreCountedAndDropped) {
  auto db = OpenDb(dir_);
  auto server = HighlightServer::Create(BaseOptions(db.get()));
  ASSERT_TRUE(server.ok());

  core::Message a, b, c;
  a.timestamp = 100.0;
  a.text = "first";
  b.timestamp = 50.0;  // rewinds: dropped
  b.text = "straggler";
  c.timestamp = 120.0;
  c.text = "third";
  IngestChatRequest req;
  req.video_id = video_id_;
  req.messages = {a, b, c};
  auto resp = server.value()->IngestChat(req);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.value().accepted, 2u);
  EXPECT_EQ(resp.value().rejected, 1u);
}

TEST_F(ServingStreamTest, IngestRejectedAfterShutdown) {
  auto db = OpenDb(dir_);
  auto server = HighlightServer::Create(BaseOptions(db.get()));
  ASSERT_TRUE(server.ok());
  IngestChatRequest req;
  req.video_id = video_id_;
  req.messages = ChatOf(video_id_);
  ASSERT_TRUE(server.value()->IngestChat(req).ok());
  server.value()->Shutdown();  // drops the live stream
  EXPECT_TRUE(
      server.value()->IngestChat(req).status().IsFailedPrecondition());
}

// ---- the timestamp-ordered replay driver ---------------------------------

TEST(ChatReplayDriverTest, MergesFeedsInTimestampOrder) {
  sim::ChatLog a, b;
  for (int i = 0; i < 6; ++i) {
    sim::ChatMessage m;
    m.timestamp = i * 10.0;  // 0, 10, 20, ...
    m.text = "a" + std::to_string(i);
    a.push_back(m);
    m.timestamp = i * 10.0 + 5.0;  // 5, 15, 25, ...
    m.text = "b" + std::to_string(i);
    b.push_back(m);
  }
  sim::ChatReplayDriver::Options opts;
  opts.batch_size = 4;
  sim::ChatReplayDriver driver(opts);
  driver.AddVideo("va", a);
  driver.AddVideo("vb", b);

  double last_ts = -1.0;
  std::vector<std::string> order;
  auto run = driver.Run([&](const std::string& id,
                            std::vector<core::Message> batch) {
    EXPECT_FALSE(batch.empty());
    EXPECT_LE(batch.size(), 4u);
    for (const auto& m : batch) {
      EXPECT_GE(m.timestamp, last_ts);  // globally ordered feed
      last_ts = m.timestamp;
    }
    order.push_back(id);
    return common::Status::OK();
  });
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run.value().messages, 12u);
  EXPECT_EQ(run.value().videos, 2u);
  EXPECT_EQ(run.value().horizon, 55.0);
  // Interleaved timestamps force the driver to alternate feeds.
  EXPECT_GT(order.size(), 2u);
}

TEST(ChatReplayDriverTest, SinkErrorAbortsTheReplay) {
  sim::ChatLog a;
  sim::ChatMessage m;
  for (int i = 0; i < 10; ++i) {
    m.timestamp = i;
    a.push_back(m);
  }
  sim::ChatReplayDriver::Options opts;
  opts.batch_size = 2;
  sim::ChatReplayDriver driver(opts);
  driver.AddVideo("v", a);
  size_t calls = 0;
  auto run = driver.Run(
      [&](const std::string&, std::vector<core::Message>) -> common::Status {
        if (++calls == 2) return common::Status::InvalidArgument("boom");
        return common::Status::OK();
      });
  EXPECT_TRUE(run.status().IsInvalidArgument());
  EXPECT_EQ(calls, 2u);
}

}  // namespace
}  // namespace lightor::serving
