#include <gtest/gtest.h>

#include "core/features.h"

namespace lightor::core {
namespace {

std::vector<Message> MakeMessages(
    const std::vector<std::pair<double, std::string>>& items) {
  std::vector<Message> out;
  for (const auto& [t, text] : items) {
    Message m;
    m.timestamp = t;
    m.user = "u";
    m.text = text;
    out.push_back(m);
  }
  return out;
}

SlidingWindow WholeWindow(const std::vector<Message>& messages, double lo,
                          double hi) {
  SlidingWindow w;
  w.span = common::Interval(lo, hi);
  w.first_message = 0;
  w.last_message = messages.size();
  return w;
}

TEST(FeatureSetTest, WidthsAndSelection) {
  EXPECT_EQ(FeatureSetWidth(FeatureSet::kNum), 1u);
  EXPECT_EQ(FeatureSetWidth(FeatureSet::kNumLen), 2u);
  EXPECT_EQ(FeatureSetWidth(FeatureSet::kAll), 3u);
  WindowFeatures f;
  f.message_number = 1.0;
  f.message_length = 2.0;
  f.message_similarity = 3.0;
  EXPECT_EQ(SelectFeatures(f, FeatureSet::kNum),
            (std::vector<double>{1.0}));
  EXPECT_EQ(SelectFeatures(f, FeatureSet::kNumLen),
            (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(SelectFeatures(f, FeatureSet::kAll),
            (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(FeaturizerTest, MessageNumberCountsWindowMessages) {
  const auto messages = MakeMessages({{1, "a"}, {2, "b"}, {3, "c"}});
  WindowFeaturizer featurizer;
  const auto f = featurizer.Compute(messages, WholeWindow(messages, 0, 10));
  EXPECT_DOUBLE_EQ(f.message_number, 3.0);
}

TEST(FeaturizerTest, MessageLengthIsMeanWordCount) {
  const auto messages =
      MakeMessages({{1, "one"}, {2, "two words"}, {3, "three word msg"}});
  WindowFeaturizer featurizer;
  const auto f = featurizer.Compute(messages, WholeWindow(messages, 0, 10));
  EXPECT_DOUBLE_EQ(f.message_length, 2.0);
}

TEST(FeaturizerTest, SimilarityHighForRepeatedMessages) {
  const auto same =
      MakeMessages({{1, "gg wp"}, {2, "gg wp"}, {3, "gg wp"}});
  const auto diverse = MakeMessages(
      {{1, "what song"}, {2, "laggy stream today"}, {3, "first time here"}});
  WindowFeaturizer featurizer;
  const auto f_same = featurizer.Compute(same, WholeWindow(same, 0, 10));
  const auto f_diverse =
      featurizer.Compute(diverse, WholeWindow(diverse, 0, 10));
  EXPECT_GT(f_same.message_similarity, f_diverse.message_similarity);
  EXPECT_NEAR(f_same.message_similarity, 1.0, 1e-9);
}

TEST(FeaturizerTest, EmptyWindowIsZeros) {
  const std::vector<Message> none;
  WindowFeaturizer featurizer;
  SlidingWindow w;
  w.span = common::Interval(0, 10);
  const auto f = featurizer.Compute(none, w);
  EXPECT_DOUBLE_EQ(f.message_number, 0.0);
  EXPECT_DOUBLE_EQ(f.message_length, 0.0);
  EXPECT_DOUBLE_EQ(f.message_similarity, 0.0);
}

TEST(FeaturizerTest, ComputeAllMatchesCompute) {
  const auto messages = MakeMessages({{1, "a b"}, {2, "c"}});
  WindowFeaturizer featurizer;
  SlidingWindow w0;
  w0.span = common::Interval(0, 1.5);
  w0.first_message = 0;
  w0.last_message = 1;
  SlidingWindow w1;
  w1.span = common::Interval(1.5, 3);
  w1.first_message = 1;
  w1.last_message = 2;
  const auto all = featurizer.ComputeAll(messages, {w0, w1});
  ASSERT_EQ(all.size(), 2u);
  EXPECT_DOUBLE_EQ(all[0].message_length, 2.0);
  EXPECT_DOUBLE_EQ(all[1].message_length, 1.0);
}

TEST(NormalizeFeaturesTest, UnitRangePerColumn) {
  std::vector<WindowFeatures> raw(3);
  raw[0] = {10.0, 1.0, 0.2};
  raw[1] = {20.0, 3.0, 0.4};
  raw[2] = {30.0, 5.0, 0.6};
  const auto rows = NormalizeFeatures(raw, FeatureSet::kAll);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_DOUBLE_EQ(rows[0][0], 0.0);
  EXPECT_DOUBLE_EQ(rows[1][0], 0.5);
  EXPECT_DOUBLE_EQ(rows[2][0], 1.0);
  EXPECT_DOUBLE_EQ(rows[1][1], 0.5);
  EXPECT_NEAR(rows[1][2], 0.5, 1e-12);
}

TEST(NormalizeFeaturesTest, FeatureSetProjection) {
  std::vector<WindowFeatures> raw(2);
  raw[0] = {0.0, 0.0, 0.0};
  raw[1] = {4.0, 2.0, 1.0};
  const auto rows = NormalizeFeatures(raw, FeatureSet::kNumLen);
  ASSERT_EQ(rows[0].size(), 2u);
}

TEST(NormalizeFeaturesTest, EmptyInput) {
  EXPECT_TRUE(NormalizeFeatures({}, FeatureSet::kAll).empty());
}

}  // namespace
}  // namespace lightor::core
