#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/stats.h"
#include "sim/video_generator.h"

namespace lightor::sim {
namespace {

class VideoGeneratorSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VideoGeneratorSeedTest, Dota2Invariants) {
  const GameProfile profile = GameProfile::Dota2();
  VideoGenerator gen(profile);
  common::Rng rng(GetParam());
  const auto video = gen.Generate("v", rng);

  EXPECT_GE(video.meta.length, profile.min_video_length);
  EXPECT_LE(video.meta.length, profile.max_video_length);
  EXPECT_GE(video.highlights.size(), 1u);

  for (size_t i = 0; i < video.highlights.size(); ++i) {
    const auto& h = video.highlights[i];
    EXPECT_TRUE(h.span.Valid());
    EXPECT_GE(h.span.start, 0.0);
    EXPECT_LE(h.span.end, video.meta.length);
    EXPECT_GE(h.span.Length(), 1.0);
    EXPECT_LE(h.span.Length(), profile.max_highlight_length + 1e-9);
    EXPECT_GT(h.intensity, 0.0);
    EXPECT_LE(h.intensity, 1.0);
    if (i > 0) {
      // Sorted and non-overlapping with real spacing.
      EXPECT_GT(h.span.start, video.highlights[i - 1].span.end);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VideoGeneratorSeedTest,
                         ::testing::Values(1, 2, 3, 17, 99, 12345));

TEST(VideoGeneratorTest, DeterministicPerSeed) {
  VideoGenerator gen(GameProfile::Dota2());
  common::Rng rng1(5), rng2(5);
  const auto a = gen.Generate("x", rng1);
  const auto b = gen.Generate("x", rng2);
  ASSERT_EQ(a.highlights.size(), b.highlights.size());
  for (size_t i = 0; i < a.highlights.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.highlights[i].span.start, b.highlights[i].span.start);
  }
}

TEST(VideoGeneratorTest, LolProfileRanges) {
  const GameProfile profile = GameProfile::Lol();
  VideoGenerator gen(profile);
  common::Rng rng(7);
  common::RunningStats count_stats;
  for (int i = 0; i < 40; ++i) {
    const auto video = gen.Generate("v" + std::to_string(i), rng);
    EXPECT_LE(video.meta.length, 3600.0 + 1e-9);
    count_stats.Add(static_cast<double>(video.highlights.size()));
  }
  // LoL videos are shorter, so the feasible count is clamped below the
  // profile mean of 14; it must still exceed the Dota mean-ish floor.
  EXPECT_GT(count_stats.mean(), 6.0);
}

TEST(GroundTruthVideoTest, HighlightAtLookup) {
  GroundTruthVideo video;
  video.meta.length = 1000.0;
  video.highlights.push_back({common::Interval(100.0, 120.0), 1.0});
  video.highlights.push_back({common::Interval(500.0, 510.0), 0.5});
  EXPECT_EQ(video.HighlightAt(110.0), 0);
  EXPECT_EQ(video.HighlightAt(505.0), 1);
  EXPECT_EQ(video.HighlightAt(300.0), -1);
  EXPECT_EQ(video.HighlightAt(95.0), -1);
  EXPECT_EQ(video.HighlightAt(95.0, /*slack=*/10.0), 0);
}

TEST(GameProfileTest, NamesAndLookup) {
  EXPECT_EQ(GameTypeName(GameType::kDota2), "dota2");
  EXPECT_EQ(GameTypeName(GameType::kLol), "lol");
  EXPECT_EQ(GameProfile::ForGame(GameType::kLol).game, GameType::kLol);
  EXPECT_EQ(GameProfile::ForGame(GameType::kDota2).game, GameType::kDota2);
}

TEST(GameProfileTest, ProfilesMatchPaperDataset) {
  const auto dota = GameProfile::Dota2();
  EXPECT_DOUBLE_EQ(dota.min_highlight_length, 5.0);
  EXPECT_DOUBLE_EQ(dota.max_highlight_length, 50.0);
  EXPECT_DOUBLE_EQ(dota.mean_highlights, 10.0);
  const auto lol = GameProfile::Lol();
  EXPECT_DOUBLE_EQ(lol.min_highlight_length, 2.0);
  EXPECT_DOUBLE_EQ(lol.max_highlight_length, 81.0);
  EXPECT_DOUBLE_EQ(lol.mean_highlights, 14.0);
  // Distinct vocabularies drive the cross-game domain shift.
  for (const auto& w : dota.event_words) {
    for (const auto& v : lol.event_words) EXPECT_NE(w, v);
  }
}

}  // namespace
}  // namespace lightor::sim
