#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ml/optimizer.h"

namespace lightor::ml {
namespace {

// Gradient of f(x) = sum (x_i - target_i)^2.
std::vector<double> QuadraticGrad(const std::vector<double>& x,
                                  const std::vector<double>& target) {
  std::vector<double> g(x.size());
  for (size_t i = 0; i < x.size(); ++i) g[i] = 2.0 * (x[i] - target[i]);
  return g;
}

TEST(SgdTest, ConvergesOnQuadratic) {
  std::vector<double> x = {5.0, -3.0};
  const std::vector<double> target = {1.0, 2.0};
  SgdOptimizer sgd(0.1);
  for (int i = 0; i < 200; ++i) sgd.Step(x, QuadraticGrad(x, target));
  EXPECT_NEAR(x[0], 1.0, 1e-6);
  EXPECT_NEAR(x[1], 2.0, 1e-6);
}

TEST(SgdTest, MomentumAccelerates) {
  std::vector<double> plain = {10.0};
  std::vector<double> momentum = {10.0};
  SgdOptimizer sgd_plain(0.01);
  SgdOptimizer sgd_momentum(0.01, 0.9);
  const std::vector<double> target = {0.0};
  for (int i = 0; i < 50; ++i) {
    sgd_plain.Step(plain, QuadraticGrad(plain, target));
    sgd_momentum.Step(momentum, QuadraticGrad(momentum, target));
  }
  EXPECT_LT(std::abs(momentum[0]), std::abs(plain[0]));
}

TEST(AdamTest, ConvergesOnQuadratic) {
  std::vector<double> x = {5.0, -3.0, 0.5};
  const std::vector<double> target = {1.0, 2.0, -1.0};
  AdamOptimizer adam(0.1);
  for (int i = 0; i < 2000; ++i) adam.Step(x, QuadraticGrad(x, target));
  EXPECT_NEAR(x[0], 1.0, 1e-3);
  EXPECT_NEAR(x[1], 2.0, 1e-3);
  EXPECT_NEAR(x[2], -1.0, 1e-3);
}

TEST(AdamTest, ResetClearsState) {
  std::vector<double> x = {1.0};
  AdamOptimizer adam(0.1);
  adam.Step(x, {1.0});
  const double after_first = x[0];
  adam.Reset();
  std::vector<double> y = {1.0};
  adam.Step(y, {1.0});
  EXPECT_DOUBLE_EQ(y[0], after_first);
}

TEST(AdamTest, FirstStepMagnitudeIsLearningRate) {
  // With bias correction, the first Adam step is ~lr * sign(grad).
  std::vector<double> x = {0.0};
  AdamOptimizer adam(0.05);
  adam.Step(x, {123.0});
  EXPECT_NEAR(x[0], -0.05, 1e-6);
}

TEST(ClipGradientNormTest, ScalesDownLargeGradients) {
  std::vector<double> g = {3.0, 4.0};  // norm 5
  const double norm = ClipGradientNorm(g, 1.0);
  EXPECT_DOUBLE_EQ(norm, 5.0);
  EXPECT_NEAR(std::hypot(g[0], g[1]), 1.0, 1e-12);
  EXPECT_NEAR(g[0] / g[1], 0.75, 1e-12);  // direction preserved
}

TEST(ClipGradientNormTest, LeavesSmallGradientsAlone) {
  std::vector<double> g = {0.3, 0.4};
  ClipGradientNorm(g, 1.0);
  EXPECT_DOUBLE_EQ(g[0], 0.3);
  EXPECT_DOUBLE_EQ(g[1], 0.4);
}

TEST(ClipGradientNormTest, ZeroGradientSafe) {
  std::vector<double> g = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(ClipGradientNorm(g, 1.0), 0.0);
}

}  // namespace
}  // namespace lightor::ml
