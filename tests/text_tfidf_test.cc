#include <gtest/gtest.h>

#include <cmath>

#include "core/features.h"
#include "text/tfidf.h"

namespace lightor::text {
namespace {

TEST(TfIdfVectorizerTest, VectorsAreUnitNorm) {
  TfIdfVectorizer vec;
  const auto vectors = vec.FitTransform({"gg wp", "what a play", "gg"});
  for (const auto& v : vectors) {
    if (v.empty()) continue;
    EXPECT_NEAR(v.Norm(), 1.0, 1e-9);
  }
}

TEST(TfIdfVectorizerTest, RareTermsWeighMore) {
  TfIdfVectorizer vec;
  // "the" appears in every doc; "baron" in one.
  const auto vectors = vec.FitTransform(
      {"the baron", "the game", "the stream", "the chat"});
  const int32_t the_id = vec.vocabulary().Lookup("the");
  const int32_t baron_id = vec.vocabulary().Lookup("baron");
  ASSERT_NE(the_id, Vocabulary::kUnknown);
  ASSERT_NE(baron_id, Vocabulary::kUnknown);
  EXPECT_GT(vec.idf()[static_cast<size_t>(baron_id)],
            vec.idf()[static_cast<size_t>(the_id)]);
  // In the first document the baron component dominates.
  const auto& v0 = vectors[0];
  double the_val = 0.0, baron_val = 0.0;
  for (size_t i = 0; i < v0.indices.size(); ++i) {
    if (v0.indices[i] == the_id) the_val = v0.values[i];
    if (v0.indices[i] == baron_id) baron_val = v0.values[i];
  }
  EXPECT_GT(baron_val, the_val);
}

TEST(TfIdfVectorizerTest, EmptyInput) {
  TfIdfVectorizer vec;
  EXPECT_TRUE(vec.FitTransform({}).empty());
  const auto vectors = vec.FitTransform({""});
  ASSERT_EQ(vectors.size(), 1u);
  EXPECT_TRUE(vectors[0].empty());
}

TEST(TfIdfSetSimilarityTest, SameVsDifferent) {
  const double same = TfIdfSetSimilarity({"baron steal", "baron steal"});
  const double diff =
      TfIdfSetSimilarity({"aa bb cc", "dd ee ff", "gg hh ii"});
  EXPECT_GT(same, diff);
  EXPECT_NEAR(same, 1.0, 1e-9);
}

TEST(JaccardSimilarityTest, Basics) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a", "b"}, {"a", "b"}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a"}, {"b"}), 0.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a", "b"}, {"b", "c"}), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({}, {}), 0.0);
  // Duplicates collapse to sets.
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a", "a"}, {"a"}), 1.0);
}

TEST(JaccardSetSimilarityTest, EdgeCases) {
  EXPECT_DOUBLE_EQ(JaccardSetSimilarity({}), 0.0);
  EXPECT_DOUBLE_EQ(JaccardSetSimilarity({"solo msg"}), 1.0);
  EXPECT_NEAR(JaccardSetSimilarity({"gg wp", "gg wp", "gg wp"}), 1.0, 1e-12);
}

// All similarity backends must produce the same *ordering*: topical burst
// messages score above random chatter.
class BackendTest
    : public ::testing::TestWithParam<core::SimilarityBackend> {};

TEST_P(BackendTest, BurstScoresAboveChatter) {
  core::WindowFeaturizer featurizer(TokenizerOptions{}, GetParam());
  auto window_of = [](const std::vector<std::string>& texts) {
    std::vector<core::Message> messages;
    for (size_t i = 0; i < texts.size(); ++i) {
      core::Message m;
      m.timestamp = static_cast<double>(i);
      m.text = texts[i];
      messages.push_back(m);
    }
    core::SlidingWindow w;
    w.span = common::Interval(0, 100);
    w.first_message = 0;
    w.last_message = messages.size();
    return std::make_pair(messages, w);
  };
  const auto [burst_msgs, burst_win] = window_of(
      {"baron PogChamp", "baron wow", "omg baron", "baron steal wow"});
  const auto [chat_msgs, chat_win] = window_of(
      {"what song is this", "anyone know the score today",
       "lag again on my end", "first time watching this channel"});
  const double burst =
      featurizer.Compute(burst_msgs, burst_win).message_similarity;
  const double chatter =
      featurizer.Compute(chat_msgs, chat_win).message_similarity;
  EXPECT_GT(burst, chatter);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, BackendTest,
    ::testing::Values(core::SimilarityBackend::kBagOfWords,
                      core::SimilarityBackend::kTfIdf,
                      core::SimilarityBackend::kEmbedding,
                      core::SimilarityBackend::kJaccard));

}  // namespace
}  // namespace lightor::text
