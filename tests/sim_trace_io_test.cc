#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "sim/trace_io.h"

namespace lightor::sim {
namespace {

class TraceIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("lightor_trace_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

TEST_F(TraceIoTest, RoundTripPreservesEverything) {
  const Corpus original = MakeCorpus(GameType::kDota2, 2, 111);
  ASSERT_TRUE(SaveCorpus(original, dir_).ok());
  auto loaded = LoadCorpus(dir_);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), original.size());
  for (size_t v = 0; v < original.size(); ++v) {
    const auto& a = original[v];
    const auto& b = loaded.value()[v];
    EXPECT_EQ(b.truth.meta.id, a.truth.meta.id);
    EXPECT_EQ(b.truth.meta.game, a.truth.meta.game);
    EXPECT_NEAR(b.truth.meta.length, a.truth.meta.length, 1e-3);
    ASSERT_EQ(b.truth.highlights.size(), a.truth.highlights.size());
    for (size_t h = 0; h < a.truth.highlights.size(); ++h) {
      EXPECT_NEAR(b.truth.highlights[h].span.start,
                  a.truth.highlights[h].span.start, 1e-3);
      EXPECT_NEAR(b.truth.highlights[h].intensity,
                  a.truth.highlights[h].intensity, 1e-3);
    }
    ASSERT_EQ(b.chat.size(), a.chat.size());
    for (size_t m = 0; m < a.chat.size(); m += 101) {
      EXPECT_NEAR(b.chat[m].timestamp, a.chat[m].timestamp, 1e-3);
      EXPECT_EQ(b.chat[m].user, a.chat[m].user);
      EXPECT_EQ(b.chat[m].text, a.chat[m].text);
      EXPECT_EQ(b.chat[m].source, a.chat[m].source);
      EXPECT_EQ(b.chat[m].highlight_index, a.chat[m].highlight_index);
    }
  }
}

TEST_F(TraceIoTest, LolGameRoundTrips) {
  const Corpus original = MakeCorpus(GameType::kLol, 1, 112);
  ASSERT_TRUE(SaveCorpus(original, dir_).ok());
  auto loaded = LoadCorpus(dir_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value()[0].truth.meta.game, GameType::kLol);
}

TEST_F(TraceIoTest, MissingIndexIsNotFound) {
  EXPECT_TRUE(LoadCorpus(dir_ + "/nowhere").status().IsNotFound());
}

TEST_F(TraceIoTest, MissingChatFileIsCorruption) {
  const Corpus original = MakeCorpus(GameType::kDota2, 1, 113);
  ASSERT_TRUE(SaveCorpus(original, dir_).ok());
  std::filesystem::remove(dir_ + "/" + original[0].truth.meta.id +
                          ".chat.csv");
  EXPECT_TRUE(LoadCorpus(dir_).status().IsCorruption());
}

TEST_F(TraceIoTest, MalformedChatRowIsCorruption) {
  const Corpus original = MakeCorpus(GameType::kDota2, 1, 114);
  ASSERT_TRUE(SaveCorpus(original, dir_).ok());
  std::ofstream chat(dir_ + "/" + original[0].truth.meta.id + ".chat.csv",
                     std::ios::app);
  chat << "only,three,cells\n";
  chat.close();
  EXPECT_TRUE(LoadCorpus(dir_).status().IsCorruption());
}

TEST_F(TraceIoTest, MessagesWithCommasSurvive) {
  Corpus corpus = MakeCorpus(GameType::kDota2, 1, 115);
  corpus[0].chat[0].text = "hello, with a comma, and \"quotes\"";
  ASSERT_TRUE(SaveCorpus(corpus, dir_).ok());
  auto loaded = LoadCorpus(dir_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value()[0].chat[0].text,
            "hello, with a comma, and \"quotes\"");
}

TEST_F(TraceIoTest, EmptyCorpusRoundTrips) {
  ASSERT_TRUE(SaveCorpus({}, dir_).ok());
  auto loaded = LoadCorpus(dir_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().empty());
}

TEST_F(TraceIoTest, LoadChatCsvImportsExternalDump) {
  std::filesystem::create_directories(dir_);
  const std::string path = dir_ + "/external.csv";
  std::ofstream out(path);
  out << "timestamp,user,text\n";
  out << "12.5,alice,hello there\n";
  out << "3.0,bob,\"first, with comma\"\n";
  out << "99.0,carol,PogChamp\n";
  out.close();
  auto messages = LoadChatCsv(path);
  ASSERT_TRUE(messages.ok());
  ASSERT_EQ(messages.value().size(), 3u);
  // Sorted by timestamp.
  EXPECT_DOUBLE_EQ(messages.value()[0].timestamp, 3.0);
  EXPECT_EQ(messages.value()[0].user, "bob");
  EXPECT_EQ(messages.value()[0].text, "first, with comma");
  EXPECT_DOUBLE_EQ(messages.value()[2].timestamp, 99.0);
}

TEST_F(TraceIoTest, LoadChatCsvWithoutHeader) {
  std::filesystem::create_directories(dir_);
  const std::string path = dir_ + "/noheader.csv";
  std::ofstream out(path);
  out << "1.0,u,msg one\n2.0,u,msg two\n";
  out.close();
  auto messages = LoadChatCsv(path);
  ASSERT_TRUE(messages.ok());
  EXPECT_EQ(messages.value().size(), 2u);
}

TEST_F(TraceIoTest, LoadChatCsvErrors) {
  EXPECT_TRUE(LoadChatCsv(dir_ + "/missing.csv").status().IsNotFound());
  std::filesystem::create_directories(dir_);
  const std::string path = dir_ + "/bad.csv";
  std::ofstream out(path);
  out << "1.0,only-two\n";
  out.close();
  EXPECT_TRUE(LoadChatCsv(path).status().IsCorruption());
  // Non-numeric timestamp past the header is an error.
  const std::string path2 = dir_ + "/bad2.csv";
  std::ofstream out2(path2);
  out2 << "ts,user,text\n1.0,u,ok\nxx,u,bad\n";
  out2.close();
  EXPECT_TRUE(LoadChatCsv(path2).status().IsCorruption());
}

}  // namespace
}  // namespace lightor::sim
