/// lightor — command-line front end for the full workflow.
///
///   lightor gen     --game=dota2 --videos=10 --seed=7 --out=corpus/
///   lightor train   --corpus=corpus/ --train-videos=1 --model=m.model
///   lightor detect  --corpus=corpus/ --model=m.model --video=<id> --k=5
///   lightor detect  --model=m.model --chat=chat.csv [--video-length=S]
///   lightor eval    --corpus=corpus/ --model=m.model --k=5 [--skip=N]
///   lightor extract --corpus=corpus/ --model=m.model --video=<id> --k=5
///                   [--viewers=10]
///   lightor serve   --db=DIR [--channels=2 --videos-per-channel=2
///                   --seed=7 --k=5 --workers=2 --shards=16 --batch=8
///                   --visits=4 --viewers=8]
///   lightor stream  --db=DIR [--channels=2 --videos-per-channel=2
///                   --seed=7 --k=5 --streams=2 --batch-size=32
///                   --refresh=64 --shards=16]
///   lightor serve-http --db=DIR [--port=0 --port-file=FILE --duration=S
///                   --net-workers=4 --max-in-flight=64 --deadline=10
///                   --drain-grace=0]
///   lightor route   --backends=H:P,H:P,... | --membership-file=F
///                   [--port=0 --port-file=FILE --duration=S --vnodes=64
///                   --health-interval=0.5 --retry-budget=8]
///   lightor loadgen --port=N | --check --db=DIR [--port=N]
///                   [--threads=8 --requests=128 --recorded=2 --live=2
///                   --slowest=8 --slo=all:50,session:80 --retry-503]
///   lightor curl    --port=N [--target=/healthz --method=GET --body=JSON
///                   --traceparent=00-...-...-01]
///   lightor checkpoint --db=DIR [--keep-consumed]
///   lightor inspect-manifest --db=DIR
///
/// `gen` synthesizes a labelled corpus to disk (CSV traces); `train`
/// fits the Highlight Initializer on the first N videos and saves the
/// model; `detect` prints red dots for one video; `eval` scores Video
/// Precision@K over the corpus; `extract` runs the full two-stage
/// pipeline with a simulated crowd; `serve` runs the concurrent
/// HighlightServer over a simulated platform, logging sessions until the
/// background workers refine every visited video; `stream` replays
/// recorded chat as interleaved live broadcasts through the server's
/// ingest path, finalizes each stream, and differential-checks the
/// result against the batch initializer; `serve-http` exposes the
/// HighlightServer over the src/net wire front-end; `route` runs the
/// cluster front door (`src/cluster`) over a fleet of serve-http
/// backends; `loadgen` drives a closed-loop multi-threaded traffic mix
/// against it (`--check` byte-compares the served state with an
/// independent reference server — self-hosting the stack in-process, or
/// against an external `--port`, e.g. a router fronting a cluster);
/// `curl` is a one-shot HTTP client for smoke tests.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>

#include "cluster/router.h"
#include "common/csv.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/strings.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "core/evaluation.h"
#include "core/model_io.h"
#include "net/client.h"
#include "net/loadgen.h"
#include "net/server.h"
#include "net/service.h"
#include "serving/highlight_server.h"
#include "sim/bridge.h"
#include "sim/corpus.h"
#include "sim/replay.h"
#include "sim/trace_io.h"
#include "sim/viewer_simulator.h"
#include "storage/database.h"

using namespace lightor;  // NOLINT

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: lightor <gen|train|detect|eval|extract|serve|stream|"
               "serve-http|route|loadgen|curl|checkpoint|inspect-manifest> "
               "[--flags]\n"
               "run with a command and no flags to see its options\n"
               "global flags: --log-level=debug|info|warning|error\n"
               "              --metrics-out=FILE (Prometheus text)\n"
               "              --metrics-json-out=FILE --trace-out=FILE\n");
  return 2;
}

/// Post-command observability dumps, gated on the global flags.
int DumpObservability(const common::Flags& flags, int exit_code) {
  if (const std::string path = flags.GetString("metrics-out"); !path.empty()) {
    if (auto st = obs::WriteFile(
            path, obs::ExportPrometheus(obs::Registry::Global()));
        !st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      if (exit_code == 0) exit_code = 1;
    }
  }
  if (const std::string path = flags.GetString("metrics-json-out");
      !path.empty()) {
    if (auto st =
            obs::WriteFile(path, obs::ExportJson(obs::Registry::Global()));
        !st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      if (exit_code == 0) exit_code = 1;
    }
  }
  if (const std::string path = flags.GetString("trace-out"); !path.empty()) {
    if (auto st = obs::TraceRecorder::Global().WriteChromeTrace(path);
        !st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      if (exit_code == 0) exit_code = 1;
    }
  }
  return exit_code;
}

int Fail(const common::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

common::Result<sim::Corpus> LoadCorpusFlag(const common::Flags& flags) {
  const std::string dir = flags.GetString("corpus");
  if (dir.empty()) {
    return common::Status::InvalidArgument("--corpus=DIR is required");
  }
  return sim::LoadCorpus(dir);
}

common::Result<size_t> FindVideo(const sim::Corpus& corpus,
                                 const std::string& id) {
  for (size_t i = 0; i < corpus.size(); ++i) {
    if (corpus[i].truth.meta.id == id) return i;
  }
  return common::Status::NotFound("no video '" + id +
                                  "' in the corpus (see corpus.index)");
}

int CmdGen(const common::Flags& flags) {
  const std::string out = flags.GetString("out");
  if (out.empty()) {
    std::fprintf(stderr,
                 "gen: --out=DIR required "
                 "[--game=dota2|lol --videos=N --seed=S --rate=1.0]\n");
    return 2;
  }
  const sim::GameType game = flags.GetString("game", "dota2") == "lol"
                                 ? sim::GameType::kLol
                                 : sim::GameType::kDota2;
  const int videos = static_cast<int>(flags.GetInt("videos", 10));
  const auto seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  const double rate = flags.GetDouble("rate", 1.0);
  const auto corpus = sim::MakeCorpus(game, videos, seed, rate);
  if (auto st = sim::SaveCorpus(corpus, out); !st.ok()) return Fail(st);
  size_t messages = 0;
  for (const auto& v : corpus) messages += v.chat.size();
  std::printf("wrote %d %s videos (%zu chat messages) to %s\n", videos,
              sim::GameTypeName(game).c_str(), messages, out.c_str());
  return 0;
}

int CmdTrain(const common::Flags& flags) {
  const std::string model_path = flags.GetString("model");
  if (model_path.empty()) {
    std::fprintf(stderr,
                 "train: --corpus=DIR --model=FILE required "
                 "[--train-videos=1]\n");
    return 2;
  }
  auto corpus = LoadCorpusFlag(flags);
  if (!corpus.ok()) return Fail(corpus.status());
  const auto n = static_cast<size_t>(flags.GetInt("train-videos", 1));
  std::vector<core::TrainingVideo> training;
  for (size_t i = 0; i < std::min(n, corpus.value().size()); ++i) {
    const auto& video = corpus.value()[i];
    core::TrainingVideo tv;
    tv.messages = sim::ToCoreMessages(video.chat);
    tv.video_length = video.truth.meta.length;
    for (const auto& h : video.truth.highlights) {
      tv.highlights.push_back(h.span);
    }
    training.push_back(std::move(tv));
  }
  core::HighlightInitializer init;
  if (auto st = init.Train(training); !st.ok()) return Fail(st);
  if (auto st = core::SaveInitializer(init, model_path); !st.ok()) {
    return Fail(st);
  }
  std::printf("trained on %zu video(s); learned c = %.0f s; model -> %s\n",
              training.size(), init.adjustment_c(), model_path.c_str());
  return 0;
}

common::Result<core::HighlightInitializer> LoadModelFlag(
    const common::Flags& flags) {
  const std::string path = flags.GetString("model");
  if (path.empty()) {
    return common::Status::InvalidArgument("--model=FILE is required");
  }
  return core::LoadInitializer(path);
}

int CmdDetect(const common::Flags& flags) {
  auto model = LoadModelFlag(flags);
  if (!model.ok()) return Fail(model.status());
  const auto k = static_cast<size_t>(flags.GetInt("k", 5));

  // Two input modes: a corpus video (with ground truth) or an external
  // chat CSV (--chat=FILE [--video-length=S]).
  if (flags.Has("chat")) {
    auto messages = sim::LoadChatCsv(flags.GetString("chat"));
    if (!messages.ok()) return Fail(messages.status());
    double length = flags.GetDouble("video-length", 0.0);
    if (length <= 0.0 && !messages.value().empty()) {
      length = messages.value().back().timestamp + 60.0;
    }
    const auto dots = model.value().Detect(messages.value(), length, k);
    common::TextTable table({"red dot", "score", "peak"});
    for (const auto& dot : dots) {
      table.AddRow({common::FormatTimestamp(dot.position),
                    common::FormatDouble(dot.score, 3),
                    common::FormatTimestamp(dot.peak)});
    }
    table.Print(std::cout);
    return 0;
  }

  auto corpus = LoadCorpusFlag(flags);
  if (!corpus.ok()) return Fail(corpus.status());
  auto index = FindVideo(corpus.value(), flags.GetString("video"));
  if (!index.ok()) return Fail(index.status());
  const auto& video = corpus.value()[index.value()];

  const auto dots = model.value().Detect(sim::ToCoreMessages(video.chat),
                                         video.truth.meta.length, k);
  common::TextTable table({"red dot", "score", "peak", "good?"});
  const auto truth_spans = [&] {
    std::vector<common::Interval> spans;
    for (const auto& h : video.truth.highlights) spans.push_back(h.span);
    return spans;
  }();
  for (const auto& dot : dots) {
    table.AddRow({common::FormatTimestamp(dot.position),
                  common::FormatDouble(dot.score, 3),
                  common::FormatTimestamp(dot.peak),
                  core::IsGoodRedDotForAny(dot.position, truth_spans)
                      ? "yes"
                      : "no"});
  }
  table.Print(std::cout);
  return 0;
}

int CmdEval(const common::Flags& flags) {
  auto corpus = LoadCorpusFlag(flags);
  if (!corpus.ok()) return Fail(corpus.status());
  auto model = LoadModelFlag(flags);
  if (!model.ok()) return Fail(model.status());
  const auto k = static_cast<size_t>(flags.GetInt("k", 5));
  const auto skip = static_cast<size_t>(flags.GetInt("skip", 0));

  double total = 0.0;
  int n = 0;
  for (size_t i = skip; i < corpus.value().size(); ++i) {
    const auto& video = corpus.value()[i];
    std::vector<common::Interval> truth;
    for (const auto& h : video.truth.highlights) truth.push_back(h.span);
    const auto dots = model.value().Detect(sim::ToCoreMessages(video.chat),
                                           video.truth.meta.length, k);
    const double p =
        core::VideoPrecisionStart(core::DotPositions(dots), truth);
    std::printf("%-24s P@%zu(start) = %.3f\n", video.truth.meta.id.c_str(),
                k, p);
    total += p;
    ++n;
  }
  if (n > 0) {
    std::printf("mean over %d videos: %.3f\n", n, total / n);
  }
  return 0;
}

int CmdExtract(const common::Flags& flags) {
  auto corpus = LoadCorpusFlag(flags);
  if (!corpus.ok()) return Fail(corpus.status());
  auto model = LoadModelFlag(flags);
  if (!model.ok()) return Fail(model.status());
  auto index = FindVideo(corpus.value(), flags.GetString("video"));
  if (!index.ok()) return Fail(index.status());
  const auto& video = corpus.value()[index.value()];
  const auto k = static_cast<size_t>(flags.GetInt("k", 5));
  const int viewers = static_cast<int>(flags.GetInt("viewers", 10));
  const auto seed = static_cast<uint64_t>(flags.GetInt("seed", 1));

  const auto dots = model.value().Detect(sim::ToCoreMessages(video.chat),
                                         video.truth.meta.length, k);
  core::HighlightExtractor extractor;
  common::Rng rng(seed);
  common::TextTable table({"dot", "highlight", "iterations", "converged"});
  for (const auto& dot : dots) {
    sim::SimulatedCrowdProvider provider(video.truth, sim::ViewerSimulator(),
                                         viewers, rng.Fork());
    const auto result = extractor.Run(provider, dot.position);
    table.AddRow({common::FormatTimestamp(dot.position),
                  "[" + common::FormatTimestamp(result.boundary.start) +
                      " .. " + common::FormatTimestamp(result.boundary.end) +
                      "]",
                  std::to_string(result.iterations),
                  result.converged ? "yes" : "no"});
  }
  table.Print(std::cout);
  return 0;
}

int CmdServe(const common::Flags& flags) {
  const std::string db_dir = flags.GetString("db");
  if (db_dir.empty()) {
    std::fprintf(stderr,
                 "serve: --db=DIR required "
                 "[--channels=2 --videos-per-channel=2 --seed=7 --k=5\n"
                 "        --workers=2 --shards=16 --batch=8 --visits=4 "
                 "--viewers=8]\n");
    return 2;
  }

  sim::Platform::Options popts;
  popts.num_channels = static_cast<int>(flags.GetInt("channels", 2));
  popts.videos_per_channel =
      static_cast<int>(flags.GetInt("videos-per-channel", 2));
  popts.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  const sim::Platform platform(popts);

  auto opened = storage::DB::Open(storage::OpenOptions(db_dir));
  if (!opened.ok()) return Fail(opened.status());
  auto db = std::move(opened.value().db);

  // Train on an out-of-platform corpus video, as in deployment.
  const auto corpus =
      sim::MakeCorpus(sim::GameType::kDota2, 1, popts.seed + 1000);
  core::TrainingVideo tv;
  tv.messages = sim::ToCoreMessages(corpus[0].chat);
  tv.video_length = corpus[0].truth.meta.length;
  for (const auto& h : corpus[0].truth.highlights) {
    tv.highlights.push_back(h.span);
  }
  core::LightorOptions lopts;
  lopts.top_k = static_cast<size_t>(flags.GetInt("k", 5));
  core::Lightor lightor(lopts);
  if (auto st = lightor.TrainInitializer({tv}); !st.ok()) return Fail(st);

  serving::ServerOptions sopts;
  sopts.platform = serving::Borrow(&platform);
  sopts.db = serving::Borrow(db.get());
  sopts.lightor = serving::Borrow(&lightor);
  sopts.top_k = lopts.top_k;
  sopts.num_workers = static_cast<size_t>(flags.GetInt("workers", 2));
  sopts.num_shards = static_cast<size_t>(flags.GetInt("shards", 16));
  sopts.refine_batch_sessions = static_cast<size_t>(flags.GetInt("batch", 8));
  auto server = serving::HighlightServer::Create(sopts);
  if (!server.ok()) return Fail(server.status());
  serving::HighlightServer& service = *server.value();

  const int visits = static_cast<int>(flags.GetInt("visits", 4));
  const int viewers = static_cast<int>(flags.GetInt("viewers", 8));
  const auto ids = platform.AllVideoIds();
  sim::ViewerSimulator viewer_sim;
  common::Rng rng(popts.seed + 1);
  uint64_t session_id = 0;
  for (int v = 0; v < visits && v < static_cast<int>(ids.size()); ++v) {
    const std::string& video_id = ids[static_cast<size_t>(v)];
    const auto visit = service.OnPageVisit({video_id, "cli"});
    if (!visit.ok()) return Fail(visit.status());
    std::printf("%s: %zu red dots (snapshot v%llu%s)\n", video_id.c_str(),
                visit.value().highlights.size(),
                static_cast<unsigned long long>(visit.value().snapshot_version),
                visit.value().first_visit ? ", first visit" : "");
    const auto video = platform.GetVideo(video_id);
    if (!video.ok()) return Fail(video.status());
    for (const auto& dot : visit.value().highlights) {
      for (int u = 0; u < viewers; ++u) {
        const auto session = viewer_sim.SimulateSession(
            video.value().truth, dot.dot_position, rng,
            "viewer" + std::to_string(session_id));
        serving::LogSessionRequest log;
        log.video_id = video_id;
        log.user = session.user;
        log.session_id = ++session_id;
        log.events = session.events;
        if (auto st = service.LogSession(log); !st.ok()) return Fail(st);
      }
    }
  }

  // Drain the background workers, then report the refined state.
  service.Shutdown();
  std::printf("\nlogged %llu sessions; refined highlights after drain:\n",
              static_cast<unsigned long long>(session_id));
  for (int v = 0; v < visits && v < static_cast<int>(ids.size()); ++v) {
    const std::string& video_id = ids[static_cast<size_t>(v)];
    const auto recs = db->highlights().GetLatest(video_id);
    for (const auto& rec : recs) {
      std::printf("  %s #%d [%s .. %s] iteration %d%s\n", video_id.c_str(),
                  rec.dot_index, common::FormatTimestamp(rec.start).c_str(),
                  common::FormatTimestamp(rec.end).c_str(), rec.iteration,
                  rec.converged ? " (converged)" : "");
    }
  }
  return 0;
}

int CmdStream(const common::Flags& flags) {
  const std::string db_dir = flags.GetString("db");
  if (db_dir.empty()) {
    std::fprintf(stderr,
                 "stream: --db=DIR required "
                 "[--channels=2 --videos-per-channel=2 --seed=7 --k=5\n"
                 "         --streams=2 --batch-size=32 --refresh=64 "
                 "--shards=16]\n");
    return 2;
  }

  sim::Platform::Options popts;
  popts.num_channels = static_cast<int>(flags.GetInt("channels", 2));
  popts.videos_per_channel =
      static_cast<int>(flags.GetInt("videos-per-channel", 2));
  popts.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  const sim::Platform platform(popts);

  auto opened = storage::DB::Open(storage::OpenOptions(db_dir));
  if (!opened.ok()) return Fail(opened.status());
  auto db = std::move(opened.value().db);

  // Train on an out-of-platform corpus video, as in deployment.
  const auto corpus =
      sim::MakeCorpus(sim::GameType::kDota2, 1, popts.seed + 1000);
  core::TrainingVideo tv;
  tv.messages = sim::ToCoreMessages(corpus[0].chat);
  tv.video_length = corpus[0].truth.meta.length;
  for (const auto& h : corpus[0].truth.highlights) {
    tv.highlights.push_back(h.span);
  }
  core::LightorOptions lopts;
  lopts.top_k = static_cast<size_t>(flags.GetInt("k", 5));
  core::Lightor lightor(lopts);
  if (auto st = lightor.TrainInitializer({tv}); !st.ok()) return Fail(st);

  serving::ServerOptions sopts;
  sopts.platform = serving::Borrow(&platform);
  sopts.db = serving::Borrow(db.get());
  sopts.lightor = serving::Borrow(&lightor);
  sopts.top_k = lopts.top_k;
  sopts.num_shards = static_cast<size_t>(flags.GetInt("shards", 16));
  sopts.stream_refresh_messages =
      static_cast<size_t>(flags.GetInt("refresh", 64));
  auto server = serving::HighlightServer::Create(sopts);
  if (!server.ok()) return Fail(server.status());
  serving::HighlightServer& service = *server.value();

  // Replay recorded chat of the first N videos as interleaved live
  // broadcasts through the ingest endpoint.
  const auto ids = platform.AllVideoIds();
  const size_t streams =
      std::min(static_cast<size_t>(flags.GetInt("streams", 2)), ids.size());
  sim::ChatReplayDriver::Options ropts;
  ropts.batch_size = static_cast<size_t>(flags.GetInt("batch-size", 32));
  sim::ChatReplayDriver driver(ropts);
  for (size_t i = 0; i < streams; ++i) {
    const auto video = platform.GetVideo(ids[i]);
    if (!video.ok()) return Fail(video.status());
    driver.AddVideo(ids[i], video.value().chat);
  }
  size_t provisional_publishes = 0;
  const auto run = driver.Run(
      [&](const std::string& id, std::vector<core::Message> batch) {
        serving::IngestChatRequest req;
        req.video_id = id;
        req.messages = std::move(batch);
        auto resp = service.IngestChat(req);
        if (!resp.ok()) return resp.status();
        if (resp.value().provisional_published) ++provisional_publishes;
        return common::Status::OK();
      });
  if (!run.ok()) return Fail(run.status());
  std::printf(
      "replayed %zu messages across %zu stream(s) in %zu batch(es); "
      "%zu provisional publish(es)\n",
      run.value().messages, run.value().videos, run.value().batches,
      provisional_publishes);

  // Finalize each stream and differential-check against the batch path.
  bool all_match = true;
  for (size_t i = 0; i < streams; ++i) {
    serving::FinalizeStreamRequest freq;
    freq.video_id = ids[i];
    const auto fin = service.FinalizeStream(freq);
    if (!fin.ok()) return Fail(fin.status());
    std::printf("%s: finalized at %s with %zu red dots (snapshot v%llu)\n",
                ids[i].c_str(),
                common::FormatTimestamp(fin.value().video_length).c_str(),
                fin.value().highlights.size(),
                static_cast<unsigned long long>(fin.value().snapshot_version));
    for (const auto& rec : fin.value().highlights) {
      std::printf("  #%d at %s (score %.3f)\n", rec.dot_index,
                  common::FormatTimestamp(rec.dot_position).c_str(),
                  rec.score);
    }
    const auto video = platform.GetVideo(ids[i]);
    if (!video.ok()) return Fail(video.status());
    const auto batch = lightor.Initialize(
        sim::ToCoreMessages(video.value().chat),
        video.value().truth.meta.length, lopts.top_k);
    if (!batch.ok()) return Fail(batch.status());
    bool match = batch.value().size() == fin.value().highlights.size();
    for (size_t d = 0; match && d < batch.value().size(); ++d) {
      match = batch.value()[d].position ==
              fin.value().highlights[d].dot_position;
    }
    std::printf("  matches batch initializer: %s\n", match ? "yes" : "NO");
    all_match = all_match && match;
  }
  service.Shutdown();
  return all_match ? 0 : 1;
}

// ---------------------------------------------------------------------------
// Wire front-end commands: serve-http / loadgen / curl

std::atomic<bool> g_stop{false};
void OnSignal(int) { g_stop.store(true); }

/// A fully wired in-process serving stack (platform + DB + trained
/// pipeline + HighlightServer). Heap-held so the Borrow()'d pointers in
/// ServerOptions stay stable when the stack moves.
struct ServingStack {
  std::unique_ptr<sim::Platform> platform;
  std::unique_ptr<storage::Database> db;
  std::unique_ptr<core::Lightor> lightor;
  std::unique_ptr<serving::HighlightServer> server;
  /// What opening `db` recovered; fed to HighlightServer::Bootstrap.
  storage::RecoveryStats recovery;
};

common::Result<ServingStack> MakeServingStack(const common::Flags& flags,
                                              const std::string& db_dir,
                                              size_t refine_batch,
                                              bool batched_flush) {
  ServingStack stack;
  sim::Platform::Options popts;
  popts.num_channels = static_cast<int>(flags.GetInt("channels", 2));
  popts.videos_per_channel =
      static_cast<int>(flags.GetInt("videos-per-channel", 2));
  popts.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  stack.platform = std::make_unique<sim::Platform>(popts);

  LIGHTOR_ASSIGN_OR_RETURN(auto opened,
                           storage::DB::Open(storage::OpenOptions(db_dir)));
  stack.db = std::move(opened.db);
  stack.recovery = opened.stats;

  // Train on an out-of-platform corpus video, as in deployment.
  const auto corpus =
      sim::MakeCorpus(sim::GameType::kDota2, 1, popts.seed + 1000);
  core::TrainingVideo tv;
  tv.messages = sim::ToCoreMessages(corpus[0].chat);
  tv.video_length = corpus[0].truth.meta.length;
  for (const auto& h : corpus[0].truth.highlights) {
    tv.highlights.push_back(h.span);
  }
  core::LightorOptions lopts;
  lopts.top_k = static_cast<size_t>(flags.GetInt("k", 5));
  stack.lightor = std::make_unique<core::Lightor>(lopts);
  if (auto st = stack.lightor->TrainInitializer({tv}); !st.ok()) return st;

  serving::ServerOptions sopts;
  sopts.platform = serving::Borrow(
      static_cast<const sim::Platform*>(stack.platform.get()));
  sopts.db = serving::Borrow(stack.db.get());
  sopts.lightor = serving::Borrow(
      static_cast<const core::Lightor*>(stack.lightor.get()));
  sopts.top_k = lopts.top_k;
  sopts.num_workers = static_cast<size_t>(flags.GetInt("workers", 2));
  sopts.num_shards = static_cast<size_t>(flags.GetInt("shards", 16));
  sopts.refine_batch_sessions = refine_batch;
  sopts.batched_session_flush = batched_flush;
  sopts.checkpoint_every_sessions =
      static_cast<size_t>(flags.GetInt("checkpoint-sessions", 0));
  sopts.checkpoint_interval_seconds =
      flags.GetDouble("checkpoint-interval", 0.0);
  // Multi-channel live ingest: defaults keep the classic synchronous
  // path; turn on workers + a rate to get fair-share DRR backpressure.
  sopts.stream_refresh_messages =
      static_cast<size_t>(flags.GetInt("refresh", 64));
  sopts.ingest_workers =
      static_cast<size_t>(flags.GetInt("ingest-workers", 0));
  sopts.ingest_rate_messages_per_sec = flags.GetDouble("ingest-rate", 0.0);
  sopts.ingest_burst_messages = flags.GetDouble("ingest-burst", 0.0);
  sopts.ingest_queue_messages =
      static_cast<size_t>(flags.GetInt("ingest-queue", 8192));
  sopts.ingest_quantum_messages =
      static_cast<size_t>(flags.GetInt("ingest-quantum", 256));
  sopts.stream_publish_max_delay_seconds =
      flags.GetDouble("publish-delay", 0.0);
  LIGHTOR_ASSIGN_OR_RETURN(stack.server,
                           serving::HighlightServer::Create(sopts));
  stack.server->Bootstrap(stack.recovery);
  return stack;
}

net::NetOptions NetOptionsFromFlags(const common::Flags& flags) {
  net::NetOptions nopts;
  nopts.port = static_cast<uint16_t>(flags.GetInt("port", 0));
  nopts.num_workers = static_cast<size_t>(flags.GetInt("net-workers", 4));
  nopts.max_in_flight =
      static_cast<size_t>(flags.GetInt("max-in-flight", 64));
  nopts.request_deadline_seconds = flags.GetDouble("deadline", 10.0);
  nopts.idle_timeout_seconds = flags.GetDouble("idle-timeout", 60.0);
  nopts.use_epoll = !flags.GetBool("poll", false);
  return nopts;
}

int CmdServeHttp(const common::Flags& flags) {
  const std::string db_dir = flags.GetString("db");
  if (db_dir.empty()) {
    std::fprintf(stderr,
                 "serve-http: --db=DIR required "
                 "[--port=0 --port-file=FILE --duration=SECONDS\n"
                 "            --channels=2 --videos-per-channel=2 --seed=7 "
                 "--k=5 --workers=2\n"
                 "            --shards=16 --batch=8 --net-workers=4 "
                 "--max-in-flight=64\n"
                 "            --deadline=10 --idle-timeout=60 --poll "
                 "--batched-flush=true\n"
                 "            --checkpoint-sessions=0 "
                 "--checkpoint-interval=0 --drain-grace=0\n"
                 "            --refresh=64 --ingest-workers=0 "
                 "--ingest-rate=0 --ingest-burst=0\n"
                 "            --ingest-queue=8192 --ingest-quantum=256 "
                 "--publish-delay=0]\n");
    return 2;
  }
  auto stack = MakeServingStack(
      flags, db_dir, static_cast<size_t>(flags.GetInt("batch", 8)),
      flags.GetBool("batched-flush", true));
  if (!stack.ok()) return Fail(stack.status());

  auto http = net::HttpServer::Create(
      NetOptionsFromFlags(flags), net::BuildRoutes(stack.value().server.get()));
  if (!http.ok()) return Fail(http.status());
  std::printf("listening on %s:%u\n", http.value()->options().host.c_str(),
              http.value()->port());
  std::fflush(stdout);
  if (const std::string path = flags.GetString("port-file"); !path.empty()) {
    std::ofstream out(path, std::ios::trunc);
    out << http.value()->port() << "\n";
    if (!out) {
      std::fprintf(stderr, "error: cannot write --port-file %s\n",
                   path.c_str());
      return 1;
    }
  }

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  const double duration = flags.GetDouble("duration", 0.0);
  const auto start = std::chrono::steady_clock::now();
  while (!g_stop.load()) {
    if (duration > 0.0 &&
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
                .count() >= duration) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  // Lame duck: announce draining via /healthz for the grace period while
  // still serving, so a cluster router can eject this backend from
  // failover choices before the listener actually goes away.
  if (const double grace = flags.GetDouble("drain-grace", 0.0); grace > 0.0) {
    stack.value().server->BeginDrain();
    std::printf("draining (%.1fs grace)\n", grace);
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::duration<double>(grace));
  }
  http.value()->Shutdown();
  stack.value().server->Shutdown();
  std::printf("drained\n");
  return 0;
}

int CmdLoadgen(const common::Flags& flags) {
  const bool check = flags.GetBool("check", false);
  if (!check && !flags.Has("port")) {
    std::fprintf(stderr,
                 "loadgen: --port=N required (or --check --db=DIR for the "
                 "self-hosted differential mode;\n"
                 "  --check --db=DIR --port=N differential-checks an "
                 "external server, e.g. a cluster router)\n"
                 "  [--host=127.0.0.1 --threads=8 --requests=128 --seed=7\n"
                 "   --recorded=2 --live=2 --batch-size=32 --channels=2\n"
                 "   --videos-per-channel=2 --visit-w=4 --session-w=8 "
                 "--refine-w=1 --ingest-w=2\n"
                 "   --slowest=8 --slo=op:p99_ms,... (ops: visit session "
                 "refine ingest finalize all;\n"
                 "   a violated target exits 1)\n"
                 "   --retry-503 --retry-budget=10 (cluster mode: absorb "
                 "503s/transient wire errors)\n"
                 "   --scenario=flash-crowd --flash-channels=1000 "
                 "--hot-mult=100 --frame-channels=32\n"
                 "   (flash-crowd gauntlet: cold channels via batch "
                 "frames, one hot channel at\n"
                 "   hot-mult x; gate staleness with "
                 "--slo=provisional_p99:MS; any cold-channel\n"
                 "   delivery failure exits 1)]\n");
    return 2;
  }

  // The traffic shape comes from the same simulated platform the server
  // was built over (same --channels/--videos-per-channel/--seed).
  sim::Platform::Options popts;
  popts.num_channels = static_cast<int>(flags.GetInt("channels", 2));
  popts.videos_per_channel =
      static_cast<int>(flags.GetInt("videos-per-channel", 2));
  popts.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  const sim::Platform platform(popts);
  const auto ids = platform.AllVideoIds();

  net::LoadGenOptions lgopts;
  lgopts.host = flags.GetString("host", "127.0.0.1");
  lgopts.num_threads = static_cast<size_t>(flags.GetInt("threads", 8));
  lgopts.requests_per_thread =
      static_cast<size_t>(flags.GetInt("requests", 128));
  lgopts.seed = popts.seed;
  lgopts.visit_weight = static_cast<int>(flags.GetInt("visit-w", 4));
  lgopts.session_weight = static_cast<int>(flags.GetInt("session-w", 8));
  lgopts.refine_weight =
      check ? 0 : static_cast<int>(flags.GetInt("refine-w", 1));
  lgopts.ingest_weight = static_cast<int>(flags.GetInt("ingest-w", 2));
  lgopts.ingest_batch_size =
      static_cast<size_t>(flags.GetInt("batch-size", 32));
  lgopts.slowest_n = static_cast<size_t>(flags.GetInt("slowest", 8));
  // --slo=all:50,session:80 — comma-separated op:p99_ms pairs.
  if (const std::string slo = flags.GetString("slo"); !slo.empty()) {
    size_t pos = 0;
    while (pos < slo.size()) {
      size_t comma = slo.find(',', pos);
      if (comma == std::string::npos) comma = slo.size();
      const std::string pair = slo.substr(pos, comma - pos);
      const size_t colon = pair.find(':');
      if (colon == std::string::npos) {
        std::fprintf(stderr, "loadgen: bad --slo entry (want op:p99_ms): %s\n",
                     pair.c_str());
        return 2;
      }
      net::LoadGenOptions::SloTarget target;
      target.op = pair.substr(0, colon);
      target.p99_ms = std::atof(pair.c_str() + colon + 1);
      lgopts.slo_targets.push_back(std::move(target));
      pos = comma + 1;
    }
  }
  lgopts.retry_503 = flags.GetBool("retry-503", false);
  lgopts.retry_budget_seconds = flags.GetDouble("retry-budget", 10.0);
  lgopts.scenario = flags.GetString("scenario");
  lgopts.flash_channels =
      static_cast<size_t>(flags.GetInt("flash-channels", 1000));
  lgopts.flash_hot_multiplier =
      static_cast<size_t>(flags.GetInt("hot-mult", 100));
  lgopts.flash_frame_channels =
      static_cast<size_t>(flags.GetInt("frame-channels", 32));
  lgopts.platform = &platform;
  const size_t recorded = std::min(
      static_cast<size_t>(flags.GetInt("recorded", 2)), ids.size());
  const size_t live = std::min(static_cast<size_t>(flags.GetInt("live", 2)),
                               ids.size() - recorded);
  lgopts.recorded_ids.assign(ids.begin(),
                             ids.begin() + static_cast<ptrdiff_t>(recorded));
  lgopts.live_ids.assign(
      ids.begin() + static_cast<ptrdiff_t>(recorded),
      ids.begin() + static_cast<ptrdiff_t>(recorded + live));

  // --check compares served state against an independent reference
  // HighlightServer the recorded traffic is replayed into. Background
  // refinement must be off on the served side (refine_batch=0) and
  // /refine is out of the mix, so final state is a pure function of the
  // accepted traffic. Without --port the full socket stack is hosted
  // in-process; with --port the served side is external — typically a
  // cluster router, making this the fleet-vs-one-process differential.
  ServingStack served;
  ServingStack reference;
  std::unique_ptr<net::HttpServer> http;
  const bool external_check = check && flags.Has("port");
  if (check) {
    const std::string db_dir = flags.GetString("db");
    if (db_dir.empty()) {
      std::fprintf(stderr, "loadgen: --check requires --db=DIR\n");
      return 2;
    }
    auto r = MakeServingStack(flags, db_dir + "/reference", 0, false);
    if (!r.ok()) return Fail(r.status());
    reference = std::move(r).value();
    if (external_check) {
      lgopts.port = static_cast<uint16_t>(flags.GetInt("port", 0));
    } else {
      auto s = MakeServingStack(flags, db_dir + "/served", 0, true);
      if (!s.ok()) return Fail(s.status());
      served = std::move(s).value();
      net::NetOptions nopts = NetOptionsFromFlags(flags);
      nopts.port = 0;
      auto create = net::HttpServer::Create(
          nopts, net::BuildRoutes(served.server.get()));
      if (!create.ok()) return Fail(create.status());
      http = std::move(create).value();
      lgopts.host = "127.0.0.1";
      lgopts.port = http->port();
    }
  } else {
    lgopts.port = static_cast<uint16_t>(flags.GetInt("port", 0));
  }

  net::RecordedTraffic recorded_traffic;
  auto report =
      net::RunLoadGen(lgopts, check ? &recorded_traffic : nullptr);
  if (!report.ok()) return Fail(report.status());
  std::printf("%s\n", net::EncodeJson(report.value()).c_str());

  int code = report.value().wire_errors == 0 ? 0 : 1;
  if (!report.value().slo_ok) {
    std::fprintf(stderr, "loadgen: SLO violated (see report \"slo\")\n");
    code = 1;
  }
  if (report.value().flash_cold_failures > 0) {
    std::fprintf(stderr,
                 "loadgen: %zu cold-channel deliveries failed "
                 "(fair-share admission must never fail a cold channel)\n",
                 report.value().flash_cold_failures);
    code = 1;
  }
  if (check) {
    net::HttpClient client(lgopts.host, lgopts.port);
    if (auto st = net::RunDifferentialCheck(recorded_traffic, client,
                                            reference.server.get());
        !st.ok()) {
      std::fprintf(stderr, "differential check FAILED: %s\n",
                   st.ToString().c_str());
      code = 1;
    } else {
      std::printf("differential check: OK\n");
    }
    if (http != nullptr) http->Shutdown();
    if (served.server != nullptr) served.server->Shutdown();
    reference.server->Shutdown();
  }
  return code;
}

int CmdCheckpoint(const common::Flags& flags) {
  const std::string db_dir = flags.GetString("db");
  if (db_dir.empty()) {
    std::fprintf(stderr,
                 "checkpoint: --db=DIR required [--keep-consumed]\n"
                 "snapshots live state into a checkpoint file, rotates the "
                 "logs, and\nprints the resulting CheckpointStats\n");
    return 2;
  }
  storage::OpenOptions options;
  options.directory = db_dir;
  options.checkpoint.drop_consumed_interactions =
      !flags.GetBool("keep-consumed", false);
  auto opened = storage::DB::Open(options);
  if (!opened.ok()) return Fail(opened.status());
  auto& db = opened.value().db;
  std::printf("opened %s: checkpoint gen %llu (lsn %llu), replayed %zu "
              "records in %.3fs\n",
              db_dir.c_str(),
              static_cast<unsigned long long>(
                  opened.value().stats.checkpoint_gen),
              static_cast<unsigned long long>(
                  opened.value().stats.checkpoint_lsn),
              opened.value().stats.records_replayed,
              opened.value().stats.wall_seconds);
  auto stats = db->Checkpoint();
  if (!stats.ok()) return Fail(stats.status());
  std::printf("checkpoint gen %llu at lsn %llu: %zu records, %llu bytes; "
              "truncated %llu log bytes in %.3fs\n",
              static_cast<unsigned long long>(stats.value().gen),
              static_cast<unsigned long long>(stats.value().lsn),
              stats.value().records_written,
              static_cast<unsigned long long>(stats.value().checkpoint_bytes),
              static_cast<unsigned long long>(
                  stats.value().log_bytes_truncated),
              stats.value().wall_seconds);
  return 0;
}

int CmdInspectManifest(const common::Flags& flags) {
  const std::string db_dir = flags.GetString("db");
  if (db_dir.empty()) {
    std::fprintf(stderr,
                 "inspect-manifest: --db=DIR required\nprints the MANIFEST "
                 "(generations + checkpoint LSN) without opening the "
                 "database\n");
    return 2;
  }
  auto manifest = storage::ReadManifest(storage::Env::Default(), db_dir);
  if (!manifest.ok()) return Fail(manifest.status());
  if (!manifest.value().has_value()) {
    std::printf("%s: no MANIFEST (legacy single-generation layout)\n",
                db_dir.c_str());
    return 0;
  }
  const storage::Manifest& m = *manifest.value();
  std::printf("%s:\n  log_gen        %llu\n  checkpoint_gen %llu%s\n"
              "  checkpoint_lsn %llu\n",
              db_dir.c_str(), static_cast<unsigned long long>(m.log_gen),
              static_cast<unsigned long long>(m.checkpoint_gen),
              m.checkpoint_gen == 0 ? " (no checkpoint)" : "",
              static_cast<unsigned long long>(m.checkpoint_lsn));
  return 0;
}

int CmdRoute(const common::Flags& flags) {
  const std::string backends = flags.GetString("backends");
  const std::string membership_file = flags.GetString("membership-file");
  if (backends.empty() && membership_file.empty()) {
    std::fprintf(
        stderr,
        "route: --backends=HOST:PORT,... or --membership-file=FILE "
        "required\n"
        "  [--port=0 --port-file=FILE --duration=SECONDS --vnodes=64\n"
        "   --health-interval=0.5 --upstream-timeout=5 --pool-size=8\n"
        "   --retry-budget=8 --retry-backoff=0.05 --no-failover\n"
        "   --net-workers=16 --max-in-flight=64 --deadline=10]\n"
        "runs the cluster front door: consistent-hash routing of every "
        "data route\nto serve-http backends, with retry/failover, "
        "membership admin, and fleet\n/metrics aggregation\n");
    return 2;
  }

  cluster::RouterOptions ropts;
  ropts.net = NetOptionsFromFlags(flags);
  // A request whose owner is down parks on a router worker for up to the
  // whole retry budget, so the router needs far more workers than a
  // backend: with a backend-sized pool a few in-flight requests to a dead
  // owner starve /healthz, /metrics, and every other video's traffic
  // (and a starved control plane delays the restart that the retry
  // budget is waiting for).
  ropts.net.num_workers = static_cast<size_t>(flags.GetInt("net-workers", 16));
  ropts.membership_file = membership_file;
  for (const std::string& address : common::Split(backends, ',')) {
    if (!address.empty()) ropts.backends.push_back(address);
  }
  ropts.vnodes = static_cast<size_t>(flags.GetInt("vnodes", 64));
  ropts.health_check_interval_seconds =
      flags.GetDouble("health-interval", 0.5);
  ropts.upstream_timeout_seconds = flags.GetDouble("upstream-timeout", 5.0);
  ropts.upstream_pool_size =
      static_cast<size_t>(flags.GetInt("pool-size", 8));
  ropts.retry_budget_seconds = flags.GetDouble("retry-budget", 8.0);
  ropts.retry_backoff_seconds = flags.GetDouble("retry-backoff", 0.05);
  ropts.failover = !flags.GetBool("no-failover", false);

  auto router = cluster::HighlightRouter::Create(std::move(ropts));
  if (!router.ok()) return Fail(router.status());
  std::printf("routing on %s:%u over %zu backend(s)\n",
              router.value()->options().net.host.c_str(),
              router.value()->port(), router.value()->fleet().NumMembers());
  std::fflush(stdout);
  if (const std::string path = flags.GetString("port-file"); !path.empty()) {
    std::ofstream out(path, std::ios::trunc);
    out << router.value()->port() << "\n";
    if (!out) {
      std::fprintf(stderr, "error: cannot write --port-file %s\n",
                   path.c_str());
      return 1;
    }
  }

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  const double duration = flags.GetDouble("duration", 0.0);
  const auto start = std::chrono::steady_clock::now();
  while (!g_stop.load()) {
    if (duration > 0.0 &&
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
                .count() >= duration) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  router.value()->Shutdown();
  std::printf("drained\n");
  return 0;
}

int CmdCurl(const common::Flags& flags) {
  if (!flags.Has("port")) {
    std::fprintf(stderr,
                 "curl: --port=N required [--host=127.0.0.1 "
                 "--target=/healthz --method=GET --body=JSON\n"
                 "      --traceparent=00-<32hex>-<16hex>-01]\n");
    return 2;
  }
  const std::string body = flags.GetString("body");
  const std::string method =
      flags.GetString("method", body.empty() ? "GET" : "POST");
  net::HttpClient client(flags.GetString("host", "127.0.0.1"),
                         static_cast<uint16_t>(flags.GetInt("port", 0)));
  if (const std::string tp = flags.GetString("traceparent"); !tp.empty()) {
    client.set_header("traceparent", tp);
  }
  auto response =
      client.Request(method, flags.GetString("target", "/healthz"), body);
  if (!response.ok()) return Fail(response.status());
  std::fprintf(stderr, "%d %s\n", response.value().status,
               std::string(net::StatusReason(response.value().status))
                   .c_str());
  std::printf("%s\n", response.value().body.c_str());
  return response.value().status < 400 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const common::Flags flags = common::Flags::Parse(argc - 1, argv + 1);
  if (flags.Has("log-level") &&
      !common::SetLogLevelFromString(flags.GetString("log-level"))) {
    std::fprintf(stderr,
                 "error: bad --log-level (debug|info|warning|error)\n");
    return 2;
  }
  int code;
  if (command == "gen") {
    code = CmdGen(flags);
  } else if (command == "train") {
    code = CmdTrain(flags);
  } else if (command == "detect") {
    code = CmdDetect(flags);
  } else if (command == "eval") {
    code = CmdEval(flags);
  } else if (command == "extract") {
    code = CmdExtract(flags);
  } else if (command == "serve") {
    code = CmdServe(flags);
  } else if (command == "stream") {
    code = CmdStream(flags);
  } else if (command == "serve-http") {
    code = CmdServeHttp(flags);
  } else if (command == "route") {
    code = CmdRoute(flags);
  } else if (command == "loadgen") {
    code = CmdLoadgen(flags);
  } else if (command == "curl") {
    code = CmdCurl(flags);
  } else if (command == "checkpoint") {
    code = CmdCheckpoint(flags);
  } else if (command == "inspect-manifest") {
    code = CmdInspectManifest(flags);
  } else {
    return Usage();
  }
  return DumpObservability(flags, code);
}
