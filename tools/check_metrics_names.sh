#!/bin/sh
# Lints metric registration sites for the repo naming convention:
#
#   lightor_<layer>_<name>     layer in: core sim storage serving web
#                              stream net cluster obs text ml common
#                              bench test(s) testing
#   counters end in _total; gauges/histograms must not
#
# and flags the same metric name registered as two different kinds
# (counter vs gauge vs histogram), which the registry resolves to a
# dummy at runtime. Run from anywhere: paths are relative to the repo
# root (the directory above this script).
#
# Usage: tools/check_metrics_names.sh   (exit 0 = clean, 1 = violations)

set -u
root=$(cd "$(dirname "$0")/.." && pwd)
cd "$root" || exit 2

files=$(grep -rlE 'Get(Counter|Gauge|Histogram)\(' src tools bench 2>/dev/null)
if [ -z "$files" ]; then
  echo "check_metrics_names: no registration sites found (wrong root?)" >&2
  exit 2
fi

# Registration sites as "file kind name". The name is often wrapped onto
# the line after Get*( by the formatter, so match on the whitespace-
# collapsed file body rather than line by line.
parsed=$(for f in $files; do
  tr '\n' ' ' < "$f" |
    grep -oE 'Get(Counter|Gauge|Histogram)\( *"[^"]+"' |
    sed -E "s@^Get(Counter|Gauge|Histogram)\( *\"([^\"]+)\"\$@$f \\1 \\2@"
done)

status=0

# 1. Naming convention.
bad=$(printf '%s\n' "$parsed" | awk '
  {
    site = $1; kind = $2; name = $3
    if (name !~ /^lightor_(core|sim|storage|serving|stream|web|net|cluster|obs|text|ml|common|bench|tests?|testing)_[a-z0-9_]+$/) {
      printf "%s: bad metric name %s (want lightor_<layer>_<name>, lowercase)\n", site, name
    } else if (kind == "Counter" && name !~ /_total$/) {
      printf "%s: counter %s must end in _total\n", site, name
    } else if (kind != "Counter" && name ~ /_total$/) {
      printf "%s: %s %s must not end in _total (counters only)\n", site, tolower(kind), name
    }
  }')
if [ -n "$bad" ]; then
  printf '%s\n' "$bad" >&2
  status=1
fi

# 2. One kind per name across the whole tree.
dupes=$(printf '%s\n' "$parsed" | awk '
  {
    name = $3; kind = $2
    if (name in kinds) {
      if (index(kinds[name], kind) == 0) kinds[name] = kinds[name] "+" kind
    } else {
      kinds[name] = kind
    }
  }
  END {
    for (name in kinds) {
      if (index(kinds[name], "+") != 0) {
        printf "metric %s registered as multiple kinds: %s\n", name, kinds[name]
      }
    }
  }')
if [ -n "$dupes" ]; then
  printf '%s\n' "$dupes" >&2
  status=1
fi

# 3. The live-ingest scheduler series must stay registered: dashboards
#    and the flash-crowd CI stage key off these exact names.
required="lightor_serving_provisional_staleness_seconds
lightor_serving_channel_admitted_messages_total
lightor_serving_channel_throttled_total
lightor_serving_channel_rejected_messages_total
lightor_serving_channel_drain_rounds_total
lightor_serving_channel_queued_messages
lightor_serving_channel_active"
missing=$(for name in $required; do
  if ! printf '%s\n' "$parsed" | awk -v n="$name" '$3 == n { found = 1 }
      END { exit !found }'; then
    printf 'required live-ingest metric %s is not registered anywhere\n' \
        "$name"
  fi
done)
if [ -n "$missing" ]; then
  printf '%s\n' "$missing" >&2
  status=1
fi

if [ "$status" -eq 0 ]; then
  count=$(printf '%s\n' "$parsed" | awk '{print $3}' | sort -u | wc -l)
  echo "check_metrics_names: OK ($count metric names, all conventional)"
fi
exit "$status"
