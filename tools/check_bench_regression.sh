#!/bin/sh
# Compares a fresh bench run against the committed baseline and fails on
# a >10% regression (plus a small absolute epsilon so millisecond-scale
# noise doesn't flake CI).
#
#   sh tools/check_bench_regression.sh NEW.json BASELINE.json [max_pct]
#
# Works on three formats, auto-detected from the new file:
#
#  - recovery_bench scale lines ("sessions", "ckpt_open_s", "speedup"):
#    per scale present in BOTH files, ckpt_open_s must not regress by more
#    than max_pct (default 10%), and speedup at >=1M sessions must stay
#    >= 10x (the PR acceptance bar).
#
#  - cluster_bench entry lines (an "overhead_p99_pct" key anywhere):
#    latencies, lower is better. Per name present in BOTH files,
#    router_p99 must not regress by more than max_pct plus an absolute
#    slack (loopback p99s wobble), and any entry carrying
#    overhead_p99_pct must keep it <= 20 (the router-overhead acceptance
#    bar) unless the absolute gap router_p99 - direct_p99 is inside the
#    slack.
#
#  - hotpath_bench entry lines ('"entries"' header, then one
#    {"name",...,"value",...} per line): values are throughputs
#    (higher is better); per name present in BOTH files, value must not
#    drop by more than max_pct, and streaming_ingest's speedup over the
#    in-binary legacy path must stay >= 5x (the PR acceptance bar).

set -eu

new=${1:?usage: check_bench_regression.sh NEW.json BASELINE.json [max_pct]}
base=${2:?usage: check_bench_regression.sh NEW.json BASELINE.json [max_pct]}
max_pct=${3:-10}
eps_s=0.005  # absolute slack: ignore sub-5ms wobble

[ -f "$new" ] || { echo "check_bench_regression: missing $new" >&2; exit 2; }
[ -f "$base" ] || { echo "check_bench_regression: missing $base" >&2; exit 2; }

if grep -q '"overhead_p99_pct"' "$new"; then
  # cluster_bench mode: "name router_p99 direct_p99 overhead" per entry.
  eps_ms=0.5  # absolute slack: loaded loopback p99s wobble by fractions of a ms
  overhead_bar=20

  extract_cluster() {
    awk -F'[:,]' '/"name"/ {
      name = ""; router = ""; direct = ""; overhead = ""
      for (i = 1; i < NF; ++i) {
        if ($i ~ /"name"/) { name = $(i + 1); gsub(/[" }\]]/, "", name) }
        if ($i ~ /"router_p99"/) { router = $(i + 1)
                                   gsub(/[" }\]]/, "", router) }
        if ($i ~ /"direct_p99"/) { direct = $(i + 1)
                                   gsub(/[" }\]]/, "", direct) }
        if ($i ~ /"overhead_p99_pct"/) { overhead = $(i + 1)
                                         gsub(/[" }\]]/, "", overhead) }
      }
      if (name != "" && router != "") print name, router, direct, overhead
    }' "$1"
  }

  extract_cluster "$new" > "${new}.cluster.tmp"
  extract_cluster "$base" > "${base}.cluster.tmp"

  fail=0
  while read -r name new_router new_direct new_overhead; do
    base_line=$(awk -v n="$name" '$1 == n' "${base}.cluster.tmp")
    if [ -z "$base_line" ]; then
      echo "check_bench_regression: entry $name not in baseline; skipped"
      continue
    fi
    base_router=$(echo "$base_line" | awk '{print $2}')
    verdict=$(awk -v n="$new_router" -v b="$base_router" -v p="$max_pct" \
                  -v e="$eps_ms" -v d="$new_direct" -v ov="$new_overhead" \
                  -v bar="$overhead_bar" -v name="$name" '
      BEGIN {
        limit = b * (1 + p / 100) + e
        if (n > limit) {
          printf "REGRESSION %s: router p99 %.3fms vs baseline %.3fms (>%s%% + %.1fms slack)\n", name, n, b, p, e
        }
        if (ov != "" && ov + 0 > bar && n - d > e) {
          printf "REGRESSION %s: router overhead %.1f%% p99 is above the %d%% bar\n", name, ov, bar
        }
      }')
    if [ -n "$verdict" ]; then
      echo "$verdict" >&2
      fail=1
    else
      echo "ok entry $name: router p99 ${new_router}ms (baseline ${base_router}ms${new_overhead:+, overhead ${new_overhead}%})"
    fi
  done < "${new}.cluster.tmp"

  rm -f "${new}.cluster.tmp" "${base}.cluster.tmp"
  exit "$fail"
fi

if grep -q '"entries"' "$new"; then
  # hotpath_bench mode: "name value speedup" per entry line.
  extract_entries() {
    awk -F'[:,]' '/"name"/ {
      name = ""; value = ""; speedup = ""
      for (i = 1; i < NF; ++i) {
        if ($i ~ /"name"/) { name = $(i + 1); gsub(/[" }\]]/, "", name) }
        if ($i ~ /"value"/) { value = $(i + 1); gsub(/[" }\]]/, "", value) }
        if ($i ~ /"speedup"/) { speedup = $(i + 1)
                                gsub(/[" }\]]/, "", speedup) }
      }
      if (name != "" && value != "") print name, value, speedup
    }' "$1"
  }

  extract_entries "$new" > "${new}.entries.tmp"
  extract_entries "$base" > "${base}.entries.tmp"

  fail=0
  while read -r name new_value new_speedup; do
    base_line=$(awk -v n="$name" '$1 == n' "${base}.entries.tmp")
    if [ -z "$base_line" ]; then
      echo "check_bench_regression: entry $name not in baseline; skipped"
      continue
    fi
    base_value=$(echo "$base_line" | awk '{print $2}')
    verdict=$(awk -v n="$new_value" -v b="$base_value" -v p="$max_pct" \
                  -v sp="$new_speedup" -v name="$name" '
      BEGIN {
        floor = b * (1 - p / 100)
        if (n < floor) {
          printf "REGRESSION %s: %.0f vs baseline %.0f (>%s%% throughput drop)\n", name, n, b, p
        }
        if (name == "streaming_ingest" && sp != "" && sp + 0 < 5) {
          printf "REGRESSION %s: speedup %.2fx is below the 5x bar\n", name, sp
        }
      }')
    if [ -n "$verdict" ]; then
      echo "$verdict" >&2
      fail=1
    else
      echo "ok entry $name: $new_value (baseline $base_value)"
    fi
  done < "${new}.entries.tmp"

  rm -f "${new}.entries.tmp" "${base}.entries.tmp"
  exit "$fail"
fi

# "sessions ckpt_open_s speedup" per scale line.
extract() {
  awk -F'[:,]' '/"sessions"/ {
    sessions = ""; ckpt = ""; speedup = ""
    for (i = 1; i < NF; ++i) {
      if ($i ~ /"sessions"/) sessions = $(i + 1)
      if ($i ~ /"ckpt_open_s"/) ckpt = $(i + 1)
      if ($i ~ /"speedup"/) speedup = $(i + 1)
    }
    if (sessions != "" && ckpt != "") print sessions, ckpt, speedup
  }' "$1"
}

extract "$new" > "${new}.scales.tmp"
extract "$base" > "${base}.scales.tmp"

fail=0
while read -r sessions new_ckpt new_speedup; do
  base_line=$(awk -v s="$sessions" '$1 == s' "${base}.scales.tmp")
  if [ -z "$base_line" ]; then
    echo "check_bench_regression: scale $sessions not in baseline; skipped"
    continue
  fi
  base_ckpt=$(echo "$base_line" | awk '{print $2}')
  verdict=$(awk -v n="$new_ckpt" -v b="$base_ckpt" -v p="$max_pct" \
                -v e="$eps_s" -v sp="$new_speedup" -v s="$sessions" '
    BEGIN {
      limit = b * (1 + p / 100) + e
      if (n > limit) {
        printf "REGRESSION scale %s: ckpt restart %.4fs vs baseline %.4fs (>%s%% + %.3fs slack)\n", s, n, b, p, e
      }
      if (s + 0 >= 1000000 && sp != "" && sp + 0 < 10) {
        printf "REGRESSION scale %s: speedup %.1fx is below the 10x bar\n", s, sp
      }
    }')
  if [ -n "$verdict" ]; then
    echo "$verdict" >&2
    fail=1
  else
    echo "ok scale $sessions: ckpt ${new_ckpt}s (baseline ${base_ckpt}s)"
  fi
done < "${new}.scales.tmp"

rm -f "${new}.scales.tmp" "${base}.scales.tmp"
exit "$fail"
