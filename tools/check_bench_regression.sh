#!/bin/sh
# Compares a fresh bench run against the committed baseline and fails on
# a >10% regression (plus a small absolute epsilon so millisecond-scale
# noise doesn't flake CI).
#
#   sh tools/check_bench_regression.sh NEW.json BASELINE.json [max_pct]
#
# Works on the one-scale-per-line format recovery_bench emits: each scale
# line carries "sessions", "full_open_s", "ckpt_open_s" and "speedup".
# Checks, per scale present in BOTH files:
#   - ckpt_open_s must not regress by more than max_pct (default 10%)
#   - speedup at >=1M sessions must stay >= 10x (the PR acceptance bar)

set -eu

new=${1:?usage: check_bench_regression.sh NEW.json BASELINE.json [max_pct]}
base=${2:?usage: check_bench_regression.sh NEW.json BASELINE.json [max_pct]}
max_pct=${3:-10}
eps_s=0.005  # absolute slack: ignore sub-5ms wobble

[ -f "$new" ] || { echo "check_bench_regression: missing $new" >&2; exit 2; }
[ -f "$base" ] || { echo "check_bench_regression: missing $base" >&2; exit 2; }

# "sessions ckpt_open_s speedup" per scale line.
extract() {
  awk -F'[:,]' '/"sessions"/ {
    sessions = ""; ckpt = ""; speedup = ""
    for (i = 1; i < NF; ++i) {
      if ($i ~ /"sessions"/) sessions = $(i + 1)
      if ($i ~ /"ckpt_open_s"/) ckpt = $(i + 1)
      if ($i ~ /"speedup"/) speedup = $(i + 1)
    }
    if (sessions != "" && ckpt != "") print sessions, ckpt, speedup
  }' "$1"
}

extract "$new" > "${new}.scales.tmp"
extract "$base" > "${base}.scales.tmp"

fail=0
while read -r sessions new_ckpt new_speedup; do
  base_line=$(awk -v s="$sessions" '$1 == s' "${base}.scales.tmp")
  if [ -z "$base_line" ]; then
    echo "check_bench_regression: scale $sessions not in baseline; skipped"
    continue
  fi
  base_ckpt=$(echo "$base_line" | awk '{print $2}')
  verdict=$(awk -v n="$new_ckpt" -v b="$base_ckpt" -v p="$max_pct" \
                -v e="$eps_s" -v sp="$new_speedup" -v s="$sessions" '
    BEGIN {
      limit = b * (1 + p / 100) + e
      if (n > limit) {
        printf "REGRESSION scale %s: ckpt restart %.4fs vs baseline %.4fs (>%s%% + %.3fs slack)\n", s, n, b, p, e
      }
      if (s + 0 >= 1000000 && sp != "" && sp + 0 < 10) {
        printf "REGRESSION scale %s: speedup %.1fx is below the 10x bar\n", s, sp
      }
    }')
  if [ -n "$verdict" ]; then
    echo "$verdict" >&2
    fail=1
  else
    echo "ok scale $sessions: ckpt ${new_ckpt}s (baseline ${base_ckpt}s)"
  fi
done < "${new}.scales.tmp"

rm -f "${new}.scales.tmp" "${base}.scales.tmp"
exit "$fail"
