/// obs_dump — end-to-end observability smoke driver.
///
/// Runs the full deployment loop on a simulated platform (offline crawl →
/// page visits → viewer sessions → refinement passes → Lightor::Process)
/// and dumps the metrics the run produced:
///
///   obs_dump [--channels=2] [--videos-per-channel=2] [--visits=4]
///            [--viewers=8] [--rounds=2] [--seed=7] [--top-k=5]
///            [--format=prometheus|json]        # stdout format
///            [--prometheus-out=FILE] [--json-out=FILE] [--trace-out=FILE]
///            [--trace-id=32HEX] [--requests-csv=FILE]
///            [--log-level=debug|info|warning|error]
///
/// The Chrome trace (--trace-out) loads in chrome://tracing / Perfetto;
/// --trace-id narrows it to one request's spans. The service calls run
/// as traced requests (sampled, so every one is retained), and
/// --requests-csv dumps the resulting wide-event request log — the same
/// rows `GET /debug/requests` serves — as CSV. The JSON export matches
/// the Prometheus text value-for-value.

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>

#include "common/flags.h"
#include "common/logging.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/request_log.h"
#include "obs/trace.h"
#include "obs/trace_context.h"
#include "serving/highlight_server.h"
#include "sim/bridge.h"
#include "sim/corpus.h"
#include "sim/viewer_simulator.h"
#include "storage/crawler.h"
#include "storage/database.h"

using namespace lightor;  // NOLINT

namespace {

int Fail(const common::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

/// Runs one service call as a traced request — generated trace context
/// (sampled, so tail sampling always retains it) and a span collector
/// installed for the call's duration, one wide event emitted after — the
/// same shape the HTTP front-end produces, so --requests-csv and
/// --trace-id work without a running server.
template <typename Fn>
auto TracedCall(const char* route, Fn&& fn) {
  const obs::TraceContext ctx = obs::GenerateTraceContext(/*sampled=*/true);
  obs::SpanCollector collector;
  const uint64_t start_us = obs::TraceNowMicros();
  auto result = [&] {
    obs::ScopedTraceContext guard(ctx, &collector);
    obs::ScopedStage stage(obs::Stage::kHandler);
    return fn();
  }();
  obs::WideEvent event;
  event.trace_hi = ctx.trace_hi;
  event.trace_lo = ctx.trace_lo;
  event.span_id = ctx.span_id;
  event.route = route;
  event.method = "CALL";
  event.status = result.ok() ? 200 : 500;
  event.start_us = start_us;
  event.total_us = obs::TraceNowMicros() - start_us;
  event.sampled_in = true;
  obs::RequestLog::Global().Emit(std::move(event), &collector);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const common::Flags flags = common::Flags::Parse(argc, argv);
  if (flags.Has("log-level") &&
      !common::SetLogLevelFromString(flags.GetString("log-level"))) {
    std::fprintf(stderr, "error: bad --log-level (debug|info|warning|error)\n");
    return 2;
  }

  sim::Platform::Options popts;
  popts.num_channels = static_cast<int>(flags.GetInt("channels", 2));
  popts.videos_per_channel =
      static_cast<int>(flags.GetInt("videos-per-channel", 2));
  popts.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  const int visits = static_cast<int>(flags.GetInt("visits", 4));
  const int viewers = static_cast<int>(flags.GetInt("viewers", 8));
  const int rounds = static_cast<int>(flags.GetInt("rounds", 2));
  const auto top_k = static_cast<size_t>(flags.GetInt("top-k", 5));

  sim::Platform platform(popts);

  const std::string db_dir =
      (std::filesystem::temp_directory_path() /
       ("lightor_obs_dump_" + std::to_string(popts.seed)))
          .string();
  std::filesystem::remove_all(db_dir);
  auto opened = storage::DB::Open(storage::OpenOptions(db_dir));
  if (!opened.ok()) return Fail(opened.status());
  auto db = std::move(opened.value().db);

  // Train on an out-of-platform corpus video, as in deployment.
  const auto corpus = sim::MakeCorpus(sim::GameType::kDota2, 1,
                                      popts.seed + 1000);
  core::TrainingVideo tv;
  tv.messages = sim::ToCoreMessages(corpus[0].chat);
  tv.video_length = corpus[0].truth.meta.length;
  for (const auto& h : corpus[0].truth.highlights) {
    tv.highlights.push_back(h.span);
  }
  core::LightorOptions lopts;
  lopts.top_k = top_k;
  core::Lightor lightor(lopts);
  if (auto st = lightor.TrainInitializer({tv}); !st.ok()) return Fail(st);

  // The concurrent server, with background refinement disabled
  // (refine_batch_sessions = 0) so each round's Refine runs exactly once
  // and the dump is deterministic. The serving-layer metrics still show
  // up (shard contention, refine latency, trigger=explicit / drain).
  serving::ServerOptions sopts;
  sopts.platform = serving::Borrow(&platform);
  sopts.db = serving::Borrow(db.get());
  sopts.lightor = serving::Borrow(&lightor);
  sopts.top_k = top_k;
  sopts.refine_batch_sessions = 0;
  auto server = serving::HighlightServer::Create(sopts);
  if (!server.ok()) return Fail(server.status());
  serving::HighlightServer& service = *server.value();

  {
    obs::ScopedSpan run_span("obs_dump.run");

    // Offline crawl of the most popular channel: later visits to its
    // videos hit the chat cache, visits elsewhere miss it.
    storage::Crawler crawler(&platform, db.get());
    if (auto n = crawler.CrawlChannel(platform.channels()[0].name, 2);
        !n.ok()) {
      return Fail(n.status());
    }

    const auto ids = platform.AllVideoIds();
    sim::ViewerSimulator viewer_sim;
    common::Rng rng(popts.seed + 1);
    uint64_t session_id = 0;
    for (int v = 0; v < visits && v < static_cast<int>(ids.size()); ++v) {
      const std::string& video_id = ids[static_cast<size_t>(v)];
      auto dots = TracedCall("visit", [&] {
        return service.OnPageVisit({video_id, "visitor"});
      });
      if (!dots.ok()) return Fail(dots.status());
      // A second visit is served from the highlight snapshot (cache hit).
      if (auto again = TracedCall("visit", [&] {
            return service.OnPageVisit({video_id, "visitor"});
          });
          !again.ok()) {
        return Fail(again.status());
      }
      const auto video = platform.GetVideo(video_id);
      if (!video.ok()) return Fail(video.status());
      for (int round = 0; round < rounds; ++round) {
        const auto current = TracedCall(
            "highlights", [&] { return service.GetHighlights(video_id); });
        if (!current.ok()) return Fail(current.status());
        for (const auto& dot : current.value().highlights) {
          for (int u = 0; u < viewers; ++u) {
            const auto session = viewer_sim.SimulateSession(
                video.value().truth, dot.dot_position, rng,
                "w" + std::to_string(session_id));
            serving::LogSessionRequest log;
            log.video_id = video_id;
            log.user = session.user;
            log.session_id = ++session_id;
            log.events = session.events;
            if (auto st = TracedCall("session",
                                     [&] { return service.LogSession(log); });
                !st.ok()) {
              return Fail(st);
            }
          }
        }
        if (auto report = TracedCall(
                "refine", [&] { return service.Refine(video_id); });
            !report.ok()) {
          return Fail(report.status());
        }
      }
    }
    service.Shutdown();  // drains; trigger="drain" metrics when pending

    // The batch path too: Lightor::Process leaves a full span tree
    // (Process → Initialize / Extract → extractor.Run) in the trace.
    auto processed = lightor.Process(
        tv.messages, tv.video_length, [&](const core::RedDot&) {
          return std::make_unique<sim::SimulatedCrowdProvider>(
              corpus[0].truth, sim::ViewerSimulator(), viewers, rng.Fork());
        });
    if (!processed.ok()) return Fail(processed.status());
  }

  const obs::RegistrySnapshot snapshot = obs::Registry::Global().Snapshot();
  const std::string prometheus = obs::ExportPrometheus(snapshot);
  const std::string json = obs::ExportJson(snapshot);

  if (const std::string path = flags.GetString("prometheus-out");
      !path.empty()) {
    if (auto st = obs::WriteFile(path, prometheus); !st.ok()) return Fail(st);
  }
  if (const std::string path = flags.GetString("json-out"); !path.empty()) {
    if (auto st = obs::WriteFile(path, json); !st.ok()) return Fail(st);
  }
  if (const std::string path = flags.GetString("trace-out"); !path.empty()) {
    if (const std::string trace_id = flags.GetString("trace-id");
        !trace_id.empty()) {
      uint64_t trace_hi = 0, trace_lo = 0;
      if (!obs::ParseTraceId(trace_id, &trace_hi, &trace_lo)) {
        std::fprintf(stderr,
                     "error: --trace-id must be 32 hex chars, non-zero\n");
        return 2;
      }
      const auto events =
          obs::TraceRecorder::Global().EventsForTrace(trace_hi, trace_lo);
      if (auto st = obs::WriteFile(path, obs::ChromeTraceJson(events));
          !st.ok()) {
        return Fail(st);
      }
      std::fprintf(stderr, "wrote %zu trace events for %s to %s\n",
                   events.size(), trace_id.c_str(), path.c_str());
    } else {
      if (auto st = obs::TraceRecorder::Global().WriteChromeTrace(path);
          !st.ok()) {
        return Fail(st);
      }
      std::fprintf(stderr, "wrote %zu trace events to %s\n",
                   obs::TraceRecorder::Global().size(), path.c_str());
    }
  }
  if (const std::string path = flags.GetString("requests-csv");
      !path.empty()) {
    // Recent() is newest-first; the CSV reads better oldest-first.
    auto events = obs::RequestLog::Global().Recent();
    std::string csv = obs::WideEventCsvHeader() + "\n";
    for (auto it = events.rbegin(); it != events.rend(); ++it) {
      csv += obs::EncodeWideEventCsv(*it);
      csv += "\n";
    }
    if (auto st = obs::WriteFile(path, csv); !st.ok()) return Fail(st);
    std::fprintf(stderr, "wrote %zu wide events to %s\n", events.size(),
                 path.c_str());
  }

  std::fputs(flags.GetString("format", "prometheus") == "json"
                 ? json.c_str()
                 : prometheus.c_str(),
             stdout);

  std::filesystem::remove_all(db_dir);
  return 0;
}
