file(REMOVE_RECURSE
  "CMakeFiles/baseline_showdown.dir/baseline_showdown.cpp.o"
  "CMakeFiles/baseline_showdown.dir/baseline_showdown.cpp.o.d"
  "baseline_showdown"
  "baseline_showdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_showdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
