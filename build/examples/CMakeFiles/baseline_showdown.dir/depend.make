# Empty dependencies file for baseline_showdown.
# This may be replaced when dependencies are built.
