# Empty compiler generated dependencies file for channel_dashboard.
# This may be replaced when dependencies are built.
