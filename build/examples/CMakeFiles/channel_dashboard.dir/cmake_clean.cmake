file(REMOVE_RECURSE
  "CMakeFiles/channel_dashboard.dir/channel_dashboard.cpp.o"
  "CMakeFiles/channel_dashboard.dir/channel_dashboard.cpp.o.d"
  "channel_dashboard"
  "channel_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/channel_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
