# Empty dependencies file for browser_extension_backend.
# This may be replaced when dependencies are built.
