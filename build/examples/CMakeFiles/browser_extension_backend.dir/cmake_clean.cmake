file(REMOVE_RECURSE
  "CMakeFiles/browser_extension_backend.dir/browser_extension_backend.cpp.o"
  "CMakeFiles/browser_extension_backend.dir/browser_extension_backend.cpp.o.d"
  "browser_extension_backend"
  "browser_extension_backend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/browser_extension_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
