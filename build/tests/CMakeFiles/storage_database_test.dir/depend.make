# Empty dependencies file for storage_database_test.
# This may be replaced when dependencies are built.
