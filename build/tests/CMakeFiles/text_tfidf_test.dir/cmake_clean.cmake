file(REMOVE_RECURSE
  "CMakeFiles/text_tfidf_test.dir/text_tfidf_test.cc.o"
  "CMakeFiles/text_tfidf_test.dir/text_tfidf_test.cc.o.d"
  "text_tfidf_test"
  "text_tfidf_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_tfidf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
