file(REMOVE_RECURSE
  "CMakeFiles/sim_video_test.dir/sim_video_test.cc.o"
  "CMakeFiles/sim_video_test.dir/sim_video_test.cc.o.d"
  "sim_video_test"
  "sim_video_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_video_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
