# Empty compiler generated dependencies file for sim_video_test.
# This may be replaced when dependencies are built.
