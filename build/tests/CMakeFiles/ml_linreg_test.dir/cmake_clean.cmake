file(REMOVE_RECURSE
  "CMakeFiles/ml_linreg_test.dir/ml_linreg_test.cc.o"
  "CMakeFiles/ml_linreg_test.dir/ml_linreg_test.cc.o.d"
  "ml_linreg_test"
  "ml_linreg_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_linreg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
