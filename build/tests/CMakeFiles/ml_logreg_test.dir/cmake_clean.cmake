file(REMOVE_RECURSE
  "CMakeFiles/ml_logreg_test.dir/ml_logreg_test.cc.o"
  "CMakeFiles/ml_logreg_test.dir/ml_logreg_test.cc.o.d"
  "ml_logreg_test"
  "ml_logreg_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_logreg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
