# Empty compiler generated dependencies file for ml_logreg_test.
# This may be replaced when dependencies are built.
