# Empty dependencies file for ml_lstm_test.
# This may be replaced when dependencies are built.
