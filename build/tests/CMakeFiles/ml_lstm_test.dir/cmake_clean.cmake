file(REMOVE_RECURSE
  "CMakeFiles/ml_lstm_test.dir/ml_lstm_test.cc.o"
  "CMakeFiles/ml_lstm_test.dir/ml_lstm_test.cc.o.d"
  "ml_lstm_test"
  "ml_lstm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_lstm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
