file(REMOVE_RECURSE
  "CMakeFiles/core_lightor_test.dir/core_lightor_test.cc.o"
  "CMakeFiles/core_lightor_test.dir/core_lightor_test.cc.o.d"
  "core_lightor_test"
  "core_lightor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_lightor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
