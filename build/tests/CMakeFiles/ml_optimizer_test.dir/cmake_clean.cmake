file(REMOVE_RECURSE
  "CMakeFiles/ml_optimizer_test.dir/ml_optimizer_test.cc.o"
  "CMakeFiles/ml_optimizer_test.dir/ml_optimizer_test.cc.o.d"
  "ml_optimizer_test"
  "ml_optimizer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_optimizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
