# Empty dependencies file for storage_compaction_test.
# This may be replaced when dependencies are built.
