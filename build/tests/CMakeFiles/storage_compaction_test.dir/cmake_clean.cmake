file(REMOVE_RECURSE
  "CMakeFiles/storage_compaction_test.dir/storage_compaction_test.cc.o"
  "CMakeFiles/storage_compaction_test.dir/storage_compaction_test.cc.o.d"
  "storage_compaction_test"
  "storage_compaction_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_compaction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
