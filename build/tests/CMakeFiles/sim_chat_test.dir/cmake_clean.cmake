file(REMOVE_RECURSE
  "CMakeFiles/sim_chat_test.dir/sim_chat_test.cc.o"
  "CMakeFiles/sim_chat_test.dir/sim_chat_test.cc.o.d"
  "sim_chat_test"
  "sim_chat_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_chat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
