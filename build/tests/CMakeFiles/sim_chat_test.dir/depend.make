# Empty dependencies file for sim_chat_test.
# This may be replaced when dependencies are built.
