file(REMOVE_RECURSE
  "CMakeFiles/baselines_curves_test.dir/baselines_curves_test.cc.o"
  "CMakeFiles/baselines_curves_test.dir/baselines_curves_test.cc.o.d"
  "baselines_curves_test"
  "baselines_curves_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_curves_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
