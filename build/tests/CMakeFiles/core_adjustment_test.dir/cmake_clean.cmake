file(REMOVE_RECURSE
  "CMakeFiles/core_adjustment_test.dir/core_adjustment_test.cc.o"
  "CMakeFiles/core_adjustment_test.dir/core_adjustment_test.cc.o.d"
  "core_adjustment_test"
  "core_adjustment_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_adjustment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
