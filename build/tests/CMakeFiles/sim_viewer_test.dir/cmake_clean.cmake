file(REMOVE_RECURSE
  "CMakeFiles/sim_viewer_test.dir/sim_viewer_test.cc.o"
  "CMakeFiles/sim_viewer_test.dir/sim_viewer_test.cc.o.d"
  "sim_viewer_test"
  "sim_viewer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_viewer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
