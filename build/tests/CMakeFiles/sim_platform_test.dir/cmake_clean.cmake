file(REMOVE_RECURSE
  "CMakeFiles/sim_platform_test.dir/sim_platform_test.cc.o"
  "CMakeFiles/sim_platform_test.dir/sim_platform_test.cc.o.d"
  "sim_platform_test"
  "sim_platform_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_platform_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
