file(REMOVE_RECURSE
  "CMakeFiles/storage_serialize_test.dir/storage_serialize_test.cc.o"
  "CMakeFiles/storage_serialize_test.dir/storage_serialize_test.cc.o.d"
  "storage_serialize_test"
  "storage_serialize_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_serialize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
