# Empty compiler generated dependencies file for storage_serialize_test.
# This may be replaced when dependencies are built.
