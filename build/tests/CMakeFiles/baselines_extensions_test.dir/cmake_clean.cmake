file(REMOVE_RECURSE
  "CMakeFiles/baselines_extensions_test.dir/baselines_extensions_test.cc.o"
  "CMakeFiles/baselines_extensions_test.dir/baselines_extensions_test.cc.o.d"
  "baselines_extensions_test"
  "baselines_extensions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
