# Empty compiler generated dependencies file for baselines_extensions_test.
# This may be replaced when dependencies are built.
