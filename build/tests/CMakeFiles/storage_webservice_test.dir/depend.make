# Empty dependencies file for storage_webservice_test.
# This may be replaced when dependencies are built.
