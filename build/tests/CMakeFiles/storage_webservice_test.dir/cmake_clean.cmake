file(REMOVE_RECURSE
  "CMakeFiles/storage_webservice_test.dir/storage_webservice_test.cc.o"
  "CMakeFiles/storage_webservice_test.dir/storage_webservice_test.cc.o.d"
  "storage_webservice_test"
  "storage_webservice_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_webservice_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
