file(REMOVE_RECURSE
  "CMakeFiles/ml_gru_test.dir/ml_gru_test.cc.o"
  "CMakeFiles/ml_gru_test.dir/ml_gru_test.cc.o.d"
  "ml_gru_test"
  "ml_gru_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_gru_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
