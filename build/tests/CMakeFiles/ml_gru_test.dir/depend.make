# Empty dependencies file for ml_gru_test.
# This may be replaced when dependencies are built.
