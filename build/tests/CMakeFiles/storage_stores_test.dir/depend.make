# Empty dependencies file for storage_stores_test.
# This may be replaced when dependencies are built.
