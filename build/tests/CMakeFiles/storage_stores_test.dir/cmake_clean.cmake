file(REMOVE_RECURSE
  "CMakeFiles/storage_stores_test.dir/storage_stores_test.cc.o"
  "CMakeFiles/storage_stores_test.dir/storage_stores_test.cc.o.d"
  "storage_stores_test"
  "storage_stores_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_stores_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
