# Empty compiler generated dependencies file for baselines_lstm_test.
# This may be replaced when dependencies are built.
