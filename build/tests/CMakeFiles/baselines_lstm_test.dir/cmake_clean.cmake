file(REMOVE_RECURSE
  "CMakeFiles/baselines_lstm_test.dir/baselines_lstm_test.cc.o"
  "CMakeFiles/baselines_lstm_test.dir/baselines_lstm_test.cc.o.d"
  "baselines_lstm_test"
  "baselines_lstm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_lstm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
