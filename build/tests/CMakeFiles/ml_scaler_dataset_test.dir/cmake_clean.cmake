file(REMOVE_RECURSE
  "CMakeFiles/ml_scaler_dataset_test.dir/ml_scaler_dataset_test.cc.o"
  "CMakeFiles/ml_scaler_dataset_test.dir/ml_scaler_dataset_test.cc.o.d"
  "ml_scaler_dataset_test"
  "ml_scaler_dataset_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_scaler_dataset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
