file(REMOVE_RECURSE
  "CMakeFiles/core_initializer_test.dir/core_initializer_test.cc.o"
  "CMakeFiles/core_initializer_test.dir/core_initializer_test.cc.o.d"
  "core_initializer_test"
  "core_initializer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_initializer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
