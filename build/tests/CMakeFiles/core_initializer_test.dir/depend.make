# Empty dependencies file for core_initializer_test.
# This may be replaced when dependencies are built.
