# Empty compiler generated dependencies file for storage_log_test.
# This may be replaced when dependencies are built.
