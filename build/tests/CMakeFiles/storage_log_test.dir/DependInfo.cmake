
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/storage_log_test.cc" "tests/CMakeFiles/storage_log_test.dir/storage_log_test.cc.o" "gcc" "tests/CMakeFiles/storage_log_test.dir/storage_log_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lightor_common.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/lightor_text.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/lightor_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lightor_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lightor_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/lightor_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/lightor_baselines.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
