file(REMOVE_RECURSE
  "CMakeFiles/text_vectorizer_test.dir/text_vectorizer_test.cc.o"
  "CMakeFiles/text_vectorizer_test.dir/text_vectorizer_test.cc.o.d"
  "text_vectorizer_test"
  "text_vectorizer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_vectorizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
