# Empty compiler generated dependencies file for text_vectorizer_test.
# This may be replaced when dependencies are built.
