file(REMOVE_RECURSE
  "CMakeFiles/lightor_core.dir/adjustment.cc.o"
  "CMakeFiles/lightor_core.dir/adjustment.cc.o.d"
  "CMakeFiles/lightor_core.dir/evaluation.cc.o"
  "CMakeFiles/lightor_core.dir/evaluation.cc.o.d"
  "CMakeFiles/lightor_core.dir/extractor.cc.o"
  "CMakeFiles/lightor_core.dir/extractor.cc.o.d"
  "CMakeFiles/lightor_core.dir/features.cc.o"
  "CMakeFiles/lightor_core.dir/features.cc.o.d"
  "CMakeFiles/lightor_core.dir/initializer.cc.o"
  "CMakeFiles/lightor_core.dir/initializer.cc.o.d"
  "CMakeFiles/lightor_core.dir/lightor.cc.o"
  "CMakeFiles/lightor_core.dir/lightor.cc.o.d"
  "CMakeFiles/lightor_core.dir/model_io.cc.o"
  "CMakeFiles/lightor_core.dir/model_io.cc.o.d"
  "CMakeFiles/lightor_core.dir/window.cc.o"
  "CMakeFiles/lightor_core.dir/window.cc.o.d"
  "liblightor_core.a"
  "liblightor_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lightor_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
