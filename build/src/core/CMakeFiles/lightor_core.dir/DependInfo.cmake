
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adjustment.cc" "src/core/CMakeFiles/lightor_core.dir/adjustment.cc.o" "gcc" "src/core/CMakeFiles/lightor_core.dir/adjustment.cc.o.d"
  "/root/repo/src/core/evaluation.cc" "src/core/CMakeFiles/lightor_core.dir/evaluation.cc.o" "gcc" "src/core/CMakeFiles/lightor_core.dir/evaluation.cc.o.d"
  "/root/repo/src/core/extractor.cc" "src/core/CMakeFiles/lightor_core.dir/extractor.cc.o" "gcc" "src/core/CMakeFiles/lightor_core.dir/extractor.cc.o.d"
  "/root/repo/src/core/features.cc" "src/core/CMakeFiles/lightor_core.dir/features.cc.o" "gcc" "src/core/CMakeFiles/lightor_core.dir/features.cc.o.d"
  "/root/repo/src/core/initializer.cc" "src/core/CMakeFiles/lightor_core.dir/initializer.cc.o" "gcc" "src/core/CMakeFiles/lightor_core.dir/initializer.cc.o.d"
  "/root/repo/src/core/lightor.cc" "src/core/CMakeFiles/lightor_core.dir/lightor.cc.o" "gcc" "src/core/CMakeFiles/lightor_core.dir/lightor.cc.o.d"
  "/root/repo/src/core/model_io.cc" "src/core/CMakeFiles/lightor_core.dir/model_io.cc.o" "gcc" "src/core/CMakeFiles/lightor_core.dir/model_io.cc.o.d"
  "/root/repo/src/core/window.cc" "src/core/CMakeFiles/lightor_core.dir/window.cc.o" "gcc" "src/core/CMakeFiles/lightor_core.dir/window.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lightor_common.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/lightor_text.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/lightor_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
