# Empty compiler generated dependencies file for lightor_core.
# This may be replaced when dependencies are built.
