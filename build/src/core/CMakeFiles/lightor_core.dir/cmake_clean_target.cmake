file(REMOVE_RECURSE
  "liblightor_core.a"
)
