# Empty dependencies file for lightor_storage.
# This may be replaced when dependencies are built.
