file(REMOVE_RECURSE
  "liblightor_storage.a"
)
