file(REMOVE_RECURSE
  "CMakeFiles/lightor_storage.dir/crawler.cc.o"
  "CMakeFiles/lightor_storage.dir/crawler.cc.o.d"
  "CMakeFiles/lightor_storage.dir/database.cc.o"
  "CMakeFiles/lightor_storage.dir/database.cc.o.d"
  "CMakeFiles/lightor_storage.dir/log.cc.o"
  "CMakeFiles/lightor_storage.dir/log.cc.o.d"
  "CMakeFiles/lightor_storage.dir/record.cc.o"
  "CMakeFiles/lightor_storage.dir/record.cc.o.d"
  "CMakeFiles/lightor_storage.dir/serialize.cc.o"
  "CMakeFiles/lightor_storage.dir/serialize.cc.o.d"
  "CMakeFiles/lightor_storage.dir/stores.cc.o"
  "CMakeFiles/lightor_storage.dir/stores.cc.o.d"
  "CMakeFiles/lightor_storage.dir/web_service.cc.o"
  "CMakeFiles/lightor_storage.dir/web_service.cc.o.d"
  "liblightor_storage.a"
  "liblightor_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lightor_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
