
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/crawler.cc" "src/storage/CMakeFiles/lightor_storage.dir/crawler.cc.o" "gcc" "src/storage/CMakeFiles/lightor_storage.dir/crawler.cc.o.d"
  "/root/repo/src/storage/database.cc" "src/storage/CMakeFiles/lightor_storage.dir/database.cc.o" "gcc" "src/storage/CMakeFiles/lightor_storage.dir/database.cc.o.d"
  "/root/repo/src/storage/log.cc" "src/storage/CMakeFiles/lightor_storage.dir/log.cc.o" "gcc" "src/storage/CMakeFiles/lightor_storage.dir/log.cc.o.d"
  "/root/repo/src/storage/record.cc" "src/storage/CMakeFiles/lightor_storage.dir/record.cc.o" "gcc" "src/storage/CMakeFiles/lightor_storage.dir/record.cc.o.d"
  "/root/repo/src/storage/serialize.cc" "src/storage/CMakeFiles/lightor_storage.dir/serialize.cc.o" "gcc" "src/storage/CMakeFiles/lightor_storage.dir/serialize.cc.o.d"
  "/root/repo/src/storage/stores.cc" "src/storage/CMakeFiles/lightor_storage.dir/stores.cc.o" "gcc" "src/storage/CMakeFiles/lightor_storage.dir/stores.cc.o.d"
  "/root/repo/src/storage/web_service.cc" "src/storage/CMakeFiles/lightor_storage.dir/web_service.cc.o" "gcc" "src/storage/CMakeFiles/lightor_storage.dir/web_service.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lightor_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lightor_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lightor_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/lightor_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/lightor_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
