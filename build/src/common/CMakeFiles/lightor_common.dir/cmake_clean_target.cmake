file(REMOVE_RECURSE
  "liblightor_common.a"
)
