# Empty compiler generated dependencies file for lightor_common.
# This may be replaced when dependencies are built.
