file(REMOVE_RECURSE
  "CMakeFiles/lightor_common.dir/csv.cc.o"
  "CMakeFiles/lightor_common.dir/csv.cc.o.d"
  "CMakeFiles/lightor_common.dir/flags.cc.o"
  "CMakeFiles/lightor_common.dir/flags.cc.o.d"
  "CMakeFiles/lightor_common.dir/logging.cc.o"
  "CMakeFiles/lightor_common.dir/logging.cc.o.d"
  "CMakeFiles/lightor_common.dir/parallel.cc.o"
  "CMakeFiles/lightor_common.dir/parallel.cc.o.d"
  "CMakeFiles/lightor_common.dir/rng.cc.o"
  "CMakeFiles/lightor_common.dir/rng.cc.o.d"
  "CMakeFiles/lightor_common.dir/stats.cc.o"
  "CMakeFiles/lightor_common.dir/stats.cc.o.d"
  "CMakeFiles/lightor_common.dir/status.cc.o"
  "CMakeFiles/lightor_common.dir/status.cc.o.d"
  "CMakeFiles/lightor_common.dir/strings.cc.o"
  "CMakeFiles/lightor_common.dir/strings.cc.o.d"
  "liblightor_common.a"
  "liblightor_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lightor_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
