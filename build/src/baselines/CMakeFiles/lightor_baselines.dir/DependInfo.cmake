
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/bootstrapped_lstm.cc" "src/baselines/CMakeFiles/lightor_baselines.dir/bootstrapped_lstm.cc.o" "gcc" "src/baselines/CMakeFiles/lightor_baselines.dir/bootstrapped_lstm.cc.o.d"
  "/root/repo/src/baselines/chat_lstm.cc" "src/baselines/CMakeFiles/lightor_baselines.dir/chat_lstm.cc.o" "gcc" "src/baselines/CMakeFiles/lightor_baselines.dir/chat_lstm.cc.o.d"
  "/root/repo/src/baselines/joint_lstm.cc" "src/baselines/CMakeFiles/lightor_baselines.dir/joint_lstm.cc.o" "gcc" "src/baselines/CMakeFiles/lightor_baselines.dir/joint_lstm.cc.o.d"
  "/root/repo/src/baselines/moocer.cc" "src/baselines/CMakeFiles/lightor_baselines.dir/moocer.cc.o" "gcc" "src/baselines/CMakeFiles/lightor_baselines.dir/moocer.cc.o.d"
  "/root/repo/src/baselines/naive_top_count.cc" "src/baselines/CMakeFiles/lightor_baselines.dir/naive_top_count.cc.o" "gcc" "src/baselines/CMakeFiles/lightor_baselines.dir/naive_top_count.cc.o.d"
  "/root/repo/src/baselines/socialskip.cc" "src/baselines/CMakeFiles/lightor_baselines.dir/socialskip.cc.o" "gcc" "src/baselines/CMakeFiles/lightor_baselines.dir/socialskip.cc.o.d"
  "/root/repo/src/baselines/toretter.cc" "src/baselines/CMakeFiles/lightor_baselines.dir/toretter.cc.o" "gcc" "src/baselines/CMakeFiles/lightor_baselines.dir/toretter.cc.o.d"
  "/root/repo/src/baselines/video_features.cc" "src/baselines/CMakeFiles/lightor_baselines.dir/video_features.cc.o" "gcc" "src/baselines/CMakeFiles/lightor_baselines.dir/video_features.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lightor_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lightor_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/lightor_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lightor_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/lightor_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
