# Empty compiler generated dependencies file for lightor_baselines.
# This may be replaced when dependencies are built.
