file(REMOVE_RECURSE
  "liblightor_baselines.a"
)
