file(REMOVE_RECURSE
  "CMakeFiles/lightor_baselines.dir/bootstrapped_lstm.cc.o"
  "CMakeFiles/lightor_baselines.dir/bootstrapped_lstm.cc.o.d"
  "CMakeFiles/lightor_baselines.dir/chat_lstm.cc.o"
  "CMakeFiles/lightor_baselines.dir/chat_lstm.cc.o.d"
  "CMakeFiles/lightor_baselines.dir/joint_lstm.cc.o"
  "CMakeFiles/lightor_baselines.dir/joint_lstm.cc.o.d"
  "CMakeFiles/lightor_baselines.dir/moocer.cc.o"
  "CMakeFiles/lightor_baselines.dir/moocer.cc.o.d"
  "CMakeFiles/lightor_baselines.dir/naive_top_count.cc.o"
  "CMakeFiles/lightor_baselines.dir/naive_top_count.cc.o.d"
  "CMakeFiles/lightor_baselines.dir/socialskip.cc.o"
  "CMakeFiles/lightor_baselines.dir/socialskip.cc.o.d"
  "CMakeFiles/lightor_baselines.dir/toretter.cc.o"
  "CMakeFiles/lightor_baselines.dir/toretter.cc.o.d"
  "CMakeFiles/lightor_baselines.dir/video_features.cc.o"
  "CMakeFiles/lightor_baselines.dir/video_features.cc.o.d"
  "liblightor_baselines.a"
  "liblightor_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lightor_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
