# Empty compiler generated dependencies file for lightor_sim.
# This may be replaced when dependencies are built.
