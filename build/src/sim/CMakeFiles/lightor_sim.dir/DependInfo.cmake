
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/bridge.cc" "src/sim/CMakeFiles/lightor_sim.dir/bridge.cc.o" "gcc" "src/sim/CMakeFiles/lightor_sim.dir/bridge.cc.o.d"
  "/root/repo/src/sim/chat_simulator.cc" "src/sim/CMakeFiles/lightor_sim.dir/chat_simulator.cc.o" "gcc" "src/sim/CMakeFiles/lightor_sim.dir/chat_simulator.cc.o.d"
  "/root/repo/src/sim/corpus.cc" "src/sim/CMakeFiles/lightor_sim.dir/corpus.cc.o" "gcc" "src/sim/CMakeFiles/lightor_sim.dir/corpus.cc.o.d"
  "/root/repo/src/sim/game_profile.cc" "src/sim/CMakeFiles/lightor_sim.dir/game_profile.cc.o" "gcc" "src/sim/CMakeFiles/lightor_sim.dir/game_profile.cc.o.d"
  "/root/repo/src/sim/platform.cc" "src/sim/CMakeFiles/lightor_sim.dir/platform.cc.o" "gcc" "src/sim/CMakeFiles/lightor_sim.dir/platform.cc.o.d"
  "/root/repo/src/sim/trace_io.cc" "src/sim/CMakeFiles/lightor_sim.dir/trace_io.cc.o" "gcc" "src/sim/CMakeFiles/lightor_sim.dir/trace_io.cc.o.d"
  "/root/repo/src/sim/video_generator.cc" "src/sim/CMakeFiles/lightor_sim.dir/video_generator.cc.o" "gcc" "src/sim/CMakeFiles/lightor_sim.dir/video_generator.cc.o.d"
  "/root/repo/src/sim/viewer_simulator.cc" "src/sim/CMakeFiles/lightor_sim.dir/viewer_simulator.cc.o" "gcc" "src/sim/CMakeFiles/lightor_sim.dir/viewer_simulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lightor_common.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/lightor_text.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lightor_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/lightor_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
