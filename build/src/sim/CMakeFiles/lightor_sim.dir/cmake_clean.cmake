file(REMOVE_RECURSE
  "CMakeFiles/lightor_sim.dir/bridge.cc.o"
  "CMakeFiles/lightor_sim.dir/bridge.cc.o.d"
  "CMakeFiles/lightor_sim.dir/chat_simulator.cc.o"
  "CMakeFiles/lightor_sim.dir/chat_simulator.cc.o.d"
  "CMakeFiles/lightor_sim.dir/corpus.cc.o"
  "CMakeFiles/lightor_sim.dir/corpus.cc.o.d"
  "CMakeFiles/lightor_sim.dir/game_profile.cc.o"
  "CMakeFiles/lightor_sim.dir/game_profile.cc.o.d"
  "CMakeFiles/lightor_sim.dir/platform.cc.o"
  "CMakeFiles/lightor_sim.dir/platform.cc.o.d"
  "CMakeFiles/lightor_sim.dir/trace_io.cc.o"
  "CMakeFiles/lightor_sim.dir/trace_io.cc.o.d"
  "CMakeFiles/lightor_sim.dir/video_generator.cc.o"
  "CMakeFiles/lightor_sim.dir/video_generator.cc.o.d"
  "CMakeFiles/lightor_sim.dir/viewer_simulator.cc.o"
  "CMakeFiles/lightor_sim.dir/viewer_simulator.cc.o.d"
  "liblightor_sim.a"
  "liblightor_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lightor_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
