file(REMOVE_RECURSE
  "liblightor_sim.a"
)
