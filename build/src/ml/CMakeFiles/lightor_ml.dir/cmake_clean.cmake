file(REMOVE_RECURSE
  "CMakeFiles/lightor_ml.dir/dataset.cc.o"
  "CMakeFiles/lightor_ml.dir/dataset.cc.o.d"
  "CMakeFiles/lightor_ml.dir/gru.cc.o"
  "CMakeFiles/lightor_ml.dir/gru.cc.o.d"
  "CMakeFiles/lightor_ml.dir/linear_regression.cc.o"
  "CMakeFiles/lightor_ml.dir/linear_regression.cc.o.d"
  "CMakeFiles/lightor_ml.dir/logistic_regression.cc.o"
  "CMakeFiles/lightor_ml.dir/logistic_regression.cc.o.d"
  "CMakeFiles/lightor_ml.dir/lstm.cc.o"
  "CMakeFiles/lightor_ml.dir/lstm.cc.o.d"
  "CMakeFiles/lightor_ml.dir/matrix.cc.o"
  "CMakeFiles/lightor_ml.dir/matrix.cc.o.d"
  "CMakeFiles/lightor_ml.dir/metrics.cc.o"
  "CMakeFiles/lightor_ml.dir/metrics.cc.o.d"
  "CMakeFiles/lightor_ml.dir/optimizer.cc.o"
  "CMakeFiles/lightor_ml.dir/optimizer.cc.o.d"
  "CMakeFiles/lightor_ml.dir/scaler.cc.o"
  "CMakeFiles/lightor_ml.dir/scaler.cc.o.d"
  "liblightor_ml.a"
  "liblightor_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lightor_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
