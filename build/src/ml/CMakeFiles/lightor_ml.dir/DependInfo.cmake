
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/dataset.cc" "src/ml/CMakeFiles/lightor_ml.dir/dataset.cc.o" "gcc" "src/ml/CMakeFiles/lightor_ml.dir/dataset.cc.o.d"
  "/root/repo/src/ml/gru.cc" "src/ml/CMakeFiles/lightor_ml.dir/gru.cc.o" "gcc" "src/ml/CMakeFiles/lightor_ml.dir/gru.cc.o.d"
  "/root/repo/src/ml/linear_regression.cc" "src/ml/CMakeFiles/lightor_ml.dir/linear_regression.cc.o" "gcc" "src/ml/CMakeFiles/lightor_ml.dir/linear_regression.cc.o.d"
  "/root/repo/src/ml/logistic_regression.cc" "src/ml/CMakeFiles/lightor_ml.dir/logistic_regression.cc.o" "gcc" "src/ml/CMakeFiles/lightor_ml.dir/logistic_regression.cc.o.d"
  "/root/repo/src/ml/lstm.cc" "src/ml/CMakeFiles/lightor_ml.dir/lstm.cc.o" "gcc" "src/ml/CMakeFiles/lightor_ml.dir/lstm.cc.o.d"
  "/root/repo/src/ml/matrix.cc" "src/ml/CMakeFiles/lightor_ml.dir/matrix.cc.o" "gcc" "src/ml/CMakeFiles/lightor_ml.dir/matrix.cc.o.d"
  "/root/repo/src/ml/metrics.cc" "src/ml/CMakeFiles/lightor_ml.dir/metrics.cc.o" "gcc" "src/ml/CMakeFiles/lightor_ml.dir/metrics.cc.o.d"
  "/root/repo/src/ml/optimizer.cc" "src/ml/CMakeFiles/lightor_ml.dir/optimizer.cc.o" "gcc" "src/ml/CMakeFiles/lightor_ml.dir/optimizer.cc.o.d"
  "/root/repo/src/ml/scaler.cc" "src/ml/CMakeFiles/lightor_ml.dir/scaler.cc.o" "gcc" "src/ml/CMakeFiles/lightor_ml.dir/scaler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lightor_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
