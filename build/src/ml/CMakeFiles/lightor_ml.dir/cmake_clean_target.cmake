file(REMOVE_RECURSE
  "liblightor_ml.a"
)
