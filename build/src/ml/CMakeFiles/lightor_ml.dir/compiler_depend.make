# Empty compiler generated dependencies file for lightor_ml.
# This may be replaced when dependencies are built.
