file(REMOVE_RECURSE
  "liblightor_text.a"
)
