# Empty compiler generated dependencies file for lightor_text.
# This may be replaced when dependencies are built.
