file(REMOVE_RECURSE
  "CMakeFiles/lightor_text.dir/embedding.cc.o"
  "CMakeFiles/lightor_text.dir/embedding.cc.o.d"
  "CMakeFiles/lightor_text.dir/emotes.cc.o"
  "CMakeFiles/lightor_text.dir/emotes.cc.o.d"
  "CMakeFiles/lightor_text.dir/similarity.cc.o"
  "CMakeFiles/lightor_text.dir/similarity.cc.o.d"
  "CMakeFiles/lightor_text.dir/tfidf.cc.o"
  "CMakeFiles/lightor_text.dir/tfidf.cc.o.d"
  "CMakeFiles/lightor_text.dir/tokenizer.cc.o"
  "CMakeFiles/lightor_text.dir/tokenizer.cc.o.d"
  "CMakeFiles/lightor_text.dir/vectorizer.cc.o"
  "CMakeFiles/lightor_text.dir/vectorizer.cc.o.d"
  "CMakeFiles/lightor_text.dir/vocabulary.cc.o"
  "CMakeFiles/lightor_text.dir/vocabulary.cc.o.d"
  "liblightor_text.a"
  "liblightor_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lightor_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
