file(REMOVE_RECURSE
  "CMakeFiles/lightor.dir/lightor_cli.cc.o"
  "CMakeFiles/lightor.dir/lightor_cli.cc.o.d"
  "lightor"
  "lightor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lightor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
