# Empty dependencies file for lightor.
# This may be replaced when dependencies are built.
