# Empty compiler generated dependencies file for lightor.
# This may be replaced when dependencies are built.
