file(REMOVE_RECURSE
  "CMakeFiles/fig9_applicability.dir/fig9_applicability.cc.o"
  "CMakeFiles/fig9_applicability.dir/fig9_applicability.cc.o.d"
  "fig9_applicability"
  "fig9_applicability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_applicability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
