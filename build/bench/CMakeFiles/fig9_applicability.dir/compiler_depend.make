# Empty compiler generated dependencies file for fig9_applicability.
# This may be replaced when dependencies are built.
