file(REMOVE_RECURSE
  "CMakeFiles/fig8_extractor.dir/fig8_extractor.cc.o"
  "CMakeFiles/fig8_extractor.dir/fig8_extractor.cc.o.d"
  "fig8_extractor"
  "fig8_extractor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_extractor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
