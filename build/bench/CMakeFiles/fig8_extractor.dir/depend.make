# Empty dependencies file for fig8_extractor.
# This may be replaced when dependencies are built.
