# Empty dependencies file for ablation_rnn.
# This may be replaced when dependencies are built.
