file(REMOVE_RECURSE
  "CMakeFiles/ablation_rnn.dir/ablation_rnn.cc.o"
  "CMakeFiles/ablation_rnn.dir/ablation_rnn.cc.o.d"
  "ablation_rnn"
  "ablation_rnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
