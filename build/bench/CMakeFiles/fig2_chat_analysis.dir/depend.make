# Empty dependencies file for fig2_chat_analysis.
# This may be replaced when dependencies are built.
