# Empty dependencies file for future_bootstrap.
# This may be replaced when dependencies are built.
