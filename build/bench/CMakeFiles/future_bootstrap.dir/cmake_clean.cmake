file(REMOVE_RECURSE
  "CMakeFiles/future_bootstrap.dir/future_bootstrap.cc.o"
  "CMakeFiles/future_bootstrap.dir/future_bootstrap.cc.o.d"
  "future_bootstrap"
  "future_bootstrap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/future_bootstrap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
