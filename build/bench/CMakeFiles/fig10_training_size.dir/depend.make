# Empty dependencies file for fig10_training_size.
# This may be replaced when dependencies are built.
