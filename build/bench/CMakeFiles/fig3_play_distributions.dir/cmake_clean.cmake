file(REMOVE_RECURSE
  "CMakeFiles/fig3_play_distributions.dir/fig3_play_distributions.cc.o"
  "CMakeFiles/fig3_play_distributions.dir/fig3_play_distributions.cc.o.d"
  "fig3_play_distributions"
  "fig3_play_distributions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_play_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
