# Empty dependencies file for fig3_play_distributions.
# This may be replaced when dependencies are built.
