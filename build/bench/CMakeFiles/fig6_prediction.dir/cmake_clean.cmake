file(REMOVE_RECURSE
  "CMakeFiles/fig6_prediction.dir/fig6_prediction.cc.o"
  "CMakeFiles/fig6_prediction.dir/fig6_prediction.cc.o.d"
  "fig6_prediction"
  "fig6_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
