file(REMOVE_RECURSE
  "CMakeFiles/fig7_adjustment.dir/fig7_adjustment.cc.o"
  "CMakeFiles/fig7_adjustment.dir/fig7_adjustment.cc.o.d"
  "fig7_adjustment"
  "fig7_adjustment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_adjustment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
