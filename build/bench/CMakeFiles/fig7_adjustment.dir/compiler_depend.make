# Empty compiler generated dependencies file for fig7_adjustment.
# This may be replaced when dependencies are built.
