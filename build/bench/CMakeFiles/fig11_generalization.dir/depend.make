# Empty dependencies file for fig11_generalization.
# This may be replaced when dependencies are built.
