file(REMOVE_RECURSE
  "CMakeFiles/fig11_generalization.dir/fig11_generalization.cc.o"
  "CMakeFiles/fig11_generalization.dir/fig11_generalization.cc.o.d"
  "fig11_generalization"
  "fig11_generalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_generalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
