# Empty dependencies file for table1_end_to_end.
# This may be replaced when dependencies are built.
