#include "ml/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace lightor::ml {

double ConfusionMatrix::Accuracy() const {
  const size_t n = total();
  if (n == 0) return 0.0;
  return static_cast<double>(true_positive + true_negative) /
         static_cast<double>(n);
}

double ConfusionMatrix::Precision() const {
  const size_t denom = true_positive + false_positive;
  if (denom == 0) return 0.0;
  return static_cast<double>(true_positive) / static_cast<double>(denom);
}

double ConfusionMatrix::Recall() const {
  const size_t denom = true_positive + false_negative;
  if (denom == 0) return 0.0;
  return static_cast<double>(true_positive) / static_cast<double>(denom);
}

double ConfusionMatrix::F1() const {
  const double p = Precision();
  const double r = Recall();
  if (p + r <= 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

ConfusionMatrix Confusion(const std::vector<double>& probabilities,
                          const std::vector<int>& labels, double threshold) {
  assert(probabilities.size() == labels.size());
  ConfusionMatrix cm;
  for (size_t i = 0; i < probabilities.size(); ++i) {
    const bool predicted = probabilities[i] >= threshold;
    const bool actual = labels[i] == 1;
    if (predicted && actual) ++cm.true_positive;
    else if (predicted && !actual) ++cm.false_positive;
    else if (!predicted && actual) ++cm.false_negative;
    else ++cm.true_negative;
  }
  return cm;
}

double LogLoss(const std::vector<double>& probabilities,
               const std::vector<int>& labels) {
  assert(probabilities.size() == labels.size());
  if (probabilities.empty()) return 0.0;
  constexpr double kEps = 1e-12;
  double acc = 0.0;
  for (size_t i = 0; i < probabilities.size(); ++i) {
    const double p = std::clamp(probabilities[i], kEps, 1.0 - kEps);
    acc += labels[i] == 1 ? -std::log(p) : -std::log(1.0 - p);
  }
  return acc / static_cast<double>(probabilities.size());
}

double PrecisionAtK(const std::vector<double>& scores,
                    const std::vector<int>& labels, size_t k) {
  assert(scores.size() == labels.size());
  if (scores.empty() || k == 0) return 0.0;
  k = std::min(k, scores.size());
  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::partial_sort(order.begin(), order.begin() + static_cast<long>(k),
                    order.end(), [&](size_t a, size_t b) {
                      return scores[a] != scores[b] ? scores[a] > scores[b]
                                                    : a < b;
                    });
  size_t hits = 0;
  for (size_t i = 0; i < k; ++i) {
    if (labels[order[i]] == 1) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

double RocAuc(const std::vector<double>& scores,
              const std::vector<int>& labels) {
  assert(scores.size() == labels.size());
  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] < scores[b]; });
  // Rank-sum with midrank handling for ties.
  std::vector<double> ranks(scores.size());
  size_t i = 0;
  while (i < order.size()) {
    size_t j = i;
    while (j + 1 < order.size() &&
           scores[order[j + 1]] == scores[order[i]]) {
      ++j;
    }
    const double midrank = 0.5 * static_cast<double>(i + j) + 1.0;
    for (size_t t = i; t <= j; ++t) ranks[order[t]] = midrank;
    i = j + 1;
  }
  double pos_rank_sum = 0.0;
  size_t n_pos = 0;
  for (size_t t = 0; t < labels.size(); ++t) {
    if (labels[t] == 1) {
      pos_rank_sum += ranks[t];
      ++n_pos;
    }
  }
  const size_t n_neg = labels.size() - n_pos;
  if (n_pos == 0 || n_neg == 0) return 0.5;
  return (pos_rank_sum - 0.5 * static_cast<double>(n_pos) *
                             static_cast<double>(n_pos + 1)) /
         (static_cast<double>(n_pos) * static_cast<double>(n_neg));
}

}  // namespace lightor::ml
