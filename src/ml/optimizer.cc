#include "ml/optimizer.h"

#include <cassert>
#include <cmath>

namespace lightor::ml {

SgdOptimizer::SgdOptimizer(double learning_rate, double momentum)
    : learning_rate_(learning_rate), momentum_(momentum) {}

void SgdOptimizer::Step(std::vector<double>& params,
                        const std::vector<double>& grads) {
  assert(params.size() == grads.size());
  if (momentum_ > 0.0) {
    if (velocity_.size() != params.size()) {
      velocity_.assign(params.size(), 0.0);
    }
    for (size_t i = 0; i < params.size(); ++i) {
      velocity_[i] = momentum_ * velocity_[i] - learning_rate_ * grads[i];
      params[i] += velocity_[i];
    }
  } else {
    for (size_t i = 0; i < params.size(); ++i) {
      params[i] -= learning_rate_ * grads[i];
    }
  }
}

void SgdOptimizer::Reset() { velocity_.clear(); }

AdamOptimizer::AdamOptimizer(double learning_rate, double beta1, double beta2,
                             double epsilon)
    : learning_rate_(learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon) {}

void AdamOptimizer::Step(std::vector<double>& params,
                         const std::vector<double>& grads) {
  assert(params.size() == grads.size());
  if (m_.size() != params.size()) {
    m_.assign(params.size(), 0.0);
    v_.assign(params.size(), 0.0);
    t_ = 0;
  }
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (size_t i = 0; i < params.size(); ++i) {
    m_[i] = beta1_ * m_[i] + (1.0 - beta1_) * grads[i];
    v_[i] = beta2_ * v_[i] + (1.0 - beta2_) * grads[i] * grads[i];
    const double mhat = m_[i] / bc1;
    const double vhat = v_[i] / bc2;
    params[i] -= learning_rate_ * mhat / (std::sqrt(vhat) + epsilon_);
  }
}

void AdamOptimizer::Reset() {
  m_.clear();
  v_.clear();
  t_ = 0;
}

double ClipGradientNorm(std::vector<double>& grads, double max_norm) {
  double norm_sq = 0.0;
  for (double g : grads) norm_sq += g * g;
  const double norm = std::sqrt(norm_sq);
  if (norm > max_norm && norm > 0.0) {
    const double scale = max_norm / norm;
    for (double& g : grads) g *= scale;
  }
  return norm;
}

}  // namespace lightor::ml
