#include "ml/matrix.h"

#include <algorithm>

namespace lightor::ml {

void Matrix::Fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Matrix::MatVecAccumulate(const std::vector<double>& x,
                              std::vector<double>& y) const {
  assert(x.size() == cols_);
  assert(y.size() == rows_);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = data_.data() + r * cols_;
    double acc = 0.0;
    for (size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    y[r] += acc;
  }
}

void Matrix::MatTVecAccumulate(const std::vector<double>& x,
                               std::vector<double>& y) const {
  assert(x.size() == rows_);
  assert(y.size() == cols_);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = data_.data() + r * cols_;
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (size_t c = 0; c < cols_; ++c) y[c] += row[c] * xr;
  }
}

void Matrix::AddOuterProduct(const std::vector<double>& a,
                             const std::vector<double>& b, double scale) {
  assert(a.size() == rows_);
  assert(b.size() == cols_);
  for (size_t r = 0; r < rows_; ++r) {
    double* row = data_.data() + r * cols_;
    const double ar = a[r] * scale;
    if (ar == 0.0) continue;
    for (size_t c = 0; c < cols_; ++c) row[c] += ar * b[c];
  }
}

void Matrix::AddScaled(const Matrix& other, double scale) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += scale * other.data_[i];
}

double Matrix::SquaredNorm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return acc;
}

}  // namespace lightor::ml
