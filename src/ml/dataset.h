#ifndef LIGHTOR_ML_DATASET_H_
#define LIGHTOR_ML_DATASET_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace lightor::ml {

/// A labelled feature matrix for binary classification: `features[i]` is
/// example i's feature row and `labels[i]` in {0, 1}.
struct Dataset {
  std::vector<std::vector<double>> features;
  std::vector<int> labels;

  size_t size() const { return features.size(); }
  bool empty() const { return features.empty(); }

  /// Appends one example.
  void Add(std::vector<double> row, int label);

  /// Appends all examples of `other`.
  void Append(const Dataset& other);

  /// Count of positive labels.
  size_t NumPositive() const;

  /// Checks the invariants (same length, rectangular, labels in {0,1}).
  common::Status Validate() const;
};

/// Shuffles a dataset in place (feature/label pairs move together).
void ShuffleDataset(Dataset& data, common::Rng& rng);

/// Splits into train/test by `train_fraction` (in (0,1)), after an
/// internal shuffle with `rng`.
struct TrainTestSplit {
  Dataset train;
  Dataset test;
};
TrainTestSplit SplitDataset(const Dataset& data, double train_fraction,
                            common::Rng& rng);

/// Yields `k` (train, test) folds for cross-validation.
std::vector<TrainTestSplit> KFoldSplits(const Dataset& data, size_t k,
                                        common::Rng& rng);

}  // namespace lightor::ml

#endif  // LIGHTOR_ML_DATASET_H_
