#include "ml/scaler.h"

#include <algorithm>
#include <cassert>

namespace lightor::ml {

common::Status MinMaxScaler::Fit(
    const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) {
    return common::Status::InvalidArgument("MinMaxScaler::Fit: no rows");
  }
  const size_t width = rows[0].size();
  if (width == 0) {
    return common::Status::InvalidArgument("MinMaxScaler::Fit: empty rows");
  }
  mins_.assign(width, rows[0][0]);
  maxs_.assign(width, rows[0][0]);
  for (size_t c = 0; c < width; ++c) mins_[c] = maxs_[c] = rows[0][c];
  for (const auto& row : rows) {
    if (row.size() != width) {
      mins_.clear();
      maxs_.clear();
      return common::Status::InvalidArgument(
          "MinMaxScaler::Fit: ragged feature matrix");
    }
    for (size_t c = 0; c < width; ++c) {
      mins_[c] = std::min(mins_[c], row[c]);
      maxs_[c] = std::max(maxs_[c], row[c]);
    }
  }
  return common::Status::OK();
}

std::vector<double> MinMaxScaler::Transform(
    const std::vector<double>& row) const {
  assert(fitted());
  assert(row.size() == mins_.size());
  std::vector<double> out(row.size());
  for (size_t c = 0; c < row.size(); ++c) {
    const double range = maxs_[c] - mins_[c];
    if (range <= 0.0) {
      out[c] = 0.0;
    } else {
      out[c] = std::clamp((row[c] - mins_[c]) / range, 0.0, 1.0);
    }
  }
  return out;
}

std::vector<std::vector<double>> MinMaxScaler::TransformBatch(
    const std::vector<std::vector<double>>& rows) const {
  std::vector<std::vector<double>> out;
  out.reserve(rows.size());
  for (const auto& row : rows) out.push_back(Transform(row));
  return out;
}

common::Status MinMaxScaler::FitTransform(
    std::vector<std::vector<double>>& rows) {
  LIGHTOR_RETURN_IF_ERROR(Fit(rows));
  rows = TransformBatch(rows);
  return common::Status::OK();
}

}  // namespace lightor::ml
