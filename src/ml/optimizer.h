#ifndef LIGHTOR_ML_OPTIMIZER_H_
#define LIGHTOR_ML_OPTIMIZER_H_

#include <cstddef>
#include <memory>
#include <vector>

namespace lightor::ml {

/// First-order optimizer over a flat parameter vector. The LSTM keeps all
/// of its weights in one contiguous vector, so optimizers only need this
/// interface.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies one update: params -= step(grads). Vectors must be the same
  /// size across all calls.
  virtual void Step(std::vector<double>& params,
                    const std::vector<double>& grads) = 0;

  /// Resets optimizer state (moment estimates, step counter).
  virtual void Reset() = 0;
};

/// Plain SGD with optional momentum.
class SgdOptimizer : public Optimizer {
 public:
  explicit SgdOptimizer(double learning_rate, double momentum = 0.0);
  void Step(std::vector<double>& params,
            const std::vector<double>& grads) override;
  void Reset() override;

 private:
  double learning_rate_;
  double momentum_;
  std::vector<double> velocity_;
};

/// Adam (Kingma & Ba, 2015) with bias correction.
class AdamOptimizer : public Optimizer {
 public:
  explicit AdamOptimizer(double learning_rate = 1e-3, double beta1 = 0.9,
                         double beta2 = 0.999, double epsilon = 1e-8);
  void Step(std::vector<double>& params,
            const std::vector<double>& grads) override;
  void Reset() override;

 private:
  double learning_rate_;
  double beta1_;
  double beta2_;
  double epsilon_;
  size_t t_ = 0;
  std::vector<double> m_;
  std::vector<double> v_;
};

/// Scales `grads` in place so its global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm.
double ClipGradientNorm(std::vector<double>& grads, double max_norm);

}  // namespace lightor::ml

#endif  // LIGHTOR_ML_OPTIMIZER_H_
