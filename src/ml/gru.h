#ifndef LIGHTOR_ML_GRU_H_
#define LIGHTOR_ML_GRU_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "ml/lstm.h"  // CharVocab, LstmOptions (shared shape/training knobs)

namespace lightor::ml {

/// A stacked character-level GRU binary classifier — the architecture
/// ablation partner of CharLstmClassifier (same options struct, same
/// one-hot byte input, same mean-pooled logistic head, Adam + BPTT).
///
/// Gate equations (Cho et al., 2014):
///   z = sigmoid(Wz x + Uz h_prev + bz)        update gate
///   r = sigmoid(Wr x + Ur h_prev + br)        reset gate
///   n = tanh  (Wn x + r * (Un h_prev) + bn)   candidate
///   h = (1 - z) * n + z * h_prev
class CharGruClassifier {
 public:
  explicit CharGruClassifier(LstmOptions options = {});

  /// Trains on (texts, labels); labels in {0,1}. Replaces prior weights.
  common::Status Train(const std::vector<std::string>& texts,
                       const std::vector<int>& labels);

  /// P(label = 1 | text).
  double PredictProbability(std::string_view text) const;

  /// Per-epoch mean losses of the last Train call.
  const std::vector<double>& epoch_losses() const { return epoch_losses_; }

  size_t num_parameters() const { return params_.size(); }
  const LstmOptions& options() const { return options_; }

  // --- Testing / diagnostics hooks ----------------------------------------
  const std::vector<double>& parameters() const { return params_; }
  std::vector<double>& mutable_parameters() { return params_; }
  double Loss(std::string_view text, int label) const;
  std::vector<double> Gradients(std::string_view text, int label) const;

 private:
  struct LayerOffsets {
    size_t wx;    // [3H x in_dim]  (z, r, n blocks)
    size_t wh;    // [3H x H]
    size_t bias;  // [3H]
    size_t in_dim;
  };

  struct ForwardCache {
    // Indexed [layer][t], inner vectors sized H.
    std::vector<std::vector<std::vector<double>>> gate_z, gate_r, cand,
        hidden, uh;  // uh = Un * h_prev (pre-reset recurrent term)
    std::vector<int> input_ids;
    double probability = 0.0;
    std::vector<double> pooled;
  };

  void InitParameters();
  std::vector<int> EncodeText(std::string_view text) const;
  double Forward(const std::vector<int>& ids, ForwardCache* cache) const;
  void Backward(const ForwardCache& cache, double d_logit,
                std::vector<double>& grads) const;

  LstmOptions options_;
  std::vector<LayerOffsets> layers_;
  size_t head_w_offset_ = 0;
  size_t head_b_offset_ = 0;
  std::vector<double> params_;
  std::vector<double> epoch_losses_;
};

}  // namespace lightor::ml

#endif  // LIGHTOR_ML_GRU_H_
