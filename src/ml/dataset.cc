#include "ml/dataset.h"

#include <algorithm>
#include <numeric>

namespace lightor::ml {

void Dataset::Add(std::vector<double> row, int label) {
  features.push_back(std::move(row));
  labels.push_back(label);
}

void Dataset::Append(const Dataset& other) {
  features.insert(features.end(), other.features.begin(),
                  other.features.end());
  labels.insert(labels.end(), other.labels.begin(), other.labels.end());
}

size_t Dataset::NumPositive() const {
  return static_cast<size_t>(std::count(labels.begin(), labels.end(), 1));
}

common::Status Dataset::Validate() const {
  if (features.size() != labels.size()) {
    return common::Status::InvalidArgument(
        "Dataset: features/labels size mismatch");
  }
  const size_t width = features.empty() ? 0 : features[0].size();
  for (const auto& row : features) {
    if (row.size() != width) {
      return common::Status::InvalidArgument("Dataset: ragged feature rows");
    }
  }
  for (int label : labels) {
    if (label != 0 && label != 1) {
      return common::Status::InvalidArgument("Dataset: labels must be 0/1");
    }
  }
  return common::Status::OK();
}

void ShuffleDataset(Dataset& data, common::Rng& rng) {
  std::vector<size_t> order(data.size());
  std::iota(order.begin(), order.end(), size_t{0});
  rng.Shuffle(order);
  Dataset shuffled;
  shuffled.features.reserve(data.size());
  shuffled.labels.reserve(data.size());
  for (size_t idx : order) {
    shuffled.features.push_back(std::move(data.features[idx]));
    shuffled.labels.push_back(data.labels[idx]);
  }
  data = std::move(shuffled);
}

TrainTestSplit SplitDataset(const Dataset& data, double train_fraction,
                            common::Rng& rng) {
  Dataset copy = data;
  ShuffleDataset(copy, rng);
  const size_t n_train = static_cast<size_t>(
      train_fraction * static_cast<double>(copy.size()));
  TrainTestSplit split;
  for (size_t i = 0; i < copy.size(); ++i) {
    if (i < n_train) {
      split.train.Add(std::move(copy.features[i]), copy.labels[i]);
    } else {
      split.test.Add(std::move(copy.features[i]), copy.labels[i]);
    }
  }
  return split;
}

std::vector<TrainTestSplit> KFoldSplits(const Dataset& data, size_t k,
                                        common::Rng& rng) {
  Dataset copy = data;
  ShuffleDataset(copy, rng);
  std::vector<TrainTestSplit> folds(k);
  for (size_t fold = 0; fold < k; ++fold) {
    for (size_t i = 0; i < copy.size(); ++i) {
      if (i % k == fold) {
        folds[fold].test.Add(copy.features[i], copy.labels[i]);
      } else {
        folds[fold].train.Add(copy.features[i], copy.labels[i]);
      }
    }
  }
  return folds;
}

}  // namespace lightor::ml
