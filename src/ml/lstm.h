#ifndef LIGHTOR_ML_LSTM_H_
#define LIGHTOR_ML_LSTM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace lightor::ml {

/// Character vocabulary for the char-level LSTM: printable ASCII (32..126)
/// plus one out-of-range bucket.
struct CharVocab {
  static constexpr int kInputDim = 96;  // 95 printable + 1 other

  /// Maps a byte to its one-hot index in [0, kInputDim).
  static int Encode(char c);
};

/// Configuration for the character-level LSTM classifier. The paper's
/// Chat-LSTM baseline is "a character-level 3-layer LSTM-RNN"; defaults
/// mirror that shape, and benchmarks shrink it to CPU scale (the
/// comparison is about training cost and generalization, not capacity).
struct LstmOptions {
  size_t hidden_size = 32;
  size_t num_layers = 3;
  size_t max_sequence_length = 128;  ///< Characters; longer input truncates.
  size_t epochs = 5;
  double learning_rate = 3e-3;
  double grad_clip = 5.0;
  uint64_t seed = 1;
  double init_scale = 0.2;  ///< Uniform(-s, s) weight init.
};

/// A stacked character-level LSTM binary classifier trained with
/// truncated-at-input BPTT and Adam. Input text is byte-encoded one-hot;
/// the classification head applies a logistic unit to the mean-pooled
/// top-layer hidden states.
///
/// This is a full from-scratch implementation (forward, BPTT, clipping,
/// Adam) — it is the substrate for the paper's deep-learning baselines.
class CharLstmClassifier {
 public:
  explicit CharLstmClassifier(LstmOptions options = {});

  /// Trains on (texts, labels); labels in {0,1}. Replaces prior weights.
  /// Returns InvalidArgument for empty or mismatched input.
  common::Status Train(const std::vector<std::string>& texts,
                       const std::vector<int>& labels);

  /// P(label = 1 | text).
  double PredictProbability(std::string_view text) const;

  /// Batch probabilities.
  std::vector<double> PredictProbabilities(
      const std::vector<std::string>& texts) const;

  /// Mean training loss of the final epoch (0 before training).
  double final_epoch_loss() const { return final_epoch_loss_; }

  /// Per-epoch mean losses of the last Train call.
  const std::vector<double>& epoch_losses() const { return epoch_losses_; }

  /// Total number of trainable parameters.
  size_t num_parameters() const { return params_.size(); }

  const LstmOptions& options() const { return options_; }

  // --- Testing / diagnostics hooks ----------------------------------------
  /// Flat parameter vector (layer weights then head).
  const std::vector<double>& parameters() const { return params_; }
  std::vector<double>& mutable_parameters() { return params_; }
  /// Binary cross-entropy of one example under the current weights.
  double Loss(std::string_view text, int label) const;
  /// Analytic gradient of `Loss` w.r.t. all parameters (BPTT) — used by
  /// the numeric gradient-check tests.
  std::vector<double> Gradients(std::string_view text, int label) const;

 private:
  struct LayerOffsets {
    size_t wx;       // [4H x in_dim]
    size_t wh;       // [4H x H]
    size_t bias;     // [4H]
    size_t in_dim;
  };

  /// Per-sequence activation caches needed by BPTT.
  struct ForwardCache {
    // Indexed [layer][t]; each inner vector sized H (or 4H for gates).
    std::vector<std::vector<std::vector<double>>> gate_i, gate_f, gate_o,
        gate_g, cell, hidden, tanh_cell;
    std::vector<int> input_ids;
    double probability = 0.0;
    std::vector<double> pooled;  // mean-pooled top hidden, sized H
  };

  void InitParameters();
  std::vector<int> EncodeText(std::string_view text) const;
  double Forward(const std::vector<int>& ids, ForwardCache* cache) const;
  void Backward(const ForwardCache& cache, double d_logit,
                std::vector<double>& grads) const;

  LstmOptions options_;
  std::vector<LayerOffsets> layers_;
  size_t head_w_offset_ = 0;
  size_t head_b_offset_ = 0;
  std::vector<double> params_;
  double final_epoch_loss_ = 0.0;
  std::vector<double> epoch_losses_;
};

}  // namespace lightor::ml

#endif  // LIGHTOR_ML_LSTM_H_
