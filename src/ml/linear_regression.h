#ifndef LIGHTOR_ML_LINEAR_REGRESSION_H_
#define LIGHTOR_ML_LINEAR_REGRESSION_H_

#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace lightor::ml {

/// Solves the square linear system A x = b by Gaussian elimination with
/// partial pivoting. `a` is row-major n×n. Fails on singular systems.
common::Result<std::vector<double>> SolveLinearSystem(
    std::vector<double> a, std::vector<double> b, size_t n);

/// Ridge linear regression fitted in closed form via the normal
/// equations: (XᵀX + λI) w = Xᵀy, with an unpenalized intercept. Sized
/// for small feature counts (the adjustment model uses 3).
struct LinearRegressionOptions {
  double l2_lambda = 1e-6;
};

class LinearRegression {
 public:
  explicit LinearRegression(LinearRegressionOptions options = {});

  /// Fits on rows/targets. Requires a non-empty rectangular matrix with
  /// at least one row and consistent widths.
  common::Status Fit(const std::vector<std::vector<double>>& rows,
                     const std::vector<double>& targets);

  /// Predicted value for one row (requires a fitted model).
  double Predict(const std::vector<double>& row) const;

  bool fitted() const { return !weights_.empty() || has_intercept_only_; }
  const std::vector<double>& weights() const { return weights_; }
  double intercept() const { return intercept_; }

  /// Directly installs parameters (deserialization / tests).
  void SetParameters(std::vector<double> weights, double intercept);

 private:
  LinearRegressionOptions options_;
  std::vector<double> weights_;
  double intercept_ = 0.0;
  bool has_intercept_only_ = false;
};

}  // namespace lightor::ml

#endif  // LIGHTOR_ML_LINEAR_REGRESSION_H_
