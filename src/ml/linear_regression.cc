#include "ml/linear_regression.h"

#include <cassert>
#include <cmath>

namespace lightor::ml {

common::Result<std::vector<double>> SolveLinearSystem(std::vector<double> a,
                                                      std::vector<double> b,
                                                      size_t n) {
  if (a.size() != n * n || b.size() != n) {
    return common::Status::InvalidArgument(
        "SolveLinearSystem: dimension mismatch");
  }
  for (size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    size_t pivot = col;
    for (size_t row = col + 1; row < n; ++row) {
      if (std::abs(a[row * n + col]) > std::abs(a[pivot * n + col])) {
        pivot = row;
      }
    }
    if (std::abs(a[pivot * n + col]) < 1e-12) {
      return common::Status::FailedPrecondition(
          "SolveLinearSystem: singular matrix");
    }
    if (pivot != col) {
      for (size_t k = 0; k < n; ++k) {
        std::swap(a[col * n + k], a[pivot * n + k]);
      }
      std::swap(b[col], b[pivot]);
    }
    // Eliminate below.
    for (size_t row = col + 1; row < n; ++row) {
      const double factor = a[row * n + col] / a[col * n + col];
      if (factor == 0.0) continue;
      for (size_t k = col; k < n; ++k) {
        a[row * n + k] -= factor * a[col * n + k];
      }
      b[row] -= factor * b[col];
    }
  }
  // Back substitution.
  std::vector<double> x(n, 0.0);
  for (size_t row = n; row-- > 0;) {
    double acc = b[row];
    for (size_t k = row + 1; k < n; ++k) acc -= a[row * n + k] * x[k];
    x[row] = acc / a[row * n + row];
  }
  return x;
}

LinearRegression::LinearRegression(LinearRegressionOptions options)
    : options_(options) {}

common::Status LinearRegression::Fit(
    const std::vector<std::vector<double>>& rows,
    const std::vector<double>& targets) {
  if (rows.empty() || rows.size() != targets.size()) {
    return common::Status::InvalidArgument(
        "LinearRegression::Fit: empty or mismatched input");
  }
  const size_t width = rows[0].size();
  for (const auto& row : rows) {
    if (row.size() != width) {
      return common::Status::InvalidArgument(
          "LinearRegression::Fit: ragged rows");
    }
  }
  // Augment with an intercept column (index `width`), unpenalized.
  const size_t d = width + 1;
  std::vector<double> xtx(d * d, 0.0);
  std::vector<double> xty(d, 0.0);
  for (size_t i = 0; i < rows.size(); ++i) {
    auto x_at = [&](size_t j) {
      return j < width ? rows[i][j] : 1.0;
    };
    for (size_t r = 0; r < d; ++r) {
      for (size_t c = 0; c < d; ++c) {
        xtx[r * d + c] += x_at(r) * x_at(c);
      }
      xty[r] += x_at(r) * targets[i];
    }
  }
  for (size_t j = 0; j < width; ++j) {
    xtx[j * d + j] += options_.l2_lambda;
  }
  auto solved = SolveLinearSystem(std::move(xtx), std::move(xty), d);
  if (!solved.ok()) return solved.status();
  weights_.assign(solved.value().begin(), solved.value().end() - 1);
  intercept_ = solved.value().back();
  has_intercept_only_ = weights_.empty();
  return common::Status::OK();
}

double LinearRegression::Predict(const std::vector<double>& row) const {
  assert(fitted());
  assert(row.size() == weights_.size());
  double acc = intercept_;
  for (size_t j = 0; j < weights_.size(); ++j) acc += weights_[j] * row[j];
  return acc;
}

void LinearRegression::SetParameters(std::vector<double> weights,
                                     double intercept) {
  weights_ = std::move(weights);
  intercept_ = intercept;
  has_intercept_only_ = weights_.empty();
}

}  // namespace lightor::ml
