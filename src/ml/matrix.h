#ifndef LIGHTOR_ML_MATRIX_H_
#define LIGHTOR_ML_MATRIX_H_

#include <cassert>
#include <cstddef>
#include <vector>

namespace lightor::ml {

/// A small row-major dense matrix of doubles. Sized for the models in this
/// library (logistic regression, CPU-scale LSTMs) — no BLAS, no views.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }

  double& operator()(size_t r, size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(size_t r, size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  std::vector<double>& storage() { return data_; }
  const std::vector<double>& storage() const { return data_; }

  /// Sets all entries to `value`.
  void Fill(double value);

  /// y += this * x  (y sized rows(), x sized cols()).
  void MatVecAccumulate(const std::vector<double>& x,
                        std::vector<double>& y) const;

  /// y += this^T * x  (y sized cols(), x sized rows()).
  void MatTVecAccumulate(const std::vector<double>& x,
                         std::vector<double>& y) const;

  /// this += scale * (a outer b), where a is sized rows(), b sized cols().
  void AddOuterProduct(const std::vector<double>& a,
                       const std::vector<double>& b, double scale = 1.0);

  /// this += scale * other (same shape required).
  void AddScaled(const Matrix& other, double scale);

  /// Frobenius-norm squared.
  double SquaredNorm() const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace lightor::ml

#endif  // LIGHTOR_ML_MATRIX_H_
