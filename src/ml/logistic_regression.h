#ifndef LIGHTOR_ML_LOGISTIC_REGRESSION_H_
#define LIGHTOR_ML_LOGISTIC_REGRESSION_H_

#include <vector>

#include "common/status.h"
#include "ml/dataset.h"

namespace lightor::ml {

/// Numerically stable sigmoid.
double Sigmoid(double z);

/// Training configuration for logistic regression.
struct LogisticRegressionOptions {
  double learning_rate = 0.5;
  size_t max_iterations = 2000;
  double l2_lambda = 1e-3;       ///< L2 penalty on weights (not bias).
  double tolerance = 1e-7;       ///< Stop when the loss improvement drops below.
  bool balance_classes = true;   ///< Reweight examples inversely to class
                                 ///< frequency — highlight windows are rare
                                 ///< (~1:8 in the paper's Fig. 2 video).
};

/// Binary logistic regression trained with full-batch gradient descent.
/// This is the model behind both LIGHTOR stages: the Highlight
/// Initializer's window classifier (3 features) and the Highlight
/// Extractor's Type I/II red-dot classifier (3 features).
class LogisticRegression {
 public:
  explicit LogisticRegression(LogisticRegressionOptions options = {});

  /// Fits on `data` (validated). Replaces any previous model.
  common::Status Fit(const Dataset& data);

  /// P(label = 1 | row). Requires a fitted model of matching width.
  double PredictProbability(const std::vector<double>& row) const;

  /// Batch probabilities.
  std::vector<double> PredictProbabilities(
      const std::vector<std::vector<double>>& rows) const;

  /// Hard 0/1 prediction at `threshold`.
  int Predict(const std::vector<double>& row, double threshold = 0.5) const;

  bool fitted() const { return !weights_.empty(); }
  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }
  size_t iterations_run() const { return iterations_run_; }
  double final_loss() const { return final_loss_; }

  /// Directly installs parameters (deserialization / tests).
  void SetParameters(std::vector<double> weights, double bias);

 private:
  LogisticRegressionOptions options_;
  std::vector<double> weights_;
  double bias_ = 0.0;
  size_t iterations_run_ = 0;
  double final_loss_ = 0.0;
};

}  // namespace lightor::ml

#endif  // LIGHTOR_ML_LOGISTIC_REGRESSION_H_
