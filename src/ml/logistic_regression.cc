#include "ml/logistic_regression.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace lightor::ml {

double Sigmoid(double z) {
  if (z >= 0.0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

LogisticRegression::LogisticRegression(LogisticRegressionOptions options)
    : options_(options) {}

common::Status LogisticRegression::Fit(const Dataset& data) {
  LIGHTOR_RETURN_IF_ERROR(data.Validate());
  if (data.empty()) {
    return common::Status::InvalidArgument("LogisticRegression: empty data");
  }
  const size_t n = data.size();
  const size_t width = data.features[0].size();
  if (width == 0) {
    return common::Status::InvalidArgument(
        "LogisticRegression: zero-width features");
  }

  // Class weights: n / (2 * count_class), the scikit-learn "balanced" rule.
  const size_t n_pos = data.NumPositive();
  const size_t n_neg = n - n_pos;
  double w_pos = 1.0, w_neg = 1.0;
  if (options_.balance_classes && n_pos > 0 && n_neg > 0) {
    w_pos = static_cast<double>(n) / (2.0 * static_cast<double>(n_pos));
    w_neg = static_cast<double>(n) / (2.0 * static_cast<double>(n_neg));
  }

  weights_.assign(width, 0.0);
  bias_ = 0.0;
  double learning_rate = options_.learning_rate;
  double prev_loss = std::numeric_limits<double>::infinity();
  std::vector<double> grad(width);

  size_t iter = 0;
  for (; iter < options_.max_iterations; ++iter) {
    std::fill(grad.begin(), grad.end(), 0.0);
    double grad_bias = 0.0;
    double loss = 0.0;
    double weight_total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const auto& x = data.features[i];
      double z = bias_;
      for (size_t c = 0; c < width; ++c) z += weights_[c] * x[c];
      const double p = Sigmoid(z);
      const double y = static_cast<double>(data.labels[i]);
      const double sample_weight = data.labels[i] == 1 ? w_pos : w_neg;
      const double err = (p - y) * sample_weight;
      for (size_t c = 0; c < width; ++c) grad[c] += err * x[c];
      grad_bias += err;
      constexpr double kEps = 1e-12;
      const double pc = std::clamp(p, kEps, 1.0 - kEps);
      loss -= sample_weight *
              (y * std::log(pc) + (1.0 - y) * std::log(1.0 - pc));
      weight_total += sample_weight;
    }
    for (size_t c = 0; c < width; ++c) {
      grad[c] = grad[c] / weight_total + options_.l2_lambda * weights_[c];
      loss += 0.5 * options_.l2_lambda * weights_[c] * weights_[c];
    }
    grad_bias /= weight_total;
    loss /= weight_total;

    // Divergence guard: a too-aggressive step (e.g. strong L2 with a high
    // learning rate) can blow the loss up — back off and restart from the
    // origin with a halved step size rather than emitting NaNs.
    if (!std::isfinite(loss) ||
        (std::isfinite(prev_loss) && loss > prev_loss * 4.0 + 1.0)) {
      std::fill(weights_.begin(), weights_.end(), 0.0);
      bias_ = 0.0;
      learning_rate *= 0.5;
      prev_loss = std::numeric_limits<double>::infinity();
      continue;
    }

    for (size_t c = 0; c < width; ++c) {
      weights_[c] -= learning_rate * grad[c];
    }
    bias_ -= learning_rate * grad_bias;

    if (std::abs(prev_loss - loss) < options_.tolerance) {
      prev_loss = loss;
      ++iter;
      break;
    }
    prev_loss = loss;
  }
  iterations_run_ = iter;
  final_loss_ = prev_loss;
  return common::Status::OK();
}

double LogisticRegression::PredictProbability(
    const std::vector<double>& row) const {
  assert(fitted());
  assert(row.size() == weights_.size());
  double z = bias_;
  for (size_t c = 0; c < weights_.size(); ++c) z += weights_[c] * row[c];
  return Sigmoid(z);
}

std::vector<double> LogisticRegression::PredictProbabilities(
    const std::vector<std::vector<double>>& rows) const {
  std::vector<double> out;
  out.reserve(rows.size());
  for (const auto& row : rows) out.push_back(PredictProbability(row));
  return out;
}

int LogisticRegression::Predict(const std::vector<double>& row,
                                double threshold) const {
  return PredictProbability(row) >= threshold ? 1 : 0;
}

void LogisticRegression::SetParameters(std::vector<double> weights,
                                       double bias) {
  weights_ = std::move(weights);
  bias_ = bias;
}

}  // namespace lightor::ml
