#include "ml/lstm.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "ml/logistic_regression.h"  // for Sigmoid
#include "ml/optimizer.h"

namespace lightor::ml {

int CharVocab::Encode(char c) {
  const unsigned char u = static_cast<unsigned char>(c);
  if (u >= 32 && u <= 126) return static_cast<int>(u) - 32;
  return kInputDim - 1;  // other bucket
}

CharLstmClassifier::CharLstmClassifier(LstmOptions options)
    : options_(options) {
  InitParameters();
}

void CharLstmClassifier::InitParameters() {
  const size_t H = options_.hidden_size;
  layers_.clear();
  size_t offset = 0;
  for (size_t l = 0; l < options_.num_layers; ++l) {
    LayerOffsets lo;
    lo.in_dim = l == 0 ? static_cast<size_t>(CharVocab::kInputDim) : H;
    lo.wx = offset;
    offset += 4 * H * lo.in_dim;
    lo.wh = offset;
    offset += 4 * H * H;
    lo.bias = offset;
    offset += 4 * H;
    layers_.push_back(lo);
  }
  head_w_offset_ = offset;
  offset += H;
  head_b_offset_ = offset;
  offset += 1;
  params_.assign(offset, 0.0);

  common::Rng rng(options_.seed);
  for (size_t l = 0; l < layers_.size(); ++l) {
    const auto& lo = layers_[l];
    const double sx =
        options_.init_scale / std::sqrt(static_cast<double>(lo.in_dim));
    const double sh =
        options_.init_scale / std::sqrt(static_cast<double>(H));
    for (size_t i = 0; i < 4 * H * lo.in_dim; ++i) {
      params_[lo.wx + i] = rng.Uniform(-sx, sx);
    }
    for (size_t i = 0; i < 4 * H * H; ++i) {
      params_[lo.wh + i] = rng.Uniform(-sh, sh);
    }
    // Forget-gate bias starts at 1.0 (standard trick for gradient flow).
    for (size_t i = 0; i < 4 * H; ++i) {
      params_[lo.bias + i] = (i >= H && i < 2 * H) ? 1.0 : 0.0;
    }
  }
  const double sw = options_.init_scale / std::sqrt(static_cast<double>(H));
  for (size_t i = 0; i < H; ++i) {
    params_[head_w_offset_ + i] = rng.Uniform(-sw, sw);
  }
  params_[head_b_offset_] = 0.0;
}

std::vector<int> CharLstmClassifier::EncodeText(std::string_view text) const {
  const size_t n = std::min(text.size(), options_.max_sequence_length);
  std::vector<int> ids;
  ids.reserve(std::max<size_t>(n, 1));
  for (size_t i = 0; i < n; ++i) ids.push_back(CharVocab::Encode(text[i]));
  if (ids.empty()) ids.push_back(CharVocab::Encode(' '));  // empty input
  return ids;
}

double CharLstmClassifier::Forward(const std::vector<int>& ids,
                                   ForwardCache* cache) const {
  const size_t H = options_.hidden_size;
  const size_t L = layers_.size();
  const size_t T = ids.size();

  auto alloc = [&](std::vector<std::vector<std::vector<double>>>& v) {
    v.assign(L, std::vector<std::vector<double>>(
                    T, std::vector<double>(H, 0.0)));
  };
  ForwardCache local;
  ForwardCache& c = cache ? *cache : local;
  alloc(c.gate_i);
  alloc(c.gate_f);
  alloc(c.gate_o);
  alloc(c.gate_g);
  alloc(c.cell);
  alloc(c.hidden);
  alloc(c.tanh_cell);
  c.input_ids = ids;

  std::vector<double> pre(4 * H);
  for (size_t l = 0; l < L; ++l) {
    const auto& lo = layers_[l];
    const double* wx = params_.data() + lo.wx;
    const double* wh = params_.data() + lo.wh;
    const double* bias = params_.data() + lo.bias;
    std::vector<double> h_prev(H, 0.0), c_prev(H, 0.0);
    for (size_t t = 0; t < T; ++t) {
      // pre = Wx * x_t + Wh * h_prev + b
      if (l == 0) {
        // One-hot input: Wx * x is simply Wx's column ids[t].
        const size_t col = static_cast<size_t>(ids[t]);
        for (size_t r = 0; r < 4 * H; ++r) {
          pre[r] = wx[r * lo.in_dim + col] + bias[r];
        }
      } else {
        const auto& below = c.hidden[l - 1][t];
        for (size_t r = 0; r < 4 * H; ++r) {
          const double* row = wx + r * lo.in_dim;
          double acc = bias[r];
          for (size_t k = 0; k < H; ++k) acc += row[k] * below[k];
          pre[r] = acc;
        }
      }
      for (size_t r = 0; r < 4 * H; ++r) {
        const double* row = wh + r * H;
        double acc = 0.0;
        for (size_t k = 0; k < H; ++k) acc += row[k] * h_prev[k];
        pre[r] += acc;
      }
      auto& gi = c.gate_i[l][t];
      auto& gf = c.gate_f[l][t];
      auto& go = c.gate_o[l][t];
      auto& gg = c.gate_g[l][t];
      auto& cc = c.cell[l][t];
      auto& hh = c.hidden[l][t];
      auto& tc = c.tanh_cell[l][t];
      for (size_t k = 0; k < H; ++k) {
        gi[k] = Sigmoid(pre[k]);
        gf[k] = Sigmoid(pre[H + k]);
        go[k] = Sigmoid(pre[2 * H + k]);
        gg[k] = std::tanh(pre[3 * H + k]);
        cc[k] = gf[k] * c_prev[k] + gi[k] * gg[k];
        tc[k] = std::tanh(cc[k]);
        hh[k] = go[k] * tc[k];
      }
      h_prev = hh;
      c_prev = cc;
    }
  }

  // Mean-pool the top layer's hidden states, then logistic head.
  c.pooled.assign(H, 0.0);
  for (size_t t = 0; t < T; ++t) {
    const auto& hh = c.hidden[L - 1][t];
    for (size_t k = 0; k < H; ++k) c.pooled[k] += hh[k];
  }
  for (size_t k = 0; k < H; ++k) c.pooled[k] /= static_cast<double>(T);

  double logit = params_[head_b_offset_];
  for (size_t k = 0; k < H; ++k) {
    logit += params_[head_w_offset_ + k] * c.pooled[k];
  }
  c.probability = Sigmoid(logit);
  return c.probability;
}

void CharLstmClassifier::Backward(const ForwardCache& cache, double d_logit,
                                  std::vector<double>& grads) const {
  const size_t H = options_.hidden_size;
  const size_t L = layers_.size();
  const size_t T = cache.input_ids.size();

  // Head gradients.
  for (size_t k = 0; k < H; ++k) {
    grads[head_w_offset_ + k] += d_logit * cache.pooled[k];
  }
  grads[head_b_offset_] += d_logit;

  // dh arriving at each (layer, t) from above (head pooling or the layer
  // above's input path).
  std::vector<std::vector<std::vector<double>>> dh_from_above(
      L, std::vector<std::vector<double>>(T, std::vector<double>(H, 0.0)));
  const double pool_scale = d_logit / static_cast<double>(T);
  for (size_t t = 0; t < T; ++t) {
    for (size_t k = 0; k < H; ++k) {
      dh_from_above[L - 1][t][k] = pool_scale * params_[head_w_offset_ + k];
    }
  }

  std::vector<double> da(4 * H);
  for (size_t li = L; li-- > 0;) {
    const auto& lo = layers_[li];
    const double* wx = params_.data() + lo.wx;
    const double* wh = params_.data() + lo.wh;
    double* gwx = grads.data() + lo.wx;
    double* gwh = grads.data() + lo.wh;
    double* gb = grads.data() + lo.bias;

    std::vector<double> dh_next(H, 0.0), dc_next(H, 0.0);
    for (size_t t = T; t-- > 0;) {
      const auto& gi = cache.gate_i[li][t];
      const auto& gf = cache.gate_f[li][t];
      const auto& go = cache.gate_o[li][t];
      const auto& gg = cache.gate_g[li][t];
      const auto& tc = cache.tanh_cell[li][t];
      const std::vector<double>* c_prev =
          t > 0 ? &cache.cell[li][t - 1] : nullptr;
      const std::vector<double>* h_prev =
          t > 0 ? &cache.hidden[li][t - 1] : nullptr;

      for (size_t k = 0; k < H; ++k) {
        const double dh = dh_from_above[li][t][k] + dh_next[k];
        const double d_o = dh * tc[k];
        double dc = dh * go[k] * (1.0 - tc[k] * tc[k]) + dc_next[k];
        const double cprev_k = c_prev ? (*c_prev)[k] : 0.0;
        const double d_i = dc * gg[k];
        const double d_f = dc * cprev_k;
        const double d_g = dc * gi[k];
        da[k] = d_i * gi[k] * (1.0 - gi[k]);
        da[H + k] = d_f * gf[k] * (1.0 - gf[k]);
        da[2 * H + k] = d_o * go[k] * (1.0 - go[k]);
        da[3 * H + k] = d_g * (1.0 - gg[k] * gg[k]);
        dc_next[k] = dc * gf[k];
      }

      // Parameter gradients.
      if (li == 0) {
        const size_t col = static_cast<size_t>(cache.input_ids[t]);
        for (size_t r = 0; r < 4 * H; ++r) {
          gwx[r * lo.in_dim + col] += da[r];
          gb[r] += da[r];
        }
      } else {
        const auto& below = cache.hidden[li - 1][t];
        for (size_t r = 0; r < 4 * H; ++r) {
          double* row = gwx + r * lo.in_dim;
          const double dar = da[r];
          for (size_t k = 0; k < H; ++k) row[k] += dar * below[k];
          gb[r] += dar;
        }
        // Propagate into the layer below: dx = Wx^T * da.
        auto& dbelow = dh_from_above[li - 1][t];
        for (size_t r = 0; r < 4 * H; ++r) {
          const double* row = wx + r * lo.in_dim;
          const double dar = da[r];
          for (size_t k = 0; k < H; ++k) dbelow[k] += dar * row[k];
        }
      }
      if (h_prev) {
        for (size_t r = 0; r < 4 * H; ++r) {
          double* row = gwh + r * H;
          const double dar = da[r];
          for (size_t k = 0; k < H; ++k) row[k] += dar * (*h_prev)[k];
        }
      }
      // dh_next = Wh^T * da.
      std::fill(dh_next.begin(), dh_next.end(), 0.0);
      for (size_t r = 0; r < 4 * H; ++r) {
        const double* row = wh + r * H;
        const double dar = da[r];
        for (size_t k = 0; k < H; ++k) dh_next[k] += dar * row[k];
      }
      if (t == 0) break;
    }
  }
}

common::Status CharLstmClassifier::Train(const std::vector<std::string>& texts,
                                         const std::vector<int>& labels) {
  if (texts.empty()) {
    return common::Status::InvalidArgument("CharLstm::Train: empty data");
  }
  if (texts.size() != labels.size()) {
    return common::Status::InvalidArgument(
        "CharLstm::Train: texts/labels size mismatch");
  }
  for (int y : labels) {
    if (y != 0 && y != 1) {
      return common::Status::InvalidArgument(
          "CharLstm::Train: labels must be 0/1");
    }
  }
  InitParameters();

  // Encode once.
  std::vector<std::vector<int>> encoded;
  encoded.reserve(texts.size());
  for (const auto& t : texts) encoded.push_back(EncodeText(t));

  AdamOptimizer adam(options_.learning_rate);
  common::Rng rng(options_.seed ^ 0xABCDEF0123456789ULL);
  std::vector<size_t> order(texts.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::vector<double> grads(params_.size(), 0.0);
  epoch_losses_.clear();

  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(order);
    double loss_sum = 0.0;
    for (size_t idx : order) {
      ForwardCache cache;
      const double p = Forward(encoded[idx], &cache);
      const double y = static_cast<double>(labels[idx]);
      constexpr double kEps = 1e-12;
      const double pc = std::clamp(p, kEps, 1.0 - kEps);
      loss_sum -= y * std::log(pc) + (1.0 - y) * std::log(1.0 - pc);
      std::fill(grads.begin(), grads.end(), 0.0);
      Backward(cache, p - y, grads);
      ClipGradientNorm(grads, options_.grad_clip);
      adam.Step(params_, grads);
    }
    epoch_losses_.push_back(loss_sum / static_cast<double>(texts.size()));
  }
  final_epoch_loss_ = epoch_losses_.back();
  return common::Status::OK();
}

double CharLstmClassifier::Loss(std::string_view text, int label) const {
  const double p = Forward(EncodeText(text), nullptr);
  constexpr double kEps = 1e-12;
  const double pc = std::clamp(p, kEps, 1.0 - kEps);
  return label == 1 ? -std::log(pc) : -std::log(1.0 - pc);
}

std::vector<double> CharLstmClassifier::Gradients(std::string_view text,
                                                  int label) const {
  ForwardCache cache;
  const double p = Forward(EncodeText(text), &cache);
  std::vector<double> grads(params_.size(), 0.0);
  Backward(cache, p - static_cast<double>(label), grads);
  return grads;
}

double CharLstmClassifier::PredictProbability(std::string_view text) const {
  return Forward(EncodeText(text), nullptr);
}

std::vector<double> CharLstmClassifier::PredictProbabilities(
    const std::vector<std::string>& texts) const {
  std::vector<double> out;
  out.reserve(texts.size());
  for (const auto& t : texts) out.push_back(PredictProbability(t));
  return out;
}

}  // namespace lightor::ml
