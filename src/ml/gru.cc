#include "ml/gru.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "ml/logistic_regression.h"  // Sigmoid
#include "ml/optimizer.h"

namespace lightor::ml {

CharGruClassifier::CharGruClassifier(LstmOptions options)
    : options_(options) {
  InitParameters();
}

void CharGruClassifier::InitParameters() {
  const size_t H = options_.hidden_size;
  layers_.clear();
  size_t offset = 0;
  for (size_t l = 0; l < options_.num_layers; ++l) {
    LayerOffsets lo;
    lo.in_dim = l == 0 ? static_cast<size_t>(CharVocab::kInputDim) : H;
    lo.wx = offset;
    offset += 3 * H * lo.in_dim;
    lo.wh = offset;
    offset += 3 * H * H;
    lo.bias = offset;
    offset += 3 * H;
    layers_.push_back(lo);
  }
  head_w_offset_ = offset;
  offset += H;
  head_b_offset_ = offset;
  offset += 1;
  params_.assign(offset, 0.0);

  common::Rng rng(options_.seed ^ 0x6A09E667F3BCC908ULL);
  for (const auto& lo : layers_) {
    const double sx =
        options_.init_scale / std::sqrt(static_cast<double>(lo.in_dim));
    const double sh =
        options_.init_scale / std::sqrt(static_cast<double>(H));
    for (size_t i = 0; i < 3 * H * lo.in_dim; ++i) {
      params_[lo.wx + i] = rng.Uniform(-sx, sx);
    }
    for (size_t i = 0; i < 3 * H * H; ++i) {
      params_[lo.wh + i] = rng.Uniform(-sh, sh);
    }
    // Update-gate bias starts positive so early training mostly carries
    // state (the GRU analogue of the LSTM forget-bias trick).
    for (size_t i = 0; i < 3 * H; ++i) {
      params_[lo.bias + i] = i < H ? 1.0 : 0.0;
    }
  }
  const double sw = options_.init_scale / std::sqrt(static_cast<double>(H));
  for (size_t i = 0; i < H; ++i) {
    params_[head_w_offset_ + i] = rng.Uniform(-sw, sw);
  }
}

std::vector<int> CharGruClassifier::EncodeText(std::string_view text) const {
  const size_t n = std::min(text.size(), options_.max_sequence_length);
  std::vector<int> ids;
  ids.reserve(std::max<size_t>(n, 1));
  for (size_t i = 0; i < n; ++i) ids.push_back(CharVocab::Encode(text[i]));
  if (ids.empty()) ids.push_back(CharVocab::Encode(' '));
  return ids;
}

double CharGruClassifier::Forward(const std::vector<int>& ids,
                                  ForwardCache* cache) const {
  const size_t H = options_.hidden_size;
  const size_t L = layers_.size();
  const size_t T = ids.size();

  ForwardCache local;
  ForwardCache& c = cache ? *cache : local;
  auto alloc = [&](std::vector<std::vector<std::vector<double>>>& v) {
    v.assign(L, std::vector<std::vector<double>>(
                    T, std::vector<double>(H, 0.0)));
  };
  alloc(c.gate_z);
  alloc(c.gate_r);
  alloc(c.cand);
  alloc(c.hidden);
  alloc(c.uh);
  c.input_ids = ids;

  std::vector<double> pre(3 * H);
  for (size_t l = 0; l < L; ++l) {
    const auto& lo = layers_[l];
    const double* wx = params_.data() + lo.wx;
    const double* wh = params_.data() + lo.wh;
    const double* bias = params_.data() + lo.bias;
    std::vector<double> h_prev(H, 0.0);
    for (size_t t = 0; t < T; ++t) {
      // pre = Wx x + b for the z and r blocks; the n block's recurrent
      // part is gated, so compute Un h_prev separately.
      if (l == 0) {
        const size_t col = static_cast<size_t>(ids[t]);
        for (size_t q = 0; q < 3 * H; ++q) {
          pre[q] = wx[q * lo.in_dim + col] + bias[q];
        }
      } else {
        const auto& below = c.hidden[l - 1][t];
        for (size_t q = 0; q < 3 * H; ++q) {
          const double* row = wx + q * lo.in_dim;
          double acc = bias[q];
          for (size_t k = 0; k < H; ++k) acc += row[k] * below[k];
          pre[q] = acc;
        }
      }
      auto& uh = c.uh[l][t];
      for (size_t q = 0; q < H; ++q) {
        // z and r recurrent terms go straight into pre.
        const double* row_z = wh + q * H;
        const double* row_r = wh + (H + q) * H;
        const double* row_n = wh + (2 * H + q) * H;
        double acc_z = 0.0, acc_r = 0.0, acc_n = 0.0;
        for (size_t k = 0; k < H; ++k) {
          acc_z += row_z[k] * h_prev[k];
          acc_r += row_r[k] * h_prev[k];
          acc_n += row_n[k] * h_prev[k];
        }
        pre[q] += acc_z;
        pre[H + q] += acc_r;
        uh[q] = acc_n;
      }
      auto& z = c.gate_z[l][t];
      auto& r = c.gate_r[l][t];
      auto& n = c.cand[l][t];
      auto& h = c.hidden[l][t];
      for (size_t q = 0; q < H; ++q) {
        z[q] = Sigmoid(pre[q]);
        r[q] = Sigmoid(pre[H + q]);
        n[q] = std::tanh(pre[2 * H + q] + r[q] * uh[q]);
        h[q] = (1.0 - z[q]) * n[q] + z[q] * h_prev[q];
      }
      h_prev = h;
    }
  }

  c.pooled.assign(H, 0.0);
  for (size_t t = 0; t < T; ++t) {
    for (size_t q = 0; q < H; ++q) c.pooled[q] += c.hidden[L - 1][t][q];
  }
  for (size_t q = 0; q < H; ++q) c.pooled[q] /= static_cast<double>(T);
  double logit = params_[head_b_offset_];
  for (size_t q = 0; q < H; ++q) {
    logit += params_[head_w_offset_ + q] * c.pooled[q];
  }
  c.probability = Sigmoid(logit);
  return c.probability;
}

void CharGruClassifier::Backward(const ForwardCache& cache, double d_logit,
                                 std::vector<double>& grads) const {
  const size_t H = options_.hidden_size;
  const size_t L = layers_.size();
  const size_t T = cache.input_ids.size();

  for (size_t q = 0; q < H; ++q) {
    grads[head_w_offset_ + q] += d_logit * cache.pooled[q];
  }
  grads[head_b_offset_] += d_logit;

  std::vector<std::vector<std::vector<double>>> dh_from_above(
      L, std::vector<std::vector<double>>(T, std::vector<double>(H, 0.0)));
  const double pool_scale = d_logit / static_cast<double>(T);
  for (size_t t = 0; t < T; ++t) {
    for (size_t q = 0; q < H; ++q) {
      dh_from_above[L - 1][t][q] = pool_scale * params_[head_w_offset_ + q];
    }
  }

  std::vector<double> da_z(H), da_r(H), da_n(H), d_uh(H);
  for (size_t li = L; li-- > 0;) {
    const auto& lo = layers_[li];
    const double* wx = params_.data() + lo.wx;
    const double* wh = params_.data() + lo.wh;
    double* gwx = grads.data() + lo.wx;
    double* gwh = grads.data() + lo.wh;
    double* gb = grads.data() + lo.bias;

    std::vector<double> dh_next(H, 0.0);
    for (size_t t = T; t-- > 0;) {
      const auto& z = cache.gate_z[li][t];
      const auto& r = cache.gate_r[li][t];
      const auto& n = cache.cand[li][t];
      const auto& uh = cache.uh[li][t];
      const std::vector<double>* h_prev =
          t > 0 ? &cache.hidden[li][t - 1] : nullptr;

      for (size_t q = 0; q < H; ++q) {
        const double dh = dh_from_above[li][t][q] + dh_next[q];
        const double hp = h_prev ? (*h_prev)[q] : 0.0;
        const double dz = dh * (hp - n[q]);
        const double dn = dh * (1.0 - z[q]);
        da_n[q] = dn * (1.0 - n[q] * n[q]);
        const double dr = da_n[q] * uh[q];
        d_uh[q] = da_n[q] * r[q];
        da_z[q] = dz * z[q] * (1.0 - z[q]);
        da_r[q] = dr * r[q] * (1.0 - r[q]);
        // The direct h_prev carry term; recurrent-matrix terms added below.
        dh_next[q] = dh * z[q];
      }

      // Parameter gradients + propagate into h_prev and the layer below.
      if (li == 0) {
        const size_t col = static_cast<size_t>(cache.input_ids[t]);
        for (size_t q = 0; q < H; ++q) {
          gwx[q * lo.in_dim + col] += da_z[q];
          gwx[(H + q) * lo.in_dim + col] += da_r[q];
          gwx[(2 * H + q) * lo.in_dim + col] += da_n[q];
          gb[q] += da_z[q];
          gb[H + q] += da_r[q];
          gb[2 * H + q] += da_n[q];
        }
      } else {
        const auto& below = cache.hidden[li - 1][t];
        auto& dbelow = dh_from_above[li - 1][t];
        for (size_t q = 0; q < H; ++q) {
          double* row_z = gwx + q * lo.in_dim;
          double* row_r = gwx + (H + q) * lo.in_dim;
          double* row_n = gwx + (2 * H + q) * lo.in_dim;
          const double* wrow_z = wx + q * lo.in_dim;
          const double* wrow_r = wx + (H + q) * lo.in_dim;
          const double* wrow_n = wx + (2 * H + q) * lo.in_dim;
          for (size_t k = 0; k < H; ++k) {
            row_z[k] += da_z[q] * below[k];
            row_r[k] += da_r[q] * below[k];
            row_n[k] += da_n[q] * below[k];
            dbelow[k] += da_z[q] * wrow_z[k] + da_r[q] * wrow_r[k] +
                         da_n[q] * wrow_n[k];
          }
          gb[q] += da_z[q];
          gb[H + q] += da_r[q];
          gb[2 * H + q] += da_n[q];
        }
      }
      if (h_prev) {
        for (size_t q = 0; q < H; ++q) {
          double* row_z = gwh + q * H;
          double* row_r = gwh + (H + q) * H;
          double* row_n = gwh + (2 * H + q) * H;
          for (size_t k = 0; k < H; ++k) {
            row_z[k] += da_z[q] * (*h_prev)[k];
            row_r[k] += da_r[q] * (*h_prev)[k];
            row_n[k] += d_uh[q] * (*h_prev)[k];
          }
        }
      }
      // Recurrent-matrix contributions to dh_prev.
      for (size_t q = 0; q < H; ++q) {
        const double* row_z = wh + q * H;
        const double* row_r = wh + (H + q) * H;
        const double* row_n = wh + (2 * H + q) * H;
        for (size_t k = 0; k < H; ++k) {
          dh_next[k] += da_z[q] * row_z[k] + da_r[q] * row_r[k] +
                        d_uh[q] * row_n[k];
        }
      }
      if (t == 0) break;
    }
  }
}

common::Status CharGruClassifier::Train(const std::vector<std::string>& texts,
                                        const std::vector<int>& labels) {
  if (texts.empty()) {
    return common::Status::InvalidArgument("CharGru::Train: empty data");
  }
  if (texts.size() != labels.size()) {
    return common::Status::InvalidArgument(
        "CharGru::Train: texts/labels size mismatch");
  }
  for (int y : labels) {
    if (y != 0 && y != 1) {
      return common::Status::InvalidArgument(
          "CharGru::Train: labels must be 0/1");
    }
  }
  InitParameters();
  std::vector<std::vector<int>> encoded;
  encoded.reserve(texts.size());
  for (const auto& t : texts) encoded.push_back(EncodeText(t));

  AdamOptimizer adam(options_.learning_rate);
  common::Rng rng(options_.seed ^ 0xBB67AE8584CAA73BULL);
  std::vector<size_t> order(texts.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::vector<double> grads(params_.size(), 0.0);
  epoch_losses_.clear();

  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(order);
    double loss_sum = 0.0;
    for (size_t idx : order) {
      ForwardCache cache;
      const double p = Forward(encoded[idx], &cache);
      const double y = static_cast<double>(labels[idx]);
      constexpr double kEps = 1e-12;
      const double pc = std::clamp(p, kEps, 1.0 - kEps);
      loss_sum -= y * std::log(pc) + (1.0 - y) * std::log(1.0 - pc);
      std::fill(grads.begin(), grads.end(), 0.0);
      Backward(cache, p - y, grads);
      ClipGradientNorm(grads, options_.grad_clip);
      adam.Step(params_, grads);
    }
    epoch_losses_.push_back(loss_sum / static_cast<double>(texts.size()));
  }
  return common::Status::OK();
}

double CharGruClassifier::PredictProbability(std::string_view text) const {
  return Forward(EncodeText(text), nullptr);
}

double CharGruClassifier::Loss(std::string_view text, int label) const {
  const double p = Forward(EncodeText(text), nullptr);
  constexpr double kEps = 1e-12;
  const double pc = std::clamp(p, kEps, 1.0 - kEps);
  return label == 1 ? -std::log(pc) : -std::log(1.0 - pc);
}

std::vector<double> CharGruClassifier::Gradients(std::string_view text,
                                                 int label) const {
  ForwardCache cache;
  const double p = Forward(EncodeText(text), &cache);
  std::vector<double> grads(params_.size(), 0.0);
  Backward(cache, p - static_cast<double>(label), grads);
  return grads;
}

}  // namespace lightor::ml
