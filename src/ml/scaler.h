#ifndef LIGHTOR_ML_SCALER_H_
#define LIGHTOR_ML_SCALER_H_

#include <vector>

#include "common/status.h"

namespace lightor::ml {

/// Per-feature min-max normalization to [0, 1] — the paper: "To make these
/// features generalize well, we normalize them to the range in [0,1]".
/// Constant features map to 0. Transform clamps out-of-range values so a
/// model trained on one video cannot see wild feature values on another.
class MinMaxScaler {
 public:
  /// Learns per-column min/max. Requires a non-empty, rectangular matrix.
  common::Status Fit(const std::vector<std::vector<double>>& rows);

  /// Scales one row (must match the fitted width).
  std::vector<double> Transform(const std::vector<double>& row) const;

  /// Scales a batch.
  std::vector<std::vector<double>> TransformBatch(
      const std::vector<std::vector<double>>& rows) const;

  /// Fit + TransformBatch in one call.
  common::Status FitTransform(std::vector<std::vector<double>>& rows);

  bool fitted() const { return !mins_.empty(); }
  const std::vector<double>& mins() const { return mins_; }
  const std::vector<double>& maxs() const { return maxs_; }

 private:
  std::vector<double> mins_;
  std::vector<double> maxs_;
};

}  // namespace lightor::ml

#endif  // LIGHTOR_ML_SCALER_H_
