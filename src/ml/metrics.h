#ifndef LIGHTOR_ML_METRICS_H_
#define LIGHTOR_ML_METRICS_H_

#include <cstddef>
#include <vector>

namespace lightor::ml {

/// Binary confusion counts at a fixed decision threshold.
struct ConfusionMatrix {
  size_t true_positive = 0;
  size_t false_positive = 0;
  size_t true_negative = 0;
  size_t false_negative = 0;

  size_t total() const {
    return true_positive + false_positive + true_negative + false_negative;
  }
  double Accuracy() const;
  double Precision() const;  ///< 0 when no positives were predicted.
  double Recall() const;     ///< 0 when there are no positive labels.
  double F1() const;         ///< Harmonic mean; 0 when degenerate.
};

/// Builds a confusion matrix from probabilities and 0/1 labels at
/// `threshold` (predict 1 when p >= threshold).
ConfusionMatrix Confusion(const std::vector<double>& probabilities,
                          const std::vector<int>& labels,
                          double threshold = 0.5);

/// Mean binary cross-entropy (log-loss) with probability clamping.
double LogLoss(const std::vector<double>& probabilities,
               const std::vector<int>& labels);

/// Precision among the k highest-scored items: fraction of the top-k
/// (by score, descending, ties by index) whose label is 1. This is the
/// paper's Precision@K shape; k is clamped to the input size.
double PrecisionAtK(const std::vector<double>& scores,
                    const std::vector<int>& labels, size_t k);

/// Area under the ROC curve via the rank-sum formulation; 0.5 when one
/// class is absent.
double RocAuc(const std::vector<double>& scores,
              const std::vector<int>& labels);

}  // namespace lightor::ml

#endif  // LIGHTOR_ML_METRICS_H_
