#ifndef LIGHTOR_NET_JSON_H_
#define LIGHTOR_NET_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace lightor::net {

/// A dependency-free JSON value for the wire codec and the loadgen
/// report. Objects preserve insertion order (a sorted-vector map would
/// buy nothing at the handful-of-keys sizes the wire schema uses) and
/// duplicate keys are a parse error — wire payloads with ambiguous
/// fields must not silently pick one.
///
/// `Parse` is strict: the entire input must be one JSON value (trailing
/// bytes are an error), nesting is capped, and numbers must be finite —
/// exactly the "strict parse errors → 400" contract of the HTTP codec.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  using Array = std::vector<Json>;
  using Member = std::pair<std::string, Json>;
  using Object = std::vector<Member>;

  Json() = default;  ///< null
  static Json Null() { return Json(); }
  static Json Bool(bool v);
  static Json Number(double v);
  static Json Int(int64_t v) { return Number(static_cast<double>(v)); }
  static Json Str(std::string v);
  static Json MakeArray(Array items = {});
  static Json MakeObject(Object members = {});

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; valid only for the matching type.
  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  const std::string& AsString() const { return string_; }
  const Array& AsArray() const { return array_; }
  const Object& AsObject() const { return object_; }

  /// Object member lookup; nullptr when absent or not an object.
  const Json* Find(std::string_view key) const;

  /// Appends to an array / object value (no-op on other types is a
  /// programming error; asserts in debug builds).
  void Append(Json item);
  void Set(std::string key, Json value);

  /// Compact serialization (no whitespace), with full string escaping.
  /// Numbers that hold an integral value within int64 range print
  /// without a decimal point, so round-trips of ids stay exact.
  std::string Dump() const;
  void DumpTo(std::string& out) const;

  /// Strict whole-input parse. Error messages carry a byte offset.
  static common::Result<Json> Parse(std::string_view text);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Escapes `s` into a double-quoted JSON string literal appended to
/// `out` (exposed for the hand-rolled writers in the loadgen report).
void AppendJsonString(std::string_view s, std::string& out);

}  // namespace lightor::net

#endif  // LIGHTOR_NET_JSON_H_
