#include "net/json_arena.h"

#include <cmath>
#include <cstdlib>

namespace lightor::net {

JsonDoc::Type JsonDoc::Ref::type() const { return doc_->nodes_[index_].type; }

bool JsonDoc::Ref::AsBool() const { return doc_->nodes_[index_].boolean; }

double JsonDoc::Ref::AsNumber() const { return doc_->nodes_[index_].number; }

std::string_view JsonDoc::Ref::AsString() const {
  return doc_->ViewOf(doc_->nodes_[index_].str);
}

size_t JsonDoc::Ref::size() const { return doc_->nodes_[index_].child_count; }

JsonDoc::Ref JsonDoc::Ref::Find(std::string_view key) const {
  if (!is_object()) return Ref();
  for (uint32_t c = doc_->nodes_[index_].first_child; c != kNone;
       c = doc_->nodes_[c].next_sibling) {
    if (doc_->ViewOf(doc_->nodes_[c].key) == key) return Ref(doc_, c);
  }
  return Ref();
}

JsonDoc::Ref JsonDoc::Ref::first_child() const {
  const uint32_t c = doc_->nodes_[index_].first_child;
  return c == kNone ? Ref() : Ref(doc_, c);
}

JsonDoc::Ref JsonDoc::Ref::next_sibling() const {
  const uint32_t c = doc_->nodes_[index_].next_sibling;
  return c == kNone ? Ref() : Ref(doc_, c);
}

std::string_view JsonDoc::Ref::key() const {
  return doc_->ViewOf(doc_->nodes_[index_].key);
}

/// Same grammar, limits, and error strings as the legacy Json::Parse
/// recursive-descent parser — the only difference is what gets built.
class ArenaJsonParser {
 public:
  explicit ArenaJsonParser(std::string_view text) : text_(text) {
    doc_.input_ = text;
  }

  common::Result<JsonDoc> Run() {
    SkipSpace();
    auto root = ParseValue(0);
    if (!root.ok()) return root.status();
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing bytes after JSON value");
    }
    return std::move(doc_);
  }

 private:
  static constexpr int kMaxDepth = 64;
  static constexpr uint32_t kNone = JsonDoc::kNone;

  common::Status Error(const std::string& what) const {
    return common::Status::InvalidArgument(
        "json: " + what + " at byte " + std::to_string(pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Peek(char c) const { return pos_ < text_.size() && text_[pos_] == c; }

  bool Consume(char c) {
    if (!Peek(c)) return false;
    ++pos_;
    return true;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  uint32_t NewNode(JsonDoc::Type type) {
    doc_.nodes_.emplace_back();
    doc_.nodes_.back().type = type;
    return static_cast<uint32_t>(doc_.nodes_.size() - 1);
  }

  void LinkChild(uint32_t parent, uint32_t child) {
    JsonDoc::Node& p = doc_.nodes_[parent];
    if (p.first_child == kNone) {
      p.first_child = child;
    } else {
      doc_.nodes_[p.last_child].next_sibling = child;
    }
    p.last_child = child;
    ++p.child_count;
  }

  /// Parses one value and appends its node (index returned). Children of
  /// containers follow their parent in the node vector.
  common::Result<uint32_t> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        auto s = ParseString();
        if (!s.ok()) return s.status();
        const uint32_t node = NewNode(JsonDoc::Type::kString);
        doc_.nodes_[node].str = s.value();
        return node;
      }
      case 't':
        if (ConsumeWord("true")) {
          const uint32_t node = NewNode(JsonDoc::Type::kBool);
          doc_.nodes_[node].boolean = true;
          return node;
        }
        return Error("bad literal");
      case 'f':
        if (ConsumeWord("false")) return NewNode(JsonDoc::Type::kBool);
        return Error("bad literal");
      case 'n':
        if (ConsumeWord("null")) return NewNode(JsonDoc::Type::kNull);
        return Error("bad literal");
      default:
        return ParseNumber();
    }
  }

  common::Result<uint32_t> ParseObject(int depth) {
    ++pos_;  // '{'
    const uint32_t node = NewNode(JsonDoc::Type::kObject);
    SkipSpace();
    if (Consume('}')) return node;
    while (true) {
      SkipSpace();
      if (!Peek('"')) return Error("expected object key");
      auto key = ParseString();
      if (!key.ok()) return key.status();
      // Duplicate-key scan over the decoded keys already linked — same
      // O(members) walk (and the same error string) as the legacy tree.
      for (uint32_t c = doc_.nodes_[node].first_child; c != kNone;
           c = doc_.nodes_[c].next_sibling) {
        if (doc_.ViewOf(doc_.nodes_[c].key) == doc_.ViewOf(key.value())) {
          return Error("duplicate object key \"" +
                       std::string(doc_.ViewOf(key.value())) + "\"");
        }
      }
      SkipSpace();
      if (!Consume(':')) return Error("expected ':'");
      SkipSpace();
      auto value = ParseValue(depth + 1);
      if (!value.ok()) return value.status();
      doc_.nodes_[value.value()].key = key.value();
      LinkChild(node, value.value());
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) return node;
      return Error("expected ',' or '}'");
    }
  }

  common::Result<uint32_t> ParseArray(int depth) {
    ++pos_;  // '['
    const uint32_t node = NewNode(JsonDoc::Type::kArray);
    SkipSpace();
    if (Consume(']')) return node;
    while (true) {
      SkipSpace();
      auto value = ParseValue(depth + 1);
      if (!value.ok()) return value.status();
      LinkChild(node, value.value());
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume(']')) return node;
      return Error("expected ',' or ']'");
    }
  }

  /// Decoded string as a span. Escape-free strings (the overwhelmingly
  /// common case on this wire) are returned as input ranges without
  /// touching a single byte; strings with escapes decode once into the
  /// doc arena.
  common::Result<JsonDoc::Span> ParseString() {
    ++pos_;  // '"'
    const size_t start = pos_;
    // Fast path: scan for the closing quote; bail to the slow path at the
    // first escape, and fail on control characters exactly as before.
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        JsonDoc::Span span{static_cast<uint32_t>(start),
                           static_cast<uint32_t>(pos_ - start), false};
        ++pos_;
        return span;
      }
      if (c == '\\') break;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) return Error("unterminated string");
    // Slow path: copy the clean prefix into the arena, then decode
    // escapes with the legacy parser's exact validation.
    const uint32_t arena_start = static_cast<uint32_t>(doc_.arena_.size());
    doc_.arena_.append(text_.data() + start, pos_ - start);
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') {
        return JsonDoc::Span{
            arena_start,
            static_cast<uint32_t>(doc_.arena_.size() - arena_start), true};
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        doc_.arena_.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          doc_.arena_.push_back('"');
          break;
        case '\\':
          doc_.arena_.push_back('\\');
          break;
        case '/':
          doc_.arena_.push_back('/');
          break;
        case 'n':
          doc_.arena_.push_back('\n');
          break;
        case 'r':
          doc_.arena_.push_back('\r');
          break;
        case 't':
          doc_.arena_.push_back('\t');
          break;
        case 'b':
          doc_.arena_.push_back('\b');
          break;
        case 'f':
          doc_.arena_.push_back('\f');
          break;
        case 'u': {
          auto cp = ParseHex4();
          if (!cp.ok()) return cp.status();
          uint32_t code = cp.value();
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: require the paired \uXXXX low surrogate.
            if (!ConsumeWord("\\u")) return Error("lone high surrogate");
            auto lo = ParseHex4();
            if (!lo.ok()) return lo.status();
            if (lo.value() < 0xDC00 || lo.value() > 0xDFFF) {
              return Error("bad low surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (lo.value() - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return Error("lone low surrogate");
          }
          AppendUtf8(code, doc_.arena_);
          break;
        }
        default:
          return Error("bad escape character");
      }
    }
  }

  common::Result<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("bad hex digit in \\u escape");
      }
    }
    return code;
  }

  static void AppendUtf8(uint32_t code, std::string& out) {
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  common::Result<uint32_t> ParseNumber() {
    const size_t start = pos_;
    if (Peek('-')) ++pos_;
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      pos_ = start;
      return Error("bad number");
    }
    // JSON forbids leading zeros ("01").
    if (text_[pos_] == '0' && pos_ + 1 < text_.size() &&
        text_[pos_ + 1] >= '0' && text_[pos_ + 1] <= '9') {
      return Error("leading zero in number");
    }
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (Consume('.')) {
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Error("bad fraction");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (Peek('e') || Peek('E')) {
      ++pos_;
      if (Peek('+') || Peek('-')) ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Error("bad exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
    }
    // strtod needs NUL termination; the token is short, so a stack copy
    // beats allocating the std::string the legacy parser built.
    char buf[64];
    const size_t len = pos_ - start;
    double v = 0.0;
    if (len < sizeof(buf)) {
      text_.copy(buf, len, start);
      buf[len] = '\0';
      v = std::strtod(buf, nullptr);
    } else {
      const std::string token(text_.substr(start, len));
      v = std::strtod(token.c_str(), nullptr);
    }
    if (!std::isfinite(v)) return Error("number out of range");
    const uint32_t node = NewNode(JsonDoc::Type::kNumber);
    doc_.nodes_[node].number = v;
    return node;
  }

  std::string_view text_;
  size_t pos_ = 0;
  JsonDoc doc_;
};

common::Result<JsonDoc> JsonDoc::Parse(std::string_view text) {
  return ArenaJsonParser(text).Run();
}

}  // namespace lightor::net
