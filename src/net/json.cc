#include "net/json.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace lightor::net {

Json Json::Bool(bool v) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = v;
  return j;
}

Json Json::Number(double v) {
  Json j;
  j.type_ = Type::kNumber;
  j.number_ = v;
  return j;
}

Json Json::Str(std::string v) {
  Json j;
  j.type_ = Type::kString;
  j.string_ = std::move(v);
  return j;
}

Json Json::MakeArray(Array items) {
  Json j;
  j.type_ = Type::kArray;
  j.array_ = std::move(items);
  return j;
}

Json Json::MakeObject(Object members) {
  Json j;
  j.type_ = Type::kObject;
  j.object_ = std::move(members);
  return j;
}

const Json* Json::Find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Json::Append(Json item) {
  assert(type_ == Type::kArray);
  array_.push_back(std::move(item));
}

void Json::Set(std::string key, Json value) {
  assert(type_ == Type::kObject);
  object_.emplace_back(std::move(key), std::move(value));
}

void AppendJsonString(std::string_view s, std::string& out) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);  // UTF-8 passes through byte-for-byte
        }
    }
  }
  out.push_back('"');
}

namespace {

void AppendNumber(double v, std::string& out) {
  // Integral values within int64 range print exactly (ids, counts);
  // everything else gets enough digits to round-trip a double.
  if (v == std::floor(v) && std::abs(v) < 9.2e18) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    out += buf;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace

void Json::DumpTo(std::string& out) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      AppendNumber(number_, out);
      break;
    case Type::kString:
      AppendJsonString(string_, out);
      break;
    case Type::kArray: {
      out.push_back('[');
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out.push_back(',');
        array_[i].DumpTo(out);
      }
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      out.push_back('{');
      for (size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out.push_back(',');
        AppendJsonString(object_[i].first, out);
        out.push_back(':');
        object_[i].second.DumpTo(out);
      }
      out.push_back('}');
      break;
    }
  }
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(out);
  return out;
}

namespace {

/// Recursive-descent parser over a string_view with a byte cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  common::Result<Json> Run() {
    SkipSpace();
    auto value = ParseValue(0);
    if (!value.ok()) return value.status();
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing bytes after JSON value");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  common::Status Error(const std::string& what) const {
    return common::Status::InvalidArgument(
        "json: " + what + " at byte " + std::to_string(pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Peek(char c) const { return pos_ < text_.size() && text_[pos_] == c; }

  bool Consume(char c) {
    if (!Peek(c)) return false;
    ++pos_;
    return true;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  common::Result<Json> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        auto s = ParseString();
        if (!s.ok()) return s.status();
        return Json::Str(std::move(s).value());
      }
      case 't':
        if (ConsumeWord("true")) return Json::Bool(true);
        return Error("bad literal");
      case 'f':
        if (ConsumeWord("false")) return Json::Bool(false);
        return Error("bad literal");
      case 'n':
        if (ConsumeWord("null")) return Json::Null();
        return Error("bad literal");
      default:
        return ParseNumber();
    }
  }

  common::Result<Json> ParseObject(int depth) {
    ++pos_;  // '{'
    Json obj = Json::MakeObject();
    SkipSpace();
    if (Consume('}')) return obj;
    while (true) {
      SkipSpace();
      if (!Peek('"')) return Error("expected object key");
      auto key = ParseString();
      if (!key.ok()) return key.status();
      if (obj.Find(key.value()) != nullptr) {
        return Error("duplicate object key \"" + key.value() + "\"");
      }
      SkipSpace();
      if (!Consume(':')) return Error("expected ':'");
      SkipSpace();
      auto value = ParseValue(depth + 1);
      if (!value.ok()) return value.status();
      obj.Set(std::move(key).value(), std::move(value).value());
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) return obj;
      return Error("expected ',' or '}'");
    }
  }

  common::Result<Json> ParseArray(int depth) {
    ++pos_;  // '['
    Json arr = Json::MakeArray();
    SkipSpace();
    if (Consume(']')) return arr;
    while (true) {
      SkipSpace();
      auto value = ParseValue(depth + 1);
      if (!value.ok()) return value.status();
      arr.Append(std::move(value).value());
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume(']')) return arr;
      return Error("expected ',' or ']'");
    }
  }

  common::Result<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          auto cp = ParseHex4();
          if (!cp.ok()) return cp.status();
          uint32_t code = cp.value();
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: require the paired \uXXXX low surrogate.
            if (!ConsumeWord("\\u")) return Error("lone high surrogate");
            auto lo = ParseHex4();
            if (!lo.ok()) return lo.status();
            if (lo.value() < 0xDC00 || lo.value() > 0xDFFF) {
              return Error("bad low surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (lo.value() - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return Error("lone low surrogate");
          }
          AppendUtf8(code, out);
          break;
        }
        default:
          return Error("bad escape character");
      }
    }
  }

  common::Result<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("bad hex digit in \\u escape");
      }
    }
    return code;
  }

  static void AppendUtf8(uint32_t code, std::string& out) {
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  common::Result<Json> ParseNumber() {
    const size_t start = pos_;
    if (Peek('-')) ++pos_;
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      pos_ = start;
      return Error("bad number");
    }
    // JSON forbids leading zeros ("01").
    if (text_[pos_] == '0' && pos_ + 1 < text_.size() &&
        text_[pos_ + 1] >= '0' && text_[pos_ + 1] <= '9') {
      return Error("leading zero in number");
    }
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (Consume('.')) {
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Error("bad fraction");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (Peek('e') || Peek('E')) {
      ++pos_;
      if (Peek('+') || Peek('-')) ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Error("bad exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    const double v = std::strtod(token.c_str(), nullptr);
    if (!std::isfinite(v)) return Error("number out of range");
    return Json::Number(v);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

common::Result<Json> Json::Parse(std::string_view text) {
  return Parser(text).Run();
}

}  // namespace lightor::net
