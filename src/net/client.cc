#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

namespace lightor::net {

namespace {

/// Classifies a socket errno so callers (the cluster router's retry
/// policy in particular) can tell a dead peer from a slow one:
///   * refused/reset/unreachable/broken-pipe -> Unavailable — the
///     backend is down; retrying the same connection is pointless.
///   * EAGAIN/EWOULDBLOCK/ETIMEDOUT -> DeadlineExceeded — SO_RCVTIMEO /
///     SO_SNDTIMEO expired; the backend may just be slow.
///   * everything else stays IoError.
common::Status Errno(const std::string& what) {
  const int err = errno;
  const std::string msg = what + ": " + std::strerror(err);
  switch (err) {
    case ECONNREFUSED:
    case ECONNRESET:
    case ENETUNREACH:
    case EHOSTUNREACH:
    case EPIPE:
      return common::Status::Unavailable(msg);
    case EAGAIN:
#if EWOULDBLOCK != EAGAIN
    case EWOULDBLOCK:
#endif
    case ETIMEDOUT:
      return common::Status::DeadlineExceeded(msg);
    default:
      return common::Status::IoError(msg);
  }
}

}  // namespace

double HttpClient::RetryAfterSeconds(const HttpResponse& response,
                                     double fallback) {
  const std::string* header = response.FindHeader("retry-after");
  if (header == nullptr || header->empty()) return fallback;
  char* end = nullptr;
  const double seconds = std::strtod(header->c_str(), &end);
  if (end == header->c_str() || seconds < 0.0 || !std::isfinite(seconds)) {
    return fallback;
  }
  return seconds;
}

HttpClient::HttpClient(std::string host, uint16_t port)
    : host_(std::move(host)), port_(port) {}

HttpClient::~HttpClient() { Disconnect(); }

void HttpClient::Disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void HttpClient::set_header(std::string_view name, std::string_view value) {
  for (auto it = extra_headers_.begin(); it != extra_headers_.end(); ++it) {
    if (it->first == name) {
      if (value.empty()) {
        extra_headers_.erase(it);
      } else {
        it->second = std::string(value);
      }
      return;
    }
  }
  if (!value.empty()) {
    extra_headers_.emplace_back(std::string(name), std::string(value));
  }
}

common::Status HttpClient::Connect() {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return Errno("socket");

  if (timeout_seconds_ > 0.0) {
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(timeout_seconds_);
    tv.tv_usec = static_cast<suseconds_t>(
        (timeout_seconds_ - std::floor(timeout_seconds_)) * 1e6);
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    Disconnect();
    return common::Status::InvalidArgument("HttpClient: bad IPv4 host: " +
                                           host_);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const common::Status status =
        Errno("connect " + host_ + ":" + std::to_string(port_));
    Disconnect();
    return status;
  }
  return common::Status::OK();
}

common::Result<HttpResponse> HttpClient::Request(std::string_view method,
                                                 std::string_view target,
                                                 std::string_view body) {
  std::string wire;
  wire.reserve(128 + body.size());
  wire.append(method);
  wire.append(" ");
  wire.append(target);
  wire.append(" HTTP/1.1\r\nhost: ");
  wire.append(host_);
  wire.append(":");
  wire.append(std::to_string(port_));
  wire.append("\r\n");
  for (const auto& [name, value] : extra_headers_) {
    wire.append(name);
    wire.append(": ");
    wire.append(value);
    wire.append("\r\n");
  }
  if (!body.empty()) {
    wire.append("content-type: application/json\r\n");
  }
  wire.append("content-length: ");
  wire.append(std::to_string(body.size()));
  wire.append("\r\n\r\n");
  wire.append(body);

  const bool had_connection = fd_ >= 0;
  if (fd_ < 0) {
    LIGHTOR_RETURN_IF_ERROR(Connect());
  }
  auto result = RoundTrip(wire);
  if (!result.ok() && had_connection) {
    // The reused keep-alive connection may have been closed server-side
    // (idle reap, drain) between requests; one fresh-connection retry is
    // safe for the idempotent wire schema this client speaks.
    Disconnect();
    LIGHTOR_RETURN_IF_ERROR(Connect());
    result = RoundTrip(wire);
  }
  if (!result.ok()) Disconnect();
  return result;
}

common::Result<HttpResponse> HttpClient::RoundTrip(const std::string& wire) {
  size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n = ::send(fd_, wire.data() + sent, wire.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Errno("send");
  }

  ResponseParser parser;
  char buf[16384];
  for (;;) {
    const ResponseParser::State state = parser.Parse();
    if (state == ResponseParser::State::kReady) break;
    if (state == ResponseParser::State::kError) {
      return common::Status::IoError("HttpClient: bad response: " +
                                     parser.error());
    }
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      parser.Append(std::string_view(buf, static_cast<size_t>(n)));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n == 0) {
      if (parser.OnEof() == ResponseParser::State::kReady) break;
      // The peer hung up with an incomplete response in flight — the
      // same "backend died" shape as a reset, so type it that way.
      return common::Status::Unavailable(
          "HttpClient: connection closed mid-response");
    }
    return Errno("recv");
  }

  HttpResponse response = std::move(parser.response());
  const std::string* connection = response.FindHeader("connection");
  if (connection != nullptr && *connection == "close") Disconnect();
  return response;
}

}  // namespace lightor::net
