#include "net/http.h"

#include <algorithm>
#include <cctype>

#include "net/json.h"

namespace lightor::net {

namespace {

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view TrimOws(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

template <typename List>
auto* FindIn(const List& headers, std::string_view name) {
  for (const auto& [k, v] : headers) {
    if (EqualsIgnoreCase(k, name)) return &v;
  }
  return static_cast<decltype(&headers.front().second)>(nullptr);
}

/// Parses the `name: value` lines of `head` (which excludes the start
/// line and the final blank line). Names are lowercased. Returns false
/// with `error` set on any malformed line.
bool ParseHeaderLines(std::string_view head, HeaderList& out,
                      std::string& error) {
  size_t pos = 0;
  while (pos < head.size()) {
    size_t eol = head.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = head.size();
    const std::string_view line = head.substr(pos, eol - pos);
    pos = eol + 2;
    if (line.empty()) continue;
    if (line.front() == ' ' || line.front() == '\t') {
      error = "obsolete header line folding";
      return false;
    }
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      error = "malformed header line";
      return false;
    }
    const std::string_view name = line.substr(0, colon);
    // RFC 7230: no whitespace between field name and colon.
    if (name.back() == ' ' || name.back() == '\t') {
      error = "whitespace before header colon";
      return false;
    }
    out.emplace_back(ToLower(name), std::string(TrimOws(line.substr(colon + 1))));
  }
  return true;
}

/// Strict all-digit Content-Length parse. Returns false on non-numeric
/// input; `overflow` when the value is numeric but exceeds `cap` (or
/// uint64) — the caller maps that to 413 rather than 400.
bool ParseContentLength(std::string_view value, size_t cap, size_t* out,
                        bool* overflow) {
  *overflow = false;
  if (value.empty()) return false;
  uint64_t n = 0;
  for (const char c : value) {
    if (c < '0' || c > '9') return false;
    if (n > (UINT64_MAX - 9) / 10) {
      *overflow = true;
      return true;
    }
    n = n * 10 + static_cast<uint64_t>(c - '0');
  }
  if (n > cap) {
    *overflow = true;
    return true;
  }
  *out = static_cast<size_t>(n);
  return true;
}

}  // namespace

const std::string_view* HttpRequest::FindHeader(std::string_view name) const {
  return FindIn(headers, name);
}

std::string HttpRequest::QueryParam(std::string_view key) const {
  std::string_view rest = query;
  while (!rest.empty()) {
    size_t amp = rest.find('&');
    const std::string_view pair =
        amp == std::string_view::npos ? rest : rest.substr(0, amp);
    rest = amp == std::string_view::npos ? std::string_view()
                                         : rest.substr(amp + 1);
    const size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      if (pair == key) return "";
    } else if (pair.substr(0, eq) == key) {
      return std::string(pair.substr(eq + 1));
    }
  }
  return "";
}

bool HttpRequest::keep_alive() const {
  const std::string_view* connection = FindHeader("connection");
  if (connection != nullptr) {
    if (EqualsIgnoreCase(*connection, "close")) return false;
    if (EqualsIgnoreCase(*connection, "keep-alive")) return true;
  }
  return version_minor >= 1;
}

void HttpResponse::SetHeader(std::string name, std::string value) {
  std::string lower = ToLower(name);
  for (auto& [k, v] : headers) {
    if (k == lower) {
      v = std::move(value);
      return;
    }
  }
  headers.emplace_back(std::move(lower), std::move(value));
}

const std::string* HttpResponse::FindHeader(std::string_view name) const {
  return FindIn(headers, name);
}

std::string HttpResponse::Serialize(bool keep_alive) const {
  std::string out;
  out.reserve(128 + body.size());
  out += "HTTP/1.1 ";
  out += std::to_string(status);
  out += ' ';
  out += StatusReason(status);
  out += "\r\n";
  for (const auto& [k, v] : headers) {
    out += k;
    out += ": ";
    out += v;
    out += "\r\n";
  }
  out += "content-length: " + std::to_string(body.size()) + "\r\n";
  out += keep_alive ? "connection: keep-alive\r\n" : "connection: close\r\n";
  out += "\r\n";
  out += body;
  return out;
}

HttpResponse JsonResponse(int status, std::string body) {
  HttpResponse response;
  response.status = status;
  response.SetHeader("content-type", "application/json");
  response.body = std::move(body);
  return response;
}

HttpResponse ErrorResponse(int status, std::string_view message) {
  std::string body = "{\"error\":";
  AppendJsonString(message, body);
  body += "}";
  return JsonResponse(status, std::move(body));
}

std::string_view StatusReason(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 204:
      return "No Content";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 408:
      return "Request Timeout";
    case 409:
      return "Conflict";
    case 413:
      return "Payload Too Large";
    case 429:
      return "Too Many Requests";
    case 431:
      return "Request Header Fields Too Large";
    case 500:
      return "Internal Server Error";
    case 501:
      return "Not Implemented";
    case 503:
      return "Service Unavailable";
    case 504:
      return "Gateway Timeout";
    case 505:
      return "HTTP Version Not Supported";
    default:
      return status >= 200 && status < 300 ? "OK" : "Error";
  }
}

RequestParser::State RequestParser::Fail(int status, std::string message) {
  failed_ = true;
  error_status_ = status;
  error_ = std::move(message);
  return State::kError;
}

void RequestParser::MaybeCompact() {
  // Never move bytes while a parsed head's offsets are in flight. Outside
  // that window the consumed prefix is dropped in one go — usually the
  // tail is empty (no pipelining) and the erase is a plain size reset, so
  // the per-request memmove the old parser paid is gone entirely.
  if (!have_head_ && pos_ > 0) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
}

void RequestParser::Append(std::string_view bytes) {
  MaybeCompact();
  buffer_.append(bytes.data(), bytes.size());
}

RequestParser::State RequestParser::Parse() {
  if (failed_) return State::kError;
  MaybeCompact();

  if (!have_head_) {
    const size_t head_end = buffer_.find("\r\n\r\n", pos_);
    if (head_end == std::string::npos) {
      if (buffer_.size() - pos_ > limits_.max_header_bytes) {
        return Fail(431, "header block exceeds " +
                             std::to_string(limits_.max_header_bytes) +
                             " bytes");
      }
      return State::kNeedMore;
    }
    const size_t head_len = head_end + 4 - pos_;
    if (head_len > limits_.max_header_bytes) {
      return Fail(431, "header block exceeds " +
                           std::to_string(limits_.max_header_bytes) +
                           " bytes");
    }

    const std::string_view head(buffer_.data() + pos_, head_end - pos_);
    const size_t line_end = head.find("\r\n");
    const std::string_view start_line =
        line_end == std::string_view::npos ? head : head.substr(0, line_end);

    // METHOD SP request-target SP HTTP-version
    const size_t sp1 = start_line.find(' ');
    const size_t sp2 =
        sp1 == std::string_view::npos ? sp1 : start_line.find(' ', sp1 + 1);
    if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
        start_line.find(' ', sp2 + 1) != std::string_view::npos) {
      return Fail(400, "malformed request line");
    }
    const std::string_view method = start_line.substr(0, sp1);
    const std::string_view target = start_line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::string_view version = start_line.substr(sp2 + 1);
    if (method.empty() || target.empty() || target.front() != '/') {
      return Fail(400, "malformed request line");
    }
    for (const char c : method) {
      if (c < 'A' || c > 'Z') return Fail(400, "malformed method");
    }
    if (version == "HTTP/1.1") {
      version_minor_ = 1;
    } else if (version == "HTTP/1.0") {
      version_minor_ = 0;
    } else {
      return Fail(505, "unsupported HTTP version");
    }
    // Field positions are staged as buffer offsets (the body may still be
    // in flight and later Appends may reallocate); views materialize once
    // the whole request is present.
    const auto range_of = [&](std::string_view part) {
      return Range{static_cast<uint32_t>(part.data() - buffer_.data()),
                   static_cast<uint32_t>(part.size())};
    };
    method_r_ = range_of(method);
    target_r_ = range_of(target);
    const size_t qmark = target.find('?');
    if (qmark == std::string_view::npos) {
      path_r_ = range_of(target);
      query_r_ = Range{};
    } else {
      path_r_ = range_of(target.substr(0, qmark));
      query_r_ = range_of(target.substr(qmark + 1));
    }

    // `name: value` header lines. Names are lowercased in place in the
    // buffer (offsets don't move), values are OWS-trimmed ranges.
    header_ranges_.clear();
    std::string_view header_lines =
        line_end == std::string_view::npos ? std::string_view()
                                           : head.substr(line_end + 2);
    size_t lpos = 0;
    while (lpos < header_lines.size()) {
      size_t eol = header_lines.find("\r\n", lpos);
      if (eol == std::string_view::npos) eol = header_lines.size();
      const std::string_view line = header_lines.substr(lpos, eol - lpos);
      lpos = eol + 2;
      if (line.empty()) continue;
      if (line.front() == ' ' || line.front() == '\t') {
        return Fail(400, "obsolete header line folding");
      }
      const size_t colon = line.find(':');
      if (colon == std::string_view::npos || colon == 0) {
        return Fail(400, "malformed header line");
      }
      const std::string_view name = line.substr(0, colon);
      // RFC 7230: no whitespace between field name and colon.
      if (name.back() == ' ' || name.back() == '\t') {
        return Fail(400, "whitespace before header colon");
      }
      const Range name_r = range_of(name);
      char* p = buffer_.data() + name_r.off;
      for (uint32_t i = 0; i < name_r.len; ++i) {
        p[i] = static_cast<char>(std::tolower(static_cast<unsigned char>(p[i])));
      }
      header_ranges_.emplace_back(name_r, range_of(TrimOws(line.substr(colon + 1))));
    }

    for (const auto& kv : header_ranges_) {
      if (ViewOf(kv.first) == "transfer-encoding") {
        return Fail(501, "transfer-encoding is not supported");
      }
    }
    content_length_ = 0;
    bool have_length = false;
    Range first_length{};
    for (const auto& [k, v] : header_ranges_) {
      if (ViewOf(k) != "content-length") continue;
      if (have_length && ViewOf(first_length) != ViewOf(v)) {
        return Fail(400, "conflicting content-length headers");
      }
      first_length = v;
      have_length = true;
    }
    if (have_length) {
      bool overflow = false;
      if (!ParseContentLength(ViewOf(first_length), limits_.max_body_bytes,
                              &content_length_, &overflow)) {
        return Fail(400, "malformed content-length");
      }
      if (overflow) {
        return Fail(413, "declared body exceeds " +
                             std::to_string(limits_.max_body_bytes) +
                             " bytes");
      }
    }

    pos_ += head_len;
    have_head_ = true;
    pending_request_bytes_ = head_len;
  }

  if (buffer_.size() - pos_ < content_length_) return State::kNeedMore;
  request_.method = ViewOf(method_r_);
  request_.target = ViewOf(target_r_);
  request_.path = ViewOf(path_r_);
  request_.query = ViewOf(query_r_);
  request_.version_minor = version_minor_;
  request_.headers.clear();
  for (const auto& [k, v] : header_ranges_) {
    request_.headers.emplace_back(ViewOf(k), ViewOf(v));
  }
  request_.body = std::string_view(buffer_.data() + pos_, content_length_);
  pos_ += content_length_;
  have_head_ = false;
  last_request_bytes_ = pending_request_bytes_ + content_length_;
  pending_request_bytes_ = 0;
  content_length_ = 0;
  return State::kReady;
}

ResponseParser::State ResponseParser::Fail(std::string message) {
  failed_ = true;
  error_ = std::move(message);
  return State::kError;
}

ResponseParser::State ResponseParser::Parse() {
  if (failed_) return State::kError;

  if (!have_head_) {
    const size_t head_end = buffer_.find("\r\n\r\n");
    if (head_end == std::string::npos) return State::kNeedMore;
    const size_t head_len = head_end + 4;

    response_ = HttpResponse{};
    const std::string_view head(buffer_.data(), head_end);
    const size_t line_end = head.find("\r\n");
    const std::string_view status_line =
        line_end == std::string_view::npos ? head : head.substr(0, line_end);

    // HTTP-version SP status-code SP reason-phrase
    if (status_line.substr(0, 7) != "HTTP/1.") {
      return Fail("malformed status line");
    }
    const size_t sp1 = status_line.find(' ');
    if (sp1 == std::string_view::npos || sp1 + 4 > status_line.size()) {
      return Fail("malformed status line");
    }
    int code = 0;
    for (size_t i = sp1 + 1; i < sp1 + 4; ++i) {
      const char c = status_line[i];
      if (c < '0' || c > '9') return Fail("malformed status code");
      code = code * 10 + (c - '0');
    }
    response_.status = code;

    const std::string_view header_lines =
        line_end == std::string_view::npos
            ? std::string_view()
            : head.substr(line_end + 2);
    std::string error;
    if (!ParseHeaderLines(header_lines, response_.headers, error)) {
      return Fail(std::move(error));
    }

    content_length_ = 0;
    have_length_ = false;
    if (const std::string* v = response_.FindHeader("content-length")) {
      bool overflow = false;
      if (!ParseContentLength(*v, SIZE_MAX / 2, &content_length_,
                              &overflow) ||
          overflow) {
        return Fail("malformed content-length");
      }
      have_length_ = true;
    }

    buffer_.erase(0, head_len);
    have_head_ = true;
  }

  if (!have_length_) return State::kNeedMore;  // body runs to EOF
  if (buffer_.size() < content_length_) return State::kNeedMore;
  response_.body = buffer_.substr(0, content_length_);
  buffer_.erase(0, content_length_);
  have_head_ = false;
  return State::kReady;
}

ResponseParser::State ResponseParser::OnEof() {
  if (failed_) return State::kError;
  if (have_head_ && !have_length_) {
    response_.body = std::move(buffer_);
    buffer_.clear();
    have_head_ = false;
    return State::kReady;
  }
  return Fail("connection closed mid-response");
}

}  // namespace lightor::net
