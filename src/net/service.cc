#include "net/service.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "net/codec.h"
#include "net/json.h"
#include "obs/request_log.h"
#include "obs/trace.h"
#include "obs/trace_context.h"
#include "serving/metrics.h"

namespace lightor::net {

namespace {

int HttpStatusFor(const common::Status& status) {
  switch (status.code()) {
    case common::StatusCode::kInvalidArgument:
      return 400;
    case common::StatusCode::kNotFound:
      return 404;
    case common::StatusCode::kAlreadyExists:
    case common::StatusCode::kFailedPrecondition:
      return 409;
    case common::StatusCode::kIoError:
    case common::StatusCode::kUnavailable:
      // Storage write failure (disk full, wedged log) or an unreachable
      // upstream. The record was NOT accepted — tell the client to retry
      // rather than silently losing a viewer session the crowd can never
      // re-supply.
      return 503;
    case common::StatusCode::kDeadlineExceeded:
      return 504;
    default:
      return 500;
  }
}

HttpResponse FromStatus(const common::Status& status) {
  HttpResponse response =
      ErrorResponse(HttpStatusFor(status), status.ToString());
  if (response.status == 503) {
    response.SetHeader("retry-after", "1");
  }
  return response;
}

/// Decode -> call -> encode, with decode failures always a 400 (a bad
/// body is the client's fault even when the backend would 500 on it).
template <typename Decode, typename Call>
HttpResponse JsonRoute(const HttpRequest& request, Decode decode,
                       Call call) {
  auto decoded = decode(request.body);
  if (!decoded.ok()) {
    return ErrorResponse(400, decoded.status().ToString());
  }
  auto result = call(std::move(decoded).value());
  if (!result.ok()) return FromStatus(result.status());
  return JsonResponse(200, EncodeJson(result.value()));
}

/// Retry-After is whole seconds on the wire; round the bucket's refill
/// estimate up so a compliant client never retries early, floor at 1.
std::string RetryAfterHeader(double retry_after_seconds) {
  const double ceiled = std::ceil(std::max(0.0, retry_after_seconds));
  return std::to_string(std::max<long long>(1, static_cast<long long>(ceiled)));
}

HttpResponse ThrottledResponse(const serving::IngestChatResponse& response) {
  HttpResponse http = JsonResponse(429, EncodeJson(response));
  http.SetHeader("retry-after", RetryAfterHeader(response.retry_after_seconds));
  return http;
}

/// Chunked multi-channel frame: a top-level JSON array of single-frame
/// requests. The frame itself is HTTP 200 once it parses and fits the
/// caps; each channel reports its own outcome per entry so one spiking
/// channel's 429 cannot fail its neighbours' deliveries.
HttpResponse BatchIngestRoute(serving::HighlightServer* server,
                              const RouteOptions& options,
                              const HttpRequest& request) {
  auto decoded = DecodeIngestBatchRequest(request.body);
  if (!decoded.ok()) {
    return ErrorResponse(400, decoded.status().ToString());
  }
  const std::vector<serving::IngestChatRequest>& batches = decoded.value();
  if (batches.size() > options.max_batch_channels) {
    return ErrorResponse(
        413, "ingest: batch frame carries " + std::to_string(batches.size()) +
                 " channels, cap is " +
                 std::to_string(options.max_batch_channels));
  }
  size_t total_messages = 0;
  for (const serving::IngestChatRequest& batch : batches) {
    total_messages += batch.messages.size();
  }
  if (total_messages > options.max_batch_messages) {
    return ErrorResponse(
        413, "ingest: batch frame carries " + std::to_string(total_messages) +
                 " messages, cap is " +
                 std::to_string(options.max_batch_messages));
  }

  std::vector<IngestBatchEntry> entries;
  entries.reserve(batches.size());
  double max_retry_after = 0.0;
  for (const serving::IngestChatRequest& batch : batches) {
    IngestBatchEntry entry;
    entry.video_id = batch.video_id;
    auto result = server->IngestChat(batch);
    if (!result.ok()) {
      entry.status = HttpStatusFor(result.status());
      entry.error = result.status().ToString();
    } else if (result.value().throttled) {
      entry.status = 429;
      entry.response = result.value();
      max_retry_after =
          std::max(max_retry_after, result.value().retry_after_seconds);
    } else {
      entry.response = result.value();
    }
    entries.push_back(std::move(entry));
  }
  HttpResponse http = JsonResponse(200, EncodeIngestBatchResponse(entries));
  if (max_retry_after > 0.0) {
    http.SetHeader("retry-after", RetryAfterHeader(max_retry_after));
  }
  return http;
}

}  // namespace

Router BuildRoutes(serving::HighlightServer* server, RouteOptions options) {
  Router router;

  router.Handle("POST", "/visit", [server](const HttpRequest& request) {
    return JsonRoute(request, DecodePageVisitRequest,
                     [server](serving::PageVisitRequest req) {
                       return server->OnPageVisit(req);
                     });
  });

  router.Handle("POST", "/session", [server](const HttpRequest& request) {
    auto decoded = DecodeLogSessionRequest(request.body);
    if (!decoded.ok()) {
      return ErrorResponse(400, decoded.status().ToString());
    }
    if (auto st = server->LogSession(decoded.value()); !st.ok()) {
      return FromStatus(st);
    }
    return JsonResponse(200, "{\"ok\":true}");
  });

  router.Handle("POST", "/refine", [server](const HttpRequest& request) {
    auto parsed = Json::Parse(request.body);
    if (!parsed.ok()) {
      return ErrorResponse(400, parsed.status().ToString());
    }
    const Json* video_id = parsed.value().Find("video_id");
    if (video_id == nullptr || !video_id->is_string()) {
      return ErrorResponse(400, "refine: missing string field \"video_id\"");
    }
    auto report = server->Refine(video_id->AsString());
    if (!report.ok()) return FromStatus(report.status());
    return JsonResponse(200, EncodeJson(report.value()));
  });

  router.Handle("POST", "/ingest",
                [server, options](const HttpRequest& request) {
    // Sniff the frame shape on the first non-whitespace byte: `[` is a
    // chunked multi-channel batch, anything else decodes as the classic
    // single-channel object (whose decoder produces the 400 on garbage).
    const size_t first = request.body.find_first_not_of(" \t\r\n");
    if (first != std::string_view::npos && request.body[first] == '[') {
      return BatchIngestRoute(server, options, request);
    }
    auto decoded = DecodeIngestChatRequest(request.body);
    if (!decoded.ok()) {
      return ErrorResponse(400, decoded.status().ToString());
    }
    auto result = server->IngestChat(decoded.value());
    if (!result.ok()) return FromStatus(result.status());
    if (result.value().throttled) return ThrottledResponse(result.value());
    return JsonResponse(200, EncodeJson(result.value()));
  });

  router.Handle("POST", "/finalize", [server](const HttpRequest& request) {
    return JsonRoute(request, DecodeFinalizeStreamRequest,
                     [server](serving::FinalizeStreamRequest req) {
                       return server->FinalizeStream(req);
                     });
  });

  router.Handle("GET", "/highlights", [server](const HttpRequest& request) {
    const std::string video_id = request.QueryParam("video_id");
    if (video_id.empty()) {
      return ErrorResponse(400, "highlights: missing query param video_id");
    }
    auto highlights = server->GetHighlights(video_id);
    if (!highlights.ok()) return FromStatus(highlights.status());
    return JsonResponse(200, EncodeJson(highlights.value()));
  });

  router.Handle("GET", "/metrics", [](const HttpRequest& request) {
    const std::string format = request.QueryParam("format");
    HttpResponse response;
    response.body = serving::ExportMetricsPage(
        format.empty() ? "prometheus" : std::string_view(format));
    response.SetHeader("content-type", format == "json"
                                           ? "application/json"
                                           : "text/plain; version=0.0.4");
    return response;
  });

  router.Handle("GET", "/healthz", [server](const HttpRequest&) {
    const auto recovery = server->recovery_info();
    // "draining" is the lame-duck announcement: still serving, but a
    // router should stop sending new work here (see BeginDrain()).
    std::string body = "{\"status\":\"ok\",\"state\":\"";
    body += server->draining() ? "draining" : "ok";
    body += "\",\"recovery\":{\"bootstrapped\":";
    body += recovery.bootstrapped ? "true" : "false";
    if (recovery.bootstrapped) {
      const storage::RecoveryStats& s = recovery.stats;
      body += ",\"checkpoint_gen\":" + std::to_string(s.checkpoint_gen);
      body += ",\"checkpoint_lsn\":" + std::to_string(s.checkpoint_lsn);
      body += ",\"log_gen\":" + std::to_string(s.log_gen);
      body += ",\"checkpoint_records\":" + std::to_string(s.checkpoint_records);
      body += ",\"records_replayed\":" + std::to_string(s.records_replayed);
      body += ",\"torn_bytes_truncated\":" +
              std::to_string(s.torn_bytes_truncated);
      body += ",\"wall_seconds\":" + std::to_string(s.wall_seconds);
    }
    body += "}}";
    return JsonResponse(200, std::move(body));
  });

  // Admin: checkpoint now. 409 (FailedPrecondition) when there is
  // nothing to checkpoint never happens here — the explicit trigger
  // always runs — but storage errors surface as 503/500.
  router.Handle("POST", "/debug/checkpoint",
                [server](const HttpRequest&) {
    auto stats = server->Checkpoint();
    if (!stats.ok()) return FromStatus(stats.status());
    const storage::CheckpointStats& s = stats.value();
    std::string body = "{\"gen\":" + std::to_string(s.gen);
    body += ",\"lsn\":" + std::to_string(s.lsn);
    body += ",\"records_written\":" + std::to_string(s.records_written);
    body += ",\"checkpoint_bytes\":" + std::to_string(s.checkpoint_bytes);
    body += ",\"log_bytes_truncated\":" +
            std::to_string(s.log_bytes_truncated);
    body += ",\"wall_seconds\":" + std::to_string(s.wall_seconds);
    body += "}";
    return JsonResponse(200, std::move(body));
  });

  router.Handle("GET", "/debug/requests", [](const HttpRequest& request) {
    // Filters: ?min_ms= (total duration floor), ?status= (exact code or
    // a class like "5xx"), ?route= (exact label), ?limit= (row cap).
    const std::string min_ms_param = request.QueryParam("min_ms");
    const std::string status_param = request.QueryParam("status");
    const std::string route_param = request.QueryParam("route");
    const std::string limit_param = request.QueryParam("limit");
    const double min_ms =
        min_ms_param.empty() ? 0.0 : std::atof(min_ms_param.c_str());
    const size_t limit =
        limit_param.empty()
            ? 100
            : static_cast<size_t>(std::atoll(limit_param.c_str()));
    int status_exact = 0;
    char status_class = 0;
    if (!status_param.empty()) {
      if (status_param.size() == 3 && status_param[1] == 'x' &&
          status_param[2] == 'x') {
        status_class = status_param[0];
      } else {
        status_exact = std::atoi(status_param.c_str());
      }
    }

    std::string body = "{\"requests\":[";
    size_t emitted = 0;
    for (const obs::WideEvent& event : obs::RequestLog::Global().Recent()) {
      if (static_cast<double>(event.total_us) * 1e-3 < min_ms) continue;
      if (status_exact != 0 && event.status != status_exact) continue;
      if (status_class != 0 && '0' + event.status / 100 != status_class) {
        continue;
      }
      if (!route_param.empty() && event.route != route_param) continue;
      if (emitted == limit) break;
      if (emitted++) body += ",";
      body += EncodeWideEventJson(event);
    }
    body += "]}";
    return JsonResponse(200, std::move(body));
  });

  router.Handle("GET", "/debug/trace", [](const HttpRequest& request) {
    const std::string trace_id = request.QueryParam("trace_id");
    uint64_t trace_hi = 0, trace_lo = 0;
    if (!obs::ParseTraceId(trace_id, &trace_hi, &trace_lo)) {
      return ErrorResponse(
          400, "debug/trace: trace_id must be 32 hex chars, non-zero");
    }
    const std::vector<obs::TraceEvent> events =
        obs::TraceRecorder::Global().EventsForTrace(trace_hi, trace_lo);
    if (events.empty()) {
      return ErrorResponse(404, "debug/trace: no retained spans for " +
                                    trace_id +
                                    " (dropped, or not tail-sampled)");
    }
    HttpResponse response;
    response.body = obs::ChromeTraceJson(events);
    response.SetHeader("content-type", "application/json");
    return response;
  });

  // Per-channel live-ingest accounting. This is the cardinality-safe
  // home for per-channel detail: the /metrics histograms stay unlabeled
  // while operators (and the flash-crowd loadgen SLO gate) read exact
  // per-channel queues and staleness here.
  router.Handle("GET", "/debug/channels", [server](const HttpRequest&) {
    Json array = Json::MakeArray();
    for (const auto& channel : server->ChannelsSnapshot()) {
      Json entry = Json::MakeObject();
      entry.Set("video_id", Json::Str(channel.video_id));
      entry.Set("queued_messages", Json::Int(static_cast<int64_t>(
                                       channel.queued_messages)));
      entry.Set("admitted_messages", Json::Int(static_cast<int64_t>(
                                         channel.admitted_messages)));
      entry.Set("throttled_batches", Json::Int(static_cast<int64_t>(
                                         channel.throttled_batches)));
      entry.Set("rejected_messages", Json::Int(static_cast<int64_t>(
                                         channel.rejected_messages)));
      entry.Set("publishes",
                Json::Int(static_cast<int64_t>(channel.publishes)));
      entry.Set("last_staleness_seconds",
                Json::Number(channel.last_staleness_seconds));
      entry.Set("max_staleness_seconds",
                Json::Number(channel.max_staleness_seconds));
      entry.Set("closed", Json::Bool(channel.closed));
      array.Append(std::move(entry));
    }
    Json root = Json::MakeObject();
    root.Set("channels", std::move(array));
    return JsonResponse(200, root.Dump());
  });

  return router;
}

}  // namespace lightor::net
