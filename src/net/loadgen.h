#ifndef LIGHTOR_NET_LOADGEN_H_
#define LIGHTOR_NET_LOADGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "net/client.h"
#include "serving/api.h"
#include "sim/platform.h"

namespace lightor::serving {
class HighlightServer;
}

namespace lightor::net {

/// Closed-loop multi-threaded load generator for the wire front-end:
/// every thread owns one `HttpClient` (one keep-alive connection) and
/// issues the next request only after the previous response lands, so
/// offered load tracks server capacity instead of overrunning it.
///
/// Traffic mix, drawn per iteration from the weights below:
///   visit    POST /visit    on a random recorded video
///   session  POST /session  — a `sim::ViewerSimulator` session around a
///            red dot from that thread's last /visit of the video (the
///            paper's implicit-crowdsourcing loop over the wire)
///   refine   POST /refine   on a random recorded video
///   ingest   POST /ingest   — the next chat batch of the thread's own
///            live video (per-thread ownership keeps each live video's
///            batch order deterministic); exhausted streams finalize
///
/// Determinism: thread t derives everything from Rng(seed + t), so two
/// runs with the same options send the same set of requests — the
/// differential check (`RunDifferentialCheck`) relies on it only loosely,
/// though: it replays the *recorded accepted* traffic, so admission 503s
/// and retries do not break the comparison.
struct LoadGenOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  size_t num_threads = 8;
  size_t requests_per_thread = 128;
  uint64_t seed = 7;

  /// Relative draw weights; a zero weight removes the op from the mix.
  int visit_weight = 4;
  int session_weight = 8;
  int refine_weight = 1;
  int ingest_weight = 2;

  /// Recorded videos visited/sessioned/refined. Must be disjoint from
  /// `live_ids` (ingesting a recorded video is a 409 by design).
  std::vector<std::string> recorded_ids;
  /// Live videos ingested; assigned round-robin, one owner thread each.
  std::vector<std::string> live_ids;
  /// Source of ground truth for session simulation and of chat for the
  /// ingest stream. Required.
  const sim::Platform* platform = nullptr;

  size_t ingest_batch_size = 32;
  double timeout_seconds = 30.0;

  /// Scenario selector. "" (or "mix") runs the closed-loop traffic mix
  /// above. "flash-crowd" runs the multi-channel live-ingest gauntlet
  /// instead: `flash_channels` cold channels stream steadily via chunked
  /// batch frames while one hot channel ("flash-hot", owned by thread 0)
  /// offers `flash_hot_multiplier`x a cold channel's load as single
  /// frames. Hot-channel 429s are expected (tallied in `throttled_429`,
  /// dropped, never retried — that is the backpressure working); any
  /// cold-channel delivery that ultimately fails counts in
  /// `flash_cold_failures`. After the run the generator polls
  /// GET /debug/channels until every cold queue drains and publishes
  /// land, then reports the cold channels' provisional-staleness p99
  /// (`provisional_p99_ms`, gateable via SLO op "provisional_p99").
  /// Synthetic chat is generated in-process: `platform`, `recorded_ids`
  /// and `live_ids` are not used.
  std::string scenario;
  size_t flash_channels = 1000;
  size_t flash_hot_multiplier = 100;
  /// Cold channels packed into one chunked /ingest frame. Keep at or
  /// below the server's RouteOptions::max_batch_channels or every frame
  /// is a 413.
  size_t flash_frame_channels = 32;

  /// Cluster mode: when true, a 503 response (router with every ring
  /// candidate down, backend admission control) is retried with jittered
  /// backoff until `retry_budget_seconds` is spent instead of counting
  /// as a failure, and wire errors on the *idempotent* ops (visit,
  /// session, refine — sessions are deduplicated server-side by id) are
  /// retried the same way. This is what lets a SIGKILL'd-and-restarted
  /// backend pass through a run with zero failed client requests.
  /// Non-idempotent ops (ingest, finalize) never retry on a wire error:
  /// the request may have been applied before the connection died.
  bool retry_503 = false;
  double retry_budget_seconds = 10.0;
  double retry_backoff_ms = 20.0;

  /// Rows kept in the report's slowest-requests table (0 disables it).
  /// Each row carries the request's trace id, so a tail outlier can be
  /// pulled straight from the server's `/debug/trace` endpoint.
  size_t slowest_n = 8;

  /// Per-op p99 ceiling asserted after the run; `op` is one of "visit",
  /// "session", "refine", "ingest", "finalize", "ingest_batch",
  /// "ingest_hot", "provisional_p99" (flash-crowd: cold-channel
  /// provisional-staleness p99, not a request latency), or "all" for
  /// the whole mix. A violated target flips `LoadGenReport::slo_ok`
  /// (the run itself still succeeds — enforcement is the caller's
  /// call).
  struct SloTarget {
    std::string op;
    double p99_ms = 0.0;
  };
  std::vector<SloTarget> slo_targets;

  common::Status Validate() const;
};

/// One row of the slowest-requests table: enough to chase the outlier
/// through the server's wide-event log and span ring.
struct SlowRequest {
  double ms = 0.0;
  std::string op;
  std::string trace_id;  ///< 32 lowercase hex chars, as sent upstream
  int status = 0;        ///< -1 on a wire error
};

/// Per-op latency summary (ops with zero completed responses are
/// omitted).
struct OpLatency {
  std::string op;
  size_t count = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

/// Verdict for one `LoadGenOptions::SloTarget`.
struct SloResult {
  std::string op;
  double target_p99_ms = 0.0;
  double actual_p99_ms = 0.0;
  bool ok = true;
};

/// Aggregate results; `EncodeJson` below is the CLI's report format.
struct LoadGenReport {
  size_t requests = 0;     ///< responses received (any status)
  size_t wire_errors = 0;  ///< connect/send/recv/parse failures
  size_t status_2xx = 0;
  size_t status_4xx = 0;
  size_t status_5xx = 0;
  size_t rejected_503 = 0;  ///< admission-control rejections seen
  size_t throttled_429 = 0;  ///< per-channel ingest budget rejections seen
  /// Flash-crowd only: cold-channel deliveries that failed for good
  /// (after retries). The scenario's pass criterion is this staying 0.
  size_t flash_cold_failures = 0;
  /// Extra attempts spent absorbing 503s/wire errors (`retry_503` mode);
  /// only the final attempt of each request is tallied above.
  size_t retries = 0;
  size_t visits = 0;
  size_t sessions = 0;
  size_t refines = 0;
  size_t ingests = 0;
  size_t finalizes = 0;
  double seconds = 0.0;
  double throughput_rps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  /// Flash-crowd only: p99 over cold channels of each channel's worst
  /// provisional-snapshot staleness, scraped from /debug/channels after
  /// the queues settle. When settling times out this is floored at the
  /// elapsed wait, so a "provisional_p99" SLO target cannot pass vacuously.
  double provisional_p99_ms = 0.0;
  /// Slowest completed requests across all threads, worst first (at most
  /// `LoadGenOptions::slowest_n` rows).
  std::vector<SlowRequest> slowest;
  std::vector<OpLatency> op_latency;
  std::vector<SloResult> slo;
  /// False iff any `slo_targets` entry was violated.
  bool slo_ok = true;
};

std::string EncodeJson(const LoadGenReport& report);

/// The accepted (2xx) requests, for replaying into a reference server.
/// Per-video ingest order is preserved; everything else is a set.
struct RecordedTraffic {
  std::vector<serving::PageVisitRequest> visits;
  std::vector<serving::LogSessionRequest> sessions;
  std::vector<serving::IngestChatRequest> ingests;
  std::vector<serving::FinalizeStreamRequest> finalizes;
};

/// Runs the load. `recorded`, when non-null, collects accepted traffic
/// for `RunDifferentialCheck` (the caller should then configure the
/// served server with `refine_batch_sessions = 0` and a zero
/// `refine_weight`, so highlight state stays a pure function of the
/// recorded set — see the check's contract below).
common::Result<LoadGenReport> RunLoadGen(const LoadGenOptions& options,
                                         RecordedTraffic* recorded = nullptr);

/// Differential check: replays `recorded` into `reference` (visits
/// deduped, every session, per-video ingest order, finalizes), then for
/// every recorded video POSTs /refine to the served server and calls
/// `reference->Refine`, comparing report bodies byte-for-byte; then
/// fetches GET /highlights for every video touched by the traffic and
/// compares against `EncodeJson(reference->GetHighlights(...))`, again
/// byte-for-byte.
///
/// Sound because a single refinement pass consumes *all* logged
/// sessions keyed by session id — the thread interleaving the served
/// server actually saw cannot affect the outcome, only the accepted
/// set can, and that is exactly what was recorded. Requires background
/// refinement disabled on the served server (`refine_batch_sessions=0`)
/// and no /refine traffic during the run, else served state depends on
/// pass boundaries the reference cannot reproduce.
common::Status RunDifferentialCheck(const RecordedTraffic& recorded,
                                    HttpClient& served,
                                    serving::HighlightServer* reference);

}  // namespace lightor::net

#endif  // LIGHTOR_NET_LOADGEN_H_
