#include "net/metrics.h"

#include <mutex>
#include <string>
#include <unordered_map>

namespace lightor::net {

namespace {

obs::Counter& SimpleCounter(const char* name) {
  return *obs::Registry::Global().GetCounter(name, {});
}

}  // namespace

obs::Counter& RequestsCounter(const char* route) {
  // Route strings come from the fixed route table (plus "other"), so the
  // cache stays a handful of entries; the map lock is cheap next to a
  // socket round trip anyway.
  static std::mutex mu;
  static std::unordered_map<std::string, obs::Counter*> cache;
  std::lock_guard<std::mutex> lock(mu);
  auto [it, inserted] = cache.try_emplace(route, nullptr);
  if (inserted) {
    it->second = obs::Registry::Global().GetCounter(
        "lightor_net_requests_total", {{"route", route}});
  }
  return *it->second;
}

obs::Counter& ResponsesCounter(int status) {
  static obs::Counter* const c2xx = obs::Registry::Global().GetCounter(
      "lightor_net_responses_total", {{"class", "2xx"}});
  static obs::Counter* const c4xx = obs::Registry::Global().GetCounter(
      "lightor_net_responses_total", {{"class", "4xx"}});
  static obs::Counter* const c5xx = obs::Registry::Global().GetCounter(
      "lightor_net_responses_total", {{"class", "5xx"}});
  if (status < 400) return *c2xx;
  if (status < 500) return *c4xx;
  return *c5xx;
}

obs::Counter& AdmissionRejectedCounter() {
  static obs::Counter* const counter =
      &SimpleCounter("lightor_net_admission_rejected_total");
  return *counter;
}

obs::Counter& DeadlineExpiredCounter() {
  static obs::Counter* const counter =
      &SimpleCounter("lightor_net_deadline_expired_total");
  return *counter;
}

obs::Counter& ParseErrorsCounter() {
  static obs::Counter* const counter =
      &SimpleCounter("lightor_net_parse_errors_total");
  return *counter;
}

obs::Counter& ConnectionsOpenedCounter() {
  static obs::Counter* const counter =
      &SimpleCounter("lightor_net_connections_opened_total");
  return *counter;
}

obs::Counter& ConnectionsClosedCounter() {
  static obs::Counter* const counter =
      &SimpleCounter("lightor_net_connections_closed_total");
  return *counter;
}

obs::Counter& IdleReapedCounter() {
  static obs::Counter* const counter =
      &SimpleCounter("lightor_net_idle_reaped_total");
  return *counter;
}

obs::Gauge& ActiveConnectionsGauge() {
  static obs::Gauge* const gauge = obs::Registry::Global().GetGauge(
      "lightor_net_active_connections", {});
  return *gauge;
}

obs::Gauge& InFlightRequestsGauge() {
  static obs::Gauge* const gauge = obs::Registry::Global().GetGauge(
      "lightor_net_in_flight_requests", {});
  return *gauge;
}

obs::Histogram& RequestLatencySeconds(const char* route, int status) {
  // Route × status-class label sets stay small (fixed route table times
  // three classes); same cached-pointer pattern as RequestsCounter.
  static std::mutex mu;
  static std::unordered_map<std::string, obs::Histogram*> cache;
  const char* status_class =
      status < 400 ? "2xx" : (status < 500 ? "4xx" : "5xx");
  std::string key = std::string(route) + "\x1f" + status_class;
  std::lock_guard<std::mutex> lock(mu);
  auto [it, inserted] = cache.try_emplace(std::move(key), nullptr);
  if (inserted) {
    it->second = obs::Registry::Global().GetHistogram(
        "lightor_net_request_seconds", obs::Histogram::LatencyBounds(),
        {{"route", route}, {"class", status_class}});
  }
  return *it->second;
}

obs::Counter& BytesReadCounter() {
  static obs::Counter* const counter =
      &SimpleCounter("lightor_net_bytes_read_total");
  return *counter;
}

obs::Counter& BytesWrittenCounter() {
  static obs::Counter* const counter =
      &SimpleCounter("lightor_net_bytes_written_total");
  return *counter;
}

}  // namespace lightor::net
