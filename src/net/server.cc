#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include "common/logging.h"
#include "net/metrics.h"
#include "obs/request_log.h"
#include "obs/trace.h"
#include "obs/trace_context.h"

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

namespace lightor::net {

namespace {

using Clock = std::chrono::steady_clock;
using TimePoint = Clock::time_point;

common::Status Errno(const std::string& what) {
  return common::Status::IoError(what + ": " + std::strerror(errno));
}

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

TimePoint AfterSeconds(TimePoint from, double seconds) {
  return from + std::chrono::microseconds(
                    static_cast<int64_t>(seconds * 1e6));
}

}  // namespace

// ---------------------------------------------------------------------------
// Router

void Router::Handle(std::string method, std::string path,
                    HttpHandler handler) {
  routes_.push_back(
      Route{std::move(method), std::move(path), std::move(handler)});
}

const HttpHandler* Router::Find(std::string_view method, std::string_view path,
                                int* error_status) const {
  bool path_known = false;
  for (const Route& route : routes_) {
    if (route.path != path) continue;
    if (route.method == method) return &route.handler;
    path_known = true;
  }
  *error_status = path_known ? 405 : 404;
  return nullptr;
}

const char* Router::RouteLabel(std::string_view path) const {
  for (const Route& route : routes_) {
    if (route.path == path) return route.path.c_str();
  }
  return "other";
}

// ---------------------------------------------------------------------------
// NetOptions

common::Status NetOptions::Validate() const {
  if (host.empty())
    return common::Status::InvalidArgument("NetOptions: empty host");
  if (num_workers == 0)
    return common::Status::InvalidArgument("NetOptions: num_workers == 0");
  if (max_in_flight == 0)
    return common::Status::InvalidArgument("NetOptions: max_in_flight == 0");
  if (max_connections == 0)
    return common::Status::InvalidArgument("NetOptions: max_connections == 0");
  if (max_header_bytes < 64)
    return common::Status::InvalidArgument(
        "NetOptions: max_header_bytes < 64");
  if (drain_timeout_seconds <= 0.0)
    return common::Status::InvalidArgument(
        "NetOptions: drain_timeout_seconds <= 0");
  return common::Status::OK();
}

// ---------------------------------------------------------------------------
// Poller: epoll on Linux, portable poll(2) fallback

class Poller {
 public:
  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    bool error = false;
  };

  virtual ~Poller() = default;
  virtual common::Status Add(int fd, bool read, bool write) = 0;
  virtual common::Status Modify(int fd, bool read, bool write) = 0;
  virtual void Remove(int fd) = 0;
  /// Appends ready events to `out`; `timeout_ms` caps the block.
  virtual common::Status Wait(int timeout_ms, std::vector<Event>& out) = 0;
};

namespace {

/// poll(2) backend: interest map rebuilt into a pollfd vector per wait.
/// O(n) per wait, which is fine at the connection counts a single
/// event-loop thread serves; it exists as the portable fallback and to
/// keep both backends honest in tests.
class PollPoller final : public Poller {
 public:
  common::Status Add(int fd, bool read, bool write) override {
    interest_[fd] = Mask(read, write);
    return common::Status::OK();
  }
  common::Status Modify(int fd, bool read, bool write) override {
    interest_[fd] = Mask(read, write);
    return common::Status::OK();
  }
  void Remove(int fd) override { interest_.erase(fd); }

  common::Status Wait(int timeout_ms, std::vector<Event>& out) override {
    pollfds_.clear();
    for (const auto& [fd, events] : interest_) {
      pollfds_.push_back(pollfd{fd, events, 0});
    }
    const int n = ::poll(pollfds_.data(),
                         static_cast<nfds_t>(pollfds_.size()), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) return common::Status::OK();
      return Errno("poll");
    }
    for (const pollfd& p : pollfds_) {
      if (p.revents == 0) continue;
      Event event;
      event.fd = p.fd;
      event.readable = (p.revents & POLLIN) != 0;
      event.writable = (p.revents & POLLOUT) != 0;
      // A half-closed peer shows up as POLLIN + EOF; POLLHUP means both
      // directions are gone, so the connection is only good for closing.
      event.error = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
      out.push_back(event);
    }
    return common::Status::OK();
  }

 private:
  static short Mask(bool read, bool write) {
    short events = 0;
    if (read) events |= POLLIN;
    if (write) events |= POLLOUT;
    return events;
  }

  std::unordered_map<int, short> interest_;
  std::vector<pollfd> pollfds_;
};

#ifdef __linux__
class EpollPoller final : public Poller {
 public:
  ~EpollPoller() override {
    if (epfd_ >= 0) ::close(epfd_);
  }

  common::Status Init() {
    epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epfd_ < 0) return Errno("epoll_create1");
    return common::Status::OK();
  }

  common::Status Add(int fd, bool read, bool write) override {
    epoll_event ev = Mask(fd, read, write);
    if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      return Errno("epoll_ctl(ADD)");
    }
    return common::Status::OK();
  }

  common::Status Modify(int fd, bool read, bool write) override {
    epoll_event ev = Mask(fd, read, write);
    if (::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
      return Errno("epoll_ctl(MOD)");
    }
    return common::Status::OK();
  }

  void Remove(int fd) override {
    ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
  }

  common::Status Wait(int timeout_ms, std::vector<Event>& out) override {
    epoll_event events[128];
    const int n = ::epoll_wait(epfd_, events, 128, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) return common::Status::OK();
      return Errno("epoll_wait");
    }
    for (int i = 0; i < n; ++i) {
      Event event;
      event.fd = static_cast<int>(events[i].data.fd);
      event.readable = (events[i].events & EPOLLIN) != 0;
      event.writable = (events[i].events & EPOLLOUT) != 0;
      event.error = (events[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      out.push_back(event);
    }
    return common::Status::OK();
  }

 private:
  static epoll_event Mask(int fd, bool read, bool write) {
    epoll_event ev{};
    ev.data.fd = fd;
    if (read) ev.events |= EPOLLIN;
    if (write) ev.events |= EPOLLOUT;
    return ev;
  }

  int epfd_ = -1;
};
#endif  // __linux__

std::unique_ptr<Poller> MakePoller(bool use_epoll) {
#ifdef __linux__
  if (use_epoll) {
    auto poller = std::make_unique<EpollPoller>();
    if (poller->Init().ok()) return poller;
    LIGHTOR_LOG(Warning) << "net: epoll unavailable, falling back to poll";
  }
#else
  (void)use_epoll;
#endif
  return std::make_unique<PollPoller>();
}

}  // namespace

// ---------------------------------------------------------------------------
// Connection / queue plumbing

/// One request's tracing state. The IO thread owns the wide-event
/// fields (status, byte counts, write clock); the worker handling the
/// request only touches the collector, whose stage slots are atomics
/// and whose span list is mutex-guarded — so a deadline-expired request
/// can be finalized on the IO thread while its stranded handler is
/// still running (the sealed collector drops the late spans).
struct RequestTelemetry {
  obs::TraceContext ctx;        ///< server context; span_id = root span
  uint64_t parent_span_id = 0;  ///< caller's span id from traceparent
  bool sampled_in = false;      ///< incoming sampled flag (forces keep)
  obs::SpanCollector collector;
  uint64_t start_us = 0;  ///< request start (first parse), TraceNowMicros
  std::string route;      ///< Router::RouteLabel
  std::string method;
  uint64_t bytes_in = 0;
  double retry_after_seconds = 0.0;
  // IO-thread-only response bookkeeping:
  int status = 0;  ///< 0 until a response is queued
  uint64_t bytes_out = 0;
  uint64_t write_start_us = 0;
};

struct HttpServer::Conn {
  explicit Conn(const RequestParser::Limits& limits) : parser(limits) {}

  int fd = -1;
  uint64_t serial = 0;  ///< guards against fd reuse in stale completions
  RequestParser parser;
  std::string outbuf;
  size_t out_off = 0;
  /// One request dispatched, its response not yet queued. At most one
  /// per connection — pipelined successors wait in the parser buffer.
  bool handling = false;
  /// Bumped per dispatch and on deadline expiry; a completion whose
  /// req_serial mismatches is a late result and is dropped.
  uint64_t req_serial = 0;
  /// A worker may still hold string_views into `parser`'s buffer. Unlike
  /// `handling` (cleared early on deadline expiry) this stays set until the
  /// worker's completion arrives, so CloseConn knows it must not destroy
  /// the connection yet.
  bool worker_outstanding = false;
  bool close_after = false;
  bool want_read = true;
  bool want_write = false;
  TimePoint last_active;
  TimePoint deadline;
  /// Parse wall time accumulated across reads for the request currently
  /// being assembled; charged to its telemetry when it becomes ready.
  uint64_t parse_accum_us = 0;
  /// Telemetry of the request currently dispatched or being answered.
  std::shared_ptr<RequestTelemetry> pending;
};

struct HttpServer::Job {
  int fd = -1;
  uint64_t conn_serial = 0;
  uint64_t req_serial = 0;
  HttpRequest request;
  const HttpHandler* handler = nullptr;
  bool keep_alive = true;
  const char* route = "other";  ///< stable label from the route table
  uint64_t dispatch_us = 0;     ///< queue-wait clock start
  std::shared_ptr<RequestTelemetry> telemetry;
};

struct HttpServer::Completion {
  int fd = -1;
  uint64_t conn_serial = 0;
  uint64_t req_serial = 0;
  std::string bytes;  ///< fully serialized response
  bool keep_alive = true;
  int status = 200;
};

// ---------------------------------------------------------------------------
// Lifecycle

common::Result<std::unique_ptr<HttpServer>> HttpServer::Create(
    NetOptions options, Router router) {
  LIGHTOR_RETURN_IF_ERROR(options.Validate());
  std::unique_ptr<HttpServer> server(
      new HttpServer(std::move(options), std::move(router)));
  LIGHTOR_RETURN_IF_ERROR(server->Bind());
  server->io_thread_ = std::thread([s = server.get()] { s->IoLoop(); });
  server->workers_.reserve(server->options_.num_workers);
  for (size_t i = 0; i < server->options_.num_workers; ++i) {
    server->workers_.emplace_back([s = server.get()] { s->WorkerLoop(); });
  }
  LIGHTOR_LOG(Info) << "net: listening on " << server->options_.host << ":"
                    << server->port_ << " (" << server->options_.num_workers
                    << " workers, max " << server->options_.max_in_flight
                    << " in flight)";
  return server;
}

HttpServer::HttpServer(NetOptions options, Router router)
    : options_(std::move(options)), router_(std::move(router)) {}

HttpServer::~HttpServer() {
  Shutdown();
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

common::Status HttpServer::Bind() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (!SetNonBlocking(listen_fd_)) return Errno("fcntl(listen)");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return common::Status::InvalidArgument("NetOptions: bad IPv4 host: " +
                                           options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Errno("bind " + options_.host + ":" +
                 std::to_string(options_.port));
  }
  if (::listen(listen_fd_, 128) != 0) return Errno("listen");

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    return Errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) return Errno("pipe");
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  if (!SetNonBlocking(wake_read_fd_) || !SetNonBlocking(wake_write_fd_)) {
    return Errno("fcntl(pipe)");
  }

  poller_ = MakePoller(options_.use_epoll);
  LIGHTOR_RETURN_IF_ERROR(poller_->Add(listen_fd_, true, false));
  LIGHTOR_RETURN_IF_ERROR(poller_->Add(wake_read_fd_, true, false));
  return common::Status::OK();
}

void HttpServer::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (shut_down_) return;
    shut_down_ = true;
    draining_ = true;
  }
  WakeIo();
  if (io_thread_.joinable()) io_thread_.join();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stop_workers_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  LIGHTOR_LOG(Info) << "net: drained and shut down";
}

void HttpServer::WakeIo() {
  const char byte = 'w';
  [[maybe_unused]] const ssize_t n = ::write(wake_write_fd_, &byte, 1);
}

// ---------------------------------------------------------------------------
// Worker pool

void HttpServer::WorkerLoop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock,
                     [this] { return stop_workers_ || !jobs_.empty(); });
      if (jobs_.empty()) {
        if (stop_workers_) return;
        continue;
      }
      job = std::move(jobs_.front());
      jobs_.pop_front();
    }
    RequestTelemetry* telemetry = job.telemetry.get();
    if (telemetry != nullptr) {
      telemetry->collector.AddStageMicros(
          obs::Stage::kQueue, obs::TraceNowMicros() - job.dispatch_us);
    }
    // Handler (and serialization below) run under the request's trace
    // context: spans opened inside land in its collector, tagged with
    // the trace id and parented to the request's root span.
    obs::ScopedTraceContext trace_guard(
        telemetry != nullptr ? telemetry->ctx : obs::TraceContext{},
        telemetry != nullptr ? &telemetry->collector : nullptr);
    HttpResponse response;
    const uint64_t handler_start_us = obs::TraceNowMicros();
    {
      obs::ScopedStage stage(obs::Stage::kHandler);
      try {
        response = (*job.handler)(job.request);
      } catch (const std::exception& e) {
        response = ErrorResponse(500, std::string("handler: ") + e.what());
      } catch (...) {
        response = ErrorResponse(500, "handler raised");
      }
    }
    RequestLatencySeconds(job.route, response.status)
        .Observe(static_cast<double>(obs::TraceNowMicros() -
                                     handler_start_us) *
                 1e-6);
    ResponsesCounter(response.status).Increment();
    Completion completion;
    completion.fd = job.fd;
    completion.conn_serial = job.conn_serial;
    completion.req_serial = job.req_serial;
    completion.keep_alive = job.keep_alive;
    completion.status = response.status;
    {
      obs::ScopedStage stage(obs::Stage::kSerialize);
      completion.bytes = response.Serialize(job.keep_alive);
    }
    {
      std::lock_guard<std::mutex> lock(completion_mu_);
      completions_.push_back(std::move(completion));
    }
    WakeIo();
  }
}

// ---------------------------------------------------------------------------
// Event loop (everything below runs on the IO thread only)

void HttpServer::IoLoop() {
  std::vector<Poller::Event> events;
  bool drain_started = false;
  TimePoint drain_deadline{};
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      if (draining_ && !drain_started) {
        drain_started = true;
        io_draining_ = true;
        drain_deadline =
            AfterSeconds(Clock::now(), options_.drain_timeout_seconds);
      }
    }
    if (drain_started && listen_fd_ >= 0) StartDrain();
    if (drain_started &&
        (DrainComplete() || Clock::now() >= drain_deadline)) {
      break;
    }

    events.clear();
    if (auto st = poller_->Wait(50, events); !st.ok()) {
      LIGHTOR_LOG(Error) << "net: poller wait failed: " << st.ToString();
      break;
    }
    for (const Poller::Event& event : events) {
      if (event.fd == listen_fd_) {
        AcceptAll();
      } else if (event.fd == wake_read_fd_) {
        char buf[256];
        while (::read(wake_read_fd_, buf, sizeof(buf)) > 0) {
        }
      } else {
        HandleConnEvent(event.fd, event.readable, event.writable,
                        event.error);
      }
    }
    ProcessCompletions();
    CheckTimers();
  }

  // Force-close whatever remains (drain timeout or poller failure).
  std::vector<int> fds;
  fds.reserve(conns_.size());
  for (const auto& [fd, conn] : conns_) fds.push_back(fd);
  for (const int fd : fds) CloseConn(fd);
}

void HttpServer::StartDrain() {
  poller_->Remove(listen_fd_);
  ::close(listen_fd_);
  listen_fd_ = -1;
  // Connections with no accepted work pending are cut immediately; the
  // rest close as their in-flight responses flush (QueueResponse forces
  // close_after while draining).
  std::vector<int> idle;
  for (const auto& [fd, conn] : conns_) {
    if (!conn.handling && conn.outbuf.empty()) idle.push_back(fd);
  }
  for (const int fd : idle) CloseConn(fd);
  LIGHTOR_LOG(Info) << "net: draining (" << conns_.size()
                    << " connection(s) with in-flight work, " << in_flight_
                    << " request(s) in flight)";
}

bool HttpServer::DrainComplete() {
  return conns_.empty() && in_flight_ == 0;
}

void HttpServer::AcceptAll() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or a transient accept error: wait for next event
    }
    if (conns_.size() >= options_.max_connections || !SetNonBlocking(fd)) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    RequestParser::Limits limits;
    limits.max_header_bytes = options_.max_header_bytes;
    limits.max_body_bytes = options_.max_body_bytes;
    auto [it, inserted] = conns_.emplace(fd, Conn(limits));
    Conn& conn = it->second;
    conn.fd = fd;
    conn.serial = next_serial_++;
    conn.last_active = Clock::now();
    if (auto st = poller_->Add(fd, true, false); !st.ok()) {
      conns_.erase(it);
      ::close(fd);
      continue;
    }
    ConnectionsOpenedCounter().Increment();
    ActiveConnectionsGauge().Set(static_cast<double>(conns_.size()));
  }
}

void HttpServer::HandleConnEvent(int fd, bool readable, bool writable,
                                 bool error) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;  // already closed this iteration
  if (error) {
    CloseConn(fd);
    return;
  }
  if (writable) {
    FlushWrites(it->second);
    it = conns_.find(fd);  // FlushWrites may close
    if (it == conns_.end()) return;
  }
  if (readable && it->second.want_read) {
    ReadFrom(it->second);
  }
}

void HttpServer::ReadFrom(Conn& conn) {
  char buf[16384];
  // A few reads per event; level-triggered polling re-fires if the
  // socket still has data, so capping the loop cannot starve anyone.
  for (int i = 0; i < 4; ++i) {
    const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      BytesReadCounter().Increment(static_cast<uint64_t>(n));
      conn.last_active = Clock::now();
      conn.parser.Append(std::string_view(buf, static_cast<size_t>(n)));
      TryAdvance(conn);
      // Backpressure: once a request is dispatched or a response is
      // pending, stop pulling bytes (they stay in the socket buffer).
      if (conn.handling || !conn.outbuf.empty()) break;
      if (static_cast<size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n == 0) {
      // Peer closed. Anything buffered is an abandoned partial request
      // (the "connection closed mid-body" case): drop it. A dispatched
      // request keeps running, but its response has nowhere to go.
      CloseConn(conn.fd);
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConn(conn.fd);
    return;
  }
  UpdateInterest(conn);
}

std::shared_ptr<RequestTelemetry> HttpServer::StartTelemetry(
    Conn& conn, const HttpRequest* request) {
  auto telemetry = std::make_shared<RequestTelemetry>();
  const uint64_t now = obs::TraceNowMicros();
  // Charge the bytes-to-request assembly time and anchor the request
  // start before the first parse attempt began.
  telemetry->start_us = now - std::min(conn.parse_accum_us, now);
  telemetry->collector.AddStageMicros(obs::Stage::kParse,
                                      conn.parse_accum_us);
  conn.parse_accum_us = 0;
  if (request != nullptr) {
    telemetry->method = std::string(request->method);
    telemetry->route = router_.RouteLabel(request->path);
    telemetry->bytes_in = conn.parser.last_request_bytes();
    if (const std::string_view* header = request->FindHeader("traceparent")) {
      obs::TraceContext incoming;
      if (obs::ParseTraceparent(*header, &incoming)) {
        telemetry->ctx.trace_hi = incoming.trace_hi;
        telemetry->ctx.trace_lo = incoming.trace_lo;
        telemetry->ctx.sampled = incoming.sampled;
        telemetry->parent_span_id = incoming.span_id;
        telemetry->sampled_in = incoming.sampled;
      }
    }
  } else {
    telemetry->route = "other";  // parse error: no request to attribute
  }
  if (!telemetry->ctx.valid()) {
    telemetry->ctx = obs::GenerateTraceContext();
  } else {
    telemetry->ctx.span_id = obs::GenerateSpanId();  // server root span
  }
  return telemetry;
}

void HttpServer::EmitTelemetry(Conn& conn) {
  std::shared_ptr<RequestTelemetry> telemetry = std::move(conn.pending);
  conn.pending.reset();
  if (telemetry == nullptr || telemetry->status == 0) return;
  const uint64_t now = obs::TraceNowMicros();
  if (telemetry->write_start_us != 0) {
    telemetry->collector.AddStageMicros(obs::Stage::kWrite,
                                        now - telemetry->write_start_us);
  }
  obs::WideEvent event;
  event.trace_hi = telemetry->ctx.trace_hi;
  event.trace_lo = telemetry->ctx.trace_lo;
  event.span_id = telemetry->ctx.span_id;
  event.parent_span_id = telemetry->parent_span_id;
  event.route = telemetry->route;
  event.method = telemetry->method;
  event.status = telemetry->status;
  event.bytes_in = telemetry->bytes_in;
  event.bytes_out = telemetry->bytes_out;
  event.start_us = telemetry->start_us;
  event.total_us = now - telemetry->start_us;
  event.retry_after_seconds = telemetry->retry_after_seconds;
  event.sampled_in = telemetry->sampled_in;
  obs::RequestLog::Global().Emit(std::move(event), &telemetry->collector);
}

void HttpServer::TryAdvance(Conn& conn) {
  while (!conn.handling && conn.outbuf.empty() && !conn.close_after) {
    const uint64_t parse_start_us = obs::TraceNowMicros();
    const RequestParser::State state = conn.parser.Parse();
    conn.parse_accum_us += obs::TraceNowMicros() - parse_start_us;
    if (state == RequestParser::State::kNeedMore) return;
    if (state == RequestParser::State::kError) {
      ParseErrorsCounter().Increment();
      conn.pending = StartTelemetry(conn, nullptr);
      QueueResponse(
          conn,
          ErrorResponse(conn.parser.error_status(), conn.parser.error()),
          /*keep_alive=*/false);
      return;
    }

    HttpRequest request = std::move(conn.parser.request());
    conn.pending = StartTelemetry(conn, &request);
    const bool keep_alive = request.keep_alive() && !io_draining_;
    if (io_draining_) {
      // Late pipelined request on a connection kept open for an
      // in-flight flush; intake is closed.
      conn.pending->retry_after_seconds = 1.0;
      HttpResponse response = ErrorResponse(503, "server is draining");
      response.SetHeader("retry-after", "1");
      QueueResponse(conn, response, false);
      return;
    }

    int miss_status = 0;
    const HttpHandler* handler =
        router_.Find(request.method, request.path, &miss_status);
    if (handler == nullptr) {
      RequestsCounter("other").Increment();
      QueueResponse(conn,
                    ErrorResponse(miss_status,
                                  miss_status == 404 ? "no such route"
                                                     : "method not allowed"),
                    keep_alive);
      continue;
    }
    const char* route = router_.RouteLabel(request.path);
    RequestsCounter(route).Increment();

    if (in_flight_ >= options_.max_in_flight) {
      AdmissionRejectedCounter().Increment();
      conn.pending->retry_after_seconds = options_.retry_after_seconds;
      HttpResponse response = ErrorResponse(503, "server at capacity");
      response.SetHeader(
          "retry-after",
          std::to_string(static_cast<int>(
              std::ceil(options_.retry_after_seconds))));
      QueueResponse(conn, response, keep_alive);
      continue;
    }

    ++in_flight_;
    InFlightRequestsGauge().Set(static_cast<double>(in_flight_));
    conn.handling = true;
    conn.worker_outstanding = true;
    ++conn.req_serial;
    if (options_.request_deadline_seconds > 0.0) {
      conn.deadline =
          AfterSeconds(Clock::now(), options_.request_deadline_seconds);
    }
    Job job;
    job.fd = conn.fd;
    job.conn_serial = conn.serial;
    job.req_serial = conn.req_serial;
    job.request = std::move(request);
    job.handler = handler;
    job.keep_alive = keep_alive;
    job.route = route;
    job.dispatch_us = obs::TraceNowMicros();
    job.telemetry = conn.pending;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      jobs_.push_back(std::move(job));
    }
    queue_cv_.notify_one();
    return;  // one dispatched request per connection at a time
  }
}

void HttpServer::QueueResponse(Conn& conn, const HttpResponse& response,
                               bool keep_alive) {
  ResponsesCounter(response.status).Increment();
  conn.outbuf = response.Serialize(keep_alive);
  conn.out_off = 0;
  if (!keep_alive) conn.close_after = true;
  if (conn.pending != nullptr) {
    conn.pending->status = response.status;
    conn.pending->bytes_out = conn.outbuf.size();
    conn.pending->write_start_us = obs::TraceNowMicros();
  }
  UpdateInterest(conn);  // level-triggered EPOLLOUT fires right away
}

void HttpServer::FlushWrites(Conn& conn) {
  while (conn.out_off < conn.outbuf.size()) {
    const ssize_t n =
        ::send(conn.fd, conn.outbuf.data() + conn.out_off,
               conn.outbuf.size() - conn.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      BytesWrittenCounter().Increment(static_cast<uint64_t>(n));
      conn.out_off += static_cast<size_t>(n);
      conn.last_active = Clock::now();
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    CloseConn(conn.fd);
    return;
  }
  if (conn.out_off == conn.outbuf.size()) {
    conn.outbuf.clear();
    conn.out_off = 0;
    EmitTelemetry(conn);  // response fully on the wire: the wide event
    if (conn.close_after) {
      CloseConn(conn.fd);
      return;
    }
    TryAdvance(conn);  // a pipelined request may already be buffered
  }
  UpdateInterest(conn);
}

void HttpServer::UpdateInterest(Conn& conn) {
  const bool want_read = !conn.handling && conn.outbuf.empty();
  const bool want_write = !conn.outbuf.empty();
  if (want_read == conn.want_read && want_write == conn.want_write) return;
  conn.want_read = want_read;
  conn.want_write = want_write;
  if (auto st = poller_->Modify(conn.fd, want_read, want_write); !st.ok()) {
    CloseConn(conn.fd);
  }
}

void HttpServer::CloseConn(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  // A queued-but-unflushed response still gets its wide event (the
  // telemetry of a request whose response was never queued does not —
  // there is no status to report).
  EmitTelemetry(it->second);
  poller_->Remove(fd);
  ::close(fd);
  if (it->second.worker_outstanding) {
    // A worker thread may still read the request's string_views, which
    // point into this connection's parser buffer. Park the node until its
    // completion arrives (ProcessCompletions reaps it by conn serial).
    zombie_conns_.push_back(conns_.extract(it));
  } else {
    conns_.erase(it);
  }
  ConnectionsClosedCounter().Increment();
  ActiveConnectionsGauge().Set(static_cast<double>(conns_.size()));
}

void HttpServer::CheckTimers() {
  const TimePoint now = Clock::now();
  std::vector<int> reap;
  for (auto& [fd, conn] : conns_) {
    if (conn.handling && options_.request_deadline_seconds > 0.0 &&
        now >= conn.deadline) {
      // Answer on the handler's behalf. The worker keeps its in-flight
      // slot until it actually returns (capacity accounting stays
      // truthful); its late response is dropped via the serial bump,
      // and the connection closes because the late framing is unusable.
      DeadlineExpiredCounter().Increment();
      conn.handling = false;
      ++conn.req_serial;
      QueueResponse(conn, ErrorResponse(504, "request deadline exceeded"),
                    /*keep_alive=*/false);
    } else if (!conn.handling && conn.outbuf.empty() &&
               options_.idle_timeout_seconds > 0.0 &&
               now >= AfterSeconds(conn.last_active,
                                   options_.idle_timeout_seconds)) {
      reap.push_back(fd);
    }
  }
  for (const int fd : reap) {
    IdleReapedCounter().Increment();
    CloseConn(fd);
  }
}

void HttpServer::ProcessCompletions() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(completion_mu_);
    batch.swap(completions_);
  }
  for (Completion& completion : batch) {
    --in_flight_;
    // The worker is done with this request's buffers: release any parked
    // connection that was closed while the handler ran.
    zombie_conns_.erase(
        std::remove_if(zombie_conns_.begin(), zombie_conns_.end(),
                       [&](const ConnNode& node) {
                         return node.mapped().serial == completion.conn_serial;
                       }),
        zombie_conns_.end());
    auto it = conns_.find(completion.fd);
    if (it == conns_.end()) continue;  // connection died mid-handling
    Conn& conn = it->second;
    if (conn.serial == completion.conn_serial) conn.worker_outstanding = false;
    if (conn.serial != completion.conn_serial ||
        conn.req_serial != completion.req_serial || !conn.handling) {
      continue;  // stale (deadline already answered, or fd reused)
    }
    conn.handling = false;
    conn.outbuf = std::move(completion.bytes);
    conn.out_off = 0;
    if (conn.pending != nullptr) {
      conn.pending->status = completion.status;
      conn.pending->bytes_out = conn.outbuf.size();
      conn.pending->write_start_us = obs::TraceNowMicros();
    }
    if (!completion.keep_alive || io_draining_) conn.close_after = true;
    UpdateInterest(conn);
  }
  if (!batch.empty()) {
    InFlightRequestsGauge().Set(static_cast<double>(in_flight_));
  }
}

}  // namespace lightor::net
