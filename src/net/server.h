#ifndef LIGHTOR_NET_SERVER_H_
#define LIGHTOR_NET_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "net/http.h"

namespace lightor::net {

/// Request handler: runs on a worker-pool thread, so it must be
/// thread-safe (HighlightServer is). Returning is the only way to
/// complete a request — there is no async handle-off.
using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

/// Method+path route table (exact-match paths; the wire schema has no
/// parameterized routes). Lookup misses distinguish 404 (unknown path)
/// from 405 (known path, wrong method).
class Router {
 public:
  void Handle(std::string method, std::string path, HttpHandler handler);

  /// nullptr on miss, with `*error_status` set to 404 or 405.
  const HttpHandler* Find(std::string_view method, std::string_view path,
                          int* error_status) const;

  /// The registered path for metrics labels, or "other" when unrouted.
  const char* RouteLabel(std::string_view path) const;

 private:
  struct Route {
    std::string method;
    std::string path;
    HttpHandler handler;
  };
  std::vector<Route> routes_;
};

/// Wire front-end configuration (the `ServerOptions` of the socket
/// layer; serving knobs stay in serving::ServerOptions).
struct NetOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read it back via `HttpServer::port()`.
  uint16_t port = 0;

  /// Fixed handler worker pool.
  size_t num_workers = 4;
  /// Admission control: requests dispatched but not yet answered. At the
  /// cap, further requests get an immediate 503 with `Retry-After` and
  /// the connection stays open for the retry.
  size_t max_in_flight = 64;
  /// Seconds before the Retry-After'd client should come back.
  double retry_after_seconds = 1.0;
  /// Handler wall-clock deadline. Expiry answers 504 on the handler's
  /// behalf, drops its late result, and closes the connection (the late
  /// bytes would desync keep-alive framing). 0 disables.
  double request_deadline_seconds = 10.0;
  /// Keep-alive connections idle longer than this are reaped; also the
  /// slowloris guard for half-sent requests. 0 disables.
  double idle_timeout_seconds = 60.0;
  /// Graceful-drain cap: after `Shutdown()` stops intake, in-flight work
  /// gets this long to finish before remaining connections are cut.
  double drain_timeout_seconds = 10.0;

  /// Parser hardening caps (see RequestParser::Limits).
  size_t max_header_bytes = 8192;
  size_t max_body_bytes = 1 << 20;
  /// Accepted connections above this are closed on arrival.
  size_t max_connections = 1024;

  /// Event backend: epoll on Linux (the default), or the portable
  /// poll(2) backend — also the fallback where epoll does not exist.
  bool use_epoll = true;

  common::Status Validate() const;
};

/// Internal event backend (epoll / poll); defined in server.cc.
class Poller;

/// Per-request tracing state (trace context, span collector, stage
/// clocks, wide-event fields); defined in server.cc. Shared between the
/// IO thread and the worker handling the request.
struct RequestTelemetry;

/// A minimal dependency-free HTTP/1.1 server:
///
///   * **One event-loop thread** (epoll, poll fallback) owns every
///     socket: accepts, reads, incremental-parses, writes. No handler
///     code ever runs on it, so a slow handler cannot stall the wire.
///   * **A fixed worker pool** executes handlers. The event loop
///     dispatches one request per connection at a time; pipelined
///     requests buffered behind it are parsed after its response is
///     flushed, preserving response order by construction.
///   * **Admission control** happens at dispatch: `max_in_flight`
///     requests past the accept gate, everything above answered
///     503 + Retry-After without touching the worker pool.
///   * **Robustness**: parser errors answer 400/413/431/501 and close;
///     per-request deadlines answer 504 and drop the late handler
///     result; idle and half-open connections are reaped.
///   * **Graceful drain**: `Shutdown()` stops accepting, lets in-flight
///     handlers finish and their responses flush (bounded by
///     `drain_timeout_seconds`), then tears down the loop and joins the
///     pool. Callers layer their own backend drain after it (the CLI
///     calls `HighlightServer::Shutdown()` next).
class HttpServer {
 public:
  /// Binds and listens synchronously (so `port()` is valid on return),
  /// then starts the event loop and worker threads.
  static common::Result<std::unique_ptr<HttpServer>> Create(NetOptions options,
                                                            Router router);

  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// The bound port (resolves ephemeral binds).
  uint16_t port() const { return port_; }
  const NetOptions& options() const { return options_; }

  /// Graceful drain; idempotent, callable from any thread.
  void Shutdown();

 private:
  HttpServer(NetOptions options, Router router);

  struct Conn;
  struct Job;
  struct Completion;

  common::Status Bind();
  void IoLoop();
  void WorkerLoop();
  void WakeIo();

  // Event-loop internals (called only from the IO thread).
  void AcceptAll();
  void HandleConnEvent(int fd, bool readable, bool writable, bool error);
  void ReadFrom(Conn& conn);
  void TryAdvance(Conn& conn);
  void QueueResponse(Conn& conn, const HttpResponse& response,
                     bool keep_alive);
  void FlushWrites(Conn& conn);
  /// Builds the request's telemetry: parses (or generates) the W3C
  /// trace context and charges the accumulated parse time.
  std::shared_ptr<RequestTelemetry> StartTelemetry(Conn& conn,
                                                   const HttpRequest* request);
  /// Finalizes and emits the pending request's wide event (no-op when
  /// none is pending or no response was ever queued).
  void EmitTelemetry(Conn& conn);
  void UpdateInterest(Conn& conn);
  void CloseConn(int fd);
  void CheckTimers();
  void ProcessCompletions();
  void StartDrain();
  bool DrainComplete();

  NetOptions options_;
  Router router_;

  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  uint16_t port_ = 0;

  std::unique_ptr<Poller> poller_;
  std::unordered_map<int, Conn> conns_;  ///< IO thread only
  /// Closed connections whose dispatched request may still be running: a
  /// worker can hold string_views into the parser buffer, so the Conn is
  /// parked here until its completion arrives (IO thread only). Any
  /// leftovers die in ~HttpServer, after Shutdown() has joined the workers.
  using ConnNode = std::unordered_map<int, Conn>::node_type;
  std::vector<ConnNode> zombie_conns_;
  uint64_t next_serial_ = 1;             ///< IO thread only
  size_t in_flight_ = 0;                 ///< IO thread only
  bool io_draining_ = false;             ///< IO thread only

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Job> jobs_;
  bool stop_workers_ = false;  ///< guarded by queue_mu_

  std::mutex completion_mu_;
  std::vector<Completion> completions_;

  std::mutex state_mu_;
  bool draining_ = false;   ///< guarded by state_mu_
  bool shut_down_ = false;  ///< guarded by state_mu_

  std::thread io_thread_;
  std::vector<std::thread> workers_;
};

}  // namespace lightor::net

#endif  // LIGHTOR_NET_SERVER_H_
