#ifndef LIGHTOR_NET_HTTP_H_
#define LIGHTOR_NET_HTTP_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace lightor::net {

/// Header list; names are stored lowercased (HTTP field names are
/// case-insensitive) and order-preserving.
using HeaderList = std::vector<std::pair<std::string, std::string>>;

/// Request-side header list: zero-copy views into the connection's parse
/// buffer. Names are lowercased in place by the parser.
using HeaderViewList = std::vector<std::pair<std::string_view, std::string_view>>;

/// One parsed HTTP/1.x request. All fields are views into the owning
/// `RequestParser`'s buffer — nothing is copied off the wire. They remain
/// valid until the parser's next `Append` or `Parse` call (the server's
/// one-request-in-flight-per-connection invariant guarantees neither
/// happens while a handler runs).
struct HttpRequest {
  std::string_view method;  ///< uppercase, e.g. "POST"
  std::string_view target;  ///< raw request-target, e.g. "/metrics?format=json"
  std::string_view path;    ///< target up to '?'
  std::string_view query;   ///< after '?', empty when absent
  int version_minor = 1;    ///< 0 for HTTP/1.0, 1 for HTTP/1.1
  HeaderViewList headers;
  std::string_view body;

  /// Case-insensitive header lookup; nullptr when absent.
  const std::string_view* FindHeader(std::string_view name) const;
  /// First value of `key` in the query string (percent-decoding is not
  /// applied — the wire schema never needs it); empty when absent.
  std::string QueryParam(std::string_view key) const;
  /// HTTP/1.1 defaults to keep-alive; `Connection: close` (any case)
  /// or HTTP/1.0 without `Connection: keep-alive` turns it off.
  bool keep_alive() const;
};

/// One HTTP response under construction.
struct HttpResponse {
  int status = 200;
  HeaderList headers;  ///< Content-Length / Connection are added on write
  std::string body;

  void SetHeader(std::string name, std::string value);
  const std::string* FindHeader(std::string_view name) const;

  /// Serializes status line + headers + body, appending Content-Length
  /// and `Connection: close|keep-alive`.
  std::string Serialize(bool keep_alive) const;
};

/// Canned JSON responses used across the route table.
HttpResponse JsonResponse(int status, std::string body);
HttpResponse ErrorResponse(int status, std::string_view message);

/// Reason phrase for `status` ("OK", "Not Found", ...).
std::string_view StatusReason(int status);

/// Incremental HTTP/1.1 request parser, one instance per connection.
///
/// Feed bytes with `Append` as they arrive — in any fragmentation the
/// kernel produces, including one byte at a time — then call `Parse`
/// until it stops returning `kReady`. `kReady` means `request()` holds a
/// complete request; pipelined requests arriving in one read are handed
/// out one per `Parse` call. `kNeedMore` leaves the partial request
/// buffered. `kError` is terminal: `error_status()` is the HTTP status
/// to send (400 malformed, 413 body too large, 431 headers too large,
/// 501 unsupported transfer-encoding) before closing the connection.
///
/// Zero-copy contract: `request()`'s fields are string_views into the
/// parser's internal buffer. Consumed requests are not memmoved out;
/// instead a consume offset advances, and the buffer compacts lazily at
/// the next `Append`/`Parse` when no partially parsed head is in flight.
/// Views are therefore valid from `kReady` until the next `Append` or
/// `Parse` call on this parser. While a head is parsed but its body is
/// incomplete, field positions are tracked as offsets (not pointers), so
/// intervening `Append`s may grow or reallocate the buffer freely.
class RequestParser {
 public:
  struct Limits {
    /// Cap on request line + header block (bytes, incl. CRLFs).
    size_t max_header_bytes = 8192;
    /// Cap on the declared Content-Length.
    size_t max_body_bytes = 1 << 20;
  };

  enum class State { kNeedMore, kReady, kError };

  RequestParser() = default;
  explicit RequestParser(Limits limits) : limits_(limits) {}

  void Append(std::string_view bytes);

  State Parse();

  HttpRequest& request() { return request_; }
  const HttpRequest& request() const { return request_; }
  int error_status() const { return error_status_; }
  const std::string& error() const { return error_; }

  /// Bytes buffered but not yet consumed (mid-request tail).
  size_t buffered_bytes() const { return buffer_.size() - pos_; }

  /// Wire size (head + body bytes) of the request most recently
  /// returned via `kReady`; feeds the wide-event `bytes_in` field.
  size_t last_request_bytes() const { return last_request_bytes_; }

 private:
  /// Byte range in `buffer_`; ranges survive buffer reallocation and are
  /// only turned into views once the whole request is present.
  struct Range {
    uint32_t off = 0;
    uint32_t len = 0;
  };

  State Fail(int status, std::string message);
  void MaybeCompact();
  std::string_view ViewOf(Range r) const {
    return std::string_view(buffer_.data() + r.off, r.len);
  }

  Limits limits_;
  std::string buffer_;
  size_t pos_ = 0;  ///< consume offset: buffer_[pos_..) is unparsed
  HttpRequest request_;
  int error_status_ = 0;
  std::string error_;
  bool failed_ = false;
  bool have_head_ = false;     ///< request line + headers parsed
  size_t content_length_ = 0;  ///< declared body size of the open request
  size_t pending_request_bytes_ = 0;  ///< head bytes of the open request
  size_t last_request_bytes_ = 0;
  // Offset-based staging of the open request's head (views materialize
  // at kReady). The header vector's capacity is reused across requests.
  Range method_r_, target_r_, path_r_, query_r_;
  int version_minor_ = 1;
  std::vector<std::pair<Range, Range>> header_ranges_;
};

/// Incremental HTTP/1.x response parser (for the blocking client).
/// Same Append/Parse protocol as RequestParser. Bodies are sized by
/// Content-Length only; a response without one is read to connection
/// close (signalled via `OnEof`).
class ResponseParser {
 public:
  enum class State { kNeedMore, kReady, kError };

  void Append(std::string_view bytes) { buffer_ += bytes; }
  State Parse();
  /// The peer closed the connection: a length-less body is now complete.
  State OnEof();

  HttpResponse& response() { return response_; }
  const std::string& error() const { return error_; }

 private:
  State Fail(std::string message);

  std::string buffer_;
  HttpResponse response_;
  std::string error_;
  bool failed_ = false;
  bool have_head_ = false;     ///< status line + headers parsed
  bool have_length_ = false;   ///< Content-Length present
  size_t content_length_ = 0;
};

}  // namespace lightor::net

#endif  // LIGHTOR_NET_HTTP_H_
