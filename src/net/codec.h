#ifndef LIGHTOR_NET_CODEC_H_
#define LIGHTOR_NET_CODEC_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "serving/api.h"

namespace lightor::net {

/// JSON wire codec for the serving API (serving/api.h). One canonical
/// field order per type, so two servers serving the same state produce
/// byte-identical bodies — the loadgen differential check relies on it.
///
/// Decoders are strict about what matters on a public wire: malformed
/// JSON, a missing required field, or a field of the wrong type is an
/// InvalidArgument (the HTTP layer maps it to 400). Unknown fields are
/// ignored so old servers tolerate newer clients.
///
/// Wire schema (all bodies `application/json`):
///   PageVisitRequest      {"video_id","user"?}
///   PageVisitResponse     {"highlights":[Highlight],"first_visit",
///                          "snapshot_version","provisional"}
///   LogSessionRequest     {"video_id","user","session_id",
///                          "events":[{"wall_time","type","position",
///                                     "target"}]}
///   IngestChatRequest     {"video_id","messages":[{"timestamp","user",
///                                                  "text"}]}
///   IngestChatResponse    {"accepted","rejected","provisional_published",
///                          "snapshot_version","throttled",
///                          "retry_after_seconds"}
///   IngestBatchRequest    [IngestChatRequest, ...]   (chunked frame: one
///                          POST /ingest carrying many channels; the
///                          route sniffs `[` vs `{`)
///   IngestBatchResponse   {"entries":[IngestChatResponse + {"video_id",
///                          "status","error"?}]}  (per-entry HTTP-style
///                          status: 200, 429 throttled, 409 recorded)
///   FinalizeStreamRequest {"video_id","video_length"?}
///   FinalizeStreamResponse{"highlights":[Highlight],"snapshot_version",
///                          "video_length"}
///   GetHighlightsResponse {"highlights":[Highlight],"snapshot_version",
///                          "provisional"}
///   RefineReport          {"video_id","dots_updated","sessions_consumed",
///                          "dots":[{"dot_index","status","updated",
///                                   "type","enough_plays","plays_used",
///                                   "old_position","new_position",
///                                   "converged"}]}
///   Highlight             {"video_id","dot_index","dot_position",
///                          "start","end","score","iteration","converged"}
///   event "type" strings: "play","pause","seek_forward","seek_backward"

std::string EncodeJson(const serving::PageVisitRequest& v);
std::string EncodeJson(const serving::PageVisitResponse& v);
std::string EncodeJson(const serving::LogSessionRequest& v);
std::string EncodeJson(const serving::IngestChatRequest& v);
std::string EncodeJson(const serving::IngestChatResponse& v);
std::string EncodeJson(const serving::FinalizeStreamRequest& v);
std::string EncodeJson(const serving::FinalizeStreamResponse& v);
std::string EncodeJson(const serving::GetHighlightsResponse& v);
std::string EncodeJson(const serving::RefineReport& v);

common::Result<serving::PageVisitRequest> DecodePageVisitRequest(
    std::string_view json);
common::Result<serving::PageVisitResponse> DecodePageVisitResponse(
    std::string_view json);
common::Result<serving::LogSessionRequest> DecodeLogSessionRequest(
    std::string_view json);
common::Result<serving::IngestChatRequest> DecodeIngestChatRequest(
    std::string_view json);
common::Result<serving::IngestChatResponse> DecodeIngestChatResponse(
    std::string_view json);
common::Result<serving::FinalizeStreamRequest> DecodeFinalizeStreamRequest(
    std::string_view json);
common::Result<serving::FinalizeStreamResponse> DecodeFinalizeStreamResponse(
    std::string_view json);
common::Result<serving::GetHighlightsResponse> DecodeGetHighlightsResponse(
    std::string_view json);

/// One channel's outcome inside a batch ingest frame. `status` follows
/// the single-frame HTTP mapping (200 applied, 429 throttled, 409
/// recorded video, ...); `response` is meaningful for 200/429 and
/// `error` carries the status message otherwise.
struct IngestBatchEntry {
  std::string video_id;
  int status = 200;
  std::string error;
  serving::IngestChatResponse response;
};

std::string EncodeIngestBatchRequest(
    const std::vector<serving::IngestChatRequest>& batches);
common::Result<std::vector<serving::IngestChatRequest>>
DecodeIngestBatchRequest(std::string_view json);
std::string EncodeIngestBatchResponse(
    const std::vector<IngestBatchEntry>& entries);
common::Result<std::vector<IngestBatchEntry>> DecodeIngestBatchResponse(
    std::string_view json);

}  // namespace lightor::net

#endif  // LIGHTOR_NET_CODEC_H_
