#ifndef LIGHTOR_NET_CLIENT_H_
#define LIGHTOR_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "net/http.h"

namespace lightor::net {

/// A minimal blocking HTTP/1.1 client over one keep-alive connection —
/// enough for the load generator, the CLI's `curl` subcommand, and the
/// smoke tests; not a general-purpose client. Not thread-safe: one
/// instance per thread (the loadgen gives each worker its own).
///
/// The connection is opened lazily on the first request and reopened
/// transparently when the server closed it (keep-alive races, reaped
/// idle connections); a failure after reopening is the caller's error.
class HttpClient {
 public:
  HttpClient(std::string host, uint16_t port);
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  /// One round trip. `target` is the raw request-target ("/visit",
  /// "/metrics?format=json"); `body` is sent verbatim with
  /// `content-type: application/json` when non-empty. Any valid HTTP
  /// response — including 4xx/5xx — is a success at this layer; only
  /// wire failures are errors, typed for retry policy: refused/reset
  /// connections surface as Unavailable ("backend down"), socket
  /// timeouts as DeadlineExceeded ("backend slow"), everything else
  /// as IoError.
  common::Result<HttpResponse> Request(std::string_view method,
                                       std::string_view target,
                                       std::string_view body = {});

  common::Result<HttpResponse> Get(std::string_view target) {
    return Request("GET", target);
  }
  common::Result<HttpResponse> Post(std::string_view target,
                                    std::string_view body) {
    return Request("POST", target, body);
  }

  /// Per-round-trip socket timeout (connect + send + receive legs each);
  /// 0 blocks forever. Applies from the next request.
  void set_timeout_seconds(double seconds) { timeout_seconds_ = seconds; }

  /// Extra header sent with every subsequent request (the `traceparent`
  /// propagation hook; also handy for tests). Setting the same name
  /// again replaces the value; an empty value removes the header.
  void set_header(std::string_view name, std::string_view value);

  /// Drops the connection; the next request reconnects.
  void Disconnect();

  /// Retry-policy classification shared by the loadgen, the cluster
  /// router, and the CLI: statuses where the request was refused whole
  /// (nothing applied server-side) and a delayed retry is the correct
  /// move — 429 (per-channel ingest budget exhausted) and 503 (storage
  /// wedged / draining). 4xx like 400/409 are NOT retryable: resending
  /// the same frame cannot succeed.
  static bool IsRetryableAfterDelay(int status) {
    return status == 429 || status == 503;
  }

  /// Parses the response's `Retry-After` header (delta-seconds form
  /// only, which is all this codebase emits); `fallback` when the
  /// header is absent or not a number.
  static double RetryAfterSeconds(const HttpResponse& response,
                                  double fallback);

 private:
  common::Status Connect();
  common::Result<HttpResponse> RoundTrip(const std::string& wire);

  std::string host_;
  uint16_t port_;
  double timeout_seconds_ = 30.0;
  HeaderList extra_headers_;
  int fd_ = -1;
};

}  // namespace lightor::net

#endif  // LIGHTOR_NET_CLIENT_H_
