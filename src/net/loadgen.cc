#include "net/loadgen.h"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <set>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/rng.h"
#include "common/stats.h"
#include "net/codec.h"
#include "net/json.h"
#include "obs/trace_context.h"
#include "serving/highlight_server.h"
#include "sim/bridge.h"
#include "sim/viewer_simulator.h"

namespace lightor::net {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

enum class Op { kVisit, kSession, kRefine, kIngest };

/// Per-thread traffic state and tallies, merged after the join.
struct ThreadResult {
  size_t requests = 0;
  size_t wire_errors = 0;
  size_t status_2xx = 0;
  size_t status_4xx = 0;
  size_t status_5xx = 0;
  size_t rejected_503 = 0;
  size_t throttled_429 = 0;
  size_t flash_cold_failures = 0;
  size_t retries = 0;
  size_t visits = 0;
  size_t sessions = 0;
  size_t refines = 0;
  size_t ingests = 0;
  size_t finalizes = 0;
  std::vector<double> latencies_ms;
  /// One row per round trip (wire errors included, status -1): feeds the
  /// slowest-N table, the per-op percentiles, and the SLO verdicts.
  std::vector<SlowRequest> samples;
  RecordedTraffic recorded;
};

class Worker {
 public:
  Worker(const LoadGenOptions& options, size_t index)
      : options_(options),
        index_(index),
        rng_(options.seed + index),
        // Separate stream for trace ids: the traffic mix drawn from rng_
        // must not shift when tracing changes.
        trace_rng_((options.seed ^ 0x9e3779b97f4a7c15ULL) + index),
        client_(options.host, options.port) {
    client_.set_timeout_seconds(options_.timeout_seconds);
    // Round-robin live-stream ownership: each live video has exactly one
    // owner thread, so its batch sequence is totally ordered.
    for (size_t i = index_; i < options_.live_ids.size();
         i += options_.num_threads) {
      live_id_ = options_.live_ids[i];
      break;  // one live video per thread is plenty for the mix
    }
    if (!live_id_.empty()) {
      const auto video = options_.platform->GetVideo(live_id_);
      if (video.ok()) {
        live_messages_ = sim::ToCoreMessages(video.value().chat);
      }
    }
  }

  ThreadResult Run() {
    for (size_t i = 0; i < options_.requests_per_thread; ++i) {
      switch (DrawOp()) {
        case Op::kVisit:
          DoVisit();
          break;
        case Op::kSession:
          DoSession();
          break;
        case Op::kRefine:
          DoRefine();
          break;
        case Op::kIngest:
          DoIngest();
          break;
      }
    }
    // A partially ingested stream must finalize so its served state is a
    // finished snapshot the differential check can compare.
    if (ingested_any_ && !finalized_) DoFinalize();
    return std::move(result_);
  }

 private:
  Op DrawOp() {
    const bool can_ingest = !live_id_.empty() && !finalized_ &&
                            live_cursor_ < live_messages_.size();
    const bool can_recorded = !options_.recorded_ids.empty();
    int visit_w = can_recorded ? options_.visit_weight : 0;
    int session_w = can_recorded ? options_.session_weight : 0;
    int refine_w = can_recorded ? options_.refine_weight : 0;
    int ingest_w = can_ingest ? options_.ingest_weight : 0;
    const int total = visit_w + session_w + refine_w + ingest_w;
    if (total == 0) return Op::kVisit;  // degenerate mix; visit will 4xx
    auto draw = rng_.UniformInt(1, total);
    if ((draw -= visit_w) <= 0) return Op::kVisit;
    if ((draw -= session_w) <= 0) return Op::kSession;
    if ((draw -= refine_w) <= 0) return Op::kRefine;
    return Op::kIngest;
  }

  const std::string& PickRecorded() {
    return options_.recorded_ids[static_cast<size_t>(rng_.UniformInt(
        0, static_cast<int64_t>(options_.recorded_ids.size()) - 1))];
  }

  /// One round trip with bookkeeping; returns the status code, or -1 on
  /// a wire error. Every request carries a deterministic, per-thread
  /// unique `traceparent` (unsampled: the server's tail sampler decides
  /// what to keep — slow outliers survive, which is exactly what the
  /// slowest-N table points at).
  int Send(const char* op, std::string_view method, std::string_view target,
           std::string_view body) {
    obs::TraceContext ctx;
    ctx.trace_hi = trace_rng_.Next64();
    ctx.trace_lo = trace_rng_.Next64() | 1;  // the all-zero id is invalid
    ctx.span_id = trace_rng_.Next64() | 1;
    client_.set_header("traceparent", obs::FormatTraceparent(ctx));

    const Clock::time_point start = Clock::now();
    auto response = client_.Request(method, target, body);
    // Cluster mode: absorb transient failures instead of tallying them.
    // Only visit/session/refine may retry a *wire* error — they are
    // idempotent upstream (sessions dedup by id); a died-mid-response
    // ingest or finalize may already have been applied. A 503 response
    // means the request was NOT accepted, so any op may retry it.
    if (options_.retry_503) {
      const bool wire_retryable = std::string_view(op) == "visit" ||
                                  std::string_view(op) == "session" ||
                                  std::string_view(op) == "refine";
      double backoff_ms = options_.retry_backoff_ms;
      while ((response.ok() && response.value().status == 503) ||
             (!response.ok() && wire_retryable &&
              common::IsRetryable(response.status()))) {
        if (MsSince(start) / 1000.0 >= options_.retry_budget_seconds) break;
        ++result_.retries;
        const double jitter = 0.5 + trace_rng_.NextDouble();  // [0.5, 1.5)
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            backoff_ms * jitter));
        backoff_ms = std::min(backoff_ms * 2.0, 1000.0);
        response = client_.Request(method, target, body);
      }
    }
    SlowRequest sample;
    sample.ms = MsSince(start);
    sample.op = op;
    sample.trace_id = obs::FormatTraceId(ctx.trace_hi, ctx.trace_lo);
    if (!response.ok()) {
      ++result_.wire_errors;
      sample.status = -1;
      result_.samples.push_back(std::move(sample));
      return -1;
    }
    sample.status = response.value().status;
    result_.latencies_ms.push_back(sample.ms);
    result_.samples.push_back(std::move(sample));
    ++result_.requests;
    const int status = response.value().status;
    if (status < 400) {
      ++result_.status_2xx;
    } else if (status < 500) {
      ++result_.status_4xx;
      if (status == 429) ++result_.throttled_429;
    } else {
      ++result_.status_5xx;
      if (status == 503) ++result_.rejected_503;
    }
    if (status == 200) last_body_ = std::move(response.value().body);
    return status;
  }

  void DoVisit() {
    ++result_.visits;
    serving::PageVisitRequest req;
    req.video_id = PickRecorded();
    req.user = "loadgen" + std::to_string(index_);
    if (Send("visit", "POST", "/visit", EncodeJson(req)) != 200) return;
    result_.recorded.visits.push_back(req);
    auto response = DecodePageVisitResponse(last_body_);
    if (!response.ok()) return;
    std::vector<double>& dots = dot_cache_[req.video_id];
    dots.clear();
    for (const auto& rec : response.value().highlights) {
      dots.push_back(rec.dot_position);
    }
  }

  void DoSession() {
    const std::string video_id = PickRecorded();
    const auto cached = dot_cache_.find(video_id);
    if (cached == dot_cache_.end() || cached->second.empty()) {
      DoVisit();  // closed loop: learn the dots before interacting
      return;
    }
    ++result_.sessions;
    const double dot = cached->second[static_cast<size_t>(rng_.UniformInt(
        0, static_cast<int64_t>(cached->second.size()) - 1))];
    const auto video = options_.platform->GetVideo(video_id);
    if (!video.ok()) return;
    serving::LogSessionRequest req;
    req.video_id = video_id;
    req.session_id = (static_cast<uint64_t>(index_) << 32) | next_session_++;
    req.user = "viewer" + std::to_string(req.session_id);
    const auto session = viewer_sim_.SimulateSession(video.value().truth,
                                                     dot, rng_, req.user);
    req.events = session.events;
    if (Send("session", "POST", "/session", EncodeJson(req)) != 200) return;
    result_.recorded.sessions.push_back(std::move(req));
  }

  void DoRefine() {
    ++result_.refines;
    Json body = Json::MakeObject();
    body.Set("video_id", Json::Str(PickRecorded()));
    Send("refine", "POST", "/refine", body.Dump());
  }

  void DoIngest() {
    ++result_.ingests;
    const size_t end = std::min(live_cursor_ + options_.ingest_batch_size,
                                live_messages_.size());
    serving::IngestChatRequest req;
    req.video_id = live_id_;
    req.messages.assign(live_messages_.begin() +
                            static_cast<ptrdiff_t>(live_cursor_),
                        live_messages_.begin() + static_cast<ptrdiff_t>(end));
    if (Send("ingest", "POST", "/ingest", EncodeJson(req)) != 200) return;
    // Advance only on acceptance: a 503'd batch is retried by a later
    // ingest draw, keeping the per-video sequence gap-free.
    live_cursor_ = end;
    ingested_any_ = true;
    result_.recorded.ingests.push_back(std::move(req));
    if (live_cursor_ >= live_messages_.size()) DoFinalize();
  }

  void DoFinalize() {
    ++result_.finalizes;
    serving::FinalizeStreamRequest req;
    req.video_id = live_id_;
    if (Send("finalize", "POST", "/finalize", EncodeJson(req)) != 200) return;
    finalized_ = true;
    result_.recorded.finalizes.push_back(req);
  }

  const LoadGenOptions& options_;
  size_t index_;
  common::Rng rng_;
  common::Rng trace_rng_;
  HttpClient client_;
  sim::ViewerSimulator viewer_sim_;
  ThreadResult result_;
  std::string last_body_;

  /// Red-dot positions from this thread's last /visit, per video.
  std::unordered_map<std::string, std::vector<double>> dot_cache_;
  uint32_t next_session_ = 1;

  std::string live_id_;
  std::vector<core::Message> live_messages_;
  size_t live_cursor_ = 0;
  bool ingested_any_ = false;
  bool finalized_ = false;
};

/// Flash-crowd scenario worker. Thread t owns the cold channels
/// {i : i mod num_threads == t} ("flash-cold-<i>"); thread 0 also owns
/// the hot channel ("flash-hot"). Each round delivers one
/// `ingest_batch_size`-message batch per owned cold channel, packed
/// into chunked frames of `flash_frame_channels` channels, then thread
/// 0 offers `flash_hot_multiplier` hot single frames — far past the hot
/// channel's budget, so the server sheds the excess with 429s while the
/// cold frames must all land.
class FlashWorker {
 public:
  FlashWorker(const LoadGenOptions& options, size_t index)
      : options_(options),
        index_(index),
        trace_rng_((options.seed ^ 0x9e3779b97f4a7c15ULL) + index),
        client_(options.host, options.port) {
    client_.set_timeout_seconds(options.timeout_seconds);
    for (size_t i = index; i < options.flash_channels;
         i += options.num_threads) {
      cold_.push_back(i);
    }
    cold_cursor_.assign(cold_.size(), 0);
  }

  ThreadResult Run() {
    for (size_t round = 0; round < options_.requests_per_thread; ++round) {
      ColdRound();
      if (index_ == 0) HotBurst();
    }
    return std::move(result_);
  }

 private:
  serving::IngestChatRequest MakeCold(size_t slot) {
    serving::IngestChatRequest req;
    req.video_id = "flash-cold-" + std::to_string(cold_[slot]);
    req.messages.reserve(options_.ingest_batch_size);
    for (size_t m = 0; m < options_.ingest_batch_size; ++m) {
      core::Message msg;
      msg.timestamp = static_cast<double>(cold_cursor_[slot] + m);
      msg.user = "crowd";
      msg.text = "flash";
      req.messages.push_back(std::move(msg));
    }
    return req;
  }

  void ColdRound() {
    for (size_t base = 0; base < cold_.size();
         base += options_.flash_frame_channels) {
      const size_t end =
          std::min(base + options_.flash_frame_channels, cold_.size());
      std::vector<serving::IngestChatRequest> frame;
      frame.reserve(end - base);
      for (size_t slot = base; slot < end; ++slot) {
        frame.push_back(MakeCold(slot));
      }
      SendColdFrame(base, frame);
    }
  }

  void SendColdFrame(size_t base,
                     const std::vector<serving::IngestChatRequest>& frame) {
    ++result_.ingests;
    const std::string body = EncodeIngestBatchRequest(frame);
    const Clock::time_point start = Clock::now();
    int status = Send("ingest_batch", body);
    // A non-200 frame-level response (503 storage hiccup, 413 never —
    // frames are sized under the cap) refused the frame whole, so
    // resending it cannot double-apply anything.
    while (status >= 0 && status != 200 &&
           HttpClient::IsRetryableAfterDelay(status) &&
           MsSince(start) / 1000.0 < options_.retry_budget_seconds) {
      ++result_.retries;
      std::this_thread::sleep_for(std::chrono::duration<double>(
          std::max(last_retry_after_, options_.retry_backoff_ms / 1000.0)));
      status = Send("ingest_batch", body);
    }
    if (status != 200) {
      result_.flash_cold_failures += frame.size();
      return;
    }
    auto decoded = DecodeIngestBatchResponse(last_body_);
    if (!decoded.ok() || decoded.value().size() != frame.size()) {
      result_.flash_cold_failures += frame.size();
      return;
    }
    for (size_t k = 0; k < frame.size(); ++k) {
      const IngestBatchEntry& entry = decoded.value()[k];
      if (entry.status == 200) {
        cold_cursor_[base + k] += frame[k].messages.size();
        continue;
      }
      if (entry.status == 429) {
        // Entry-level throttles never touch the engine ("a throttled
        // batch leaves no trace"), so the channel's batch retries whole
        // as a single frame after the advertised delay.
        ++result_.throttled_429;
        if (RetrySingle(base + k, frame[k],
                        entry.response.retry_after_seconds, start)) {
          continue;
        }
      }
      ++result_.flash_cold_failures;
    }
  }

  bool RetrySingle(size_t slot, const serving::IngestChatRequest& req,
                   double retry_after, Clock::time_point start) {
    const std::string body = EncodeJson(req);
    double delay = retry_after;
    while (MsSince(start) / 1000.0 < options_.retry_budget_seconds) {
      ++result_.retries;
      std::this_thread::sleep_for(std::chrono::duration<double>(
          std::max(delay, options_.retry_backoff_ms / 1000.0)));
      const int status = Send("ingest", body);
      if (status == 200) {
        cold_cursor_[slot] += req.messages.size();
        return true;
      }
      // A wire error may have applied the batch server-side; resending
      // could duplicate messages, so the delivery counts as failed.
      if (status < 0 || !HttpClient::IsRetryableAfterDelay(status)) {
        return false;
      }
      delay = last_retry_after_;
    }
    return false;
  }

  void HotBurst() {
    for (size_t k = 0; k < options_.flash_hot_multiplier; ++k) {
      serving::IngestChatRequest req;
      req.video_id = "flash-hot";
      req.messages.reserve(options_.ingest_batch_size);
      for (size_t m = 0; m < options_.ingest_batch_size; ++m) {
        core::Message msg;
        msg.timestamp = static_cast<double>(hot_cursor_ + m);
        msg.user = "crowd";
        msg.text = "flash";
        req.messages.push_back(std::move(msg));
      }
      ++result_.ingests;
      // 429 here is the scenario working: the hot channel's offered
      // load exceeds its budget and the excess is shed, never retried.
      // The cursor advances only on acceptance so the hot stream's
      // timestamps stay monotone across throttles.
      if (Send("ingest_hot", EncodeJson(req)) == 200) {
        hot_cursor_ += options_.ingest_batch_size;
      }
    }
  }

  int Send(const char* op, std::string_view body) {
    obs::TraceContext ctx;
    ctx.trace_hi = trace_rng_.Next64();
    ctx.trace_lo = trace_rng_.Next64() | 1;
    ctx.span_id = trace_rng_.Next64() | 1;
    client_.set_header("traceparent", obs::FormatTraceparent(ctx));
    const Clock::time_point start = Clock::now();
    auto response = client_.Request("POST", "/ingest", body);
    SlowRequest sample;
    sample.ms = MsSince(start);
    sample.op = op;
    sample.trace_id = obs::FormatTraceId(ctx.trace_hi, ctx.trace_lo);
    if (!response.ok()) {
      ++result_.wire_errors;
      sample.status = -1;
      result_.samples.push_back(std::move(sample));
      return -1;
    }
    sample.status = response.value().status;
    result_.latencies_ms.push_back(sample.ms);
    result_.samples.push_back(std::move(sample));
    ++result_.requests;
    const int status = response.value().status;
    if (status < 400) {
      ++result_.status_2xx;
    } else if (status < 500) {
      ++result_.status_4xx;
      if (status == 429) ++result_.throttled_429;
    } else {
      ++result_.status_5xx;
      if (status == 503) ++result_.rejected_503;
    }
    last_retry_after_ = HttpClient::RetryAfterSeconds(
        response.value(), options_.retry_backoff_ms / 1000.0);
    last_body_ = std::move(response.value().body);
    return status;
  }

  const LoadGenOptions& options_;
  size_t index_;
  common::Rng trace_rng_;
  HttpClient client_;
  ThreadResult result_;
  std::string last_body_;
  double last_retry_after_ = 0.0;

  std::vector<size_t> cold_;         ///< owned cold channel numbers
  std::vector<size_t> cold_cursor_;  ///< messages delivered per slot
  size_t hot_cursor_ = 0;
};

/// Polls GET /debug/channels until every cold channel with admitted
/// messages has an empty queue and at least one provisional publish (or
/// the settle window passes), then returns the p99 across cold channels
/// of each channel's worst provisional staleness, in ms. On timeout the
/// result is floored at the elapsed wait so an SLO gate cannot pass on
/// a wedged scheduler.
common::Result<double> SettleAndScrapeStaleness(
    const LoadGenOptions& options) {
  HttpClient probe(options.host, options.port);
  probe.set_timeout_seconds(options.timeout_seconds);
  const Clock::time_point start = Clock::now();
  const double settle_seconds = std::max(10.0, options.retry_budget_seconds);
  std::vector<double> staleness_ms;
  bool settled = false;
  for (;;) {
    auto response = probe.Get("/debug/channels");
    if (!response.ok()) return response.status();
    if (response.value().status != 200) {
      return common::Status::Internal(
          "loadgen: /debug/channels returned " +
          std::to_string(response.value().status));
    }
    auto parsed = Json::Parse(response.value().body);
    if (!parsed.ok()) return parsed.status();
    const Json* channels = parsed.value().Find("channels");
    if (channels == nullptr || !channels->is_array()) {
      return common::Status::Internal(
          "loadgen: /debug/channels missing \"channels\" array");
    }
    staleness_ms.clear();
    settled = true;
    for (const Json& entry : channels->AsArray()) {
      const Json* id = entry.Find("video_id");
      if (id == nullptr || !id->is_string() ||
          id->AsString().rfind("flash-cold-", 0) != 0) {
        continue;  // the hot channel's staleness is not the SLO's
      }
      const Json* admitted = entry.Find("admitted_messages");
      const Json* queued = entry.Find("queued_messages");
      const Json* publishes = entry.Find("publishes");
      const Json* max_staleness = entry.Find("max_staleness_seconds");
      if (admitted == nullptr || queued == nullptr || publishes == nullptr ||
          max_staleness == nullptr) {
        return common::Status::Internal(
            "loadgen: /debug/channels entry missing fields");
      }
      if (admitted->AsNumber() <= 0.0) continue;  // nothing ever landed
      if (queued->AsNumber() > 0.0 || publishes->AsNumber() <= 0.0) {
        settled = false;
        break;
      }
      staleness_ms.push_back(max_staleness->AsNumber() * 1000.0);
    }
    if (settled || MsSince(start) / 1000.0 >= settle_seconds) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  if (staleness_ms.empty()) staleness_ms.push_back(0.0);
  double p99_ms = common::Quantile(staleness_ms, 0.99);
  if (!settled) p99_ms = std::max(p99_ms, MsSince(start));
  return p99_ms;
}

}  // namespace

common::Status LoadGenOptions::Validate() const {
  if (num_threads == 0)
    return common::Status::InvalidArgument("loadgen: num_threads == 0");
  if (requests_per_thread == 0)
    return common::Status::InvalidArgument(
        "loadgen: requests_per_thread == 0");
  if (!scenario.empty() && scenario != "mix" && scenario != "flash-crowd")
    return common::Status::InvalidArgument("loadgen: unknown scenario: " +
                                           scenario);
  const bool flash = scenario == "flash-crowd";
  if (flash) {
    // Flash-crowd synthesizes its own chat and channel names, so the
    // platform/video plumbing of the mix scenario is not required.
    if (flash_channels == 0)
      return common::Status::InvalidArgument("loadgen: flash_channels == 0");
    if (flash_frame_channels == 0)
      return common::Status::InvalidArgument(
          "loadgen: flash_frame_channels == 0");
  } else {
    if (platform == nullptr)
      return common::Status::InvalidArgument("loadgen: null platform");
    if (recorded_ids.empty() && live_ids.empty())
      return common::Status::InvalidArgument("loadgen: no target videos");
    if (visit_weight < 0 || session_weight < 0 || refine_weight < 0 ||
        ingest_weight < 0)
      return common::Status::InvalidArgument("loadgen: negative weight");
    if (visit_weight + session_weight + refine_weight + ingest_weight == 0)
      return common::Status::InvalidArgument("loadgen: all-zero weights");
  }
  if (ingest_batch_size == 0)
    return common::Status::InvalidArgument("loadgen: ingest_batch_size == 0");
  if (retry_503 && (retry_budget_seconds <= 0.0 || retry_backoff_ms <= 0.0))
    return common::Status::InvalidArgument(
        "loadgen: retry_503 needs positive budget and backoff");
  for (const std::string& id : live_ids) {
    if (std::find(recorded_ids.begin(), recorded_ids.end(), id) !=
        recorded_ids.end()) {
      return common::Status::InvalidArgument(
          "loadgen: video in both recorded_ids and live_ids: " + id);
    }
  }
  for (const SloTarget& target : slo_targets) {
    static constexpr const char* kOps[] = {
        "visit",        "session",    "refine",         "ingest",
        "finalize",     "ingest_batch", "ingest_hot",
        "provisional_p99", "all"};
    if (std::find_if(std::begin(kOps), std::end(kOps), [&](const char* op) {
          return target.op == op;
        }) == std::end(kOps)) {
      return common::Status::InvalidArgument("loadgen: unknown SLO op: " +
                                             target.op);
    }
    if (target.p99_ms <= 0.0) {
      return common::Status::InvalidArgument(
          "loadgen: SLO p99_ms must be positive for op: " + target.op);
    }
  }
  return common::Status::OK();
}

namespace {

/// Merges per-thread tallies into the report: totals, whole-mix and
/// per-op percentiles, the slowest-N table. SLO verdicts are evaluated
/// separately (`EvaluateSlos`) because the flash-crowd scenario adds a
/// post-run scrape between aggregation and the verdicts.
LoadGenReport BuildReport(std::vector<ThreadResult>& results, double seconds,
                          const LoadGenOptions& options,
                          RecordedTraffic* recorded) {
  LoadGenReport report;
  report.seconds = seconds;
  std::vector<double> latencies;
  std::vector<SlowRequest> samples;
  for (ThreadResult& r : results) {
    std::move(r.samples.begin(), r.samples.end(),
              std::back_inserter(samples));
    report.requests += r.requests;
    report.wire_errors += r.wire_errors;
    report.status_2xx += r.status_2xx;
    report.status_4xx += r.status_4xx;
    report.status_5xx += r.status_5xx;
    report.rejected_503 += r.rejected_503;
    report.throttled_429 += r.throttled_429;
    report.flash_cold_failures += r.flash_cold_failures;
    report.retries += r.retries;
    report.visits += r.visits;
    report.sessions += r.sessions;
    report.refines += r.refines;
    report.ingests += r.ingests;
    report.finalizes += r.finalizes;
    latencies.insert(latencies.end(), r.latencies_ms.begin(),
                     r.latencies_ms.end());
    if (recorded != nullptr) {
      auto& out = *recorded;
      std::move(r.recorded.visits.begin(), r.recorded.visits.end(),
                std::back_inserter(out.visits));
      std::move(r.recorded.sessions.begin(), r.recorded.sessions.end(),
                std::back_inserter(out.sessions));
      std::move(r.recorded.ingests.begin(), r.recorded.ingests.end(),
                std::back_inserter(out.ingests));
      std::move(r.recorded.finalizes.begin(), r.recorded.finalizes.end(),
                std::back_inserter(out.finalizes));
    }
  }
  report.throughput_rps = seconds > 0.0 ? report.requests / seconds : 0.0;
  if (!latencies.empty()) {
    report.p50_ms = common::Quantile(latencies, 0.50);
    report.p95_ms = common::Quantile(latencies, 0.95);
    report.p99_ms = common::Quantile(latencies, 0.99);
    report.max_ms = *std::max_element(latencies.begin(), latencies.end());
  }

  // Slowest-N table, worst first. Wire errors (often timeouts — the very
  // worst tail) are included; their trace ids were still sent upstream.
  if (options.slowest_n > 0 && !samples.empty()) {
    const size_t n = std::min(options.slowest_n, samples.size());
    std::partial_sort(samples.begin(),
                      samples.begin() + static_cast<ptrdiff_t>(n),
                      samples.end(),
                      [](const SlowRequest& a, const SlowRequest& b) {
                        return a.ms > b.ms;
                      });
    report.slowest.assign(std::make_move_iterator(samples.begin()),
                          std::make_move_iterator(samples.begin() +
                                                  static_cast<ptrdiff_t>(n)));
  }

  // Per-op percentiles over completed responses ("all" and the SLO
  // verdicts read these later).
  std::unordered_map<std::string, std::vector<double>> per_op;
  for (const SlowRequest& sample : samples) {
    if (sample.status >= 0) per_op[sample.op].push_back(sample.ms);
  }
  for (const char* op : {"visit", "session", "refine", "ingest", "finalize",
                         "ingest_batch", "ingest_hot"}) {
    auto it = per_op.find(op);
    if (it == per_op.end() || it->second.empty()) continue;
    OpLatency lat;
    lat.op = op;
    lat.count = it->second.size();
    lat.p50_ms = common::Quantile(it->second, 0.50);
    lat.p99_ms = common::Quantile(it->second, 0.99);
    report.op_latency.push_back(std::move(lat));
  }
  return report;
}

void EvaluateSlos(const LoadGenOptions& options, LoadGenReport& report) {
  for (const LoadGenOptions::SloTarget& target : options.slo_targets) {
    SloResult verdict;
    verdict.op = target.op;
    verdict.target_p99_ms = target.p99_ms;
    if (target.op == "all") {
      verdict.actual_p99_ms = report.p99_ms;
    } else if (target.op == "provisional_p99") {
      verdict.actual_p99_ms = report.provisional_p99_ms;
    } else {
      for (const OpLatency& lat : report.op_latency) {
        if (lat.op == target.op) verdict.actual_p99_ms = lat.p99_ms;
      }
    }
    verdict.ok = verdict.actual_p99_ms <= target.p99_ms;
    if (!verdict.ok) report.slo_ok = false;
    report.slo.push_back(std::move(verdict));
  }
}

common::Result<LoadGenReport> RunFlashCrowd(const LoadGenOptions& options) {
  std::vector<ThreadResult> results(options.num_threads);
  const Clock::time_point start = Clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(options.num_threads);
    for (size_t t = 0; t < options.num_threads; ++t) {
      threads.emplace_back([&options, &results, t] {
        FlashWorker worker(options, t);
        results[t] = worker.Run();
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  LoadGenReport report = BuildReport(results, seconds, options, nullptr);
  LIGHTOR_ASSIGN_OR_RETURN(report.provisional_p99_ms,
                           SettleAndScrapeStaleness(options));
  EvaluateSlos(options, report);
  return report;
}

}  // namespace

common::Result<LoadGenReport> RunLoadGen(const LoadGenOptions& options,
                                         RecordedTraffic* recorded) {
  LIGHTOR_RETURN_IF_ERROR(options.Validate());
  if (options.scenario == "flash-crowd") return RunFlashCrowd(options);

  std::vector<ThreadResult> results(options.num_threads);
  const Clock::time_point start = Clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(options.num_threads);
    for (size_t t = 0; t < options.num_threads; ++t) {
      threads.emplace_back([&options, &results, t] {
        Worker worker(options, t);
        results[t] = worker.Run();
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  LoadGenReport report = BuildReport(results, seconds, options, recorded);
  EvaluateSlos(options, report);
  return report;
}

std::string EncodeJson(const LoadGenReport& report) {
  Json out = Json::MakeObject();
  out.Set("requests", Json::Int(static_cast<int64_t>(report.requests)));
  out.Set("wire_errors",
          Json::Int(static_cast<int64_t>(report.wire_errors)));
  out.Set("status_2xx", Json::Int(static_cast<int64_t>(report.status_2xx)));
  out.Set("status_4xx", Json::Int(static_cast<int64_t>(report.status_4xx)));
  out.Set("status_5xx", Json::Int(static_cast<int64_t>(report.status_5xx)));
  out.Set("rejected_503",
          Json::Int(static_cast<int64_t>(report.rejected_503)));
  out.Set("throttled_429",
          Json::Int(static_cast<int64_t>(report.throttled_429)));
  out.Set("flash_cold_failures",
          Json::Int(static_cast<int64_t>(report.flash_cold_failures)));
  out.Set("retries", Json::Int(static_cast<int64_t>(report.retries)));
  Json ops = Json::MakeObject();
  ops.Set("visit", Json::Int(static_cast<int64_t>(report.visits)));
  ops.Set("session", Json::Int(static_cast<int64_t>(report.sessions)));
  ops.Set("refine", Json::Int(static_cast<int64_t>(report.refines)));
  ops.Set("ingest", Json::Int(static_cast<int64_t>(report.ingests)));
  ops.Set("finalize", Json::Int(static_cast<int64_t>(report.finalizes)));
  out.Set("ops", std::move(ops));
  out.Set("seconds", Json::Number(report.seconds));
  out.Set("throughput_rps", Json::Number(report.throughput_rps));
  Json latency = Json::MakeObject();
  latency.Set("p50_ms", Json::Number(report.p50_ms));
  latency.Set("p95_ms", Json::Number(report.p95_ms));
  latency.Set("p99_ms", Json::Number(report.p99_ms));
  latency.Set("max_ms", Json::Number(report.max_ms));
  out.Set("latency", std::move(latency));
  out.Set("provisional_p99_ms", Json::Number(report.provisional_p99_ms));
  Json slowest = Json::MakeArray();
  for (const SlowRequest& row : report.slowest) {
    Json entry = Json::MakeObject();
    entry.Set("ms", Json::Number(row.ms));
    entry.Set("op", Json::Str(row.op));
    entry.Set("trace_id", Json::Str(row.trace_id));
    entry.Set("status", Json::Int(row.status));
    slowest.Append(std::move(entry));
  }
  out.Set("slowest", std::move(slowest));
  Json op_latency = Json::MakeObject();
  for (const OpLatency& lat : report.op_latency) {
    Json entry = Json::MakeObject();
    entry.Set("count", Json::Int(static_cast<int64_t>(lat.count)));
    entry.Set("p50_ms", Json::Number(lat.p50_ms));
    entry.Set("p99_ms", Json::Number(lat.p99_ms));
    op_latency.Set(lat.op, std::move(entry));
  }
  out.Set("op_latency", std::move(op_latency));
  Json slo = Json::MakeObject();
  slo.Set("ok", Json::Bool(report.slo_ok));
  Json targets = Json::MakeArray();
  for (const SloResult& verdict : report.slo) {
    Json entry = Json::MakeObject();
    entry.Set("op", Json::Str(verdict.op));
    entry.Set("target_p99_ms", Json::Number(verdict.target_p99_ms));
    entry.Set("actual_p99_ms", Json::Number(verdict.actual_p99_ms));
    entry.Set("ok", Json::Bool(verdict.ok));
    targets.Append(std::move(entry));
  }
  slo.Set("targets", std::move(targets));
  out.Set("slo", std::move(slo));
  return out.Dump();
}

common::Status RunDifferentialCheck(const RecordedTraffic& recorded,
                                    HttpClient& served,
                                    serving::HighlightServer* reference) {
  // Replay into the reference: visits deduped (repeat visits are reads),
  // then the live streams batch-by-batch in recorded order, then every
  // session. Session-vs-visit interleaving cannot matter — sessions only
  // append to the interaction log, which nothing reads until Refine.
  std::set<std::string> visited;
  for (const auto& visit : recorded.visits) {
    if (!visited.insert(visit.video_id).second) continue;
    if (auto r = reference->OnPageVisit(visit); !r.ok()) {
      return common::Status::Internal("check: reference visit failed: " +
                                      r.status().ToString());
    }
  }
  for (const auto& ingest : recorded.ingests) {
    if (auto r = reference->IngestChat(ingest); !r.ok()) {
      return common::Status::Internal("check: reference ingest failed: " +
                                      r.status().ToString());
    }
  }
  for (const auto& finalize : recorded.finalizes) {
    if (auto r = reference->FinalizeStream(finalize); !r.ok()) {
      return common::Status::Internal("check: reference finalize failed: " +
                                      r.status().ToString());
    }
  }
  for (const auto& session : recorded.sessions) {
    if (auto st = reference->LogSession(session); !st.ok()) {
      return common::Status::Internal("check: reference session failed: " +
                                      st.ToString());
    }
  }

  // One refinement pass per visited video on both sides; the reports
  // themselves must already agree byte-for-byte.
  for (const std::string& video_id : visited) {
    Json body = Json::MakeObject();
    body.Set("video_id", Json::Str(video_id));
    auto over_wire = served.Post("/refine", body.Dump());
    if (!over_wire.ok()) return over_wire.status();
    if (over_wire.value().status != 200) {
      return common::Status::Internal(
          "check: served /refine " + video_id + " returned " +
          std::to_string(over_wire.value().status) + ": " +
          over_wire.value().body);
    }
    auto local = reference->Refine(video_id);
    if (!local.ok()) {
      return common::Status::Internal("check: reference refine failed: " +
                                      local.status().ToString());
    }
    if (const std::string want = EncodeJson(local.value());
        over_wire.value().body != want) {
      return common::Status::Internal(
          "check: refine report mismatch for " + video_id + "\n  served: " +
          over_wire.value().body + "\n  reference: " + want);
    }
  }

  // Final state: every touched video's served highlights must equal the
  // reference encoding byte-for-byte.
  std::set<std::string> all_videos = visited;
  for (const auto& finalize : recorded.finalizes) {
    all_videos.insert(finalize.video_id);
  }
  for (const std::string& video_id : all_videos) {
    auto over_wire = served.Get("/highlights?video_id=" + video_id);
    if (!over_wire.ok()) return over_wire.status();
    if (over_wire.value().status != 200) {
      return common::Status::Internal(
          "check: served /highlights " + video_id + " returned " +
          std::to_string(over_wire.value().status));
    }
    auto local = reference->GetHighlights(video_id);
    if (!local.ok()) {
      return common::Status::Internal(
          "check: reference GetHighlights failed: " +
          local.status().ToString());
    }
    if (const std::string want = EncodeJson(local.value());
        over_wire.value().body != want) {
      return common::Status::Internal(
          "check: highlights mismatch for " + video_id + "\n  served: " +
          over_wire.value().body + "\n  reference: " + want);
    }
  }
  return common::Status::OK();
}

}  // namespace lightor::net
