#ifndef LIGHTOR_NET_SERVICE_H_
#define LIGHTOR_NET_SERVICE_H_

#include "net/server.h"
#include "serving/highlight_server.h"

namespace lightor::net {

/// Builds the wire route table over a `HighlightServer` (non-owning; the
/// caller keeps it alive past `HttpServer::Shutdown()`):
///
///   POST /visit     PageVisitRequest      -> PageVisitResponse
///   POST /session   LogSessionRequest     -> {"ok":true}
///   POST /refine    {"video_id"}          -> RefineReport
///   POST /ingest    IngestChatRequest     -> IngestChatResponse, or a
///                   chunked batch frame [IngestChatRequest,...] ->
///                   {"entries":[...]} (sniffed on the first body byte;
///                   oversized frames are 413, a throttled single frame
///                   is 429 + Retry-After from the channel's token
///                   bucket, throttled batch entries carry status 429)
///   POST /finalize  FinalizeStreamRequest -> FinalizeStreamResponse
///   GET  /highlights?video_id=X           -> GetHighlightsResponse
///   GET  /metrics[?format=json]           -> exposition text
///   GET  /healthz                         -> {"status":"ok","recovery":
///                                            {...}} — the RecoveryStats
///                                            recorded by Bootstrap
///   POST /debug/checkpoint                -> CheckpointStats JSON (runs
///                                            a storage checkpoint now)
///   GET  /debug/requests[?min_ms=&status=&route=&limit=]
///                                         -> recent wide events (newest
///                                            first; status takes "503"
///                                            or a class like "5xx")
///   GET  /debug/trace?trace_id=<32 hex>   -> Chrome-trace JSON of the
///                                            retained spans of one trace
///   GET  /debug/channels                  -> per-channel live-ingest
///                                            accounting (queues,
///                                            budgets, staleness)
///
/// Backend errors map onto HTTP statuses: InvalidArgument -> 400,
/// NotFound -> 404, FailedPrecondition (draining server, live-stream
/// conflicts) -> 409, IoError (storage write failure: the record was NOT
/// accepted, retry) -> 503 + Retry-After, everything else -> 500. Codec
/// decode errors are always 400.

/// Wire-level knobs of the route table.
struct RouteOptions {
  /// Caps on one chunked /ingest batch frame; a frame exceeding either
  /// is refused whole with 413 (nothing applied). Per-message body size
  /// is separately bounded by NetOptions' parser limits.
  size_t max_batch_channels = 256;
  size_t max_batch_messages = 8192;
};

Router BuildRoutes(serving::HighlightServer* server,
                   RouteOptions options = {});

}  // namespace lightor::net

#endif  // LIGHTOR_NET_SERVICE_H_
