#ifndef LIGHTOR_NET_SERVICE_H_
#define LIGHTOR_NET_SERVICE_H_

#include "net/server.h"
#include "serving/highlight_server.h"

namespace lightor::net {

/// Builds the wire route table over a `HighlightServer` (non-owning; the
/// caller keeps it alive past `HttpServer::Shutdown()`):
///
///   POST /visit     PageVisitRequest      -> PageVisitResponse
///   POST /session   LogSessionRequest     -> {"ok":true}
///   POST /refine    {"video_id"}          -> RefineReport
///   POST /ingest    IngestChatRequest     -> IngestChatResponse
///   POST /finalize  FinalizeStreamRequest -> FinalizeStreamResponse
///   GET  /highlights?video_id=X           -> GetHighlightsResponse
///   GET  /metrics[?format=json]           -> exposition text
///   GET  /healthz                         -> {"status":"ok","recovery":
///                                            {...}} — the RecoveryStats
///                                            recorded by Bootstrap
///   POST /debug/checkpoint                -> CheckpointStats JSON (runs
///                                            a storage checkpoint now)
///   GET  /debug/requests[?min_ms=&status=&route=&limit=]
///                                         -> recent wide events (newest
///                                            first; status takes "503"
///                                            or a class like "5xx")
///   GET  /debug/trace?trace_id=<32 hex>   -> Chrome-trace JSON of the
///                                            retained spans of one trace
///
/// Backend errors map onto HTTP statuses: InvalidArgument -> 400,
/// NotFound -> 404, FailedPrecondition (draining server, live-stream
/// conflicts) -> 409, IoError (storage write failure: the record was NOT
/// accepted, retry) -> 503 + Retry-After, everything else -> 500. Codec
/// decode errors are always 400.
Router BuildRoutes(serving::HighlightServer* server);

}  // namespace lightor::net

#endif  // LIGHTOR_NET_SERVICE_H_
