#ifndef LIGHTOR_NET_METRICS_H_
#define LIGHTOR_NET_METRICS_H_

#include "obs/metrics.h"

namespace lightor::net {

/// Wire front-end series (`lightor_net_*`). Labels are drawn from small
/// fixed sets (route names, status classes), never from request data, so
/// cardinality stays bounded under arbitrary traffic.

/// Requests dispatched to a handler, by route path ("/visit", ...;
/// "other" for unrouted targets).
obs::Counter& RequestsCounter(const char* route);
/// Responses written, by status class ("2xx", "4xx", "5xx").
obs::Counter& ResponsesCounter(int status);
/// Requests rejected by admission control (503 + Retry-After).
obs::Counter& AdmissionRejectedCounter();
/// Requests whose handler outlived the per-request deadline (504 sent,
/// late handler result dropped).
obs::Counter& DeadlineExpiredCounter();
/// Malformed requests answered with a parser error status.
obs::Counter& ParseErrorsCounter();
/// Connection lifecycle.
obs::Counter& ConnectionsOpenedCounter();
obs::Counter& ConnectionsClosedCounter();
obs::Counter& IdleReapedCounter();
obs::Gauge& ActiveConnectionsGauge();
/// Handler-occupancy gauge (requests dispatched, response not yet
/// queued); admission control rejects above NetOptions::max_in_flight.
obs::Gauge& InFlightRequestsGauge();
/// Handler wall time, seconds, by route × status class — so a slow
/// `/highlights` is distinguishable from a failing `/session`.
obs::Histogram& RequestLatencySeconds(const char* route, int status);
/// Payload bytes moved over the wire.
obs::Counter& BytesReadCounter();
obs::Counter& BytesWrittenCounter();

}  // namespace lightor::net

#endif  // LIGHTOR_NET_METRICS_H_
