#include "net/codec.h"

#include <cmath>

#include "net/json.h"
#include "net/json_arena.h"

namespace lightor::net {

namespace {

common::Status FieldError(std::string_view key, std::string_view what) {
  return common::Status::InvalidArgument("codec: field \"" +
                                         std::string(key) + "\" " +
                                         std::string(what));
}

// Decoders run on the arena document (JsonDoc): field payloads stay
// string_views into the request body until the moment they are assigned
// into the decoded struct — the one materialization a message gets on its
// way from wire bytes to the engines.

common::Result<JsonDoc::Ref> Require(JsonDoc::Ref obj, std::string_view key,
                                     JsonDoc::Type type) {
  const JsonDoc::Ref field = obj.Find(key);
  if (!field) return FieldError(key, "is missing");
  if (field.type() != type) return FieldError(key, "has the wrong type");
  return field;
}

common::Result<std::string> GetString(JsonDoc::Ref obj,
                                      std::string_view key) {
  LIGHTOR_ASSIGN_OR_RETURN(JsonDoc::Ref field,
                           Require(obj, key, JsonDoc::Type::kString));
  return std::string(field.AsString());
}

common::Result<double> GetNumber(JsonDoc::Ref obj, std::string_view key) {
  LIGHTOR_ASSIGN_OR_RETURN(JsonDoc::Ref field,
                           Require(obj, key, JsonDoc::Type::kNumber));
  return field.AsNumber();
}

common::Result<bool> GetBool(JsonDoc::Ref obj, std::string_view key) {
  LIGHTOR_ASSIGN_OR_RETURN(JsonDoc::Ref field,
                           Require(obj, key, JsonDoc::Type::kBool));
  return field.AsBool();
}

/// Integral field: a JSON number with no fractional part.
common::Result<int64_t> GetInt(JsonDoc::Ref obj, std::string_view key) {
  LIGHTOR_ASSIGN_OR_RETURN(double v, GetNumber(obj, key));
  if (v != std::floor(v) || std::abs(v) > 9.2e18) {
    return FieldError(key, "is not an integer");
  }
  return static_cast<int64_t>(v);
}

common::Result<JsonDoc> ParseObject(std::string_view json) {
  LIGHTOR_ASSIGN_OR_RETURN(JsonDoc doc, JsonDoc::Parse(json));
  if (!doc.root().is_object()) {
    return common::Status::InvalidArgument("codec: top-level JSON object "
                                           "expected");
  }
  return doc;
}

const char* InteractionTypeName(sim::InteractionType type) {
  switch (type) {
    case sim::InteractionType::kPlay:
      return "play";
    case sim::InteractionType::kPause:
      return "pause";
    case sim::InteractionType::kSeekForward:
      return "seek_forward";
    case sim::InteractionType::kSeekBackward:
      return "seek_backward";
  }
  return "play";
}

common::Result<sim::InteractionType> InteractionTypeFromName(
    std::string_view name) {
  if (name == "play") return sim::InteractionType::kPlay;
  if (name == "pause") return sim::InteractionType::kPause;
  if (name == "seek_forward") return sim::InteractionType::kSeekForward;
  if (name == "seek_backward") return sim::InteractionType::kSeekBackward;
  return common::Status::InvalidArgument("codec: unknown interaction type \"" +
                                         std::string(name) + "\"");
}

Json HighlightToJson(const storage::HighlightRecord& rec) {
  Json obj = Json::MakeObject();
  obj.Set("video_id", Json::Str(rec.video_id));
  obj.Set("dot_index", Json::Int(rec.dot_index));
  obj.Set("dot_position", Json::Number(rec.dot_position));
  obj.Set("start", Json::Number(rec.start));
  obj.Set("end", Json::Number(rec.end));
  obj.Set("score", Json::Number(rec.score));
  obj.Set("iteration", Json::Int(rec.iteration));
  obj.Set("converged", Json::Bool(rec.converged));
  return obj;
}

common::Result<storage::HighlightRecord> HighlightFromJson(JsonDoc::Ref obj) {
  if (!obj.is_object()) {
    return common::Status::InvalidArgument("codec: highlight must be an "
                                           "object");
  }
  storage::HighlightRecord rec;
  LIGHTOR_ASSIGN_OR_RETURN(rec.video_id, GetString(obj, "video_id"));
  LIGHTOR_ASSIGN_OR_RETURN(int64_t index, GetInt(obj, "dot_index"));
  rec.dot_index = static_cast<int32_t>(index);
  LIGHTOR_ASSIGN_OR_RETURN(rec.dot_position, GetNumber(obj, "dot_position"));
  LIGHTOR_ASSIGN_OR_RETURN(rec.start, GetNumber(obj, "start"));
  LIGHTOR_ASSIGN_OR_RETURN(rec.end, GetNumber(obj, "end"));
  LIGHTOR_ASSIGN_OR_RETURN(rec.score, GetNumber(obj, "score"));
  LIGHTOR_ASSIGN_OR_RETURN(int64_t iteration, GetInt(obj, "iteration"));
  rec.iteration = static_cast<int32_t>(iteration);
  LIGHTOR_ASSIGN_OR_RETURN(rec.converged, GetBool(obj, "converged"));
  return rec;
}

Json HighlightsToJson(const std::vector<storage::HighlightRecord>& records) {
  Json arr = Json::MakeArray();
  for (const auto& rec : records) arr.Append(HighlightToJson(rec));
  return arr;
}

/// Decodes one {"video_id","messages":[...]} entry on the arena doc —
/// shared by the single ingest frame and each element of a batch frame.
common::Result<serving::IngestChatRequest> IngestChatRequestFromJson(
    JsonDoc::Ref obj) {
  serving::IngestChatRequest req;
  LIGHTOR_ASSIGN_OR_RETURN(req.video_id, GetString(obj, "video_id"));
  LIGHTOR_ASSIGN_OR_RETURN(JsonDoc::Ref messages,
                           Require(obj, "messages", JsonDoc::Type::kArray));
  req.messages.reserve(messages.size());
  for (JsonDoc::Ref item = messages.first_child(); item;
       item = item.next_sibling()) {
    if (!item.is_object()) {
      return FieldError("messages", "holds a non-object");
    }
    // The one materialization on the ingest path: wire bytes flow as
    // views through parser and doc, and become owned strings only here,
    // directly inside the core::Message handed to the engines.
    core::Message message;
    LIGHTOR_ASSIGN_OR_RETURN(message.timestamp, GetNumber(item, "timestamp"));
    LIGHTOR_ASSIGN_OR_RETURN(message.user, GetString(item, "user"));
    LIGHTOR_ASSIGN_OR_RETURN(message.text, GetString(item, "text"));
    req.messages.push_back(std::move(message));
  }
  return req;
}

common::Result<std::vector<storage::HighlightRecord>> HighlightsFromJson(
    JsonDoc::Ref obj) {
  LIGHTOR_ASSIGN_OR_RETURN(JsonDoc::Ref arr,
                           Require(obj, "highlights", JsonDoc::Type::kArray));
  std::vector<storage::HighlightRecord> records;
  records.reserve(arr.size());
  for (JsonDoc::Ref item = arr.first_child(); item;
       item = item.next_sibling()) {
    LIGHTOR_ASSIGN_OR_RETURN(storage::HighlightRecord rec,
                             HighlightFromJson(item));
    records.push_back(std::move(rec));
  }
  return records;
}

}  // namespace

std::string EncodeJson(const serving::PageVisitRequest& v) {
  Json obj = Json::MakeObject();
  obj.Set("video_id", Json::Str(v.video_id));
  if (!v.user.empty()) obj.Set("user", Json::Str(v.user));
  return obj.Dump();
}

common::Result<serving::PageVisitRequest> DecodePageVisitRequest(
    std::string_view json) {
  LIGHTOR_ASSIGN_OR_RETURN(JsonDoc doc, ParseObject(json));
  const JsonDoc::Ref obj = doc.root();
  serving::PageVisitRequest req;
  LIGHTOR_ASSIGN_OR_RETURN(req.video_id, GetString(obj, "video_id"));
  if (const JsonDoc::Ref user = obj.Find("user")) {
    if (!user.is_string()) return FieldError("user", "has the wrong type");
    req.user = std::string(user.AsString());
  }
  return req;
}

std::string EncodeJson(const serving::PageVisitResponse& v) {
  Json obj = Json::MakeObject();
  obj.Set("highlights", HighlightsToJson(v.highlights));
  obj.Set("first_visit", Json::Bool(v.first_visit));
  obj.Set("snapshot_version", Json::Int(static_cast<int64_t>(
                                  v.snapshot_version)));
  obj.Set("provisional", Json::Bool(v.provisional));
  return obj.Dump();
}

common::Result<serving::PageVisitResponse> DecodePageVisitResponse(
    std::string_view json) {
  LIGHTOR_ASSIGN_OR_RETURN(JsonDoc doc, ParseObject(json));
  const JsonDoc::Ref obj = doc.root();
  serving::PageVisitResponse resp;
  LIGHTOR_ASSIGN_OR_RETURN(resp.highlights, HighlightsFromJson(obj));
  LIGHTOR_ASSIGN_OR_RETURN(resp.first_visit, GetBool(obj, "first_visit"));
  LIGHTOR_ASSIGN_OR_RETURN(int64_t version,
                           GetInt(obj, "snapshot_version"));
  resp.snapshot_version = static_cast<uint64_t>(version);
  LIGHTOR_ASSIGN_OR_RETURN(resp.provisional, GetBool(obj, "provisional"));
  return resp;
}

std::string EncodeJson(const serving::LogSessionRequest& v) {
  Json events = Json::MakeArray();
  for (const auto& event : v.events) {
    Json e = Json::MakeObject();
    e.Set("wall_time", Json::Number(event.wall_time));
    e.Set("type", Json::Str(InteractionTypeName(event.type)));
    e.Set("position", Json::Number(event.position));
    e.Set("target", Json::Number(event.target));
    events.Append(std::move(e));
  }
  Json obj = Json::MakeObject();
  obj.Set("video_id", Json::Str(v.video_id));
  obj.Set("user", Json::Str(v.user));
  obj.Set("session_id", Json::Int(static_cast<int64_t>(v.session_id)));
  obj.Set("events", std::move(events));
  return obj.Dump();
}

common::Result<serving::LogSessionRequest> DecodeLogSessionRequest(
    std::string_view json) {
  LIGHTOR_ASSIGN_OR_RETURN(JsonDoc doc, ParseObject(json));
  const JsonDoc::Ref obj = doc.root();
  serving::LogSessionRequest req;
  LIGHTOR_ASSIGN_OR_RETURN(req.video_id, GetString(obj, "video_id"));
  LIGHTOR_ASSIGN_OR_RETURN(req.user, GetString(obj, "user"));
  LIGHTOR_ASSIGN_OR_RETURN(int64_t session_id, GetInt(obj, "session_id"));
  if (session_id < 0) return FieldError("session_id", "is negative");
  req.session_id = static_cast<uint64_t>(session_id);
  LIGHTOR_ASSIGN_OR_RETURN(JsonDoc::Ref events,
                           Require(obj, "events", JsonDoc::Type::kArray));
  req.events.reserve(events.size());
  for (JsonDoc::Ref item = events.first_child(); item;
       item = item.next_sibling()) {
    if (!item.is_object()) return FieldError("events", "holds a non-object");
    sim::InteractionEvent event;
    LIGHTOR_ASSIGN_OR_RETURN(event.wall_time, GetNumber(item, "wall_time"));
    LIGHTOR_ASSIGN_OR_RETURN(JsonDoc::Ref type,
                             Require(item, "type", JsonDoc::Type::kString));
    LIGHTOR_ASSIGN_OR_RETURN(event.type,
                             InteractionTypeFromName(type.AsString()));
    LIGHTOR_ASSIGN_OR_RETURN(event.position, GetNumber(item, "position"));
    LIGHTOR_ASSIGN_OR_RETURN(event.target, GetNumber(item, "target"));
    req.events.push_back(event);
  }
  return req;
}

std::string EncodeJson(const serving::IngestChatRequest& v) {
  Json messages = Json::MakeArray();
  for (const auto& message : v.messages) {
    Json m = Json::MakeObject();
    m.Set("timestamp", Json::Number(message.timestamp));
    m.Set("user", Json::Str(message.user));
    m.Set("text", Json::Str(message.text));
    messages.Append(std::move(m));
  }
  Json obj = Json::MakeObject();
  obj.Set("video_id", Json::Str(v.video_id));
  obj.Set("messages", std::move(messages));
  return obj.Dump();
}

common::Result<serving::IngestChatRequest> DecodeIngestChatRequest(
    std::string_view json) {
  LIGHTOR_ASSIGN_OR_RETURN(JsonDoc doc, ParseObject(json));
  return IngestChatRequestFromJson(doc.root());
}

namespace {

Json IngestChatResponseToJson(const serving::IngestChatResponse& v) {
  Json obj = Json::MakeObject();
  obj.Set("accepted", Json::Int(static_cast<int64_t>(v.accepted)));
  obj.Set("rejected", Json::Int(static_cast<int64_t>(v.rejected)));
  obj.Set("provisional_published", Json::Bool(v.provisional_published));
  obj.Set("snapshot_version", Json::Int(static_cast<int64_t>(
                                  v.snapshot_version)));
  obj.Set("throttled", Json::Bool(v.throttled));
  obj.Set("retry_after_seconds", Json::Number(v.retry_after_seconds));
  return obj;
}

common::Result<serving::IngestChatResponse> IngestChatResponseFromJson(
    JsonDoc::Ref obj) {
  serving::IngestChatResponse resp;
  LIGHTOR_ASSIGN_OR_RETURN(int64_t accepted, GetInt(obj, "accepted"));
  resp.accepted = static_cast<size_t>(accepted);
  LIGHTOR_ASSIGN_OR_RETURN(int64_t rejected, GetInt(obj, "rejected"));
  resp.rejected = static_cast<size_t>(rejected);
  LIGHTOR_ASSIGN_OR_RETURN(resp.provisional_published,
                           GetBool(obj, "provisional_published"));
  LIGHTOR_ASSIGN_OR_RETURN(int64_t version,
                           GetInt(obj, "snapshot_version"));
  resp.snapshot_version = static_cast<uint64_t>(version);
  // Optional for wire compatibility with pre-admission servers.
  if (const JsonDoc::Ref throttled = obj.Find("throttled")) {
    if (!throttled.is_bool()) {
      return FieldError("throttled", "has the wrong type");
    }
    resp.throttled = throttled.AsBool();
  }
  if (const JsonDoc::Ref retry = obj.Find("retry_after_seconds")) {
    if (!retry.is_number()) {
      return FieldError("retry_after_seconds", "has the wrong type");
    }
    resp.retry_after_seconds = retry.AsNumber();
  }
  return resp;
}

}  // namespace

std::string EncodeJson(const serving::IngestChatResponse& v) {
  return IngestChatResponseToJson(v).Dump();
}

common::Result<serving::IngestChatResponse> DecodeIngestChatResponse(
    std::string_view json) {
  LIGHTOR_ASSIGN_OR_RETURN(JsonDoc doc, ParseObject(json));
  return IngestChatResponseFromJson(doc.root());
}

std::string EncodeIngestBatchRequest(
    const std::vector<serving::IngestChatRequest>& batches) {
  Json arr = Json::MakeArray();
  for (const auto& batch : batches) {
    Json messages = Json::MakeArray();
    for (const auto& message : batch.messages) {
      Json m = Json::MakeObject();
      m.Set("timestamp", Json::Number(message.timestamp));
      m.Set("user", Json::Str(message.user));
      m.Set("text", Json::Str(message.text));
      messages.Append(std::move(m));
    }
    Json obj = Json::MakeObject();
    obj.Set("video_id", Json::Str(batch.video_id));
    obj.Set("messages", std::move(messages));
    arr.Append(std::move(obj));
  }
  return arr.Dump();
}

common::Result<std::vector<serving::IngestChatRequest>>
DecodeIngestBatchRequest(std::string_view json) {
  LIGHTOR_ASSIGN_OR_RETURN(JsonDoc doc, JsonDoc::Parse(json));
  if (!doc.root().is_array()) {
    return common::Status::InvalidArgument(
        "codec: batch ingest frame must be a top-level JSON array");
  }
  std::vector<serving::IngestChatRequest> batches;
  batches.reserve(doc.root().size());
  for (JsonDoc::Ref item = doc.root().first_child(); item;
       item = item.next_sibling()) {
    if (!item.is_object()) {
      return common::Status::InvalidArgument(
          "codec: batch ingest frame holds a non-object entry");
    }
    LIGHTOR_ASSIGN_OR_RETURN(serving::IngestChatRequest req,
                             IngestChatRequestFromJson(item));
    batches.push_back(std::move(req));
  }
  return batches;
}

std::string EncodeIngestBatchResponse(
    const std::vector<IngestBatchEntry>& entries) {
  Json arr = Json::MakeArray();
  for (const auto& entry : entries) {
    Json obj = entry.status == 200 || entry.status == 429
                   ? IngestChatResponseToJson(entry.response)
                   : Json::MakeObject();
    obj.Set("video_id", Json::Str(entry.video_id));
    obj.Set("status", Json::Int(entry.status));
    if (!entry.error.empty()) obj.Set("error", Json::Str(entry.error));
    arr.Append(std::move(obj));
  }
  Json root = Json::MakeObject();
  root.Set("entries", std::move(arr));
  return root.Dump();
}

common::Result<std::vector<IngestBatchEntry>> DecodeIngestBatchResponse(
    std::string_view json) {
  LIGHTOR_ASSIGN_OR_RETURN(JsonDoc doc, ParseObject(json));
  LIGHTOR_ASSIGN_OR_RETURN(
      JsonDoc::Ref arr,
      Require(doc.root(), "entries", JsonDoc::Type::kArray));
  std::vector<IngestBatchEntry> entries;
  entries.reserve(arr.size());
  for (JsonDoc::Ref item = arr.first_child(); item;
       item = item.next_sibling()) {
    if (!item.is_object()) {
      return FieldError("entries", "holds a non-object");
    }
    IngestBatchEntry entry;
    LIGHTOR_ASSIGN_OR_RETURN(entry.video_id, GetString(item, "video_id"));
    LIGHTOR_ASSIGN_OR_RETURN(int64_t status, GetInt(item, "status"));
    entry.status = static_cast<int>(status);
    if (const JsonDoc::Ref error = item.Find("error")) {
      if (!error.is_string()) return FieldError("error", "has the wrong type");
      entry.error = std::string(error.AsString());
    }
    if (entry.status == 200 || entry.status == 429) {
      LIGHTOR_ASSIGN_OR_RETURN(entry.response,
                               IngestChatResponseFromJson(item));
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

std::string EncodeJson(const serving::FinalizeStreamRequest& v) {
  Json obj = Json::MakeObject();
  obj.Set("video_id", Json::Str(v.video_id));
  if (v.video_length > 0.0) {
    obj.Set("video_length", Json::Number(v.video_length));
  }
  return obj.Dump();
}

common::Result<serving::FinalizeStreamRequest> DecodeFinalizeStreamRequest(
    std::string_view json) {
  LIGHTOR_ASSIGN_OR_RETURN(JsonDoc doc, ParseObject(json));
  const JsonDoc::Ref obj = doc.root();
  serving::FinalizeStreamRequest req;
  LIGHTOR_ASSIGN_OR_RETURN(req.video_id, GetString(obj, "video_id"));
  if (const JsonDoc::Ref length = obj.Find("video_length")) {
    if (!length.is_number()) {
      return FieldError("video_length", "has the wrong type");
    }
    req.video_length = length.AsNumber();
  }
  return req;
}

std::string EncodeJson(const serving::FinalizeStreamResponse& v) {
  Json obj = Json::MakeObject();
  obj.Set("highlights", HighlightsToJson(v.highlights));
  obj.Set("snapshot_version", Json::Int(static_cast<int64_t>(
                                  v.snapshot_version)));
  obj.Set("video_length", Json::Number(v.video_length));
  return obj.Dump();
}

common::Result<serving::FinalizeStreamResponse> DecodeFinalizeStreamResponse(
    std::string_view json) {
  LIGHTOR_ASSIGN_OR_RETURN(JsonDoc doc, ParseObject(json));
  const JsonDoc::Ref obj = doc.root();
  serving::FinalizeStreamResponse resp;
  LIGHTOR_ASSIGN_OR_RETURN(resp.highlights, HighlightsFromJson(obj));
  LIGHTOR_ASSIGN_OR_RETURN(int64_t version,
                           GetInt(obj, "snapshot_version"));
  resp.snapshot_version = static_cast<uint64_t>(version);
  LIGHTOR_ASSIGN_OR_RETURN(resp.video_length,
                           GetNumber(obj, "video_length"));
  return resp;
}

std::string EncodeJson(const serving::GetHighlightsResponse& v) {
  Json obj = Json::MakeObject();
  obj.Set("highlights", HighlightsToJson(v.highlights));
  obj.Set("snapshot_version", Json::Int(static_cast<int64_t>(
                                  v.snapshot_version)));
  obj.Set("provisional", Json::Bool(v.provisional));
  return obj.Dump();
}

common::Result<serving::GetHighlightsResponse> DecodeGetHighlightsResponse(
    std::string_view json) {
  LIGHTOR_ASSIGN_OR_RETURN(JsonDoc doc, ParseObject(json));
  const JsonDoc::Ref obj = doc.root();
  serving::GetHighlightsResponse resp;
  LIGHTOR_ASSIGN_OR_RETURN(resp.highlights, HighlightsFromJson(obj));
  LIGHTOR_ASSIGN_OR_RETURN(int64_t version,
                           GetInt(obj, "snapshot_version"));
  resp.snapshot_version = static_cast<uint64_t>(version);
  LIGHTOR_ASSIGN_OR_RETURN(resp.provisional, GetBool(obj, "provisional"));
  return resp;
}

std::string EncodeJson(const serving::RefineReport& v) {
  Json dots = Json::MakeArray();
  for (const auto& dot : v.dots) {
    Json d = Json::MakeObject();
    d.Set("dot_index", Json::Int(dot.dot_index));
    d.Set("status", Json::Str(dot.status.ToString()));
    d.Set("updated", Json::Bool(dot.updated));
    d.Set("type",
          Json::Str(dot.type == core::DotType::kTypeI ? "I" : "II"));
    d.Set("enough_plays", Json::Bool(dot.enough_plays));
    d.Set("plays_used", Json::Int(dot.plays_used));
    d.Set("old_position", Json::Number(dot.old_position));
    d.Set("new_position", Json::Number(dot.new_position));
    d.Set("converged", Json::Bool(dot.converged));
    dots.Append(std::move(d));
  }
  Json obj = Json::MakeObject();
  obj.Set("video_id", Json::Str(v.video_id));
  obj.Set("dots_updated", Json::Int(v.dots_updated));
  obj.Set("sessions_consumed", Json::Int(static_cast<int64_t>(
                                   v.sessions_consumed)));
  obj.Set("dots", std::move(dots));
  return obj.Dump();
}

}  // namespace lightor::net
