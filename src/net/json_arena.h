#ifndef LIGHTOR_NET_JSON_ARENA_H_
#define LIGHTOR_NET_JSON_ARENA_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace lightor::net {

/// Arena-parsed JSON document: the zero-copy decode path of the wire
/// codec. Where `Json::Parse` builds a tree of heap nodes (a vector of
/// pair<std::string, Json> per object, a std::string per string), a
/// JsonDoc is one flat node vector plus one byte arena:
///
///   * Strings and keys without escapes are string_views into the input
///     (the connection's parse buffer) — zero bytes copied.
///   * Escaped strings are decoded once into the doc-owned arena.
///   * Structure is first_child/next_sibling index links, so an object
///     with k members costs k contiguous nodes, not k string + Json pairs.
///
/// Strictness is identical to Json::Parse — whole-input parse, duplicate
/// object keys rejected, nesting capped, numbers finite, and the same
/// "json: <what> at byte <pos>" error strings — so swapping a decoder
/// onto JsonDoc changes no observable behavior.
///
/// Lifetime: the input buffer must outlive the doc (request bodies live
/// in the RequestParser buffer, which the server keeps stable while a
/// handler runs). Refs borrow from the doc and must not outlive it.
class JsonDoc {
 public:
  enum class Type : uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Lightweight cursor over one node. A default-constructed or failed
  /// lookup Ref is invalid (`ok() == false`); accessors require validity.
  class Ref {
   public:
    Ref() = default;

    bool ok() const { return doc_ != nullptr; }
    explicit operator bool() const { return ok(); }

    Type type() const;
    bool is_null() const { return type() == Type::kNull; }
    bool is_bool() const { return type() == Type::kBool; }
    bool is_number() const { return type() == Type::kNumber; }
    bool is_string() const { return type() == Type::kString; }
    bool is_array() const { return type() == Type::kArray; }
    bool is_object() const { return type() == Type::kObject; }

    bool AsBool() const;
    double AsNumber() const;
    std::string_view AsString() const;

    /// Child count of an array/object; 0 otherwise.
    size_t size() const;
    /// Object member lookup; invalid Ref when absent or not an object.
    Ref Find(std::string_view key) const;
    /// First child of an array/object (invalid when empty), then walk
    /// with next_sibling(); members iterate in insertion order.
    Ref first_child() const;
    Ref next_sibling() const;
    /// The object key this node is stored under (empty for array items
    /// and the root).
    std::string_view key() const;

   private:
    friend class JsonDoc;
    Ref(const JsonDoc* doc, uint32_t index) : doc_(doc), index_(index) {}
    const JsonDoc* doc_ = nullptr;
    uint32_t index_ = 0;
  };

  JsonDoc() = default;
  JsonDoc(JsonDoc&&) = default;
  JsonDoc& operator=(JsonDoc&&) = default;
  JsonDoc(const JsonDoc&) = delete;
  JsonDoc& operator=(const JsonDoc&) = delete;

  /// Strict whole-input parse; `text` must outlive the returned doc.
  static common::Result<JsonDoc> Parse(std::string_view text);

  Ref root() const { return Ref(this, 0); }

  /// Bytes held by the node vector and escape arena (capacity metrics).
  size_t arena_bytes() const {
    return nodes_.capacity() * sizeof(Node) + arena_.capacity();
  }

 private:
  friend class ArenaJsonParser;

  static constexpr uint32_t kNone = 0xFFFFFFFF;

  /// Byte range in either the input or the escape arena.
  struct Span {
    uint32_t off = 0;
    uint32_t len = 0;
    bool in_arena = false;
  };

  struct Node {
    Type type = Type::kNull;
    bool boolean = false;
    double number = 0.0;
    Span str;   ///< payload of kString nodes
    Span key;   ///< object key (len 0 and off 0 for array items/root)
    uint32_t first_child = kNone;
    uint32_t last_child = kNone;
    uint32_t next_sibling = kNone;
    uint32_t child_count = 0;
  };

  std::string_view ViewOf(Span s) const {
    return s.in_arena ? std::string_view(arena_.data() + s.off, s.len)
                      : input_.substr(s.off, s.len);
  }

  std::string_view input_;
  std::vector<Node> nodes_;
  std::string arena_;  ///< decoded bytes of escaped strings only
};

}  // namespace lightor::net

#endif  // LIGHTOR_NET_JSON_ARENA_H_
