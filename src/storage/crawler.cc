#include "storage/crawler.h"

#include "common/logging.h"
#include "obs/metrics.h"

namespace lightor::storage {

namespace {

obs::Counter& ChatCacheCounter(bool hit) {
  static obs::Counter* const hits = obs::Registry::Global().GetCounter(
      "lightor_storage_chat_cache_total", {{"outcome", "hit"}});
  static obs::Counter* const misses = obs::Registry::Global().GetCounter(
      "lightor_storage_chat_cache_total", {{"outcome", "miss"}});
  return hit ? *hits : *misses;
}

obs::Counter& VideosCrawledCounter() {
  static obs::Counter* const counter = obs::Registry::Global().GetCounter(
      "lightor_storage_videos_crawled_total");
  return *counter;
}

}  // namespace

Crawler::Crawler(const sim::Platform* platform, Database* db)
    : platform_(platform), db_(db) {}

common::Result<bool> Crawler::EnsureChat(const std::string& video_id) {
  if (db_->chat().HasVideo(video_id)) {
    ChatCacheCounter(/*hit=*/true).Increment();
    return false;
  }
  ChatCacheCounter(/*hit=*/false).Increment();
  auto chat = platform_->FetchChat(video_id);
  if (!chat.ok()) return chat.status();
  for (const auto& msg : chat.value()) {
    ChatRecord rec;
    rec.video_id = video_id;
    rec.timestamp = msg.timestamp;
    rec.user = msg.user;
    rec.text = msg.text;
    LIGHTOR_RETURN_IF_ERROR(db_->PutChat(rec));
  }
  VideosCrawledCounter().Increment();
  LIGHTOR_LOG(Debug) << "crawler: fetched " << chat.value().size()
                     << " chat messages for " << video_id;
  return true;
}

common::Result<int> Crawler::CrawlChannel(const std::string& channel_name,
                                          int recent) {
  auto ids = platform_->ListRecentVideoIds(channel_name, recent);
  if (!ids.ok()) return ids.status();
  int crawled = 0;
  for (const auto& id : ids.value()) {
    auto did = EnsureChat(id);
    if (!did.ok()) return did.status();
    if (did.value()) ++crawled;
  }
  return crawled;
}

common::Result<int> Crawler::CrawlAllChannels(int recent_per_channel) {
  int crawled = 0;
  for (const auto& channel : platform_->channels()) {
    auto n = CrawlChannel(channel.name, recent_per_channel);
    if (!n.ok()) return n.status();
    crawled += n.value();
  }
  return crawled;
}

}  // namespace lightor::storage
