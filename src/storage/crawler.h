#ifndef LIGHTOR_STORAGE_CRAWLER_H_
#define LIGHTOR_STORAGE_CRAWLER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "sim/platform.h"
#include "storage/database.h"

namespace lightor::storage {

/// The chat crawler of Section VI: offline crawling periodically sweeps a
/// list of popular channels for new videos; online crawling fetches one
/// video's chat on demand (triggered when a page visit finds no chat in
/// the database). The "platform API" is the simulated platform.
class Crawler {
 public:
  /// Neither pointer is owned; both must outlive the crawler.
  Crawler(const sim::Platform* platform, Database* db);

  /// Offline pass over one channel's `recent` most recent videos. Returns
  /// the number of videos whose chat was newly crawled.
  common::Result<int> CrawlChannel(const std::string& channel_name,
                                   int recent);

  /// Offline pass over every channel.
  common::Result<int> CrawlAllChannels(int recent_per_channel);

  /// Online crawl: ensures `video_id`'s chat is in the database. Returns
  /// true if a crawl happened, false if the chat was already stored.
  common::Result<bool> EnsureChat(const std::string& video_id);

 private:
  const sim::Platform* platform_;
  Database* db_;
};

}  // namespace lightor::storage

#endif  // LIGHTOR_STORAGE_CRAWLER_H_
