#include "storage/stores.h"

#include <algorithm>

#include "obs/metrics.h"

namespace lightor::storage {

namespace {

obs::Counter& DbReadsCounter(const char* store) {
  static obs::Counter* const chat = obs::Registry::Global().GetCounter(
      "lightor_storage_db_reads_total", {{"store", "chat"}});
  static obs::Counter* const interactions = obs::Registry::Global().GetCounter(
      "lightor_storage_db_reads_total", {{"store", "interactions"}});
  static obs::Counter* const highlights = obs::Registry::Global().GetCounter(
      "lightor_storage_db_reads_total", {{"store", "highlights"}});
  switch (store[0]) {
    case 'c':
      return *chat;
    case 'i':
      return *interactions;
    default:
      return *highlights;
  }
}

}  // namespace

const std::vector<ChatRecord> ChatStore::kEmpty;

void ChatStore::Put(ChatRecord record) {
  auto& list = by_video_[record.video_id];
  if (!list.empty() && list.back().timestamp > record.timestamp) {
    dirty_[record.video_id] = true;  // sticky until the next sort
  }
  list.push_back(std::move(record));
  ++total_;
}

bool ChatStore::HasVideo(const std::string& video_id) const {
  auto it = by_video_.find(video_id);
  return it != by_video_.end() && !it->second.empty();
}

void ChatStore::EnsureSorted(const std::string& video_id) {
  auto dirty_it = dirty_.find(video_id);
  if (dirty_it != dirty_.end() && dirty_it->second) {
    auto& list = by_video_[video_id];
    std::stable_sort(list.begin(), list.end(),
                     [](const ChatRecord& a, const ChatRecord& b) {
                       return a.timestamp < b.timestamp;
                     });
    dirty_it->second = false;
  }
}

const std::vector<ChatRecord>& ChatStore::GetByVideo(
    const std::string& video_id) {
  DbReadsCounter("chat").Increment();
  auto it = by_video_.find(video_id);
  if (it == by_video_.end()) return kEmpty;
  EnsureSorted(video_id);
  return it->second;
}

std::vector<ChatRecord> ChatStore::GetRange(const std::string& video_id,
                                            double t0, double t1) {
  const auto& all = GetByVideo(video_id);
  auto lo = std::lower_bound(all.begin(), all.end(), t0,
                             [](const ChatRecord& r, double t) {
                               return r.timestamp < t;
                             });
  auto hi = std::lower_bound(lo, all.end(), t1,
                             [](const ChatRecord& r, double t) {
                               return r.timestamp < t;
                             });
  return {lo, hi};
}

std::vector<std::string> ChatStore::VideoIds() const {
  std::vector<std::string> ids;
  ids.reserve(by_video_.size());
  for (const auto& [id, _] : by_video_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

void ChatStore::ForEach(
    const std::function<void(const ChatRecord&)>& fn) const {
  std::vector<std::string> ids = VideoIds();
  for (const auto& id : ids) {
    auto it = by_video_.find(id);
    for (const auto& rec : it->second) fn(rec);
  }
}

void InteractionStore::Put(InteractionRecord record) {
  Entry entry{std::move(record), ++generation_};
  ++session_ids_[entry.record.video_id][entry.record.session_id];
  by_video_[entry.record.video_id].push_back(std::move(entry));
  ++total_;
}

bool InteractionStore::HasSession(const std::string& video_id,
                                  uint64_t session_id) const {
  return SessionEventCount(video_id, session_id) > 0;
}

size_t InteractionStore::SessionEventCount(const std::string& video_id,
                                           uint64_t session_id) const {
  auto it = session_ids_.find(video_id);
  if (it == session_ids_.end()) return 0;
  auto sit = it->second.find(session_id);
  return sit == it->second.end() ? 0 : sit->second;
}

void InteractionStore::ForEach(
    const std::function<void(const InteractionRecord&, uint64_t)>& fn) const {
  std::vector<std::string> ids;
  ids.reserve(by_video_.size());
  for (const auto& [id, _] : by_video_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  for (const auto& id : ids) {
    for (const auto& entry : by_video_.at(id)) {
      fn(entry.record, entry.generation);
    }
  }
}

void InteractionStore::RestoreEntry(InteractionRecord record,
                                    uint64_t generation) {
  if (generation > generation_) generation_ = generation;
  Entry entry{std::move(record), generation};
  ++session_ids_[entry.record.video_id][entry.record.session_id];
  by_video_[entry.record.video_id].push_back(std::move(entry));
  ++total_;
}

void InteractionStore::AdvanceGeneration(uint64_t generation) {
  if (generation > generation_) generation_ = generation;
}

std::map<uint64_t, std::vector<InteractionRecord>>
InteractionStore::SessionsForVideo(const std::string& video_id) const {
  return SessionsSince(video_id, 0);
}

std::map<uint64_t, std::vector<InteractionRecord>>
InteractionStore::SessionsSince(const std::string& video_id,
                                uint64_t min_generation) const {
  DbReadsCounter("interactions").Increment();
  std::map<uint64_t, std::vector<InteractionRecord>> sessions;
  auto it = by_video_.find(video_id);
  if (it == by_video_.end()) return sessions;
  for (const auto& entry : it->second) {
    if (entry.generation < min_generation) continue;
    sessions[entry.record.session_id].push_back(entry.record);
  }
  for (auto& [_, events] : sessions) {
    std::stable_sort(events.begin(), events.end(),
                     [](const InteractionRecord& a,
                        const InteractionRecord& b) {
                       return a.wall_time < b.wall_time;
                     });
  }
  return sessions;
}

void HighlightStore::Put(HighlightRecord record) {
  dots_[{record.video_id, record.dot_index}].push_back(std::move(record));
  ++total_;
}

std::vector<HighlightRecord> HighlightStore::GetLatest(
    const std::string& video_id) const {
  DbReadsCounter("highlights").Increment();
  std::vector<HighlightRecord> out;
  for (auto it = dots_.lower_bound({video_id, 0});
       it != dots_.end() && it->first.first == video_id; ++it) {
    if (!it->second.empty()) out.push_back(it->second.back());
  }
  return out;
}

common::Result<HighlightRecord> HighlightStore::GetDot(
    const std::string& video_id, int32_t dot_index) const {
  auto it = dots_.find({video_id, dot_index});
  if (it == dots_.end() || it->second.empty()) {
    return common::Status::NotFound("no such dot: " + video_id + "#" +
                                    std::to_string(dot_index));
  }
  return it->second.back();
}

std::vector<HighlightRecord> HighlightStore::GetHistory(
    const std::string& video_id, int32_t dot_index) const {
  auto it = dots_.find({video_id, dot_index});
  if (it == dots_.end()) return {};
  return it->second;
}

std::vector<HighlightRecord> HighlightStore::AllLatest() const {
  std::vector<HighlightRecord> out;
  out.reserve(dots_.size());
  for (const auto& [key, history] : dots_) {
    if (!history.empty()) out.push_back(history.back());
  }
  return out;
}

void HighlightStore::ResetFrom(std::vector<HighlightRecord> records) {
  dots_.clear();
  total_ = 0;
  for (auto& rec : records) Put(std::move(rec));
}

bool HighlightStore::HasVideo(const std::string& video_id) const {
  auto it = dots_.lower_bound({video_id, 0});
  return it != dots_.end() && it->first.first == video_id;
}

}  // namespace lightor::storage
