#ifndef LIGHTOR_STORAGE_CHECKPOINT_H_
#define LIGHTOR_STORAGE_CHECKPOINT_H_

#include <cstdint>
#include <optional>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "storage/env.h"
#include "storage/stores.h"

namespace lightor::storage {

class Database;

/// On-disk layout of a checkpointed database directory:
///
///   MANIFEST             which log generation is live and which
///                        checkpoint (if any) Open must load
///   ckpt.<g>             checkpoint image for generation g
///   chat.log             generation-0 logs (the pre-checkpoint legacy
///   interactions.log     names; a directory with no MANIFEST is read
///   highlights.log       exactly as before this subsystem existed)
///   chat.<g>.log         generation-g (g >= 1) logs, created by the
///   ...                  g-th checkpoint; old generations are deleted
///
/// A checkpoint bumps the generation: it writes the full live state to
/// `ckpt.<g+1>` (write-temp -> fsync -> rename), then atomically swaps
/// the MANIFEST to `{log_gen: g+1, checkpoint_gen: g+1}` — the commit
/// point — and finally starts fresh generation-g+1 logs and deletes the
/// old ones. Open loads the checkpoint the MANIFEST names and replays
/// only the current generation's logs, so a cold restart is
/// O(live state + post-checkpoint suffix), not O(history).
///
/// Crash-safety argument (enumerable under testing::FaultEnv): every
/// step before the MANIFEST rename leaves the old manifest in place, so
/// recovery sees the pre-checkpoint state; every step after it finds the
/// new checkpoint durable (it was fsynced before the swap) and the new
/// logs either short or absent (absent = empty log), so recovery sees
/// the post-checkpoint state. There is no I/O point whose crash yields a
/// hybrid. Stale files from a torn run (`*.tmp`, unreferenced `ckpt.*`
/// or off-generation logs) are swept by the next Open.
struct Manifest {
  /// Bumped when the format changes incompatibly.
  static constexpr uint32_t kFormatVersion = 1;

  uint64_t log_gen = 0;         ///< live log generation (0 = legacy names)
  uint64_t checkpoint_gen = 0;  ///< checkpoint to load on Open; 0 = none
  uint64_t checkpoint_lsn = 0;  ///< LSN the checkpoint covers
};

std::string ManifestPath(const std::string& directory);
std::string CheckpointFilePath(const std::string& directory, uint64_t gen);
/// `base` is "chat", "interactions" or "highlights"; gen 0 maps to the
/// legacy `<base>.log` name.
std::string LogFilePath(const std::string& directory, const std::string& base,
                        uint64_t gen);

/// Atomically installs `manifest` (write temp, fsync, rename — the
/// rename is the commit point).
common::Status WriteManifest(Env* env, const std::string& directory,
                             const Manifest& manifest);

/// Reads the MANIFEST; nullopt when none exists (legacy layout). A
/// present-but-unreadable manifest is Corruption: it is only ever
/// installed by an atomic rename of a synced temp file, so a torn one
/// means real damage, and guessing would serve a wrong hybrid.
common::Result<std::optional<Manifest>> ReadManifest(
    Env* env, const std::string& directory);

/// Checkpoint policy knobs, carried by `storage::OpenOptions`.
struct CheckpointPolicy {
  /// Omit interaction records of videos whose dots have completed at
  /// least one refinement pass. The serving layer consumes interactions
  /// at most once across restarts (see serving::SeedWatermarksFromDb:
  /// refined dots put the restart watermark past everything on disk), so
  /// these records can never feed another refinement — dropping them is
  /// what makes the checkpoint O(live state) rather than O(sessions).
  /// Turn off to keep every interaction byte-for-byte (e.g. for offline
  /// analysis of the raw session streams).
  bool drop_consumed_interactions = true;
};

/// What one checkpoint run did.
struct CheckpointStats {
  uint64_t gen = 0;               ///< generation this checkpoint created
  uint64_t lsn = 0;               ///< LSN the image covers
  size_t records_written = 0;     ///< records in the image
  uint64_t checkpoint_bytes = 0;  ///< image size on disk
  uint64_t log_bytes_truncated = 0;  ///< old-generation log bytes freed
  double wall_seconds = 0.0;
};

/// What loading a checkpoint image recovered (consumed by
/// `Database::Open`).
struct CheckpointImageStats {
  uint64_t lsn = 0;
  size_t records = 0;
};

/// Writes the full live state of the three stores as a checkpoint image
/// at `path` (CRC-framed records: one header, then chat / interaction /
/// highlight sections with counts in the header so a torn image is
/// detected on load). The image is fsynced before this returns OK.
/// Highlight dots collapse to their latest record — the checkpoint
/// doubles as highlight-history compaction.
common::Result<CheckpointStats> WriteCheckpointImage(
    Env* env, const std::string& path, const ChatStore& chat,
    const InteractionStore& interactions, const HighlightStore& highlights,
    uint64_t lsn, const CheckpointPolicy& policy);

/// Loads the image at `path` into the three (empty) stores, restoring
/// interaction generations and the generation counter exactly.
common::Result<CheckpointImageStats> LoadCheckpointImage(
    Env* env, const std::string& path, ChatStore& chat,
    InteractionStore& interactions, HighlightStore& highlights);

/// Runs the checkpoint protocol against an open database. The caller
/// must hold whatever lock serializes writers (the serving layer runs
/// this under its db mutex); the database itself is single-threaded.
///
/// A successful run leaves the database appending to fresh
/// generation-g+1 logs. A failed run before the manifest swap leaves it
/// untouched (stale temp files are swept by the next Open); a wedged log
/// is actually *rescued* by a successful run, since the new generation
/// starts with fresh files.
class Checkpointer {
 public:
  explicit Checkpointer(Database* db) : db_(db) {}

  common::Result<CheckpointStats> Run(const CheckpointPolicy& policy);

 private:
  Database* const db_;
};

}  // namespace lightor::storage

#endif  // LIGHTOR_STORAGE_CHECKPOINT_H_
