#include "storage/database.h"

#include "obs/metrics.h"

namespace lightor::storage {

namespace {

obs::Counter& DbWritesCounter(const char* log) {
  static obs::Counter* const chat = obs::Registry::Global().GetCounter(
      "lightor_storage_db_writes_total", {{"log", "chat"}});
  static obs::Counter* const interactions = obs::Registry::Global().GetCounter(
      "lightor_storage_db_writes_total", {{"log", "interactions"}});
  static obs::Counter* const highlights = obs::Registry::Global().GetCounter(
      "lightor_storage_db_writes_total", {{"log", "highlights"}});
  switch (log[0]) {
    case 'c':
      return *chat;
    case 'i':
      return *interactions;
    default:
      return *highlights;
  }
}

/// Appends that failed (and whose record therefore never reached the
/// in-memory index). The serving layer surfaces these as 503s; a non-zero
/// rate here means viewer interactions are being refused, not silently
/// dropped.
obs::Counter& DbWriteErrorsCounter(const char* log) {
  static obs::Counter* const chat = obs::Registry::Global().GetCounter(
      "lightor_storage_write_errors_total", {{"log", "chat"}});
  static obs::Counter* const interactions = obs::Registry::Global().GetCounter(
      "lightor_storage_write_errors_total", {{"log", "interactions"}});
  static obs::Counter* const highlights = obs::Registry::Global().GetCounter(
      "lightor_storage_write_errors_total", {{"log", "highlights"}});
  switch (log[0]) {
    case 'c':
      return *chat;
    case 'i':
      return *interactions;
    default:
      return *highlights;
  }
}

}  // namespace

common::Result<std::unique_ptr<Database>> Database::Open(
    const std::string& directory, const OpenOptions& options) {
  Env* env = options.env != nullptr ? options.env : Env::Default();
  LIGHTOR_RETURN_IF_ERROR(env->CreateDirs(directory));
  std::unique_ptr<Database> db(new Database());
  db->env_ = env;
  db->directory_ = directory;
  const std::string chat_path = directory + "/chat.log";
  const std::string interaction_path = directory + "/interactions.log";
  const std::string highlight_path = directory + "/highlights.log";

  // Truncate torn tails, then replay.
  for (const auto& path : {chat_path, interaction_path, highlight_path}) {
    auto recovered = AppendLog::Recover(path, env);
    if (!recovered.ok()) return recovered.status();
  }

  common::Status replay_status = common::Status::OK();
  LIGHTOR_RETURN_IF_ERROR(AppendLog::ReplayFile(
      chat_path,
      [&](const std::vector<uint8_t>& bytes) {
        auto rec = ChatRecord::Decode(bytes);
        if (rec.ok()) db->chat_.Put(std::move(rec).value());
        else if (replay_status.ok()) replay_status = rec.status();
      },
      nullptr, env));
  LIGHTOR_RETURN_IF_ERROR(AppendLog::ReplayFile(
      interaction_path,
      [&](const std::vector<uint8_t>& bytes) {
        auto rec = InteractionRecord::Decode(bytes);
        if (rec.ok()) db->interactions_.Put(std::move(rec).value());
        else if (replay_status.ok()) replay_status = rec.status();
      },
      nullptr, env));
  LIGHTOR_RETURN_IF_ERROR(AppendLog::ReplayFile(
      highlight_path,
      [&](const std::vector<uint8_t>& bytes) {
        auto rec = HighlightRecord::Decode(bytes);
        if (rec.ok()) db->highlights_.Put(std::move(rec).value());
        else if (replay_status.ok()) replay_status = rec.status();
      },
      nullptr, env));
  if (!replay_status.ok()) return replay_status;

  LIGHTOR_RETURN_IF_ERROR(db->chat_log_.Open(chat_path, env));
  LIGHTOR_RETURN_IF_ERROR(db->interaction_log_.Open(interaction_path, env));
  LIGHTOR_RETURN_IF_ERROR(db->highlight_log_.Open(highlight_path, env));
  if (options.sync_on_flush) {
    db->chat_log_.set_sync_on_flush(true);
    db->interaction_log_.set_sync_on_flush(true);
    db->highlight_log_.set_sync_on_flush(true);
  }
  return db;
}

Database::Stats Database::GetStats() const {
  Stats stats;
  stats.chat_records = chat_.TotalRecords();
  stats.interaction_records = interactions_.TotalRecords();
  stats.highlight_records = highlights_.TotalRecords();
  stats.highlight_dots = highlights_.NumDots();
  stats.chat_log_bytes =
      env_->GetFileSize(directory_ + "/chat.log").value_or(0);
  stats.interaction_log_bytes =
      env_->GetFileSize(directory_ + "/interactions.log").value_or(0);
  stats.highlight_log_bytes =
      env_->GetFileSize(directory_ + "/highlights.log").value_or(0);
  return stats;
}

common::Result<size_t> Database::CompactHighlights() {
  const std::string path = directory_ + "/highlights.log";
  const std::string tmp_path = path + ".compact";
  std::vector<HighlightRecord> latest = highlights_.AllLatest();
  {
    AppendLog tmp;
    LIGHTOR_RETURN_IF_ERROR(tmp.Open(tmp_path, env_));
    for (const auto& rec : latest) {
      LIGHTOR_RETURN_IF_ERROR(tmp.Append(rec.Encode()));
    }
  }
  highlight_log_.Close();
  if (auto st = env_->RenameFile(tmp_path, path); !st.ok()) {
    // Try to keep serving: reopen the old log.
    (void)highlight_log_.Open(path, env_);
    return common::Status::IoError("compaction rename failed: " +
                                   st.message());
  }
  LIGHTOR_RETURN_IF_ERROR(highlight_log_.Open(path, env_));
  highlights_.ResetFrom(std::move(latest));
  return highlights_.TotalRecords();
}

common::Status Database::PutChat(const ChatRecord& record) {
  if (auto st = chat_log_.Append(record.Encode()); !st.ok()) {
    DbWriteErrorsCounter("chat").Increment();
    return st;
  }
  chat_.Put(record);
  DbWritesCounter("chat").Increment();
  return common::Status::OK();
}

common::Status Database::PutInteraction(const InteractionRecord& record) {
  if (auto st = interaction_log_.Append(record.Encode()); !st.ok()) {
    DbWriteErrorsCounter("interactions").Increment();
    return st;
  }
  interactions_.Put(record);
  DbWritesCounter("interactions").Increment();
  return common::Status::OK();
}

common::Status Database::PutHighlight(const HighlightRecord& record) {
  if (auto st = highlight_log_.Append(record.Encode()); !st.ok()) {
    DbWriteErrorsCounter("highlights").Increment();
    return st;
  }
  highlights_.Put(record);
  DbWritesCounter("highlights").Increment();
  return common::Status::OK();
}

}  // namespace lightor::storage
