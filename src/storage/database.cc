#include "storage/database.h"

#include <chrono>

#include "common/logging.h"
#include "obs/metrics.h"
#include "storage/checkpoint.h"

namespace lightor::storage {

namespace {

obs::Counter& DbWritesCounter(const char* log) {
  static obs::Counter* const chat = obs::Registry::Global().GetCounter(
      "lightor_storage_db_writes_total", {{"log", "chat"}});
  static obs::Counter* const interactions = obs::Registry::Global().GetCounter(
      "lightor_storage_db_writes_total", {{"log", "interactions"}});
  static obs::Counter* const highlights = obs::Registry::Global().GetCounter(
      "lightor_storage_db_writes_total", {{"log", "highlights"}});
  switch (log[0]) {
    case 'c':
      return *chat;
    case 'i':
      return *interactions;
    default:
      return *highlights;
  }
}

/// Appends that failed (and whose record therefore never reached the
/// in-memory index). The serving layer surfaces these as 503s; a non-zero
/// rate here means viewer interactions are being refused, not silently
/// dropped.
obs::Counter& DbWriteErrorsCounter(const char* log) {
  static obs::Counter* const chat = obs::Registry::Global().GetCounter(
      "lightor_storage_write_errors_total", {{"log", "chat"}});
  static obs::Counter* const interactions = obs::Registry::Global().GetCounter(
      "lightor_storage_write_errors_total", {{"log", "interactions"}});
  static obs::Counter* const highlights = obs::Registry::Global().GetCounter(
      "lightor_storage_write_errors_total", {{"log", "highlights"}});
  switch (log[0]) {
    case 'c':
      return *chat;
    case 'i':
      return *interactions;
    default:
      return *highlights;
  }
}

/// True when `name` is `<base>.log` (gen 0) or `<base>.<n>.log` for one
/// of the three log bases; `gen` receives the generation.
bool ParseLogName(const std::string& name, uint64_t* gen) {
  for (const char* base : {"chat", "interactions", "highlights"}) {
    const std::string prefix = std::string(base) + ".";
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    std::string rest = name.substr(prefix.size());
    if (rest == "log") {
      *gen = 0;
      return true;
    }
    const size_t dot = rest.find('.');
    if (dot == std::string::npos || rest.substr(dot + 1) != "log") continue;
    const std::string digits = rest.substr(0, dot);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    *gen = std::stoull(digits);
    return true;
  }
  return false;
}

/// True when `name` is `ckpt.<n>`; `gen` receives n.
bool ParseCheckpointName(const std::string& name, uint64_t* gen) {
  const std::string prefix = "ckpt.";
  if (name.compare(0, prefix.size(), prefix) != 0) return false;
  const std::string digits = name.substr(prefix.size());
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  *gen = std::stoull(digits);
  return true;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

common::Result<Database::OpenResult> Database::Open(
    const OpenOptions& options) {
  const auto t0 = std::chrono::steady_clock::now();
  Env* env = options.env != nullptr ? options.env : Env::Default();
  LIGHTOR_RETURN_IF_ERROR(env->CreateDirs(options.directory));
  std::unique_ptr<Database> db(new Database());
  db->env_ = env;
  db->directory_ = options.directory;
  db->options_ = options;
  RecoveryStats stats;

  LIGHTOR_ASSIGN_OR_RETURN(const auto manifest_opt,
                           ReadManifest(env, options.directory));
  const Manifest manifest = manifest_opt.value_or(Manifest{});
  db->log_gen_ = manifest.log_gen;
  stats.log_gen = manifest.log_gen;

  if (manifest.checkpoint_gen > 0) {
    LIGHTOR_ASSIGN_OR_RETURN(
        const auto image,
        LoadCheckpointImage(
            env, CheckpointFilePath(options.directory, manifest.checkpoint_gen),
            db->chat_, db->interactions_, db->highlights_));
    if (image.lsn != manifest.checkpoint_lsn) {
      return common::Status::Corruption(
          "checkpoint LSN disagrees with MANIFEST: " + options.directory);
    }
    stats.checkpoint_gen = manifest.checkpoint_gen;
    stats.checkpoint_lsn = image.lsn;
    stats.checkpoint_records = image.records;
    db->lsn_ = image.lsn;
  }

  db->chat_path_ = LogFilePath(options.directory, "chat", db->log_gen_);
  db->interaction_path_ =
      LogFilePath(options.directory, "interactions", db->log_gen_);
  db->highlight_path_ =
      LogFilePath(options.directory, "highlights", db->log_gen_);

  // Truncate torn tails, replay the suffix, and open — one call per log.
  common::Status replay_status = common::Status::OK();
  const struct {
    AppendLog& log;
    const std::string& path;
    std::function<void(const std::vector<uint8_t>&)> visit;
  } logs[] = {
      {db->chat_log_, db->chat_path_,
       [&](const std::vector<uint8_t>& bytes) {
         auto rec = ChatRecord::Decode(bytes);
         if (rec.ok()) db->chat_.Put(std::move(rec).value());
         else if (replay_status.ok()) replay_status = rec.status();
       }},
      {db->interaction_log_, db->interaction_path_,
       [&](const std::vector<uint8_t>& bytes) {
         auto rec = InteractionRecord::Decode(bytes);
         if (rec.ok()) db->interactions_.Put(std::move(rec).value());
         else if (replay_status.ok()) replay_status = rec.status();
       }},
      {db->highlight_log_, db->highlight_path_,
       [&](const std::vector<uint8_t>& bytes) {
         auto rec = HighlightRecord::Decode(bytes);
         if (rec.ok()) db->highlights_.Put(std::move(rec).value());
         else if (replay_status.ok()) replay_status = rec.status();
       }},
  };
  for (const auto& entry : logs) {
    LIGHTOR_ASSIGN_OR_RETURN(const auto replayed,
                             entry.log.OpenAndReplay(entry.path, entry.visit,
                                                     env));
    stats.records_replayed += replayed.records;
    stats.torn_bytes_truncated += replayed.torn_bytes;
  }
  if (!replay_status.ok()) return replay_status;
  db->lsn_ += stats.records_replayed;

  if (options.sync_on_flush) {
    db->chat_log_.set_sync_on_flush(true);
    db->interaction_log_.set_sync_on_flush(true);
    db->highlight_log_.set_sync_on_flush(true);
  }

  db->SweepStaleFiles(manifest.checkpoint_gen);

  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  db->recovery_stats_ = stats;
  OpenResult result;
  result.db = std::move(db);
  result.stats = stats;
  return result;
}

void Database::SweepStaleFiles(uint64_t checkpoint_gen) {
  auto names = env_->ListDir(directory_);
  if (!names.ok()) return;  // best-effort
  for (const std::string& name : names.value()) {
    bool stale = false;
    uint64_t gen = 0;
    if (EndsWith(name, ".tmp") || EndsWith(name, ".compact")) {
      stale = true;  // torn temp from an interrupted checkpoint/compaction
    } else if (ParseLogName(name, &gen)) {
      stale = gen != log_gen_;
    } else if (ParseCheckpointName(name, &gen)) {
      stale = gen != checkpoint_gen;
    }
    if (!stale) continue;
    if (auto st = env_->RemoveFile(directory_ + "/" + name); !st.ok()) {
      LIGHTOR_LOG(Warning)
          << "storage: sweep of stale file failed (will retry next open): "
          << name << ": " << st.message();
    }
  }
}

Database::Stats Database::GetStats() const {
  Stats stats;
  stats.chat_records = chat_.TotalRecords();
  stats.interaction_records = interactions_.TotalRecords();
  stats.highlight_records = highlights_.TotalRecords();
  stats.highlight_dots = highlights_.NumDots();
  stats.chat_log_bytes = env_->GetFileSize(chat_path_).value_or(0);
  stats.interaction_log_bytes =
      env_->GetFileSize(interaction_path_).value_or(0);
  stats.highlight_log_bytes = env_->GetFileSize(highlight_path_).value_or(0);
  return stats;
}

common::Result<size_t> Database::CompactHighlights() {
  const std::string& path = highlight_path_;
  const std::string tmp_path = path + ".compact";
  std::vector<HighlightRecord> latest = highlights_.AllLatest();
  {
    AppendLog tmp;
    LIGHTOR_RETURN_IF_ERROR(tmp.Open(tmp_path, env_));
    for (const auto& rec : latest) {
      LIGHTOR_RETURN_IF_ERROR(tmp.Append(rec.Encode()));
    }
  }
  highlight_log_.Close();
  if (auto st = env_->RenameFile(tmp_path, path); !st.ok()) {
    // Try to keep serving: reopen the old log.
    (void)highlight_log_.Open(path, env_);
    return common::Status::IoError("compaction rename failed: " +
                                   st.message());
  }
  LIGHTOR_RETURN_IF_ERROR(highlight_log_.Open(path, env_));
  highlights_.ResetFrom(std::move(latest));
  return highlights_.TotalRecords();
}

common::Status Database::PutChat(const ChatRecord& record) {
  if (auto st = chat_log_.Append(record.Encode()); !st.ok()) {
    DbWriteErrorsCounter("chat").Increment();
    return st;
  }
  chat_.Put(record);
  ++lsn_;
  DbWritesCounter("chat").Increment();
  return common::Status::OK();
}

common::Status Database::PutInteraction(const InteractionRecord& record) {
  if (auto st = interaction_log_.Append(record.Encode()); !st.ok()) {
    DbWriteErrorsCounter("interactions").Increment();
    return st;
  }
  interactions_.Put(record);
  ++lsn_;
  DbWritesCounter("interactions").Increment();
  return common::Status::OK();
}

common::Status Database::PutHighlight(const HighlightRecord& record) {
  if (auto st = highlight_log_.Append(record.Encode()); !st.ok()) {
    DbWriteErrorsCounter("highlights").Increment();
    return st;
  }
  highlights_.Put(record);
  ++lsn_;
  DbWritesCounter("highlights").Increment();
  return common::Status::OK();
}

}  // namespace lightor::storage
