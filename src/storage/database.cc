#include "storage/database.h"

#include <filesystem>

#include "obs/metrics.h"

namespace lightor::storage {

namespace {

obs::Counter& DbWritesCounter(const char* log) {
  static obs::Counter* const chat = obs::Registry::Global().GetCounter(
      "lightor_storage_db_writes_total", {{"log", "chat"}});
  static obs::Counter* const interactions = obs::Registry::Global().GetCounter(
      "lightor_storage_db_writes_total", {{"log", "interactions"}});
  static obs::Counter* const highlights = obs::Registry::Global().GetCounter(
      "lightor_storage_db_writes_total", {{"log", "highlights"}});
  switch (log[0]) {
    case 'c':
      return *chat;
    case 'i':
      return *interactions;
    default:
      return *highlights;
  }
}

}  // namespace

common::Result<std::unique_ptr<Database>> Database::Open(
    const std::string& directory) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    return common::Status::IoError("create_directories failed: " +
                                   directory + ": " + ec.message());
  }
  std::unique_ptr<Database> db(new Database());
  db->directory_ = directory;
  const std::string chat_path = directory + "/chat.log";
  const std::string interaction_path = directory + "/interactions.log";
  const std::string highlight_path = directory + "/highlights.log";

  // Truncate torn tails, then replay.
  for (const auto& path : {chat_path, interaction_path, highlight_path}) {
    auto recovered = AppendLog::Recover(path);
    if (!recovered.ok()) return recovered.status();
  }

  common::Status replay_status = common::Status::OK();
  LIGHTOR_RETURN_IF_ERROR(AppendLog::ReplayFile(
      chat_path, [&](const std::vector<uint8_t>& bytes) {
        auto rec = ChatRecord::Decode(bytes);
        if (rec.ok()) db->chat_.Put(std::move(rec).value());
        else if (replay_status.ok()) replay_status = rec.status();
      }));
  LIGHTOR_RETURN_IF_ERROR(AppendLog::ReplayFile(
      interaction_path, [&](const std::vector<uint8_t>& bytes) {
        auto rec = InteractionRecord::Decode(bytes);
        if (rec.ok()) db->interactions_.Put(std::move(rec).value());
        else if (replay_status.ok()) replay_status = rec.status();
      }));
  LIGHTOR_RETURN_IF_ERROR(AppendLog::ReplayFile(
      highlight_path, [&](const std::vector<uint8_t>& bytes) {
        auto rec = HighlightRecord::Decode(bytes);
        if (rec.ok()) db->highlights_.Put(std::move(rec).value());
        else if (replay_status.ok()) replay_status = rec.status();
      }));
  if (!replay_status.ok()) return replay_status;

  LIGHTOR_RETURN_IF_ERROR(db->chat_log_.Open(chat_path));
  LIGHTOR_RETURN_IF_ERROR(db->interaction_log_.Open(interaction_path));
  LIGHTOR_RETURN_IF_ERROR(db->highlight_log_.Open(highlight_path));
  return db;
}

Database::Stats Database::GetStats() const {
  Stats stats;
  stats.chat_records = chat_.TotalRecords();
  stats.interaction_records = interactions_.TotalRecords();
  stats.highlight_records = highlights_.TotalRecords();
  stats.highlight_dots = highlights_.NumDots();
  std::error_code ec;
  stats.chat_log_bytes =
      std::filesystem::file_size(directory_ + "/chat.log", ec);
  if (ec) stats.chat_log_bytes = 0;
  stats.interaction_log_bytes =
      std::filesystem::file_size(directory_ + "/interactions.log", ec);
  if (ec) stats.interaction_log_bytes = 0;
  stats.highlight_log_bytes =
      std::filesystem::file_size(directory_ + "/highlights.log", ec);
  if (ec) stats.highlight_log_bytes = 0;
  return stats;
}

common::Result<size_t> Database::CompactHighlights() {
  const std::string path = directory_ + "/highlights.log";
  const std::string tmp_path = path + ".compact";
  std::vector<HighlightRecord> latest = highlights_.AllLatest();
  {
    AppendLog tmp;
    LIGHTOR_RETURN_IF_ERROR(tmp.Open(tmp_path));
    for (const auto& rec : latest) {
      LIGHTOR_RETURN_IF_ERROR(tmp.Append(rec.Encode()));
    }
  }
  highlight_log_.Close();
  std::error_code ec;
  std::filesystem::rename(tmp_path, path, ec);
  if (ec) {
    // Try to keep serving: reopen the old log.
    (void)highlight_log_.Open(path);
    return common::Status::IoError("compaction rename failed: " +
                                   ec.message());
  }
  LIGHTOR_RETURN_IF_ERROR(highlight_log_.Open(path));
  highlights_.ResetFrom(std::move(latest));
  return highlights_.TotalRecords();
}

common::Status Database::PutChat(const ChatRecord& record) {
  LIGHTOR_RETURN_IF_ERROR(chat_log_.Append(record.Encode()));
  chat_.Put(record);
  DbWritesCounter("chat").Increment();
  return common::Status::OK();
}

common::Status Database::PutInteraction(const InteractionRecord& record) {
  LIGHTOR_RETURN_IF_ERROR(interaction_log_.Append(record.Encode()));
  interactions_.Put(record);
  DbWritesCounter("interactions").Increment();
  return common::Status::OK();
}

common::Status Database::PutHighlight(const HighlightRecord& record) {
  LIGHTOR_RETURN_IF_ERROR(highlight_log_.Append(record.Encode()));
  highlights_.Put(record);
  DbWritesCounter("highlights").Increment();
  return common::Status::OK();
}

}  // namespace lightor::storage
