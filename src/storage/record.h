#ifndef LIGHTOR_STORAGE_RECORD_H_
#define LIGHTOR_STORAGE_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace lightor::storage {

/// One crawled chat message, keyed by video.
struct ChatRecord {
  std::string video_id;
  double timestamp = 0.0;
  std::string user;
  std::string text;

  std::vector<uint8_t> Encode() const;
  static common::Result<ChatRecord> Decode(const std::vector<uint8_t>& bytes);
  friend bool operator==(const ChatRecord&, const ChatRecord&) = default;
};

/// Frontend interaction kinds (mirrors sim::InteractionType; stored as a
/// stable wire value).
enum class StoredInteraction : uint8_t {
  kPlay = 0,
  kPause = 1,
  kSeekForward = 2,
  kSeekBackward = 3,
};

/// One logged frontend interaction around a red dot.
struct InteractionRecord {
  std::string video_id;
  std::string user;
  uint64_t session_id = 0;
  StoredInteraction event = StoredInteraction::kPlay;
  double wall_time = 0.0;
  double position = 0.0;
  double target = 0.0;

  std::vector<uint8_t> Encode() const;
  static common::Result<InteractionRecord> Decode(
      const std::vector<uint8_t>& bytes);
  friend bool operator==(const InteractionRecord&,
                         const InteractionRecord&) = default;
};

/// The current state of one red dot / highlight of a video. Re-written on
/// every refinement iteration; the store keeps the latest per
/// (video, dot_index).
struct HighlightRecord {
  std::string video_id;
  int32_t dot_index = 0;
  double dot_position = 0.0;
  double start = 0.0;
  double end = 0.0;
  double score = 0.0;
  int32_t iteration = 0;
  bool converged = false;

  std::vector<uint8_t> Encode() const;
  static common::Result<HighlightRecord> Decode(
      const std::vector<uint8_t>& bytes);
  friend bool operator==(const HighlightRecord&,
                         const HighlightRecord&) = default;
};

}  // namespace lightor::storage

#endif  // LIGHTOR_STORAGE_RECORD_H_
