#ifndef LIGHTOR_STORAGE_ENV_H_
#define LIGHTOR_STORAGE_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace lightor::storage {

/// The storage I/O seam (the LevelDB `Env` idiom): every file operation
/// the storage layer performs — log appends, flushes, syncs, replay
/// reads, recovery truncation, compaction renames — goes through an `Env`
/// so tests can substitute a deterministic fault-injecting implementation
/// (`testing::FaultEnv`) for the real POSIX one.
///
/// Crash model vocabulary, used consistently across the layer:
///
///   * `Append` puts bytes in the **application buffer** — lost on any
///     crash.
///   * `Flush` pushes the application buffer to the **kernel** (the
///     `fflush`/`write(2)` durability point) — survives a process crash,
///     lost on power failure.
///   * `Sync` additionally reaches the **platter** (`fsync`) — survives
///     power failure.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Buffers `size` bytes at the end of the file. May spill the buffer to
  /// the kernel when it fills, so even `Append` can surface I/O errors.
  virtual common::Status Append(const uint8_t* data, size_t size) = 0;
  common::Status Append(const std::vector<uint8_t>& bytes) {
    return Append(bytes.data(), bytes.size());
  }

  /// Drains the application buffer to the kernel (retrying interrupted
  /// and short writes internally; those are not errors).
  virtual common::Status Flush() = 0;

  /// Flush + fsync: bytes survive power loss on return.
  virtual common::Status Sync() = 0;

  /// Flush + close. Idempotent; errors on the final flush are reported.
  virtual common::Status Close() = 0;

  /// Drops bytes still sitting in the application buffer without writing
  /// them. Called after a failed write: the buffered tail belongs to a
  /// record that already failed, and flushing it later (from `Close` or
  /// the destructor) would bury subsequent appends behind a torn frame
  /// that tail recovery has already truncated.
  virtual void DiscardBuffered() = 0;
};

/// Forward-only reader used by log replay.
class SequentialFile {
 public:
  virtual ~SequentialFile() = default;

  /// Reads up to `size` bytes into `buf`. Returns the number of bytes
  /// actually read; 0 means end of file.
  virtual common::Result<size_t> Read(uint8_t* buf, size_t size) = 0;
};

/// Filesystem operations the storage layer needs. Implementations must be
/// safe to share across threads (the POSIX one is stateless; FaultEnv
/// locks internally).
class Env {
 public:
  virtual ~Env() = default;

  /// The process-wide POSIX environment (never null, never destroyed).
  static Env* Default();

  /// Opens `path` for appending, creating it if needed.
  virtual common::Result<std::unique_ptr<WritableFile>> NewAppendableFile(
      const std::string& path) = 0;

  /// Opens `path` for sequential reading.
  virtual common::Result<std::unique_ptr<SequentialFile>> NewSequentialFile(
      const std::string& path) = 0;

  virtual bool FileExists(const std::string& path) = 0;
  virtual common::Result<uint64_t> GetFileSize(const std::string& path) = 0;

  /// Shrinks `path` to `size` bytes (log-tail recovery).
  virtual common::Status TruncateFile(const std::string& path,
                                      uint64_t size) = 0;

  /// Atomically replaces `to` with `from` (compaction publish).
  virtual common::Status RenameFile(const std::string& from,
                                    const std::string& to) = 0;

  virtual common::Status RemoveFile(const std::string& path) = 0;

  /// Recursively creates `path` (and parents); existing is OK.
  virtual common::Status CreateDirs(const std::string& path) = 0;

  /// Names (not full paths) of the regular files directly under `path`,
  /// in unspecified order. A missing directory is an empty listing, not
  /// an error (recovery uses this to sweep stale checkpoint/log
  /// generations and must work on a first boot).
  virtual common::Result<std::vector<std::string>> ListDir(
      const std::string& path) = 0;
};

}  // namespace lightor::storage

#endif  // LIGHTOR_STORAGE_ENV_H_
