#ifndef LIGHTOR_STORAGE_SERIALIZE_H_
#define LIGHTOR_STORAGE_SERIALIZE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace lightor::storage {

/// Little-endian binary encoder for record payloads.
class Encoder {
 public:
  void PutU8(uint8_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutDouble(double v);
  void PutString(std::string_view s);  ///< u32 length prefix + bytes

  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t> Release() { return std::move(bytes_); }

 private:
  std::vector<uint8_t> bytes_;
};

/// Matching decoder; every getter returns Corruption when the buffer is
/// exhausted.
class Decoder {
 public:
  explicit Decoder(const std::vector<uint8_t>& bytes)
      : data_(bytes.data()), size_(bytes.size()) {}
  Decoder(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  common::Result<uint8_t> GetU8();
  common::Result<uint32_t> GetU32();
  common::Result<uint64_t> GetU64();
  common::Result<double> GetDouble();
  common::Result<std::string> GetString();

  size_t remaining() const { return size_ - pos_; }
  bool exhausted() const { return pos_ >= size_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// CRC32 (IEEE 802.3 polynomial, table-driven).
uint32_t Crc32(const uint8_t* data, size_t size);

}  // namespace lightor::storage

#endif  // LIGHTOR_STORAGE_SERIALIZE_H_
