#ifndef LIGHTOR_STORAGE_WEB_SERVICE_H_
#define LIGHTOR_STORAGE_WEB_SERVICE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "core/lightor.h"
#include "sim/viewer.h"
#include "storage/crawler.h"
#include "storage/database.h"

namespace lightor::storage {

/// The browser-extension backend of Section VI-A, end to end:
///
///   page visit → extract video id → chat in DB? (crawl if not) →
///   Highlight Initializer → red dots rendered on the progress bar →
///   interaction logging → Highlight Extractor refinement → updated dots.
///
/// The service is deliberately synchronous and single-threaded — it
/// models the dataflow, not a production HTTP stack.
class WebService {
 public:
  /// None of the pointers are owned. `lightor` must already have a
  /// trained initializer.
  WebService(const sim::Platform* platform, Database* db,
             const core::Lightor* lightor, size_t top_k = 5);

  /// A user opened a recorded-video page: returns the video's current red
  /// dots, computing and persisting them on first visit (crawling the
  /// chat if needed).
  common::Result<std::vector<HighlightRecord>> OnPageVisit(
      const std::string& video_id);

  /// The frontend uploads one viewing session's interaction events.
  common::Status LogSession(const std::string& video_id,
                            const std::string& user, uint64_t session_id,
                            const std::vector<sim::InteractionEvent>& events);

  /// Runs one Highlight Extractor refinement pass over the interactions
  /// logged since the previous pass. Returns the number of dots updated.
  common::Result<int> Refine(const std::string& video_id);

  /// Current highlights of a video (NotFound before the first visit).
  common::Result<std::vector<HighlightRecord>> GetHighlights(
      const std::string& video_id) const;

  /// The `/metrics` endpoint: Prometheus text exposition of the global
  /// registry (page visits, cache hits, per-endpoint latency, ...).
  std::string MetricsPage() const;

 private:
  /// Rebuilds plays from the logged sessions newer than the video's
  /// refinement watermark and groups them by nearest red dot.
  std::unordered_map<int32_t, std::vector<core::Play>> PlaysByDot(
      const std::string& video_id,
      const std::vector<HighlightRecord>& dots) const;

  const sim::Platform* platform_;
  Database* db_;
  const core::Lightor* lightor_;
  Crawler crawler_;
  size_t top_k_;
  /// Per-video interaction-generation watermark consumed by Refine.
  std::unordered_map<std::string, uint64_t> refine_watermark_;
};

}  // namespace lightor::storage

#endif  // LIGHTOR_STORAGE_WEB_SERVICE_H_
