#include "storage/serialize.h"

#include <cstring>

namespace lightor::storage {

void Encoder::PutU8(uint8_t v) { bytes_.push_back(v); }

void Encoder::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    bytes_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void Encoder::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    bytes_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void Encoder::PutDouble(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void Encoder::PutString(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  bytes_.insert(bytes_.end(), s.begin(), s.end());
}

common::Result<uint8_t> Decoder::GetU8() {
  if (remaining() < 1) {
    return common::Status::Corruption("decoder: out of bytes (u8)");
  }
  return data_[pos_++];
}

common::Result<uint32_t> Decoder::GetU32() {
  if (remaining() < 4) {
    return common::Status::Corruption("decoder: out of bytes (u32)");
  }
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(data_[pos_ + static_cast<size_t>(i)])
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

common::Result<uint64_t> Decoder::GetU64() {
  if (remaining() < 8) {
    return common::Status::Corruption("decoder: out of bytes (u64)");
  }
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(data_[pos_ + static_cast<size_t>(i)])
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

common::Result<double> Decoder::GetDouble() {
  auto bits = GetU64();
  if (!bits.ok()) return bits.status();
  double v;
  const uint64_t b = bits.value();
  std::memcpy(&v, &b, sizeof(v));
  return v;
}

common::Result<std::string> Decoder::GetString() {
  auto len = GetU32();
  if (!len.ok()) return len.status();
  if (remaining() < len.value()) {
    return common::Status::Corruption("decoder: string length overruns");
  }
  std::string s(reinterpret_cast<const char*>(data_ + pos_), len.value());
  pos_ += len.value();
  return s;
}

namespace {

struct CrcTable {
  uint32_t entries[256];
  CrcTable() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
      }
      entries[i] = c;
    }
  }
};

const CrcTable& GetCrcTable() {
  static const CrcTable* table = new CrcTable();
  return *table;
}

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t size) {
  const CrcTable& table = GetCrcTable();
  uint32_t c = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    c = table.entries[(c ^ data[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace lightor::storage
