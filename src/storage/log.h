#ifndef LIGHTOR_STORAGE_LOG_H_
#define LIGHTOR_STORAGE_LOG_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/env.h"

namespace lightor::storage {

/// An append-only record log with per-record CRC framing:
///
///   [u32 payload length][u32 crc32(payload)][payload bytes]
///
/// Recovery tolerates a torn tail: replay stops at the first frame whose
/// length overruns the file or whose CRC mismatches, and `Recover`
/// truncates the file there (the RocksDB WAL recovery idiom).
///
/// ### Crash model
///
/// All I/O goes through a `storage::Env` (tests substitute a
/// fault-injecting one; see src/testing/fault_env.h), which defines three
/// durability tiers per byte: application buffer (lost on any crash),
/// kernel (survives a process crash), platter (survives power loss).
///
///   * Per-record flush mode (the default): every `Append` that returns
///     OK has reached the **kernel** — it survives a process crash but
///     NOT a power failure. `Flush()` here reaches the kernel, not the
///     platter.
///   * Batched mode (`set_flush_each_append(false)`): appended records sit
///     in the application buffer until `Flush()` / `Close()`; a crash
///     loses at most the records since the last `Flush()`.
///   * `set_sync_on_flush(true)` upgrades every flush point (including
///     per-record flushes) to `Sync()` — records then survive power loss
///     at the cost of an fsync per flush.
///
/// After any write, flush, or sync error the log is **wedged**: the file
/// may end in a torn frame, so appending more records would bury them
/// behind garbage that replay can never reach. Every subsequent operation
/// fails with IoError until the log is recovered and reopened — one
/// `OpenAndReplay()` call, as `Database::Open` does — which truncates the
/// torn tail.
class AppendLog {
 public:
  AppendLog() = default;
  ~AppendLog();

  AppendLog(const AppendLog&) = delete;
  AppendLog& operator=(const AppendLog&) = delete;

  /// Opens (creating if needed) the log at `path` for appending through
  /// `env` (null = `Env::Default()`). Clears a wedged state. Does NOT
  /// recover a torn tail — use `OpenAndReplay` on any log that may have
  /// seen a crash.
  common::Status Open(const std::string& path, Env* env = nullptr);

  /// What `OpenAndReplay` found on disk.
  struct ReplayStats {
    size_t records = 0;        ///< valid records replayed
    uint64_t torn_bytes = 0;   ///< torn/corrupt tail bytes truncated away
  };

  /// Recover + replay + open in one call: truncates the log at `path` to
  /// its longest valid prefix, replays every surviving record through
  /// `visitor` (null skips replay), then opens the log for appending.
  /// This replaces the historical `Recover()`-then-`Open()` dance, where
  /// every caller had to remember the truncation step or risk appending
  /// behind a torn frame that replay can never pass.
  common::Result<ReplayStats> OpenAndReplay(
      const std::string& path,
      const std::function<void(const std::vector<uint8_t>&)>& visitor,
      Env* env = nullptr);

  /// Appends one framed record. Flushes immediately in the default
  /// per-record mode; in batched mode (`set_flush_each_append(false)`)
  /// the record sits in the application buffer until `Flush()` or
  /// `Close()`.
  common::Status Append(const std::vector<uint8_t>& payload);

  /// Pushes buffered appends to the kernel — or to the platter when
  /// `sync_on_flush` is set. No-op when nothing is pending.
  common::Status Flush();

  /// Forces buffered appends all the way to the platter (fsync),
  /// regardless of `sync_on_flush`.
  common::Status Sync();

  /// Batched-flush toggle. Per-record flush (the default) bounds loss to
  /// zero records on process crash; batched mode trades that for one
  /// syscall per batch on write-heavy paths (the HTTP server's session
  /// logging) and bounds loss to the records since the last `Flush()` —
  /// recovery itself is unchanged, the torn tail just starts earlier.
  void set_flush_each_append(bool flush_each) { flush_each_ = flush_each; }
  bool flush_each_append() const { return flush_each_; }

  /// Opt-in fsync mode: every flush point also syncs, upgrading the
  /// durability guarantee from process-crash-safe to power-loss-safe.
  void set_sync_on_flush(bool sync) { sync_on_flush_ = sync; }
  bool sync_on_flush() const { return sync_on_flush_; }

  /// Closes the file (idempotent); flushes buffered appends first.
  void Close();

  bool is_open() const { return file_ != nullptr; }
  /// True after a write/flush/sync error: the log refuses further
  /// operations until reopened (see the crash-model note above).
  bool wedged() const { return wedged_; }
  const std::string& path() const { return path_; }

  /// Replays every valid record of the log at `path` (which may not
  /// exist — that is an empty log, OK). Stops silently at a corrupted or
  /// torn tail; `valid_bytes`, when non-null, receives the clean prefix
  /// length.
  static common::Status ReplayFile(
      const std::string& path,
      const std::function<void(const std::vector<uint8_t>&)>& visitor,
      size_t* valid_bytes = nullptr, Env* env = nullptr);

  /// Truncates the log at `path` to its longest valid prefix. Returns the
  /// number of records that survived. Prefer `OpenAndReplay`, which folds
  /// this into the open; `Recover` stays for tests that inspect recovery
  /// without opening.
  static common::Result<size_t> Recover(const std::string& path,
                                        Env* env = nullptr);

 private:
  common::Status Wedge(common::Status status);

  Env* env_ = nullptr;
  std::unique_ptr<WritableFile> file_;
  std::string path_;
  bool flush_each_ = true;
  bool sync_on_flush_ = false;
  bool wedged_ = false;
};

}  // namespace lightor::storage

#endif  // LIGHTOR_STORAGE_LOG_H_
