#ifndef LIGHTOR_STORAGE_LOG_H_
#define LIGHTOR_STORAGE_LOG_H_

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace lightor::storage {

/// An append-only record log with per-record CRC framing:
///
///   [u32 payload length][u32 crc32(payload)][payload bytes]
///
/// Recovery tolerates a torn tail: replay stops at the first frame whose
/// length overruns the file or whose CRC mismatches, and `Recover`
/// truncates the file there (the RocksDB WAL recovery idiom).
class AppendLog {
 public:
  AppendLog() = default;
  ~AppendLog();

  AppendLog(const AppendLog&) = delete;
  AppendLog& operator=(const AppendLog&) = delete;

  /// Opens (creating if needed) the log at `path` for appending.
  common::Status Open(const std::string& path);

  /// Appends one framed record. Flushes immediately in the default
  /// per-record mode; in batched mode (`set_flush_each_append(false)`)
  /// the record sits in the stdio buffer until `Flush()` or `Close()`.
  common::Status Append(const std::vector<uint8_t>& payload);

  /// Pushes buffered appends to the OS (no-op when nothing is pending).
  common::Status Flush();

  /// Batched-flush toggle. Per-record flush (the default) bounds loss to
  /// zero records on crash; batched mode trades that for one syscall per
  /// batch on write-heavy paths (the HTTP server's session logging) and
  /// bounds loss to the records since the last `Flush()` — recovery
  /// itself is unchanged, the torn tail just starts earlier.
  void set_flush_each_append(bool flush_each) { flush_each_ = flush_each; }
  bool flush_each_append() const { return flush_each_; }

  /// Closes the file (idempotent); flushes via fclose.
  void Close();

  bool is_open() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }

  /// Replays every valid record of the log at `path` (which may not
  /// exist — that is an empty log, OK). Stops silently at a corrupted or
  /// torn tail; `valid_bytes`, when non-null, receives the clean prefix
  /// length.
  static common::Status ReplayFile(
      const std::string& path,
      const std::function<void(const std::vector<uint8_t>&)>& visitor,
      size_t* valid_bytes = nullptr);

  /// Truncates the log at `path` to its longest valid prefix. Returns the
  /// number of records that survived.
  static common::Result<size_t> Recover(const std::string& path);

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  bool flush_each_ = true;
};

}  // namespace lightor::storage

#endif  // LIGHTOR_STORAGE_LOG_H_
