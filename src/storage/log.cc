#include "storage/log.h"

#include <cerrno>
#include <cstring>
#include <filesystem>

#include "storage/serialize.h"

namespace lightor::storage {

AppendLog::~AppendLog() { Close(); }

common::Status AppendLog::Open(const std::string& path) {
  Close();
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    return common::Status::IoError("open failed: " + path + ": " +
                                   std::strerror(errno));
  }
  path_ = path;
  return common::Status::OK();
}

common::Status AppendLog::Append(const std::vector<uint8_t>& payload) {
  if (file_ == nullptr) {
    return common::Status::FailedPrecondition("AppendLog: not open");
  }
  Encoder frame;
  frame.PutU32(static_cast<uint32_t>(payload.size()));
  frame.PutU32(Crc32(payload.data(), payload.size()));
  const auto& header = frame.bytes();
  if (std::fwrite(header.data(), 1, header.size(), file_) != header.size() ||
      (!payload.empty() &&
       std::fwrite(payload.data(), 1, payload.size(), file_) !=
           payload.size())) {
    return common::Status::IoError("write failed: " + path_);
  }
  if (flush_each_ && std::fflush(file_) != 0) {
    return common::Status::IoError("flush failed: " + path_);
  }
  return common::Status::OK();
}

common::Status AppendLog::Flush() {
  if (file_ == nullptr) {
    return common::Status::FailedPrecondition("AppendLog: not open");
  }
  if (std::fflush(file_) != 0) {
    return common::Status::IoError("flush failed: " + path_);
  }
  return common::Status::OK();
}

void AppendLog::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

common::Status AppendLog::ReplayFile(
    const std::string& path,
    const std::function<void(const std::vector<uint8_t>&)>& visitor,
    size_t* valid_bytes) {
  if (valid_bytes != nullptr) *valid_bytes = 0;
  if (!std::filesystem::exists(path)) return common::Status::OK();
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return common::Status::IoError("open failed: " + path + ": " +
                                   std::strerror(errno));
  }
  size_t offset = 0;
  while (true) {
    uint8_t header[8];
    const size_t got = std::fread(header, 1, sizeof(header), file);
    if (got < sizeof(header)) break;  // clean EOF or torn header
    Decoder dec(header, sizeof(header));
    const uint32_t length = dec.GetU32().value();
    const uint32_t crc = dec.GetU32().value();
    std::vector<uint8_t> payload(length);
    if (length > 0 &&
        std::fread(payload.data(), 1, length, file) != length) {
      break;  // torn payload
    }
    if (Crc32(payload.data(), payload.size()) != crc) break;  // corrupted
    visitor(payload);
    offset += sizeof(header) + length;
    if (valid_bytes != nullptr) *valid_bytes = offset;
  }
  std::fclose(file);
  return common::Status::OK();
}

common::Result<size_t> AppendLog::Recover(const std::string& path) {
  size_t records = 0;
  size_t valid_bytes = 0;
  const common::Status st = ReplayFile(
      path, [&](const std::vector<uint8_t>&) { ++records; }, &valid_bytes);
  if (!st.ok()) return st;
  if (std::filesystem::exists(path) &&
      std::filesystem::file_size(path) > valid_bytes) {
    std::filesystem::resize_file(path, valid_bytes);
  }
  return records;
}

}  // namespace lightor::storage
