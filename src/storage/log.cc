#include "storage/log.h"

#include <optional>
#include <utility>

#include "obs/trace.h"
#include "obs/trace_context.h"
#include "storage/serialize.h"

namespace lightor::storage {

namespace {

Env* OrDefault(Env* env) { return env != nullptr ? env : Env::Default(); }

/// Reads exactly `size` bytes unless EOF lands first; returns the number
/// of bytes actually read (the Env retries EINTR and short reads below
/// this level, so a shortfall here is a genuine torn tail).
common::Result<size_t> ReadFully(SequentialFile& file, uint8_t* buf,
                                 size_t size) {
  size_t total = 0;
  while (total < size) {
    auto got = file.Read(buf + total, size - total);
    if (!got.ok()) return got.status();
    if (got.value() == 0) break;  // EOF
    total += got.value();
  }
  return total;
}

}  // namespace

AppendLog::~AppendLog() { Close(); }

common::Status AppendLog::Wedge(common::Status status) {
  wedged_ = true;
  if (file_ != nullptr) {
    // The buffered tail belongs to the record that just failed. Flushing
    // it later (Close on reopen, or the destructor) would land it after
    // the point recovery truncates to, burying every subsequent record
    // behind a torn frame replay can never pass. Drop it instead.
    file_->DiscardBuffered();
  }
  return status;
}

common::Status AppendLog::Open(const std::string& path, Env* env) {
  Close();
  env_ = OrDefault(env);
  auto file = env_->NewAppendableFile(path);
  if (!file.ok()) return file.status();
  file_ = std::move(file).value();
  path_ = path;
  wedged_ = false;
  return common::Status::OK();
}

common::Result<AppendLog::ReplayStats> AppendLog::OpenAndReplay(
    const std::string& path,
    const std::function<void(const std::vector<uint8_t>&)>& visitor,
    Env* env) {
  Env* e = OrDefault(env);
  ReplayStats stats;
  size_t valid_bytes = 0;
  LIGHTOR_RETURN_IF_ERROR(ReplayFile(
      path,
      [&](const std::vector<uint8_t>& payload) {
        ++stats.records;
        if (visitor) visitor(payload);
      },
      &valid_bytes, e));
  if (e->FileExists(path)) {
    auto size = e->GetFileSize(path);
    if (!size.ok()) return size.status();
    if (size.value() > valid_bytes) {
      stats.torn_bytes = size.value() - valid_bytes;
      LIGHTOR_RETURN_IF_ERROR(e->TruncateFile(path, valid_bytes));
    }
  }
  LIGHTOR_RETURN_IF_ERROR(Open(path, e));
  return stats;
}

common::Status AppendLog::Append(const std::vector<uint8_t>& payload) {
  if (file_ == nullptr) {
    return common::Status::FailedPrecondition("AppendLog: not open");
  }
  if (wedged_) {
    return common::Status::IoError(
        "AppendLog: wedged by an earlier I/O error, reopen to recover: " +
        path_);
  }
  Encoder frame;
  frame.PutU32(static_cast<uint32_t>(payload.size()));
  frame.PutU32(Crc32(payload.data(), payload.size()));
  if (auto st = file_->Append(frame.bytes()); !st.ok()) {
    return Wedge(std::move(st));
  }
  if (!payload.empty()) {
    if (auto st = file_->Append(payload); !st.ok()) {
      return Wedge(std::move(st));
    }
  }
  if (flush_each_) return Flush();
  return common::Status::OK();
}

common::Status AppendLog::Flush() {
  if (file_ == nullptr) {
    return common::Status::FailedPrecondition("AppendLog: not open");
  }
  if (wedged_) {
    return common::Status::IoError(
        "AppendLog: wedged by an earlier I/O error, reopen to recover: " +
        path_);
  }
  // Span only when a request trace is active: every append can flush
  // (flush_each_), and untraced flushes would churn the global ring.
  std::optional<obs::ScopedSpan> span;
  if (obs::CurrentTraceContext().valid()) {
    span.emplace("storage.AppendLog.Flush");
  }
  if (auto st = sync_on_flush_ ? file_->Sync() : file_->Flush(); !st.ok()) {
    return Wedge(std::move(st));
  }
  return common::Status::OK();
}

common::Status AppendLog::Sync() {
  if (file_ == nullptr) {
    return common::Status::FailedPrecondition("AppendLog: not open");
  }
  if (wedged_) {
    return common::Status::IoError(
        "AppendLog: wedged by an earlier I/O error, reopen to recover: " +
        path_);
  }
  std::optional<obs::ScopedSpan> span;
  if (obs::CurrentTraceContext().valid()) {
    span.emplace("storage.AppendLog.Sync");
  }
  if (auto st = file_->Sync(); !st.ok()) return Wedge(std::move(st));
  return common::Status::OK();
}

void AppendLog::Close() {
  if (file_ != nullptr) {
    (void)file_->Close();  // a close error leaves a torn tail; recovery
                           // on the next open truncates it
    file_.reset();
  }
}

common::Status AppendLog::ReplayFile(
    const std::string& path,
    const std::function<void(const std::vector<uint8_t>&)>& visitor,
    size_t* valid_bytes, Env* env) {
  if (valid_bytes != nullptr) *valid_bytes = 0;
  Env* e = OrDefault(env);
  if (!e->FileExists(path)) return common::Status::OK();
  auto opened = e->NewSequentialFile(path);
  if (!opened.ok()) return opened.status();
  SequentialFile& file = *opened.value();
  size_t offset = 0;
  while (true) {
    uint8_t header[8];
    auto got = ReadFully(file, header, sizeof(header));
    if (!got.ok()) return got.status();
    if (got.value() < sizeof(header)) break;  // clean EOF or torn header
    Decoder dec(header, sizeof(header));
    const uint32_t length = dec.GetU32().value();
    const uint32_t crc = dec.GetU32().value();
    std::vector<uint8_t> payload(length);
    if (length > 0) {
      auto body = ReadFully(file, payload.data(), length);
      if (!body.ok()) return body.status();
      if (body.value() != length) break;  // torn payload
    }
    if (Crc32(payload.data(), payload.size()) != crc) break;  // corrupted
    visitor(payload);
    offset += sizeof(header) + length;
    if (valid_bytes != nullptr) *valid_bytes = offset;
  }
  return common::Status::OK();
}

common::Result<size_t> AppendLog::Recover(const std::string& path, Env* env) {
  Env* e = OrDefault(env);
  size_t records = 0;
  size_t valid_bytes = 0;
  const common::Status st = ReplayFile(
      path, [&](const std::vector<uint8_t>&) { ++records; }, &valid_bytes, e);
  if (!st.ok()) return st;
  if (e->FileExists(path)) {
    auto size = e->GetFileSize(path);
    if (!size.ok()) return size.status();
    if (size.value() > valid_bytes) {
      LIGHTOR_RETURN_IF_ERROR(e->TruncateFile(path, valid_bytes));
    }
  }
  return records;
}

}  // namespace lightor::storage
