#include "storage/record.h"

#include "storage/serialize.h"

namespace lightor::storage {

std::vector<uint8_t> ChatRecord::Encode() const {
  Encoder enc;
  enc.PutString(video_id);
  enc.PutDouble(timestamp);
  enc.PutString(user);
  enc.PutString(text);
  return enc.Release();
}

common::Result<ChatRecord> ChatRecord::Decode(
    const std::vector<uint8_t>& bytes) {
  Decoder dec(bytes);
  ChatRecord rec;
  LIGHTOR_ASSIGN_OR_RETURN(rec.video_id, dec.GetString());
  LIGHTOR_ASSIGN_OR_RETURN(rec.timestamp, dec.GetDouble());
  LIGHTOR_ASSIGN_OR_RETURN(rec.user, dec.GetString());
  LIGHTOR_ASSIGN_OR_RETURN(rec.text, dec.GetString());
  return rec;
}

std::vector<uint8_t> InteractionRecord::Encode() const {
  Encoder enc;
  enc.PutString(video_id);
  enc.PutString(user);
  enc.PutU64(session_id);
  enc.PutU8(static_cast<uint8_t>(event));
  enc.PutDouble(wall_time);
  enc.PutDouble(position);
  enc.PutDouble(target);
  return enc.Release();
}

common::Result<InteractionRecord> InteractionRecord::Decode(
    const std::vector<uint8_t>& bytes) {
  Decoder dec(bytes);
  InteractionRecord rec;
  LIGHTOR_ASSIGN_OR_RETURN(rec.video_id, dec.GetString());
  LIGHTOR_ASSIGN_OR_RETURN(rec.user, dec.GetString());
  LIGHTOR_ASSIGN_OR_RETURN(rec.session_id, dec.GetU64());
  uint8_t event_raw = 0;
  LIGHTOR_ASSIGN_OR_RETURN(event_raw, dec.GetU8());
  if (event_raw > static_cast<uint8_t>(StoredInteraction::kSeekBackward)) {
    return common::Status::Corruption("InteractionRecord: bad event type");
  }
  rec.event = static_cast<StoredInteraction>(event_raw);
  LIGHTOR_ASSIGN_OR_RETURN(rec.wall_time, dec.GetDouble());
  LIGHTOR_ASSIGN_OR_RETURN(rec.position, dec.GetDouble());
  LIGHTOR_ASSIGN_OR_RETURN(rec.target, dec.GetDouble());
  return rec;
}

std::vector<uint8_t> HighlightRecord::Encode() const {
  Encoder enc;
  enc.PutString(video_id);
  enc.PutU32(static_cast<uint32_t>(dot_index));
  enc.PutDouble(dot_position);
  enc.PutDouble(start);
  enc.PutDouble(end);
  enc.PutDouble(score);
  enc.PutU32(static_cast<uint32_t>(iteration));
  enc.PutU8(converged ? 1 : 0);
  return enc.Release();
}

common::Result<HighlightRecord> HighlightRecord::Decode(
    const std::vector<uint8_t>& bytes) {
  Decoder dec(bytes);
  HighlightRecord rec;
  LIGHTOR_ASSIGN_OR_RETURN(rec.video_id, dec.GetString());
  uint32_t dot_index = 0;
  LIGHTOR_ASSIGN_OR_RETURN(dot_index, dec.GetU32());
  rec.dot_index = static_cast<int32_t>(dot_index);
  LIGHTOR_ASSIGN_OR_RETURN(rec.dot_position, dec.GetDouble());
  LIGHTOR_ASSIGN_OR_RETURN(rec.start, dec.GetDouble());
  LIGHTOR_ASSIGN_OR_RETURN(rec.end, dec.GetDouble());
  LIGHTOR_ASSIGN_OR_RETURN(rec.score, dec.GetDouble());
  uint32_t iteration = 0;
  LIGHTOR_ASSIGN_OR_RETURN(iteration, dec.GetU32());
  rec.iteration = static_cast<int32_t>(iteration);
  uint8_t converged = 0;
  LIGHTOR_ASSIGN_OR_RETURN(converged, dec.GetU8());
  rec.converged = converged != 0;
  return rec;
}

}  // namespace lightor::storage
