#include "storage/checkpoint.h"

#include <chrono>
#include <optional>
#include <set>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_context.h"
#include "storage/database.h"
#include "storage/log.h"
#include "storage/serialize.h"

namespace lightor::storage {

namespace {

constexpr uint32_t kManifestMagic = 0x4C544D46;    // "LTMF"
constexpr uint32_t kCheckpointMagic = 0x4C54434B;  // "LTCK"

obs::Counter& CheckpointRunsCounter() {
  static obs::Counter* const counter = obs::Registry::Global().GetCounter(
      "lightor_storage_checkpoint_runs_total");
  return *counter;
}

obs::Counter& CheckpointErrorsCounter() {
  static obs::Counter* const counter = obs::Registry::Global().GetCounter(
      "lightor_storage_checkpoint_errors_total");
  return *counter;
}

obs::Counter& CheckpointTruncatedBytesCounter() {
  static obs::Counter* const counter = obs::Registry::Global().GetCounter(
      "lightor_storage_checkpoint_truncated_bytes_total");
  return *counter;
}

obs::Histogram& CheckpointSecondsHistogram() {
  static obs::Histogram* const histogram =
      obs::Registry::Global().GetHistogram(
          "lightor_storage_checkpoint_seconds",
          obs::Histogram::LatencyBounds());
  return *histogram;
}

obs::Gauge& CheckpointLsnGauge() {
  static obs::Gauge* const gauge =
      obs::Registry::Global().GetGauge("lightor_storage_checkpoint_lsn");
  return *gauge;
}

common::Status RemoveIfExists(Env* env, const std::string& path) {
  if (!env->FileExists(path)) return common::Status::OK();
  return env->RemoveFile(path);
}

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

std::string ManifestPath(const std::string& directory) {
  return directory + "/MANIFEST";
}

std::string CheckpointFilePath(const std::string& directory, uint64_t gen) {
  return directory + "/ckpt." + std::to_string(gen);
}

std::string LogFilePath(const std::string& directory, const std::string& base,
                        uint64_t gen) {
  if (gen == 0) return directory + "/" + base + ".log";
  return directory + "/" + base + "." + std::to_string(gen) + ".log";
}

common::Status WriteManifest(Env* env, const std::string& directory,
                             const Manifest& manifest) {
  const std::string path = ManifestPath(directory);
  const std::string tmp = path + ".tmp";
  // A leftover temp from a torn earlier attempt would be appended to
  // (logs open O_APPEND), so clear it first.
  LIGHTOR_RETURN_IF_ERROR(RemoveIfExists(env, tmp));
  {
    AppendLog log;
    LIGHTOR_RETURN_IF_ERROR(log.Open(tmp, env));
    Encoder enc;
    enc.PutU32(kManifestMagic);
    enc.PutU32(Manifest::kFormatVersion);
    enc.PutU64(manifest.log_gen);
    enc.PutU64(manifest.checkpoint_gen);
    enc.PutU64(manifest.checkpoint_lsn);
    LIGHTOR_RETURN_IF_ERROR(log.Append(enc.Release()));
    // The temp must be on the platter before the rename publishes it:
    // otherwise power loss could leave the manifest name pointing at
    // unsynced bytes.
    LIGHTOR_RETURN_IF_ERROR(log.Sync());
  }
  return env->RenameFile(tmp, path);
}

common::Result<std::optional<Manifest>> ReadManifest(
    Env* env, const std::string& directory) {
  const std::string path = ManifestPath(directory);
  if (!env->FileExists(path)) return std::optional<Manifest>();
  std::vector<std::vector<uint8_t>> payloads;
  size_t valid_bytes = 0;
  LIGHTOR_RETURN_IF_ERROR(AppendLog::ReplayFile(
      path,
      [&](const std::vector<uint8_t>& payload) { payloads.push_back(payload); },
      &valid_bytes, env));
  LIGHTOR_ASSIGN_OR_RETURN(const uint64_t size, env->GetFileSize(path));
  if (payloads.size() != 1 || size != valid_bytes) {
    return common::Status::Corruption("torn MANIFEST: " + path);
  }
  Decoder dec(payloads[0]);
  LIGHTOR_ASSIGN_OR_RETURN(const uint32_t magic, dec.GetU32());
  if (magic != kManifestMagic) {
    return common::Status::Corruption("bad MANIFEST magic: " + path);
  }
  LIGHTOR_ASSIGN_OR_RETURN(const uint32_t version, dec.GetU32());
  if (version != Manifest::kFormatVersion) {
    return common::Status::NotSupported(
        "MANIFEST format version " + std::to_string(version) +
        " (this build reads " + std::to_string(Manifest::kFormatVersion) +
        "): " + path);
  }
  Manifest manifest;
  LIGHTOR_ASSIGN_OR_RETURN(manifest.log_gen, dec.GetU64());
  LIGHTOR_ASSIGN_OR_RETURN(manifest.checkpoint_gen, dec.GetU64());
  LIGHTOR_ASSIGN_OR_RETURN(manifest.checkpoint_lsn, dec.GetU64());
  return std::optional<Manifest>(manifest);
}

common::Result<CheckpointStats> WriteCheckpointImage(
    Env* env, const std::string& path, const ChatStore& chat,
    const InteractionStore& interactions, const HighlightStore& highlights,
    uint64_t lsn, const CheckpointPolicy& policy) {
  // Videos with at least one refined dot: their interactions have
  // already fed refinement and (per the serving watermark contract) can
  // never be consumed again, so the policy may drop them.
  std::set<std::string> consumed;
  const std::vector<HighlightRecord> latest = highlights.AllLatest();
  if (policy.drop_consumed_interactions) {
    for (const auto& rec : latest) {
      if (rec.iteration > 0) consumed.insert(rec.video_id);
    }
  }
  size_t kept_interactions = 0;
  interactions.ForEach([&](const InteractionRecord& rec, uint64_t) {
    if (consumed.count(rec.video_id) == 0) ++kept_interactions;
  });

  LIGHTOR_RETURN_IF_ERROR(RemoveIfExists(env, path));
  AppendLog image;
  LIGHTOR_RETURN_IF_ERROR(image.Open(path, env));
  // One buffered stream with a single fsync at the end, not a flush per
  // record: the image is only published (renamed + manifest swap) after
  // the Sync below succeeds, so partial progress needs no durability.
  image.set_flush_each_append(false);

  Encoder header;
  header.PutU32(kCheckpointMagic);
  header.PutU32(Manifest::kFormatVersion);
  header.PutU64(lsn);
  header.PutU64(interactions.current_generation());
  header.PutU64(chat.TotalRecords());
  header.PutU64(kept_interactions);
  header.PutU64(latest.size());
  LIGHTOR_RETURN_IF_ERROR(image.Append(header.Release()));

  common::Status append_status = common::Status::OK();
  chat.ForEach([&](const ChatRecord& rec) {
    if (!append_status.ok()) return;
    append_status = image.Append(rec.Encode());
  });
  LIGHTOR_RETURN_IF_ERROR(append_status);
  interactions.ForEach([&](const InteractionRecord& rec, uint64_t generation) {
    if (!append_status.ok() || consumed.count(rec.video_id) != 0) return;
    Encoder enc;
    enc.PutU64(generation);
    const std::vector<uint8_t> bytes = rec.Encode();
    enc.PutString(std::string_view(reinterpret_cast<const char*>(bytes.data()),
                                   bytes.size()));
    append_status = image.Append(enc.Release());
  });
  LIGHTOR_RETURN_IF_ERROR(append_status);
  for (const auto& rec : latest) {
    LIGHTOR_RETURN_IF_ERROR(image.Append(rec.Encode()));
  }
  LIGHTOR_RETURN_IF_ERROR(image.Sync());
  image.Close();

  CheckpointStats stats;
  stats.lsn = lsn;
  stats.records_written = chat.TotalRecords() + kept_interactions +
                          latest.size();
  stats.checkpoint_bytes = env->GetFileSize(path).value_or(0);
  return stats;
}

common::Result<CheckpointImageStats> LoadCheckpointImage(
    Env* env, const std::string& path, ChatStore& chat,
    InteractionStore& interactions, HighlightStore& highlights) {
  if (!env->FileExists(path)) {
    return common::Status::Corruption(
        "MANIFEST names a checkpoint that does not exist: " + path);
  }
  struct Header {
    bool seen = false;
    uint64_t lsn = 0;
    uint64_t generation = 0;
    uint64_t n_chat = 0;
    uint64_t n_interactions = 0;
    uint64_t n_highlights = 0;
  } header;
  common::Status decode_status = common::Status::OK();
  size_t data_records = 0;
  size_t valid_bytes = 0;
  LIGHTOR_RETURN_IF_ERROR(AppendLog::ReplayFile(
      path,
      [&](const std::vector<uint8_t>& payload) {
        if (!decode_status.ok()) return;
        Decoder dec(payload);
        if (!header.seen) {
          auto magic = dec.GetU32();
          if (!magic.ok() || magic.value() != kCheckpointMagic) {
            decode_status =
                common::Status::Corruption("bad checkpoint magic: " + path);
            return;
          }
          auto version = dec.GetU32();
          if (!version.ok() || version.value() != Manifest::kFormatVersion) {
            decode_status = common::Status::NotSupported(
                "unreadable checkpoint format version: " + path);
            return;
          }
          auto read = [&](uint64_t& out) {
            auto v = dec.GetU64();
            if (v.ok()) out = v.value();
            else if (decode_status.ok()) decode_status = v.status();
          };
          read(header.lsn);
          read(header.generation);
          read(header.n_chat);
          read(header.n_interactions);
          read(header.n_highlights);
          header.seen = true;
          return;
        }
        const size_t index = data_records++;
        if (index < header.n_chat) {
          auto rec = ChatRecord::Decode(payload);
          if (rec.ok()) chat.Put(std::move(rec).value());
          else decode_status = rec.status();
        } else if (index < header.n_chat + header.n_interactions) {
          uint64_t generation = 0;
          auto gen = dec.GetU64();
          if (gen.ok()) generation = gen.value();
          auto bytes = dec.GetString();
          if (!gen.ok() || !bytes.ok()) {
            decode_status = gen.ok() ? bytes.status() : gen.status();
            return;
          }
          const std::string& s = bytes.value();
          auto rec = InteractionRecord::Decode(
              std::vector<uint8_t>(s.begin(), s.end()));
          if (rec.ok()) {
            interactions.RestoreEntry(std::move(rec).value(), generation);
          } else {
            decode_status = rec.status();
          }
        } else if (index <
                   header.n_chat + header.n_interactions + header.n_highlights) {
          auto rec = HighlightRecord::Decode(payload);
          if (rec.ok()) highlights.Put(std::move(rec).value());
          else decode_status = rec.status();
        } else {
          decode_status = common::Status::Corruption(
              "checkpoint has more records than its header counts: " + path);
        }
      },
      &valid_bytes, env));
  LIGHTOR_RETURN_IF_ERROR(decode_status);
  LIGHTOR_ASSIGN_OR_RETURN(const uint64_t size, env->GetFileSize(path));
  const uint64_t expected =
      header.n_chat + header.n_interactions + header.n_highlights;
  if (!header.seen || data_records != expected || size != valid_bytes) {
    // The image was fsynced before the manifest swap published it, so a
    // short or trailing-garbage image is damage, not a normal torn tail.
    return common::Status::Corruption("torn checkpoint image: " + path);
  }
  interactions.AdvanceGeneration(header.generation);
  CheckpointImageStats stats;
  stats.lsn = header.lsn;
  stats.records = data_records;
  return stats;
}

common::Result<CheckpointStats> Checkpointer::Run(
    const CheckpointPolicy& policy) {
  const auto t0 = std::chrono::steady_clock::now();
  Database& db = *db_;
  Env* env = db.env_;
  const std::string& dir = db.directory_;

  // Stage + span only when a request trace is active (the background
  // trigger would otherwise churn the global span ring).
  std::optional<obs::ScopedStage> stage;
  std::optional<obs::ScopedSpan> span;
  if (obs::CurrentTraceContext().valid()) {
    stage.emplace(obs::Stage::kCheckpoint);
    span.emplace("storage.Checkpointer.Run");
  }

  const uint64_t old_gen = db.log_gen_;
  const uint64_t new_gen = old_gen + 1;
  const std::string ckpt_path = CheckpointFilePath(dir, new_gen);
  const std::string tmp_path = ckpt_path + ".tmp";
  auto fail = [](common::Status status) {
    CheckpointErrorsCounter().Increment();
    return status;
  };

  // 1. Write the image to a temp file and fsync it. Failure here leaves
  //    the database fully untouched.
  auto written = WriteCheckpointImage(env, tmp_path, db.chat_,
                                      db.interactions_, db.highlights_,
                                      db.lsn_, policy);
  if (!written.ok()) {
    (void)RemoveIfExists(env, tmp_path);
    return fail(written.status());
  }
  // 2. Give the image its durable name. Still uncommitted: nothing
  //    references ckpt.<g+1> until the manifest swap.
  if (auto st = env->RenameFile(tmp_path, ckpt_path); !st.ok()) {
    return fail(std::move(st));
  }

  // Old-generation log sizes, for the bytes-reclaimed accounting.
  uint64_t old_log_bytes = 0;
  for (const std::string* path :
       {&db.chat_path_, &db.interaction_path_, &db.highlight_path_}) {
    old_log_bytes += env->GetFileSize(*path).value_or(0);
  }

  // 3. THE commit point: atomically swap the manifest. Before this,
  //    recovery loads the old state; after it, the new checkpoint plus
  //    (still absent = empty) generation-g+1 logs.
  Manifest manifest;
  manifest.log_gen = new_gen;
  manifest.checkpoint_gen = new_gen;
  manifest.checkpoint_lsn = db.lsn_;
  if (auto st = WriteManifest(env, dir, manifest); !st.ok()) {
    return fail(std::move(st));
  }

  // 4. Start fresh logs for the new generation. Flush/sync modes live on
  //    the AppendLog and survive the reopen. An open failure here leaves
  //    the logs closed (writes fail loudly) but the directory committed
  //    and consistent: the next Open recovers cleanly.
  const std::string old_chat = db.chat_path_;
  const std::string old_interaction = db.interaction_path_;
  const std::string old_highlight = db.highlight_path_;
  db.chat_path_ = LogFilePath(dir, "chat", new_gen);
  db.interaction_path_ = LogFilePath(dir, "interactions", new_gen);
  db.highlight_path_ = LogFilePath(dir, "highlights", new_gen);
  db.log_gen_ = new_gen;
  db.chat_log_.Close();
  db.interaction_log_.Close();
  db.highlight_log_.Close();
  if (auto st = db.chat_log_.Open(db.chat_path_, env); !st.ok()) {
    return fail(std::move(st));
  }
  if (auto st = db.interaction_log_.Open(db.interaction_path_, env);
      !st.ok()) {
    return fail(std::move(st));
  }
  if (auto st = db.highlight_log_.Open(db.highlight_path_, env); !st.ok()) {
    return fail(std::move(st));
  }
  // The checkpoint collapsed highlight history to latest-per-dot; mirror
  // that in memory so stats and history reads agree with a restart.
  db.highlights_.ResetFrom(db.highlights_.AllLatest());

  // 5. Best-effort cleanup of the superseded generation; anything left
  //    behind (e.g. a crash between these removes) is swept by the next
  //    Open.
  (void)RemoveIfExists(env, old_chat);
  (void)RemoveIfExists(env, old_interaction);
  (void)RemoveIfExists(env, old_highlight);
  if (old_gen > 0) {
    (void)RemoveIfExists(env, CheckpointFilePath(dir, old_gen));
  }

  CheckpointStats stats = std::move(written).value();
  stats.gen = new_gen;
  stats.log_bytes_truncated = old_log_bytes;
  stats.wall_seconds = SecondsSince(t0);
  CheckpointRunsCounter().Increment();
  CheckpointTruncatedBytesCounter().Increment(old_log_bytes);
  CheckpointSecondsHistogram().Observe(stats.wall_seconds);
  CheckpointLsnGauge().Set(static_cast<double>(stats.lsn));
  return stats;
}

}  // namespace lightor::storage
