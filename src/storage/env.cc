#include "storage/env.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <filesystem>

namespace lightor::storage {

namespace {

/// Buffered POSIX writable file. The application buffer makes the
/// Append/Flush distinction real (matching the crash model documented in
/// env.h): bytes sit here until `Flush`, exactly like the stdio buffer the
/// log historically used, so batched-flush mode keeps its one-syscall-per-
/// batch behaviour.
class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {
    buffer_.reserve(kBufferSize);
  }

  ~PosixWritableFile() override { (void)Close(); }

  common::Status Append(const uint8_t* data, size_t size) override {
    while (size > 0) {
      const size_t room = kBufferSize - buffer_.size();
      const size_t take = size < room ? size : room;
      buffer_.insert(buffer_.end(), data, data + take);
      data += take;
      size -= take;
      if (buffer_.size() == kBufferSize) {
        LIGHTOR_RETURN_IF_ERROR(Flush());
      }
    }
    return common::Status::OK();
  }

  common::Status Flush() override {
    if (fd_ < 0) {
      return common::Status::FailedPrecondition("write to closed file: " +
                                                path_);
    }
    size_t done = 0;
    while (done < buffer_.size()) {
      const ssize_t written =
          ::write(fd_, buffer_.data() + done, buffer_.size() - done);
      if (written < 0) {
        if (errno == EINTR) continue;  // interrupted: retry
        // Drop the prefix that did land, so a retry cannot write it twice.
        buffer_.erase(buffer_.begin(),
                      buffer_.begin() + static_cast<ptrdiff_t>(done));
        return common::ErrnoToStatus(errno, "write " + path_);
      }
      // Short writes just advance and loop.
      done += static_cast<size_t>(written);
    }
    buffer_.clear();
    return common::Status::OK();
  }

  common::Status Sync() override {
    LIGHTOR_RETURN_IF_ERROR(Flush());
    if (::fsync(fd_) != 0) {
      return common::ErrnoToStatus(errno, "fsync " + path_);
    }
    return common::Status::OK();
  }

  common::Status Close() override {
    if (fd_ < 0) return common::Status::OK();
    common::Status status = Flush();
    if (::close(fd_) != 0 && status.ok()) {
      status = common::ErrnoToStatus(errno, "close " + path_);
    }
    fd_ = -1;
    return status;
  }

  void DiscardBuffered() override { buffer_.clear(); }

 private:
  static constexpr size_t kBufferSize = 64 * 1024;

  int fd_;
  std::string path_;
  std::vector<uint8_t> buffer_;
};

class PosixSequentialFile final : public SequentialFile {
 public:
  PosixSequentialFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  ~PosixSequentialFile() override { ::close(fd_); }

  common::Result<size_t> Read(uint8_t* buf, size_t size) override {
    while (true) {
      const ssize_t got = ::read(fd_, buf, size);
      if (got < 0) {
        if (errno == EINTR) continue;
        return common::ErrnoToStatus(errno, "read " + path_);
      }
      return static_cast<size_t>(got);
    }
  }

 private:
  int fd_;
  std::string path_;
};

class PosixEnv final : public Env {
 public:
  common::Result<std::unique_ptr<WritableFile>> NewAppendableFile(
      const std::string& path) override {
    const int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
    if (fd < 0) return common::ErrnoToStatus(errno, "open " + path);
    return std::unique_ptr<WritableFile>(new PosixWritableFile(fd, path));
  }

  common::Result<std::unique_ptr<SequentialFile>> NewSequentialFile(
      const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return common::ErrnoToStatus(errno, "open " + path);
    return std::unique_ptr<SequentialFile>(new PosixSequentialFile(fd, path));
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  common::Result<uint64_t> GetFileSize(const std::string& path) override {
    struct ::stat st;
    if (::stat(path.c_str(), &st) != 0) {
      return common::ErrnoToStatus(errno, "stat " + path);
    }
    return static_cast<uint64_t>(st.st_size);
  }

  common::Status TruncateFile(const std::string& path,
                              uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return common::ErrnoToStatus(errno, "truncate " + path);
    }
    return common::Status::OK();
  }

  common::Status RenameFile(const std::string& from,
                            const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return common::ErrnoToStatus(errno, "rename " + from + " -> " + to);
    }
    return common::Status::OK();
  }

  common::Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) {
      return common::ErrnoToStatus(errno, "unlink " + path);
    }
    return common::Status::OK();
  }

  common::Status CreateDirs(const std::string& path) override {
    std::error_code ec;
    std::filesystem::create_directories(path, ec);
    if (ec) {
      return common::Status::IoError("create_directories failed: " + path +
                                     ": " + ec.message());
    }
    return common::Status::OK();
  }

  common::Result<std::vector<std::string>> ListDir(
      const std::string& path) override {
    std::vector<std::string> names;
    std::error_code ec;
    std::filesystem::directory_iterator it(path, ec);
    if (ec) {
      if (ec == std::errc::no_such_file_or_directory) return names;
      return common::Status::IoError("list " + path + ": " + ec.message());
    }
    for (const auto& entry : it) {
      if (entry.is_regular_file(ec)) {
        names.push_back(entry.path().filename().string());
      }
    }
    return names;
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv* const env = new PosixEnv();
  return env;
}

}  // namespace lightor::storage
