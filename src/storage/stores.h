#ifndef LIGHTOR_STORAGE_STORES_H_
#define LIGHTOR_STORAGE_STORES_H_

#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/record.h"

namespace lightor::storage {

/// In-memory chat index: per-video message lists kept sorted by timestamp
/// (lazily — appends mark the video dirty, reads sort on demand).
class ChatStore {
 public:
  void Put(ChatRecord record);

  bool HasVideo(const std::string& video_id) const;

  /// All messages of a video, sorted by timestamp.
  const std::vector<ChatRecord>& GetByVideo(const std::string& video_id);

  /// Messages with timestamp in [t0, t1).
  std::vector<ChatRecord> GetRange(const std::string& video_id, double t0,
                                   double t1);

  size_t TotalRecords() const { return total_; }
  std::vector<std::string> VideoIds() const;

  /// Visits every record grouped by video id (ids sorted, records in
  /// stored order) — the deterministic iteration checkpoint encoding
  /// needs. Stored order is arrival order until a read sorts the video;
  /// either way `GetByVideo` yields the same stable-sorted result after a
  /// round trip.
  void ForEach(const std::function<void(const ChatRecord&)>& fn) const;

 private:
  void EnsureSorted(const std::string& video_id);

  std::unordered_map<std::string, std::vector<ChatRecord>> by_video_;
  std::unordered_map<std::string, bool> dirty_;
  size_t total_ = 0;
  static const std::vector<ChatRecord> kEmpty;
};

/// In-memory interaction index: per-video, per-session event streams.
class InteractionStore {
 public:
  void Put(InteractionRecord record);

  /// All interactions of a video grouped by session id, each stream
  /// sorted by wall time.
  std::map<uint64_t, std::vector<InteractionRecord>> SessionsForVideo(
      const std::string& video_id) const;

  /// All interactions of a video logged at or after `min_generation`
  /// marker (generations let the web service consume only fresh data on
  /// each refinement pass). Generations are assigned on Put in arrival
  /// order.
  std::map<uint64_t, std::vector<InteractionRecord>> SessionsSince(
      const std::string& video_id, uint64_t min_generation) const;

  /// Whether any event of `session_id` has been logged for `video_id`.
  /// O(1): backed by a per-video session-id event-count index maintained
  /// by `Put` and `RestoreEntry` (so it survives checkpoint recovery).
  /// The cluster router retries `/session` after an ack-lost crash; this
  /// is the dedup that makes that retry exactly-once.
  bool HasSession(const std::string& video_id, uint64_t session_id) const;

  /// Events logged so far for (`video_id`, `session_id`); 0 when unseen.
  /// A crash can persist a strict prefix of a session's events (they are
  /// separate log records), so dedup must be per *event*, not per
  /// session: the serving layer compares this count against the retried
  /// request and appends only the missing suffix.
  size_t SessionEventCount(const std::string& video_id,
                           uint64_t session_id) const;

  uint64_t current_generation() const { return generation_; }
  size_t TotalRecords() const { return total_; }

  /// Visits every entry with its generation, grouped by video id (ids
  /// sorted, entries in arrival order) — deterministic iteration for
  /// checkpoint encoding.
  void ForEach(const std::function<void(const InteractionRecord&,
                                        uint64_t generation)>& fn) const;

  /// Checkpoint load: inserts an entry keeping its original generation
  /// (so `SessionsSince` watermarks survive a restart) and advances the
  /// generation counter to at least `generation`. New `Put`s then
  /// continue numbering after the restored high-water mark.
  void RestoreEntry(InteractionRecord record, uint64_t generation);

  /// Raises the generation counter to at least `generation` — restores
  /// the counter across a checkpoint even when every entry it numbered
  /// was dropped as consumed.
  void AdvanceGeneration(uint64_t generation);

 private:
  struct Entry {
    InteractionRecord record;
    uint64_t generation;
  };
  std::unordered_map<std::string, std::vector<Entry>> by_video_;
  /// Events logged per (video, session id) — the `HasSession` /
  /// `SessionEventCount` index.
  std::unordered_map<std::string, std::unordered_map<uint64_t, size_t>>
      session_ids_;
  uint64_t generation_ = 0;
  size_t total_ = 0;
};

/// In-memory highlight state: latest record per (video, dot index), plus
/// full history for inspection.
class HighlightStore {
 public:
  void Put(HighlightRecord record);

  /// Latest state of every dot of a video, ordered by dot index.
  std::vector<HighlightRecord> GetLatest(const std::string& video_id) const;

  /// Latest state of one dot.
  common::Result<HighlightRecord> GetDot(const std::string& video_id,
                                         int32_t dot_index) const;

  /// Every stored version of a dot (oldest first).
  std::vector<HighlightRecord> GetHistory(const std::string& video_id,
                                          int32_t dot_index) const;

  bool HasVideo(const std::string& video_id) const;
  size_t TotalRecords() const { return total_; }

  /// Number of distinct (video, dot) keys.
  size_t NumDots() const { return dots_.size(); }

  /// Latest record of every dot across all videos (compaction input).
  std::vector<HighlightRecord> AllLatest() const;

  /// Replaces the whole store content with `records` (one per dot) —
  /// used after log compaction.
  void ResetFrom(std::vector<HighlightRecord> records);

 private:
  // (video_id, dot_index) -> history, newest last.
  std::map<std::pair<std::string, int32_t>, std::vector<HighlightRecord>>
      dots_;
  size_t total_ = 0;
};

}  // namespace lightor::storage

#endif  // LIGHTOR_STORAGE_STORES_H_
