#include "storage/web_service.h"

#include <algorithm>
#include <cmath>
#include <string_view>

#include "common/logging.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace lightor::storage {

namespace {

obs::Histogram& EndpointLatency(const char* endpoint) {
  static obs::Histogram* const page_visit =
      obs::Registry::Global().GetHistogram("lightor_web_request_seconds",
                                           obs::Histogram::LatencyBounds(),
                                           {{"endpoint", "page_visit"}});
  static obs::Histogram* const log_session =
      obs::Registry::Global().GetHistogram("lightor_web_request_seconds",
                                           obs::Histogram::LatencyBounds(),
                                           {{"endpoint", "log_session"}});
  static obs::Histogram* const refine = obs::Registry::Global().GetHistogram(
      "lightor_web_request_seconds", obs::Histogram::LatencyBounds(),
      {{"endpoint", "refine"}});
  if (endpoint == std::string_view("page_visit")) return *page_visit;
  if (endpoint == std::string_view("log_session")) return *log_session;
  return *refine;
}

obs::Counter& PageVisitsCounter() {
  static obs::Counter* const counter =
      obs::Registry::Global().GetCounter("lightor_web_page_visits_total");
  return *counter;
}

obs::Counter& DotCacheCounter(bool hit) {
  static obs::Counter* const hits = obs::Registry::Global().GetCounter(
      "lightor_web_dot_cache_total", {{"outcome", "hit"}});
  static obs::Counter* const misses = obs::Registry::Global().GetCounter(
      "lightor_web_dot_cache_total", {{"outcome", "miss"}});
  return hit ? *hits : *misses;
}

obs::Counter& SessionsLoggedCounter() {
  static obs::Counter* const counter =
      obs::Registry::Global().GetCounter("lightor_web_sessions_logged_total");
  return *counter;
}

obs::Counter& InteractionEventsCounter() {
  static obs::Counter* const counter = obs::Registry::Global().GetCounter(
      "lightor_web_interaction_events_total");
  return *counter;
}

obs::Counter& RefinePassesCounter() {
  static obs::Counter* const counter =
      obs::Registry::Global().GetCounter("lightor_web_refine_passes_total");
  return *counter;
}

obs::Counter& DotsUpdatedCounter() {
  static obs::Counter* const counter =
      obs::Registry::Global().GetCounter("lightor_web_dots_updated_total");
  return *counter;
}

sim::InteractionType ToSimType(StoredInteraction event) {
  switch (event) {
    case StoredInteraction::kPlay:
      return sim::InteractionType::kPlay;
    case StoredInteraction::kPause:
      return sim::InteractionType::kPause;
    case StoredInteraction::kSeekForward:
      return sim::InteractionType::kSeekForward;
    case StoredInteraction::kSeekBackward:
      return sim::InteractionType::kSeekBackward;
  }
  return sim::InteractionType::kPlay;
}

StoredInteraction FromSimType(sim::InteractionType type) {
  switch (type) {
    case sim::InteractionType::kPlay:
      return StoredInteraction::kPlay;
    case sim::InteractionType::kPause:
      return StoredInteraction::kPause;
    case sim::InteractionType::kSeekForward:
      return StoredInteraction::kSeekForward;
    case sim::InteractionType::kSeekBackward:
      return StoredInteraction::kSeekBackward;
  }
  return StoredInteraction::kPlay;
}

}  // namespace

WebService::WebService(const sim::Platform* platform, Database* db,
                       const core::Lightor* lightor, size_t top_k)
    : platform_(platform),
      db_(db),
      lightor_(lightor),
      crawler_(platform, db),
      top_k_(top_k) {}

common::Result<std::vector<HighlightRecord>> WebService::OnPageVisit(
    const std::string& video_id) {
  obs::ScopedSpan span("web.OnPageVisit");
  obs::ScopedTimer timer(&EndpointLatency("page_visit"));
  PageVisitsCounter().Increment();
  if (db_->highlights().HasVideo(video_id)) {
    DotCacheCounter(/*hit=*/true).Increment();
    return db_->highlights().GetLatest(video_id);
  }
  DotCacheCounter(/*hit=*/false).Increment();
  // First visit: make sure the chat is stored (online crawl), then run
  // the Highlight Initializer and persist its red dots.
  auto crawled = crawler_.EnsureChat(video_id);
  if (!crawled.ok()) return crawled.status();

  const auto& chat = db_->chat().GetByVideo(video_id);
  std::vector<core::Message> messages;
  messages.reserve(chat.size());
  double video_length = 0.0;
  for (const auto& rec : chat) {
    core::Message m;
    m.timestamp = rec.timestamp;
    m.user = rec.user;
    m.text = rec.text;
    video_length = std::max(video_length, rec.timestamp);
    messages.push_back(std::move(m));
  }
  // The platform knows the true video length; fall back to the last
  // message when metadata is unavailable.
  if (auto video = platform_->GetVideo(video_id); video.ok()) {
    video_length = video.value().truth.meta.length;
  }

  auto dots = lightor_->Initialize(messages, video_length, top_k_);
  if (!dots.ok()) return dots.status();

  std::vector<HighlightRecord> records;
  for (size_t i = 0; i < dots.value().size(); ++i) {
    const core::RedDot& dot = dots.value()[i];
    HighlightRecord rec;
    rec.video_id = video_id;
    rec.dot_index = static_cast<int32_t>(i);
    rec.dot_position = dot.position;
    rec.start = dot.position;
    rec.end = dot.position + lightor_->options().extractor.fallback_length;
    rec.score = dot.score;
    rec.iteration = 0;
    rec.converged = false;
    LIGHTOR_RETURN_IF_ERROR(db_->PutHighlight(rec));
    records.push_back(std::move(rec));
  }
  LIGHTOR_LOG(Info) << "web: first visit of " << video_id << " placed "
                    << records.size() << " red dots";
  return records;
}

common::Status WebService::LogSession(
    const std::string& video_id, const std::string& user, uint64_t session_id,
    const std::vector<sim::InteractionEvent>& events) {
  obs::ScopedTimer timer(&EndpointLatency("log_session"));
  SessionsLoggedCounter().Increment();
  InteractionEventsCounter().Increment(events.size());
  for (const auto& ev : events) {
    InteractionRecord rec;
    rec.video_id = video_id;
    rec.user = user;
    rec.session_id = session_id;
    rec.event = FromSimType(ev.type);
    rec.wall_time = ev.wall_time;
    rec.position = ev.position;
    rec.target = ev.target;
    LIGHTOR_RETURN_IF_ERROR(db_->PutInteraction(rec));
  }
  return common::Status::OK();
}

std::unordered_map<int32_t, std::vector<core::Play>> WebService::PlaysByDot(
    const std::string& video_id,
    const std::vector<HighlightRecord>& dots) const {
  std::unordered_map<int32_t, std::vector<core::Play>> by_dot;
  uint64_t watermark = 0;
  if (auto it = refine_watermark_.find(video_id);
      it != refine_watermark_.end()) {
    watermark = it->second;
  }
  const auto sessions =
      db_->interactions().SessionsSince(video_id, watermark);
  const double delta = lightor_->options().extractor.delta;
  for (const auto& [session_id, records] : sessions) {
    // Rebuild the session's event stream, then distill plays.
    std::vector<sim::InteractionEvent> events;
    events.reserve(records.size());
    std::string user;
    for (const auto& rec : records) {
      user = rec.user;
      sim::InteractionEvent ev;
      ev.wall_time = rec.wall_time;
      ev.type = ToSimType(rec.event);
      ev.position = rec.position;
      ev.target = rec.target;
      events.push_back(ev);
    }
    for (const auto& play : sim::PlaysFromEvents(user, events)) {
      // Assign the play to the nearest dot within Δ.
      int32_t best_dot = -1;
      double best_dist = delta + 1.0;
      for (const auto& dot : dots) {
        const double d = std::abs(play.span.start - dot.dot_position);
        if (d < best_dist) {
          best_dist = d;
          best_dot = dot.dot_index;
        }
      }
      if (best_dot >= 0) {
        by_dot[best_dot].emplace_back(play.user, play.span.start,
                                      play.span.end);
      }
    }
  }
  return by_dot;
}

common::Result<int> WebService::Refine(const std::string& video_id) {
  obs::ScopedSpan span("web.Refine");
  obs::ScopedTimer timer(&EndpointLatency("refine"));
  RefinePassesCounter().Increment();
  if (!db_->highlights().HasVideo(video_id)) {
    return common::Status::NotFound("Refine: video has no red dots yet: " +
                                    video_id);
  }
  const auto dots = db_->highlights().GetLatest(video_id);
  auto plays_by_dot = PlaysByDot(video_id, dots);
  // Consume everything logged so far: next Refine only sees newer data.
  refine_watermark_[video_id] = db_->interactions().current_generation() + 1;

  int updated = 0;
  const core::HighlightExtractor& extractor = lightor_->extractor();
  for (const auto& dot : dots) {
    auto it = plays_by_dot.find(dot.dot_index);
    if (it == plays_by_dot.end()) continue;
    const core::RefineResult step =
        extractor.RefineOnce(it->second, dot.dot_position);
    HighlightRecord next = dot;
    next.iteration = dot.iteration + 1;
    if (step.type == core::DotType::kTypeII && step.enough_plays) {
      next.start = step.boundary.start;
      next.end = step.boundary.end;
      next.converged = std::abs(step.new_dot - dot.dot_position) <
                       lightor_->options().extractor.convergence_epsilon;
      next.dot_position = step.new_dot;
    } else {
      next.dot_position = step.new_dot;
      next.start = step.new_dot;
      next.converged = false;
    }
    LIGHTOR_RETURN_IF_ERROR(db_->PutHighlight(next));
    ++updated;
  }
  DotsUpdatedCounter().Increment(static_cast<uint64_t>(updated));
  LIGHTOR_LOG(Debug) << "web: refine pass on " << video_id << " updated "
                     << updated << " dots";
  return updated;
}

std::string WebService::MetricsPage() const {
  return obs::ExportPrometheus(obs::Registry::Global());
}

common::Result<std::vector<HighlightRecord>> WebService::GetHighlights(
    const std::string& video_id) const {
  if (!db_->highlights().HasVideo(video_id)) {
    return common::Status::NotFound("no highlights for video: " + video_id);
  }
  return db_->highlights().GetLatest(video_id);
}

}  // namespace lightor::storage
